// Package sommelier is a partial-loading-aware analytical database for
// chunked "big" data, reproducing "The DBMS – your Big Data Sommelier"
// (Kargın, Kersten, Manegold, Pirk; ICDE 2015).
//
// Like a good sommelier, the system keeps the bottles (actual waveform
// data) in the cellar (the file repository) and only the labels (the
// given metadata) in its head: registering a repository extracts and
// loads just the per-file and per-segment control headers. Queries are
// evaluated in two stages — the metadata branch Qf first identifies the
// chunks of interest, then a run-time optimizer rewrites the remaining
// plan to cache-scans and chunk-accesses over exactly those chunks.
// Derived metadata (hourly summary windows) is maintained as a
// partially materialized view through the paper's Algorithm 1.
//
// Quick start:
//
//	db, err := sommelier.Open("path/to/repo", sommelier.Config{
//		Approach: sommelier.Lazy,
//	})
//	if err != nil { ... }
//	res, err := db.Query(`
//		SELECT AVG(D.sample_value) FROM dataview
//		WHERE F.station = 'ISK' AND F.channel = 'BHE'
//		  AND D.sample_time > '2010-01-12T22:15:00.000'
//		  AND D.sample_time < '2010-01-12T22:15:02.000'`)
//
// The five loading approaches of the paper's evaluation are all
// available: Lazy (the contribution), EagerCSV, EagerPlain, EagerIndex
// and EagerDMd.
//
// # Concurrency
//
// A DB is safe for concurrent use: any number of goroutines may call
// Query/QueryContext/Run on one open database, under every loading
// approach, and each receives exactly the result serial execution
// would produce. Concurrent queries selecting the same missing chunk
// share a single load (a singleflight keyed by table and chunk ID);
// every chunk a query scans is pinned for the duration of execution,
// so another query's cache eviction defers until the last reader
// releases it; and derived-metadata maintenance (Algorithm 1) is
// serialized, deriving each window at most once. cmd/sommelierd serves
// this guarantee over HTTP with a bounded worker pool; see README.md
// for the service API.
package sommelier

import (
	"fmt"
	"strings"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
	"sommelier/internal/stalta"
	"sommelier/internal/storage"
)

// Approach selects a loading strategy.
type Approach = registrar.Approach

// The five loading approaches compared in the paper.
const (
	// Lazy extracts only metadata up front; actual data chunks are
	// ingested just-in-time during query evaluation and cached by the
	// recycler.
	Lazy = registrar.Lazy
	// EagerCSV serializes every chunk to CSV text and bulk-parses it
	// back — the conventional ETL detour.
	EagerCSV = registrar.EagerCSV
	// EagerPlain ingests every chunk directly into one monolithic
	// table before the first query.
	EagerPlain = registrar.EagerPlain
	// EagerIndex additionally clusters the data by chunk and builds
	// key and join indexes.
	EagerIndex = registrar.EagerIndex
	// EagerDMd additionally materializes all derived metadata.
	EagerDMd = registrar.EagerDMd
)

// Cache replacement policies for the recycler.
const (
	// PolicyLRU is the paper's recycler behaviour.
	PolicyLRU = cache.LRU
	// PolicyCostAware weighs reload cost against recency — the
	// paper's "smarter caching" future-work extension.
	PolicyCostAware = cache.CostAware
)

// Config parameterizes Open.
type Config = engine.Config

// DB is an open database over a registered chunk repository.
type DB = engine.DB

// Result is a completed query with execution statistics, the Algorithm
// 1 derivation report and the compiled plan.
type Result = engine.Result

// Stmt is a prepared statement: parsed, planned and optimized once
// (through the compiled-plan cache), executable any number of times —
// concurrently — with per-execution arguments bound to its `?` markers.
type Stmt = engine.Stmt

// PlanCacheStats reports compiled-plan cache activity.
type PlanCacheStats = engine.PlanCacheStats

// Report summarizes registration cost and storage footprint.
type Report = registrar.Report

// Open registers the chunk repository under dir and returns a
// queryable database prepared with the configured loading approach.
func Open(dir string, cfg Config) (*DB, error) { return engine.Open(dir, cfg) }

// OpenHTTP registers a chunk repository served over HTTP (the paper's
// §VIII "Other Sources" extension): the archive exposes an index.txt
// chunk listing at its root and the chunk files underneath. Metadata
// registration and lazy chunk-access stream over the network.
func OpenHTTP(baseURL string, cfg Config) (*DB, error) {
	repo, err := registrar.DiscoverHTTPRepository(baseURL, nil)
	if err != nil {
		return nil, err
	}
	return engine.OpenSource(repo, "", cfg)
}

// WriteHTTPIndex prepares a local repository directory for HTTP
// serving by writing the index.txt chunk listing OpenHTTP expects.
func WriteHTTPIndex(dir string) error { return registrar.WriteIndexFile(dir) }

// RepoConfig parameterizes synthetic repository generation.
type RepoConfig = seisgen.Config

// StationConfig describes one sensor station of a generated repository.
type StationConfig = seisgen.StationConfig

// DefaultRepoConfig returns a laptop-scale repository configuration
// with the paper's shape (4 stations, 1 channel each) spanning the
// given number of days.
func DefaultRepoConfig(days int) RepoConfig { return seisgen.DefaultConfig(days) }

// GenerateRepository writes a synthetic seismic repository under dir.
// It stands in for the paper's INGV Mini-SEED archive and is the
// easiest way to obtain data for the examples and benchmarks.
func GenerateRepository(dir string, cfg RepoConfig) error {
	_, err := seisgen.Generate(dir, cfg)
	return err
}

// Event is a detected seismic event interval (see DetectEvents).
type Event = stalta.Event

// DetectEvents runs the classic STA/LTA trigger over the first
// float64 column of a query result (typically D.sample_value from a
// dataview query, ordered by time): the short-term/long-term averaging
// task the paper's seismologists perform. Window lengths are in
// samples; an event opens when the ratio exceeds trigger and closes
// below detrigger.
func DetectEvents(res *Result, staSamples, ltaSamples int, trigger, detrigger float64) ([]Event, error) {
	flat := res.Rel.Flatten()
	for _, c := range flat.Cols {
		if fc, ok := c.(*storage.Float64Column); ok {
			return stalta.Detect(storage.Float64s(fc), staSamples, ltaSamples, trigger, detrigger)
		}
	}
	return nil, fmt.Errorf("sommelier: result has no numeric value column")
}

// FormatResult renders a query result as an aligned text table.
func FormatResult(res *Result) string {
	flat := res.Rel.Flatten()
	widths := make([]int, len(res.Names))
	rows := make([][]string, flat.Len())
	for c, n := range res.Names {
		widths[c] = len(n)
	}
	for r := 0; r < flat.Len(); r++ {
		row := make([]string, flat.Width())
		for c := 0; c < flat.Width(); c++ {
			row[c] = formatValue(flat.Cols[c], r)
			if len(row[c]) > widths[c] {
				widths[c] = len(row[c])
			}
		}
		rows[r] = row
	}
	var sb strings.Builder
	for c, n := range res.Names {
		fmt.Fprintf(&sb, "%-*s  ", widths[c], n)
	}
	sb.WriteByte('\n')
	for c := range res.Names {
		sb.WriteString(strings.Repeat("-", widths[c]) + "  ")
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		for c, v := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[c], v)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "(%d rows)\n", flat.Len())
	return sb.String()
}

func formatValue(c storage.Column, r int) string {
	switch c := c.(type) {
	case *storage.TimeColumn:
		return time.Unix(0, c.Value(r)).UTC().Format("2006-01-02T15:04:05.000")
	case *storage.Float64Column:
		return fmt.Sprintf("%.4f", c.Value(r))
	default:
		return fmt.Sprintf("%v", storage.ValueAt(c, r))
	}
}
