package sommelier

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (§VI). Each benchmark prints the corresponding
// paper-style text table once and reports a headline metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation at laptop scale. The absolute numbers
// differ from the paper (synthetic repository, in-memory engine); the
// shapes — who wins, by roughly what factor, where crossovers fall —
// are the reproduction target. See EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"sommelier/internal/experiments"
)

var (
	benchMu  sync.Mutex
	benchCfg *experiments.Config
	printed  = map[string]bool{}
)

// benchConfig lazily creates the shared experiment configuration; the
// generated repositories are cached across benchmarks in one temp dir.
func benchConfig(b *testing.B) experiments.Config {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchCfg == nil {
		dir, err := os.MkdirTemp("", "sommelier-bench-")
		if err != nil {
			b.Fatal(err)
		}
		cfg := experiments.DefaultConfig(dir)
		// Laptop-scale volume: the full suite completes in minutes.
		cfg.BaseDays = 3
		cfg.SamplesPerFile = 6000
		cfg.WorkloadSizes = []int{50, 100}
		cfg.Selectivities = []int{0, 20, 40, 60, 80, 100}
		benchCfg = &cfg
	}
	return *benchCfg
}

// printOnce emits an experiment's rendered table a single time even
// when the benchmark iterates.
func printOnce(key, table string) {
	benchMu.Lock()
	defer benchMu.Unlock()
	if !printed[key] {
		printed[key] = true
		fmt.Println(table)
	}
}

// BenchmarkTableII regenerates Table II: dataset characteristics per
// scale factor.
func BenchmarkTableII(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("tableII", experiments.RenderTableII(rows))
		b.ReportMetric(float64(rows[len(rows)-1].DataRecords), "records/maxsf")
	}
}

// BenchmarkTableIII regenerates Table III: dataset sizes across
// representations.
func BenchmarkTableIII(b *testing.B) {
	cfg := benchConfig(b)
	cfg.ScaleFactors = cfg.ScaleFactors[:2] // CSV export at high sf is slow; the shape shows at low sf
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("tableIII", experiments.RenderTableIII(rows))
		r := rows[0]
		b.ReportMetric(float64(r.DBBytes)/float64(r.MseedBytes), "db/mseed-blowup")
		b.ReportMetric(float64(r.MseedBytes)/float64(r.LazyBytes), "mseed/lazy-ratio")
	}
}

// BenchmarkFig6Loading regenerates Figure 6: the loading cost breakdown
// of all five approaches.
func BenchmarkFig6Loading(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig6", experiments.RenderFig6(rows))
		var lazy, plain time.Duration
		for _, r := range rows {
			if r.SF == cfg.ScaleFactors[len(cfg.ScaleFactors)-1] {
				switch r.Approach {
				case "lazy":
					lazy = r.Total
				case "eager_plain":
					plain = r.Total
				}
			}
		}
		if lazy > 0 {
			b.ReportMetric(float64(plain)/float64(lazy), "eager/lazy-prep-ratio")
		}
	}
}

// BenchmarkFig7Queries regenerates Figure 7: T1–T5 single-query
// performance, cold and hot, per approach and scale factor.
func BenchmarkFig7Queries(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig7", experiments.RenderFig7(rows))
		var lazyHot time.Duration
		for _, r := range rows {
			if r.Approach == "lazy" && r.QueryType == 4 && r.SF == cfg.ScaleFactors[0] {
				lazyHot = r.Hot
			}
		}
		b.ReportMetric(lazyHot.Seconds()*1000, "lazyT4hot-ms")
	}
}

// BenchmarkFig8DataToInsight regenerates Figure 8: data-to-insight time
// versus query selectivity on the FIAM dataset.
func BenchmarkFig8DataToInsight(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig8", experiments.RenderFig8(rows))
		// Headline: even at 100% selectivity lazy's data-to-insight
		// beats eager_index's (paper §VI-D).
		var lazy100, idx100 time.Duration
		for _, r := range rows {
			if r.QueryType == 4 && r.SelectivityPct == 100 && r.SF == rows[len(rows)-1].SF {
				switch r.Approach {
				case "lazy":
					lazy100 = r.Total()
				case "eager_index":
					idx100 = r.Total()
				}
			}
		}
		if lazy100 > 0 {
			b.ReportMetric(float64(idx100)/float64(lazy100), "eageridx/lazy-100pct")
		}
	}
}

// BenchmarkFig9Workload regenerates Figure 9: cumulative workload time
// versus workload selectivity.
func BenchmarkFig9Workload(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("fig9", experiments.RenderFig9(rows))
		var lazy20, eager20 time.Duration
		for _, r := range rows {
			if r.QueryType == 4 && r.WorkloadSelPct == 20 && r.NQueries == cfg.WorkloadSizes[0] {
				switch r.Approach {
				case "lazy":
					lazy20 = r.Cumulative()
				case "eager_index":
					eager20 = r.Cumulative()
				}
			}
		}
		if lazy20 > 0 {
			b.ReportMetric(float64(eager20)/float64(lazy20), "eager/lazy-20pct")
		}
	}
}

// BenchmarkConcurrentClients measures service throughput (queries/sec)
// of one shared DB at 1, 4 and 16 concurrent clients across all five
// loading approaches: the concurrent-query subsystem's headline number.
func BenchmarkConcurrentClients(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ConcurrentLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("concurrency", experiments.RenderConcurrency(rows))
		var lazy1, lazy16 float64
		for _, r := range rows {
			if r.Approach == "lazy" {
				switch r.Clients {
				case 1:
					lazy1 = r.QPS
				case 16:
					lazy16 = r.QPS
				}
			}
		}
		b.ReportMetric(lazy1, "lazy-qps-1client")
		b.ReportMetric(lazy16, "lazy-qps-16clients")
		if lazy1 > 0 {
			b.ReportMetric(lazy16/lazy1, "lazy-scaling-16/1")
		}
	}
}

// BenchmarkAblationParallelLoad measures serial vs parallel lazy chunk
// ingestion (§V's static parallelization remark).
func BenchmarkAblationParallelLoad(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationParallelLoad(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-parallel", experiments.RenderAblations(rows, nil, nil))
		if rows[1].QueryTime > 0 {
			b.ReportMetric(float64(rows[0].QueryTime)/float64(rows[1].QueryTime), "serial/parallel")
		}
	}
}

// BenchmarkAblationCachePolicy compares the recycler's LRU policy with
// the cost-aware extension under skewed chunk reuse (§VIII).
func BenchmarkAblationCachePolicy(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationCachePolicy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-cache", experiments.RenderAblations(nil, rows, nil))
		b.ReportMetric(float64(rows[0].Hits), "lru-hits")
		b.ReportMetric(float64(rows[1].Hits), "costaware-hits")
	}
}

// BenchmarkAblationJoinRules quantifies chunk pruning under the R1–R4
// rule set versus the metadata-blind worst case (§III).
func BenchmarkAblationJoinRules(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationJoinRules(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce("ablation-rules", experiments.RenderAblations(nil, nil, rows))
		b.ReportMetric(float64(rows[0].WithoutRules)/float64(rows[0].WithRules), "chunk-reduction")
	}
}
