package sommelier

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := DefaultRepoConfig(2)
	cfg.SamplesPerFile = 400
	cfg.MeanSegments = 3
	if err := GenerateRepository(dir, cfg); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestOpenAndQuery(t *testing.T) {
	db, err := Open(testRepo(t), Config{Approach: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT station, COUNT(*) AS files FROM F GROUP BY station ORDER BY station`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 4 {
		t.Fatalf("stations = %d", res.Rows())
	}
	out := FormatResult(res)
	if !strings.Contains(out, "files") || !strings.Contains(out, "(4 rows)") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAllApproachConstants(t *testing.T) {
	for _, app := range []Approach{Lazy, EagerCSV, EagerPlain, EagerIndex, EagerDMd} {
		db, err := Open(testRepo(t), Config{Approach: app})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if db.Approach() != app {
			t.Fatalf("approach = %s", db.Approach())
		}
	}
}

func TestFormatResultTypes(t *testing.T) {
	db, err := Open(testRepo(t), Config{Approach: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT file_id, uri, station FROM F ORDER BY file_id LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "(2 rows)") {
		t.Fatalf("format:\n%s", out)
	}
	// Timestamps render ISO-style.
	res2, err := db.Query(`SELECT start_time FROM S ORDER BY start_time LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatResult(res2), "2010-01-01T") {
		t.Fatalf("timestamp format:\n%s", FormatResult(res2))
	}
}

func TestGenerateRepositoryValidation(t *testing.T) {
	cfg := DefaultRepoConfig(0) // invalid: zero days
	if err := GenerateRepository(t.TempDir(), cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(t.TempDir(), Config{}); err == nil {
		t.Fatal("empty repository accepted")
	}
}

func TestOpenHTTP(t *testing.T) {
	dir := testRepo(t)
	if err := WriteHTTPIndex(dir); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()
	db, err := OpenHTTP(srv.URL, Config{Approach: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	// A selective query lazily ingests chunks over HTTP.
	res, err := db.Query(`
		SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = 'ISK'
		  AND D.sample_time >= '2010-01-01T00:00:00.000'
		  AND D.sample_time < '2010-01-02T00:00:00.000'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunksLoaded == 0 {
		t.Fatal("no chunks streamed over HTTP")
	}
	// The same answer as the local database.
	local, err := Open(dir, Config{Approach: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	want, err := local.Query(`
		SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = 'ISK'
		  AND D.sample_time >= '2010-01-01T00:00:00.000'
		  AND D.sample_time < '2010-01-02T00:00:00.000'`)
	if err != nil {
		t.Fatal(err)
	}
	if FormatResult(res) != FormatResult(want) {
		t.Fatalf("HTTP answer differs:\n%s\nvs\n%s", FormatResult(res), FormatResult(want))
	}
}

func TestDetectEvents(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultRepoConfig(1)
	cfg.SamplesPerFile = 3000
	cfg.EventRate = 1 // guarantee bursts
	if err := GenerateRepository(dir, cfg); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, Config{Approach: Lazy})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`
		SELECT D.sample_time, D.sample_value FROM dataview
		WHERE F.station = 'FIAM' ORDER BY D.sample_time`)
	if err != nil {
		t.Fatal(err)
	}
	events, err := DetectEvents(res, 20, 200, 2.5, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events detected in burst-heavy data")
	}
	// A result without numeric columns is rejected.
	res2, err := db.Query(`SELECT station FROM F`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DetectEvents(res2, 20, 200, 2.5, 1.2); err == nil {
		t.Fatal("string-only result accepted")
	}
}
