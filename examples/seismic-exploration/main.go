// Seismic exploration: the interactive hunting session the paper's
// introduction motivates. A seismologist starts from pure metadata
// (which stations? which days have data?), narrows down with derived
// summaries, and drills into raw waveforms — while the system ingests
// only the handful of chunks the session actually touches.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sommelier"
)

func main() {
	dir, err := os.MkdirTemp("", "sommelier-explore-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := sommelier.DefaultRepoConfig(10)
	cfg.SamplesPerFile = 5000
	cfg.EventRate = 0.5
	if err := sommelier.GenerateRepository(dir, cfg); err != nil {
		log.Fatal(err)
	}
	db, err := sommelier.Open(dir, sommelier.Config{Approach: sommelier.Lazy})
	if err != nil {
		log.Fatal(err)
	}
	total := db.Report().Files

	step := func(title, sql string) *sommelier.Result {
		fmt.Printf("\n### %s\n", title)
		res, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(sommelier.FormatResult(res))
		fmt.Printf("[T%d, %v, %d/%d chunks touched]\n",
			res.QueryType, res.Stats.Total().Round(time.Microsecond), res.Stats.ChunksSelected, total)
		return res
	}

	// 1. T1 — survey the catalog: which stations, how many files?
	// Pure metadata: no waveform is touched.
	step("Which stations are in the archive?",
		`SELECT station, COUNT(*) AS files FROM F GROUP BY station ORDER BY station`)

	// 2. T1 — segment inventory of one candidate station.
	step("How much FIAM data is there per segment length?",
		`SELECT COUNT(*) AS segments, SUM(sample_count) AS samples
		 FROM S WHERE file_id >= 0`)

	// 3. T2 — summary hunting: derive hourly windows for one day and
	// look for high-volatility hours (short-term averaging targets).
	step("Which hours of 2010-01-03 look seismically interesting?",
		`SELECT window_start_ts, window_max_val, window_std_dev FROM H
		 WHERE window_station = 'FIAM' AND window_channel = 'HHZ'
		   AND window_start_ts >= '2010-01-03T00:00:00.000'
		   AND window_start_ts < '2010-01-04T00:00:00.000'
		 ORDER BY window_max_val DESC LIMIT 3`)

	// 4. T4 — drill into the raw waveform around the top hour: the
	// short-term average of the paper's Query 1.
	step("Short-term average in the hot hour",
		`SELECT AVG(D.sample_value), COUNT(*) AS n FROM dataview
		 WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		   AND D.sample_time >= '2010-01-03T00:00:00.000'
		   AND D.sample_time < '2010-01-03T06:00:00.000'`)

	// 4b. Run the STA/LTA event detector over the retrieved waveform
	// (2 s short window / 15 s long window at 20 Hz, as in §II-C).
	wave := step("Waveform for event detection",
		`SELECT D.sample_time, D.sample_value FROM dataview
		 WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		   AND D.sample_time >= '2010-01-03T00:00:00.000'
		   AND D.sample_time < '2010-01-04T00:00:00.000'
		 ORDER BY D.sample_time LIMIT 4000`)
	events, err := sommelier.DetectEvents(wave, 40, 300, 2.5, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STA/LTA found %d candidate events", len(events))
	for i, e := range events {
		if i >= 3 {
			fmt.Printf(" ...")
			break
		}
		fmt.Printf("  [samples %d-%d, peak ratio %.1f]", e.Start, e.End, e.MaxRatio)
	}
	fmt.Println()

	// 5. T5 — retrieve waveforms of only the volatile hours across the
	// whole span (the paper's Query 2 pattern).
	step("Waveform points in high-volatility hours (first 5)",
		`SELECT D.sample_time, D.sample_value FROM windowdataview
		 WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		   AND H.window_start_ts >= '2010-01-01T00:00:00.000'
		   AND H.window_start_ts < '2010-01-10T00:00:00.000'
		   AND H.window_std_dev > 100
		 ORDER BY D.sample_time LIMIT 5`)

	st := db.CacheStats()
	fmt.Printf("\nsession footprint: %d of %d chunks ever ingested, %d windows derived, cache holds %d chunks (%d B)\n",
		st.Chunks, total, db.MaterializedWindows(), st.Chunks, st.BytesUsed)
}
