// Quickstart: generate a small seismic chunk repository, register it
// lazily (metadata only — seconds, not hours), and run the paper's
// Query 1 against it. Only the two chunks the metadata identifies are
// ever ingested.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sommelier"
)

func main() {
	dir, err := os.MkdirTemp("", "sommelier-quickstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A repository of chunked waveform files: 4 stations × 8 days,
	// one file per station and day (this stands in for an FTP archive
	// of Mini-SEED files).
	cfg := sommelier.DefaultRepoConfig(8)
	cfg.SamplesPerFile = 4000
	if err := sommelier.GenerateRepository(dir, cfg); err != nil {
		log.Fatal(err)
	}

	// 2. Register it lazily: the sommelier reads only the labels.
	t0 := time.Now()
	db, err := sommelier.Open(dir, sommelier.Config{Approach: sommelier.Lazy})
	if err != nil {
		log.Fatal(err)
	}
	rep := db.Report()
	fmt.Printf("registered %d files (%d segments) in %v — %d bytes of metadata, 0 rows of data\n",
		rep.Files, rep.Segments, time.Since(t0).Round(time.Millisecond), rep.MetadataBytes)

	// 3. The paper's Query 1: a short-term average over one station
	// and channel. Stage one evaluates the metadata branch Qf and
	// identifies the files of interest; stage two ingests exactly
	// those and finishes the query.
	res, err := db.Query(`
		SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		  AND D.sample_time > '2010-01-02T00:15:00.000'
		  AND D.sample_time < '2010-01-03T22:15:02.000'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sommelier.FormatResult(res))
	fmt.Printf("chunks: %d selected of %d in the repository, %d ingested\n",
		res.Stats.ChunksSelected, rep.Files, res.Stats.ChunksLoaded)

	// 4. Run it again: the recycler has the chunks, nothing reloads.
	res2, err := db.Query(`
		SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		  AND D.sample_time > '2010-01-02T00:15:00.000'
		  AND D.sample_time < '2010-01-03T22:15:02.000'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot run: %d cache hits, %d loads, %v total\n",
		res2.Stats.CacheHits, res2.Stats.ChunksLoaded, res2.Stats.Total().Round(time.Microsecond))
}
