// Derived metadata: the paper's Query 2 end-to-end. Hourly summary
// windows (max, min, mean, stddev) are a partially materialized view;
// Algorithm 1 derives exactly the windows each query needs, reusing
// whatever earlier queries already materialized.
package main

import (
	"fmt"
	"log"
	"os"

	"sommelier"
)

func main() {
	dir, err := os.MkdirTemp("", "sommelier-dmd-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := sommelier.DefaultRepoConfig(4)
	cfg.SamplesPerFile = 6000
	cfg.EventRate = 0.9 // lots of seismic events to hunt
	if err := sommelier.GenerateRepository(dir, cfg); err != nil {
		log.Fatal(err)
	}
	db, err := sommelier.Open(dir, sommelier.Config{Approach: sommelier.Lazy})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Query 2: waveform data of hours where volatility is
	// high at high amplitude — a T5 query filtering on derived
	// metadata. No DMd exists yet, so Algorithm 1 computes the three
	// requested windows (and only those) before the query runs.
	q2 := `
		SELECT D.sample_time, D.sample_value FROM windowdataview
		WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		  AND H.window_start_ts >= '2010-01-01T23:00:00.000'
		  AND H.window_start_ts < '2010-01-02T02:00:00.000'
		  AND H.window_max_val > 10000
		  AND H.window_std_dev > 10
		LIMIT 5`
	res, err := db.Query(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first run : requested %d windows, derived %d (%v), %d rows\n",
		res.DMd.Requested, res.DMd.Computed, res.DMd.Derivation.Round(1000), res.Rows())
	fmt.Print(sommelier.FormatResult(res))

	// A wider overlapping hunt: the three windows above are covered
	// (PSm); only the new ones are derived (PSu).
	q2wide := `
		SELECT D.sample_time, D.sample_value FROM windowdataview
		WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		  AND H.window_start_ts >= '2010-01-01T23:00:00.000'
		  AND H.window_start_ts < '2010-01-02T08:00:00.000'
		  AND H.window_max_val > 10000
		  AND H.window_std_dev > 10
		LIMIT 5`
	res2, err := db.Query(q2wide)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("second run: requested %d windows, covered %d, derived only %d\n",
		res2.DMd.Requested, res2.DMd.Covered, res2.DMd.Computed)
	res2.Release()

	// Inspect the materialized view directly (a T2 query).
	res3, err := db.Query(`
		SELECT window_start_ts, window_max_val, window_std_dev FROM H
		WHERE window_station = 'FIAM'
		  AND window_start_ts >= '2010-01-01T23:00:00.000'
		  AND window_start_ts < '2010-01-02T04:00:00.000'
		ORDER BY window_start_ts`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("materialized hourly windows:")
	fmt.Print(sommelier.FormatResult(res3))
	fmt.Printf("windows materialized in total: %d\n", db.MaterializedWindows())
}
