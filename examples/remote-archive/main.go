// Remote archive: the paper's §VIII "Other Sources" future work made
// concrete. A seismic chunk repository is served over plain HTTP (here
// by an in-process file server standing in for an FTP/HTTP archive like
// INGV's); the sommelier registers it remotely — streaming only control
// headers — and queries lazily pull the few chunks they need across the
// network.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"sommelier"
)

func main() {
	dir, err := os.MkdirTemp("", "sommelier-remote-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The archive side: generate a repository and serve it.
	cfg := sommelier.DefaultRepoConfig(6)
	cfg.SamplesPerFile = 6000
	if err := sommelier.GenerateRepository(dir, cfg); err != nil {
		log.Fatal(err)
	}
	if err := sommelier.WriteHTTPIndex(dir); err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	defer srv.Close()
	fmt.Printf("archive serving at %s\n", srv.URL)

	// The client side: register the remote archive lazily.
	t0 := time.Now()
	db, err := sommelier.OpenHTTP(srv.URL, sommelier.Config{Approach: sommelier.Lazy})
	if err != nil {
		log.Fatal(err)
	}
	rep := db.Report()
	fmt.Printf("registered %d remote files (%d segments) in %v — only headers crossed the wire\n",
		rep.Files, rep.Segments, time.Since(t0).Round(time.Millisecond))

	// Metadata-only exploration costs no chunk transfer at all.
	res, err := db.Query(`SELECT station, COUNT(*) AS files FROM F GROUP BY station ORDER BY station`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sommelier.FormatResult(res))

	// A selective analysis query pulls exactly the chunks it needs.
	res2, err := db.Query(`
		SELECT AVG(D.sample_value), COUNT(*) AS n FROM dataview
		WHERE F.station = 'CERA'
		  AND D.sample_time >= '2010-01-03T00:00:00.000'
		  AND D.sample_time < '2010-01-05T00:00:00.000'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sommelier.FormatResult(res2))
	fmt.Printf("streamed %d of %d chunks over HTTP (%v total)\n",
		res2.Stats.ChunksLoaded, rep.Files, res2.Stats.Total().Round(time.Microsecond))

	// Re-running is local: the recycler has the chunks.
	res3, err := db.Query(`
		SELECT AVG(D.sample_value), COUNT(*) AS n FROM dataview
		WHERE F.station = 'CERA'
		  AND D.sample_time >= '2010-01-03T00:00:00.000'
		  AND D.sample_time < '2010-01-05T00:00:00.000'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hot re-run: %d cache hits, 0 transfers, %v\n",
		res3.Stats.CacheHits, res3.Stats.Total().Round(time.Microsecond))
}
