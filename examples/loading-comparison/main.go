// Loading comparison: the paper's headline experiment in miniature.
// The same repository is prepared with all five loading approaches;
// for each we report the preparation cost breakdown (Figure 6), the
// storage footprint (Table III) and the data-to-insight time of a
// first selective query (Figure 8's low-selectivity regime), where
// lazy wins by orders of magnitude.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sommelier"
)

const firstQuery = `
	SELECT AVG(D.sample_value) FROM dataview
	WHERE F.station = 'AQU'
	  AND D.sample_time >= '2010-01-02T00:00:00.000'
	  AND D.sample_time < '2010-01-04T00:00:00.000'`

func main() {
	dir, err := os.MkdirTemp("", "sommelier-loading-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := sommelier.DefaultRepoConfig(12)
	cfg.SamplesPerFile = 8000
	if err := sommelier.GenerateRepository(dir, cfg); err != nil {
		log.Fatal(err)
	}

	approaches := []sommelier.Approach{
		sommelier.EagerCSV, sommelier.EagerPlain, sommelier.EagerIndex,
		sommelier.EagerDMd, sommelier.Lazy,
	}
	fmt.Printf("%-12s %12s %12s %12s %14s %10s\n",
		"approach", "prep", "first query", "insight", "resident", "answer")
	for _, app := range approaches {
		t0 := time.Now()
		db, err := sommelier.Open(dir, sommelier.Config{Approach: app})
		if err != nil {
			log.Fatal(err)
		}
		prep := time.Since(t0)
		t1 := time.Now()
		res, err := db.Query(firstQuery)
		if err != nil {
			log.Fatal(err)
		}
		q := time.Since(t1)
		rep := db.Report()
		flat := res.Rel.Flatten()
		var answer float64
		if flat.Len() > 0 {
			answer = flat.Cols[0].(interface{ Value(int) float64 }).Value(0)
		}
		fmt.Printf("%-12s %12v %12v %12v %14d %10.2f\n",
			app, prep.Round(time.Microsecond), q.Round(time.Microsecond),
			(prep + q).Round(time.Microsecond), rep.DataBytes, answer)
		res.Release()
	}
	fmt.Println("\ninsight = preparation + first query (the paper's data-to-insight time)")
	fmt.Println("lazy prepares in microseconds and ingests only the 2 chunks the query needs;")
	fmt.Println("the eager variants pay for all chunks (plus indexes, plus DMd) up front.")
}
