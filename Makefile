GO ?= go

.PHONY: ci fmt vet test build bench

## ci is the documented pre-merge check: formatting, vet, and the full
## test suite under the race detector (the concurrency guarantees of
## engine.DB and sommelierd are enforced by -race tests).
ci: fmt vet test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

build:
	$(GO) build ./...

## bench regenerates the paper's evaluation tables plus the
## concurrent-load sweep (slow; see also cmd/benchrunner).
bench:
	$(GO) test -bench=. -benchmem .
