GO ?= go

.PHONY: ci fmt vet lint lint-extra test build bench bench-json bench-micro

## ci is the documented pre-merge check: formatting, vet, the
## ownership-protocol lint, and the full test suite under the race
## detector (the concurrency guarantees of engine.DB and sommelierd
## are enforced by -race tests).
ci: fmt vet lint test

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## vet also type-checks the pooldebug build, so the stack-recording
## pool accounting cannot rot between uses.
vet:
	$(GO) vet ./...
	$(GO) vet -tags pooldebug ./...

## lint builds sommelierlint (the go/analysis vettool proving the
## pooled-memory ownership protocol: poolown, selalias, releasecheck,
## atomicguard) and runs it over the whole module via go vet. See the
## "Static analysis & the ownership protocol" section of
## PERFORMANCE.md.
lint:
	$(GO) build -o bin/sommelierlint ./cmd/sommelierlint
	$(GO) vet -vettool=$(abspath bin/sommelierlint) ./...

## lint-extra layers on analyzers that need golang.org/x/tools
## (network to fetch); CI runs it, offline checkouts can skip it.
lint-extra:
	$(GO) run golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness@latest ./...

test:
	$(GO) test -race ./...

build:
	$(GO) build ./...

## bench regenerates the paper's evaluation tables plus the
## concurrent-load sweep (slow; see also cmd/benchrunner).
bench:
	$(GO) test -bench=. -benchmem .

## bench-json refreshes BENCH_parallel.json, the machine-readable
## headline metrics (lazy T4 hot ms, lazy QPS at 1/4/16 clients with
## scaling ratios, allocs/op of the filter/join/group-by
## microbenchmarks, and the parallel-execution section: join/group-by
## speedups at DOP = GOMAXPROCS), plus BENCH_plancache.json (compile_us
## cold vs cache-hit, plan-cache hit rate, prepared-vs-direct QPS) and
## BENCH_memory.json (micro allocs/op + bytes/op on the pooled path,
## heap-in-use and GC pauses over the 48-query bag, hot-query p50/p99
## latency at 1/16 clients) and BENCH_streaming.json (time-to-first-row
## and peak heap streaming vs materialized, the LIMIT-10 full-scan
## first-row speedup, and top-k pushdown vs Sort+Limit) and
## BENCH_robustness.json (cold mixed-bag p50/p99 clean vs fault-armed
## vs 1% injected faults, degraded-result rate, chunks skipped) and
## BENCH_overload.json (goodput and admitted p50/p99 at 1x/2x/4x
## offered load — the run FAILS unless the admission controller holds
## the acceptance bounds, see RELIABILITY.md "Overload & admission").
## BENCH_selection.json is the frozen pre-parallelism baseline — do not
## overwrite it. BENCH_coldstart.json runs at a larger scale factor so
## the cold-start archive tax dominates fixed process overheads.
bench-json:
	$(GO) run ./cmd/benchrunner -sf 1 -basedays 2 -samples 4000 -json BENCH_parallel.json
	@cat BENCH_parallel.json
	$(GO) run ./cmd/benchrunner -sf 1 -basedays 2 -samples 4000 -plancache-json BENCH_plancache.json
	@cat BENCH_plancache.json
	$(GO) run ./cmd/benchrunner -sf 1 -basedays 2 -samples 4000 -memory-json BENCH_memory.json
	@cat BENCH_memory.json
	$(GO) run ./cmd/benchrunner -sf 1 -basedays 2 -samples 4000 -streaming-json BENCH_streaming.json
	@cat BENCH_streaming.json
	$(GO) run ./cmd/benchrunner -sf 1 -basedays 2 -samples 4000 -robustness-json BENCH_robustness.json
	@cat BENCH_robustness.json
	$(GO) run ./cmd/benchrunner -sf 1 -basedays 2 -samples 4000 -overload-json BENCH_overload.json
	@cat BENCH_overload.json
	$(GO) run ./cmd/benchrunner -sf 3 -basedays 2 -samples 60000 -coldstart-json BENCH_coldstart.json
	@cat BENCH_coldstart.json

## bench-micro runs the operator and storage microbenchmarks with
## allocation counts; compare against a baseline with benchstat.
bench-micro:
	$(GO) test -run='^$$' -bench='BenchmarkFilter|BenchmarkZoneSkip|BenchmarkHashJoin|BenchmarkGroupedAggregate' -benchmem ./internal/physical/
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/storage/
