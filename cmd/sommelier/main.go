// Command sommelier is the interactive front door of the system:
// generate a synthetic seismic chunk repository, register it under any
// of the five loading approaches, and run SQL against it.
//
// Usage:
//
//	sommelier gen -dir repo -days 8 -samples 4000
//	sommelier query -dir repo -approach lazy -sql "SELECT ..."
//	sommelier explain -dir repo -sql "SELECT ..."
//	sommelier report -dir repo -approach eager_index
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sommelier"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "report":
		err = cmdReport(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sommelier:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  sommelier gen     -dir DIR [-days N] [-samples N] [-seed N]
  sommelier query   -dir DIR [-approach A] -sql SQL   (EXPLAIN SELECT ... prints the plan)
  sommelier explain -dir DIR -sql SQL
  sommelier report  -dir DIR [-approach A]
approaches: lazy (default), eager_csv, eager_plain, eager_index, eager_dmd`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	dir := fs.String("dir", "", "output directory")
	days := fs.Int("days", 8, "days of data per station")
	samples := fs.Int("samples", 4000, "samples per chunk file")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("gen: -dir is required")
	}
	cfg := sommelier.DefaultRepoConfig(*days)
	cfg.SamplesPerFile = *samples
	cfg.Seed = *seed
	t0 := time.Now()
	if err := sommelier.GenerateRepository(*dir, cfg); err != nil {
		return err
	}
	fmt.Printf("generated repository under %s in %v\n", *dir, time.Since(t0).Round(time.Millisecond))
	return nil
}

func openFlags(fs *flag.FlagSet) (dir *string, approach *string) {
	dir = fs.String("dir", "", "repository directory")
	approach = fs.String("approach", "lazy", "loading approach")
	return
}

func openDB(dir, approach string) (*sommelier.DB, error) {
	if dir == "" {
		return nil, fmt.Errorf("-dir is required")
	}
	t0 := time.Now()
	db, err := sommelier.Open(dir, sommelier.Config{Approach: sommelier.Approach(approach)})
	if err != nil {
		return nil, err
	}
	fmt.Printf("-- prepared (%s) in %v\n", approach, time.Since(t0).Round(time.Microsecond))
	return db, nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir, approach := openFlags(fs)
	sql := fs.String("sql", "", "SQL statement")
	fs.Parse(args)
	if *sql == "" {
		return fmt.Errorf("query: -sql is required")
	}
	db, err := openDB(*dir, *approach)
	if err != nil {
		return err
	}
	res, err := db.Query(*sql)
	if err != nil {
		return err
	}
	fmt.Print(sommelier.FormatResult(res))
	st := res.Stats
	fmt.Printf("-- T%d  stage1=%v load=%v stage2=%v  chunks: %d selected, %d loaded, %d cached\n",
		res.QueryType, st.Stage1.Round(time.Microsecond), st.Load.Round(time.Microsecond),
		st.Stage2.Round(time.Microsecond), st.ChunksSelected, st.ChunksLoaded, st.CacheHits)
	if res.DMd.Requested > 0 {
		fmt.Printf("-- DMd: %d windows requested, %d covered, %d derived in %v\n",
			res.DMd.Requested, res.DMd.Covered, res.DMd.Computed, res.DMd.Derivation.Round(time.Microsecond))
	}
	return nil
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	dir, approach := openFlags(fs)
	sql := fs.String("sql", "", "SQL statement")
	fs.Parse(args)
	if *sql == "" {
		return fmt.Errorf("explain: -sql is required")
	}
	db, err := openDB(*dir, *approach)
	if err != nil {
		return err
	}
	out, err := db.Explain(*sql)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	dir, approach := openFlags(fs)
	fs.Parse(args)
	db, err := openDB(*dir, *approach)
	if err != nil {
		return err
	}
	rep := db.Report()
	fmt.Printf("approach:       %s\n", rep.Approach)
	fmt.Printf("files:          %d\n", rep.Files)
	fmt.Printf("segments:       %d\n", rep.Segments)
	fmt.Printf("rows loaded:    %d\n", rep.Rows)
	fmt.Printf("metadata time:  %v\n", rep.MetadataTime.Round(time.Microsecond))
	fmt.Printf("mSEED→CSV:      %v\n", rep.Breakdown.MseedToCSV.Round(time.Microsecond))
	fmt.Printf("CSV→DB:         %v\n", rep.Breakdown.CSVToDB.Round(time.Microsecond))
	fmt.Printf("mSEED→DB:       %v\n", rep.Breakdown.MseedToDB.Round(time.Microsecond))
	fmt.Printf("indexing:       %v\n", rep.Breakdown.Indexing.Round(time.Microsecond))
	fmt.Printf("DMd derivation: %v\n", rep.Breakdown.DMdDerivation.Round(time.Microsecond))
	fmt.Printf("total:          %v\n", rep.TotalTime().Round(time.Microsecond))
	fmt.Printf("repo bytes:     %d\n", rep.MseedBytes)
	fmt.Printf("metadata bytes: %d\n", rep.MetadataBytes)
	fmt.Printf("data bytes:     %d\n", rep.DataBytes)
	fmt.Printf("index bytes:    %d\n", rep.IndexBytes)
	return nil
}
