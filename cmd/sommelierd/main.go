// Command sommelierd serves SQL queries over a registered chunk
// repository as an HTTP JSON API — the system as a service rather than
// a library. An adaptive admission controller bounds how many queries
// execute concurrently on one shared engine.DB (safe by the engine's
// concurrency guarantees): the limit floats between -workers-min and
// -workers-max by AIMD on observed latency, excess load queues with a
// deadline-aware bound and sheds with 429 + Retry-After, each request
// carries a context deadline enforced at morsel granularity, and
// SIGINT/SIGTERM trigger a graceful drain.
//
// Usage:
//
//	sommelierd -dir repo -approach lazy -addr :8707 -workers 8
//	sommelierd -remote http://archive:9000/chunks   # serve a remote archive
//	sommelierd -gen-days 2          # demo mode: synthetic temp repo
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT ...", "timeout_ms": 5000}
//	GET  /stats    server, admission, cache and engine counters
//	GET  /healthz  liveness probe
//	GET  /readyz   readiness probe (503 while overloaded)
//
// With -pprof ADDR the standard net/http/pprof handlers are served on a
// separate listener (GET /debug/pprof/), so CPU, heap, mutex and block
// profiles can be captured from a running server.
//
// Robustness knobs (see RELIABILITY.md): -degraded makes partial
// results the server default when an archive chunk is unavailable,
// -faults/-fault-seed arm the deterministic fault injector, the
// -fetch-*/-breaker-*/-quarantine-ttl flags tune the remote-archive
// retry, circuit-breaker and quarantine policies, and the overload
// controls (-workers-min, -workers-max, -queue, -global-memory-bytes,
// -governor-wait) bound concurrency and memory under hostile traffic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only by -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
	"sommelier/internal/seismic"
	"sommelier/internal/server"
	"sommelier/internal/table"
)

// options collects every flag so run stays testable and new knobs do
// not grow the positional parameter list.
type options struct {
	addr        string
	dir         string
	remote      string
	approach    string
	workers     int
	workersMin  int
	workersMax  int
	queue       int
	timeout     time.Duration
	maxTimeout  time.Duration
	cacheBytes  int64
	cachePolicy string
	cacheDir    string
	diskCacheB  int64
	maxPar      int
	maxQueryB   int64
	globalMemB  int64
	govWait     time.Duration
	genDays     int
	pprofAddr   string

	// Robustness.
	degraded      bool
	faults        string
	faultSeed     int64
	fetchTimeout  time.Duration
	fetchRetries  int
	fetchBackoff  time.Duration
	quarantineTTL time.Duration
	breakerThresh int
	breakerCool   time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8707", "listen address")
	flag.StringVar(&o.dir, "dir", "", "repository directory (empty: generate a synthetic demo repo)")
	flag.StringVar(&o.remote, "remote", "", "base URL of a remote HTTP chunk archive (overrides -dir)")
	flag.StringVar(&o.approach, "approach", "lazy", "loading approach: lazy, eager_csv, eager_plain, eager_index, eager_dmd")
	flag.IntVar(&o.workers, "workers", 0, "initial concurrent-query limit for the adaptive controller (0 = GOMAXPROCS)")
	flag.IntVar(&o.workersMin, "workers-min", 0, "floor of the adaptive concurrency limit (0 = 1)")
	flag.IntVar(&o.workersMax, "workers-max", 0, "ceiling of the adaptive concurrency limit (0 = 4x workers)")
	flag.IntVar(&o.queue, "queue", 0, "queued query bound before shedding with 429 (0 = 4x workers-max)")
	flag.DurationVar(&o.timeout, "timeout", 30*time.Second, "default per-query timeout")
	flag.DurationVar(&o.maxTimeout, "max-timeout", 5*time.Minute, "cap on client-requested timeout_ms")
	flag.Int64Var(&o.cacheBytes, "cache-bytes", 0, "recycler capacity in bytes (0 = default, negative = disable)")
	flag.StringVar(&o.cachePolicy, "cache-policy", "lru", "recycler replacement policy: lru, cost-aware")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "persistent disk cache tier directory (lazy approach): evicted chunks spill here and restarts are warm; empty = RAM-only")
	flag.Int64Var(&o.diskCacheB, "disk-cache-bytes", 0, "disk tier capacity in bytes (0 = unbounded)")
	flag.IntVar(&o.maxPar, "max-parallel", 0, "per-query parallelism: chunk ingestion fan-out and execution DOP (0 = adaptive, 1 = serial)")
	flag.Int64Var(&o.maxQueryB, "max-query-bytes", 0, "per-query memory ceiling on materialized bytes; exceeding it fails the query with 413 (0 = unlimited)")
	flag.Int64Var(&o.globalMemB, "global-memory-bytes", 0, "process-wide memory governor: total bytes all in-flight queries may hold; exhaustion degrades to queueing then 429 (0 = ungoverned)")
	flag.DurationVar(&o.govWait, "governor-wait", 0, "how long a query waits for governed memory before shedding (0 = default 100ms)")
	flag.IntVar(&o.genDays, "gen-days", 2, "days of synthetic data when generating a demo repo")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")

	flag.BoolVar(&o.degraded, "degraded", false, "default to degraded mode: answer over available chunks when some are unreachable (per-request override via \"degraded\")")
	flag.StringVar(&o.faults, "faults", "", "deterministic fault-injection spec, e.g. registrar.http=error:0.05 (empty: honor SOMMELIER_FAULTS; \"off\" disables)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 0, "seed for the -faults schedule (reproducible fault sequences)")
	flag.DurationVar(&o.fetchTimeout, "fetch-timeout", 30*time.Second, "per-attempt deadline for one remote chunk fetch")
	flag.IntVar(&o.fetchRetries, "fetch-retries", 0, "max fetch attempts per chunk, including the first (0 = default 3)")
	flag.DurationVar(&o.fetchBackoff, "fetch-backoff", 0, "base retry backoff, doubled per attempt with jitter (0 = default 50ms)")
	flag.DurationVar(&o.quarantineTTL, "quarantine-ttl", 0, "how long a failed chunk stays quarantined (0 = default 30s, negative disables)")
	flag.IntVar(&o.breakerThresh, "breaker-threshold", 0, "consecutive fetch failures before the per-host circuit opens (0 = default 5)")
	flag.DurationVar(&o.breakerCool, "breaker-cooldown", 0, "how long an open circuit waits before a half-open probe (0 = default 2s)")
	flag.Parse()

	if err := run(o); err != nil {
		log.Fatalf("sommelierd: %v", err)
	}
}

func run(o options) error {
	if o.pprofAddr != "" {
		// Opt-in profiling endpoint on its own listener, so CPU and
		// contention profiles can be captured from a production server
		// without exposing pprof on the query port. The query mux is a
		// dedicated ServeMux; the net/http/pprof handlers live only on
		// the DefaultServeMux served here.
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", o.pprofAddr)
			if err := http.ListenAndServe(o.pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	var policy cache.Policy
	switch o.cachePolicy {
	case "lru":
		policy = cache.LRU
	case "cost-aware":
		policy = cache.CostAware
	default:
		return fmt.Errorf("unknown -cache-policy %q", o.cachePolicy)
	}
	cfg := engine.Config{
		Approach:          registrar.Approach(o.approach),
		CacheBytes:        o.cacheBytes,
		CachePolicy:       policy,
		CacheDir:          o.cacheDir,
		DiskCacheBytes:    o.diskCacheB,
		MaxParallel:       o.maxPar,
		MaxQueryBytes:     o.maxQueryB,
		GlobalMemoryBytes: o.globalMemB,
		GovernorWait:      o.govWait,
		Degraded:          o.degraded,
		Faults:            o.faults,
		FaultSeed:         o.faultSeed,
	}

	t0 := time.Now()
	var db *engine.DB
	var err error
	var origin string
	if o.remote != "" {
		repo := &registrar.HTTPRepository{
			BaseURL: o.remote,
			Timeout: o.fetchTimeout,
			Retry: registrar.RetryPolicy{
				MaxAttempts: o.fetchRetries,
				BaseBackoff: o.fetchBackoff,
			},
			Breaker: registrar.BreakerConfig{
				Threshold: o.breakerThresh,
				Cooldown:  o.breakerCool,
			},
			QuarantineTTL: o.quarantineTTL,
		}
		if err := repo.Discover(context.Background()); err != nil {
			return fmt.Errorf("discover %s: %w", o.remote, err)
		}
		db, err = engine.OpenSource(repo, "", cfg)
		origin = o.remote
	} else {
		dir := o.dir
		if dir == "" {
			d, mkErr := os.MkdirTemp("", "sommelierd-demo-")
			if mkErr != nil {
				return mkErr
			}
			log.Printf("no -dir given: generating %d-day synthetic repository under %s", o.genDays, d)
			if _, genErr := seisgen.Generate(d, seisgen.DefaultConfig(o.genDays)); genErr != nil {
				return genErr
			}
			dir = d
		}
		db, err = engine.Open(dir, cfg)
		origin = dir
	}
	if err != nil {
		return err
	}
	// Register the metadata-only window view so T3 queries work out of
	// the box (the same view the evaluation suite uses).
	err = db.Catalog().AddView(&table.View{
		Name:   "windowdataview_md",
		Tables: []string{seismic.TableF, seismic.TableH},
		Joins: []table.JoinPred{
			{Left: "F.station", Right: "H.window_station"},
			{Left: "F.channel", Right: "H.window_channel"},
		},
	})
	if err != nil {
		return err
	}
	rep := db.Report()
	how := "cold"
	if db.WarmStart() {
		how = "warm restart"
	}
	log.Printf("registered %s (%s, %s): %d files, %d segments in %v",
		origin, o.approach, how, rep.Files, rep.Segments, time.Since(t0).Round(time.Millisecond))
	if o.degraded {
		log.Printf("degraded mode is the server default: partial results carry warnings")
	}

	if o.globalMemB > 0 {
		log.Printf("memory governor armed: %d bytes shared across in-flight queries", o.globalMemB)
	}
	svc := server.New(db, server.Config{
		Workers:        o.workers,
		MinWorkers:     o.workersMin,
		MaxWorkers:     o.workersMax,
		QueueDepth:     o.queue,
		DefaultTimeout: o.timeout,
		MaxTimeout:     o.maxTimeout,
	})
	httpSrv := &http.Server{Addr: o.addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (POST /query, GET /stats, GET /healthz, GET /readyz)", o.addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight queries")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	svc.Close()
	// After the drain: flush the working set to the disk tier and
	// persist the warm-restart snapshots (no-op without -cache-dir).
	if err := db.Close(); err != nil {
		log.Printf("cache close: %v", err)
	} else if o.cacheDir != "" {
		log.Printf("warm-restart state saved under %s", o.cacheDir)
	}
	log.Printf("bye")
	return nil
}
