// Command sommelierd serves SQL queries over a registered chunk
// repository as an HTTP JSON API — the system as a service rather than
// a library. A bounded worker pool executes queries concurrently on one
// shared engine.DB (safe by the engine's concurrency guarantees), each
// request carries a context deadline, and SIGINT/SIGTERM trigger a
// graceful drain.
//
// Usage:
//
//	sommelierd -dir repo -approach lazy -addr :8707 -workers 8
//	sommelierd -gen-days 2          # demo mode: synthetic temp repo
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT ...", "timeout_ms": 5000}
//	GET  /stats    server, cache and engine counters
//	GET  /healthz  liveness probe
//
// With -pprof ADDR the standard net/http/pprof handlers are served on a
// separate listener (GET /debug/pprof/), so CPU, heap, mutex and block
// profiles can be captured from a running server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the DefaultServeMux, served only by -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
	"sommelier/internal/seismic"
	"sommelier/internal/server"
	"sommelier/internal/table"
)

func main() {
	var (
		addr        = flag.String("addr", ":8707", "listen address")
		dir         = flag.String("dir", "", "repository directory (empty: generate a synthetic demo repo)")
		approach    = flag.String("approach", "lazy", "loading approach: lazy, eager_csv, eager_plain, eager_index, eager_dmd")
		workers     = flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "queued query bound before 503 (0 = 4x workers)")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-query timeout")
		maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeout_ms")
		cacheBytes  = flag.Int64("cache-bytes", 0, "recycler capacity in bytes (0 = default, negative = disable)")
		cachePolicy = flag.String("cache-policy", "lru", "recycler replacement policy: lru, cost-aware")
		maxPar      = flag.Int("max-parallel", 0, "per-query parallelism: chunk ingestion fan-out and execution DOP (0 = adaptive, 1 = serial)")
		maxQueryB   = flag.Int64("max-query-bytes", 0, "per-query memory ceiling on materialized bytes; exceeding it fails the query with 413 (0 = unlimited)")
		genDays     = flag.Int("gen-days", 2, "days of synthetic data when generating a demo repo")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()
	if err := run(*addr, *dir, *approach, *workers, *queue, *timeout, *maxTimeout,
		*cacheBytes, *cachePolicy, *maxPar, *maxQueryB, *genDays, *pprofAddr); err != nil {
		log.Fatalf("sommelierd: %v", err)
	}
}

func run(addr, dir, approach string, workers, queue int, timeout, maxTimeout time.Duration,
	cacheBytes int64, cachePolicy string, maxPar int, maxQueryBytes int64, genDays int, pprofAddr string) error {
	if pprofAddr != "" {
		// Opt-in profiling endpoint on its own listener, so CPU and
		// contention profiles can be captured from a production server
		// without exposing pprof on the query port. The query mux is a
		// dedicated ServeMux; the net/http/pprof handlers live only on
		// the DefaultServeMux served here.
		go func() {
			log.Printf("pprof listening on %s (/debug/pprof/)", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}
	if dir == "" {
		d, err := os.MkdirTemp("", "sommelierd-demo-")
		if err != nil {
			return err
		}
		log.Printf("no -dir given: generating %d-day synthetic repository under %s", genDays, d)
		if _, err := seisgen.Generate(d, seisgen.DefaultConfig(genDays)); err != nil {
			return err
		}
		dir = d
	}
	var policy cache.Policy
	switch cachePolicy {
	case "lru":
		policy = cache.LRU
	case "cost-aware":
		policy = cache.CostAware
	default:
		return fmt.Errorf("unknown -cache-policy %q", cachePolicy)
	}

	t0 := time.Now()
	db, err := engine.Open(dir, engine.Config{
		Approach:      registrar.Approach(approach),
		CacheBytes:    cacheBytes,
		CachePolicy:   policy,
		MaxParallel:   maxPar,
		MaxQueryBytes: maxQueryBytes,
	})
	if err != nil {
		return err
	}
	// Register the metadata-only window view so T3 queries work out of
	// the box (the same view the evaluation suite uses).
	err = db.Catalog().AddView(&table.View{
		Name:   "windowdataview_md",
		Tables: []string{seismic.TableF, seismic.TableH},
		Joins: []table.JoinPred{
			{Left: "F.station", Right: "H.window_station"},
			{Left: "F.channel", Right: "H.window_channel"},
		},
	})
	if err != nil {
		return err
	}
	rep := db.Report()
	log.Printf("registered %s (%s): %d files, %d segments in %v",
		dir, approach, rep.Files, rep.Segments, time.Since(t0).Round(time.Millisecond))

	svc := server.New(db, server.Config{
		Workers:        workers,
		QueueDepth:     queue,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
	})
	httpSrv := &http.Server{Addr: addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving on %s (POST /query, GET /stats, GET /healthz)", addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight queries")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	svc.Close()
	log.Printf("bye")
	return nil
}
