// Command benchrunner regenerates the paper's evaluation tables and
// figures outside the Go benchmark harness, with configurable scale.
//
// Usage:
//
//	benchrunner -exp all -work /tmp/sommelier-exp
//	benchrunner -exp fig7 -basedays 8 -samples 4000
//	benchrunner -sf 1 -json BENCH_parallel.json
//
// Experiments: tableII, tableIII, fig6, fig7, fig8, fig9, ablations,
// concurrency, all.
//
// With -json the runner instead collects the headline metrics (lazy T4
// hot query time, lazy QPS at 1/4/16 clients with scaling ratios,
// allocs/op of the filter/join/group-by microbenchmarks, and the
// parallel section: GOMAXPROCS plus the join/group-by speedup at
// DOP = GOMAXPROCS) and writes them to the given path as
// machine-readable JSON. `make bench-json` maintains the checked-in
// BENCH_parallel.json this way; BENCH_selection.json is the frozen
// pre-parallelism baseline, kept so the perf trajectory accumulates
// instead of being overwritten.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sommelier/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	work := flag.String("work", "", "working directory (default: temp)")
	baseDays := flag.Int("basedays", 4, "days per station at sf-1")
	samples := flag.Int("samples", 8000, "samples per chunk")
	sfs := flag.String("sf", "1,3,9,27", "scale factors")
	jsonPath := flag.String("json", "", "write headline metrics as JSON to this path and exit")
	planCachePath := flag.String("plancache-json", "", "write plan-cache metrics (compile_us, hit rate, prepared vs direct QPS) as JSON to this path and exit")
	memoryPath := flag.String("memory-json", "", "write memory metrics (micro allocs/op, heap+GC over the 48-query bag, hot-query p50/p99 at 1/16 clients) as JSON to this path and exit")
	streamingPath := flag.String("streaming-json", "", "write streaming metrics (time-to-first-row and peak heap streaming vs materialized, LIMIT-10 scan speedup, top-k pushdown) as JSON to this path and exit")
	robustnessPath := flag.String("robustness-json", "", "write robustness metrics (mixed-bag p50/p99 clean vs fault-armed vs 1% faults, degraded-result rate, chunks skipped) as JSON to this path and exit")
	coldstartPath := flag.String("coldstart-json", "", "write cold-start metrics (open + 48-query bag cold vs warm restart over the same cache dir, archive fetch counts, speedup) as JSON to this path and exit")
	overloadPath := flag.String("overload-json", "", "write overload metrics (goodput and admitted p50/p99 at 1x/2x/4x offered load vs capacity, shed and error counts) as JSON to this path and exit non-zero if the acceptance checks fail")
	flag.Parse()

	dir := *work
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "sommelier-exp-")
		if err != nil {
			fatal(err)
		}
	}
	cfg := experiments.DefaultConfig(dir)
	cfg.BaseDays = *baseDays
	cfg.SamplesPerFile = *samples
	cfg.ScaleFactors = nil
	for _, s := range strings.Split(*sfs, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil {
			fatal(fmt.Errorf("bad scale factor %q", s))
		}
		cfg.ScaleFactors = append(cfg.ScaleFactors, n)
	}

	if *overloadPath != "" {
		if err := experiments.WriteOverloadJSON(cfg, *overloadPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *overloadPath)
		return
	}
	if *coldstartPath != "" {
		if err := experiments.WriteColdstartJSON(cfg, *coldstartPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *coldstartPath)
		return
	}
	if *robustnessPath != "" {
		if err := experiments.WriteRobustnessJSON(cfg, *robustnessPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *robustnessPath)
		return
	}
	if *streamingPath != "" {
		if err := experiments.WriteStreamingJSON(cfg, *streamingPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *streamingPath)
		return
	}
	if *memoryPath != "" {
		if err := experiments.WriteMemoryJSON(cfg, *memoryPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *memoryPath)
		return
	}
	if *planCachePath != "" {
		if err := experiments.WritePlanCacheJSON(cfg, *planCachePath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *planCachePath)
		return
	}
	if *jsonPath != "" {
		if err := experiments.WriteHeadlineJSON(cfg, *jsonPath); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}

	run("tableII", func() error {
		rows, err := experiments.TableII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTableII(rows))
		return nil
	})
	run("tableIII", func() error {
		rows, err := experiments.TableIII(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderTableIII(rows))
		return nil
	})
	run("fig6", func() error {
		rows, err := experiments.Fig6(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig6(rows))
		return nil
	})
	run("fig7", func() error {
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig7(rows))
		return nil
	})
	run("fig8", func() error {
		rows, err := experiments.Fig8(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig8(rows))
		return nil
	})
	run("fig9", func() error {
		rows, err := experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig9(rows))
		return nil
	})
	run("concurrency", func() error {
		rows, err := experiments.ConcurrentLoad(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderConcurrency(rows))
		return nil
	})
	run("ablations", func() error {
		par, err := experiments.AblationParallelLoad(cfg)
		if err != nil {
			return err
		}
		pol, err := experiments.AblationCachePolicy(cfg)
		if err != nil {
			return err
		}
		rules, err := experiments.AblationJoinRules(cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAblations(par, pol, rules))
		return nil
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
