// Command sommelierlint is the static-analysis gate for the pooled
// memory ownership protocol. It runs two ways:
//
//	go vet -vettool=$(pwd)/bin/sommelierlint ./...   # the CI path
//	sommelierlint ./internal/...                     # standalone
//
// The suite: poolown (linear ownership of pooled batches/relations),
// selalias (no retained aliases of recycled backing), releasecheck
// (query results are released), atomicguard (no mixed atomic/plain
// access). See internal/analysis and the "Static analysis & the
// ownership protocol" section of PERFORMANCE.md.
package main

import "sommelier/internal/analysis"

func main() {
	analysis.Main(analysis.All)
}
