package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"sommelier/internal/registrar"
)

// TestRandomizedLazyEagerEquivalence is the system's central property
// test: for randomized T2/T4/T5 queries, every loading approach must
// return identical answers. It exercises the full stack — parser,
// planner (R1–R4 + predicate inference), Algorithm 1, two-stage
// execution, lazy ingestion and the recycler — against the eager
// reference.
func TestRandomizedLazyEagerEquivalence(t *testing.T) {
	dir := genRepo(t, 3)
	stations := []string{"FIAM", "ISK", "AQU", "CERA"}
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

	rng := rand.New(rand.NewSource(99))
	var queries []string
	for i := 0; i < 24; i++ {
		st := stations[rng.Intn(len(stations))]
		loH := rng.Intn(60)
		spanH := 1 + rng.Intn(16)
		lo := base.Add(time.Duration(loH) * time.Hour)
		hi := lo.Add(time.Duration(spanH) * time.Hour)
		fmtT := func(ts time.Time) string { return ts.Format("2006-01-02T15:04:05.000") }
		switch i % 3 {
		case 0: // T4 aggregate
			queries = append(queries, fmt.Sprintf(`
				SELECT AVG(D.sample_value), COUNT(*) AS n FROM dataview
				WHERE F.station = '%s'
				  AND D.sample_time >= '%s' AND D.sample_time < '%s'`,
				st, fmtT(lo), fmtT(hi)))
		case 1: // T2 window summaries
			queries = append(queries, fmt.Sprintf(`
				SELECT window_start_ts, window_max_val, window_min_val FROM H
				WHERE window_station = '%s'
				  AND window_start_ts >= '%s' AND window_start_ts < '%s'
				ORDER BY window_start_ts`,
				st, fmtT(lo), fmtT(hi)))
		default: // T5 window-filtered aggregate
			queries = append(queries, fmt.Sprintf(`
				SELECT COUNT(*) AS n, MIN(D.sample_value), MAX(D.sample_value) FROM windowdataview
				WHERE F.station = '%s'
				  AND H.window_start_ts >= '%s' AND H.window_start_ts < '%s'
				  AND H.window_std_dev >= 0`,
				st, fmtT(lo), fmtT(hi)))
		}
	}

	// The eager_plain database is the reference; the query sequence is
	// executed in order so partial-view state accumulates identically.
	apps := []registrar.Approach{registrar.EagerPlain, registrar.EagerIndex, registrar.EagerDMd, registrar.Lazy}
	answers := make(map[registrar.Approach][]string)
	for _, app := range apps {
		db := open(t, dir, app)
		for qi, sql := range queries {
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("%s query %d: %v", app, qi, err)
			}
			answers[app] = append(answers[app], renderRows(res))
		}
	}
	ref := answers[registrar.EagerPlain]
	for _, app := range apps[1:] {
		for qi := range queries {
			if answers[app][qi] != ref[qi] {
				t.Errorf("%s query %d diverges from eager_plain:\ngot:\n%s\nwant:\n%s\nsql: %s",
					app, qi, answers[app][qi], ref[qi], queries[qi])
			}
		}
	}
}

// TestSamplingEndToEnd checks the §VIII approximative answering path
// through SQL: a sampled average stays within the data's value range
// and touches fewer chunks.
func TestSamplingEndToEnd(t *testing.T) {
	dir := genRepo(t, 4)
	db := openOpt(t, dir, registrar.Lazy)
	exact, err := db.Query(`
		SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = 'FIAM'
		  AND D.sample_time >= '2010-01-01T00:00:00.000'
		  AND D.sample_time < '2010-01-05T00:00:00.000'`)
	if err != nil {
		t.Fatal(err)
	}
	db2 := openOpt(t, dir, registrar.Lazy)
	approx, err := db2.Query(`
		SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = 'FIAM'
		  AND D.sample_time >= '2010-01-01T00:00:00.000'
		  AND D.sample_time < '2010-01-05T00:00:00.000'
		SAMPLE 50`)
	if err != nil {
		t.Fatal(err)
	}
	if approx.Stats.ChunksSelected >= exact.Stats.ChunksSelected {
		t.Fatalf("sampling did not reduce chunks: %d vs %d",
			approx.Stats.ChunksSelected, exact.Stats.ChunksSelected)
	}
	if approx.Stats.SampleFraction >= 1 || approx.Stats.SampleFraction <= 0 {
		t.Fatalf("fraction = %v", approx.Stats.SampleFraction)
	}
}
