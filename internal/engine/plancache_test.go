package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

const cacheT4 = `SELECT AVG(D.sample_value), COUNT(*) AS n FROM dataview
	WHERE F.station = 'FIAM'
	  AND D.sample_time >= '2010-01-01T00:00:00.000'
	  AND D.sample_time < '2010-01-02T00:00:00.000'`

// Literal-only statements share one compiled plan: the second query —
// with different literals — must hit the cache and reuse the same plan
// object.
func TestPlanCacheHitAcrossLiterals(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	res1, err := db.Query(cacheT4)
	if err != nil {
		t.Fatal(err)
	}
	if res1.PlanCacheHit {
		t.Fatal("first execution cannot hit the cache")
	}
	res2, err := db.Query(strings.Replace(cacheT4, "'FIAM'", "'ISK'", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanCacheHit {
		t.Fatal("literal-variant statement missed the cache")
	}
	if res1.Plan != res2.Plan {
		t.Fatal("cache hit produced a different plan object")
	}
	st := db.PlanCacheStats()
	if st.Hits < 1 || st.Misses < 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Different stations must still yield different answers (the
	// parameter values flow through the shared plan).
	n1 := storage.Int64s(res1.Rel.Flatten().Cols[1])[0]
	n2 := storage.Int64s(res2.Rel.Flatten().Cols[1])[0]
	if n1 == 0 || n2 == 0 {
		t.Fatalf("counts = %d, %d", n1, n2)
	}
}

// A prepared statement executes with zero sqlparse/plan.Build/opt work:
// the plan-cache counters must not move across executions.
func TestPreparedStatementSkipsCompilation(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	stmt, err := db.Prepare(`SELECT COUNT(*) AS n FROM dataview
		WHERE F.station = ? AND D.sample_time >= ? AND D.sample_time < ?`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 3 {
		t.Fatalf("NumParams = %d", stmt.NumParams())
	}
	before := db.PlanCacheStats()
	var counts []int64
	for _, station := range []string{"FIAM", "ISK", "FIAM"} {
		res, err := stmt.Query(station, "2010-01-01T00:00:00.000", "2010-01-02T00:00:00.000")
		if err != nil {
			t.Fatal(err)
		}
		if res.Compile != 0 {
			t.Fatalf("prepared execution compiled for %v", res.Compile)
		}
		counts = append(counts, storage.Int64s(res.Rel.Flatten().Cols[0])[0])
	}
	after := db.PlanCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("prepared executions touched the compile path: %+v -> %+v", before, after)
	}
	if counts[0] != counts[2] {
		t.Fatalf("same arguments, different answers: %v", counts)
	}
	// The prepared answer matches the direct-SQL answer.
	direct, err := db.Query(cacheT4)
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.Int64s(direct.Rel.Flatten().Cols[1])[0]; got != counts[0] {
		t.Fatalf("prepared %d != direct %d", counts[0], got)
	}
}

// Auto-parameterized prepared statements re-run with their original
// literals, or with fresh values.
func TestPreparedLiteralStatement(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.EagerPlain)
	stmt, err := db.Prepare(`SELECT COUNT(*) AS n FROM F WHERE station = 'FIAM'`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Query()
	if err != nil {
		t.Fatal(err)
	}
	nFIAM := storage.Int64s(res.Rel.Flatten().Cols[0])[0]
	res2, err := stmt.Query("ISK")
	if err != nil {
		t.Fatal(err)
	}
	nISK := storage.Int64s(res2.Rel.Flatten().Cols[0])[0]
	if nFIAM == 0 || nISK == 0 {
		t.Fatalf("counts = %d, %d", nFIAM, nISK)
	}
}

func TestPlanCacheBounded(t *testing.T) {
	dir := genRepo(t, 1)
	db, err := Open(dir, Config{Approach: registrar.EagerPlain, PlanCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		// Distinct shapes (different LIMITs stay literal), so each is
		// its own cache entry.
		sql := fmt.Sprintf("SELECT station FROM F LIMIT %d", i+1)
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Size > 2 {
		t.Fatalf("cache exceeded its bound: %+v", st)
	}
	if st.Capacity != 2 {
		t.Fatalf("capacity = %d", st.Capacity)
	}
}

// EXPLAIN flows through parser, engine and (via rows) every client
// path: the result holds the optimized plan and the applied-rule log.
func TestExplainStatement(t *testing.T) {
	dir := genRepo(t, 1)
	db := openOpt(t, dir, registrar.Lazy)
	res, err := db.Query("EXPLAIN " + cacheT4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Names[0] != "plan" {
		t.Fatalf("columns = %v", res.Names)
	}
	flat := res.Rel.Flatten()
	var text strings.Builder
	for i := 0; i < flat.Len(); i++ {
		text.WriteString(flat.Cols[0].(*storage.StringColumn).Value(i))
		text.WriteByte('\n')
	}
	out := text.String()
	for _, want := range []string{"[Qf]", "rule pushdown", "rule joinorder", "scan(D"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN output lacks %q:\n%s", want, out)
		}
	}
	// EXPLAIN and its query share one cache entry.
	res2, err := db.Query(cacheT4)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanCacheHit {
		t.Fatal("query after EXPLAIN missed the cache")
	}
}

// EXPLAIN never executes, so a `?`-marker statement explains without
// arguments — and ExplainAnalyze, which does execute, takes them.
func TestExplainParameterizedStatement(t *testing.T) {
	dir := genRepo(t, 1)
	db := openOpt(t, dir, registrar.Lazy)
	res, err := db.Query(`EXPLAIN SELECT COUNT(*) AS n FROM F WHERE station = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Names[0] != "plan" {
		t.Fatalf("columns = %v", res.Names)
	}
	stmt, err := db.Prepare(`EXPLAIN SELECT COUNT(*) AS n FROM F WHERE station = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(); err != nil {
		t.Fatalf("prepared EXPLAIN: %v", err)
	}
	out, err := db.ExplainAnalyze(`SELECT COUNT(*) AS n FROM F WHERE station = ?`, "FIAM")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rows") {
		t.Fatalf("explain analyze output:\n%s", out)
	}
	if _, err := db.ExplainAnalyze(`SELECT COUNT(*) AS n FROM F WHERE station = ?`); err == nil {
		t.Fatal("missing argument accepted")
	}
}

// Concurrent Prepare/Query of one normalized statement under -race:
// the cache must stay consistent and every execution must see the
// right answer for its own arguments.
func TestPlanCacheConcurrentStress(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	const workers = 8
	const iters = 20
	stations := []string{"FIAM", "ISK"}
	// Reference answers, serially.
	want := make(map[string]int64)
	for _, st := range stations {
		res, err := db.QueryArgs(`SELECT COUNT(*) AS n FROM dataview WHERE F.station = ?`, st)
		if err != nil {
			t.Fatal(err)
		}
		want[st] = storage.Int64s(res.Rel.Flatten().Cols[0])[0]
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st := stations[(w+i)%len(stations)]
				var n int64
				if i%2 == 0 {
					stmt, err := db.Prepare(`SELECT COUNT(*) AS n FROM dataview WHERE F.station = ?`)
					if err != nil {
						errs <- err
						return
					}
					res, err := stmt.Query(st)
					if err != nil {
						errs <- err
						return
					}
					n = storage.Int64s(res.Rel.Flatten().Cols[0])[0]
				} else {
					res, err := db.Query(fmt.Sprintf(`SELECT COUNT(*) AS n FROM dataview WHERE F.station = '%s'`, st))
					if err != nil {
						errs <- err
						return
					}
					n = storage.Int64s(res.Rel.Flatten().Cols[0])[0]
				}
				if n != want[st] {
					errs <- fmt.Errorf("worker %d iter %d: %s count = %d, want %d", w, i, st, n, want[st])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
