package engine

// Warm restarts: with Config.CacheDir set, Close persists everything a
// restarted process needs to skip the cold-start tax —
//
//	D.seg      the disk cache tier's segment file (spilled chunks plus
//	           a Close-time flush of the RAM-resident working set)
//	meta.snap  the F/S metadata tables in the segment codec, keyed by
//	           a fingerprint of the archive's URI list
//	dmd.snap   the derived-metadata view (SaveDerived format)
//	plans.txt  the plan cache's normalized-SQL keys, hot-first
//
// — and the next Open re-opens segments, rebuilds the metadata view
// and pre-compiles the hot statement set without touching a single
// raw-miniSEED byte. Every load is best-effort and verified: a
// missing, mismatched (different archive) or corrupt snapshot falls
// back to a cold start, never to wrong answers. A `fingerprint`
// sidecar binds the directory as a whole to one archive: pointed at a
// different one, everything — segments included — is wiped first.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"

	"sommelier/internal/cache"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
)

const (
	metaSnapFile    = "meta.snap"
	dmdSnapFile     = "dmd.snap"
	plansFile       = "plans.txt"
	fingerprintFile = "fingerprint"

	metaSnapMagic   = "SOMM"
	metaSnapVersion = 1
	plansHeader     = "sommelier-plans-v1"
)

// snapshotFingerprint identifies the archive a snapshot was built
// from: a hash over the ordered URI list. Chunk IDs are positional, so
// any change to the list (content, order, count) must invalidate the
// snapshot AND the segment file's chunk blocks.
func snapshotFingerprint(uris []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d\n", len(uris))
	for _, u := range uris {
		fmt.Fprintf(h, "%s\n", u)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ensureCacheFingerprint binds the whole cache directory — segment
// files included, not just the metadata snapshot — to one archive. The
// snapshot carries its own embedded fingerprint, but segment blocks
// are keyed by positional chunk ID alone: pointed at a different
// archive, a stale segment would promote the *previous* archive's data
// under the new archive's IDs. So on mismatch (or a populated dir with
// no sidecar at all) every snapshot and segment is removed before the
// disk tier opens, and the sidecar is rewritten for the new archive.
func ensureCacheFingerprint(dir, fingerprint string) error {
	path := filepath.Join(dir, fingerprintFile)
	if prev, err := os.ReadFile(path); err == nil && string(prev) == fingerprint {
		return nil
	}
	stale := []string{
		filepath.Join(dir, metaSnapFile),
		filepath.Join(dir, dmdSnapFile),
		filepath.Join(dir, plansFile),
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	quarantined, _ := filepath.Glob(filepath.Join(dir, "*.seg.corrupt"))
	stale = append(append(stale, segs...), quarantined...)
	for _, p := range stale {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(fingerprint), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// saveMetaSnapshot writes the F and S tables plus the segment count in
// one CRC-guarded file (via a temp-file rename, so a crash mid-write
// leaves no half-snapshot behind).
func (db *DB) saveMetaSnapshot(path, fingerprint string) error {
	fT, _ := db.cat.Table(seismic.TableF)
	sT, _ := db.cat.Table(seismic.TableS)

	var scratch [binary.MaxVarintLen64]byte
	buf := append([]byte(metaSnapMagic), metaSnapVersion)
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:n]...)
	}
	putUvarint(uint64(len(fingerprint)))
	buf = append(buf, fingerprint...)
	db.reportMu.Lock()
	nSegs := db.report.Segments
	db.reportMu.Unlock()
	putUvarint(uint64(nSegs))
	for _, t := range []*storage.Relation{fT.Data(), sT.Data()} {
		body, err := storage.EncodeRelation(nil, t)
		if err != nil {
			return err
		}
		putUvarint(uint64(len(body)))
		buf = append(buf, body...)
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crcb[:]...)

	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadMetaSnapshot restores F and S from a snapshot if (and only if)
// it verifies against the current archive fingerprint. It reports the
// restored segment count; ok=false means "cold start, please".
func (db *DB) loadMetaSnapshot(path, fingerprint string) (nSegs int, ok bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	if len(buf) < len(metaSnapMagic)+1+4 {
		return 0, false
	}
	payload, crcb := buf[:len(buf)-4], buf[len(buf)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcb) {
		return 0, false
	}
	if string(payload[:4]) != metaSnapMagic || payload[4] != metaSnapVersion {
		return 0, false
	}
	rd := payload[5:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(rd)
		if n <= 0 {
			return 0, false
		}
		rd = rd[n:]
		return v, true
	}
	fpLen, k := next()
	if !k || uint64(len(rd)) < fpLen {
		return 0, false
	}
	if string(rd[:fpLen]) != fingerprint {
		return 0, false // different archive: snapshot is for someone else
	}
	rd = rd[fpLen:]
	segs, k := next()
	if !k {
		return 0, false
	}
	for _, tn := range []string{seismic.TableF, seismic.TableS} {
		bodyLen, k := next()
		if !k || uint64(len(rd)) < bodyLen {
			return 0, false
		}
		rel, err := storage.DecodeRelation(rd[:bodyLen])
		if err != nil {
			return 0, false
		}
		rd = rd[bodyLen:]
		// The rows become the long-lived metadata tables: dissolve pool
		// ownership, then append batch by batch (schema and PK checks
		// included — a snapshot that lies fails the restore).
		rel.Disown()
		t, _ := db.cat.Table(tn)
		for _, b := range rel.Batches() {
			if err := t.Append(b); err != nil {
				return 0, false
			}
		}
	}
	if len(rd) != 0 {
		return 0, false
	}
	return int(segs), true
}

// savePlans persists the plan cache's normalized-SQL keys (hot-first,
// one quoted string per line).
func (db *DB) savePlans(path string) error {
	keys := db.plans.Keys()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, plansHeader)
	for _, k := range keys {
		fmt.Fprintln(w, strconv.Quote(k))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// precompilePlans re-compiles a persisted statement set into the plan
// cache. Best-effort: statements that no longer compile (a view not
// yet re-registered, a changed schema) are skipped.
func (db *DB) precompilePlans(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() || sc.Text() != plansHeader {
		return
	}
	for sc.Scan() {
		sql, err := strconv.Unquote(sc.Text())
		if err != nil {
			continue
		}
		_, _ = db.Prepare(sql)
	}
}

// Close flushes the warm-restart state — the RAM-resident working set
// into the disk tier, the metadata snapshot, the derived-metadata
// snapshot, the plan keys — and closes the segment file (writing its
// footer index; only a cleanly closed segment passes the next Open's
// verification). Without a CacheDir it is a cheap no-op. Queries must
// have drained; Close does not fence against concurrent use.
func (db *DB) Close() error {
	if db.cacheDir == "" {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if db.disk != nil {
		// Chunks still resident in RAM were never evicted, so they never
		// spilled: flush them now, or the next start pays the archive
		// for exactly the hottest data.
		if d, ok := db.cat.Table(seismic.TableD); ok {
			for _, id := range d.ChunkIDs() {
				if rel, ok := d.Chunk(id); ok {
					db.disk.SpillSync(id, rel)
				}
			}
		}
	}
	keep(db.saveMetaSnapshot(filepath.Join(db.cacheDir, metaSnapFile), db.fingerprint))
	keep(db.SaveDerived(filepath.Join(db.cacheDir, dmdSnapFile)))
	keep(db.savePlans(filepath.Join(db.cacheDir, plansFile)))
	if db.disk != nil {
		keep(db.disk.Close())
	}
	return firstErr
}

// DiskCacheStats snapshots the disk tier's counters; the zero value
// when no disk tier is configured.
func (db *DB) DiskCacheStats() cache.DiskTierStats { return db.disk.Stats() }

// DiskTierEnabled reports whether a persistent cache tier is wired in.
func (db *DB) DiskTierEnabled() bool { return db.disk != nil }

// WarmStart reports whether this DB skipped metadata registration by
// restoring a snapshot (a warm restart).
func (db *DB) WarmStart() bool { return db.warmStart }

// SourceFetches reports how many raw archive opens the underlying
// chunk source has served, when the source counts them (local and HTTP
// repositories both do). ok=false means the source cannot say.
func (db *DB) SourceFetches() (n int64, ok bool) {
	if fc, okc := db.repo.(interface{ FetchCount() int64 }); okc {
		return fc.FetchCount(), true
	}
	return 0, false
}

// waitDiskIdle blocks until queued spills are written; tests use it.
func (db *DB) waitDiskIdle() { db.disk.WaitIdle() }
