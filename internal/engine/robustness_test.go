package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

func TestConcurrentQueries(t *testing.T) {
	dir := genRepo(t, 3)
	db := open(t, dir, registrar.Lazy)
	sqls := []string{
		tQueries()[1],
		tQueries()[2],
		tQueries()[4],
		tQueries()[5],
	}
	// Establish reference answers serially on a second database.
	ref := open(t, dir, registrar.Lazy)
	want := make(map[string]string)
	for _, sql := range sqls {
		res, err := ref.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		want[sql] = renderRows(res)
		res.Release()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				sql := sqls[(g+i)%len(sqls)]
				res, err := db.Query(sql)
				if err != nil {
					errs <- err
					return
				}
				got := renderRows(res)
				res.Release()
				if got != want[sql] {
					errs <- errMismatch(sql)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch string

func (e errMismatch) Error() string { return "concurrent answer mismatch for " + string(e) }

func TestFileVanishesAfterRegistration(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	// Delete every chunk file after metadata registration: the
	// metadata queries keep working, actual-data queries surface a
	// chunk-access error.
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return os.Remove(path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(tQueries()[1]); err != nil {
		t.Fatalf("metadata query failed after file removal: %v", err)
	}
	if _, err := db.Query(tQueries()[4]); err == nil {
		t.Fatal("vanished chunk not surfaced")
	}
}

func TestQueryContextCancellation(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, tQueries()[4]); err == nil {
		t.Fatal("cancelled context not honoured")
	}
	// The database remains usable afterwards.
	if _, err := db.Query(tQueries()[4]); err != nil {
		t.Fatal(err)
	}
}

func TestSQLErrorsSurfaceCleanly(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.Lazy)
	bad := []string{
		"not sql at all",
		"SELECT nosuchcol FROM F",
		"SELECT station FROM nosuchtable",
		"SELECT station, AVG(file_id) FROM F", // ungrouped column
		"SELECT AVG(station) FROM F",          // aggregate over string
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
	// A failed query must not poison later queries.
	if _, err := db.Query(tQueries()[1]); err != nil {
		t.Fatal(err)
	}
}

func TestOrderByLimitThroughEngine(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	res, err := db.Query(`
		SELECT station, uri FROM F
		WHERE channel = 'HHZ' OR channel = 'BHE'
		ORDER BY station DESC, uri ASC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 3 {
		t.Fatalf("rows = %d", res.Rows())
	}
	flat := res.Rel.Flatten()
	col := flat.Cols[0].(*storage.StringColumn)
	for i := 1; i < flat.Len(); i++ {
		if col.Value(i-1) < col.Value(i) {
			t.Fatal("not descending by station")
		}
	}
}

func TestSampleThroughSQL(t *testing.T) {
	dir := genRepo(t, 4)
	db := openOpt(t, dir, registrar.Lazy)
	res, err := db.Query(`
		SELECT COUNT(*) AS n FROM dataview
		WHERE F.station = 'FIAM' SAMPLE 50`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SampleFraction != 0.5 {
		t.Fatalf("fraction = %v", res.Stats.SampleFraction)
	}
	n := storage.Int64s(res.Rel.Flatten().Cols[0])[0]
	// Scaling by the inverse fraction estimates the full count.
	est := float64(n) / res.Stats.SampleFraction
	full, err := db.Query(`SELECT COUNT(*) AS n FROM dataview WHERE F.station = 'FIAM'`)
	if err != nil {
		t.Fatal(err)
	}
	fullN := float64(storage.Int64s(full.Rel.Flatten().Cols[0])[0])
	if est < fullN*0.5 || est > fullN*1.5 {
		t.Fatalf("scaled estimate %v far from %v", est, fullN)
	}
}

func TestExplainAnalyze(t *testing.T) {
	dir := genRepo(t, 2)
	db := openOpt(t, dir, registrar.Lazy)
	out, err := db.ExplainAnalyze(tQueries()[4])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[Qf]", "rows", "chunks:", "scan(D"} {
		if !containsStr(out, want) {
			t.Fatalf("explain analyze lacks %q:\n%s", want, out)
		}
	}
	if _, err := db.ExplainAnalyze("not sql"); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func containsStr(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}
