package engine

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sommelier/internal/seismic"
	"sommelier/internal/storage"
)

// derivedFileVersion guards the snapshot format.
const derivedFileVersion = "sommelier-dmd-v1"

// SaveDerived persists the materialized derived-metadata view H to
// path. In the paper's host system the view lives in the database and
// survives restarts; here a snapshot makes the derivation investment
// durable across engine restarts (the recycler cache, by contrast, is
// intentionally volatile).
func (db *DB) SaveDerived(path string) error {
	hT, _ := db.cat.Table(seismic.TableH)
	flat := hT.Data().Flatten()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, derivedFileVersion)
	n := flat.Len()
	for r := 0; r < n; r++ {
		sta := flat.Cols[0].(*storage.StringColumn).Value(r)
		ch := flat.Cols[1].(*storage.StringColumn).Value(r)
		ws := storage.Int64s(flat.Cols[2])[r]
		fmt.Fprintf(w, "%s,%s,%d,%g,%g,%g,%g\n",
			sta, ch, ws,
			storage.Float64s(flat.Cols[3])[r],
			storage.Float64s(flat.Cols[4])[r],
			storage.Float64s(flat.Cols[5])[r],
			storage.Float64s(flat.Cols[6])[r],
		)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDerived restores a derived-metadata snapshot written by
// SaveDerived into H and the coverage tracking of Algorithm 1, so
// previously derived windows are reused rather than recomputed.
func (db *DB) LoadDerived(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != derivedFileVersion {
		return fmt.Errorf("engine: %s is not a derived-metadata snapshot", path)
	}
	hT, _ := db.cat.Table(seismic.TableH)
	var stas, chans []string
	var wss []int64
	var maxs, mins, means, sdevs []float64
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 7 {
			return fmt.Errorf("engine: %s:%d: %d fields", path, lineNo, len(parts))
		}
		ws, err := strconv.ParseInt(parts[2], 10, 64)
		if err != nil {
			return fmt.Errorf("engine: %s:%d: bad window: %w", path, lineNo, err)
		}
		vals := make([]float64, 4)
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(parts[3+i], 64)
			if err != nil {
				return fmt.Errorf("engine: %s:%d: bad value: %w", path, lineNo, err)
			}
			vals[i] = v
		}
		stas = append(stas, parts[0])
		chans = append(chans, parts[1])
		wss = append(wss, ws)
		maxs = append(maxs, vals[0])
		mins = append(mins, vals[1])
		means = append(means, vals[2])
		sdevs = append(sdevs, vals[3])
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(stas) == 0 {
		return nil
	}
	err = hT.Append(storage.NewBatch(
		storage.NewStringColumn(stas),
		storage.NewStringColumn(chans),
		storage.NewTimeColumn(wss),
		storage.NewFloat64Column(maxs),
		storage.NewFloat64Column(mins),
		storage.NewFloat64Column(means),
		storage.NewFloat64Column(sdevs),
	))
	if err != nil {
		return err
	}
	for i := range stas {
		db.dmd.MarkMaterialized(stas[i], chans[i], wss[i])
	}
	return nil
}
