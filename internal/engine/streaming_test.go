package engine

// Differential and stress tests for streaming execution at the engine
// level: QueryStream must deliver exactly the rows Query materializes,
// in order, for the whole query bag, at every degree of parallelism,
// with pooling on or off — and a client that stops or drops mid-stream
// must never leak a pooled batch, even under heavy concurrency.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"

	"sommelier/internal/physical"
	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

// renderRel renders a relation the way renderBits renders a result, so
// streamed and materialized rows compare bitwise.
func renderRel(rel *storage.Relation) string {
	if rel == nil {
		return ""
	}
	var sb strings.Builder
	flat := rel.Flatten()
	for r := 0; r < flat.Len(); r++ {
		for c := 0; c < flat.Width(); c++ {
			v := storage.ValueAt(flat.Cols[c], r)
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&sb, "%.17g|", f)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// streamingQueries is optDiffQueries plus shapes where streaming does
// real work: wide projections with no aggregate, and ORDER BY + LIMIT
// (the topk path).
func streamingQueries() []string {
	return append(optDiffQueries(),
		`SELECT D.sample_time, D.sample_value FROM dataview
		   WHERE F.station = 'FIAM' AND D.sample_time < '2010-01-02T00:00:00.000'`,
		`SELECT D.sample_time, D.sample_value FROM dataview
		   WHERE F.station = 'ISK' LIMIT 10`,
		`SELECT D.sample_value, D.sample_time FROM dataview
		   WHERE F.station = 'AQU' ORDER BY D.sample_value DESC, D.sample_time LIMIT 25`,
		`EXPLAIN SELECT COUNT(*) AS n FROM F WHERE station = 'FIAM'`,
	)
}

// TestStreamingMatchesMaterialized is the acceptance differential:
// every query of the bag, streamed, equals its materialized result
// row-for-row and in order — across DOP 1/2/4/8 and pooling on/off —
// with the pool gauge back at baseline after each configuration.
func TestStreamingMatchesMaterialized(t *testing.T) {
	dir := genRepo(t, 2)
	queries := streamingQueries()
	defer storage.SetPooling(true)
	for _, par := range []int{1, 2, 4, 8} {
		for _, pooled := range []bool{true, false} {
			storage.SetPooling(pooled)
			db, err := Open(dir, Config{Approach: registrar.Lazy, MaxParallel: par})
			if err != nil {
				t.Fatal(err)
			}
			for qi, sql := range queries {
				res, err := db.Query(sql)
				if err != nil {
					t.Fatalf("par %d query %d: %v", par, qi, err)
				}
				want := renderRel(res.Rel)
				res.Release()
				sink := &physical.CollectSink{}
				sres, err := db.QueryStream(context.Background(), sql, sink)
				if err != nil {
					t.Fatalf("par %d pooled %v query %d (stream): %v", par, pooled, qi, err)
				}
				if got := renderRel(sink.Rel); got != want {
					t.Errorf("par %d pooled %v query %d: streamed rows diverge:\ngot:\n%s\nwant:\n%s",
						par, pooled, qi, got, want)
				}
				if sink.Rel != nil {
					sink.Rel.Release()
				}
				sres.Release()
			}
			storage.RequireNoLeaks(t)
		}
	}
}

// countingStopSink consumes rows up to a limit and then stops the
// stream gracefully (a client that has all it wants).
type countingStopSink struct {
	limit int
	rows  int
}

func (s *countingStopSink) Push(b *storage.Batch) error {
	s.rows += b.Len()
	storage.PutBatch(b)
	if s.rows >= s.limit {
		return physical.ErrStopStream
	}
	return nil
}

// dropSink consumes rows up to a limit and then fails the stream (a
// client whose connection died mid-response).
type dropSink struct {
	limit int
	rows  int
	err   error
}

func (s *dropSink) Push(b *storage.Batch) error {
	s.rows += b.Len()
	storage.PutBatch(b)
	if s.rows >= s.limit {
		return s.err
	}
	return nil
}

// cancelSink cancels the query context mid-stream but keeps accepting
// batches (a client whose request context is torn down while the
// response is in flight).
type cancelSink struct {
	limit  int
	rows   int
	cancel context.CancelFunc
}

func (s *cancelSink) Push(b *storage.Batch) error {
	s.rows += b.Len()
	storage.PutBatch(b)
	if s.rows >= s.limit {
		s.cancel()
	}
	return nil
}

// TestStreamingDisconnectStress hammers one DB with concurrent
// streaming queries whose clients stop politely, drop abruptly, or
// cancel their context at random points mid-stream. Run with -race;
// the pool gauge must return to baseline regardless of how each
// stream ended.
func TestStreamingDisconnectStress(t *testing.T) {
	dir := genRepo(t, 1)
	db, err := Open(dir, Config{Approach: registrar.Lazy, MaxParallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT D.sample_time, D.sample_value FROM dataview
	             WHERE D.sample_time < '2010-01-02T00:00:00.000'`
	errConnReset := errors.New("connection reset by peer")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 6; i++ {
				limit := 1 + rng.Intn(4000)
				switch rng.Intn(3) {
				case 0:
					sink := &countingStopSink{limit: limit}
					if _, err := db.QueryStream(context.Background(), q, sink); err != nil {
						t.Errorf("polite stop: %v", err)
					}
				case 1:
					sink := &dropSink{limit: limit, err: errConnReset}
					_, err := db.QueryStream(context.Background(), q, sink)
					// A tiny result can finish before the drop triggers.
					if err != nil && !errors.Is(err, errConnReset) {
						t.Errorf("drop: %v", err)
					}
				case 2:
					ctx, cancel := context.WithCancel(context.Background())
					sink := &cancelSink{limit: limit, cancel: cancel}
					_, err := db.QueryStream(ctx, q, sink)
					if err != nil && !errors.Is(err, context.Canceled) {
						t.Errorf("cancel: %v", err)
					}
					cancel()
				}
			}
		}(int64(w) + 71)
	}
	wg.Wait()
	storage.RequireNoLeaks(t)
}

// TestStreamingQuota pins the engine-level memory-ceiling contract: a
// materializing query over a ceiling-limited DB fails with a typed
// *storage.QuotaError, while a streaming query under the same ceiling
// succeeds — stage one's small metadata result still has to fit (it
// always materializes), but the streamed stage-two rows never count.
func TestStreamingQuota(t *testing.T) {
	if v := os.Getenv(EnvForceStreaming); v != "" && v != "0" {
		// Forced streaming routes Query through the streaming drain, so
		// the materialized side of this differential cannot trip the
		// ceiling — the contract under test doesn't exist in this mode.
		t.Skipf("%s set: no materialized path to meter", EnvForceStreaming)
	}
	dir := genRepo(t, 1)
	const ceiling = 16 << 10 // far below the result size, far above stage one's
	db, err := Open(dir, Config{Approach: registrar.Lazy, MaxQueryBytes: ceiling})
	if err != nil {
		t.Fatal(err)
	}
	const q = `SELECT D.sample_time, D.sample_value FROM dataview
	             WHERE D.sample_time < '2010-01-02T00:00:00.000'`
	_, err = db.Query(q)
	var qe *storage.QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("materialized query under %d-byte ceiling: err = %v, want *storage.QuotaError", ceiling, err)
	}
	storage.RequireNoLeaks(t)

	// The streaming path buffers only the bounded run-ahead window; a
	// serial stream (DOP 1) buffers nothing chargeable in stage two.
	db1, err := Open(dir, Config{Approach: registrar.Lazy, MaxParallel: 1, MaxQueryBytes: ceiling})
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingStopSink{limit: 1 << 30}
	if _, err := db1.QueryStream(context.Background(), q, sink); err != nil {
		t.Fatalf("serial streaming under %d-byte ceiling: %v", ceiling, err)
	}
	if sink.rows*16 <= ceiling {
		t.Fatalf("stream delivered only %d rows — result fits the ceiling, test proves nothing", sink.rows)
	}
	storage.RequireNoLeaks(t)
}
