package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultPlanCacheSize is the compiled-plan cache capacity (entries)
// when none is configured.
const DefaultPlanCacheSize = 256

// PlanCacheStats reports compiled-plan cache activity.
type PlanCacheStats struct {
	Hits, Misses int64
	Size         int
	Capacity     int
}

// planCache is a bounded LRU of compiled statements keyed by normalized
// SQL. It is safe for concurrent use; two goroutines racing to compile
// the same statement both succeed (last insert wins — compilation is
// idempotent, and compiled plans are immutable, so either entry serves
// both).
type planCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent; values are *cacheEntry
	m   map[string]*list.Element

	hits, misses atomic.Int64
}

type cacheEntry struct {
	key string
	c   *compiled
}

// newPlanCache returns a cache bounded to capacity entries; capacity
// <= 0 disables caching (every Get misses, Put is a no-op).
func newPlanCache(capacity int) *planCache {
	pc := &planCache{cap: capacity}
	if capacity > 0 {
		pc.ll = list.New()
		pc.m = make(map[string]*list.Element, capacity)
	}
	return pc
}

// Get returns the compiled statement for key, marking it most recently
// used.
func (pc *planCache) Get(key string) (*compiled, bool) {
	if pc.cap <= 0 {
		pc.misses.Add(1)
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.m[key]
	if !ok {
		pc.misses.Add(1)
		return nil, false
	}
	pc.ll.MoveToFront(el)
	pc.hits.Add(1)
	return el.Value.(*cacheEntry).c, true
}

// Put inserts (or refreshes) a compiled statement, evicting the least
// recently used entry beyond capacity.
func (pc *planCache) Put(key string, c *compiled) {
	if pc.cap <= 0 {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.m[key]; ok {
		el.Value.(*cacheEntry).c = c
		pc.ll.MoveToFront(el)
		return
	}
	pc.m[key] = pc.ll.PushFront(&cacheEntry{key: key, c: c})
	for pc.ll.Len() > pc.cap {
		last := pc.ll.Back()
		pc.ll.Remove(last)
		delete(pc.m, last.Value.(*cacheEntry).key)
	}
}

// Keys returns the cached normalized-SQL keys, most recently used
// first. The warm-restart machinery persists them so a restarted
// process can pre-compile the hot statement set.
func (pc *planCache) Keys() []string {
	if pc.cap <= 0 {
		return nil
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	keys := make([]string, 0, pc.ll.Len())
	for el := pc.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*cacheEntry).key)
	}
	return keys
}

// Stats snapshots the counters.
func (pc *planCache) Stats() PlanCacheStats {
	st := PlanCacheStats{
		Hits:     pc.hits.Load(),
		Misses:   pc.misses.Load(),
		Capacity: pc.cap,
	}
	if pc.cap > 0 {
		pc.mu.Lock()
		st.Size = pc.ll.Len()
		pc.mu.Unlock()
	}
	return st
}
