// Package engine ties the system together: it opens a chunk repository
// under one of the five loading approaches, maintains the warehouse
// catalog, the chunk recycler and the derived-metadata manager, and
// answers SQL queries through the two-stage executor.
package engine

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/dmd"
	"sommelier/internal/exec"
	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/registrar"
	"sommelier/internal/seismic"
	"sommelier/internal/sqlparse"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// Config parameterizes Open.
type Config struct {
	// Approach selects the loading strategy; default lazy.
	Approach registrar.Approach
	// CacheBytes bounds the recycler; 0 picks a large default.
	// Negative disables caching entirely.
	CacheBytes int64
	// CachePolicy selects the replacement policy (default LRU, as in
	// the paper; CostAware is the "smarter caching" extension).
	CachePolicy cache.Policy
	// MaxParallel bounds per-query parallelism: chunk-ingestion fan-out
	// and the degree of parallelism of query execution (morsel-parallel
	// scans, join probes, partial aggregation). 0 = adaptive (GOMAXPROCS
	// shared across in-flight queries), 1 = fully serial (the
	// parallelization ablation), any other value is taken literally.
	MaxParallel int
}

// DefaultCacheBytes is the recycler capacity when none is configured.
const DefaultCacheBytes = 4 << 30

// DB is an open database over one registered repository.
//
// A DB is safe for concurrent use: any number of goroutines may call
// Query/QueryContext/Run simultaneously. The executor deduplicates
// concurrent loads of the same missing chunk, pins every chunk a query
// scans so another query's cache eviction cannot yank it mid-scan, and
// serializes derived-metadata maintenance (Algorithm 1) behind the DMd
// manager's lock. Two concurrent queries therefore return exactly what
// they would have returned when run serially.
type DB struct {
	cat      *table.Catalog
	repo     registrar.ChunkSource
	env      *exec.Env
	recycler *cache.Recycler
	dmd      *dmd.Manager
	indexes  *registrar.Indexes

	reportMu sync.Mutex
	report   registrar.Report
}

// Open registers the local repository under dir with the given approach
// and returns a queryable database. The returned report carries the
// full preparation cost breakdown (Figure 6) and size accounting
// (Table III).
func Open(dir string, cfg Config) (*DB, error) {
	repo, err := registrar.DiscoverRepository(dir)
	if err != nil {
		return nil, err
	}
	return OpenSource(repo, dir+"-csv", cfg)
}

// OpenSource registers any chunk source — a local directory, an HTTP
// archive (registrar.HTTPRepository), or a custom implementation — the
// paper's "Other Sources" extension point. csvDir is the scratch
// directory for the eager_csv detour; empty uses a temp dir.
func OpenSource(repo registrar.ChunkSource, csvDir string, cfg Config) (*DB, error) {
	if cfg.Approach == "" {
		cfg.Approach = registrar.Lazy
	}
	if csvDir == "" {
		d, err := os.MkdirTemp("", "sommelier-csv-")
		if err != nil {
			return nil, err
		}
		csvDir = d
	}
	db := &DB{cat: seismic.NewCatalog(), repo: repo}
	db.report.Approach = cfg.Approach
	db.report.Files = len(repo.URIs())

	// All approaches start with the Registrar: eager loading of the
	// given metadata.
	nSegs, mdTime, err := registrar.RegisterMetadata(db.cat, repo)
	if err != nil {
		return nil, err
	}
	db.report.Segments = nSegs
	db.report.MetadataTime = mdTime

	switch cfg.Approach {
	case registrar.Lazy:
		capacity := cfg.CacheBytes
		if capacity == 0 {
			capacity = DefaultCacheBytes
		}
		if capacity > 0 {
			d, _ := db.cat.Table(seismic.TableD)
			db.recycler = cache.New(capacity, cfg.CachePolicy, func(id int64) { d.DropChunk(id) })
		}
		db.env = &exec.Env{
			Catalog:     db.cat,
			Mode:        exec.ModeLazy,
			Loader:      repo,
			MaxParallel: cfg.MaxParallel,
			Recyclers:   map[string]*cache.Recycler{},
		}
		if db.recycler != nil {
			db.env.Recyclers[seismic.TableD] = db.recycler
		}
	case registrar.EagerCSV:
		rows, csvBytes, toCSV, toDB, err := registrar.LoadAllCSV(db.cat, repo, csvDir)
		if err != nil {
			return nil, err
		}
		db.report.Rows = rows
		db.report.CSVBytes = csvBytes
		db.report.Breakdown.MseedToCSV = toCSV
		db.report.Breakdown.CSVToDB = toDB
		db.env = &exec.Env{Catalog: db.cat, Mode: exec.ModeEagerFull, MaxParallel: cfg.MaxParallel}
	case registrar.EagerPlain:
		rows, dur, err := registrar.LoadAllPlain(db.cat, repo)
		if err != nil {
			return nil, err
		}
		db.report.Rows = rows
		db.report.Breakdown.MseedToDB = dur
		db.env = &exec.Env{Catalog: db.cat, Mode: exec.ModeEagerFull, MaxParallel: cfg.MaxParallel}
	case registrar.EagerIndex, registrar.EagerDMd:
		rows, dur, err := registrar.LoadAllClustered(db.cat, repo)
		if err != nil {
			return nil, err
		}
		db.report.Rows = rows
		db.report.Breakdown.MseedToDB = dur
		ix, ixDur, err := registrar.BuildIndexes(db.cat)
		if err != nil {
			return nil, err
		}
		db.indexes = ix
		db.report.Breakdown.Indexing = ixDur
		db.env = &exec.Env{Catalog: db.cat, Mode: exec.ModeEagerIndexed, MaxParallel: cfg.MaxParallel}
		// Expose the hash indexes as index-scan access paths.
		db.env.MetaIndexes = map[string][]exec.MetaIndex{
			seismic.TableF: {
				{Cols: []string{"station", "channel"}, Ix: ix.FByStaCh, Data: ix.FMeta},
				{Cols: []string{"file_id"}, Ix: ix.FByID, Data: ix.FMeta},
			},
			seismic.TableS: {
				{Cols: []string{"file_id", "segment_id"}, Ix: ix.SByKey, Data: ix.SMeta},
			},
		}
	default:
		return nil, fmt.Errorf("engine: unknown approach %q", cfg.Approach)
	}

	db.dmd = dmd.NewManager(db.cat, fetcherFunc(db.fetchSeries))
	if cfg.Approach == registrar.EagerDMd {
		if _, dur, err := db.dmd.DeriveAll(); err != nil {
			return nil, err
		} else {
			db.report.Breakdown.DMdDerivation = dur
		}
	}
	db.fillSizes()
	return db, nil
}

// fetcherFunc adapts a function to the dmd.Fetcher interface.
type fetcherFunc func(station, channel string, from, to int64) ([]int64, []float64, error)

func (f fetcherFunc) FetchSeries(station, channel string, from, to int64) ([]int64, []float64, error) {
	return f(station, channel, from, to)
}

// fetchSeries retrieves one station/channel series through the regular
// two-stage execution path, so DMd derivation exploits lazy loading.
func (db *DB) fetchSeries(station, channel string, from, to int64) ([]int64, []float64, error) {
	q := &plan.Query{
		Select: []plan.SelectItem{
			{Expr: expr.Col("D.sample_time")},
			{Expr: expr.Col("D.sample_value")},
		},
		From: seismic.ViewData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str(station)),
			expr.NewCmp(expr.EQ, expr.Col("F.channel"), expr.Str(channel)),
			expr.NewCmp(expr.GE, expr.Col("D.sample_time"), expr.Time(from)),
			expr.NewCmp(expr.LT, expr.Col("D.sample_time"), expr.Time(to)),
		}),
	}
	p, err := plan.Build(db.cat, q)
	if err != nil {
		return nil, nil, err
	}
	res, err := exec.Execute(db.env, p)
	if err != nil {
		return nil, nil, err
	}
	flat := res.Rel.Flatten()
	if flat.Len() == 0 {
		return nil, nil, nil
	}
	return storage.Int64s(flat.Cols[0]), storage.Float64s(flat.Cols[1]), nil
}

func (db *DB) fillSizes() {
	fT, _ := db.cat.Table(seismic.TableF)
	sT, _ := db.cat.Table(seismic.TableS)
	dT, _ := db.cat.Table(seismic.TableD)
	hT, _ := db.cat.Table(seismic.TableH)
	db.reportMu.Lock()
	defer db.reportMu.Unlock()
	db.report.MetadataBytes = fT.MemSize() + sT.MemSize()
	db.report.DataBytes = dT.MemSize() + hT.MemSize()
	db.report.IndexBytes = db.indexes.MemSize()
	if sz, ok := db.repo.(interface{ TotalBytes() int64 }); ok {
		db.report.MseedBytes = sz.TotalBytes()
	}
}

// Result is a completed query with full provenance.
type Result struct {
	*exec.Result
	// QueryType per the paper's Table I taxonomy.
	QueryType int
	// DMd reports the Algorithm 1 work done before execution.
	DMd dmd.Stats
	// Plan is the compiled plan (for inspection / rendering).
	Plan *plan.Plan
}

// Query parses, prepares (Algorithm 1) and executes one SQL statement.
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query with cancellation: the executor aborts between
// batches and before chunk ingestions once ctx is done.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.RunContext(ctx, q)
}

// Run executes a programmatically constructed query specification.
func (db *DB) Run(q *plan.Query) (*Result, error) {
	return db.RunContext(context.Background(), q)
}

// RunContext is Run with cancellation.
func (db *DB) RunContext(ctx context.Context, q *plan.Query) (*Result, error) {
	p, err := plan.Build(db.cat, q)
	if err != nil {
		return nil, err
	}
	// Algorithm 1: make the derived metadata the query needs
	// available before execution.
	dst, err := db.dmd.Prepare(p, q)
	if err != nil {
		return nil, err
	}
	res, err := exec.ExecuteContext(ctx, db.env, p)
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, QueryType: p.Type(), DMd: dst, Plan: p}, nil
}

// Catalog exposes the warehouse catalog.
func (db *DB) Catalog() *table.Catalog { return db.cat }

// Report returns the registration report (loading costs and sizes).
func (db *DB) Report() registrar.Report {
	db.fillSizes() // sizes may have grown (lazy ingestion, DMd)
	db.reportMu.Lock()
	defer db.reportMu.Unlock()
	return db.report
}

// Approach returns the loading approach the database was opened with.
func (db *DB) Approach() registrar.Approach { return db.report.Approach }

// CacheStats reports recycler activity (zero value when uncached).
func (db *DB) CacheStats() cache.Stats {
	if db.recycler == nil {
		return cache.Stats{}
	}
	return db.recycler.Stats()
}

// ClearCache evicts all cached chunks: a cold start, as after a server
// restart. It is a no-op for eager approaches.
func (db *DB) ClearCache() {
	if db.recycler != nil {
		db.recycler.Clear()
	}
}

// MaterializedWindows reports how many DMd windows are materialized.
func (db *DB) MaterializedWindows() int { return db.dmd.MaterializedCount() }

// WarmUp runs a query once to populate caches (for "hot" measurements).
func (db *DB) WarmUp(sql string, runs int) error {
	for i := 0; i < runs; i++ {
		if _, err := db.Query(sql); err != nil {
			return err
		}
	}
	return nil
}

// ExplainAnalyze executes a SQL statement with operator-level tracing
// and renders the plan annotated with the rows each operator emitted
// per stage, plus the execution statistics.
func (db *DB) ExplainAnalyze(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(db.cat, q)
	if err != nil {
		return "", err
	}
	if _, err := db.dmd.Prepare(p, q); err != nil {
		return "", err
	}
	res, trace, err := exec.ExecuteTraced(context.Background(), db.env, p)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("-- type: T%d  two-stage: %t\n", p.Type(), p.TwoStage)
	out += plan.RenderAnnotated(p.Root, p.Qf, func(n plan.Node) string {
		s1, s2 := trace.Rows(n, 1), trace.Rows(n, 2)
		switch {
		case s1 > 0 && s2 > 0:
			return fmt.Sprintf("stage1: %d rows, stage2: %d rows", s1, s2)
		case s1 > 0:
			return fmt.Sprintf("stage1: %d rows", s1)
		default:
			return fmt.Sprintf("%d rows", s2)
		}
	})
	st := res.Stats
	out += fmt.Sprintf("-- stage1=%v load=%v stage2=%v  chunks: %d selected, %d loaded, %d cached\n",
		st.Stage1.Round(time.Microsecond), st.Load.Round(time.Microsecond),
		st.Stage2.Round(time.Microsecond), st.ChunksSelected, st.ChunksLoaded, st.CacheHits)
	return out, nil
}

// Explain renders the compiled plan of a SQL statement with the Qf
// branch marked.
func (db *DB) Explain(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	p, err := plan.Build(db.cat, q)
	if err != nil {
		return "", err
	}
	header := fmt.Sprintf("-- type: T%d  two-stage: %t\n", p.Type(), p.TwoStage)
	return header + plan.Render(p.Root, p.Qf), nil
}
