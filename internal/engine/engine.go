// Package engine ties the system together: it opens a chunk repository
// under one of the five loading approaches, maintains the warehouse
// catalog, the chunk recycler and the derived-metadata manager, and
// answers SQL queries through the two-stage executor.
package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/dmd"
	"sommelier/internal/exec"
	"sommelier/internal/expr"
	"sommelier/internal/fault"
	"sommelier/internal/opt"
	"sommelier/internal/physical"
	"sommelier/internal/plan"
	"sommelier/internal/registrar"
	"sommelier/internal/seismic"
	"sommelier/internal/sqlparse"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// Config parameterizes Open.
type Config struct {
	// Approach selects the loading strategy; default lazy.
	Approach registrar.Approach
	// CacheBytes bounds the recycler; 0 picks a large default.
	// Negative disables caching entirely.
	CacheBytes int64
	// CachePolicy selects the replacement policy (default LRU, as in
	// the paper; CostAware is the "smarter caching" extension).
	CachePolicy cache.Policy
	// CacheDir enables the persistent disk cache tier (lazy approach
	// only): chunks evicted from RAM spill to a verified segment file
	// here, misses promote them back without touching raw miniSEED, and
	// Close persists the metadata snapshot, the derived-metadata view
	// and the hot statement set so the next Open is a warm restart.
	// Empty keeps the cache RAM-only, exactly as before.
	CacheDir string
	// DiskCacheBytes bounds the disk tier's segment file; ≤0 means
	// unbounded. Blocks that would exceed the bound are refused (they
	// stay archive-only), never evicted — the disk tier is append-only
	// within a process lifetime.
	DiskCacheBytes int64
	// MaxParallel bounds per-query parallelism: chunk-ingestion fan-out
	// and the degree of parallelism of query execution (morsel-parallel
	// scans, join probes, partial aggregation). 0 = adaptive (GOMAXPROCS
	// shared across in-flight queries), 1 = fully serial (the
	// parallelization ablation), any other value is taken literally.
	MaxParallel int
	// PlanCacheSize bounds the compiled-plan cache (entries). 0 picks
	// DefaultPlanCacheSize; negative disables plan caching.
	PlanCacheSize int
	// OptDisable lists logical-optimizer rules to disable, comma
	// separated ("all" disables every rule; see internal/opt). Empty
	// defers to the SOMMELIER_OPT_DISABLE environment variable; the
	// special value "none" forces every rule on regardless of the
	// environment.
	OptDisable string
	// MaxQueryBytes caps the bytes any single query may materialize
	// into its own buffers (result relations, sort input, join build
	// side, streaming run-ahead); 0 = unlimited. A query over the
	// ceiling fails with a *storage.QuotaError — the multi-tenant
	// admission-control knob (sommelierd -max-query-bytes).
	MaxQueryBytes int64
	// GlobalMemoryBytes bounds the *sum* of all concurrent queries'
	// materialized bytes via a process-wide memory governor that every
	// per-query quota reserves from; 0 = ungoverned. Per-query
	// ceilings alone do not compose — sixteen queries each under their
	// own MaxQueryBytes can still OOM the process together. A query
	// that cannot reserve within the governor's bounded wait fails
	// with a *storage.GovernorError, which sommelierd answers with
	// 429 + Retry-After (sommelierd -global-memory-bytes).
	GlobalMemoryBytes int64
	// GovernorWait bounds how long a query's charge may wait for
	// global memory before shedding; 0 = storage.DefaultGovernorWait.
	GovernorWait time.Duration
	// Degraded makes partial results the default: a query whose chunk
	// fetch ultimately fails (exhausted retries, quarantine, open
	// circuit breaker) proceeds over the available chunks and carries
	// one Result.Warnings entry per skipped chunk. False keeps strict
	// fail-fast semantics. Either default is overridable per query via
	// WithDegraded.
	Degraded bool
	// Faults is the fault-injection schedule for this database's
	// ingestion path, in internal/fault spec syntax
	// ("point=kind:rate[:dur],..."). Empty defers to the
	// SOMMELIER_FAULTS environment; "off" (or "none") disables
	// injection regardless of the environment.
	Faults string
	// FaultSeed drives the deterministic fault decisions when Faults
	// is set (the environment schedule uses SOMMELIER_FAULT_SEED).
	FaultSeed int64
}

// DefaultCacheBytes is the recycler capacity when none is configured.
const DefaultCacheBytes = 4 << 30

// DB is an open database over one registered repository.
//
// A DB is safe for concurrent use: any number of goroutines may call
// Query/QueryContext/Run simultaneously. The executor deduplicates
// concurrent loads of the same missing chunk, pins every chunk a query
// scans so another query's cache eviction cannot yank it mid-scan, and
// serializes derived-metadata maintenance (Algorithm 1) behind the DMd
// manager's lock. Two concurrent queries therefore return exactly what
// they would have returned when run serially.
type DB struct {
	cat      *table.Catalog
	repo     registrar.ChunkSource
	env      *exec.Env
	recycler *cache.Recycler
	dmd      *dmd.Manager
	indexes  *registrar.Indexes

	// disk is the persistent cache tier (nil without Config.CacheDir);
	// cacheDir/fingerprint/warmStart carry the warm-restart state (see
	// warm.go).
	disk        *cache.DiskTier
	cacheDir    string
	fingerprint string
	warmStart   bool

	// optCtx/optRules parameterize the logical optimizer; plans is the
	// bounded LRU of compiled statements keyed by normalized SQL.
	optCtx   opt.Context
	optRules opt.Options
	plans    *planCache

	// forceStream (SOMMELIER_FORCE_STREAMING) routes every materialized
	// Query through the streaming executor into a collecting sink, so
	// the full test suite exercises the streaming path.
	forceStream bool

	// seriesPlan is the derived-metadata fetcher's parameterized series
	// query, compiled on first use and replayed per derivation.
	seriesOnce sync.Once
	seriesPlan *plan.Plan
	seriesErr  error

	reportMu sync.Mutex
	report   registrar.Report
}

// Open registers the local repository under dir with the given approach
// and returns a queryable database. The returned report carries the
// full preparation cost breakdown (Figure 6) and size accounting
// (Table III).
func Open(dir string, cfg Config) (*DB, error) {
	repo, err := registrar.DiscoverRepository(dir)
	if err != nil {
		return nil, err
	}
	return OpenSource(repo, dir+"-csv", cfg)
}

// OpenSource registers any chunk source — a local directory, an HTTP
// archive (registrar.HTTPRepository), or a custom implementation — the
// paper's "Other Sources" extension point. csvDir is the scratch
// directory for the eager_csv detour; empty uses a temp dir.
func OpenSource(repo registrar.ChunkSource, csvDir string, cfg Config) (*DB, error) {
	if cfg.Approach == "" {
		cfg.Approach = registrar.Lazy
	}
	if csvDir == "" {
		d, err := os.MkdirTemp("", "sommelier-csv-")
		if err != nil {
			return nil, err
		}
		csvDir = d
	}
	db := &DB{cat: seismic.NewCatalog(), repo: repo}
	db.report.Approach = cfg.Approach
	db.report.Files = len(repo.URIs())

	// With a cache directory (lazy approach only), try a warm restart:
	// a verified metadata snapshot replaces the per-file registration
	// pass entirely — zero raw-miniSEED reads.
	if cfg.Approach == registrar.Lazy && cfg.CacheDir != "" {
		if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
			return nil, err
		}
		db.cacheDir = cfg.CacheDir
		db.fingerprint = snapshotFingerprint(repo.URIs())
		// A cache dir populated from a different archive is wiped here,
		// before the disk tier below can open its segments: chunk IDs
		// are positional, so cross-archive reuse would be wrong data,
		// not just a stale cache.
		if err := ensureCacheFingerprint(db.cacheDir, db.fingerprint); err != nil {
			return nil, err
		}
		t0 := time.Now()
		if nSegs, ok := db.loadMetaSnapshot(filepath.Join(db.cacheDir, metaSnapFile), db.fingerprint); ok {
			db.warmStart = true
			db.report.Segments = nSegs
			db.report.MetadataTime = time.Since(t0)
		}
	}
	if !db.warmStart {
		// All approaches start with the Registrar: eager loading of the
		// given metadata.
		nSegs, mdTime, err := registrar.RegisterMetadata(db.cat, repo)
		if err != nil {
			return nil, err
		}
		db.report.Segments = nSegs
		db.report.MetadataTime = mdTime
	}

	switch cfg.Approach {
	case registrar.Lazy:
		if db.cacheDir != "" {
			dt, err := cache.OpenDiskTier(db.cacheDir, seismic.TableD, cfg.DiskCacheBytes)
			if err != nil {
				return nil, err
			}
			db.disk = dt
		}
		capacity := cfg.CacheBytes
		if capacity == 0 {
			capacity = DefaultCacheBytes
		}
		if capacity > 0 {
			d, _ := db.cat.Table(seismic.TableD)
			dt := db.disk
			db.recycler = cache.New(capacity, cfg.CachePolicy, func(id int64) {
				if dt != nil {
					// Grab the relation before dropping: the reference keeps
					// the (immutable) chunk alive while the spill is queued.
					if rel, ok := d.Chunk(id); ok {
						dt.Spill(id, rel)
					}
				}
				d.DropChunk(id)
			})
		}
		db.env = &exec.Env{
			Catalog:     db.cat,
			Mode:        exec.ModeLazy,
			Loader:      repo,
			MaxParallel: cfg.MaxParallel,
			Recyclers:   map[string]*cache.Recycler{},
			DiskTiers:   map[string]*cache.DiskTier{},
		}
		if db.recycler != nil {
			db.env.Recyclers[seismic.TableD] = db.recycler
		}
		if db.disk != nil {
			db.env.DiskTiers[seismic.TableD] = db.disk
		}
	case registrar.EagerCSV:
		rows, csvBytes, toCSV, toDB, err := registrar.LoadAllCSV(db.cat, repo, csvDir)
		if err != nil {
			return nil, err
		}
		db.report.Rows = rows
		db.report.CSVBytes = csvBytes
		db.report.Breakdown.MseedToCSV = toCSV
		db.report.Breakdown.CSVToDB = toDB
		db.env = &exec.Env{Catalog: db.cat, Mode: exec.ModeEagerFull, MaxParallel: cfg.MaxParallel}
	case registrar.EagerPlain:
		rows, dur, err := registrar.LoadAllPlain(db.cat, repo)
		if err != nil {
			return nil, err
		}
		db.report.Rows = rows
		db.report.Breakdown.MseedToDB = dur
		db.env = &exec.Env{Catalog: db.cat, Mode: exec.ModeEagerFull, MaxParallel: cfg.MaxParallel}
	case registrar.EagerIndex, registrar.EagerDMd:
		rows, dur, err := registrar.LoadAllClustered(db.cat, repo)
		if err != nil {
			return nil, err
		}
		db.report.Rows = rows
		db.report.Breakdown.MseedToDB = dur
		ix, ixDur, err := registrar.BuildIndexes(db.cat)
		if err != nil {
			return nil, err
		}
		db.indexes = ix
		db.report.Breakdown.Indexing = ixDur
		db.env = &exec.Env{Catalog: db.cat, Mode: exec.ModeEagerIndexed, MaxParallel: cfg.MaxParallel}
		// Expose the hash indexes as index-scan access paths.
		db.env.MetaIndexes = map[string][]exec.MetaIndex{
			seismic.TableF: {
				{Cols: []string{"station", "channel"}, Ix: ix.FByStaCh, Data: ix.FMeta},
				{Cols: []string{"file_id"}, Ix: ix.FByID, Data: ix.FMeta},
			},
			seismic.TableS: {
				{Cols: []string{"file_id", "segment_id"}, Ix: ix.SByKey, Data: ix.SMeta},
			},
		}
	default:
		return nil, fmt.Errorf("engine: unknown approach %q", cfg.Approach)
	}

	// The logical optimizer's view of the environment: the catalog plus
	// the key columns of every index access path.
	db.optCtx = opt.Context{Catalog: db.cat}
	if len(db.env.MetaIndexes) > 0 {
		db.optCtx.MetaIndexes = make(map[string][][]string, len(db.env.MetaIndexes))
		for tn, mis := range db.env.MetaIndexes {
			for _, mi := range mis {
				db.optCtx.MetaIndexes[tn] = append(db.optCtx.MetaIndexes[tn], mi.Cols)
			}
		}
	}
	switch strings.TrimSpace(cfg.OptDisable) {
	case "":
		db.optRules = opt.FromEnv()
	case "none":
		db.optRules = opt.Default()
	default:
		db.optRules = opt.ParseDisable(cfg.OptDisable)
	}
	size := cfg.PlanCacheSize
	if size == 0 {
		size = DefaultPlanCacheSize
	}
	db.plans = newPlanCache(size)
	db.env.MaxQueryBytes = cfg.MaxQueryBytes
	db.env.Governor = storage.NewGovernor(cfg.GlobalMemoryBytes, cfg.GovernorWait)
	db.env.Degraded = cfg.Degraded
	if strings.TrimSpace(cfg.Faults) == "" {
		// Defer to the process environment (nil when unset: the
		// injection checks reduce to a nil-receiver branch).
		db.env.Faults = fault.Default()
	} else {
		inj, err := fault.New(cfg.Faults, cfg.FaultSeed)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		db.env.Faults = inj
	}
	if fc, ok := repo.(registrar.FaultConfigurable); ok {
		fc.SetFaults(db.env.Faults)
	}
	if v := strings.TrimSpace(os.Getenv(EnvForceStreaming)); v != "" && v != "0" {
		db.forceStream = true
	}

	db.dmd = dmd.NewManager(db.cat, fetcherFunc(db.fetchSeries))
	if cfg.Approach == registrar.EagerDMd {
		if _, dur, err := db.dmd.DeriveAll(); err != nil {
			return nil, err
		} else {
			db.report.Breakdown.DMdDerivation = dur
		}
	}
	if db.warmStart {
		// Best-effort warm loads: the derived-metadata view (so queries
		// skip re-derivation) and the hot statement set (so the first
		// requests skip compilation). Failures just mean a colder start.
		_ = db.LoadDerived(filepath.Join(db.cacheDir, dmdSnapFile))
		db.precompilePlans(filepath.Join(db.cacheDir, plansFile))
	}
	db.fillSizes()
	return db, nil
}

// fetcherFunc adapts a function to the dmd.Fetcher interface.
type fetcherFunc func(station, channel string, from, to int64) ([]int64, []float64, error)

func (f fetcherFunc) FetchSeries(station, channel string, from, to int64) ([]int64, []float64, error) {
	return f(station, channel, from, to)
}

// fetchSeries retrieves one station/channel series through the regular
// two-stage execution path, so DMd derivation exploits lazy loading.
// The fixed-shape series query is compiled once (parameterized) and
// replayed per derivation, like any other prepared statement.
func (db *DB) fetchSeries(station, channel string, from, to int64) ([]int64, []float64, error) {
	db.seriesOnce.Do(func() {
		q := &plan.Query{
			Select: []plan.SelectItem{
				{Expr: expr.Col("D.sample_time")},
				{Expr: expr.Col("D.sample_value")},
			},
			From: seismic.ViewData,
			Where: expr.Conjoin([]expr.Expr{
				expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.NewParam(0)),
				expr.NewCmp(expr.EQ, expr.Col("F.channel"), expr.NewParam(1)),
				expr.NewCmp(expr.GE, expr.Col("D.sample_time"), expr.NewParam(2)),
				expr.NewCmp(expr.LT, expr.Col("D.sample_time"), expr.NewParam(3)),
			}),
		}
		db.seriesPlan, db.seriesErr = db.compileQuery(q)
	})
	if db.seriesErr != nil {
		return nil, nil, db.seriesErr
	}
	args := []*expr.Const{expr.Str(station), expr.Str(channel), expr.Time(from), expr.Time(to)}
	res, err := exec.ExecuteParams(context.Background(), db.env, db.seriesPlan, args)
	if err != nil {
		return nil, nil, err
	}
	flat := res.Rel.Flatten()
	if flat.Len() == 0 {
		res.Release()
		return nil, nil, nil
	}
	times, vals := storage.Int64s(flat.Cols[0]), storage.Float64s(flat.Cols[1])
	if len(res.Rel.Batches()) > 1 {
		// Flatten copied the rows out; the drained batches can recycle.
		res.Release()
	} else {
		// flat IS the single pooled batch and the returned slices alias
		// its backing: hand the memory to the GC instead of the pool.
		res.Rel.Disown()
	}
	return times, vals, nil
}

func (db *DB) fillSizes() {
	fT, _ := db.cat.Table(seismic.TableF)
	sT, _ := db.cat.Table(seismic.TableS)
	dT, _ := db.cat.Table(seismic.TableD)
	hT, _ := db.cat.Table(seismic.TableH)
	db.reportMu.Lock()
	defer db.reportMu.Unlock()
	db.report.MetadataBytes = fT.MemSize() + sT.MemSize()
	db.report.DataBytes = dT.MemSize() + hT.MemSize()
	db.report.IndexBytes = db.indexes.MemSize()
	if sz, ok := db.repo.(interface{ TotalBytes() int64 }); ok {
		db.report.MseedBytes = sz.TotalBytes()
	}
}

// Warning aliases exec.Warning: one chunk a degraded query skipped.
type Warning = exec.Warning

// WithDegraded overrides the database's degraded-mode default for
// queries run under the returned context (see Config.Degraded).
func WithDegraded(ctx context.Context, degraded bool) context.Context {
	return exec.WithDegraded(ctx, degraded)
}

// SourceHealth reports the chunk source's reliability state — per-host
// circuit breakers, quarantine population, retry counters — when the
// source tracks it (registrar.HTTPRepository does); nil otherwise.
func (db *DB) SourceHealth() *registrar.Health {
	if h, ok := db.repo.(interface{ Health() registrar.Health }); ok {
		health := h.Health()
		return &health
	}
	return nil
}

// FaultInjector exposes the engine's fault injector — nil unless
// Config.Faults or SOMMELIER_FAULTS armed one. Benchmarks use it to
// report how many faults actually fired during a run.
func (db *DB) FaultInjector() *fault.Injector { return db.env.Faults }

// Governor exposes the process-wide memory governor — nil unless
// Config.GlobalMemoryBytes bounded it — for the server's /stats and
// /readyz probes.
func (db *DB) Governor() *storage.Governor { return db.env.Governor }

// Result is a completed query with full provenance.
type Result struct {
	*exec.Result
	// QueryType per the paper's Table I taxonomy.
	QueryType int
	// DMd reports the Algorithm 1 work done before execution.
	DMd dmd.Stats
	// Plan is the compiled plan (for inspection / rendering). Plans may
	// come from the shared compiled-plan cache: treat as read-only.
	Plan *plan.Plan
	// Compile is the time this call spent in parse + plan.Build + opt
	// (on a plan-cache hit only the parse/lookup remains; zero on the
	// prepared-statement path, which compiles nothing).
	Compile time.Duration
	// PlanCacheHit marks that the compiled plan came from the cache.
	PlanCacheHit bool
}

// compiled is one cache-resident compiled statement: the parsed
// specification and its optimized, immutable, freely shareable plan.
type compiled struct {
	query *plan.Query
	plan  *plan.Plan
}

// compileQuery is the single compile entry point below the cache:
// name resolution and typing (plan.Build) followed by the rule-based
// logical optimizer.
func (db *DB) compileQuery(q *plan.Query) (*plan.Plan, error) {
	p, err := plan.Build(db.cat, q)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(&db.optCtx, p, db.optRules)
}

// compileStatement resolves a parsed statement through the plan cache,
// compiling on miss. The bool reports a cache hit.
func (db *DB) compileStatement(st *sqlparse.Statement) (*compiled, bool, error) {
	if c, ok := db.plans.Get(st.Normalized); ok {
		return c, true, nil
	}
	p, err := db.compileQuery(st.Query)
	if err != nil {
		return nil, false, err
	}
	c := &compiled{query: st.Query, plan: p}
	db.plans.Put(st.Normalized, c)
	return c, false, nil
}

// substSpec returns the query specification with the execution's
// argument values substituted into its WHERE clause (a shallow copy;
// the cached spec is never modified). Algorithm 1 reads the resulting
// predicates to enumerate the derived-metadata windows the execution
// touches.
func substSpec(spec *plan.Query, args []*expr.Const) (*plan.Query, error) {
	if len(args) == 0 || !expr.HasParams(spec.Where) {
		return spec, nil
	}
	w, err := expr.SubstParams(spec.Where, args)
	if err != nil {
		return nil, err
	}
	qc := *spec
	qc.Where = w
	return &qc, nil
}

// prepareDMd runs Algorithm 1 for a compiled statement: the derived
// metadata the execution needs is made available before it starts,
// enumerated from the argument-substituted predicates.
func (db *DB) prepareDMd(c *compiled, args []*expr.Const) (dmd.Stats, error) {
	spec, err := substSpec(c.query, args)
	if err != nil {
		return dmd.Stats{}, err
	}
	return db.dmd.Prepare(c.plan, spec)
}

// execCompiled runs a compiled statement: Algorithm 1 (derived-metadata
// preparation) against the argument-substituted predicates, then the
// two-stage executor.
func (db *DB) execCompiled(ctx context.Context, c *compiled, args []*expr.Const) (*Result, error) {
	dst, err := db.prepareDMd(c, args)
	if err != nil {
		return nil, err
	}
	if db.forceStream {
		// Forced streaming (tests, CI): run the streaming executor into
		// a collecting sink, reproducing the materialized result through
		// the streaming path.
		sink := &physical.CollectSink{}
		res, err := exec.ExecuteStreamParams(ctx, db.env, c.plan, args, sink)
		if err != nil {
			return nil, err
		}
		if sink.Rel != nil {
			res.Rel = sink.Rel
		}
		return &Result{Result: res, QueryType: c.plan.Type(), DMd: dst, Plan: c.plan}, nil
	}
	res, err := exec.ExecuteParams(ctx, db.env, c.plan, args)
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, QueryType: c.plan.Type(), DMd: dst, Plan: c.plan}, nil
}

// execCompiledStream is execCompiled with streaming delivery: result
// batches reach sink incrementally and the returned Result carries an
// empty relation (schema, stats and provenance only).
func (db *DB) execCompiledStream(ctx context.Context, c *compiled, args []*expr.Const, sink StreamSink) (*Result, error) {
	dst, err := db.prepareDMd(c, args)
	if err != nil {
		return nil, err
	}
	res, err := exec.ExecuteStreamParams(ctx, db.env, c.plan, args, sink)
	if err != nil {
		return nil, err
	}
	return &Result{Result: res, QueryType: c.plan.Type(), DMd: dst, Plan: c.plan}, nil
}

// Query parses, prepares (Algorithm 1) and executes one SQL statement.
// Repeated statements differing only in literals share one compiled
// plan through the plan cache (the parser normalizes literals into
// parameters).
func (db *DB) Query(sql string) (*Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query with cancellation: the executor aborts between
// batches and before chunk ingestions once ctx is done.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Result, error) {
	return db.QueryArgsContext(ctx, sql)
}

// QueryArgs executes a statement with `?` parameter markers bound to
// args (int/int64/float64/string/bool/time.Time).
func (db *DB) QueryArgs(sql string, args ...any) (*Result, error) {
	return db.QueryArgsContext(context.Background(), sql, args...)
}

// QueryArgsContext is QueryArgs with cancellation. Statements without
// explicit markers take no args (their literals are auto-parameterized
// internally); an EXPLAIN statement returns the optimized plan and the
// applied-rule log as rows instead of executing.
func (db *DB) QueryArgsContext(ctx context.Context, sql string, args ...any) (*Result, error) {
	t0 := time.Now()
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	if st.Explain {
		// EXPLAIN only compiles — argument values are never used, so
		// none are required (any supplied are ignored).
		c, hit, err := db.compileStatement(st)
		if err != nil {
			return nil, err
		}
		res := explainResult(c.plan)
		res.Compile, res.PlanCacheHit = time.Since(t0), hit
		return res, nil
	}
	vals, err := statementArgs(st, args)
	if err != nil {
		return nil, err
	}
	c, hit, err := db.compileStatement(st)
	if err != nil {
		return nil, err
	}
	compile := time.Since(t0)
	res, err := db.execCompiled(ctx, c, vals)
	if err != nil {
		return nil, err
	}
	res.Compile, res.PlanCacheHit = compile, hit
	return res, nil
}

// StreamSink receives the batches of a streaming query in result
// order; see physical.StreamSink for the ownership and lifetime
// contract (pushed batches are the sink's to recycle via
// storage.PutBatch; rows must be consumed before Push returns;
// returning ErrStopStream ends the query early without error).
type StreamSink = physical.StreamSink

// SchemaSink is a StreamSink that also wants the output schema before
// the first batch (wire encoders writing a header); see
// physical.SchemaSink.
type SchemaSink = physical.SchemaSink

// ErrStopStream is returned by a StreamSink to end a streaming query
// early: the remaining scan work is cancelled and the query reports
// success.
var ErrStopStream = physical.ErrStopStream

// EnvForceStreaming, when set (any value but "0"), routes every
// materialized Query through the streaming executor into a collecting
// sink: the CI lever that runs the whole suite on the streaming path.
const EnvForceStreaming = "SOMMELIER_FORCE_STREAMING"

// QueryStream parses, prepares and executes one SQL statement with
// streaming result delivery: batches reach sink as they are produced,
// only pipeline breakers (sort, aggregation, join build) materialize,
// and the query's memory footprint is independent of the result size.
// The returned Result carries the schema, stats and plan provenance
// with an empty relation. An EXPLAIN statement streams its plan rows
// through the sink like any other result.
func (db *DB) QueryStream(ctx context.Context, sql string, sink StreamSink, args ...any) (*Result, error) {
	t0 := time.Now()
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	if st.Explain {
		c, hit, err := db.compileStatement(st)
		if err != nil {
			return nil, err
		}
		res := explainResult(c.plan)
		res.Compile, res.PlanCacheHit = time.Since(t0), hit
		return res, streamOut(res, sink)
	}
	vals, err := statementArgs(st, args)
	if err != nil {
		return nil, err
	}
	c, hit, err := db.compileStatement(st)
	if err != nil {
		return nil, err
	}
	compile := time.Since(t0)
	res, err := db.execCompiledStream(ctx, c, vals, sink)
	if err != nil {
		return nil, err
	}
	res.Compile, res.PlanCacheHit = compile, hit
	return res, nil
}

// streamOut pushes an already-materialized result's batches through a
// sink (the EXPLAIN path, whose rows exist before streaming starts)
// and leaves the result empty. A sink stop simply drops the remainder.
func streamOut(res *Result, sink StreamSink) error {
	if ss, ok := sink.(physical.SchemaSink); ok {
		ss.SetSchema(res.Names, res.Kinds)
	}
	for _, b := range res.Rel.TakeBatches() {
		if err := sink.Push(b); err != nil {
			if err == ErrStopStream {
				return nil
			}
			return err
		}
	}
	return nil
}

// statementArgs reconciles caller-supplied arguments with the parsed
// statement: explicit markers require exactly NumParams values;
// auto-parameterized statements carry their own literal values and
// accept none.
func statementArgs(st *sqlparse.Statement, args []any) ([]*expr.Const, error) {
	if st.Args != nil {
		if len(args) > 0 {
			return nil, fmt.Errorf("engine: statement has no ? markers but %d argument(s) given", len(args))
		}
		return st.Args, nil
	}
	if len(args) != st.NumParams {
		return nil, fmt.Errorf("engine: statement needs %d argument(s), got %d", st.NumParams, len(args))
	}
	return convertArgs(args)
}

// convertArgs turns Go values into expression constants.
func convertArgs(args []any) ([]*expr.Const, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]*expr.Const, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case int:
			out[i] = expr.Int(int64(v))
		case int64:
			out[i] = expr.Int(v)
		case float64:
			out[i] = expr.Float(v)
		case string:
			out[i] = expr.Str(v)
		case bool:
			out[i] = expr.Bool(v)
		case time.Time:
			out[i] = expr.TimeVal(v)
		case *expr.Const:
			out[i] = v
		default:
			return nil, fmt.Errorf("engine: unsupported argument %d type %T", i+1, a)
		}
	}
	return out, nil
}

// Stmt is a prepared statement: parsed, planned and optimized once,
// executable any number of times (concurrently) with per-execution
// arguments. A cache hit on the same normalized statement shares the
// compiled plan.
type Stmt struct {
	db       *DB
	c        *compiled
	explain  bool
	norm     string
	nParams  int
	defaults []*expr.Const
}

// Prepare compiles a statement through the plan cache and returns the
// reusable handle. Executing it performs zero parse, plan or optimizer
// work.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	c, _, err := db.compileStatement(st)
	if err != nil {
		return nil, err
	}
	return &Stmt{
		db:       db,
		c:        c,
		explain:  st.Explain,
		norm:     st.Normalized,
		nParams:  st.NumParams,
		defaults: st.Args,
	}, nil
}

// Normalized returns the canonical statement text (the plan-cache key).
func (s *Stmt) Normalized() string { return s.norm }

// NumParams reports how many arguments Query expects.
func (s *Stmt) NumParams() int { return s.nParams }

// Query executes the prepared statement. Statements prepared from
// literal SQL (auto-parameterized) may be called with no arguments to
// reuse the original literals, or with fresh values for every
// parameter.
func (s *Stmt) Query(args ...any) (*Result, error) {
	return s.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation.
func (s *Stmt) QueryContext(ctx context.Context, args ...any) (*Result, error) {
	if s.explain {
		return explainResult(s.c.plan), nil
	}
	var vals []*expr.Const
	if len(args) == 0 && s.defaults != nil {
		vals = s.defaults
	} else {
		if len(args) != s.nParams {
			return nil, fmt.Errorf("engine: prepared statement needs %d argument(s), got %d", s.nParams, len(args))
		}
		var err error
		vals, err = convertArgs(args)
		if err != nil {
			return nil, err
		}
	}
	return s.db.execCompiled(ctx, s.c, vals)
}

// QueryStream executes the prepared statement with streaming result
// delivery; see DB.QueryStream for the sink contract. The zero-compile
// property of prepared statements holds: streaming reuses the cached
// plan untouched.
func (s *Stmt) QueryStream(ctx context.Context, sink StreamSink, args ...any) (*Result, error) {
	if s.explain {
		res := explainResult(s.c.plan)
		return res, streamOut(res, sink)
	}
	var vals []*expr.Const
	if len(args) == 0 && s.defaults != nil {
		vals = s.defaults
	} else {
		if len(args) != s.nParams {
			return nil, fmt.Errorf("engine: prepared statement needs %d argument(s), got %d", s.nParams, len(args))
		}
		var err error
		vals, err = convertArgs(args)
		if err != nil {
			return nil, err
		}
	}
	return s.db.execCompiledStream(ctx, s.c, vals, sink)
}

// Run executes a programmatically constructed query specification
// (compiled outside the plan cache — there is no statement text to key
// it by).
func (db *DB) Run(q *plan.Query) (*Result, error) {
	return db.RunContext(context.Background(), q)
}

// RunContext is Run with cancellation.
func (db *DB) RunContext(ctx context.Context, q *plan.Query) (*Result, error) {
	t0 := time.Now()
	p, err := db.compileQuery(q)
	if err != nil {
		return nil, err
	}
	compile := time.Since(t0)
	res, err := db.execCompiled(ctx, &compiled{query: q, plan: p}, nil)
	if err != nil {
		return nil, err
	}
	res.Compile = compile
	return res, nil
}

// Catalog exposes the warehouse catalog.
func (db *DB) Catalog() *table.Catalog { return db.cat }

// Report returns the registration report (loading costs and sizes).
func (db *DB) Report() registrar.Report {
	db.fillSizes() // sizes may have grown (lazy ingestion, DMd)
	db.reportMu.Lock()
	defer db.reportMu.Unlock()
	return db.report
}

// Approach returns the loading approach the database was opened with.
func (db *DB) Approach() registrar.Approach { return db.report.Approach }

// CacheStats reports recycler activity (zero value when uncached).
func (db *DB) CacheStats() cache.Stats {
	if db.recycler == nil {
		return cache.Stats{}
	}
	return db.recycler.Stats()
}

// ClearCache evicts all cached chunks: a cold start, as after a server
// restart. It is a no-op for eager approaches.
func (db *DB) ClearCache() {
	if db.recycler != nil {
		db.recycler.Clear()
	}
}

// MaterializedWindows reports how many DMd windows are materialized.
func (db *DB) MaterializedWindows() int { return db.dmd.MaterializedCount() }

// WarmUp runs a query once to populate caches (for "hot" measurements).
func (db *DB) WarmUp(sql string, runs int) error {
	for i := 0; i < runs; i++ {
		res, err := db.Query(sql)
		if err != nil {
			return err
		}
		res.Release()
	}
	return nil
}

// ExplainAnalyze executes a SQL statement with operator-level tracing
// and renders the plan annotated with the rows each operator emitted
// per stage, plus the execution statistics. Compilation goes through
// the same cache as Query; args bind `?` markers exactly as in
// QueryArgs.
func (db *DB) ExplainAnalyze(sql string, args ...any) (string, error) {
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return "", err
	}
	vals, err := statementArgs(st, args)
	if err != nil {
		return "", err
	}
	c, _, err := db.compileStatement(st)
	if err != nil {
		return "", err
	}
	if _, err := db.prepareDMd(c, vals); err != nil {
		return "", err
	}
	p := c.plan
	res, trace, err := exec.ExecuteTracedParams(context.Background(), db.env, p, vals)
	if err != nil {
		return "", err
	}
	defer res.Release()
	out := fmt.Sprintf("-- type: T%d  two-stage: %t\n", p.Type(), p.TwoStage)
	out += plan.RenderAnnotated(p.Root, p.Qf, func(n plan.Node) string {
		s1, s2 := trace.Rows(n, 1), trace.Rows(n, 2)
		switch {
		case s1 > 0 && s2 > 0:
			return fmt.Sprintf("stage1: %d rows, stage2: %d rows", s1, s2)
		case s1 > 0:
			return fmt.Sprintf("stage1: %d rows", s1)
		default:
			return fmt.Sprintf("%d rows", s2)
		}
	})
	out += renderRuleLog(p)
	st2 := res.Stats
	out += fmt.Sprintf("-- stage1=%v load=%v stage2=%v  chunks: %d selected, %d loaded, %d cached\n",
		st2.Stage1.Round(time.Microsecond), st2.Load.Round(time.Microsecond),
		st2.Stage2.Round(time.Microsecond), st2.ChunksSelected, st2.ChunksLoaded, st2.CacheHits)
	return out, nil
}

// Explain renders the optimized plan of a SQL statement with the Qf
// branch marked, followed by the applied-rule log — the same text the
// `EXPLAIN <query>` statement returns as rows.
func (db *DB) Explain(sql string) (string, error) {
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return "", err
	}
	c, _, err := db.compileStatement(st)
	if err != nil {
		return "", err
	}
	return renderExplain(c.plan), nil
}

// renderExplain is the EXPLAIN text: header, plan tree, rule log.
func renderExplain(p *plan.Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "-- type: T%d  two-stage: %t", p.Type(), p.TwoStage)
	if p.NumParams > 0 {
		fmt.Fprintf(&sb, "  params: %d", p.NumParams)
	}
	sb.WriteByte('\n')
	sb.WriteString(plan.Render(p.Root, p.Qf))
	sb.WriteString(renderRuleLog(p))
	return sb.String()
}

// renderRuleLog renders the optimizer's applied-rule log, one line per
// rule.
func renderRuleLog(p *plan.Plan) string {
	var sb strings.Builder
	for _, r := range p.RuleLog {
		sb.WriteString("-- rule ")
		sb.WriteString(r)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// explainResult wraps the EXPLAIN text into a one-column result so the
// statement flows through every client path (CLI, HTTP) unchanged.
func explainResult(p *plan.Plan) *Result {
	text := strings.TrimRight(renderExplain(p), "\n")
	lines := strings.Split(text, "\n")
	rel := storage.NewRelation()
	rel.Append(storage.NewBatch(storage.NewStringColumn(lines)))
	return &Result{
		Result: &exec.Result{
			Names: []string{"plan"},
			Kinds: []storage.Kind{storage.KindString},
			Rel:   rel,
		},
		QueryType: p.Type(),
		Plan:      p,
	}
}

// PlanCacheStats reports compiled-plan cache activity.
func (db *DB) PlanCacheStats() PlanCacheStats { return db.plans.Stats() }
