package engine

import (
	"context"
	"sync"
	"testing"

	"sommelier/internal/registrar"
)

// TestParallelQueriesAllApproachesRace pins a fixed degree of
// parallelism greater than one — bypassing the adaptive split, so every
// query runs morsel-parallel even while many are in flight — and fires
// the mixed workload from several goroutines against one DB per loading
// approach. Every answer must match the fully serial (MaxParallel: 1)
// baseline: the range-partitioned aggregation makes even the
// floating-point aggregates identical across DOPs. Run with -race to
// verify the worker pools, the shared join tables, the scan morsel
// accounting and the recycler's lock-free hit path together.
func TestParallelQueriesAllApproachesRace(t *testing.T) {
	const goroutines, rounds = 6, 2
	dir := genRepo(t, 2)
	queries := stressQueries()

	for _, app := range registrar.Approaches() {
		app := app
		t.Run(string(app), func(t *testing.T) {
			serial, err := Open(dir, Config{Approach: app, MaxParallel: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := addMetadataView(serial); err != nil {
				t.Fatal(err)
			}
			want := make([]string, len(queries))
			for i, sql := range queries {
				res, err := serial.Query(sql)
				if err != nil {
					t.Fatalf("serial query %d: %v", i, err)
				}
				want[i] = sortedRows(res)
				res.Release()
			}

			db, err := Open(dir, Config{Approach: app, MaxParallel: 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := addMetadataView(db); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for off := range queries {
							i := (g + off) % len(queries)
							res, err := db.QueryContext(context.Background(), queries[i])
							if err != nil {
								t.Errorf("goroutine %d query %d: %v", g, i, err)
								return
							}
							got := sortedRows(res)
							res.Release()
							if got != want[i] {
								t.Errorf("goroutine %d query %d diverged from serial:\n%s\nvs\n%s", g, i, got, want[i])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
