package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// genRepo builds a small deterministic repository shared by the tests.
func genRepo(t testing.TB, days int) string {
	t.Helper()
	dir := t.TempDir()
	cfg := seisgen.DefaultConfig(days)
	cfg.SamplesPerFile = 600
	cfg.MeanSegments = 4
	cfg.EventRate = 0.5
	if _, err := seisgen.Generate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	return dir
}

func open(t testing.TB, dir string, approach registrar.Approach) *DB {
	t.Helper()
	db, err := Open(dir, Config{Approach: approach})
	if err != nil {
		t.Fatalf("open %s: %v", approach, err)
	}
	return db
}

// openOpt opens with every optimizer rule forced on, for tests that
// assert optimizer-driven behavior (Qf chunk pruning, sampling,
// EXPLAIN markers) and must not inherit SOMMELIER_OPT_DISABLE from the
// environment.
func openOpt(t testing.TB, dir string, approach registrar.Approach) *DB {
	t.Helper()
	db, err := Open(dir, Config{Approach: approach, OptDisable: "none"})
	if err != nil {
		t.Fatalf("open %s: %v", approach, err)
	}
	return db
}

// The T1–T5 representative queries of the evaluation, over the
// generated repository's stations (FIAM et al., channel HHZ, data
// starting 2010-01-01).
func tQueries() map[int]string {
	return map[int]string{
		1: `SELECT station, COUNT(*) AS n FROM F WHERE station = 'FIAM' GROUP BY station`,
		2: `SELECT window_max_val, window_std_dev FROM H
		    WHERE window_station = 'FIAM'
		      AND window_start_ts >= '2010-01-01T00:00:00.000'
		      AND window_start_ts < '2010-01-02T00:00:00.000'`,
		3: `SELECT H.window_start_ts, H.window_max_val FROM windowdataview_md
		    WHERE F.station = 'FIAM'
		      AND H.window_start_ts >= '2010-01-01T00:00:00.000'
		      AND H.window_start_ts < '2010-01-02T00:00:00.000'`,
		4: `SELECT AVG(D.sample_value) FROM dataview
		    WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		      AND D.sample_time >= '2010-01-01T00:00:00.000'
		      AND D.sample_time < '2010-01-03T00:00:00.000'`,
		5: `SELECT AVG(D.sample_value) FROM windowdataview
		    WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		      AND H.window_start_ts >= '2010-01-01T00:00:00.000'
		      AND H.window_start_ts < '2010-01-03T00:00:00.000'
		      AND H.window_max_val > -1000000000`,
	}
}

func TestOpenUnknownApproach(t *testing.T) {
	dir := genRepo(t, 1)
	if _, err := Open(dir, Config{Approach: "nosuch"}); err == nil {
		t.Fatal("unknown approach accepted")
	}
}

func TestLazyMetadataOnlyInvestment(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	rep := db.Report()
	if rep.Files != 8 { // 4 stations × 2 days
		t.Fatalf("files = %d", rep.Files)
	}
	if rep.Rows != 0 {
		t.Fatal("lazy open ingested actual data")
	}
	if rep.DataBytes != 0 {
		t.Fatalf("data bytes = %d", rep.DataBytes)
	}
	if rep.MetadataBytes <= 0 || rep.MseedBytes <= 0 {
		t.Fatalf("sizes = %+v", rep)
	}
	// The metadata must be orders of magnitude smaller than the
	// repository (Table III's Lazy column).
	if rep.MetadataBytes*2 > rep.MseedBytes {
		t.Fatalf("metadata %d B not small vs repo %d B", rep.MetadataBytes, rep.MseedBytes)
	}
}

func TestQuery1EndToEnd(t *testing.T) {
	dir := genRepo(t, 2)
	db := openOpt(t, dir, registrar.Lazy)
	res, err := db.Query(`
		SELECT AVG(D.sample_value) FROM dataview
		WHERE F.station = 'ISK' AND F.channel = 'BHE'
		  AND D.sample_time > '2010-01-01T01:00:00.000'
		  AND D.sample_time < '2010-01-02T23:00:00.000'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryType != 4 {
		t.Fatalf("type = T%d", res.QueryType)
	}
	if res.Rows() != 1 {
		t.Fatalf("rows = %d", res.Rows())
	}
	// Only ISK's 2 chunks may be touched (4 stations × 2 days = 8).
	if res.Stats.ChunksSelected != 2 {
		t.Fatalf("chunks selected = %d", res.Stats.ChunksSelected)
	}
	v := storage.Float64s(res.Rel.Flatten().Cols[0])[0]
	if math.IsNaN(v) {
		t.Fatal("average is NaN — no data matched")
	}
}

func TestQuery2EndToEndWithDerivation(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	sql := `
		SELECT D.sample_time, D.sample_value FROM windowdataview
		WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		  AND H.window_start_ts >= '2010-01-01T10:00:00.000'
		  AND H.window_start_ts < '2010-01-01T13:00:00.000'
		  AND H.window_max_val > -1000000000 AND H.window_std_dev >= 0`
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryType != 5 {
		t.Fatalf("type = T%d", res.QueryType)
	}
	// Three hourly windows for one station/channel were requested.
	if res.DMd.Requested != 3 || res.DMd.Computed != 3 || res.DMd.Covered != 0 {
		t.Fatalf("dmd stats = %+v", res.DMd)
	}
	// A second, overlapping query must reuse the materialized windows
	// (partial reuse).
	sql2 := strings.Replace(sql, "13:00:00", "15:00:00", 1)
	res2, err := db.Query(sql2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DMd.Requested != 5 || res2.DMd.Covered != 3 || res2.DMd.Computed != 2 {
		t.Fatalf("dmd reuse stats = %+v", res2.DMd)
	}
	if db.MaterializedWindows() != 5 {
		t.Fatalf("materialized = %d", db.MaterializedWindows())
	}
	res.Release()
	res2.Release()
}

func TestAllApproachesAgree(t *testing.T) {
	// The fundamental invariant: every loading approach returns the
	// same answers for the whole T1–T5 workload.
	dir := genRepo(t, 2)
	queries := tQueries()
	type key struct {
		qt  int
		app registrar.Approach
	}
	answers := make(map[key]string)
	for _, app := range registrar.Approaches() {
		db := open(t, dir, app)
		for qt := 1; qt <= 5; qt++ {
			sql := queries[qt]
			if qt == 3 {
				// windowdataview_md is registered below per DB.
				if err := addMetadataView(db); err != nil {
					t.Fatal(err)
				}
			}
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("%s T%d: %v", app, qt, err)
			}
			answers[key{qt, app}] = renderRows(res)
			res.Release()
		}
	}
	for qt := 1; qt <= 5; qt++ {
		want := answers[key{qt, registrar.EagerPlain}]
		for _, app := range registrar.Approaches() {
			if got := answers[key{qt, app}]; got != want {
				t.Errorf("T%d: %s disagrees with eager_plain:\n%s\nvs\n%s", qt, app, got, want)
			}
		}
	}
}

// addMetadataView registers a metadata-only view (F ⋈ H) used by the T3
// query; idempotent per database.
func addMetadataView(db *DB) error {
	if _, ok := db.Catalog().View("windowdataview_md"); ok {
		return nil
	}
	return db.Catalog().AddView(&table.View{
		Name:   "windowdataview_md",
		Tables: []string{seismic.TableF, seismic.TableH},
		Joins: []table.JoinPred{
			{Left: "F.station", Right: "H.window_station"},
			{Left: "F.channel", Right: "H.window_channel"},
		},
	})
}

func renderRows(res *Result) string {
	var sb strings.Builder
	flat := res.Rel.Flatten()
	for r := 0; r < flat.Len(); r++ {
		for c := 0; c < flat.Width(); c++ {
			v := storage.ValueAt(flat.Cols[c], r)
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&sb, "%.6f|", f)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestEagerDMdAnswersT2Instantly(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.EagerDMd)
	if db.MaterializedWindows() == 0 {
		t.Fatal("eager_dmd did not materialize windows")
	}
	if db.Report().Breakdown.DMdDerivation <= 0 {
		t.Fatal("no derivation cost recorded")
	}
	res, err := db.Query(tQueries()[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.DMd.Computed != 0 {
		t.Fatalf("T2 on eager_dmd recomputed %d windows", res.DMd.Computed)
	}
	if res.Rows() == 0 {
		t.Fatal("no windows returned")
	}
}

func TestLazyCacheColdHot(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	sql := tQueries()[4]
	res1, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.ChunksLoaded == 0 {
		t.Fatal("cold run loaded nothing")
	}
	res2, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.ChunksLoaded != 0 || res2.Stats.CacheHits == 0 {
		t.Fatalf("hot run stats = %+v", res2.Stats)
	}
	// Cold again after a cache clear (server restart).
	db.ClearCache()
	res3, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Stats.ChunksLoaded == 0 {
		t.Fatal("post-restart run found data resident")
	}
	if s := db.CacheStats(); s.Chunks == 0 {
		t.Fatalf("cache stats = %+v", s)
	}
}

func TestCacheDisabled(t *testing.T) {
	dir := genRepo(t, 1)
	db, err := Open(dir, Config{Approach: registrar.Lazy, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	sql := tQueries()[4]
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 || res.Stats.ChunksLoaded == 0 {
		t.Fatalf("uncached stats = %+v", res.Stats)
	}
	if s := db.CacheStats(); s.Chunks != 0 {
		t.Fatal("cache should be absent")
	}
}

func TestExplainMarksQf(t *testing.T) {
	dir := genRepo(t, 1)
	db := openOpt(t, dir, registrar.Lazy)
	out, err := db.Explain(tQueries()[4])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[Qf]") || !strings.Contains(out, "type: T4") {
		t.Fatalf("explain:\n%s", out)
	}
	if _, err := db.Explain("not sql"); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestWarmUp(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.Lazy)
	if err := db.WarmUp(tQueries()[4], 2); err != nil {
		t.Fatal(err)
	}
	if err := db.WarmUp("broken", 1); err == nil {
		t.Fatal("warmup accepted bad SQL")
	}
}

func TestDerivationUsesLazyLoading(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.Lazy)
	// A T2 query touches only H, but deriving H's windows must lazily
	// ingest the FIAM chunk behind the scenes.
	res, err := db.Query(tQueries()[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.DMd.Computed == 0 {
		t.Fatal("nothing derived")
	}
	if res.DMd.Derivation <= 0 {
		t.Fatal("no derivation time")
	}
	if db.CacheStats().Chunks == 0 {
		t.Fatal("derivation did not ingest chunks")
	}
	if res.Rows() == 0 {
		t.Fatal("T2 returned nothing")
	}
	// Every requested (clamped) window materialized and is returned.
	if res.Rows() != res.DMd.Requested {
		t.Fatalf("rows = %d, requested = %d", res.Rows(), res.DMd.Requested)
	}
}

func TestReportSizesGrowUnderLazy(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.Lazy)
	before := db.Report().DataBytes
	if _, err := db.Query(tQueries()[4]); err != nil {
		t.Fatal(err)
	}
	after := db.Report().DataBytes
	if after <= before {
		t.Fatalf("data bytes did not grow: %d -> %d", before, after)
	}
}

func TestEagerIndexPrunesLikeLazy(t *testing.T) {
	dir := genRepo(t, 2)
	dbI := openOpt(t, dir, registrar.EagerIndex)
	res, err := dbI.Query(tQueries()[4])
	if err != nil {
		t.Fatal(err)
	}
	// FIAM owns 2 of the 8 chunks; the clustered index prunes to 2.
	if res.Stats.ChunksSelected != 2 {
		t.Fatalf("selected = %d", res.Stats.ChunksSelected)
	}
	if dbI.Report().IndexBytes <= 0 {
		t.Fatal("no index bytes")
	}
	if dbI.Report().Breakdown.Indexing <= 0 {
		t.Fatal("no indexing cost")
	}
}

func TestStatsStageTimings(t *testing.T) {
	dir := genRepo(t, 1)
	db := openOpt(t, dir, registrar.Lazy)
	res, err := db.Query(tQueries()[4])
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Stage1 <= 0 || st.Stage2 <= 0 {
		t.Fatalf("stage timings = %+v", st)
	}
	if st.Total() != st.Stage1+st.Load+st.Stage2 {
		t.Fatal("total mismatch")
	}
}
