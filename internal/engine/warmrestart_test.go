package engine

import (
	"os"
	"path/filepath"
	"testing"

	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

// warmBag is the differential query bag: T1 metadata, T2 derived
// windows, T4 and T5 lazy-ingestion aggregates — every tier and every
// table the cache hierarchy touches.
func warmBag() []string {
	q := tQueries()
	return []string{q[1], q[2], q[4], q[5]}
}

func runWarmBag(t *testing.T, db *DB) []string {
	t.Helper()
	var out []string
	for qi, sql := range warmBag() {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		out = append(out, renderRows(res))
		res.Release()
	}
	return out
}

// TestTierEquivalence is the tier-differential suite: the same bag
// over the same repository must be bitwise identical with the disk
// tier off, with a tiny RAM cache churning every chunk through
// spill/promote, and across a warm restart.
func TestTierEquivalence(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 2)

	// Reference: RAM-only, exactly the pre-disk-tier configuration.
	ref := openOpt(t, dir, registrar.Lazy)
	want := runWarmBag(t, ref)
	// Size the churn cache off the reference run: 1.5 average chunks
	// admits any one chunk but evicts as soon as a second arrives.
	// (Chunk MemSize varies a little with pool slab reuse, so a
	// hardcoded byte count is flaky under the full suite.)
	refStats := ref.CacheStats()
	if refStats.Chunks == 0 {
		t.Fatal("reference run cached no chunks")
	}
	churnBytes := refStats.BytesUsed / int64(refStats.Chunks) * 3 / 2

	t.Run("tiny-ram-churn", func(t *testing.T) {
		// A RAM cache that holds only one chunk forces constant
		// evict → spill → promote churn while queries are running.
		db, err := Open(dir, Config{
			Approach:   registrar.Lazy,
			OptDisable: "none",
			CacheBytes: churnBytes,
			CacheDir:   t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		got := runWarmBag(t, db)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("query %d diverges under churn:\ngot:\n%s\nwant:\n%s", i, got[i], want[i])
			}
		}
		// Let the asynchronous spills land, then run the bag again: the
		// evicted chunks now come back through promote.
		db.waitDiskIdle()
		again := runWarmBag(t, db)
		for i := range want {
			if again[i] != want[i] {
				t.Errorf("query %d diverges on churned re-run:\ngot:\n%s\nwant:\n%s", i, again[i], want[i])
			}
		}
		// The tiny cache must actually have exercised the disk tier.
		if s := db.DiskCacheStats(); s.Spills == 0 || s.Promotes == 0 {
			t.Fatalf("disk tier idle under churn: %+v", s)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("warm-restart", func(t *testing.T) {
		cacheDir := t.TempDir()
		db, err := Open(dir, Config{Approach: registrar.Lazy, OptDisable: "none", CacheDir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		first := runWarmBag(t, db)
		for i := range want {
			if first[i] != want[i] {
				t.Errorf("query %d diverges on cold tiered run", i)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		db2, err := Open(dir, Config{Approach: registrar.Lazy, OptDisable: "none", CacheDir: cacheDir})
		if err != nil {
			t.Fatal(err)
		}
		if !db2.WarmStart() {
			t.Fatal("second open did not warm-start")
		}
		got := runWarmBag(t, db2)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("query %d diverges across warm restart:\ngot:\n%s\nwant:\n%s", i, got[i], want[i])
			}
		}
		// The warm restart must have served the whole bag from local
		// state: not a single raw-archive open.
		if n, ok := db2.SourceFetches(); !ok || n != 0 {
			t.Fatalf("warm restart fetched %d times from the archive (counter ok=%v), want 0", n, ok)
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCacheDirBoundToArchive: a cache directory populated from one
// archive must not serve its segments to a different archive — chunk
// IDs are positional, so cross-archive promotion would be wrong data.
// Re-pointing the dir wipes segments and snapshots and re-binds the
// fingerprint sidecar.
func TestCacheDirBoundToArchive(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cacheDir := t.TempDir()

	dirA := genRepo(t, 2)
	db, err := Open(dirA, Config{Approach: registrar.Lazy, OptDisable: "none", CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	runWarmBag(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(cacheDir, "D.seg")); err != nil {
		t.Fatalf("archive A left no segment: %v", err)
	}

	// Same generator, different directory: the URI list (and so the
	// fingerprint) differs even though the bytes happen to match —
	// exactly the case where silent reuse would go unnoticed.
	dirB := genRepo(t, 2)
	ref := openOpt(t, dirB, registrar.Lazy)
	want := runWarmBag(t, ref)

	db2, err := Open(dirB, Config{Approach: registrar.Lazy, OptDisable: "none", CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if db2.WarmStart() {
		t.Fatal("warm start against a different archive's cache dir")
	}
	got := runWarmBag(t, db2)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d wrong after re-pointing cache dir", i)
		}
	}
	if s := db2.DiskCacheStats(); s.Promotes != 0 {
		t.Fatalf("promoted %d blocks from another archive's segment", s.Promotes)
	}
	if n, ok := db2.SourceFetches(); !ok || n == 0 {
		t.Fatalf("expected archive B fetches after the wipe, got %d (ok=%v)", n, ok)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// The dir is now bound to B: the next open warm-starts again.
	db3, err := Open(dirB, Config{Approach: registrar.Lazy, OptDisable: "none", CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if !db3.WarmStart() {
		t.Fatal("re-bound cache dir did not warm-start its own archive")
	}
	if err := db3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRestartCorruptSegmentRefetches is the crash-safety story end
// to end: damage the segment file between runs, and the next open must
// quarantine it and transparently refetch from the archive — degraded
// performance, identical answers.
func TestWarmRestartCorruptSegmentRefetches(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 2)
	cacheDir := t.TempDir()

	ref := openOpt(t, dir, registrar.Lazy)
	want := runWarmBag(t, ref)

	db, err := Open(dir, Config{Approach: registrar.Lazy, OptDisable: "none", CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	runWarmBag(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in a block body: the open-time sweep must catch it.
	segPath := filepath.Join(cacheDir, "D.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Config{Approach: registrar.Lazy, OptDisable: "none", CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if !db2.WarmStart() {
		t.Fatal("metadata snapshot should survive a corrupt segment")
	}
	if s := db2.DiskCacheStats(); s.CorruptSegments != 1 {
		t.Fatalf("disk stats = %+v, want 1 quarantined segment", s)
	}
	if _, err := os.Stat(segPath + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	got := runWarmBag(t, db2)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("query %d wrong after quarantine:\ngot:\n%s\nwant:\n%s", i, got[i], want[i])
		}
	}
	// The data came back from the archive, not the damaged cache.
	if n, ok := db2.SourceFetches(); !ok || n == 0 {
		t.Fatalf("expected archive refetches after quarantine, got %d (ok=%v)", n, ok)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}
