package engine

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

// chaosSchedule is the seeded fault regime of the chaos suite: every
// chunk flight and cache fill has a real chance of failing, so over a
// query bag many — but not all — queries degrade.
const (
	chaosSchedule = "exec.flight=error:0.15,cache.fill=error:0.1"
	chaosSeed     = 17
)

// chaosBag is a deterministic bag of chunk-touching queries using only
// order-insensitive aggregates (COUNT/MIN/MAX), so results compare
// exactly across DOP and chunk-subset differences.
func chaosBag() []string {
	stations := []string{"FIAM", "ISK", "AQU", "CERA"}
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	fmtT := func(ts time.Time) string { return ts.Format("2006-01-02T15:04:05.000") }
	rng := rand.New(rand.NewSource(7))
	var bag []string
	for i := 0; i < 12; i++ {
		st := stations[rng.Intn(len(stations))]
		lo := base.Add(time.Duration(rng.Intn(48)) * time.Hour)
		hi := lo.Add(time.Duration(1+rng.Intn(20)) * time.Hour)
		if i%2 == 0 {
			bag = append(bag, fmt.Sprintf(`
				SELECT COUNT(*) AS n, MIN(D.sample_value), MAX(D.sample_value) FROM dataview
				WHERE F.station = '%s'
				  AND D.sample_time >= '%s' AND D.sample_time < '%s'`,
				st, fmtT(lo), fmtT(hi)))
		} else {
			bag = append(bag, fmt.Sprintf(`
				SELECT COUNT(*) AS n, MAX(D.sample_value) FROM windowdataview
				WHERE F.station = '%s'
				  AND H.window_start_ts >= '%s' AND H.window_start_ts < '%s'
				  AND H.window_std_dev >= 0`,
				st, fmtT(lo), fmtT(hi)))
		}
	}
	return bag
}

// exclusionSQL appends one D.file_id <> k predicate per skipped chunk:
// the strict-mode query whose answer a degraded result must equal
// (chunk IDs are file IDs).
func exclusionSQL(sql string, warns []Warning) string {
	var sb strings.Builder
	sb.WriteString(sql)
	for _, w := range warns {
		fmt.Fprintf(&sb, " AND D.file_id <> %d", w.Chunk)
	}
	return sb.String()
}

// rowSink collects streamed rows through the same renderer the
// materialized comparisons use.
type rowSink struct{ sb strings.Builder }

func (s *rowSink) Push(b *storage.Batch) error {
	flat := b.Materialize()
	defer storage.PutBatch(flat)
	for r := 0; r < flat.Len(); r++ {
		for c := 0; c < flat.Width(); c++ {
			v := storage.ValueAt(flat.Cols[c], r)
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&s.sb, "%.6f|", f)
			} else {
				fmt.Fprintf(&s.sb, "%v|", v)
			}
		}
		s.sb.WriteByte('\n')
	}
	return nil
}

// TestChaosDegradedEqualsStrictMinusSkipped is the chaos suite's core
// invariant: a degraded result must equal the strict result of the
// same query with the skipped chunks excluded — partial results are
// principled, not approximate. The matrix crosses DOP 1/3 with
// materialized/streaming delivery under a seeded fault schedule.
func TestChaosDegradedEqualsStrictMinusSkipped(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 3)
	bag := chaosBag()
	sawDegraded := false

	for _, dop := range []int{1, 3} {
		for _, streaming := range []bool{false, true} {
			name := fmt.Sprintf("dop=%d streaming=%v", dop, streaming)
			faulty, err := Open(dir, Config{
				Approach: registrar.Lazy, OptDisable: "none", MaxParallel: dop,
				Degraded: true, Faults: chaosSchedule, FaultSeed: chaosSeed,
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// The reference engine must not inherit any fault schedule —
			// not the suite's, not the environment's.
			clean, err := Open(dir, Config{
				Approach: registrar.Lazy, OptDisable: "none", MaxParallel: dop,
				Faults: "off",
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}

			for qi, sql := range bag {
				var got string
				var warns []Warning
				if streaming {
					sink := &rowSink{}
					res, err := faulty.QueryStream(context.Background(), sql, sink)
					if err != nil {
						t.Fatalf("%s query %d: %v", name, qi, err)
					}
					warns = res.Warnings
					got = sink.sb.String()
					res.Release()
				} else {
					res, err := faulty.Query(sql)
					if err != nil {
						t.Fatalf("%s query %d: %v", name, qi, err)
					}
					warns = res.Warnings
					got = renderRows(res)
					res.Release()
				}
				if len(warns) > 0 {
					sawDegraded = true
				}
				want := ""
				ref := exclusionSQL(sql, warns)
				if streaming {
					sink := &rowSink{}
					res, err := clean.QueryStream(context.Background(), ref, sink)
					if err != nil {
						t.Fatalf("%s reference %d: %v", name, qi, err)
					}
					if len(res.Warnings) > 0 {
						t.Fatalf("%s reference %d degraded: %+v", name, qi, res.Warnings)
					}
					want = sink.sb.String()
					res.Release()
				} else {
					res, err := clean.Query(ref)
					if err != nil {
						t.Fatalf("%s reference %d: %v", name, qi, err)
					}
					if len(res.Warnings) > 0 {
						t.Fatalf("%s reference %d degraded: %+v", name, qi, res.Warnings)
					}
					want = renderRows(res)
					res.Release()
				}
				if got != want {
					t.Errorf("%s query %d: degraded result diverges from strict-minus-skipped\nskipped: %+v\ngot:\n%s\nwant:\n%s\nsql: %s",
						name, qi, warns, got, want, bag[qi])
				}
			}
		}
	}
	if !sawDegraded {
		t.Fatal("chaos schedule never degraded a query: the suite exercised nothing")
	}
}

// TestChaosDiskTierDegraded runs the chaos bag with every chunk
// churning through the disk tier (tiny RAM cap + CacheDir) under
// whatever fault schedule the environment arms — CI runs it with
// SOMMELIER_FAULTS=cache.fill=error:0.1, so promote-path fills fail at
// a real rate and degraded results must still equal strict-minus-
// skipped. With no ambient schedule it is a plain tier differential.
func TestChaosDiskTierDegraded(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 2)
	bag := chaosBag()

	// Clean RAM-only reference: explicitly fault-free, whatever the
	// environment says, and the source of the churn cache sizing.
	clean, err := Open(dir, Config{
		Approach: registrar.Lazy, OptDisable: "none", Faults: "off",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, sql := range bag {
		res, err := clean.Query(sql)
		if err != nil {
			t.Fatalf("reference warmup: %v", err)
		}
		res.Release()
	}
	refStats := clean.CacheStats()
	if refStats.Chunks == 0 {
		t.Fatal("reference run cached no chunks")
	}
	churnBytes := refStats.BytesUsed / int64(refStats.Chunks) * 3 / 2

	// Empty Faults defers to SOMMELIER_FAULTS: this is the engine the
	// CI fault leg actually shakes.
	faulty, err := Open(dir, Config{
		Approach: registrar.Lazy, OptDisable: "none",
		Degraded: true, CacheBytes: churnBytes, CacheDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}

	sawDegraded := false
	// Two passes: the first spills on eviction, the second forces the
	// fill path through Promote — where the injected faults land.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			faulty.waitDiskIdle()
		}
		for qi, sql := range bag {
			res, err := faulty.Query(sql)
			if err != nil {
				t.Fatalf("pass %d query %d: %v", pass, qi, err)
			}
			warns := res.Warnings
			got := renderRows(res)
			res.Release()
			if len(warns) > 0 {
				sawDegraded = true
			}
			ref, err := clean.Query(exclusionSQL(sql, warns))
			if err != nil {
				t.Fatalf("pass %d reference %d: %v", pass, qi, err)
			}
			want := renderRows(ref)
			ref.Release()
			if got != want {
				t.Errorf("pass %d query %d: disk-tier degraded result diverges from strict-minus-skipped\nskipped: %+v\ngot:\n%s\nwant:\n%s",
					pass, qi, warns, got, want)
			}
		}
	}
	if s := faulty.DiskCacheStats(); s.Spills == 0 || s.Promotes == 0 {
		t.Fatalf("disk tier idle under chaos churn: %+v", s)
	}
	if faulty.FaultInjector() != nil && faulty.FaultInjector().Enabled() && !sawDegraded {
		t.Error("armed ambient schedule never degraded a query over the disk tier")
	}
	if err := faulty.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosStrictModeFailsUnderFaults: without degraded mode the same
// schedule turns injected chunk faults into query errors (never
// silently partial results).
func TestChaosStrictModeFailsUnderFaults(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 2)
	db, err := Open(dir, Config{
		Approach: registrar.Lazy, OptDisable: "none",
		Faults: "exec.flight=error:1", FaultSeed: chaosSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Query(tQueries()[4])
	if err == nil {
		t.Fatal("strict query under total fault injection succeeded")
	}
	if !strings.Contains(err.Error(), "chunk-access") {
		t.Fatalf("err = %v, want chunk-access failure", err)
	}
}

// TestChaosFaultConfig covers the Config.Faults wiring: garbage specs
// are rejected at open, "off" disarms, empty defers to the process
// environment.
func TestChaosFaultConfig(t *testing.T) {
	dir := genRepo(t, 1)
	if _, err := Open(dir, Config{Approach: registrar.Lazy, Faults: "no-such-point="}); err == nil {
		t.Fatal("malformed fault spec accepted")
	}
	db, err := Open(dir, Config{Approach: registrar.Lazy, Faults: "off"})
	if err != nil {
		t.Fatal(err)
	}
	if inj := db.FaultInjector(); inj == nil || inj.Enabled() {
		t.Fatalf("Faults \"off\" should yield an armed-but-inert injector, got %v", inj)
	}
	db2, err := Open(dir, Config{Approach: registrar.Lazy, Faults: chaosSchedule, FaultSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if inj := db2.FaultInjector(); inj == nil || !inj.Enabled() || inj.Seed() != 5 {
		t.Fatalf("injector = %v, want enabled with seed 5", inj)
	}
}

// flakyArchive serves a repository directory over HTTP with a global
// kill switch.
type flakyArchive struct {
	failing atomic.Bool
	fs      http.Handler
}

func (f *flakyArchive) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.failing.Load() {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	f.fs.ServeHTTP(w, r)
}

// TestChaosHTTPArchiveHeals is the end-to-end outage story: a remote
// archive goes down mid-workload, degraded queries keep answering over
// what they can get while the breaker opens and chunks quarantine;
// when the archive heals and the TTL and cooldown lapse, results
// converge back to the pre-outage answers and the breaker closes.
func TestChaosHTTPArchiveHeals(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 2)
	if err := registrar.WriteIndexFile(dir); err != nil {
		t.Fatal(err)
	}
	arch := &flakyArchive{fs: http.FileServer(http.Dir(dir))}
	srv := httptest.NewServer(arch)
	defer srv.Close()

	repo := &registrar.HTTPRepository{
		BaseURL: srv.URL,
		Client:  srv.Client(),
		Retry:   registrar.RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Breaker: registrar.BreakerConfig{Threshold: 2, Cooldown: 30 * time.Millisecond},

		QuarantineTTL: 40 * time.Millisecond,
	}
	if err := repo.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	db, err := OpenSource(repo, "", Config{
		Approach: registrar.Lazy, OptDisable: "none", Degraded: true, Faults: "off",
	})
	if err != nil {
		t.Fatal(err)
	}
	sql := tQueries()[4]
	ref, err := db.Query(sql)
	if err != nil {
		t.Fatalf("pre-outage query: %v", err)
	}
	want := renderRows(ref)
	ref.Release()

	// Outage. Evict the cache so the next query must refetch.
	arch.failing.Store(true)
	db.ClearCache()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("degraded query during outage failed: %v", err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("outage query reported no skipped chunks")
	}
	res.Release()
	health := db.SourceHealth()
	if health == nil || health.FetchErrors == 0 {
		t.Fatalf("source health = %+v, want fetch errors recorded", health)
	}

	// Heal; wait out quarantine TTL and breaker cooldown; converge.
	arch.failing.Store(false)
	time.Sleep(60 * time.Millisecond)
	db.ClearCache()
	res, err = db.QueryContext(WithDegraded(context.Background(), false), sql)
	if err != nil {
		t.Fatalf("post-heal strict query failed: %v", err)
	}
	if len(res.Warnings) != 0 {
		t.Fatalf("post-heal warnings: %+v", res.Warnings)
	}
	if got := renderRows(res); got != want {
		t.Fatalf("post-heal result diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
	res.Release()
	health = db.SourceHealth()
	for _, h := range health.Hosts {
		if h.State != registrar.BreakerClosed.String() {
			t.Fatalf("host %s breaker %s after heal, want closed", h.Host, h.State)
		}
	}
}
