package engine

import (
	"os"
	"path/filepath"
	"testing"

	"sommelier/internal/registrar"
)

func TestDerivedSnapshotRoundTrip(t *testing.T) {
	dir := genRepo(t, 2)
	db := open(t, dir, registrar.Lazy)
	// Derive some windows through a T2 query.
	res, err := db.Query(tQueries()[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.DMd.Computed == 0 {
		t.Fatal("nothing derived")
	}
	derived := db.MaterializedWindows()

	snap := filepath.Join(t.TempDir(), "dmd.snap")
	if err := db.SaveDerived(snap); err != nil {
		t.Fatal(err)
	}

	// A fresh engine (restart) restores the view and reuses it: the
	// same T2 query computes nothing.
	db2 := open(t, dir, registrar.Lazy)
	if err := db2.LoadDerived(snap); err != nil {
		t.Fatal(err)
	}
	if db2.MaterializedWindows() != derived {
		t.Fatalf("restored %d windows, want %d", db2.MaterializedWindows(), derived)
	}
	res2, err := db2.Query(tQueries()[2])
	if err != nil {
		t.Fatal(err)
	}
	if res2.DMd.Computed != 0 {
		t.Fatalf("restored view recomputed %d windows", res2.DMd.Computed)
	}
	// Same answers from the restored view.
	if renderRows(res2) != renderRows(res) {
		t.Fatal("restored view changed the answer")
	}
	res.Release()
	res2.Release()
}

func TestLoadDerivedValidation(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.Lazy)
	if err := db.LoadDerived(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing snapshot accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not a snapshot\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDerived(bad); err == nil {
		t.Fatal("bad header accepted")
	}
	malformed := filepath.Join(t.TempDir(), "malformed")
	if err := os.WriteFile(malformed, []byte("sommelier-dmd-v1\nonly,three,fields\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDerived(malformed); err == nil {
		t.Fatal("malformed row accepted")
	}
	// Empty snapshot (header only) is fine.
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, []byte("sommelier-dmd-v1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDerived(empty); err != nil {
		t.Fatal(err)
	}
}

func TestSaveDerivedEagerDMd(t *testing.T) {
	dir := genRepo(t, 1)
	db := open(t, dir, registrar.EagerDMd)
	snap := filepath.Join(t.TempDir(), "dmd.snap")
	if err := db.SaveDerived(snap); err != nil {
		t.Fatal(err)
	}
	// Restoring the full snapshot into a lazy engine makes its T2/T3
	// queries as fast as eager_dmd's.
	db2 := open(t, dir, registrar.Lazy)
	if err := db2.LoadDerived(snap); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query(tQueries()[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.DMd.Computed != 0 {
		t.Fatal("restored eager snapshot still derived windows")
	}
	if res.Stats.ChunksLoaded != 0 {
		t.Fatal("T2 on restored snapshot touched chunks")
	}
	res.Release()
}
