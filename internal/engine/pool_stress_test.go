package engine

import (
	"sync"
	"testing"

	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

// poolStressQueries covers every pooled producer: the fused pipeline
// (single-table projection), the coalescing filter drain, the join
// probe gather (plain projection over the data view), and the pooled
// group-by accumulators — without LIMIT, whose early stop legitimately
// strands in-flight pooled batches.
func poolStressQueries() []string {
	return []string{
		// Fused scan→filter→project over derived metadata.
		`SELECT window_start_ts, window_max_val FROM H
		   WHERE window_station = 'FIAM'
		     AND window_start_ts >= '2010-01-01T00:00:00.000'
		     AND window_start_ts < '2010-01-02T00:00:00.000'`,
		// Join probe gather: plain projection over the two-stage view.
		`SELECT D.sample_time, D.sample_value FROM dataview
		   WHERE F.station = 'FIAM'
		     AND D.sample_time < '2010-01-01T06:00:00.000'`,
		// Pooled group-by accumulators over the parallel drain.
		`SELECT F.station, AVG(D.sample_value), STDDEV(D.sample_value) FROM dataview
		   WHERE D.sample_time < '2010-01-02T00:00:00.000'
		   GROUP BY F.station ORDER BY F.station`,
		// Global aggregate (composite accumulator path).
		`SELECT COUNT(*) AS n, SUM(D.sample_value) FROM dataview WHERE F.station = 'ISK'`,
	}
}

// TestPooledOwnershipStress is the -race ownership test of the batch
// memory pools: concurrent queries over a deliberately tiny recycler
// (every round evicts and re-ingests chunks under load) with parallel
// drains, each result compared to the serial baseline and released.
// After the storm, the pool's outstanding gauge is back at its
// baseline: every pooled column and batch header of every query found
// its way home exactly once.
func TestPooledOwnershipStress(t *testing.T) {
	dir := genRepo(t, 2)
	db, err := Open(dir, Config{
		Approach:    registrar.Lazy,
		MaxParallel: 3,
		CacheBytes:  64 << 10, // a few chunks: admission evicts constantly
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := poolStressQueries()

	// Serial baseline: also triggers every derived-metadata derivation
	// and first-touch ingestion, so the stress rounds measure only the
	// steady-state query lifecycle.
	want := make([]string, len(queries))
	for i, sql := range queries {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		want[i] = renderRows(res)
		res.Release()
	}

	const (
		workers = 6
		rounds  = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				qi := (w + r) % len(queries)
				res, err := db.Query(queries[qi])
				if err != nil {
					errs <- err
					return
				}
				got := renderRows(res)
				res.Release()
				if got != want[qi] {
					t.Errorf("worker %d round %d query %d diverges from serial baseline", w, r, qi)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("stress query: %v", err)
	}
	storage.RequireNoLeaks(t)
}

// TestPoolingResultPreserving is the pooled/unpooled differential at
// the engine level: with batch/column pooling disabled globally, every
// query of the optimizer-differential suite returns exactly the rows
// the pooled execution returns, across all five loading approaches.
func TestPoolingResultPreserving(t *testing.T) {
	dir := genRepo(t, 1)
	queries := optDiffQueries()
	approaches := []registrar.Approach{
		registrar.Lazy, registrar.EagerCSV, registrar.EagerPlain,
		registrar.EagerIndex, registrar.EagerDMd,
	}
	for _, app := range approaches {
		ref := runQuerySuite(t, dir, app, "none", queries)
		storage.SetPooling(false)
		got := runQuerySuite(t, dir, app, "none", queries)
		storage.SetPooling(true)
		for qi := range queries {
			if got[qi] != ref[qi] {
				t.Errorf("%s, pooling off, query %d diverges:\ngot:\n%s\nwant:\n%s",
					app, qi, got[qi], ref[qi])
			}
		}
	}
}
