package engine

import (
	"testing"

	"sommelier/internal/opt"
	"sommelier/internal/registrar"
)

// optDiffQueries spans the taxonomy (T1/T2/T4/T5) plus projection
// arithmetic, grouping, ordering and a parenthesized disjunction, so
// every optimizer rule has something to rewrite.
func optDiffQueries() []string {
	return []string{
		`SELECT station, COUNT(*) AS n FROM F WHERE station = 'FIAM' GROUP BY station`,
		`SELECT window_start_ts, window_max_val FROM H
		   WHERE window_station = 'FIAM'
		     AND window_start_ts >= '2010-01-01T00:00:00.000'
		     AND window_start_ts < '2010-01-02T00:00:00.000'
		   ORDER BY window_start_ts`,
		`SELECT AVG(D.sample_value), COUNT(*) AS n FROM dataview
		   WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		     AND D.sample_time >= '2010-01-01T00:00:00.000'
		     AND D.sample_time < '2010-01-02T00:00:00.000'`,
		`SELECT COUNT(*) AS n, MIN(D.sample_value), MAX(D.sample_value) FROM windowdataview
		   WHERE F.station = 'FIAM'
		     AND H.window_start_ts >= '2010-01-01T00:00:00.000'
		     AND H.window_start_ts < '2010-01-02T00:00:00.000'
		     AND H.window_std_dev >= 0`,
		`SELECT D.sample_time, D.sample_value * 2 + 1 AS v FROM dataview
		   WHERE F.station = 'ISK' AND (F.channel = 'HHZ' OR F.channel = 'BHE')
		     AND D.sample_time < '2010-01-01T06:00:00.000'
		   ORDER BY D.sample_time DESC LIMIT 7`,
		`SELECT COUNT(*) AS n FROM F WHERE 1 + 1 = 2 AND station = 'ISK'`,
		// Single-table computed projection: the fused pipeline's
		// expression path (and its absence when the fuse rule is off).
		`SELECT window_max_val * 2 + 1 AS v, window_start_ts FROM H
		   WHERE window_station = 'AQU' AND window_std_dev >= 0`,
	}
}

// TestOptimizerRulesResultPreserving is the acceptance property of the
// rule pipeline: with any single rule disabled — and with all of them
// disabled — every query returns exactly the rows the fully optimized
// plan returns, across all five loading approaches. Each configuration
// runs on a fresh database so derived-metadata state accumulates
// identically.
func TestOptimizerRulesResultPreserving(t *testing.T) {
	dir := genRepo(t, 1)
	queries := optDiffQueries()
	approaches := []registrar.Approach{
		registrar.Lazy, registrar.EagerCSV, registrar.EagerPlain,
		registrar.EagerIndex, registrar.EagerDMd,
	}
	configs := append([]string{"all"}, opt.Rules()...)
	for _, app := range approaches {
		ref := runQuerySuite(t, dir, app, "none", queries)
		for _, disabled := range configs {
			got := runQuerySuite(t, dir, app, disabled, queries)
			for qi := range queries {
				if got[qi] != ref[qi] {
					t.Errorf("%s, rule %q disabled, query %d diverges:\ngot:\n%s\nwant:\n%s",
						app, disabled, qi, got[qi], ref[qi])
				}
			}
		}
	}
}

func runQuerySuite(t *testing.T, dir string, app registrar.Approach, optDisable string, queries []string) []string {
	t.Helper()
	db, err := Open(dir, Config{Approach: app, OptDisable: optDisable})
	if err != nil {
		t.Fatalf("open %s (disable %s): %v", app, optDisable, err)
	}
	out := make([]string, 0, len(queries))
	for qi, sql := range queries {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s (disable %s) query %d: %v", app, optDisable, qi, err)
		}
		out = append(out, renderRows(res))
		res.Release()
	}
	return out
}
