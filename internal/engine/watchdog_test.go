package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"sommelier/internal/exec"
	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

// The runaway-query watchdog acceptance suite: a query that blows its
// context deadline must be cancelled at a morsel boundary — within the
// deadline plus one morsel of grace, not after finishing its drains —
// on both the materialized and streaming paths, surface a typed
// *exec.DeadlineError, and release every pooled batch on the way out.
// Injected exec.morsel stalls stand in for the runaway work: without
// the watchdog each stalled claim would hold the query for 30s.

// openWatchdog opens the repository with a deterministic exec.morsel
// schedule and DOP 2, so the parallel morsel-claim path (not just the
// serial fallback) is exercised regardless of GOMAXPROCS.
func openWatchdog(t *testing.T, dir, faults string) *DB {
	t.Helper()
	db, err := Open(dir, Config{
		Approach: registrar.Lazy, OptDisable: "none", MaxParallel: 2,
		Faults: faults, FaultSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// requireDeadlineKill asserts the watchdog contract on a query error:
// typed, unwrappable to context.DeadlineExceeded, with a sane elapsed
// stamp.
func requireDeadlineKill(t *testing.T, err error) *exec.DeadlineError {
	t.Helper()
	if err == nil {
		t.Fatal("deadlined query succeeded")
	}
	var de *exec.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v (%T), want *exec.DeadlineError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v does not unwrap to context.DeadlineExceeded", err)
	}
	if de.Elapsed <= 0 {
		t.Fatalf("DeadlineError.Elapsed = %v, want > 0", de.Elapsed)
	}
	return de
}

// TestWatchdogCancelsStalledMorsel wedges every morsel claim behind a
// 30s injected stall: the 50ms deadline must cancel the query at that
// first claim, promptly, on both delivery paths.
func TestWatchdogCancelsStalledMorsel(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 2)
	sql := tQueries()[4]

	for _, streaming := range []bool{false, true} {
		t.Run(fmt.Sprintf("streaming=%v", streaming), func(t *testing.T) {
			db := openWatchdog(t, dir, "exec.morsel=stall:1")
			base := storage.Outstanding()
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			t0 := time.Now()
			var err error
			if streaming {
				_, err = db.QueryStream(ctx, sql, &rowSink{})
			} else {
				_, err = db.QueryContext(ctx, sql)
			}
			wall := time.Since(t0)
			requireDeadlineKill(t, err)
			// One morsel of grace: the stalled claim honors the context,
			// so the whole query ends at the deadline plus scheduling
			// noise — nowhere near the 30s the stall would otherwise pin.
			if wall > time.Second {
				t.Fatalf("deadlined query took %v, want ~50ms", wall)
			}
			if got := storage.Outstanding(); got != base {
				t.Fatalf("outstanding pooled batches = %d, want baseline %d", got, base)
			}
		})
	}
}

// TestWatchdogCancelsMidQuery delays every morsel claim by 40ms under
// a 50ms deadline: the first claim succeeds and does real work
// (pooled batches in flight), the second expires mid-wait — the
// watchdog must cancel between morsels and the error paths must
// release everything the first morsel allocated.
func TestWatchdogCancelsMidQuery(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 2)

	queries := map[string]string{
		"aggregate": tQueries()[4],
		// ORDER BY forces a Sort pipeline breaker, whose internal drain
		// runs under the breaker's own watchdog check.
		"sort": `SELECT D.sample_time, D.sample_value FROM dataview
		         WHERE F.station = 'FIAM' AND F.channel = 'HHZ'
		         ORDER BY D.sample_value`,
	}
	for name, sql := range queries {
		for _, streaming := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/streaming=%v", name, streaming), func(t *testing.T) {
				db := openWatchdog(t, dir, "exec.morsel=latency:1:40ms")
				// Warm the cache so execution time is morsel work, not
				// chunk ingestion: run once without a deadline.
				warm, cancelWarm := context.WithCancel(context.Background())
				if res, err := db.QueryContext(warm, sql); err == nil {
					res.Release()
				}
				cancelWarm()

				base := storage.Outstanding()
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				defer cancel()
				t0 := time.Now()
				var err error
				if streaming {
					_, err = db.QueryStream(ctx, sql, &rowSink{})
				} else {
					_, err = db.QueryContext(ctx, sql)
				}
				wall := time.Since(t0)
				requireDeadlineKill(t, err)
				// Deadline plus one morsel of grace: one 40ms claim delay
				// plus one morsel's work, with CI scheduling headroom.
				if wall > time.Second {
					t.Fatalf("deadlined query took %v, want deadline + one morsel", wall)
				}
				if got := storage.Outstanding(); got != base {
					t.Fatalf("outstanding pooled batches = %d, want baseline %d", got, base)
				}
			})
		}
	}
}

// TestWatchdogFaultFreePassthrough: with the exec.morsel point armed
// at rate zero, queries under generous deadlines are untouched — the
// watchdog check itself must not perturb results.
func TestWatchdogFaultFreePassthrough(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := genRepo(t, 1)
	clean := openOpt(t, dir, registrar.Lazy)
	armed := openWatchdog(t, dir, "exec.morsel=latency:0")
	for qi, sql := range tQueries() {
		if qi == 3 {
			continue // needs the windowdataview_md view, registered elsewhere
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		want, err := clean.QueryContext(ctx, sql)
		if err != nil {
			cancel()
			t.Fatalf("T%d clean: %v", qi, err)
		}
		got, err := armed.QueryContext(ctx, sql)
		if err != nil {
			cancel()
			t.Fatalf("T%d armed: %v", qi, err)
		}
		if renderRows(got) != renderRows(want) {
			t.Fatalf("T%d diverged under armed-zero exec.morsel", qi)
		}
		got.Release()
		want.Release()
		cancel()
	}
}
