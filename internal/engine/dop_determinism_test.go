package engine

import (
	"fmt"
	"strings"
	"testing"

	"sommelier/internal/registrar"
	"sommelier/internal/storage"
)

// renderBits renders a result with float64 cells at full precision, so
// comparisons are bitwise, not display-rounded.
func renderBits(res *Result) string {
	var sb strings.Builder
	flat := res.Rel.Flatten()
	for r := 0; r < flat.Len(); r++ {
		for c := 0; c < flat.Width(); c++ {
			v := storage.ValueAt(flat.Cols[c], r)
			if f, ok := v.(float64); ok {
				fmt.Fprintf(&sb, "%.17g|", f)
			} else {
				fmt.Fprintf(&sb, "%v|", v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestDOPDeterminism asserts the core determinism invariant of
// range-partitioned execution: the same query over the same repository
// returns bitwise-identical results — floating-point aggregates
// included — at every degree of parallelism, because aggregation
// ranges are fixed by the morsel list and never by the DOP. Each DOP
// gets a fresh DB (cold lazy ingestion) and queries twice (cold and
// cached), so the invariant also covers load-path and cache-path scans.
func TestDOPDeterminism(t *testing.T) {
	dir := genRepo(t, 2)
	queries := []string{
		`SELECT F.station, AVG(D.sample_value), STDDEV(D.sample_value) FROM dataview
		   WHERE D.sample_time < '2010-01-02T00:00:00.000'
		   GROUP BY F.station ORDER BY F.station`,
		`SELECT COUNT(*) AS n, SUM(D.sample_value), MIN(D.sample_value), MAX(D.sample_value)
		   FROM dataview WHERE F.station = 'FIAM'`,
	}
	var want []string
	for _, par := range []int{1, 2, 4, 8} {
		db, err := Open(dir, Config{Approach: registrar.Lazy, MaxParallel: par})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			for qi, sql := range queries {
				res, err := db.Query(sql)
				if err != nil {
					t.Fatalf("par %d query %d: %v", par, qi, err)
				}
				got := renderBits(res)
				if par == 1 && round == 0 {
					want = append(want, got)
					continue
				}
				if got != want[qi] {
					t.Errorf("par %d round %d query %d diverges from par 1:\n%s\nvs\n%s",
						par, round, qi, got, want[qi])
				}
			}
		}
	}
}
