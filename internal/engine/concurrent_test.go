package engine

import (
	"context"
	"sort"
	"strings"
	"sync"
	"testing"

	"sommelier/internal/registrar"
)

// stressQueries is a mixed workload: a point lookup (one hour of one
// station), range scans over actual data, metadata aggregates and
// DMd-backed queries — the taxonomy under concurrent fire.
func stressQueries() []string {
	q := tQueries()
	return []string{
		q[1], q[2], q[3], q[4], q[5],
		// Point-ish: a single two-hour slice of one station.
		`SELECT AVG(D.sample_value) FROM dataview
		   WHERE F.station = 'ISK' AND F.channel = 'BHE'
		     AND D.sample_time >= '2010-01-01T06:00:00.000'
		     AND D.sample_time < '2010-01-01T08:00:00.000'`,
		// Range over a second station, exercising disjoint chunk sets.
		`SELECT COUNT(*) AS n, MAX(D.sample_value) AS mx FROM dataview
		   WHERE F.station = 'CERA'
		     AND D.sample_time >= '2010-01-01T00:00:00.000'
		     AND D.sample_time < '2010-01-02T00:00:00.000'`,
	}
}

// sortedRows renders a result with row order normalized: concurrent
// derivation may grow H in a different order than serial execution
// grew it, which legitimately permutes unordered results.
func sortedRows(res *Result) string {
	lines := strings.Split(strings.TrimRight(renderRows(res), "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestConcurrentStressAllApproaches runs N goroutines of the mixed
// workload against one DB per loading approach (plus a lazy variant
// with a deliberately tiny recycler, so admissions evict chunks other
// in-flight queries are scanning) and asserts every answer is identical
// to serial execution. Run with -race to verify the engine's
// concurrency guarantees.
func TestConcurrentStressAllApproaches(t *testing.T) {
	const goroutines, rounds = 8, 2
	dir := genRepo(t, 2)
	queries := stressQueries()

	type variant struct {
		name string
		cfg  Config
	}
	variants := []variant{
		{"lazy-small-cache", Config{Approach: registrar.Lazy, CacheBytes: 64 << 10}},
	}
	for _, app := range registrar.Approaches() {
		variants = append(variants, variant{string(app), Config{Approach: app}})
	}

	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			// Serial baseline on a fresh DB.
			serial, err := Open(dir, v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := addMetadataView(serial); err != nil {
				t.Fatal(err)
			}
			want := make([]string, len(queries))
			for i, sql := range queries {
				res, err := serial.Query(sql)
				if err != nil {
					t.Fatalf("serial query %d: %v", i, err)
				}
				want[i] = sortedRows(res)
				res.Release()
			}

			// Concurrent replay on another fresh DB.
			db, err := Open(dir, v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := addMetadataView(db); err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						for off := range queries {
							i := (g + off) % len(queries) // rotate start per goroutine
							res, err := db.QueryContext(context.Background(), queries[i])
							if err != nil {
								t.Errorf("goroutine %d query %d: %v", g, i, err)
								return
							}
							got := sortedRows(res)
							res.Release()
							if got != want[i] {
								t.Errorf("goroutine %d query %d diverged from serial:\n%s\nvs\n%s", g, i, got, want[i])
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
		})
	}
}
