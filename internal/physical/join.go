package physical

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sommelier/internal/index"
	"sommelier/internal/storage"
)

// HashJoin is an inner equi-join. The left input is materialized as the
// build side — in the plans this package serves, the left input is
// always the (small) metadata composite, while the right side streams
// the (large) actual data, so build-left is the right default.
//
// The dominant single-int64 (or timestamp) key case runs a specialized
// path: the build table is a map[int64][]int32 fed straight from the
// key column's backing slice, and the probe reads the key slice
// directly — no composite index.Key construction, no per-row KeyAt
// dispatch. Probing also composes with a deferred selection on the
// probe batch, so a filter below the join never gathers. Composite keys
// keep the general index.Key path.
//
// Under a degree of parallelism (SetParallel), a large fast-path build
// is partitioned: the key column is sharded by hash across per-worker
// maps built concurrently, and probes address the owning shard — no
// merge step, no write sharing. The probe side parallelizes through
// Split: each returned operator probes its own share of the right
// input's morsels against the shared read-only table.
type HashJoin struct {
	left, right   Operator
	leftK, rightK []int
	names         []string
	kinds         []storage.Kind
	// fastKey marks the specialized single-int64/time key path;
	// differential tests clear it to force the composite path.
	fastKey bool
	// dop is the parallelism granted by the executor for the build.
	dop int
	// quota meters the materialized build side against the per-query
	// memory ceiling.
	quota *storage.Quota
	// check cancels the build drain — a pipeline breaker — when the
	// query's deadline expires mid-build.
	check func() error

	built     bool
	buildData *storage.Batch
	table     map[index.Key][]int32
	intTable  *intJoinTable
	// shards replace intTable after a partitioned parallel build:
	// shard i holds the keys whose hash lands in partition i.
	shards    []map[int64][]int32
	shardMask uint64
	// probesLeft counts the probe streams still running; the last one to
	// exhaust recycles the fast-path build scratch.
	probesLeft atomic.Int32
}

// intJoinTable is the fast-path build table: per-key [start, start+n)
// spans into one shared row-index arena, instead of one heap slice per
// key. The map and the arena are pooled, so a steady-state join build
// allocates nothing. Row indexes within a span are in build-row order,
// exactly as the per-key append layout produced.
type intJoinTable struct {
	spans map[int64]intSpan
	rows  []int32 // pooled arena (selection-vector pool shape)
}

type intSpan struct{ start, n int32 }

var joinTablePool sync.Pool

// arenaPool recycles the build-row arenas separately from the
// selection-vector pool: arenas are sized by the build side (possibly
// far beyond BatchSize), and mixing them into the uniformly
// batch-sized selection pool would pin large arrays under small
// vectors.
var arenaPool sync.Pool // *[]int32

func getArena(n int) []int32 {
	if v := arenaPool.Get(); v != nil {
		a := (*v.(*[]int32))[:0]
		if cap(a) >= n {
			return a[:n]
		}
	}
	return make([]int32, n)
}

func putArena(a []int32) {
	if cap(a) == 0 {
		return
	}
	a = a[:0]
	arenaPool.Put(&a)
}

// newIntJoinTable builds the span table over keys in three passes:
// count per key, assign span starts, fill the arena with a per-key
// cursor (temporarily reusing n).
func newIntJoinTable(keys []int64) *intJoinTable {
	t, _ := joinTablePool.Get().(*intJoinTable)
	if t == nil {
		t = &intJoinTable{spans: make(map[int64]intSpan, 64)}
	} else {
		clear(t.spans)
	}
	t.rows = getArena(len(keys))
	for _, k := range keys {
		sp := t.spans[k]
		sp.n++
		t.spans[k] = sp
	}
	var start int32
	for k, sp := range t.spans {
		count := sp.n
		sp.start, sp.n = start, 0
		start += count
		t.spans[k] = sp
	}
	for r, k := range keys {
		sp := t.spans[k]
		t.rows[sp.start+sp.n] = int32(r)
		sp.n++
		t.spans[k] = sp
	}
	return t
}

func (t *intJoinTable) lookup(k int64) []int32 {
	sp, ok := t.spans[k]
	if !ok {
		return nil
	}
	return t.rows[sp.start : sp.start+sp.n]
}

func putIntJoinTable(t *intJoinTable) {
	if t == nil {
		return
	}
	putArena(t.rows)
	t.rows = nil
	joinTablePool.Put(t)
}

// SetParallel implements ParallelHinter: it grants the build phase up
// to dop workers. It must be called before the first Next or Split.
func (j *HashJoin) SetParallel(dop int) { j.dop = dop }

// SetQuota implements QuotaHinter: the materialized build side is
// charged against the per-query memory ceiling.
func (j *HashJoin) SetQuota(q *storage.Quota) { j.quota = q }

// SetCheck implements CheckHinter for the build-side drain.
func (j *HashJoin) SetCheck(check func() error) { j.check = check }

// NewHashJoin joins left and right on pairwise-equal key columns given
// as column positions.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("physical: join needs matching, non-empty key lists")
	}
	lk, rk := left.Kinds(), right.Kinds()
	for i := range leftKeys {
		a, b := lk[leftKeys[i]], rk[rightKeys[i]]
		if !joinComparable(a, b) {
			return nil, fmt.Errorf("physical: join key %d kinds %v vs %v", i, a, b)
		}
	}
	return &HashJoin{
		left: left, right: right,
		leftK: leftKeys, rightK: rightKeys,
		fastKey: len(leftKeys) == 1 && isIntKeyKind(lk[leftKeys[0]]) && isIntKeyKind(rk[rightKeys[0]]),
		names:   append(append([]string{}, left.Names()...), right.Names()...),
		kinds:   append(append([]storage.Kind{}, left.Kinds()...), right.Kinds()...),
	}, nil
}

func joinComparable(a, b storage.Kind) bool {
	if a == b {
		return true
	}
	return isIntKeyKind(a) && isIntKeyKind(b)
}

// isIntKeyKind reports kinds backed by an int64 slice, eligible for the
// specialized hash paths.
func isIntKeyKind(k storage.Kind) bool { return k == storage.KindInt64 || k == storage.KindTime }

// Names implements Operator.
func (j *HashJoin) Names() []string { return j.names }

// Kinds implements Operator.
func (j *HashJoin) Kinds() []storage.Kind { return j.kinds }

// parallelBuildMin is the build cardinality below which a partitioned
// build is not worth its per-shard scan of the key column.
const parallelBuildMin = 1 << 13

func (j *HashJoin) build() error {
	rel, err := DrainWith(j.left, DrainOpts{DOP: j.dop, Quota: j.quota, Check: j.check, Morsel: j.check})
	if err != nil {
		return err
	}
	j.buildData = rel.Flatten()
	// A multi-batch flatten copied the rows: recycle the drained input.
	// A single-batch flatten shares it: disown (the build data lives as
	// long as the join, outside pool accounting).
	if len(rel.Batches()) > 1 {
		rel.Release()
	} else {
		rel.Disown()
	}
	n := j.buildData.Len()
	j.probesLeft.Store(1)
	if j.fastKey {
		if n > 0 && j.dop > 1 && n >= parallelBuildMin {
			j.buildPartitioned(storage.Int64s(j.buildData.Cols[j.leftK[0]]))
		} else if n > 0 {
			j.intTable = newIntJoinTable(storage.Int64s(j.buildData.Cols[j.leftK[0]]))
		}
		j.built = true
		return nil
	}
	j.table = make(map[index.Key][]int32, n)
	for r := 0; r < n; r++ {
		k, err := index.KeyAt(j.buildData, j.leftK, r)
		if err != nil {
			return err
		}
		j.table[k] = append(j.table[k], int32(r))
	}
	j.built = true
	return nil
}

// buildPartitioned builds the fast-path table as hash-partitioned
// shards: each shard's builder scans the full key slice but inserts
// only its own partition, so no lock and no merge is needed, and
// probes stay one shard lookup away. Workers are capped at the granted
// DOP (each handling shards w, w+dop, …), so the build never
// oversubscribes the adaptive per-query budget; total scan work is
// shards×n with shards < 2×DOP — about two passes per core, the price
// of skipping a partition-then-merge phase on a build side that is
// small relative to the probe side.
func (j *HashJoin) buildPartitioned(keys []int64) {
	shards := 1
	for shards < j.dop {
		shards <<= 1
	}
	j.shards = make([]map[int64][]int32, shards)
	j.shardMask = uint64(shards - 1)
	workers := j.dop
	if workers > shards {
		workers = shards
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := w; s < shards; s += workers {
				m := make(map[int64][]int32, len(keys)/shards+1)
				for r, v := range keys {
					if hash64(v)&j.shardMask == uint64(s) {
						m[v] = append(m[v], int32(r))
					}
				}
				j.shards[s] = m
			}
		}(w)
	}
	wg.Wait()
}

// lookupInt resolves a fast-path key against whichever table layout the
// build produced.
func (j *HashJoin) lookupInt(k int64) []int32 {
	if j.shards != nil {
		return j.shards[hash64(k)&j.shardMask][k]
	}
	return j.intTable.lookup(k)
}

func (j *HashJoin) tableEmpty() bool {
	if j.fastKey {
		if j.shards != nil {
			for _, m := range j.shards {
				if len(m) > 0 {
					return false
				}
			}
			return true
		}
		return j.intTable == nil || len(j.intTable.spans) == 0
	}
	return len(j.table) == 0
}

// probeDone marks one probe stream exhausted; the last one recycles the
// pooled fast-path build scratch (the arena and span map).
func (j *HashJoin) probeDone() {
	if j.probesLeft.Add(-1) == 0 && j.intTable != nil {
		t := j.intTable
		j.intTable = nil
		putIntJoinTable(t)
	}
}

// Next implements Operator.
func (j *HashJoin) Next() (*storage.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	if j.tableEmpty() {
		return nil, nil
	}
	return j.probeFrom(j.right)
}

// Split implements Splitter: when the probe side can partition its
// morsels, the build runs once (partitioned across the granted workers
// when large) and each returned operator probes one share of the right
// input against the shared read-only table.
func (j *HashJoin) Split(n int) ([]Operator, error) {
	sp, ok := j.right.(Splitter)
	if !ok {
		return nil, nil
	}
	rights, err := sp.Split(n)
	if err != nil || rights == nil {
		return nil, err
	}
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	out := make([]Operator, len(rights))
	for i, r := range rights {
		out[i] = &hashJoinProbe{j: j, right: r}
	}
	j.probesLeft.Store(int32(len(out)))
	return out, nil
}

// probeFrom probes batches pulled from right against the build table.
// It reads only immutable post-build state, so any number of probes may
// run concurrently over disjoint right streams.
func (j *HashJoin) probeFrom(right Operator) (*storage.Batch, error) {
	for {
		rb, err := right.Next()
		if err != nil {
			return nil, err
		}
		if rb == nil {
			j.probeDone()
			return nil, nil
		}
		leftIdx := storage.GetSel(rb.Len())
		rightIdx := storage.GetSel(rb.Len())
		var base *storage.Batch
		if j.fastKey {
			var sel []int32
			base, sel = rb.DetachSel()
			keys := storage.Int64s(base.Cols[j.rightK[0]])
			if sel != nil {
				for _, r := range sel {
					for _, lr := range j.lookupInt(keys[r]) {
						leftIdx = append(leftIdx, lr)
						rightIdx = append(rightIdx, r)
					}
				}
				storage.PutSel(sel)
			} else {
				for r, k := range keys {
					for _, lr := range j.lookupInt(k) {
						leftIdx = append(leftIdx, lr)
						rightIdx = append(rightIdx, int32(r))
					}
				}
			}
		} else {
			base = rb.Materialize()
			n := base.Len()
			for r := 0; r < n; r++ {
				k, err := index.KeyAt(base, j.rightK, r)
				if err != nil {
					storage.PutSel(leftIdx)
					storage.PutSel(rightIdx)
					storage.PutBatch(base)
					return nil, err
				}
				for _, lr := range j.table[k] {
					leftIdx = append(leftIdx, lr)
					rightIdx = append(rightIdx, int32(r))
				}
			}
		}
		if len(leftIdx) == 0 {
			storage.PutSel(leftIdx)
			storage.PutSel(rightIdx)
			storage.PutBatch(base)
			continue
		}
		// Gather both sides into pooled output columns: the join's
		// per-batch gather scratch is the hottest allocation site of the
		// probe. The probe input is fully copied out and recycled.
		cols := make([]storage.Column, 0, len(j.buildData.Cols)+len(base.Cols))
		for _, c := range j.buildData.Cols {
			cols = append(cols, storage.GatherPooled(c, leftIdx))
		}
		for _, c := range base.Cols {
			cols = append(cols, storage.GatherPooled(c, rightIdx))
		}
		storage.PutSel(leftIdx)
		storage.PutSel(rightIdx)
		storage.PutBatch(base)
		return storage.NewPooledBatch(cols...), nil
	}
}

// hashJoinProbe is one partition of a split hash join: it probes its
// own right-side share against the parent's shared build table.
type hashJoinProbe struct {
	j     *HashJoin
	right Operator
}

// Names implements Operator.
func (p *hashJoinProbe) Names() []string { return p.j.names }

// Kinds implements Operator.
func (p *hashJoinProbe) Kinds() []storage.Kind { return p.j.kinds }

// Next implements Operator.
func (p *hashJoinProbe) Next() (*storage.Batch, error) {
	if p.j.tableEmpty() {
		return nil, nil
	}
	return p.j.probeFrom(p.right)
}

// CrossJoin produces the Cartesian product of its inputs; the planner
// emits it only under rule R2 (joining disconnected metadata
// components), so inputs are small.
type CrossJoin struct {
	left, right Operator
	names       []string
	kinds       []storage.Kind

	built    bool
	leftData *storage.Batch
	rightRel *storage.Relation
	li       int
	ri       int
}

// NewCrossJoin builds the product operator.
func NewCrossJoin(left, right Operator) *CrossJoin {
	return &CrossJoin{
		left: left, right: right,
		names: append(append([]string{}, left.Names()...), right.Names()...),
		kinds: append(append([]storage.Kind{}, left.Kinds()...), right.Kinds()...),
	}
}

// Names implements Operator.
func (c *CrossJoin) Names() []string { return c.names }

// Kinds implements Operator.
func (c *CrossJoin) Kinds() []storage.Kind { return c.kinds }

// Next implements Operator.
func (c *CrossJoin) Next() (*storage.Batch, error) {
	if !c.built {
		lrel, err := Run(c.left)
		if err != nil {
			return nil, err
		}
		c.leftData = lrel.Flatten()
		// Both sides outlive the drain (the right batches are re-emitted
		// in the product): take them out of pool accounting.
		lrel.Disown()
		c.rightRel, err = Run(c.right)
		if err != nil {
			return nil, err
		}
		c.rightRel.Disown()
		c.built = true
	}
	for c.li < c.leftData.Len() {
		if c.ri >= len(c.rightRel.Batches()) {
			c.li++
			c.ri = 0
			continue
		}
		rb := c.rightRel.Batches()[c.ri]
		c.ri++
		n := rb.Len()
		leftIdx := make([]int32, n)
		for i := range leftIdx {
			leftIdx[i] = int32(c.li)
		}
		lcols := c.leftData.Gather(leftIdx)
		return storage.NewBatch(append(append([]storage.Column{}, lcols.Cols...), rb.Cols...)...), nil
	}
	return nil, nil
}
