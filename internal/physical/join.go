package physical

import (
	"fmt"

	"sommelier/internal/index"
	"sommelier/internal/storage"
)

// HashJoin is an inner equi-join. The left input is materialized as the
// build side — in the plans this package serves, the left input is
// always the (small) metadata composite, while the right side streams
// the (large) actual data, so build-left is the right default.
//
// The dominant single-int64 (or timestamp) key case runs a specialized
// path: the build table is a map[int64][]int32 fed straight from the
// key column's backing slice, and the probe reads the key slice
// directly — no composite index.Key construction, no per-row KeyAt
// dispatch. Probing also composes with a deferred selection on the
// probe batch, so a filter below the join never gathers. Composite keys
// keep the general index.Key path.
type HashJoin struct {
	left, right   Operator
	leftK, rightK []int
	names         []string
	kinds         []storage.Kind
	// fastKey marks the specialized single-int64/time key path;
	// differential tests clear it to force the composite path.
	fastKey bool

	built     bool
	buildData *storage.Batch
	table     map[index.Key][]int32
	intTable  map[int64][]int32
}

// NewHashJoin joins left and right on pairwise-equal key columns given
// as column positions.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("physical: join needs matching, non-empty key lists")
	}
	lk, rk := left.Kinds(), right.Kinds()
	for i := range leftKeys {
		a, b := lk[leftKeys[i]], rk[rightKeys[i]]
		if !joinComparable(a, b) {
			return nil, fmt.Errorf("physical: join key %d kinds %v vs %v", i, a, b)
		}
	}
	return &HashJoin{
		left: left, right: right,
		leftK: leftKeys, rightK: rightKeys,
		fastKey: len(leftKeys) == 1 && isIntKeyKind(lk[leftKeys[0]]) && isIntKeyKind(rk[rightKeys[0]]),
		names:   append(append([]string{}, left.Names()...), right.Names()...),
		kinds:   append(append([]storage.Kind{}, left.Kinds()...), right.Kinds()...),
	}, nil
}

func joinComparable(a, b storage.Kind) bool {
	if a == b {
		return true
	}
	return isIntKeyKind(a) && isIntKeyKind(b)
}

// isIntKeyKind reports kinds backed by an int64 slice, eligible for the
// specialized hash paths.
func isIntKeyKind(k storage.Kind) bool { return k == storage.KindInt64 || k == storage.KindTime }

// Names implements Operator.
func (j *HashJoin) Names() []string { return j.names }

// Kinds implements Operator.
func (j *HashJoin) Kinds() []storage.Kind { return j.kinds }

func (j *HashJoin) build() error {
	rel, err := Run(j.left)
	if err != nil {
		return err
	}
	j.buildData = rel.Flatten()
	n := j.buildData.Len()
	if j.fastKey {
		j.intTable = make(map[int64][]int32, n)
		if n > 0 {
			for r, v := range storage.Int64s(j.buildData.Cols[j.leftK[0]]) {
				j.intTable[v] = append(j.intTable[v], int32(r))
			}
		}
		j.built = true
		return nil
	}
	j.table = make(map[index.Key][]int32, n)
	for r := 0; r < n; r++ {
		k, err := index.KeyAt(j.buildData, j.leftK, r)
		if err != nil {
			return err
		}
		j.table[k] = append(j.table[k], int32(r))
	}
	j.built = true
	return nil
}

func (j *HashJoin) tableEmpty() bool {
	if j.fastKey {
		return len(j.intTable) == 0
	}
	return len(j.table) == 0
}

// Next implements Operator.
func (j *HashJoin) Next() (*storage.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	if j.tableEmpty() {
		return nil, nil
	}
	for {
		rb, err := j.right.Next()
		if err != nil || rb == nil {
			return nil, err
		}
		leftIdx := storage.GetSel(rb.Len())
		rightIdx := storage.GetSel(rb.Len())
		var base *storage.Batch
		if j.fastKey {
			var sel []int32
			base, sel = rb.DetachSel()
			keys := storage.Int64s(base.Cols[j.rightK[0]])
			if sel != nil {
				for _, r := range sel {
					for _, lr := range j.intTable[keys[r]] {
						leftIdx = append(leftIdx, lr)
						rightIdx = append(rightIdx, r)
					}
				}
				storage.PutSel(sel)
			} else {
				for r, k := range keys {
					for _, lr := range j.intTable[k] {
						leftIdx = append(leftIdx, lr)
						rightIdx = append(rightIdx, int32(r))
					}
				}
			}
		} else {
			base = rb.Materialize()
			n := base.Len()
			for r := 0; r < n; r++ {
				k, err := index.KeyAt(base, j.rightK, r)
				if err != nil {
					storage.PutSel(leftIdx)
					storage.PutSel(rightIdx)
					return nil, err
				}
				for _, lr := range j.table[k] {
					leftIdx = append(leftIdx, lr)
					rightIdx = append(rightIdx, int32(r))
				}
			}
		}
		if len(leftIdx) == 0 {
			storage.PutSel(leftIdx)
			storage.PutSel(rightIdx)
			continue
		}
		lcols := j.buildData.Gather(leftIdx)
		rcols := base.Gather(rightIdx)
		storage.PutSel(leftIdx)
		storage.PutSel(rightIdx)
		return storage.NewBatch(append(append([]storage.Column{}, lcols.Cols...), rcols.Cols...)...), nil
	}
}

// CrossJoin produces the Cartesian product of its inputs; the planner
// emits it only under rule R2 (joining disconnected metadata
// components), so inputs are small.
type CrossJoin struct {
	left, right Operator
	names       []string
	kinds       []storage.Kind

	built    bool
	leftData *storage.Batch
	rightRel *storage.Relation
	li       int
	ri       int
}

// NewCrossJoin builds the product operator.
func NewCrossJoin(left, right Operator) *CrossJoin {
	return &CrossJoin{
		left: left, right: right,
		names: append(append([]string{}, left.Names()...), right.Names()...),
		kinds: append(append([]storage.Kind{}, left.Kinds()...), right.Kinds()...),
	}
}

// Names implements Operator.
func (c *CrossJoin) Names() []string { return c.names }

// Kinds implements Operator.
func (c *CrossJoin) Kinds() []storage.Kind { return c.kinds }

// Next implements Operator.
func (c *CrossJoin) Next() (*storage.Batch, error) {
	if !c.built {
		lrel, err := Run(c.left)
		if err != nil {
			return nil, err
		}
		c.leftData = lrel.Flatten()
		c.rightRel, err = Run(c.right)
		if err != nil {
			return nil, err
		}
		c.built = true
	}
	for c.li < c.leftData.Len() {
		if c.ri >= len(c.rightRel.Batches()) {
			c.li++
			c.ri = 0
			continue
		}
		rb := c.rightRel.Batches()[c.ri]
		c.ri++
		n := rb.Len()
		leftIdx := make([]int32, n)
		for i := range leftIdx {
			leftIdx[i] = int32(c.li)
		}
		lcols := c.leftData.Gather(leftIdx)
		return storage.NewBatch(append(append([]storage.Column{}, lcols.Cols...), rb.Cols...)...), nil
	}
	return nil, nil
}
