package physical

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sommelier/internal/expr"
	"sommelier/internal/index"
	"sommelier/internal/storage"
)

// AggFuncID mirrors plan.AggFunc without importing the plan package
// (physical sits below plan in the dependency order).
type AggFuncID uint8

// Aggregate function identifiers.
const (
	AggCount AggFuncID = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	AggStddev
)

// AggColumn describes one aggregate to compute.
type AggColumn struct {
	Func AggFuncID
	Arg  expr.Expr // nil only for COUNT(*)
	Name string
}

// aggState accumulates one aggregate for one group using a numerically
// stable (Welford) recurrence for the variance.
type aggState struct {
	n                int64
	sum              float64
	mean, m2         float64
	min, max         float64
	intArg           bool
	iSum, iMin, iMax int64
	seen             bool
}

func (s *aggState) addF(v float64) {
	s.n++
	s.sum += v
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
	if !s.seen || v < s.min {
		s.min = v
	}
	if !s.seen || v > s.max {
		s.max = v
	}
	s.seen = true
}

func (s *aggState) addI(v int64) {
	s.intArg = true
	s.iSum += v
	if !s.seen || v < s.iMin {
		s.iMin = v
	}
	if !s.seen || v > s.iMax {
		s.iMax = v
	}
	s.addF(float64(v))
}

// merge folds another partial state into s: the parallel-aggregation
// combine step. The mean/variance combination is the standard pairwise
// Welford merge (Chan et al.), so merged results match the serial
// recurrence up to floating-point rounding.
func (s *aggState) merge(o aggState) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	n := s.n + o.n
	delta := o.mean - s.mean
	s.mean += delta * float64(o.n) / float64(n)
	s.m2 += o.m2 + delta*delta*float64(s.n)*float64(o.n)/float64(n)
	s.n = n
	s.sum += o.sum
	s.iSum += o.iSum
	if o.seen {
		if !s.seen || o.min < s.min {
			s.min = o.min
		}
		if !s.seen || o.max > s.max {
			s.max = o.max
		}
		if !s.seen || o.iMin < s.iMin {
			s.iMin = o.iMin
		}
		if !s.seen || o.iMax > s.iMax {
			s.iMax = o.iMax
		}
		s.seen = true
	}
	s.intArg = s.intArg || o.intArg
}

// HashAggregate groups its input and computes aggregates per group; a
// single global group when groupCols is empty.
//
// Grouping by one int64/time column — the dominant shape in the
// workload (GROUP BY file_id, GROUP BY window_start) — runs a
// specialized path keyed by the raw int64 value: no composite index.Key
// construction, no per-row interface dispatch for the group
// representative, and probing composes with a deferred selection on the
// input batch. Composite groupings keep the general index.Key path.
//
// Under a degree of parallelism (SetParallel), and when the input can
// Split, the input's morsel ranges are claimed by a worker pool, each
// range folded into its own thread-local partial-aggregate table; the
// partials are merged in range order (so results are deterministic for
// a given DOP) and rendered once. Groups are emitted in ascending key
// order either way, exactly as the serial path.
type HashAggregate struct {
	in        Operator
	groupCols []int
	aggs      []AggColumn
	names     []string
	kinds     []storage.Kind
	inNames   []string
	inKinds   []storage.Kind
	argKinds  []storage.Kind
	// fastKey marks the specialized single-int64/time grouping;
	// differential tests clear it to force the composite path.
	fastKey bool
	// exprArgs marks that some aggregate argument is a computed
	// expression (not a bare column reference): those evaluate
	// positionally over a whole batch, so a sparsely selected input is
	// materialized first instead of folded through its selection.
	exprArgs bool
	// sharedArgs are the bound aggregate arguments every accumulator may
	// share: set only when all arguments are bare column references
	// (stateless, safe to evaluate concurrently without cloning).
	sharedArgs []expr.Expr
	// dop is the parallelism granted by the executor.
	dop int
	// check cancels the accumulation drain — a pipeline breaker — when
	// the query's deadline expires mid-fold.
	check func() error

	done bool
}

// SetParallel implements ParallelHinter: it grants the aggregation up
// to dop workers. It must be called before the first Next.
func (h *HashAggregate) SetParallel(dop int) { h.dop = dop }

// SetCheck implements CheckHinter for the accumulation drain.
func (h *HashAggregate) SetCheck(check func() error) { h.check = check }

// NewHashAggregate binds the aggregate arguments against the input.
func NewHashAggregate(in Operator, groupCols []int, aggs []AggColumn) (*HashAggregate, error) {
	h := &HashAggregate{in: in, groupCols: groupCols}
	inNames, inKinds := in.Names(), in.Kinds()
	h.inNames, h.inKinds = inNames, inKinds
	for _, gc := range groupCols {
		if gc < 0 || gc >= len(inNames) {
			return nil, fmt.Errorf("physical: group column %d out of range", gc)
		}
		h.names = append(h.names, inNames[gc])
		h.kinds = append(h.kinds, inKinds[gc])
	}
	for _, a := range aggs {
		var argKind storage.Kind
		if a.Arg != nil {
			a.Arg = expr.Clone(a.Arg)
			k, err := a.Arg.Bind(inNames, inKinds)
			if err != nil {
				return nil, err
			}
			if k == storage.KindString || k == storage.KindBool {
				return nil, fmt.Errorf("physical: aggregate %s over %v", a.Name, k)
			}
			argKind = k
		} else if a.Func != AggCount {
			return nil, fmt.Errorf("physical: aggregate %s requires an argument", a.Name)
		}
		h.aggs = append(h.aggs, a)
		h.argKinds = append(h.argKinds, argKind)
		h.names = append(h.names, a.Name)
		h.kinds = append(h.kinds, aggKind(a.Func, argKind))
		if a.Arg != nil {
			if _, isCol := a.Arg.(*expr.ColRef); !isCol {
				h.exprArgs = true
			}
		}
	}
	h.fastKey = len(groupCols) == 1 && isIntKeyKind(inKinds[groupCols[0]])
	if !h.exprArgs {
		// Every argument is a bare (stateless) column reference: all
		// accumulators can share the bound expressions without cloning.
		h.sharedArgs = make([]expr.Expr, len(h.aggs))
		for i, a := range h.aggs {
			h.sharedArgs[i] = a.Arg
		}
	}
	return h, nil
}

func aggKind(f AggFuncID, arg storage.Kind) storage.Kind {
	switch f {
	case AggCount:
		return storage.KindInt64
	case AggAvg, AggStddev:
		return storage.KindFloat64
	case AggSum:
		if arg == storage.KindInt64 {
			return storage.KindInt64
		}
		return storage.KindFloat64
	default:
		return arg
	}
}

// Names implements Operator.
func (h *HashAggregate) Names() []string { return h.names }

// Kinds implements Operator.
func (h *HashAggregate) Kinds() []storage.Kind { return h.kinds }

// group accumulates one output row of a HashAggregate.
type group struct {
	repr   []any // group column values (generic path only)
	states []aggState
}

// updateStates folds row r of the evaluated argument columns into a
// group's aggregate states.
func updateStates(states []aggState, argCols []storage.Column, r int) {
	for i := range states {
		st := &states[i]
		if argCols[i] == nil {
			st.n++ // COUNT(*)
			continue
		}
		switch c := argCols[i].(type) {
		case *storage.Float64Column:
			st.addF(c.Value(r))
		case *storage.Int64Column:
			st.addI(c.Value(r))
		case *storage.TimeColumn:
			st.addI(c.Value(r))
		}
	}
}

// update folds row r of the evaluated argument columns into the group.
func (g *group) update(argCols []storage.Column, r int) {
	updateStates(g.states, argCols, r)
}

// intGroups is the dense fast-key group table: a key→index map over
// flat, insertion-ordered key and state arrays (nagg states per group)
// instead of one heap-allocated *group per key. Tables are pooled and
// reset — never reallocated — between the ranges of a partitioned
// aggregation and between queries, which is what erases the per-range
// accumulator churn of deterministic partial aggregation.
type intGroups struct {
	idx    map[int64]int32
	keys   []int64
	states []aggState
}

var intGroupsPool sync.Pool

func getIntGroups() *intGroups {
	g, _ := intGroupsPool.Get().(*intGroups)
	if g == nil {
		return &intGroups{idx: make(map[int64]int32, 64)}
	}
	return g
}

// putIntGroups resets the table (keeping its backing capacity) and
// returns it to the pool.
func putIntGroups(g *intGroups) {
	if g == nil {
		return
	}
	clear(g.idx)
	g.keys = g.keys[:0]
	g.states = g.states[:0]
	intGroupsPool.Put(g)
}

// slot returns the dense state slice of key k, creating a zeroed group
// on first sight (so a reset table behaves exactly like a fresh one).
func (g *intGroups) slot(k int64, nagg int) []aggState {
	gi, ok := g.idx[k]
	if !ok {
		gi = int32(len(g.keys))
		g.idx[k] = gi
		g.keys = append(g.keys, k)
		for i := 0; i < nagg; i++ {
			g.states = append(g.states, aggState{})
		}
	}
	return g.states[int(gi)*nagg : (int(gi)+1)*nagg]
}

// aggSplitMax asks the input for as many range parts as its grain
// allows. The part layout is therefore a function of the morsel list
// alone — never of the degree of parallelism — which is what makes the
// merged floating-point results identical at every DOP (see Next).
const aggSplitMax = 1 << 20

// Next implements Operator.
//
// Whenever the input can split, accumulation is range-partitioned even
// in serial execution: each range folds into its own partial
// accumulator and the partials merge in range order. Because the ranges
// are fixed by the input's morsel list and the merge order is fixed,
// the floating-point results are bitwise identical at every degree of
// parallelism — a query answered serially under a 16-client burst
// matches the same query answered with every core while the server was
// idle. The whole-input fold remains only for non-splittable inputs;
// traced execution (EXPLAIN ANALYZE) is one such input — every operator
// is wrapped in a row counter — so its float aggregates may differ from
// untraced runs in final rounding.
//
// The guarantee is bought with per-range overhead even at DOP=1 (one
// accumulator, cloned argument expressions and a merge per ~4-batch
// range instead of one whole-input fold): a few percent on the serial
// grouped-aggregate microbenchmark. Gating partitioning on DOP>1 would
// reclaim it at the price of answers that drift across DOPs and load.
func (h *HashAggregate) Next() (*storage.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	if sp, ok := h.in.(Splitter); ok {
		parts, err := sp.Split(aggSplitMax)
		if err != nil {
			return nil, err
		}
		if parts != nil {
			return h.foldParts(parts)
		}
	}
	acc, err := h.newAcc()
	if err != nil {
		return nil, err
	}
	if err := acc.drain(h.in, h.check); err != nil {
		acc.release()
		return nil, err
	}
	out := acc.render()
	acc.release()
	return out, nil
}

// foldParts accumulates each range part into its own partial and merges
// the partials strictly in range order, using up to the granted DOP
// workers. Partials are folded into the final accumulator as soon as
// the in-order merge frontier reaches them and freed immediately, so
// peak memory holds the final table plus at most one out-of-order
// window of partials (≈ DOP), not one partial per part — the merge
// SEQUENCE is identical to a fully deferred merge, preserving the
// bitwise determinism guarantee.
func (h *HashAggregate) foldParts(parts []Operator) (*storage.Batch, error) {
	final, err := h.newAcc()
	if err != nil {
		return nil, err
	}
	var (
		mu     sync.Mutex
		done   = make([]*aggAcc, len(parts))
		merged int
	)
	err = runParts(len(parts), h.dop, h.check, func(i int) error {
		acc, err := h.newAcc()
		if err == nil {
			err = acc.drain(parts[i], h.check)
		}
		if err != nil {
			if acc != nil {
				acc.release()
			}
			return err
		}
		mu.Lock()
		done[i] = acc
		for merged < len(done) && done[merged] != nil {
			final.merge(done[merged])
			done[merged].release()
			done[merged] = nil
			merged++
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		// Partials that finished but were never merged still hold pooled
		// scratch; runParts has returned, so no goroutine touches done.
		for _, acc := range done {
			if acc != nil {
				acc.release()
			}
		}
		final.release()
		return nil, err
	}
	out := final.render()
	final.release()
	return out, nil
}

// aggAcc accumulates (partial) groups for one input partition. An
// accumulator with computed arguments owns clones of the argument
// expressions — expression memoization is per-goroutine state — while
// bare column references are shared unbound of state. The fast-key path
// accumulates into a pooled dense group table; the composite path keeps
// the general per-group map.
type aggAcc struct {
	h       *HashAggregate
	args    []expr.Expr
	argCols []storage.Column // per-batch scratch, reused

	groups map[index.Key]*group // composite path
	order  []index.Key
	ig     *intGroups // fastKey path
}

func (h *HashAggregate) newAcc() (*aggAcc, error) {
	a := &aggAcc{h: h}
	if h.sharedArgs != nil {
		a.args = h.sharedArgs
	} else {
		a.args = make([]expr.Expr, len(h.aggs))
		for i, ag := range h.aggs {
			if ag.Arg == nil {
				continue
			}
			e := expr.Clone(ag.Arg)
			if _, err := e.Bind(h.inNames, h.inKinds); err != nil {
				return nil, err
			}
			a.args[i] = e
		}
	}
	a.argCols = make([]storage.Column, len(h.aggs))
	if h.fastKey {
		a.ig = getIntGroups()
	} else {
		a.groups = make(map[index.Key]*group)
	}
	return a, nil
}

// release returns the accumulator's pooled group table. The accumulator
// must not be used afterwards.
func (a *aggAcc) release() {
	if a.ig != nil {
		putIntGroups(a.ig)
		a.ig = nil
	}
}

// drain folds every batch of in into the accumulator.
func (a *aggAcc) drain(in Operator, check func() error) error {
	for {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		b, err := in.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := a.fold(b); err != nil {
			return err
		}
	}
}

// evalArgs evaluates the aggregate arguments once per batch, into the
// accumulator's reusable scratch slice.
func (a *aggAcc) evalArgs(b *storage.Batch) []storage.Column {
	for i, e := range a.args {
		if e != nil {
			a.argCols[i] = e.Eval(b)
		} else {
			a.argCols[i] = nil
		}
	}
	return a.argCols
}

// fold accumulates one batch, recycling a pooled input batch once its
// rows are folded (the accumulator is the batch's single consumer).
func (a *aggAcc) fold(b *storage.Batch) error {
	h := a.h
	if !h.fastKey {
		b = b.Materialize()
		argCols := a.evalArgs(b)
		n := b.Len()
		for r := 0; r < n; r++ {
			k, err := index.KeyAt(b, h.groupCols, r)
			if err != nil {
				storage.PutBatch(b)
				return err
			}
			g, ok := a.groups[k]
			if !ok {
				g = &group{states: make([]aggState, len(h.aggs))}
				for _, gc := range h.groupCols {
					g.repr = append(g.repr, storage.ValueAt(b.Cols[gc], r))
				}
				a.groups[k] = g
				a.order = append(a.order, k)
			}
			g.update(argCols, r)
		}
		storage.PutBatch(b)
		return nil
	}
	// The specialized single-int64/time-key accumulation: the group key
	// is read straight from the column's backing slice and hashed as a
	// plain int64.
	if h.exprArgs {
		// Computed arguments evaluate over every base row; with a
		// sparse selection it is cheaper to gather the survivors
		// first, as the composite path does.
		b = b.Materialize()
	}
	base, sel := b.DetachSel()
	argCols := a.evalArgs(base)
	keys := storage.Int64s(base.Cols[h.groupCols[0]])
	nagg := len(h.aggs)
	if sel != nil {
		for _, r := range sel {
			updateStates(a.ig.slot(keys[r], nagg), argCols, int(r))
		}
		storage.PutSel(sel)
	} else {
		for r := range keys {
			updateStates(a.ig.slot(keys[r], nagg), argCols, r)
		}
	}
	storage.PutBatch(base)
	return nil
}

// merge folds another accumulator's partial groups into a. New groups
// are adopted by value; shared groups merge state-wise. Callers merge
// partials in range order, so the result is deterministic.
func (a *aggAcc) merge(o *aggAcc) {
	if a.h.fastKey {
		nagg := len(a.h.aggs)
		for oi, k := range o.ig.keys {
			os := o.ig.states[oi*nagg : (oi+1)*nagg]
			if gi, ok := a.ig.idx[k]; ok {
				as := a.ig.states[int(gi)*nagg : (int(gi)+1)*nagg]
				for i := range as {
					as[i].merge(os[i])
				}
			} else {
				a.ig.idx[k] = int32(len(a.ig.keys))
				a.ig.keys = append(a.ig.keys, k)
				a.ig.states = append(a.ig.states, os...)
			}
		}
		return
	}
	for _, k := range o.order {
		og := o.groups[k]
		if g, ok := a.groups[k]; ok {
			for i := range g.states {
				g.states[i].merge(og.states[i])
			}
		} else {
			a.groups[k] = og
			a.order = append(a.order, k)
		}
	}
}

// render emits the accumulated groups as one batch, in ascending key
// order on both paths (the fast key occupies composite slot I0, so the
// orders coincide).
func (a *aggAcc) render() *storage.Batch {
	h := a.h
	if h.fastKey {
		nagg := len(h.aggs)
		n := len(a.ig.keys)
		// The permutation shares the selection-vector pool only when it
		// is batch-sized; a huge group count must not pin an oversized
		// array under the pool's uniformly small vectors.
		var perm []int32
		fromPool := n <= storage.BatchSize
		if fromPool {
			perm = storage.GetSel(n)[:n]
		} else {
			perm = make([]int32, n)
		}
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.Slice(perm, func(i, j int) bool { return a.ig.keys[perm[i]] < a.ig.keys[perm[j]] })
		builders := h.newBuilders(n)
		for _, gi := range perm {
			builders[0].AppendAny(a.ig.keys[gi])
			h.appendAggs(builders, a.ig.states[int(gi)*nagg:(int(gi)+1)*nagg])
		}
		if fromPool {
			storage.PutSel(perm)
		}
		return finishBuilders(builders)
	}
	if len(h.groupCols) == 0 && len(a.groups) == 0 {
		// Global aggregate over empty input: one all-default row.
		a.groups[index.Key{}] = &group{states: make([]aggState, len(h.aggs))}
		a.order = append(a.order, index.Key{})
	}
	sort.Slice(a.order, func(i, j int) bool { return keyLess(a.order[i], a.order[j]) })
	builders := h.newBuilders(len(a.groups))
	for _, k := range a.order {
		g := a.groups[k]
		for i := range h.groupCols {
			builders[i].AppendAny(g.repr[i])
		}
		h.appendAggs(builders, g.states)
	}
	return finishBuilders(builders)
}

func (h *HashAggregate) newBuilders(nGroups int) []storage.Builder {
	builders := make([]storage.Builder, len(h.names))
	for i, k := range h.kinds {
		builders[i] = storage.NewBuilder(k, nGroups)
	}
	return builders
}

func finishBuilders(builders []storage.Builder) *storage.Batch {
	cols := make([]storage.Column, len(builders))
	for i, b := range builders {
		cols[i] = b.Finish()
	}
	return storage.NewBatch(cols...)
}

// appendAggs renders one group's aggregate results into the builders.
func (h *HashAggregate) appendAggs(builders []storage.Builder, states []aggState) {
	for i, a := range h.aggs {
		st := states[i]
		bi := len(h.groupCols) + i
		switch a.Func {
		case AggCount:
			builders[bi].AppendAny(st.n)
		case AggSum:
			if h.kinds[bi] == storage.KindInt64 {
				builders[bi].AppendAny(st.iSum)
			} else {
				builders[bi].AppendAny(st.sum)
			}
		case AggAvg:
			if st.n == 0 {
				builders[bi].AppendAny(math.NaN())
			} else {
				builders[bi].AppendAny(st.mean)
			}
		case AggStddev:
			if st.n < 2 {
				builders[bi].AppendAny(0.0)
			} else {
				builders[bi].AppendAny(math.Sqrt(st.m2 / float64(st.n-1)))
			}
		case AggMin, AggMax:
			v := st.min
			iv := st.iMin
			if a.Func == AggMax {
				v, iv = st.max, st.iMax
			}
			switch h.kinds[bi] {
			case storage.KindInt64, storage.KindTime:
				builders[bi].AppendAny(iv)
			default:
				builders[bi].AppendAny(v)
			}
		}
	}
}

func keyLess(a, b index.Key) bool {
	if a.I0 != b.I0 {
		return a.I0 < b.I0
	}
	if a.I1 != b.I1 {
		return a.I1 < b.I1
	}
	if a.I2 != b.I2 {
		return a.I2 < b.I2
	}
	if a.S0 != b.S0 {
		return a.S0 < b.S0
	}
	return a.S1 < b.S1
}
