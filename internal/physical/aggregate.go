package physical

import (
	"fmt"
	"math"
	"sort"

	"sommelier/internal/expr"
	"sommelier/internal/index"
	"sommelier/internal/storage"
)

// AggFuncID mirrors plan.AggFunc without importing the plan package
// (physical sits below plan in the dependency order).
type AggFuncID uint8

// Aggregate function identifiers.
const (
	AggCount AggFuncID = iota
	AggSum
	AggAvg
	AggMin
	AggMax
	AggStddev
)

// AggColumn describes one aggregate to compute.
type AggColumn struct {
	Func AggFuncID
	Arg  expr.Expr // nil only for COUNT(*)
	Name string
}

// aggState accumulates one aggregate for one group using a numerically
// stable (Welford) recurrence for the variance.
type aggState struct {
	n                int64
	sum              float64
	mean, m2         float64
	min, max         float64
	intArg           bool
	iSum, iMin, iMax int64
	seen             bool
}

func (s *aggState) addF(v float64) {
	s.n++
	s.sum += v
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
	if !s.seen || v < s.min {
		s.min = v
	}
	if !s.seen || v > s.max {
		s.max = v
	}
	s.seen = true
}

func (s *aggState) addI(v int64) {
	s.intArg = true
	s.iSum += v
	if !s.seen || v < s.iMin {
		s.iMin = v
	}
	if !s.seen || v > s.iMax {
		s.iMax = v
	}
	s.addF(float64(v))
}

// HashAggregate groups its input and computes aggregates per group; a
// single global group when groupCols is empty.
//
// Grouping by one int64/time column — the dominant shape in the
// workload (GROUP BY file_id, GROUP BY window_start) — runs a
// specialized path keyed by the raw int64 value: no composite index.Key
// construction, no per-row interface dispatch for the group
// representative, and probing composes with a deferred selection on the
// input batch. Composite groupings keep the general index.Key path.
type HashAggregate struct {
	in        Operator
	groupCols []int
	aggs      []AggColumn
	names     []string
	kinds     []storage.Kind
	argKinds  []storage.Kind
	// fastKey marks the specialized single-int64/time grouping;
	// differential tests clear it to force the composite path.
	fastKey bool
	// exprArgs marks that some aggregate argument is a computed
	// expression (not a bare column reference): those evaluate
	// positionally over a whole batch, so a sparsely selected input is
	// materialized first instead of folded through its selection.
	exprArgs bool

	done bool
}

// NewHashAggregate binds the aggregate arguments against the input.
func NewHashAggregate(in Operator, groupCols []int, aggs []AggColumn) (*HashAggregate, error) {
	h := &HashAggregate{in: in, groupCols: groupCols}
	inNames, inKinds := in.Names(), in.Kinds()
	for _, gc := range groupCols {
		if gc < 0 || gc >= len(inNames) {
			return nil, fmt.Errorf("physical: group column %d out of range", gc)
		}
		h.names = append(h.names, inNames[gc])
		h.kinds = append(h.kinds, inKinds[gc])
	}
	for _, a := range aggs {
		var argKind storage.Kind
		if a.Arg != nil {
			a.Arg = expr.Clone(a.Arg)
			k, err := a.Arg.Bind(inNames, inKinds)
			if err != nil {
				return nil, err
			}
			if k == storage.KindString || k == storage.KindBool {
				return nil, fmt.Errorf("physical: aggregate %s over %v", a.Name, k)
			}
			argKind = k
		} else if a.Func != AggCount {
			return nil, fmt.Errorf("physical: aggregate %s requires an argument", a.Name)
		}
		h.aggs = append(h.aggs, a)
		h.argKinds = append(h.argKinds, argKind)
		h.names = append(h.names, a.Name)
		h.kinds = append(h.kinds, aggKind(a.Func, argKind))
		if a.Arg != nil {
			if _, isCol := a.Arg.(*expr.ColRef); !isCol {
				h.exprArgs = true
			}
		}
	}
	h.fastKey = len(groupCols) == 1 && isIntKeyKind(inKinds[groupCols[0]])
	return h, nil
}

func aggKind(f AggFuncID, arg storage.Kind) storage.Kind {
	switch f {
	case AggCount:
		return storage.KindInt64
	case AggAvg, AggStddev:
		return storage.KindFloat64
	case AggSum:
		if arg == storage.KindInt64 {
			return storage.KindInt64
		}
		return storage.KindFloat64
	default:
		return arg
	}
}

// Names implements Operator.
func (h *HashAggregate) Names() []string { return h.names }

// Kinds implements Operator.
func (h *HashAggregate) Kinds() []storage.Kind { return h.kinds }

// group accumulates one output row of a HashAggregate.
type group struct {
	repr   []any // group column values (generic path only)
	states []aggState
}

// update folds row r of the evaluated argument columns into the group.
func (g *group) update(argCols []storage.Column, r int) {
	for i := range g.states {
		st := &g.states[i]
		if argCols[i] == nil {
			st.n++ // COUNT(*)
			continue
		}
		switch c := argCols[i].(type) {
		case *storage.Float64Column:
			st.addF(c.Value(r))
		case *storage.Int64Column:
			st.addI(c.Value(r))
		case *storage.TimeColumn:
			st.addI(c.Value(r))
		}
	}
}

// Next implements Operator.
func (h *HashAggregate) Next() (*storage.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	if h.fastKey {
		return h.nextIntKey()
	}

	groups := make(map[index.Key]*group)
	var order []index.Key

	for {
		b, err := h.in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		b = b.Materialize()
		// Evaluate aggregate arguments once per batch.
		argCols := make([]storage.Column, len(h.aggs))
		for i, a := range h.aggs {
			if a.Arg != nil {
				argCols[i] = a.Arg.Eval(b)
			}
		}
		n := b.Len()
		for r := 0; r < n; r++ {
			k, err := index.KeyAt(b, h.groupCols, r)
			if err != nil {
				return nil, err
			}
			g, ok := groups[k]
			if !ok {
				g = &group{states: make([]aggState, len(h.aggs))}
				for _, gc := range h.groupCols {
					g.repr = append(g.repr, storage.ValueAt(b.Cols[gc], r))
				}
				groups[k] = g
				order = append(order, k)
			}
			g.update(argCols, r)
		}
	}

	if len(h.groupCols) == 0 && len(groups) == 0 {
		// Global aggregate over empty input: one all-default row.
		groups[index.Key{}] = &group{states: make([]aggState, len(h.aggs))}
		order = append(order, index.Key{})
	}

	// Deterministic group order for stable results.
	sort.Slice(order, func(i, j int) bool { return keyLess(order[i], order[j]) })

	builders := h.newBuilders(len(groups))
	for _, k := range order {
		g := groups[k]
		for i := range h.groupCols {
			builders[i].AppendAny(g.repr[i])
		}
		h.appendAggs(builders, g)
	}
	return finishBuilders(builders), nil
}

// nextIntKey is the specialized single-int64/time-key accumulation: the
// group key is read straight from the column's backing slice and hashed
// as a plain int64.
func (h *HashAggregate) nextIntKey() (*storage.Batch, error) {
	gc := h.groupCols[0]
	groups := make(map[int64]*group)
	var order []int64

	for {
		b, err := h.in.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if h.exprArgs {
			// Computed arguments evaluate over every base row; with a
			// sparse selection it is cheaper to gather the survivors
			// first, as the composite path does.
			b = b.Materialize()
		}
		base, sel := b.DetachSel()
		argCols := make([]storage.Column, len(h.aggs))
		for i, a := range h.aggs {
			if a.Arg != nil {
				argCols[i] = a.Arg.Eval(base)
			}
		}
		keys := storage.Int64s(base.Cols[gc])
		fold := func(r int) {
			k := keys[r]
			g, ok := groups[k]
			if !ok {
				g = &group{states: make([]aggState, len(h.aggs))}
				groups[k] = g
				order = append(order, k)
			}
			g.update(argCols, r)
		}
		if sel != nil {
			for _, r := range sel {
				fold(int(r))
			}
			storage.PutSel(sel)
		} else {
			for r := range keys {
				fold(r)
			}
		}
	}

	// Deterministic group order: ascending key, matching the composite
	// path's keyLess ordering (the key occupies slot I0).
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	builders := h.newBuilders(len(groups))
	for _, k := range order {
		builders[0].AppendAny(k)
		h.appendAggs(builders, groups[k])
	}
	return finishBuilders(builders), nil
}

func (h *HashAggregate) newBuilders(nGroups int) []storage.Builder {
	builders := make([]storage.Builder, len(h.names))
	for i, k := range h.kinds {
		builders[i] = storage.NewBuilder(k, nGroups)
	}
	return builders
}

func finishBuilders(builders []storage.Builder) *storage.Batch {
	cols := make([]storage.Column, len(builders))
	for i, b := range builders {
		cols[i] = b.Finish()
	}
	return storage.NewBatch(cols...)
}

// appendAggs renders one group's aggregate results into the builders.
func (h *HashAggregate) appendAggs(builders []storage.Builder, g *group) {
	for i, a := range h.aggs {
		st := g.states[i]
		bi := len(h.groupCols) + i
		switch a.Func {
		case AggCount:
			builders[bi].AppendAny(st.n)
		case AggSum:
			if h.kinds[bi] == storage.KindInt64 {
				builders[bi].AppendAny(st.iSum)
			} else {
				builders[bi].AppendAny(st.sum)
			}
		case AggAvg:
			if st.n == 0 {
				builders[bi].AppendAny(math.NaN())
			} else {
				builders[bi].AppendAny(st.mean)
			}
		case AggStddev:
			if st.n < 2 {
				builders[bi].AppendAny(0.0)
			} else {
				builders[bi].AppendAny(math.Sqrt(st.m2 / float64(st.n-1)))
			}
		case AggMin, AggMax:
			v := st.min
			iv := st.iMin
			if a.Func == AggMax {
				v, iv = st.max, st.iMax
			}
			switch h.kinds[bi] {
			case storage.KindInt64, storage.KindTime:
				builders[bi].AppendAny(iv)
			default:
				builders[bi].AppendAny(v)
			}
		}
	}
}

func keyLess(a, b index.Key) bool {
	if a.I0 != b.I0 {
		return a.I0 < b.I0
	}
	if a.I1 != b.I1 {
		return a.I1 < b.I1
	}
	if a.I2 != b.I2 {
		return a.I2 < b.I2
	}
	if a.S0 != b.S0 {
		return a.S0 < b.S0
	}
	return a.S1 < b.S1
}
