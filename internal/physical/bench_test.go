package physical

import (
	"math/rand"
	"runtime"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

func benchRel(rows int) (*storage.Relation, []string, []storage.Kind) {
	rng := rand.New(rand.NewSource(3))
	rel := storage.NewRelation()
	for lo := 0; lo < rows; lo += storage.BatchSize {
		n := min(storage.BatchSize, rows-lo)
		ids := make([]int64, n)
		vals := make([]float64, n)
		for i := range ids {
			ids[i] = int64(rng.Intn(64))
			vals[i] = rng.NormFloat64() * 1000
		}
		rel.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewFloat64Column(vals)))
	}
	return rel, []string{"D.file_id", "D.val"}, []storage.Kind{storage.KindInt64, storage.KindFloat64}
}

func BenchmarkFilterScan(b *testing.B) {
	rel, names, kinds := benchRel(1 << 16)
	pred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0))
	b.SetBytes(int64(rel.Rows()) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewRelScan(rel, names, kinds, pred)
		if err != nil {
			b.Fatal(err)
		}
		out, err := RunPooled(s)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// BenchmarkFilterChain stacks a residual Filter above a filtering scan:
// the selection-composition hot path (no intermediate gather).
func BenchmarkFilterChain(b *testing.B) {
	rel, names, kinds := benchRel(1 << 16)
	scanPred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(-500))
	residual := expr.NewAnd(
		expr.NewCmp(expr.LT, expr.Col("D.val"), expr.Float(500)),
		expr.NewCmp(expr.GE, expr.Col("D.file_id"), expr.Int(8)))
	b.SetBytes(int64(rel.Rows()) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewRelScan(rel, names, kinds, scanPred)
		if err != nil {
			b.Fatal(err)
		}
		f, err := NewFilter(s, residual)
		if err != nil {
			b.Fatal(err)
		}
		out, err := RunPooled(f)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// BenchmarkZoneSkipScan scans a relation whose batches carry disjoint
// file_id ranges with a predicate selecting one batch: the zone-map
// pruning path.
func BenchmarkZoneSkipScan(b *testing.B) {
	rel := storage.NewRelation()
	nBatches := 16
	for bi := 0; bi < nBatches; bi++ {
		ids := make([]int64, storage.BatchSize)
		vals := make([]float64, storage.BatchSize)
		for i := range ids {
			ids[i] = int64(bi*1000 + i%1000)
		}
		rel.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewFloat64Column(vals)))
	}
	names := []string{"D.file_id", "D.val"}
	kinds := []storage.Kind{storage.KindInt64, storage.KindFloat64}
	pred := expr.NewAnd(
		expr.NewCmp(expr.GE, expr.Col("D.file_id"), expr.Int(5000)),
		expr.NewCmp(expr.LT, expr.Col("D.file_id"), expr.Int(6000)))
	rel.Zone(0, 0) // warm the zone cache outside the loop
	b.SetBytes(int64(rel.Rows()) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewRelScan(rel, names, kinds, pred)
		if err != nil {
			b.Fatal(err)
		}
		out, err := RunPooled(s)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkHashJoinProbe(b *testing.B) {
	dimRel := storage.NewRelation()
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i)
	}
	dimRel.Append(storage.NewBatch(storage.NewInt64Column(ids)))
	factRel, fnames, fkinds := benchRel(1 << 16)
	b.SetBytes(int64(factRel.Rows()) * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, _ := NewRelScan(dimRel, []string{"F.file_id"}, []storage.Kind{storage.KindInt64}, nil)
		fs, _ := NewRelScan(factRel, fnames, fkinds, nil)
		j, err := NewHashJoin(ds, fs, []int{0}, []int{0})
		if err != nil {
			b.Fatal(err)
		}
		out, err := RunPooled(j)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkGroupedAggregate(b *testing.B) {
	rel, names, kinds := benchRel(1 << 16)
	b.SetBytes(int64(rel.Rows()) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _ := NewRelScan(rel, names, kinds, nil)
		agg, err := NewHashAggregate(s, []int{0}, []AggColumn{
			{Func: AggAvg, Arg: expr.Col("D.val"), Name: "avg"},
			{Func: AggStddev, Arg: expr.Col("D.val"), Name: "sd"},
		})
		if err != nil {
			b.Fatal(err)
		}
		out, err := RunPooled(agg)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// BenchmarkHashJoinProbeParallel is the probe benchmark through the
// morsel-parallel drain at DOP = GOMAXPROCS (identical to the serial
// path at GOMAXPROCS=1).
func BenchmarkHashJoinProbeParallel(b *testing.B) {
	dimRel := storage.NewRelation()
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i)
	}
	dimRel.Append(storage.NewBatch(storage.NewInt64Column(ids)))
	factRel, fnames, fkinds := benchRel(1 << 16)
	dop := runtime.GOMAXPROCS(0)
	b.SetBytes(int64(factRel.Rows()) * 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, _ := NewRelScan(dimRel, []string{"F.file_id"}, []storage.Kind{storage.KindInt64}, nil)
		fs, _ := NewRelScan(factRel, fnames, fkinds, nil)
		j, err := NewHashJoin(ds, fs, []int{0}, []int{0})
		if err != nil {
			b.Fatal(err)
		}
		j.SetParallel(dop)
		out, err := ParallelDrainPooled(j, dop, nil)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

// BenchmarkGroupedAggregateParallel folds thread-local partial
// aggregates at DOP = GOMAXPROCS and merges them in range order.
func BenchmarkGroupedAggregateParallel(b *testing.B) {
	rel, names, kinds := benchRel(1 << 16)
	dop := runtime.GOMAXPROCS(0)
	b.SetBytes(int64(rel.Rows()) * 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, _ := NewRelScan(rel, names, kinds, nil)
		agg, err := NewHashAggregate(s, []int{0}, []AggColumn{
			{Func: AggAvg, Arg: expr.Col("D.val"), Name: "avg"},
			{Func: AggStddev, Arg: expr.Col("D.val"), Name: "sd"},
		})
		if err != nil {
			b.Fatal(err)
		}
		agg.SetParallel(dop)
		out, err := RunPooled(agg)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}
