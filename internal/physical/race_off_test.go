//go:build !race

package physical

// raceEnabled mirrors the -race build tag: the alloc-budget tests skip
// under the race detector, whose instrumentation changes allocation
// counts.
const raceEnabled = false
