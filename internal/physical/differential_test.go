package physical

// Differential tests: the selection-vector execution paths (fused
// filter kernels, zone-map batch skipping, specialized int64 join and
// group-by) must produce row-for-row identical results to the naive
// materializing paths on randomized inputs, including empty inputs,
// all-pass and all-fail predicates, and duplicate keys.

import (
	"math/rand"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

// diffRel builds a randomized relation of several batches over
// (id int64, ts time, val float64, station string).
func diffRel(rng *rand.Rand, batches, rowsPer int) (*storage.Relation, []string, []storage.Kind) {
	rel := storage.NewRelation()
	stations := []string{"FIAM", "ISK", "AQU", "CERA"}
	base := int64(0)
	for bi := 0; bi < batches; bi++ {
		n := rowsPer
		ids := make([]int64, n)
		ts := make([]int64, n)
		vals := make([]float64, n)
		sts := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = rng.Int63n(8)
			ts[i] = base + rng.Int63n(100)
			vals[i] = rng.NormFloat64() * 100
			sts[i] = stations[rng.Intn(len(stations))]
		}
		base += 100 // batches occupy disjoint time ranges, so zones differ
		rel.Append(storage.NewBatch(
			storage.NewInt64Column(ids),
			storage.NewTimeColumn(ts),
			storage.NewFloat64Column(vals),
			storage.NewStringColumn(sts),
		))
	}
	names := []string{"D.id", "D.ts", "D.val", "D.station"}
	kinds := []storage.Kind{storage.KindInt64, storage.KindTime, storage.KindFloat64, storage.KindString}
	return rel, names, kinds
}

// naiveFilter is the materializing reference: bool mask + gather.
func naiveFilter(t *testing.T, rel *storage.Relation, names []string, kinds []storage.Kind, pred expr.Expr) *storage.Relation {
	t.Helper()
	p := expr.Clone(pred)
	if _, err := p.Bind(names, kinds); err != nil {
		t.Fatal(err)
	}
	out := storage.NewRelation()
	for _, b := range rel.Batches() {
		idx := expr.SelectRows(p, b)
		if len(idx) > 0 {
			out.Append(b.Gather(idx))
		}
	}
	return out
}

// sameRelation asserts two relations hold identical rows in order.
func sameRelation(t *testing.T, got, want *storage.Relation, label string) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s: %d rows, want %d", label, got.Rows(), want.Rows())
	}
	g, w := got.Flatten(), want.Flatten()
	if g.Width() != w.Width() {
		t.Fatalf("%s: width %d, want %d", label, g.Width(), w.Width())
	}
	for c := 0; c < w.Width(); c++ {
		for r := 0; r < w.Len(); r++ {
			if storage.ValueAt(g.Cols[c], r) != storage.ValueAt(w.Cols[c], r) {
				t.Fatalf("%s: cell (%d,%d) = %v, want %v", label,
					r, c, storage.ValueAt(g.Cols[c], r), storage.ValueAt(w.Cols[c], r))
			}
		}
	}
}

func diffPreds(rng *rand.Rand) []expr.Expr {
	return []expr.Expr{
		expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0)),
		expr.NewCmp(expr.GE, expr.Col("D.ts"), expr.Time(rng.Int63n(400))),
		expr.NewAnd(
			expr.NewCmp(expr.GE, expr.Col("D.ts"), expr.Time(150)),
			expr.NewCmp(expr.LT, expr.Col("D.ts"), expr.Time(250))),
		expr.NewAnd(
			expr.NewCmp(expr.EQ, expr.Col("D.station"), expr.Str("FIAM")),
			expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(-50))),
		expr.NewOr(
			expr.NewCmp(expr.EQ, expr.Col("D.id"), expr.Int(3)),
			expr.NewCmp(expr.LT, expr.Col("D.val"), expr.Float(-100))),
		expr.NewCmp(expr.GE, expr.Col("D.id"), expr.Int(0)),    // all pass
		expr.NewCmp(expr.GT, expr.Col("D.ts"), expr.Time(1e9)), // all fail
	}
}

// TestDifferentialRelScan compares the fused RelScan path (selection
// vectors + zone skipping) against the naive mask-and-gather filter.
func TestDifferentialRelScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel, names, kinds := diffRel(rng, 5, 128)
	empty := storage.NewRelation()
	for pi, pred := range diffPreds(rng) {
		for _, r := range []*storage.Relation{rel, empty} {
			s, err := NewRelScan(r, names, kinds, pred)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			sameRelation(t, got, naiveFilter(t, r, names, kinds, pred), pred.String()+" (relscan)")
			_ = pi
		}
	}
}

// TestDifferentialFilterChain stacks Filters above a filtering scan so
// selections compose across operators without intermediate gathers.
func TestDifferentialFilterChain(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rel, names, kinds := diffRel(rng, 4, 200)
	p1 := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(-80))
	p2 := expr.NewCmp(expr.LT, expr.Col("D.ts"), expr.Time(350))
	p3 := expr.NewCmp(expr.NE, expr.Col("D.station"), expr.Str("ISK"))

	s, err := NewRelScan(rel, names, kinds, p1)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NewFilter(s, p2)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewFilter(f1, p3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(f2)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveFilter(t, rel, names, kinds, expr.NewAnd(expr.NewAnd(p1, p2), p3))
	sameRelation(t, got, want, "filter chain")
}

// TestZoneMapSkipping asserts wholly-out-of-range batches are pruned
// without being touched, and that pruning does not change results.
func TestZoneMapSkipping(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel, names, kinds := diffRel(rng, 6, 64) // ts ranges [0,100), [100,200), ...
	pred := expr.NewAnd(
		expr.NewCmp(expr.GE, expr.Col("D.ts"), expr.Time(210)),
		expr.NewCmp(expr.LE, expr.Col("D.ts"), expr.Time(280)))
	s, err := NewRelScan(rel, names, kinds, pred)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, got, naiveFilter(t, rel, names, kinds, pred), "zone skip")
	if s.Skipped() < 4 {
		t.Fatalf("zone maps skipped %d batches, want >= 4 of 6", s.Skipped())
	}
	if got.Rows() == 0 {
		t.Fatal("zone-skip test selected no rows; widen the range")
	}
}

// joinInputs builds a small dimension (unique and duplicate keys, some
// dangling) and a large fact side.
func joinInputs(rng *rand.Rand) (dim, fact *storage.Relation) {
	dim = storage.NewRelation()
	dimIDs := make([]int64, 12)
	dimTags := make([]string, 12)
	for i := range dimIDs {
		dimIDs[i] = int64(i % 8) // duplicate build keys
		dimTags[i] = []string{"a", "b", "c"}[i%3]
	}
	dim.Append(storage.NewBatch(storage.NewInt64Column(dimIDs), storage.NewStringColumn(dimTags)))

	fact = storage.NewRelation()
	for bi := 0; bi < 3; bi++ {
		n := 150
		ids := make([]int64, n)
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			ids[i] = rng.Int63n(12) // some keys dangle past the dim's 0..7
			vals[i] = rng.NormFloat64()
		}
		fact.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewFloat64Column(vals)))
	}
	return dim, fact
}

func runJoin(t *testing.T, dim, fact *storage.Relation, forceComposite bool, probePred expr.Expr) *storage.Relation {
	t.Helper()
	dnames, dkinds := []string{"F.id", "F.tag"}, []storage.Kind{storage.KindInt64, storage.KindString}
	fnames, fkinds := []string{"D.id", "D.val"}, []storage.Kind{storage.KindInt64, storage.KindFloat64}
	ds, err := NewRelScan(dim, dnames, dkinds, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewRelScan(fact, fnames, fkinds, probePred)
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewHashJoin(ds, fs, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if forceComposite {
		j.fastKey = false
	}
	out, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDifferentialJoinFastKey compares the specialized int64 join path
// (including probing through a deferred selection) against the
// composite index.Key path.
func TestDifferentialJoinFastKey(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	dim, fact := joinInputs(rng)
	for _, pred := range []expr.Expr{
		nil,
		expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0)),
		expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(1e9)), // all fail
	} {
		fast := runJoin(t, dim, fact, false, pred)
		slow := runJoin(t, dim, fact, true, pred)
		sameRelation(t, fast, slow, "join fast-vs-composite")
		fast.Release()
		slow.Release()
	}
	// Empty build side drains to an empty result on both paths.
	emptyDim := storage.NewRelation()
	fast := runJoin(t, emptyDim, fact, false, nil)
	slow := runJoin(t, emptyDim, fact, true, nil)
	if fast.Rows() != 0 || slow.Rows() != 0 {
		t.Fatalf("empty build: fast=%d slow=%d rows", fast.Rows(), slow.Rows())
	}
	fast.Release()
	slow.Release()
}

func runAgg(t *testing.T, rel *storage.Relation, names []string, kinds []storage.Kind, groupCol string, forceComposite bool, pred expr.Expr) *storage.Relation {
	t.Helper()
	s, err := NewRelScan(rel, names, kinds, pred)
	if err != nil {
		t.Fatal(err)
	}
	gi := -1
	for i, n := range names {
		if n == groupCol {
			gi = i
		}
	}
	agg, err := NewHashAggregate(s, []int{gi}, []AggColumn{
		{Func: AggCount, Name: "n"},
		{Func: AggSum, Arg: expr.Col("D.val"), Name: "sum"},
		{Func: AggAvg, Arg: expr.Col("D.val"), Name: "avg"},
		{Func: AggMin, Arg: expr.Col("D.val"), Name: "mn"},
		{Func: AggMax, Arg: expr.Col("D.val"), Name: "mx"},
		{Func: AggStddev, Arg: expr.Col("D.val"), Name: "sd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if forceComposite {
		agg.fastKey = false
	}
	out, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDifferentialAggregateFastKey compares the specialized int64
// group-by (including folding through a deferred selection) against the
// composite index.Key path, over int64 and time group keys.
func TestDifferentialAggregateFastKey(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	rel, names, kinds := diffRel(rng, 4, 128)
	for _, groupCol := range []string{"D.id", "D.ts"} {
		for _, pred := range []expr.Expr{
			nil,
			expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0)),
			expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(1e9)), // all fail
		} {
			fast := runAgg(t, rel, names, kinds, groupCol, false, pred)
			slow := runAgg(t, rel, names, kinds, groupCol, true, pred)
			sameRelation(t, fast, slow, "aggregate fast-vs-composite "+groupCol)
		}
	}
	// Empty input, grouped: no groups on either path.
	empty := storage.NewRelation()
	fast := runAgg(t, empty, names, kinds, "D.id", false, nil)
	slow := runAgg(t, empty, names, kinds, "D.id", true, nil)
	if fast.Rows() != 0 || slow.Rows() != 0 {
		t.Fatalf("empty input: fast=%d slow=%d groups", fast.Rows(), slow.Rows())
	}
}
