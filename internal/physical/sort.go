package physical

import (
	"fmt"
	"sort"

	"sommelier/internal/storage"
)

// SortKey is one ordering key, by column position.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes its input and emits it ordered by the keys. Under a
// degree of parallelism (SetParallel) the input is drained through the
// parallel morsel pipeline; the sort itself then imposes the total
// order, so the result is unaffected by the drain's batch boundaries.
type Sort struct {
	in    Operator
	keys  []SortKey
	dop   int
	quota *storage.Quota
	check func() error
	done  bool
}

// SetParallel implements ParallelHinter: it grants the input drain up
// to dop workers. It must be called before the first Next.
func (s *Sort) SetParallel(dop int) { s.dop = dop }

// SetQuota implements QuotaHinter: the materialized input is charged
// against the per-query memory ceiling.
func (s *Sort) SetQuota(q *storage.Quota) { s.quota = q }

// SetCheck implements CheckHinter: the input drain is a pipeline
// breaker, so without this hook an expired query would sort its whole
// input before anyone noticed the deadline.
func (s *Sort) SetCheck(check func() error) { s.check = check }

// NewSort validates the key positions.
func NewSort(in Operator, keys []SortKey) (*Sort, error) {
	for _, k := range keys {
		if k.Col < 0 || k.Col >= len(in.Names()) {
			return nil, fmt.Errorf("physical: sort key %d out of range", k.Col)
		}
		switch in.Kinds()[k.Col] {
		case storage.KindInt64, storage.KindTime, storage.KindFloat64, storage.KindString:
		default:
			return nil, fmt.Errorf("physical: cannot sort on %v", in.Kinds()[k.Col])
		}
	}
	return &Sort{in: in, keys: keys}, nil
}

// Names implements Operator.
func (s *Sort) Names() []string { return s.in.Names() }

// Kinds implements Operator.
func (s *Sort) Kinds() []storage.Kind { return s.in.Kinds() }

// Next implements Operator.
func (s *Sort) Next() (*storage.Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	rel, err := DrainWith(s.in, DrainOpts{DOP: s.dop, Quota: s.quota, Check: s.check, Morsel: s.check})
	if err != nil {
		return nil, err
	}
	if rel.Rows() == 0 {
		rel.Release()
		return nil, nil
	}
	flat := rel.Flatten()
	idx := make([]int32, flat.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for _, k := range s.keys {
			c := cmpAt(flat.Cols[k.Col], int(idx[a]), int(idx[b]))
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := flat.Gather(idx)
	// The ordered copy replaces the drained input; recycle any pooled
	// batches the input operators emitted (flat shares rel's only batch
	// in the single-batch case, but the gather above already copied).
	rel.Release()
	return out, nil
}

func cmpAt(c storage.Column, a, b int) int {
	switch c := c.(type) {
	case *storage.Int64Column:
		return cmpOrd(c.Value(a), c.Value(b))
	case *storage.TimeColumn:
		return cmpOrd(c.Value(a), c.Value(b))
	case *storage.Float64Column:
		return cmpOrd(c.Value(a), c.Value(b))
	case *storage.StringColumn:
		return cmpOrd(c.Value(a), c.Value(b))
	default:
		panic(fmt.Sprintf("physical: cmpAt on %T", c))
	}
}

func cmpOrd[T int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Limit passes through at most N rows. Its early stop abandons
// whatever the upstream operators still hold in flight — pooled
// batches they would have emitted are left to the garbage collector
// (operators have no close protocol), so LIMIT plans trade pool
// locality for the rows they skip.
type Limit struct {
	in   Operator
	n    int
	seen int
}

// NewLimit builds a limit operator.
func NewLimit(in Operator, n int) *Limit { return &Limit{in: in, n: n} }

// Names implements Operator.
func (l *Limit) Names() []string { return l.in.Names() }

// Kinds implements Operator.
func (l *Limit) Kinds() []storage.Kind { return l.in.Kinds() }

// Next implements Operator.
func (l *Limit) Next() (*storage.Batch, error) {
	if l.seen >= l.n {
		return nil, nil
	}
	b, err := l.in.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if l.seen+b.Len() > l.n {
		full := b.Materialize()
		b = full.Slice(0, l.n-l.seen)
		// The sliced views share the truncated batch's storage: take it
		// out of pool accounting (it must never be recycled while the
		// views live, and nobody owns it downstream).
		storage.DisownBatch(full)
	}
	l.seen += b.Len()
	return b, nil
}
