package physical

// Differential tests for the streaming drain: StreamWith must deliver
// exactly the rows Drain materializes, in the same order, at every
// degree of parallelism and with pooling on or off; a sink stop must
// end the query early without error and without leaking a single
// pooled batch; a sink failure must abort with that error, equally
// leak-free.

import (
	"errors"
	"math/rand"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

var streamDOPs = []int{1, 2, 4, 8}

// stopAfterSink collects rows until a limit, then stops the stream:
// the LIMIT-style consumer.
type stopAfterSink struct {
	rel   *storage.Relation
	limit int
}

func (s *stopAfterSink) Push(b *storage.Batch) error {
	if s.rel == nil {
		s.rel = storage.NewRelation()
	}
	s.rel.Append(b)
	if s.rel.Rows() >= s.limit {
		return ErrStopStream
	}
	return nil
}

// failAfterSink recycles batches until a limit, then fails the stream.
type failAfterSink struct {
	rows int
	fail error
}

func (s *failAfterSink) Push(b *storage.Batch) error {
	s.rows += b.Len()
	storage.PutBatch(b)
	if s.rows > 256 {
		return s.fail
	}
	return nil
}

// streamChain builds the scan → filter → project chain used across
// these tests.
func streamChain(t *testing.T, rel *storage.Relation, names []string, kinds []storage.Kind, pred expr.Expr) Operator {
	t.Helper()
	s, err := NewRelScan(rel, names, kinds, pred)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(s, expr.NewCmp(expr.LT, expr.Col("D.val"), expr.Float(120)))
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProject(f, []string{"id2", "v"}, []expr.Expr{
		expr.NewArith(expr.Add, expr.Col("D.id"), expr.Int(1)),
		expr.Col("D.val"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStreamMatchesDrain is the core differential: the streamed rows
// equal the materialized rows, row for row, in order.
func TestStreamMatchesDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	rel, names, kinds := diffRel(rng, 24, 256)
	empty := storage.NewRelation()
	for _, r := range []*storage.Relation{rel, empty} {
		for _, pred := range diffPreds(rng) {
			want, err := Run(streamChain(t, r, names, kinds, pred))
			if err != nil {
				t.Fatal(err)
			}
			for _, dop := range streamDOPs {
				for _, pooled := range []bool{false, true} {
					sink := &CollectSink{}
					err := StreamWith(streamChain(t, r, names, kinds, pred), sink,
						StreamOpts{DOP: dop, Pooled: pooled})
					if err != nil {
						t.Fatal(err)
					}
					got := sink.Rel
					if got == nil {
						got = storage.NewRelation()
					}
					sameRelation(t, got, want, pred.String()+" (stream)")
					got.Release()
					storage.RequireNoLeaks(t)
				}
			}
		}
	}
}

// TestStreamEarlyStop stops the stream after a handful of rows: the
// delivered rows must be a prefix of the serial result (sink-driven
// cancellation keeps in-order delivery), the call must report success,
// and nothing pooled may leak — including the morsel ranges the stop
// prevented from ever being scanned.
func TestStreamEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	rel, names, kinds := diffRel(rng, 32, 256)
	pred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0))
	want, err := Run(streamChain(t, rel, names, kinds, pred))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range streamDOPs {
		for _, pooled := range []bool{false, true} {
			sink := &stopAfterSink{limit: 10}
			err := StreamWith(streamChain(t, rel, names, kinds, pred), sink,
				StreamOpts{DOP: dop, Pooled: pooled})
			if err != nil {
				t.Fatalf("dop %d pooled %v: %v", dop, pooled, err)
			}
			got := sink.rel
			if got.Rows() < 10 {
				t.Fatalf("dop %d: stopped after %d rows, want >= 10", dop, got.Rows())
			}
			// Prefix check: the delivered rows are the first rows of the
			// serial result.
			g, w := got.Flatten(), want.Flatten()
			for c := 0; c < w.Width(); c++ {
				for r := 0; r < g.Len(); r++ {
					if storage.ValueAt(g.Cols[c], r) != storage.ValueAt(w.Cols[c], r) {
						t.Fatalf("dop %d: cell (%d,%d) = %v, want %v", dop,
							r, c, storage.ValueAt(g.Cols[c], r), storage.ValueAt(w.Cols[c], r))
					}
				}
			}
			got.Release()
			storage.RequireNoLeaks(t)
		}
	}
}

// TestStreamPushError aborts the stream with a sink failure: the error
// must surface and the undelivered run-ahead buffers must all be
// recycled.
func TestStreamPushError(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rel, names, kinds := diffRel(rng, 32, 256)
	pred := expr.NewCmp(expr.GE, expr.Col("D.id"), expr.Int(0)) // all pass
	boom := errors.New("client hung up")
	for _, dop := range streamDOPs {
		for _, pooled := range []bool{false, true} {
			sink := &failAfterSink{fail: boom}
			err := StreamWith(streamChain(t, rel, names, kinds, pred), sink,
				StreamOpts{DOP: dop, Pooled: pooled})
			if !errors.Is(err, boom) {
				t.Fatalf("dop %d pooled %v: err = %v, want %v", dop, pooled, err, boom)
			}
			storage.RequireNoLeaks(t)
		}
	}
}

// TestStreamQuota runs a parallel stream under a ceiling far below the
// result size: the run-ahead buffering must trip the quota with a
// typed error and recycle everything it had buffered.
func TestStreamQuota(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	rel, names, kinds := diffRel(rng, 32, 512)
	pred := expr.NewCmp(expr.GE, expr.Col("D.id"), expr.Int(0)) // all pass
	sink := &CollectSink{}
	err := StreamWith(streamChain(t, rel, names, kinds, pred), sink,
		StreamOpts{DOP: 4, Pooled: true, Quota: storage.NewQuota(1)})
	var qe *storage.QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want a *storage.QuotaError", err)
	}
	if sink.Rel != nil {
		sink.Rel.Release()
	}
	storage.RequireNoLeaks(t)
}
