package physical

// Differential tests for morsel-driven parallel execution: at every
// degree of parallelism, scans, filter chains, projections, join probes
// and grouped aggregation must produce exactly the serial result — the
// same rows in the same order (ParallelDrain reassembles morsel ranges
// in order; aggregates partition at a DOP-independent grain and merge
// partials in range order, so even the floating-point aggregates are
// bitwise identical). Against a whole-input reference fold, float
// aggregates are compared with a tolerance (merge rounding differs).

import (
	"math"
	"math/rand"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

var testDOPs = []int{2, 3, 8}

// bigRel builds a relation with enough batches for real splits.
func bigRel(rng *rand.Rand, batches int) (*storage.Relation, []string, []storage.Kind) {
	return diffRel(rng, batches, 512)
}

// sameRelationTol is sameRelation with a relative tolerance on float64
// cells, for comparisons across different accumulation structures.
func sameRelationTol(t *testing.T, got, want *storage.Relation, tol float64, label string) {
	t.Helper()
	if got.Rows() != want.Rows() {
		t.Fatalf("%s: %d rows, want %d", label, got.Rows(), want.Rows())
	}
	g, w := got.Flatten(), want.Flatten()
	if g.Width() != w.Width() {
		t.Fatalf("%s: width %d, want %d", label, g.Width(), w.Width())
	}
	for c := 0; c < w.Width(); c++ {
		for r := 0; r < w.Len(); r++ {
			gv, wv := storage.ValueAt(g.Cols[c], r), storage.ValueAt(w.Cols[c], r)
			if gf, ok := gv.(float64); ok {
				wf := wv.(float64)
				if math.IsNaN(gf) && math.IsNaN(wf) {
					continue
				}
				if diff := math.Abs(gf - wf); diff > tol*math.Max(1, math.Abs(wf)) {
					t.Fatalf("%s: cell (%d,%d) = %v, want %v (Δ%g)", label, r, c, gf, wf, diff)
				}
				continue
			}
			if gv != wv {
				t.Fatalf("%s: cell (%d,%d) = %v, want %v", label, r, c, gv, wv)
			}
		}
	}
}

// TestParallelScanFilterProject runs scan → filter → project chains
// serially and at several DOPs and requires identical rows in identical
// order.
func TestParallelScanFilterProject(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rel, names, kinds := bigRel(rng, 24)
	empty := storage.NewRelation()
	for _, r := range []*storage.Relation{rel, empty} {
		for _, pred := range diffPreds(rng) {
			build := func() Operator {
				s, err := NewRelScan(r, names, kinds, pred)
				if err != nil {
					t.Fatal(err)
				}
				f, err := NewFilter(s, expr.NewCmp(expr.LT, expr.Col("D.val"), expr.Float(120)))
				if err != nil {
					t.Fatal(err)
				}
				p, err := NewProject(f, []string{"id2", "v"}, []expr.Expr{
					expr.NewArith(expr.Add, expr.Col("D.id"), expr.Int(1)),
					expr.Col("D.val"),
				})
				if err != nil {
					t.Fatal(err)
				}
				return p
			}
			want, err := Run(build())
			if err != nil {
				t.Fatal(err)
			}
			for _, dop := range testDOPs {
				got, err := ParallelDrain(build(), dop, nil)
				if err != nil {
					t.Fatal(err)
				}
				sameRelation(t, got, want, pred.String()+" (parallel scan chain)")
			}
		}
	}
}

// TestParallelJoin splits the probe side across workers — fast int64
// path and forced composite path — and requires the serial row order.
func TestParallelJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dim, fact := joinInputs(rng)
	// Widen the fact side so splits have several ranges to claim.
	for bi := 0; bi < 12; bi++ {
		n := 256
		ids := make([]int64, n)
		vals := make([]float64, n)
		for i := 0; i < n; i++ {
			ids[i] = rng.Int63n(12)
			vals[i] = rng.NormFloat64()
		}
		fact.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewFloat64Column(vals)))
	}
	dnames, dkinds := []string{"F.id", "F.tag"}, []storage.Kind{storage.KindInt64, storage.KindString}
	fnames, fkinds := []string{"D.id", "D.val"}, []storage.Kind{storage.KindInt64, storage.KindFloat64}
	for _, forceComposite := range []bool{false, true} {
		for _, pred := range []expr.Expr{nil, expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0))} {
			build := func(dop int) *HashJoin {
				ds, err := NewRelScan(dim, dnames, dkinds, nil)
				if err != nil {
					t.Fatal(err)
				}
				fs, err := NewRelScan(fact, fnames, fkinds, pred)
				if err != nil {
					t.Fatal(err)
				}
				j, err := NewHashJoin(ds, fs, []int{0}, []int{0})
				if err != nil {
					t.Fatal(err)
				}
				if forceComposite {
					j.fastKey = false
				}
				j.SetParallel(dop)
				return j
			}
			want, err := Run(build(1))
			if err != nil {
				t.Fatal(err)
			}
			for _, dop := range testDOPs {
				got, err := ParallelDrain(build(dop), dop, nil)
				if err != nil {
					t.Fatal(err)
				}
				sameRelation(t, got, want, "parallel join")
				got.Release()
			}
			want.Release()
		}
	}
	storage.RequireNoLeaks(t)
}

// TestParallelPartitionedBuild pushes the build side over the
// partitioned-build threshold and checks sharded probing end to end.
func TestParallelPartitionedBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dim := storage.NewRelation()
	for bi := 0; bi < 4; bi++ {
		n := parallelBuildMin / 2
		ids := make([]int64, n)
		tags := make([]float64, n)
		for i := range ids {
			ids[i] = rng.Int63n(1 << 14)
			tags[i] = float64(i)
		}
		dim.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewFloat64Column(tags)))
	}
	fact := storage.NewRelation()
	for bi := 0; bi < 8; bi++ {
		n := 512
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = rng.Int63n(1 << 14)
		}
		fact.Append(storage.NewBatch(storage.NewInt64Column(ids)))
	}
	dnames, dkinds := []string{"F.id", "F.x"}, []storage.Kind{storage.KindInt64, storage.KindFloat64}
	fnames, fkinds := []string{"D.id"}, []storage.Kind{storage.KindInt64}
	build := func(dop int) *HashJoin {
		ds, err := NewRelScan(dim, dnames, dkinds, nil)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := NewRelScan(fact, fnames, fkinds, nil)
		if err != nil {
			t.Fatal(err)
		}
		j, err := NewHashJoin(ds, fs, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		j.SetParallel(dop)
		return j
	}
	want, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range testDOPs {
		j := build(dop)
		got, err := ParallelDrain(j, dop, nil)
		if err != nil {
			t.Fatal(err)
		}
		if dop > 1 && j.shards == nil {
			t.Fatalf("dop %d: expected a partitioned build", dop)
		}
		sameRelation(t, got, want, "partitioned build")
		got.Release()
	}
	want.Release()
	storage.RequireNoLeaks(t)
}

// TestParallelAggregate requires grouped aggregation to be bitwise
// identical at every DOP (fast and composite paths, plain and computed
// arguments), and within tolerance of a whole-input reference fold.
func TestParallelAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	rel, names, kinds := bigRel(rng, 24)
	for _, groupCol := range []string{"D.id", "D.station"} {
		forceComposite := groupCol == "D.station"
		for _, exprArg := range []bool{false, true} {
			gi := -1
			for i, n := range names {
				if n == groupCol {
					gi = i
				}
			}
			arg := expr.Expr(expr.Col("D.val"))
			if exprArg {
				arg = expr.NewArith(expr.Mul, expr.Col("D.val"), expr.Float(0.5))
			}
			aggs := []AggColumn{
				{Func: AggCount, Name: "n"},
				{Func: AggSum, Arg: arg, Name: "sum"},
				{Func: AggAvg, Arg: arg, Name: "avg"},
				{Func: AggMin, Arg: arg, Name: "mn"},
				{Func: AggMax, Arg: arg, Name: "mx"},
				{Func: AggStddev, Arg: arg, Name: "sd"},
			}
			build := func(dop int, in Operator) *HashAggregate {
				agg, err := NewHashAggregate(in, []int{gi}, aggs)
				if err != nil {
					t.Fatal(err)
				}
				if forceComposite {
					agg.fastKey = false
				}
				agg.SetParallel(dop)
				return agg
			}
			scan := func(pred expr.Expr) Operator {
				s, err := NewRelScan(rel, names, kinds, pred)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			pred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(-50))
			want, err := Run(build(1, scan(pred)))
			if err != nil {
				t.Fatal(err)
			}
			for _, dop := range testDOPs {
				got, err := Run(build(dop, scan(pred)))
				if err != nil {
					t.Fatal(err)
				}
				// Same ranges, same merge order: bitwise identical.
				sameRelation(t, got, want, "parallel aggregate")
			}
			// A non-splittable input folds the whole stream into one
			// accumulator; its float results may differ in rounding.
			var rows int64
			ref, err := Run(build(1, NewCounted(scan(pred), &rows)))
			if err != nil {
				t.Fatal(err)
			}
			sameRelationTol(t, want, ref, 1e-9, "aggregate vs whole fold")
		}
	}
}

// TestParallelAggregateGlobal covers the global (no group) aggregate,
// including over an all-filtered-out input.
func TestParallelAggregateGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	rel, names, kinds := bigRel(rng, 16)
	for _, pred := range []expr.Expr{
		expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0)),
		expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(1e12)), // all fail
	} {
		build := func(dop int) *HashAggregate {
			s, err := NewRelScan(rel, names, kinds, pred)
			if err != nil {
				t.Fatal(err)
			}
			agg, err := NewHashAggregate(s, nil, []AggColumn{
				{Func: AggCount, Name: "n"},
				{Func: AggSum, Arg: expr.Col("D.val"), Name: "sum"},
				{Func: AggAvg, Arg: expr.Col("D.val"), Name: "avg"},
			})
			if err != nil {
				t.Fatal(err)
			}
			agg.SetParallel(dop)
			return agg
		}
		want, err := Run(build(1))
		if err != nil {
			t.Fatal(err)
		}
		if want.Rows() != 1 {
			t.Fatalf("global aggregate emitted %d rows", want.Rows())
		}
		for _, dop := range testDOPs {
			got, err := Run(build(dop))
			if err != nil {
				t.Fatal(err)
			}
			// tol 0: exact, but NaN-aware (AVG over zero rows is NaN).
			sameRelationTol(t, got, want, 0, "parallel global aggregate")
		}
	}
}

// TestParallelSort checks Sort draining its input through the parallel
// pipeline.
func TestParallelSort(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	rel, names, kinds := bigRel(rng, 12)
	build := func(dop int) *Sort {
		s, err := NewRelScan(rel, names, kinds, expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0)))
		if err != nil {
			t.Fatal(err)
		}
		srt, err := NewSort(s, []SortKey{{Col: 1}, {Col: 2, Desc: true}})
		if err != nil {
			t.Fatal(err)
		}
		srt.SetParallel(dop)
		return srt
	}
	want, err := Run(build(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range testDOPs {
		got, err := Run(build(dop))
		if err != nil {
			t.Fatal(err)
		}
		sameRelation(t, got, want, "parallel sort")
	}
}

// TestSplitTransfersWork asserts the Split contract: after a successful
// Split the parent yields nothing, and the children together yield
// exactly the parent's stream.
func TestSplitTransfersWork(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	rel, names, kinds := bigRel(rng, 10)
	s, err := NewRelScan(rel, names, kinds, nil)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := s.Split(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("split produced %d parts", len(parts))
	}
	if b, err := s.Next(); err != nil || b != nil {
		t.Fatalf("parent still streams after Split: %v %v", b, err)
	}
	got := storage.NewRelation()
	for _, p := range parts {
		rel, err := Run(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range rel.Batches() {
			got.Append(b)
		}
	}
	want, err := Run(mustScan(t, rel, names, kinds))
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, got, want, "split transfer")
}

func mustScan(t *testing.T, rel *storage.Relation, names []string, kinds []storage.Kind) Operator {
	t.Helper()
	s, err := NewRelScan(rel, names, kinds, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
