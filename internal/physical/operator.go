// Package physical implements the vectorized execution operators. Each
// operator pulls batches from its inputs (volcano style, but on column
// batches rather than tuples, mirroring the bulk-processing paradigm of
// the paper's host system).
//
// The access paths of the paper map onto this package as follows:
// scan and result-scan are RelScans over resident relations, cache-scan
// is a RelScan over a cached chunk relation, index-scan is an
// IndexScan, and chunk-access is a RelScan over a freshly ingested
// chunk (the ingestion itself lives in the engine's run-time
// optimizer).
package physical

import (
	"fmt"

	"sommelier/internal/expr"
	"sommelier/internal/index"
	"sommelier/internal/storage"
)

// Operator produces a stream of batches. Next returns nil when the
// stream is exhausted.
type Operator interface {
	// Names returns the qualified output column names.
	Names() []string
	// Kinds returns the output column kinds.
	Kinds() []storage.Kind
	// Next returns the next batch, or nil at end of stream.
	Next() (*storage.Batch, error)
}

// Run drains an operator into a relation.
func Run(op Operator) (*storage.Relation, error) {
	out := storage.NewRelation()
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out.Append(b)
	}
}

// RelScan streams a materialized relation, optionally filtering it. It
// implements the scan, result-scan and cache-scan access paths.
type RelScan struct {
	names  []string
	kinds  []storage.Kind
	pred   expr.Expr
	splits []*storage.Batch
	pos    int
}

// NewRelScan builds a scan over rel. If pred is non-nil it is bound
// against the schema and applied per batch.
func NewRelScan(rel *storage.Relation, names []string, kinds []storage.Kind, pred expr.Expr) (*RelScan, error) {
	if pred != nil {
		pred = expr.Clone(pred)
		if k, err := pred.Bind(names, kinds); err != nil {
			return nil, err
		} else if k != storage.KindBool {
			return nil, fmt.Errorf("physical: scan predicate is %v, not boolean", k)
		}
	}
	return &RelScan{names: names, kinds: kinds, pred: pred, splits: rel.Batches()}, nil
}

// Names implements Operator.
func (s *RelScan) Names() []string { return s.names }

// Kinds implements Operator.
func (s *RelScan) Kinds() []storage.Kind { return s.kinds }

// Next implements Operator.
func (s *RelScan) Next() (*storage.Batch, error) {
	for s.pos < len(s.splits) {
		b := s.splits[s.pos]
		s.pos++
		if s.pred == nil {
			return b, nil
		}
		idx := expr.SelectRows(s.pred, b)
		if len(idx) == 0 {
			continue
		}
		if len(idx) == b.Len() {
			return b, nil
		}
		return b.Gather(idx), nil
	}
	return nil, nil
}

// Filter applies a residual predicate to its input.
type Filter struct {
	in   Operator
	pred expr.Expr
}

// NewFilter binds pred against the input schema.
func NewFilter(in Operator, pred expr.Expr) (*Filter, error) {
	pred = expr.Clone(pred)
	k, err := pred.Bind(in.Names(), in.Kinds())
	if err != nil {
		return nil, err
	}
	if k != storage.KindBool {
		return nil, fmt.Errorf("physical: filter predicate is %v, not boolean", k)
	}
	return &Filter{in: in, pred: pred}, nil
}

// Names implements Operator.
func (f *Filter) Names() []string { return f.in.Names() }

// Kinds implements Operator.
func (f *Filter) Kinds() []storage.Kind { return f.in.Kinds() }

// Next implements Operator.
func (f *Filter) Next() (*storage.Batch, error) {
	for {
		b, err := f.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		idx := expr.SelectRows(f.pred, b)
		if len(idx) == 0 {
			continue
		}
		if len(idx) == b.Len() {
			return b, nil
		}
		return b.Gather(idx), nil
	}
}

// Project evaluates scalar expressions into output columns.
type Project struct {
	in    Operator
	names []string
	kinds []storage.Kind
	exprs []expr.Expr
}

// NewProject binds the expressions against the input schema.
func NewProject(in Operator, names []string, exprs []expr.Expr) (*Project, error) {
	p := &Project{in: in, names: names}
	for _, e := range exprs {
		e = expr.Clone(e)
		k, err := e.Bind(in.Names(), in.Kinds())
		if err != nil {
			return nil, err
		}
		p.exprs = append(p.exprs, e)
		p.kinds = append(p.kinds, k)
	}
	return p, nil
}

// Names implements Operator.
func (p *Project) Names() []string { return p.names }

// Kinds implements Operator.
func (p *Project) Kinds() []storage.Kind { return p.kinds }

// Next implements Operator.
func (p *Project) Next() (*storage.Batch, error) {
	b, err := p.in.Next()
	if err != nil || b == nil {
		return nil, err
	}
	cols := make([]storage.Column, len(p.exprs))
	for i, e := range p.exprs {
		cols[i] = e.Eval(b)
	}
	return storage.NewBatch(cols...), nil
}

// UnionAll concatenates the streams of its inputs, which must share a
// schema. The run-time optimizer uses it to combine cache-scans and
// chunk-accesses over the selected chunks (rewrite rule (1)).
type UnionAll struct {
	ins []Operator
	pos int
}

// NewUnionAll validates schema compatibility.
func NewUnionAll(ins ...Operator) (*UnionAll, error) {
	if len(ins) == 0 {
		return nil, fmt.Errorf("physical: empty union")
	}
	w := len(ins[0].Names())
	for _, in := range ins[1:] {
		if len(in.Names()) != w {
			return nil, fmt.Errorf("physical: union width mismatch")
		}
	}
	return &UnionAll{ins: ins}, nil
}

// Names implements Operator.
func (u *UnionAll) Names() []string { return u.ins[0].Names() }

// Kinds implements Operator.
func (u *UnionAll) Kinds() []storage.Kind { return u.ins[0].Kinds() }

// Next implements Operator.
func (u *UnionAll) Next() (*storage.Batch, error) {
	for u.pos < len(u.ins) {
		b, err := u.ins[u.pos].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.pos++
	}
	return nil, nil
}

// Empty is a zero-row operator with a schema; the rewrite of a scan
// over zero selected chunks.
type Empty struct {
	names []string
	kinds []storage.Kind
}

// NewEmpty builds an empty stream with the given schema.
func NewEmpty(names []string, kinds []storage.Kind) *Empty {
	return &Empty{names: names, kinds: kinds}
}

// Names implements Operator.
func (e *Empty) Names() []string { return e.names }

// Kinds implements Operator.
func (e *Empty) Kinds() []storage.Kind { return e.kinds }

// Next implements Operator.
func (e *Empty) Next() (*storage.Batch, error) { return nil, nil }

// IndexScan looks rows up through a hash index and streams the matches:
// the index-scan access path.
type IndexScan struct {
	names []string
	kinds []storage.Kind
	data  *storage.Batch
	rows  []int32
	done  bool
}

// NewIndexScan returns the rows of data (a flattened relation) whose
// key equals k in the given index.
func NewIndexScan(ix *index.HashIndex, data *storage.Batch, names []string, kinds []storage.Kind, k index.Key) *IndexScan {
	return &IndexScan{names: names, kinds: kinds, data: data, rows: ix.Lookup(k)}
}

// Names implements Operator.
func (s *IndexScan) Names() []string { return s.names }

// Kinds implements Operator.
func (s *IndexScan) Kinds() []storage.Kind { return s.kinds }

// Next implements Operator.
func (s *IndexScan) Next() (*storage.Batch, error) {
	if s.done || len(s.rows) == 0 {
		return nil, nil
	}
	s.done = true
	return s.data.Gather(s.rows), nil
}

// Counted wraps an operator and accumulates the number of rows it
// emits; the executor uses it to annotate plans for EXPLAIN ANALYZE.
type Counted struct {
	in   Operator
	rows *int64
}

// NewCounted wraps in, adding emitted rows to *rows.
func NewCounted(in Operator, rows *int64) *Counted {
	return &Counted{in: in, rows: rows}
}

// Names implements Operator.
func (c *Counted) Names() []string { return c.in.Names() }

// Kinds implements Operator.
func (c *Counted) Kinds() []storage.Kind { return c.in.Kinds() }

// Next implements Operator.
func (c *Counted) Next() (*storage.Batch, error) {
	b, err := c.in.Next()
	if b != nil {
		*c.rows += int64(b.Len())
	}
	return b, err
}
