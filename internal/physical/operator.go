// Package physical implements the vectorized execution operators. Each
// operator pulls batches from its inputs (volcano style, but on column
// batches rather than tuples, mirroring the bulk-processing paradigm of
// the paper's host system).
//
// The access paths of the paper map onto this package as follows:
// scan and result-scan are RelScans over resident relations, cache-scan
// is a RelScan over a cached chunk relation, index-scan is an
// IndexScan, and chunk-access is a RelScan over a freshly ingested
// chunk (the ingestion itself lives in the engine's run-time
// optimizer).
package physical

import (
	"fmt"
	"math"
	"sync/atomic"

	"sommelier/internal/expr"
	"sommelier/internal/index"
	"sommelier/internal/storage"
)

// Operator produces a stream of batches. Next returns nil when the
// stream is exhausted. Batches may carry a deferred selection vector
// (storage.Batch.Sel); consumers either compose with it (Filter, the
// specialized join/group-by paths) or materialize it on first
// contiguous access.
type Operator interface {
	// Names returns the qualified output column names.
	Names() []string
	// Kinds returns the output column kinds.
	Kinds() []storage.Kind
	// Next returns the next batch, or nil at end of stream.
	Next() (*storage.Batch, error)
}

// BatchHinter is an optional Operator refinement reporting an upper
// bound on the number of batches the operator will emit, so drains can
// pre-size their output relation.
type BatchHinter interface {
	BatchHint() int
}

// Run drains an operator into a relation; see Drain.
func Run(op Operator) (*storage.Relation, error) {
	return Drain(op, nil)
}

// RunPooled is Run through the pooled coalescer: the returned relation
// owns pooled batches and must be Released by the caller when the rows
// are no longer referenced.
func RunPooled(op Operator) (*storage.Relation, error) {
	return DrainPooled(op, nil)
}

// Drain pulls an operator to completion into a relation pre-sized from
// the operator's batch-count hint. Selection-carrying batches over
// fixed-width schemas are coalesced into full batches instead of
// gathered one by one; contiguous batches pass through untouched
// (flushing first, to preserve row order). A non-nil check runs before
// each pull and aborts the drain when it errors — the executor passes
// its context's Err for cancellation between batches.
func Drain(op Operator, check func() error) (*storage.Relation, error) {
	return drainInto(op, check, NewOutputRelation(op), false, nil)
}

// DrainPooled is Drain with the coalesced output drawn from the
// batch-memory pool; the caller owns the relation and Releases it.
func DrainPooled(op Operator, check func() error) (*storage.Relation, error) {
	return drainInto(op, check, NewOutputRelation(op), true, nil)
}

func drainInto(op Operator, check func() error, out *storage.Relation, pooled bool, quota *storage.Quota) (*storage.Relation, error) {
	var coal *storage.Coalescer
	if pooled {
		coal = storage.NewPooledCoalescer(op.Kinds())
	} else {
		coal = storage.NewCoalescer(op.Kinds())
	}
	// Every batch that lands in out is charged against the per-query
	// memory ceiling as it arrives; charged tracks the prefix already
	// counted, so coalescer flushes are charged exactly once.
	charged := 0
	chargeNew := func() error {
		if quota == nil {
			return nil
		}
		bs := out.Batches()
		for ; charged < len(bs); charged++ {
			if err := quota.Charge(bs[charged].MemSize()); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		if check != nil {
			if err := check(); err != nil {
				if pooled {
					out.Release()
				}
				return nil, err
			}
		}
		b, err := op.Next()
		if err != nil {
			// Batches already drained into out are this function's to
			// recycle: the caller never sees the partial relation.
			if pooled {
				out.Release()
			}
			return nil, err
		}
		if b == nil {
			coal.Flush(out)
			if err := chargeNew(); err != nil {
				if pooled {
					out.Release()
				}
				return nil, err
			}
			return out, nil
		}
		if coal.Eligible(b) {
			coal.Add(out, b)
		} else {
			coal.Flush(out)
			out.Append(b)
		}
		if err := chargeNew(); err != nil {
			if pooled {
				out.Release()
			}
			return nil, err
		}
	}
}

// NewOutputRelation returns an empty relation sized for op's output.
func NewOutputRelation(op Operator) *storage.Relation {
	if h, ok := op.(BatchHinter); ok {
		return storage.NewRelationWithCap(h.BatchHint())
	}
	return storage.NewRelation()
}

// RelScan streams one or more materialized relations, optionally
// filtering them. It implements the scan, result-scan and cache-scan
// access paths; a scan over several relations is the union of
// cache-scans and chunk-accesses over a query's selected chunks
// (rewrite rule (1)) collapsed into one operator, whose batch list is
// the morsel list of parallel execution.
//
// A predicate is evaluated through the fused selection-vector kernels
// (expr.EvalSel): surviving rows travel as a deferred selection on the
// emitted batch instead of being gathered eagerly. Column-vs-constant
// range conjuncts are additionally checked against the owning
// relation's per-batch zone maps, so wholly-out-of-range batches are
// skipped without touching a single value.
type RelScan struct {
	names   []string
	kinds   []storage.Kind
	pred    expr.Expr
	morsels []scanMorsel
	bounds  []zoneBound
	pos     int
	// srcCols maps output columns to source-relation columns (the
	// optimizer's projection pruning); nil is the identity. Emitted
	// batches share the selected column vectors — no copying.
	srcCols []int
	// skipped counts zone-pruned batches; shared by the range scans a
	// Split produces, so the parent's Skipped sees the whole scan.
	skipped *atomic.Int64
}

// scanMorsel is one batch of one relation: the unit of work parallel
// scans dispatch to workers.
type scanMorsel struct {
	rel *storage.Relation
	idx int
}

// zoneBound is a necessary [Lo, Hi] condition on one int64/time column,
// derived from a predicate conjunct; a batch whose zone is disjoint
// from it cannot contain qualifying rows.
type zoneBound struct {
	col    int
	lo, hi int64
}

// NewRelScan builds a scan over rel. If pred is non-nil it is bound
// against the schema and applied per batch.
func NewRelScan(rel *storage.Relation, names []string, kinds []storage.Kind, pred expr.Expr) (*RelScan, error) {
	return NewMultiRelScan([]*storage.Relation{rel}, names, kinds, pred)
}

// NewMultiRelScan builds one scan over the concatenation of several
// relations sharing a schema (the chunks a query selected), streamed in
// slice order.
func NewMultiRelScan(rels []*storage.Relation, names []string, kinds []storage.Kind, pred expr.Expr) (*RelScan, error) {
	return NewMultiRelScanCols(rels, names, kinds, pred, nil)
}

// NewMultiRelScanCols is NewMultiRelScan restricted to the source
// columns at srcCols (nil reads every column): names/kinds describe the
// narrowed output schema, and the predicate is bound against it. The
// zone maps of the source relations still drive batch skipping.
func NewMultiRelScanCols(rels []*storage.Relation, names []string, kinds []storage.Kind, pred expr.Expr, srcCols []int) (*RelScan, error) {
	s := &RelScan{names: names, kinds: kinds, srcCols: srcCols, skipped: new(atomic.Int64)}
	for _, rel := range rels {
		for i := range rel.Batches() {
			s.morsels = append(s.morsels, scanMorsel{rel: rel, idx: i})
		}
	}
	if pred != nil {
		pred = expr.Clone(pred)
		if k, err := pred.Bind(names, kinds); err != nil {
			return nil, err
		} else if k != storage.KindBool {
			return nil, fmt.Errorf("physical: scan predicate is %v, not boolean", k)
		}
		s.pred = pred
		s.bounds = zoneBounds(pred, kinds)
	}
	return s, nil
}

// zoneBounds extracts per-column range bounds from the top-level
// conjuncts of a bound predicate. Only col-op-const conjuncts over
// int64/time columns contribute; every other conjunct is simply not
// represented (the bounds are necessary, not sufficient, conditions).
func zoneBounds(pred expr.Expr, kinds []storage.Kind) []zoneBound {
	var bounds []zoneBound
	for _, conj := range expr.Conjuncts(pred) {
		cmp, ok := conj.(*expr.Cmp)
		if !ok {
			continue
		}
		col, op, k := cmp.L, cmp.Op, cmp.R
		cr, isCol := col.(*expr.ColRef)
		kc, isConst := k.(*expr.Const)
		if !isCol || !isConst {
			// Maybe written const-op-col.
			cr, isCol = cmp.R.(*expr.ColRef)
			kc, isConst = cmp.L.(*expr.Const)
			if !isCol || !isConst {
				continue
			}
			op = expr.FlipCmp(op)
		}
		if cr.Idx < 0 || cr.Idx >= len(kinds) {
			continue
		}
		switch kinds[cr.Idx] {
		case storage.KindInt64, storage.KindTime:
		default:
			continue
		}
		switch kc.K {
		case storage.KindInt64, storage.KindTime:
		default:
			continue
		}
		b := zoneBound{col: cr.Idx, lo: math.MinInt64, hi: math.MaxInt64}
		switch op {
		case expr.EQ:
			b.lo, b.hi = kc.I, kc.I
		case expr.LT:
			if kc.I == math.MinInt64 {
				continue
			}
			b.hi = kc.I - 1
		case expr.LE:
			b.hi = kc.I
		case expr.GT:
			if kc.I == math.MaxInt64 {
				continue
			}
			b.lo = kc.I + 1
		case expr.GE:
			b.lo = kc.I
		default: // NE prunes nothing
			continue
		}
		bounds = append(bounds, b)
	}
	return bounds
}

// Names implements Operator.
func (s *RelScan) Names() []string { return s.names }

// Kinds implements Operator.
func (s *RelScan) Kinds() []storage.Kind { return s.kinds }

// BatchHint implements BatchHinter.
func (s *RelScan) BatchHint() int { return len(s.morsels) }

// Skipped reports how many batches the zone maps pruned, across every
// range scan split off this one.
func (s *RelScan) Skipped() int { return int(s.skipped.Load()) }

// Split implements Splitter: the remaining morsels are cut into at most
// n contiguous ranges, each served by an independent scan with its own
// predicate clone (expression memoization is per-goroutine state).
func (s *RelScan) Split(n int) ([]Operator, error) {
	rest := s.morsels[s.pos:]
	ranges := splitRanges(len(rest), n, scanSplitGrain)
	if ranges == nil {
		return nil, nil
	}
	out := make([]Operator, len(ranges))
	for i, r := range ranges {
		child := &RelScan{
			names:   s.names,
			kinds:   s.kinds,
			morsels: rest[r[0]:r[1]],
			bounds:  s.bounds,
			srcCols: s.srcCols,
			skipped: s.skipped,
		}
		if s.pred != nil {
			p := expr.Clone(s.pred)
			if _, err := p.Bind(s.names, s.kinds); err != nil {
				return nil, err
			}
			child.pred = p
		}
		out[i] = child
	}
	s.pos = len(s.morsels)
	return out, nil
}

// Next implements Operator.
func (s *RelScan) Next() (*storage.Batch, error) {
	for s.pos < len(s.morsels) {
		m := s.morsels[s.pos]
		s.pos++
		// Zone pruning consults the source relation directly, so a
		// skipped batch costs no projection work.
		if s.pred != nil && s.pruneByZone(m) {
			s.skipped.Add(1)
			continue
		}
		b := m.rel.Batches()[m.idx]
		if s.srcCols != nil {
			cols := make([]storage.Column, len(s.srcCols))
			for i, sc := range s.srcCols {
				cols[i] = b.Cols[sc]
			}
			b = storage.NewBatch(cols...)
		}
		if s.pred == nil {
			return b, nil
		}
		sel := expr.EvalSel(s.pred, b, nil)
		if len(sel) == 0 {
			storage.PutSel(sel)
			continue
		}
		if len(sel) == b.Len() {
			storage.PutSel(sel)
			return b, nil
		}
		return storage.ViewWithSel(b, sel), nil
	}
	return nil, nil
}

// pruneByZone reports that the morsel's batch cannot contain qualifying
// rows. Bound columns are indexes into the (possibly narrowed) output
// schema; the source relation's zone maps are consulted through the
// column mapping.
func (s *RelScan) pruneByZone(m scanMorsel) bool {
	return pruneMorsel(m, s.bounds, s.srcCols)
}

// pruneMorsel is the zone-pruning test shared by RelScan and the fused
// pipeline.
func pruneMorsel(m scanMorsel, bounds []zoneBound, srcCols []int) bool {
	for _, zb := range bounds {
		col := zb.col
		if srcCols != nil {
			col = srcCols[col]
		}
		if m.rel.Zone(m.idx, col).Disjoint(zb.lo, zb.hi) {
			return true
		}
	}
	return false
}

// Filter applies a residual predicate to its input, composing with any
// deferred selection the input batch carries: a Filter above a
// filtering scan evaluates only the rows the scan selected and never
// gathers in between.
type Filter struct {
	in   Operator
	pred expr.Expr
}

// NewFilter binds pred against the input schema.
func NewFilter(in Operator, pred expr.Expr) (*Filter, error) {
	pred = expr.Clone(pred)
	k, err := pred.Bind(in.Names(), in.Kinds())
	if err != nil {
		return nil, err
	}
	if k != storage.KindBool {
		return nil, fmt.Errorf("physical: filter predicate is %v, not boolean", k)
	}
	return &Filter{in: in, pred: pred}, nil
}

// Names implements Operator.
func (f *Filter) Names() []string { return f.in.Names() }

// Kinds implements Operator.
func (f *Filter) Kinds() []storage.Kind { return f.in.Kinds() }

// BatchHint implements BatchHinter.
func (f *Filter) BatchHint() int {
	if h, ok := f.in.(BatchHinter); ok {
		return h.BatchHint()
	}
	return 0
}

// Split implements Splitter: a filter splits exactly when its input
// does, applying a fresh predicate clone per range.
func (f *Filter) Split(n int) ([]Operator, error) {
	sp, ok := f.in.(Splitter)
	if !ok {
		return nil, nil
	}
	ins, err := sp.Split(n)
	if err != nil || ins == nil {
		return nil, err
	}
	out := make([]Operator, len(ins))
	for i, in := range ins {
		nf, err := NewFilter(in, f.pred)
		if err != nil {
			return nil, err
		}
		out[i] = nf
	}
	return out, nil
}

// Next implements Operator.
func (f *Filter) Next() (*storage.Batch, error) {
	for {
		b, err := f.in.Next()
		if err != nil || b == nil {
			return nil, err
		}
		base, selIn := b.DetachSel()
		sel := expr.EvalSel(f.pred, base, selIn)
		storage.PutSel(selIn)
		if len(sel) == 0 {
			storage.PutSel(sel)
			// No survivors: a pooled input batch dies here.
			storage.PutBatch(base)
			continue
		}
		if len(sel) == base.Len() {
			storage.PutSel(sel)
			return base, nil
		}
		return storage.ViewWithSel(base, sel), nil
	}
}

// Project evaluates scalar expressions into output columns.
type Project struct {
	in    Operator
	names []string
	kinds []storage.Kind
	exprs []expr.Expr
}

// NewProject binds the expressions against the input schema.
func NewProject(in Operator, names []string, exprs []expr.Expr) (*Project, error) {
	p := &Project{in: in, names: names}
	for _, e := range exprs {
		e = expr.Clone(e)
		k, err := e.Bind(in.Names(), in.Kinds())
		if err != nil {
			return nil, err
		}
		p.exprs = append(p.exprs, e)
		p.kinds = append(p.kinds, k)
	}
	return p, nil
}

// Names implements Operator.
func (p *Project) Names() []string { return p.names }

// Kinds implements Operator.
func (p *Project) Kinds() []storage.Kind { return p.kinds }

// BatchHint implements BatchHinter.
func (p *Project) BatchHint() int {
	if h, ok := p.in.(BatchHinter); ok {
		return h.BatchHint()
	}
	return 0
}

// Split implements Splitter: a projection splits exactly when its input
// does, evaluating fresh expression clones per range.
func (p *Project) Split(n int) ([]Operator, error) {
	sp, ok := p.in.(Splitter)
	if !ok {
		return nil, nil
	}
	ins, err := sp.Split(n)
	if err != nil || ins == nil {
		return nil, err
	}
	out := make([]Operator, len(ins))
	for i, in := range ins {
		np, err := NewProject(in, p.names, p.exprs)
		if err != nil {
			return nil, err
		}
		out[i] = np
	}
	return out, nil
}

// Next implements Operator.
func (p *Project) Next() (*storage.Batch, error) {
	b, err := p.in.Next()
	if err != nil || b == nil {
		return nil, err
	}
	b = b.Materialize() // expressions evaluate positionally over contiguous columns
	cols := make([]storage.Column, len(p.exprs))
	for i, e := range p.exprs {
		cols[i] = e.Eval(b)
	}
	// Column references alias input columns into the output (ownership
	// moves downstream with them); input columns the projection dropped
	// are recycled here if pooled.
	storage.PutBatchExcept(b, cols)
	return storage.NewBatch(cols...), nil
}

// Empty is a zero-row operator with a schema; the rewrite of a scan
// over zero selected chunks.
type Empty struct {
	names []string
	kinds []storage.Kind
}

// NewEmpty builds an empty stream with the given schema.
func NewEmpty(names []string, kinds []storage.Kind) *Empty {
	return &Empty{names: names, kinds: kinds}
}

// Names implements Operator.
func (e *Empty) Names() []string { return e.names }

// Kinds implements Operator.
func (e *Empty) Kinds() []storage.Kind { return e.kinds }

// Next implements Operator.
func (e *Empty) Next() (*storage.Batch, error) { return nil, nil }

// IndexScan looks rows up through a hash index and streams the matches:
// the index-scan access path.
type IndexScan struct {
	names []string
	kinds []storage.Kind
	data  *storage.Batch
	rows  []int32
	done  bool
}

// NewIndexScan returns the rows of data (a flattened relation) whose
// key equals k in the given index.
func NewIndexScan(ix *index.HashIndex, data *storage.Batch, names []string, kinds []storage.Kind, k index.Key) *IndexScan {
	return &IndexScan{names: names, kinds: kinds, data: data, rows: ix.Lookup(k)}
}

// Names implements Operator.
func (s *IndexScan) Names() []string { return s.names }

// Kinds implements Operator.
func (s *IndexScan) Kinds() []storage.Kind { return s.kinds }

// BatchHint implements BatchHinter.
func (s *IndexScan) BatchHint() int { return 1 }

// Next implements Operator.
func (s *IndexScan) Next() (*storage.Batch, error) {
	if s.done || len(s.rows) == 0 {
		return nil, nil
	}
	s.done = true
	return s.data.Gather(s.rows), nil
}

// Counted wraps an operator and accumulates the number of rows it
// emits; the executor uses it to annotate plans for EXPLAIN ANALYZE.
type Counted struct {
	in   Operator
	rows *int64
}

// NewCounted wraps in, adding emitted rows to *rows.
func NewCounted(in Operator, rows *int64) *Counted {
	return &Counted{in: in, rows: rows}
}

// Names implements Operator.
func (c *Counted) Names() []string { return c.in.Names() }

// Kinds implements Operator.
func (c *Counted) Kinds() []storage.Kind { return c.in.Kinds() }

// BatchHint implements BatchHinter.
func (c *Counted) BatchHint() int {
	if h, ok := c.in.(BatchHinter); ok {
		return h.BatchHint()
	}
	return 0
}

// Next implements Operator.
func (c *Counted) Next() (*storage.Batch, error) {
	b, err := c.in.Next()
	if b != nil {
		*c.rows += int64(b.Len())
	}
	return b, err
}
