package physical

import (
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

// Alloc-budget regression tests: testing.AllocsPerRun ceilings on the
// hot filter/join/group-by paths, asserted in CI so the pooling
// discipline cannot silently rot. The ceilings carry ~60% headroom over
// the measured steady state (17 / 42 / 185 allocs per op at the time of
// writing) and sit far below the pre-pooling numbers (99 / 308 / 812);
// a regression that reintroduces per-batch or per-group allocation
// blows through them immediately.

const (
	filterAllocBudget  = 35
	joinAllocBudget    = 75
	groupByAllocBudget = 280
)

func allocRel(rows int) (*storage.Relation, []string, []storage.Kind) {
	rel := storage.NewRelation()
	for lo := 0; lo < rows; lo += storage.BatchSize {
		n := min(storage.BatchSize, rows-lo)
		ids := make([]int64, n)
		vals := make([]float64, n)
		for i := range ids {
			ids[i] = int64((lo + i) % 64)
			vals[i] = float64(i%200) - 100
		}
		rel.Append(storage.NewBatch(storage.NewInt64Column(ids), storage.NewFloat64Column(vals)))
	}
	return rel, []string{"D.file_id", "D.val"}, []storage.Kind{storage.KindInt64, storage.KindFloat64}
}

func assertBudget(t *testing.T, name string, budget float64, run func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("alloc counts differ under -race")
	}
	if storage.PoolDebug {
		t.Skip("stack capture per pool checkout skews alloc counts under -tags pooldebug")
	}
	run() // warm the pools outside the measurement
	if got := testing.AllocsPerRun(10, run); got > budget {
		t.Errorf("%s: %.0f allocs/op, budget %.0f — pooling regressed", name, got, budget)
	}
}

func TestFilterAllocBudget(t *testing.T) {
	rel, names, kinds := allocRel(1 << 15)
	pred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0))
	assertBudget(t, "filter scan", filterAllocBudget, func() {
		s, err := NewRelScan(rel, names, kinds, pred)
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunPooled(s)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	})
}

func TestJoinAllocBudget(t *testing.T) {
	dim := storage.NewRelation()
	ids := make([]int64, 64)
	for i := range ids {
		ids[i] = int64(i)
	}
	dim.Append(storage.NewBatch(storage.NewInt64Column(ids)))
	fact, fnames, fkinds := allocRel(1 << 15)
	assertBudget(t, "join probe", joinAllocBudget, func() {
		ds, _ := NewRelScan(dim, []string{"F.file_id"}, []storage.Kind{storage.KindInt64}, nil)
		fs, _ := NewRelScan(fact, fnames, fkinds, nil)
		j, err := NewHashJoin(ds, fs, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunPooled(j)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	})
}

func TestGroupByAllocBudget(t *testing.T) {
	rel, names, kinds := allocRel(1 << 15)
	assertBudget(t, "grouped aggregate", groupByAllocBudget, func() {
		s, _ := NewRelScan(rel, names, kinds, nil)
		agg, err := NewHashAggregate(s, []int{0}, []AggColumn{
			{Func: AggAvg, Arg: expr.Col("D.val"), Name: "avg"},
			{Func: AggStddev, Arg: expr.Col("D.val"), Name: "sd"},
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunPooled(agg)
		if err != nil {
			t.Fatal(err)
		}
		out.Release()
	})
}
