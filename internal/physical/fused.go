package physical

import (
	"fmt"
	"sync/atomic"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

// FusedPipeline is a RelScan → Filter → Project chain compiled into one
// operator: per input batch it evaluates the conjoined scan predicate
// and residual filter through the fused selection kernels, then writes
// the projected output columns of the surviving rows straight into
// pooled output builders — no intermediate batch exchange, no deferred
// selection handed between operators, no per-operator column slices.
// Output batches are coalesced to BatchSize and pooled; a predicate-free
// all-column-reference projection passes the (narrowed) input batches
// through without copying, exactly as the unfused chain would.
//
// The pipeline is split-aware: Split cuts the remaining morsels into
// contiguous ranges served by independent pipelines (sharing the
// zone-skip counter), so morsel-driven parallelism applies to fused
// chains exactly as to bare scans.
type FusedPipeline struct {
	names []string
	kinds []storage.Kind
	// inNames/inKinds describe the (possibly narrowed) scan schema the
	// predicate and projections bind against.
	inNames []string
	inKinds []storage.Kind
	pred    expr.Expr
	morsels []scanMorsel
	bounds  []zoneBound
	pos     int
	srcCols []int
	skipped *atomic.Int64
	// colIdx[i] ≥ 0 names the input column output i passes through;
	// computed outputs carry -1 and evaluate exprs[i].
	colIdx      []int
	exprs       []expr.Expr
	passthrough bool // every output is a bare column reference
	// scratchCols are the input columns the computed expressions
	// reference — the only columns gathered into the selection scratch —
	// and scratchExprs are the computed expressions re-bound against
	// that narrowed scratch schema.
	scratchCols  []int
	scratchExprs []expr.Expr

	builders []storage.Builder
	rows     int
	armed    bool
	// pendingOut is a zero-copy batch to emit after the current fill;
	// pendB/pendSel defer an input whose rows would overflow the fill.
	pendingOut *storage.Batch
	pendB      *storage.Batch
	pendSel    []int32
	pendHas    bool
}

// NewFusedPipeline builds a fused scan/filter/project over the
// concatenation of rels. inNames/inKinds are the scan's (narrowed)
// schema and srcCols its source-column mapping (nil = identity); pred
// is the conjunction of the scan predicate and any residual filter;
// outNames/outExprs define the projection. All output kinds must be
// fixed-width (the planner only fuses such chains).
func NewFusedPipeline(rels []*storage.Relation, inNames []string, inKinds []storage.Kind,
	pred expr.Expr, srcCols []int, outNames []string, outExprs []expr.Expr) (*FusedPipeline, error) {
	s := &FusedPipeline{
		names:   outNames,
		inNames: inNames,
		inKinds: inKinds,
		srcCols: srcCols,
		skipped: new(atomic.Int64),
	}
	for _, rel := range rels {
		for i := range rel.Batches() {
			s.morsels = append(s.morsels, scanMorsel{rel: rel, idx: i})
		}
	}
	if pred != nil {
		pred = expr.Clone(pred)
		if k, err := pred.Bind(inNames, inKinds); err != nil {
			return nil, err
		} else if k != storage.KindBool {
			return nil, fmt.Errorf("physical: fused predicate is %v, not boolean", k)
		}
		s.pred = pred
		s.bounds = zoneBounds(pred, inKinds)
	}
	s.passthrough = true
	for _, e := range outExprs {
		e = expr.Clone(e)
		k, err := e.Bind(inNames, inKinds)
		if err != nil {
			return nil, err
		}
		switch k {
		case storage.KindInt64, storage.KindFloat64, storage.KindBool, storage.KindTime:
		default:
			return nil, fmt.Errorf("physical: fused projection of %v column", k)
		}
		s.kinds = append(s.kinds, k)
		if cr, ok := e.(*expr.ColRef); ok {
			s.colIdx = append(s.colIdx, cr.Idx)
			s.exprs = append(s.exprs, nil)
		} else {
			s.colIdx = append(s.colIdx, -1)
			s.exprs = append(s.exprs, e)
			s.passthrough = false
		}
	}
	if err := s.initScratch(); err != nil {
		return nil, err
	}
	return s, nil
}

// initScratch prepares the narrowed scratch schema for computed
// outputs: the set of input columns their expressions reference, and
// clones of the expressions bound against that subset. Selection
// scratch batches then gather only those columns.
func (s *FusedPipeline) initScratch() error {
	if s.passthrough {
		return nil
	}
	need := make(map[int]bool)
	for _, e := range s.exprs {
		if e == nil {
			continue
		}
		for _, name := range expr.Columns(e) {
			for ci, n := range s.inNames {
				if n == name {
					need[ci] = true
				}
			}
		}
	}
	s.scratchCols = s.scratchCols[:0]
	for ci := range s.inNames {
		if need[ci] {
			s.scratchCols = append(s.scratchCols, ci)
		}
	}
	if len(s.scratchCols) == 0 {
		// A column-free computed expression (constant arithmetic) still
		// needs the scratch batch to carry the survivor count.
		s.scratchCols = []int{0}
	}
	scratchNames := make([]string, len(s.scratchCols))
	scratchKinds := make([]storage.Kind, len(s.scratchCols))
	for k, ci := range s.scratchCols {
		scratchNames[k], scratchKinds[k] = s.inNames[ci], s.inKinds[ci]
	}
	s.scratchExprs = make([]expr.Expr, len(s.exprs))
	for i, e := range s.exprs {
		if e == nil {
			continue
		}
		c := expr.Clone(e)
		if _, err := c.Bind(scratchNames, scratchKinds); err != nil {
			return err
		}
		s.scratchExprs[i] = c
	}
	return nil
}

// Names implements Operator.
func (s *FusedPipeline) Names() []string { return s.names }

// Kinds implements Operator.
func (s *FusedPipeline) Kinds() []storage.Kind { return s.kinds }

// BatchHint implements BatchHinter.
func (s *FusedPipeline) BatchHint() int { return len(s.morsels) }

// Skipped reports zone-pruned batches across every split range.
func (s *FusedPipeline) Skipped() int { return int(s.skipped.Load()) }

// Split implements Splitter, mirroring RelScan.Split: the remaining
// morsels are cut into contiguous ranges, each served by an independent
// pipeline with its own expression clones and builders.
func (s *FusedPipeline) Split(n int) ([]Operator, error) {
	rest := s.morsels[s.pos:]
	ranges := splitRanges(len(rest), n, scanSplitGrain)
	if ranges == nil {
		return nil, nil
	}
	out := make([]Operator, len(ranges))
	for i, r := range ranges {
		child := &FusedPipeline{
			names:   s.names,
			kinds:   s.kinds,
			inNames: s.inNames,
			inKinds: s.inKinds,
			morsels: rest[r[0]:r[1]],
			bounds:  s.bounds,
			srcCols: s.srcCols,
			skipped: s.skipped,
			colIdx:  append([]int(nil), s.colIdx...),

			passthrough: s.passthrough,
		}
		if s.pred != nil {
			p := expr.Clone(s.pred)
			if _, err := p.Bind(s.inNames, s.inKinds); err != nil {
				return nil, err
			}
			child.pred = p
		}
		child.exprs = make([]expr.Expr, len(s.exprs))
		for ei, e := range s.exprs {
			if e == nil {
				continue
			}
			c := expr.Clone(e)
			if _, err := c.Bind(s.inNames, s.inKinds); err != nil {
				return nil, err
			}
			child.exprs[ei] = c
		}
		if err := child.initScratch(); err != nil {
			return nil, err
		}
		out[i] = child
	}
	s.pos = len(s.morsels)
	return out, nil
}

// Next implements Operator.
func (s *FusedPipeline) Next() (*storage.Batch, error) {
	for {
		if s.pendingOut != nil {
			out := s.pendingOut
			s.pendingOut = nil
			return out, nil
		}
		if s.pendHas {
			b, sel := s.pendB, s.pendSel
			s.pendB, s.pendSel, s.pendHas = nil, nil, false
			s.appendRows(b, sel)
			if s.rows >= storage.BatchSize {
				return s.flush(), nil
			}
			continue
		}
		if s.pos >= len(s.morsels) {
			if s.rows > 0 {
				return s.flush(), nil
			}
			return nil, nil
		}
		m := s.morsels[s.pos]
		s.pos++
		if s.pred != nil && pruneMorsel(m, s.bounds, s.srcCols) {
			s.skipped.Add(1)
			continue
		}
		b := m.rel.Batches()[m.idx]
		if s.srcCols != nil {
			cols := make([]storage.Column, len(s.srcCols))
			for i, sc := range s.srcCols {
				cols[i] = b.Cols[sc]
			}
			b = storage.NewBatch(cols...)
		}
		var sel []int32
		if s.pred != nil {
			sel = expr.EvalSel(s.pred, b, nil)
			if len(sel) == 0 {
				storage.PutSel(sel)
				continue
			}
			if len(sel) == b.Len() {
				storage.PutSel(sel)
				sel = nil
			}
		}
		if sel == nil && s.passthrough {
			// Zero-copy: every surviving row of every column passes
			// through — share the input columns, as the unfused chain
			// would have.
			out := s.projectShared(b)
			if s.rows > 0 {
				s.pendingOut = out
				return s.flush(), nil
			}
			return out, nil
		}
		n := b.Len()
		if sel != nil {
			n = len(sel)
		}
		if s.rows > 0 && s.rows+n > storage.BatchSize {
			// Flush the fill first so the builders never re-grow; the
			// current input is deferred to the next call.
			s.pendB, s.pendSel, s.pendHas = b, sel, true
			return s.flush(), nil
		}
		s.appendRows(b, sel)
		if s.rows >= storage.BatchSize {
			return s.flush(), nil
		}
	}
}

// projectShared emits the projection as shared references to the input
// columns (valid only on the passthrough, all-rows path).
func (s *FusedPipeline) projectShared(b *storage.Batch) *storage.Batch {
	cols := make([]storage.Column, len(s.colIdx))
	for i, ci := range s.colIdx {
		cols[i] = b.Cols[ci]
	}
	return storage.NewBatch(cols...)
}

// appendRows folds the selected rows of b into the output builders:
// column references append straight from the input backing arrays;
// computed expressions evaluate over a pooled gather of the survivors.
func (s *FusedPipeline) appendRows(b *storage.Batch, sel []int32) {
	if s.builders == nil {
		s.builders = make([]storage.Builder, len(s.kinds))
		for i, k := range s.kinds {
			s.builders[i] = storage.NewPooledBuilder(k, storage.BatchSize)
		}
	} else if !s.armed {
		for _, bl := range s.builders {
			bl.Reset(storage.BatchSize)
		}
	}
	s.armed = true
	var scratch *storage.Batch
	for i, ci := range s.colIdx {
		if ci >= 0 {
			if sel != nil {
				s.builders[i].AppendSel(b.Cols[ci], sel)
			} else {
				s.builders[i].AppendAll(b.Cols[ci])
			}
			continue
		}
		if sel == nil {
			s.builders[i].AppendAll(s.exprs[i].Eval(b))
			continue
		}
		if scratch == nil {
			// One pooled gather of the survivors — only the columns the
			// computed outputs reference — serves every computed output
			// of this batch.
			cols := make([]storage.Column, len(s.scratchCols))
			for k, ci := range s.scratchCols {
				cols[k] = storage.GatherPooled(b.Cols[ci], sel)
			}
			scratch = storage.NewPooledBatch(cols...)
		}
		s.builders[i].AppendAll(s.scratchExprs[i].Eval(scratch))
	}
	if scratch != nil {
		storage.PutBatch(scratch)
	}
	if sel != nil {
		s.rows += len(sel)
		storage.PutSel(sel)
	} else {
		s.rows += b.Len()
	}
}

// flush emits the accumulated fill as one pooled batch.
func (s *FusedPipeline) flush() *storage.Batch {
	cols := make([]storage.Column, len(s.builders))
	for i, bl := range s.builders {
		cols[i] = bl.Finish()
	}
	s.armed = false
	s.rows = 0
	return storage.NewPooledBatch(cols...)
}
