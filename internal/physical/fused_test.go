package physical

import (
	"math/rand"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

// fusedOutputs are projection shapes over diffRel's fixed-width columns
// (the fused pipeline never carries strings): bare references in
// shuffled order, a duplicated reference, and computed arithmetic.
func fusedOutputs() [][]expr.Expr {
	return [][]expr.Expr{
		{expr.Col("D.val"), expr.Col("D.id")},
		{expr.Col("D.ts"), expr.Col("D.val"), expr.Col("D.id")},
		{expr.Col("D.val"), expr.Col("D.val")},
		{expr.NewArith(expr.Mul, expr.Col("D.val"), expr.Float(2)), expr.Col("D.id")},
		{expr.NewArith(expr.Add, expr.Col("D.id"), expr.Int(10))},
	}
}

// unfusedChain is the reference pipeline: Project over Filter over a
// predicate-free RelScan (the pre-fusion operator composition).
func unfusedChain(t *testing.T, rel *storage.Relation, names []string, kinds []storage.Kind,
	pred expr.Expr, outs []expr.Expr) *storage.Relation {
	t.Helper()
	var op Operator
	s, err := NewRelScan(rel, names, kinds, nil)
	if err != nil {
		t.Fatal(err)
	}
	op = s
	if pred != nil {
		f, err := NewFilter(op, pred)
		if err != nil {
			t.Fatal(err)
		}
		op = f
	}
	outNames := make([]string, len(outs))
	for i := range outs {
		outNames[i] = "c"
	}
	p, err := NewProject(op, outNames, outs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func runFused(t *testing.T, rel *storage.Relation, names []string, kinds []storage.Kind,
	pred expr.Expr, outs []expr.Expr, dop int) *storage.Relation {
	t.Helper()
	outNames := make([]string, len(outs))
	for i := range outs {
		outNames[i] = "c"
	}
	fp, err := NewFusedPipeline([]*storage.Relation{rel}, names, kinds, pred, nil, outNames, outs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParallelDrainPooled(fp, dop, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDifferentialFusedPipeline proves the fused scan→filter→project
// operator row-for-row identical to the unfused chain, across
// predicates (selective, all-pass, all-fail, zone-skipping ranges),
// projection shapes (references, duplicates, arithmetic), serial and
// morsel-parallel drains, and with pooling disabled.
func TestDifferentialFusedPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel, names, kinds := diffRel(rng, 12, 96)
	preds := append(diffPreds(rng), nil) // nil = unpredicated passthrough
	for pi, pred := range preds {
		for oi, outs := range fusedOutputs() {
			want := unfusedChain(t, rel, names, kinds, pred, outs)
			for _, dop := range []int{1, 4} {
				got := runFused(t, rel, names, kinds, pred, outs, dop)
				label := labelOf(pi, oi, dop, true)
				sameRelation(t, got, want, label)
				got.Release()
			}
			storage.SetPooling(false)
			got := runFused(t, rel, names, kinds, pred, outs, 1)
			storage.SetPooling(true)
			sameRelation(t, got, want, labelOf(pi, oi, 1, false))
		}
	}
}

func labelOf(pi, oi, dop int, pooled bool) string {
	l := "fused pred " + string(rune('0'+pi)) + " outs " + string(rune('0'+oi))
	if dop > 1 {
		l += " parallel"
	}
	if !pooled {
		l += " unpooled"
	}
	return l
}

// TestFusedPipelineZoneSkip asserts the fused pipeline prunes the same
// batches the bare scan prunes: disjoint per-batch time ranges and a
// one-batch window predicate.
func TestFusedPipelineZoneSkip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rel, names, kinds := diffRel(rng, 10, 64)
	rel.Zone(0, 0) // warm the cache
	pred := expr.NewAnd(
		expr.NewCmp(expr.GE, expr.Col("D.ts"), expr.Time(300)),
		expr.NewCmp(expr.LT, expr.Col("D.ts"), expr.Time(400)))
	outs := []expr.Expr{expr.Col("D.ts"), expr.Col("D.val")}
	fp, err := NewFusedPipeline([]*storage.Relation{rel}, names, kinds, pred, nil,
		[]string{"ts", "val"}, outs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunPooled(fp)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Release()
	want := unfusedChain(t, rel, names, kinds, pred, outs)
	sameRelation(t, out, want, "zone-skip fused")
	if fp.Skipped() == 0 {
		t.Fatalf("fused pipeline skipped no batches over disjoint time ranges")
	}
}

// TestLimitDisownsPooledTruncation pins Limit's ownership behaviour:
// truncating a pooled batch takes it out of pool accounting (the
// sliced views share its storage), so the outstanding gauge returns to
// baseline once the result is dropped.
func TestLimitDisownsPooledTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rel, names, kinds := diffRel(rng, 8, 512)
	pred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0))
	outs := []expr.Expr{expr.Col("D.val"), expr.Col("D.ts")}
	fp, err := NewFusedPipeline([]*storage.Relation{rel}, names, kinds, pred, nil,
		[]string{"v", "ts"}, outs)
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunPooled(NewLimit(fp, 5))
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 5 {
		t.Fatalf("limit emitted %d rows, want 5", out.Rows())
	}
	out.Release()
	storage.RequireNoLeaks(t)
}

// TestFusedPipelineNarrowed exercises the source-column mapping of a
// pruned scan: the fused pipeline reads a narrowed schema while zone
// pruning still consults the source relation through the mapping.
func TestFusedPipelineNarrowed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel, names, kinds := diffRel(rng, 8, 80)
	// Narrow to (ts, val): source columns 1 and 2.
	srcCols := []int{1, 2}
	nNames := []string{names[1], names[2]}
	nKinds := []storage.Kind{kinds[1], kinds[2]}
	pred := expr.NewAnd(
		expr.NewCmp(expr.GE, expr.Col("D.ts"), expr.Time(200)),
		expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(0)))
	outs := []expr.Expr{expr.NewArith(expr.Mul, expr.Col("D.val"), expr.Float(3)), expr.Col("D.ts")}

	fp, err := NewFusedPipeline([]*storage.Relation{rel}, nNames, nKinds, pred, srcCols,
		[]string{"v", "ts"}, outs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunPooled(fp)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()

	// Reference: narrowed scan (shared-column mapping) then filter then
	// project.
	s, err := NewMultiRelScanCols([]*storage.Relation{rel}, nNames, nKinds, nil, srcCols)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(s, pred)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProject(f, []string{"v", "ts"}, outs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	sameRelation(t, got, want, "narrowed fused")
}
