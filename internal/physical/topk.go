package physical

import (
	"fmt"
	"sort"

	"sommelier/internal/storage"
)

// TopK emits the first n rows of its input under the sort keys: the
// fused execution of ORDER BY + LIMIT produced by the topk optimizer
// rule. Unlike Sort (which materializes the whole input before
// ordering it), TopK keeps a bounded candidate buffer of at most
// ~2n rows per morsel range: each incoming batch is filtered against
// the current n-th best row, survivors are copied into the buffer, and
// the buffer is compacted back to n rows by a stable partial sort
// whenever it doubles. The result is row-for-row identical — including
// the order of key ties — to Sort followed by Limit, at O(n) memory
// instead of O(input).
type TopK struct {
	in    Operator
	keys  []SortKey
	n     int
	dop   int
	check func() error
	done  bool
}

// NewTopK validates the key positions, as NewSort does.
func NewTopK(in Operator, keys []SortKey, n int) (*TopK, error) {
	if n < 0 {
		return nil, fmt.Errorf("physical: negative top-k limit %d", n)
	}
	for _, k := range keys {
		if k.Col < 0 || k.Col >= len(in.Names()) {
			return nil, fmt.Errorf("physical: top-k key %d out of range", k.Col)
		}
		switch in.Kinds()[k.Col] {
		case storage.KindInt64, storage.KindTime, storage.KindFloat64, storage.KindString:
		default:
			return nil, fmt.Errorf("physical: cannot order on %v", in.Kinds()[k.Col])
		}
	}
	return &TopK{in: in, keys: keys, n: n}, nil
}

// SetParallel implements ParallelHinter: morsel ranges of a splittable
// input are folded into per-range candidate buffers by up to dop
// workers, merged in range order.
func (t *TopK) SetParallel(dop int) { t.dop = dop }

// SetCheck implements CheckHinter: the candidate accumulation drains
// the whole input, so the deadline check runs per claimed range and
// per pulled batch.
func (t *TopK) SetCheck(check func() error) { t.check = check }

// Names implements Operator.
func (t *TopK) Names() []string { return t.in.Names() }

// Kinds implements Operator.
func (t *TopK) Kinds() []storage.Kind { return t.in.Kinds() }

// BatchHint implements BatchHinter.
func (t *TopK) BatchHint() int { return 1 }

// Next implements Operator.
func (t *TopK) Next() (*storage.Batch, error) {
	if t.done {
		return nil, nil
	}
	t.done = true
	if t.n == 0 {
		return nil, nil
	}
	var parts []Operator
	if t.dop > 1 {
		if sp, ok := t.in.(Splitter); ok {
			var err error
			parts, err = sp.Split(t.dop * morselFanout)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(parts) == 0 {
		parts = []Operator{t.in}
	}
	accs := make([]*topkAcc, len(parts))
	err := runParts(len(parts), t.dop, t.check, func(i int) error {
		acc := newTopkAcc(t.keys, t.n)
		if err := acc.feed(parts[i], t.check); err != nil {
			return err
		}
		accs[i] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Merge the per-range winners in range order: ranges partition the
	// input in serial order, and the stable compaction sort keeps
	// earlier rows first among key ties, so the merged result carries
	// exactly the ties Sort+Limit would keep, in the same order.
	merged := newTopkAcc(t.keys, t.n)
	for _, acc := range accs {
		if b := acc.result(); b != nil {
			merged.appendCandidates(b)
		}
	}
	merged.compact()
	out := merged.result()
	if out == nil || out.Len() == 0 {
		return nil, nil
	}
	return out, nil
}

// topkAcc is one bounded candidate buffer: rows that may still be
// among the first k under the keys. Candidates are stored as unpooled
// copies (the O(k) working set of the operator), so incoming pooled
// batches are recycled immediately after filtering.
type topkAcc struct {
	keys []SortKey
	k    int
	buf  *storage.Relation
	// thresh is the current k-th best row — row threshRow of the last
	// compacted batch — once at least k candidates have been seen. A
	// later row can only displace it with strictly smaller keys (any
	// tie loses to the earlier arrival), so batches are pre-filtered
	// against it.
	thresh    *storage.Batch
	threshRow int
	// scratch is the reusable survivor-index buffer of add.
	scratch []int32
}

func newTopkAcc(keys []SortKey, k int) *topkAcc {
	return &topkAcc{keys: keys, k: k, buf: storage.NewRelation()}
}

// compactAt is the buffer size that triggers compaction, relative to
// k: the usual doubling trade between sort frequency and memory.
func (a *topkAcc) compactAt() int {
	at := 2 * a.k
	if at < storage.BatchSize {
		at = storage.BatchSize
	}
	return at
}

// feed consumes op to exhaustion, consulting check (may be nil)
// before every pull.
func (a *topkAcc) feed(op Operator, check func() error) error {
	for {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		b, err := op.Next()
		if err != nil {
			return err
		}
		if b == nil {
			a.compact()
			return nil
		}
		a.add(b)
	}
}

// add filters one input batch against the threshold, copies the
// surviving rows into the buffer, and recycles the input.
func (a *topkAcc) add(b *storage.Batch) {
	base, sel := b.DetachSel()
	n := base.Len()
	if sel != nil {
		n = len(sel)
	}
	idx := a.scratch[:0]
	for i := 0; i < n; i++ {
		r := i
		if sel != nil {
			r = int(sel[i])
		}
		if a.thresh != nil && a.cmpRows(base, r, a.thresh, a.threshRow) >= 0 {
			continue
		}
		idx = append(idx, int32(r))
	}
	a.scratch = idx[:0]
	if len(idx) > 0 {
		a.buf.Append(base.Gather(idx))
	}
	storage.PutSel(sel)
	storage.PutBatch(base)
	if a.buf.Rows() >= a.compactAt() {
		a.compact()
	}
}

// appendCandidates adds already-copied rows (a finished accumulator's
// result) without filtering; the merge path.
func (a *topkAcc) appendCandidates(b *storage.Batch) {
	a.buf.Append(b)
}

// compact sorts the buffer stably by the keys and keeps the first k
// rows. Stability carries the arrival order of key ties through every
// compaction: the buffer is always a key-sorted sequence whose ties
// are in arrival order, and newly appended rows arrive later than
// everything already buffered, so repeated stable sorts preserve the
// global first-k-ties-win semantics of Sort+Limit.
func (a *topkAcc) compact() {
	if a.buf.Rows() == 0 {
		return
	}
	flat := a.buf.Flatten()
	idx := make([]int32, flat.Len())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(x, y int) bool {
		for _, k := range a.keys {
			c := cmpAt(flat.Cols[k.Col], int(idx[x]), int(idx[y]))
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if len(idx) > a.k {
		idx = idx[:a.k]
	}
	top := flat.Gather(idx)
	a.buf = storage.NewRelation()
	a.buf.Append(top)
	if top.Len() >= a.k {
		a.thresh, a.threshRow = top, a.k-1
	}
}

// result returns the compacted candidates (at most k rows, ordered),
// nil when empty. Valid only after feed/compact.
func (a *topkAcc) result() *storage.Batch {
	if a.buf.Rows() == 0 {
		return nil
	}
	return a.buf.Batches()[0]
}

// cmpRows orders row ra of a against row rb of b under the keys,
// ascending/descending applied per key: <0 when the a-row sorts first.
func (a *topkAcc) cmpRows(ba *storage.Batch, ra int, bb *storage.Batch, rb int) int {
	for _, k := range a.keys {
		c := cmpColsAt(ba.Cols[k.Col], ra, bb.Cols[k.Col], rb)
		if c == 0 {
			continue
		}
		if k.Desc {
			return -c
		}
		return c
	}
	return 0
}

// cmpColsAt compares position ai of column a with position bi of
// column b; the two columns hold the same kind (same output schema).
func cmpColsAt(a storage.Column, ai int, b storage.Column, bi int) int {
	switch ac := a.(type) {
	case *storage.Int64Column:
		return cmpOrd(ac.Value(ai), b.(*storage.Int64Column).Value(bi))
	case *storage.TimeColumn:
		return cmpOrd(ac.Value(ai), b.(*storage.TimeColumn).Value(bi))
	case *storage.Float64Column:
		return cmpOrd(ac.Value(ai), b.(*storage.Float64Column).Value(bi))
	case *storage.StringColumn:
		return cmpOrd(ac.Value(ai), b.(*storage.StringColumn).Value(bi))
	default:
		panic(fmt.Sprintf("physical: cmpColsAt on %T", a))
	}
}
