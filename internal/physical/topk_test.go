package physical

// Differential tests for the bounded top-k operator: TopK must be
// row-for-row identical to Sort followed by Limit — including the
// order of key ties, which stability guarantees — on randomized
// inputs, at every degree of parallelism, for ascending and descending
// keys, multi-key orders, k larger than the input, and k = 0.

import (
	"math/rand"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

// TestTopKMatchesSortLimit is the core differential against the
// operator pair the topk optimizer rule replaces.
func TestTopKMatchesSortLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	rel, names, kinds := diffRel(rng, 24, 256)
	empty := storage.NewRelation()
	keySets := [][]SortKey{
		{{Col: 1}},                       // ts asc
		{{Col: 2, Desc: true}},           // val desc
		{{Col: 3}, {Col: 2, Desc: true}}, // station asc, val desc
		{{Col: 0}, {Col: 1, Desc: true}}, // id asc (heavy ties), ts desc
		{{Col: 0}},                       // id alone: almost all ties
		{{Col: 3, Desc: true}, {Col: 0}}, // station desc, id asc
	}
	for _, r := range []*storage.Relation{rel, empty} {
		for ki, keys := range keySets {
			for _, n := range []int{0, 1, 7, 100, 1000, 10000} {
				srt, err := NewSort(mustScan(t, r, names, kinds), keys)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(NewLimit(srt, n))
				if err != nil {
					t.Fatal(err)
				}
				for _, dop := range []int{1, 2, 4, 8} {
					tk, err := NewTopK(mustScan(t, r, names, kinds), keys, n)
					if err != nil {
						t.Fatal(err)
					}
					tk.SetParallel(dop)
					got, err := Run(tk)
					if err != nil {
						t.Fatal(err)
					}
					sameRelation(t, got, want, // labels: key-set index, k, dop
						"topk keys#"+itoa(ki)+" n="+itoa(n)+" dop="+itoa(dop))
				}
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestTopKRecyclesPooledInput feeds TopK from a fused pipeline (a
// pooled-batch producer): the candidate filter must recycle every
// input batch, leaving the pool gauge at baseline — TopK's output is
// plain copied storage.
func TestTopKRecyclesPooledInput(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	rel, names, kinds := diffRel(rng, 16, 256)
	pred := expr.NewCmp(expr.GT, expr.Col("D.val"), expr.Float(-50))
	outs := []expr.Expr{expr.Col("D.val"), expr.Col("D.ts")}
	build := func() Operator {
		fp, err := NewFusedPipeline([]*storage.Relation{rel}, names, kinds, pred, nil,
			[]string{"v", "ts"}, outs)
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}
	srt, err := NewSort(build(), []SortKey{{Col: 0, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(NewLimit(srt, 25))
	if err != nil {
		t.Fatal(err)
	}
	for _, dop := range []int{1, 4} {
		tk, err := NewTopK(build(), []SortKey{{Col: 0, Desc: true}}, 25)
		if err != nil {
			t.Fatal(err)
		}
		tk.SetParallel(dop)
		got, err := Run(tk)
		if err != nil {
			t.Fatal(err)
		}
		sameRelation(t, got, want, "pooled topk")
		storage.RequireNoLeaks(t)
	}
}
