package physical

import (
	"math"
	"math/rand"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/index"
	"sommelier/internal/storage"
)

func relOf(batches ...*storage.Batch) *storage.Relation {
	r := storage.NewRelation()
	for _, b := range batches {
		r.Append(b)
	}
	return r
}

func metaRel() (*storage.Relation, []string, []storage.Kind) {
	b := storage.NewBatch(
		storage.NewInt64Column([]int64{1, 2, 3}),
		storage.NewStringColumn([]string{"ISK", "FIAM", "ISK"}),
	)
	return relOf(b), []string{"F.file_id", "F.station"}, []storage.Kind{storage.KindInt64, storage.KindString}
}

func dataRel() (*storage.Relation, []string, []storage.Kind) {
	b1 := storage.NewBatch(
		storage.NewInt64Column([]int64{1, 1, 2}),
		storage.NewFloat64Column([]float64{10, 20, 30}),
	)
	b2 := storage.NewBatch(
		storage.NewInt64Column([]int64{3, 3}),
		storage.NewFloat64Column([]float64{40, 50}),
	)
	return relOf(b1, b2), []string{"D.file_id", "D.val"}, []storage.Kind{storage.KindInt64, storage.KindFloat64}
}

func TestRelScan(t *testing.T) {
	rel, names, kinds := metaRel()
	s, err := NewRelScan(rel, names, kinds, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("rows = %d", out.Rows())
	}
}

func TestRelScanWithPredicate(t *testing.T) {
	rel, names, kinds := metaRel()
	pred := expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str("ISK"))
	s, err := NewRelScan(rel, names, kinds, pred)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("rows = %d", out.Rows())
	}
	// Scan predicates must not mutate the caller's expression: the
	// original is still unbound.
	if _, err := NewRelScan(rel, names, kinds, pred); err != nil {
		t.Fatalf("rebinding: %v", err)
	}
	// Non-boolean predicate rejected.
	if _, err := NewRelScan(rel, names, kinds, expr.Col("F.file_id")); err == nil {
		t.Fatal("non-boolean predicate accepted")
	}
}

func TestFilter(t *testing.T) {
	rel, names, kinds := dataRel()
	s, _ := NewRelScan(rel, names, kinds, nil)
	f, err := NewFilter(s, expr.NewCmp(expr.GE, expr.Col("D.val"), expr.Float(30)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(f)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 3 {
		t.Fatalf("rows = %d", out.Rows())
	}
}

func TestProject(t *testing.T) {
	rel, names, kinds := dataRel()
	s, _ := NewRelScan(rel, names, kinds, nil)
	p, err := NewProject(s, []string{"double"}, []expr.Expr{
		expr.NewArith(expr.Mul, expr.Col("D.val"), expr.Float(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	flat := out.Flatten()
	if flat.Width() != 1 || flat.Len() != 5 {
		t.Fatalf("shape = %dx%d", flat.Width(), flat.Len())
	}
	if got := storage.Float64s(flat.Cols[0])[0]; got != 20 {
		t.Fatalf("first = %v", got)
	}
	if p.Names()[0] != "double" {
		t.Fatal("name lost")
	}
}

func TestHashJoin(t *testing.T) {
	mrel, mnames, mkinds := metaRel()
	drel, dnames, dkinds := dataRel()
	ms, _ := NewRelScan(mrel, mnames, mkinds, nil)
	ds, _ := NewRelScan(drel, dnames, dkinds, nil)
	j, err := NewHashJoin(ms, ds, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Release()
	if out.Rows() != 5 {
		t.Fatalf("rows = %d", out.Rows())
	}
	flat := out.Flatten()
	if flat.Width() != 4 {
		t.Fatalf("width = %d", flat.Width())
	}
	// Every output row must satisfy the join condition.
	l := storage.Int64s(flat.Cols[0])
	r := storage.Int64s(flat.Cols[2])
	for i := range l {
		if l[i] != r[i] {
			t.Fatalf("row %d: %d != %d", i, l[i], r[i])
		}
	}
}

func TestHashJoinEmptyBuild(t *testing.T) {
	mrel := storage.NewRelation()
	drel, dnames, dkinds := dataRel()
	ms, _ := NewRelScan(mrel, []string{"F.file_id"}, []storage.Kind{storage.KindInt64}, nil)
	ds, _ := NewRelScan(drel, dnames, dkinds, nil)
	j, err := NewHashJoin(ms, ds, []int{0}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 0 {
		t.Fatalf("rows = %d", out.Rows())
	}
}

func TestHashJoinValidation(t *testing.T) {
	mrel, mnames, mkinds := metaRel()
	ms, _ := NewRelScan(mrel, mnames, mkinds, nil)
	ms2, _ := NewRelScan(mrel, mnames, mkinds, nil)
	if _, err := NewHashJoin(ms, ms2, []int{0}, []int{}); err == nil {
		t.Fatal("mismatched key lists accepted")
	}
	if _, err := NewHashJoin(ms, ms2, []int{1}, []int{0}); err == nil {
		t.Fatal("string-int join accepted")
	}
}

func TestCrossJoin(t *testing.T) {
	mrel, mnames, mkinds := metaRel()
	drel, dnames, dkinds := dataRel()
	ms, _ := NewRelScan(mrel, mnames, mkinds, nil)
	ds, _ := NewRelScan(drel, dnames, dkinds, nil)
	c := NewCrossJoin(ms, ds)
	out, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 15 { // 3 × 5
		t.Fatalf("rows = %d", out.Rows())
	}
}

func TestMultiRelScan(t *testing.T) {
	// The union of several relations (a query's selected chunks) is one
	// scan whose batch list concatenates them in slice order.
	rel1, names, kinds := dataRel()
	rel2, _, _ := dataRel()
	s, err := NewMultiRelScan([]*storage.Relation{rel1, rel2}, names, kinds, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 10 {
		t.Fatalf("rows = %d", out.Rows())
	}
}

func TestEmpty(t *testing.T) {
	e := NewEmpty([]string{"a"}, []storage.Kind{storage.KindInt64})
	out, err := Run(e)
	if err != nil || out.Rows() != 0 {
		t.Fatalf("empty: %v %d", err, out.Rows())
	}
}

func TestIndexScan(t *testing.T) {
	rel, names, kinds := metaRel()
	flat := rel.Flatten()
	ix, err := index.BuildHash(flat, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	s := NewIndexScan(ix, flat, names, kinds, index.Key{S0: "ISK"})
	out, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != 2 {
		t.Fatalf("rows = %d", out.Rows())
	}
	s2 := NewIndexScan(ix, flat, names, kinds, index.Key{S0: "absent"})
	out2, _ := Run(s2)
	if out2.Rows() != 0 {
		t.Fatal("phantom rows")
	}
}

func TestGlobalAggregates(t *testing.T) {
	rel, names, kinds := dataRel()
	s, _ := NewRelScan(rel, names, kinds, nil)
	agg, err := NewHashAggregate(s, nil, []AggColumn{
		{Func: AggCount, Name: "n"},
		{Func: AggSum, Arg: expr.Col("D.val"), Name: "sum"},
		{Func: AggAvg, Arg: expr.Col("D.val"), Name: "avg"},
		{Func: AggMin, Arg: expr.Col("D.val"), Name: "min"},
		{Func: AggMax, Arg: expr.Col("D.val"), Name: "max"},
		{Func: AggStddev, Arg: expr.Col("D.val"), Name: "sd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	flat := out.Flatten()
	if flat.Len() != 1 {
		t.Fatalf("groups = %d", flat.Len())
	}
	if n := storage.Int64s(flat.Cols[0])[0]; n != 5 {
		t.Fatalf("count = %d", n)
	}
	if sum := storage.Float64s(flat.Cols[1])[0]; sum != 150 {
		t.Fatalf("sum = %v", sum)
	}
	if avg := storage.Float64s(flat.Cols[2])[0]; avg != 30 {
		t.Fatalf("avg = %v", avg)
	}
	if mn := storage.Float64s(flat.Cols[3])[0]; mn != 10 {
		t.Fatalf("min = %v", mn)
	}
	if mx := storage.Float64s(flat.Cols[4])[0]; mx != 50 {
		t.Fatalf("max = %v", mx)
	}
	// Sample stddev of {10..50 step 10} = sqrt(250) ≈ 15.811.
	if sd := storage.Float64s(flat.Cols[5])[0]; math.Abs(sd-math.Sqrt(250)) > 1e-9 {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestGroupedAggregate(t *testing.T) {
	rel, names, kinds := dataRel()
	s, _ := NewRelScan(rel, names, kinds, nil)
	agg, err := NewHashAggregate(s, []int{0}, []AggColumn{
		{Func: AggCount, Name: "n"},
		{Func: AggSum, Arg: expr.Col("D.file_id"), Name: "isum"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	flat := out.Flatten()
	if flat.Len() != 3 {
		t.Fatalf("groups = %d", flat.Len())
	}
	// Groups are emitted in key order: 1, 2, 3.
	ids := storage.Int64s(flat.Cols[0])
	ns := storage.Int64s(flat.Cols[1])
	sums := storage.Int64s(flat.Cols[2])
	wantN := map[int64]int64{1: 2, 2: 1, 3: 2}
	for i, id := range ids {
		if ns[i] != wantN[id] {
			t.Fatalf("group %d count = %d", id, ns[i])
		}
		if sums[i] != id*wantN[id] {
			t.Fatalf("group %d int sum = %d", id, sums[i])
		}
	}
	if ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("group order = %v", ids)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := NewEmpty([]string{"v"}, []storage.Kind{storage.KindFloat64})
	agg, err := NewHashAggregate(e, nil, []AggColumn{
		{Func: AggCount, Name: "n"},
		{Func: AggStddev, Arg: expr.Col("v"), Name: "sd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(agg)
	if err != nil {
		t.Fatal(err)
	}
	flat := out.Flatten()
	if flat.Len() != 1 {
		t.Fatal("global aggregate over empty input must emit one row")
	}
	if n := storage.Int64s(flat.Cols[0])[0]; n != 0 {
		t.Fatalf("count = %d", n)
	}
	// Grouped aggregate over empty input emits nothing.
	e2 := NewEmpty([]string{"g", "v"}, []storage.Kind{storage.KindInt64, storage.KindFloat64})
	agg2, _ := NewHashAggregate(e2, []int{0}, []AggColumn{{Func: AggCount, Name: "n"}})
	out2, _ := Run(agg2)
	if out2.Rows() != 0 {
		t.Fatal("grouped aggregate over empty input must emit no rows")
	}
}

func TestAggregateValidation(t *testing.T) {
	rel, names, kinds := metaRel()
	s, _ := NewRelScan(rel, names, kinds, nil)
	if _, err := NewHashAggregate(s, nil, []AggColumn{{Func: AggSum, Name: "x"}}); err == nil {
		t.Fatal("SUM without argument accepted")
	}
	s2, _ := NewRelScan(rel, names, kinds, nil)
	if _, err := NewHashAggregate(s2, nil, []AggColumn{{Func: AggSum, Arg: expr.Col("F.station"), Name: "x"}}); err == nil {
		t.Fatal("SUM over string accepted")
	}
	s3, _ := NewRelScan(rel, names, kinds, nil)
	if _, err := NewHashAggregate(s3, []int{9}, nil); err == nil {
		t.Fatal("out-of-range group column accepted")
	}
}

func TestSortAndLimit(t *testing.T) {
	rel, names, kinds := dataRel()
	s, _ := NewRelScan(rel, names, kinds, nil)
	srt, err := NewSort(s, []SortKey{{Col: 1, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	lim := NewLimit(srt, 2)
	out, err := Run(lim)
	if err != nil {
		t.Fatal(err)
	}
	flat := out.Flatten()
	if flat.Len() != 2 {
		t.Fatalf("rows = %d", flat.Len())
	}
	vals := storage.Float64s(flat.Cols[1])
	if vals[0] != 50 || vals[1] != 40 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestSortMultiKeyStability(t *testing.T) {
	b := storage.NewBatch(
		storage.NewStringColumn([]string{"b", "a", "b", "a"}),
		storage.NewInt64Column([]int64{1, 2, 0, 1}),
	)
	s, _ := NewRelScan(relOf(b), []string{"s", "i"}, []storage.Kind{storage.KindString, storage.KindInt64}, nil)
	srt, err := NewSort(s, []SortKey{{Col: 0}, {Col: 1, Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Run(srt)
	flat := out.Flatten()
	ss := flat.Cols[0].(*storage.StringColumn)
	is := storage.Int64s(flat.Cols[1])
	want := []struct {
		s string
		i int64
	}{{"a", 2}, {"a", 1}, {"b", 1}, {"b", 0}}
	for r, w := range want {
		if ss.Value(r) != w.s || is[r] != w.i {
			t.Fatalf("row %d = (%s,%d), want %+v", r, ss.Value(r), is[r], w)
		}
	}
}

func TestSortValidation(t *testing.T) {
	rel, names, kinds := dataRel()
	s, _ := NewRelScan(rel, names, kinds, nil)
	if _, err := NewSort(s, []SortKey{{Col: 5}}); err == nil {
		t.Fatal("out-of-range sort key accepted")
	}
}

// Property: hash join agrees with a nested-loop oracle on random data.
func TestQuickHashJoinOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nl, nr := rng.Intn(40), rng.Intn(40)
		lk := make([]int64, nl)
		rk := make([]int64, nr)
		for i := range lk {
			lk[i] = int64(rng.Intn(10))
		}
		for i := range rk {
			rk[i] = int64(rng.Intn(10))
		}
		names := []string{"k"}
		kinds := []storage.Kind{storage.KindInt64}
		ls, _ := NewRelScan(relOf(storage.NewBatch(storage.NewInt64Column(lk))), names, kinds, nil)
		rs, _ := NewRelScan(relOf(storage.NewBatch(storage.NewInt64Column(rk))), []string{"k2"}, kinds, nil)
		j, err := NewHashJoin(ls, rs, []int{0}, []int{0})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(j)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, a := range lk {
			for _, b := range rk {
				if a == b {
					want++
				}
			}
		}
		if out.Rows() != want {
			t.Fatalf("trial %d: join rows = %d, want %d", trial, out.Rows(), want)
		}
		out.Release()
	}
	storage.RequireNoLeaks(t)
}

// Property: Welford stddev matches the two-pass oracle.
func TestQuickStddevOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100) + 2
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 1000
		}
		s, _ := NewRelScan(relOf(storage.NewBatch(storage.NewFloat64Column(vals))),
			[]string{"v"}, []storage.Kind{storage.KindFloat64}, nil)
		agg, _ := NewHashAggregate(s, nil, []AggColumn{{Func: AggStddev, Arg: expr.Col("v"), Name: "sd"}})
		out, err := Run(agg)
		if err != nil {
			t.Fatal(err)
		}
		got := storage.Float64s(out.Flatten().Cols[0])[0]
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		mean /= float64(n)
		ss := 0.0
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		want := math.Sqrt(ss / float64(n-1))
		if math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("trial %d: stddev %v, want %v", trial, got, want)
		}
	}
}
