package physical

import (
	"errors"
	"sync"
	"sync/atomic"

	"sommelier/internal/storage"
)

// This file implements the streaming drain: instead of coalescing an
// operator's output into a full relation, batches are delivered
// incrementally to a StreamSink as they are produced. Only pipeline
// breakers (sort, aggregation, the join build side) still materialize;
// everything above them — scans, filters, projections, fused
// pipelines, the join probe side — flows through with bounded memory,
// so a query's resident footprint is independent of its result
// cardinality and the first row reaches the sink long before the last
// one is computed.

// StreamSink receives the batches of a streaming drain, in result
// order. Push takes ownership of the batch — even when it returns an
// error — and recycles it via storage.PutBatch once the rows are
// consumed (or retains it; disowning is the sink's call). The data a
// pushed batch references is only guaranteed valid until the streaming
// call that drove the push returns: sinks that outlive the query must
// copy or serialize rows before returning from Push.
//
// Returning ErrStopStream stops the stream gracefully: the drain stops
// pulling (the cancellation propagates down to the morsel cursor, so
// scan work not yet claimed is never done) and the streaming call
// reports success. Any other error aborts the query with that error.
type StreamSink interface {
	Push(b *storage.Batch) error
}

// ErrStopStream is returned by a StreamSink to end the stream early
// without error: the client has all the rows it wants.
var ErrStopStream = errors.New("physical: stop stream")

// SchemaSink is optionally implemented by sinks that need the output
// schema before the first batch — wire encoders writing a header.
// SetSchema runs once, before execution begins; a zero-row query sees
// SetSchema and then no Push at all.
type SchemaSink interface {
	StreamSink
	SetSchema(names []string, kinds []storage.Kind)
}

// StreamOpts configures StreamWith, zero value = serial, unpooled,
// unchecked, unmetered.
type StreamOpts struct {
	// DOP grants the drain up to this many workers when the operator
	// can split its work (<=1 streams serially on the caller).
	DOP int
	// Check runs before every pull, as in Drain.
	Check func() error
	// Pooled draws coalesced output batches from the batch pool; they
	// reach the sink pooled, and the sink recycles them.
	Pooled bool
	// Quota, when non-nil, is charged for the bounded run-ahead buffers
	// of the parallel drain (refunded as batches are delivered).
	Quota *storage.Quota
	// Morsel, when non-nil, runs once per morsel-range claim (and once
	// up front on the serial path), as in DrainOpts.Morsel: the
	// watchdog/fault hook of the streaming drain.
	Morsel func() error
}

// Stream drains op serially into sink with unpooled output; the
// streaming analogue of Run. See StreamWith.
func Stream(op Operator, sink StreamSink, check func() error) error {
	return StreamWith(op, sink, StreamOpts{Check: check})
}

// StreamWith drains op to completion into sink. With DOP > 1 and a
// splittable operator, morsel ranges are drained by a worker pool into
// per-range buffers and delivered to the sink in range order — the
// rows reach the sink in exactly the serial order, only batch
// boundaries may differ. Delivery is the pacing mechanism: a worker
// may run at most a bounded number of ranges ahead of the delivery
// frontier, so a slow (or backpressured) sink suspends the scan
// instead of buffering the result.
func StreamWith(op Operator, sink StreamSink, o StreamOpts) error {
	if o.DOP > 1 {
		if sp, ok := op.(Splitter); ok {
			parts, err := sp.Split(o.DOP * morselFanout)
			if err != nil {
				return err
			}
			if len(parts) > 1 {
				return streamParts(parts, o.DOP, sink, o)
			}
			if len(parts) == 1 {
				op = parts[0]
			}
		}
	}
	if err := claimCheck(o.Morsel); err != nil {
		return err
	}
	return streamInto(op, sink, o.Check, o.Pooled)
}

// streamInto is the serial streaming drain: the drainInto loop with
// sink delivery in place of relation appends. The coalescer borrows a
// scratch relation; completed batches are taken out of it and pushed
// as soon as they form, so at most one batch's worth of rows is
// buffered at any time.
func streamInto(op Operator, sink StreamSink, check func() error, pooled bool) error {
	var coal *storage.Coalescer
	if pooled {
		coal = storage.NewPooledCoalescer(op.Kinds())
	} else {
		coal = storage.NewCoalescer(op.Kinds())
	}
	scratch := storage.NewRelation()
	// deliver pushes everything buffered in scratch. The batch being
	// pushed is owned by the sink from the moment Push is called; on an
	// error only the batches not yet pushed are recycled here.
	deliver := func() error {
		for _, b := range scratch.TakeBatches() {
			if err := sink.Push(b); err != nil {
				return err
			}
		}
		return nil
	}
	// dispose recycles rows still buffered after an early exit: the
	// coalescer's builders are flushed into scratch and recycled along
	// with anything undelivered.
	dispose := func() {
		coal.Flush(scratch)
		for _, b := range scratch.TakeBatches() {
			storage.PutBatch(b)
		}
	}
	for {
		if check != nil {
			if err := check(); err != nil {
				dispose()
				return err
			}
		}
		b, err := op.Next()
		if err != nil {
			dispose()
			return err
		}
		if b == nil {
			coal.Flush(scratch)
			if err := deliver(); err != nil && err != ErrStopStream {
				dispose()
				return err
			}
			return nil
		}
		if coal.Eligible(b) {
			coal.Add(scratch, b)
		} else {
			coal.Flush(scratch)
			scratch.Append(b)
		}
		if err := deliver(); err != nil {
			dispose()
			if err == ErrStopStream {
				// A graceful sink stop ends the stream as a success.
				return nil
			}
			return err
		}
	}
}

// streamParts drains split ranges on a pool of dop workers and
// delivers the per-range buffers to the sink in range order. The
// delivery frontier gates the morsel cursor: a part is only claimed
// when it is within runAheadWindow ranges of the next undelivered one,
// so sink backpressure (a blocked Push) suspends scanning, and a sink
// stop (ErrStopStream) stops the remaining ranges from ever being
// claimed — the sink-driven cancellation path of LIMIT queries.
func streamParts(parts []Operator, dop int, sink StreamSink, o StreamOpts) error {
	check, pooled, quota := o.Check, o.Pooled, o.Quota
	window := dop * 2
	var (
		mu         sync.Mutex
		ready      = sync.NewCond(&mu)
		outs       = make([]*storage.Relation, len(parts))
		cursor     int // next part index to claim
		next       int // next part index to deliver
		delivering bool
		stop       atomic.Bool // sink stop or failure: cease claiming/pulling
		failErr    error       // first hard error (nil on graceful stop)
		wg         sync.WaitGroup
	)
	// workerCheck aborts in-flight part drains between batches once the
	// stream has stopped.
	workerCheck := func() error {
		if stop.Load() {
			return ErrStopStream
		}
		if check != nil {
			return check()
		}
		return nil
	}
	fail := func(err error) { // with mu held
		stop.Store(true)
		if err != ErrStopStream && failErr == nil {
			failErr = err
		}
		ready.Broadcast()
	}
	if dop > len(parts) {
		dop = len(parts)
	}
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for !stop.Load() && cursor < len(parts) && cursor-next >= window {
					ready.Wait()
				}
				if stop.Load() || cursor >= len(parts) {
					mu.Unlock()
					return
				}
				i := cursor
				cursor++
				mu.Unlock()

				if err := claimCheck(o.Morsel); err != nil {
					mu.Lock()
					fail(err)
					mu.Unlock()
					return
				}
				var rel *storage.Relation
				if pooled {
					rel = storage.GetRelation(batchHint(parts[i]))
				} else {
					rel = NewOutputRelation(parts[i])
				}
				rel, err := drainInto(parts[i], workerCheck, rel, pooled, quota)
				if err != nil {
					// drainInto released the partial batches; the header is
					// left to the GC, as in drainParts.
					mu.Lock()
					fail(err)
					mu.Unlock()
					return
				}
				mu.Lock()
				outs[i] = rel
				// Deliver the in-order frontier. Only one worker delivers at
				// a time (Push calls must be serialized and ordered); others
				// go back to claiming parts.
				if delivering {
					mu.Unlock()
					continue
				}
				delivering = true
				for !stop.Load() && next < len(parts) && outs[next] != nil {
					r := outs[next]
					outs[next] = nil
					mu.Unlock()
					perr := pushRelation(sink, r, pooled, quota)
					mu.Lock()
					next++
					ready.Broadcast()
					if perr != nil {
						fail(perr)
						break
					}
				}
				delivering = false
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// Ranges drained but never delivered (stop or failure) are this
	// function's to recycle.
	for _, rel := range outs {
		if rel != nil {
			rel.Release()
			if pooled {
				storage.PutRelation(rel)
			}
		}
	}
	return failErr
}

// pushRelation hands every batch of a per-range buffer to the sink in
// order, refunds the quota as the buffer empties, and recycles the
// relation header. On a push error the undelivered remainder is
// recycled here (the failing batch itself is the sink's).
func pushRelation(sink StreamSink, r *storage.Relation, pooled bool, quota *storage.Quota) error {
	batches := r.TakeBatches()
	if pooled {
		storage.PutRelation(r)
	}
	for bi, b := range batches {
		sz := b.MemSize()
		if err := sink.Push(b); err != nil {
			for _, rest := range batches[bi+1:] {
				// Size before recycling: after PutBatch the columns may
				// already be reallocated by another query.
				rsz := rest.MemSize()
				storage.PutBatch(rest)
				quota.Refund(rsz)
			}
			quota.Refund(sz)
			return err
		}
		quota.Refund(sz)
	}
	return nil
}

// CollectSink accumulates a stream back into a relation: the sink that
// makes the streaming path produce a materialized result (forced
// streaming in tests and CI, the engine's fallback for statements that
// need whole-result post-processing). The relation owns the pushed
// batches; Release it as usual.
type CollectSink struct {
	Rel *storage.Relation
	// OnFirst, when set, runs once before the first batch is appended
	// (time-to-first-row probes).
	OnFirst func()
	n       int
}

// Push implements StreamSink.
func (c *CollectSink) Push(b *storage.Batch) error {
	if c.n == 0 && c.OnFirst != nil {
		c.OnFirst()
	}
	c.n++
	if c.Rel == nil {
		c.Rel = storage.NewRelation()
	}
	c.Rel.Append(b)
	return nil
}
