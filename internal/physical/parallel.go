package physical

import (
	"sync"
	"sync/atomic"

	"sommelier/internal/storage"
)

// This file implements morsel-driven parallel execution (Leis et al.,
// SIGMOD'14, adapted to the pull model): a scan partitions its batch
// list into morsel ranges, each range becomes an independent operator
// chain, and a small worker pool claims ranges off a shared cursor.
// Each worker drains its chain through its own Coalescer into a
// per-range relation; ranges are reassembled in morsel order, so the
// parallel result holds exactly the serial result's rows in the serial
// order (only batch boundaries may differ). Operators that materialize
// their input internally — hash-join build, aggregation, sort — run
// their own parallelism instead (partitioned build, partial aggregates,
// parallel input drain) and stay single-stream to their consumer.

// morselFanout is how many splits ParallelDrain requests per worker:
// more ranges than workers lets the pool balance skew (zone-map skips,
// selective predicates) without giving up deterministic reassembly.
const morselFanout = 4

// scanSplitGrain is the minimum number of batches per range a scan
// split produces (~16k rows): below that, per-range setup (predicate
// clones, coalescers, partial-aggregate tables) costs more than the
// parallelism buys.
const scanSplitGrain = 4

// Splitter is an Operator that can partition its remaining work into
// independent operators, each safe to run on its own goroutine.
// Splitting transfers the work: after a successful Split only the
// returned operators may be consumed, never the receiver. Concatenating
// the outputs of the returned operators in slice order yields the rows
// the receiver would have produced, in the same order. A nil slice with
// a nil error reports that the operator cannot split (too little work,
// or a non-splittable input).
type Splitter interface {
	Operator
	Split(n int) ([]Operator, error)
}

// ParallelHinter is implemented by operators that materialize an input
// internally (hash-join build, aggregation, sort) and can use a degree
// of parallelism granted by the executor. SetParallel must be called
// before the first Next.
type ParallelHinter interface {
	SetParallel(dop int)
}

// QuotaHinter is implemented by operators that materialize an input
// internally (sort input, top-k buffers, join build side) and charge
// that materialization against the per-query memory ceiling. SetQuota
// must be called before the first Next; a nil quota means unlimited.
type QuotaHinter interface {
	SetQuota(q *storage.Quota)
}

// CheckHinter is implemented by pipeline breakers (hash-join build,
// aggregation, sort, top-k) that drain their input internally and
// would otherwise run that drain unchecked: the executor hands them
// its cancellation check so a query whose deadline expired mid-build
// stops at the next batch instead of materializing to completion.
// SetCheck must be called before the first Next; a nil check means
// uncancellable.
type CheckHinter interface {
	SetCheck(check func() error)
}

// ParallelDrain drains op to completion with up to dop workers when the
// operator can split its work, falling back to the serial Drain
// otherwise. The result holds the same rows in the same order as the
// serial drain. check (may be nil) is consulted between batches on
// every worker, as in Drain.
func ParallelDrain(op Operator, dop int, check func() error) (*storage.Relation, error) {
	return DrainWith(op, DrainOpts{DOP: dop, Check: check})
}

// ParallelDrainPooled is ParallelDrain with pooled coalescer output and
// pooled per-range relation headers; the caller owns (and Releases) the
// returned relation.
func ParallelDrainPooled(op Operator, dop int, check func() error) (*storage.Relation, error) {
	return DrainWith(op, DrainOpts{DOP: dop, Check: check, Pooled: true})
}

// DrainOpts configures DrainWith; the zero value is a serial,
// unpooled, unchecked, unmetered drain.
type DrainOpts struct {
	// DOP grants the drain up to this many workers when the operator
	// can split its work.
	DOP int
	// Check runs before every pull and aborts the drain when it errors.
	Check func() error
	// Pooled draws coalesced output (and per-range relation headers)
	// from the batch pool; the caller owns and Releases the result.
	Pooled bool
	// Quota, when non-nil, is charged for every batch materialized into
	// the output — the per-query memory ceiling.
	Quota *storage.Quota
	// Morsel, when non-nil, runs once per morsel-range claim (and once
	// up front on the serial path) and aborts the drain when it errors.
	// The executor uses it for the runaway-query watchdog and the
	// exec.morsel fault point: Check bounds how long a worker runs
	// between pulls, Morsel bounds it between range claims and is the
	// one place injected stalls land.
	Morsel func() error
}

// DrainWith drains op to completion into a relation under the given
// options; the general form behind Drain/DrainPooled/ParallelDrain.
func DrainWith(op Operator, o DrainOpts) (*storage.Relation, error) {
	if o.DOP > 1 {
		if sp, ok := op.(Splitter); ok {
			parts, err := sp.Split(o.DOP * morselFanout)
			if err != nil {
				return nil, err
			}
			if len(parts) > 1 {
				return drainParts(parts, o)
			}
			if len(parts) == 1 {
				if err := claimCheck(o.Morsel); err != nil {
					return nil, err
				}
				return drainInto(parts[0], o.Check, NewOutputRelation(parts[0]), o.Pooled, o.Quota)
			}
		}
	}
	if err := claimCheck(o.Morsel); err != nil {
		return nil, err
	}
	return drainInto(op, o.Check, NewOutputRelation(op), o.Pooled, o.Quota)
}

// claimCheck runs a morsel-claim hook, treating nil as pass.
func claimCheck(morsel func() error) error {
	if morsel == nil {
		return nil
	}
	return morsel()
}

// runParts invokes run for every part index in [0, n), claimed off a
// shared atomic cursor by up to dop workers; the remaining workers stop
// after the first error, which is returned. With dop ≤ 1 the parts run
// sequentially on the calling goroutine, in order — the serial
// fallback shares the exact code path of the parallel one. claim (may
// be nil) runs after every cursor claim, before the part's work: an
// erroring claim fails the drain without running the part, which is
// how an expired deadline cancels within one morsel.
func runParts(n, dop int, claim func() error, run func(i int) error) error {
	if dop > n {
		dop = n
	}
	if dop <= 1 {
		for i := 0; i < n; i++ {
			if err := claimCheck(claim); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor   atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				err := claimCheck(claim)
				if err == nil {
					err = run(i)
				}
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// drainParts runs the part operators on a pool of dop workers, each
// part drained through its own Coalescer into its own relation, and
// reassembles the per-part relations in part order. Under pooling the
// per-range relation headers come from (and return to) the relation
// pool; their batches transfer wholesale to the reassembled output,
// which alone owns them afterwards.
func drainParts(parts []Operator, o DrainOpts) (*storage.Relation, error) {
	pooled, quota := o.Pooled, o.Quota
	outs := make([]*storage.Relation, len(parts))
	err := runParts(len(parts), o.DOP, o.Morsel, func(i int) error {
		var rel *storage.Relation
		if pooled {
			rel = storage.GetRelation(batchHint(parts[i]))
		} else {
			rel = NewOutputRelation(parts[i])
		}
		rel, err := drainInto(parts[i], o.Check, rel, pooled, quota)
		if err == nil {
			outs[i] = rel
		}
		return err
	})
	if err != nil {
		// Parts that finished before the failing one drained into
		// pooled relations nobody will merge: recycle their batches and
		// hand the headers back.
		if pooled {
			for _, rel := range outs {
				if rel != nil {
					rel.Release()
					storage.PutRelation(rel)
				}
			}
		}
		return nil, err
	}
	nb := 0
	for _, rel := range outs {
		nb += len(rel.Batches())
	}
	out := storage.NewRelationWithCap(nb)
	for _, rel := range outs {
		for _, b := range rel.Batches() {
			out.Append(b)
		}
		if pooled {
			storage.PutRelation(rel)
		}
	}
	return out, nil
}

// batchHint reports the operator's batch-count hint, zero if none.
func batchHint(op Operator) int {
	if h, ok := op.(BatchHinter); ok {
		return h.BatchHint()
	}
	return 0
}

// splitRanges cuts length items into at most n contiguous ranges of at
// least minPer items each, returned as [lo, hi) index pairs.
func splitRanges(length, n, minPer int) [][2]int {
	if length <= 0 || n <= 1 {
		return nil
	}
	maxParts := length / minPer
	if maxParts < 1 {
		maxParts = 1
	}
	if n > maxParts {
		n = maxParts
	}
	if n <= 1 {
		return nil
	}
	ranges := make([][2]int, 0, n)
	per, rem := length/n, length%n
	lo := 0
	for i := 0; i < n; i++ {
		hi := lo + per
		if i < rem {
			hi++
		}
		ranges = append(ranges, [2]int{lo, hi})
		lo = hi
	}
	return ranges
}

// hash64 is the shared 64-bit finalizer used to shard join keys across
// partitioned build tables.
func hash64(v int64) uint64 {
	x := uint64(v) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}
