//go:build race

package physical

// raceEnabled mirrors the -race build tag.
const raceEnabled = true
