package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
)

// faultyDB opens a lazy database whose every chunk flight fails with
// an injected (Degradable) fault: strict queries over actual data
// fail, degraded ones answer with warnings.
func faultyDB(t testing.TB) *engine.DB {
	t.Helper()
	dir := t.TempDir()
	cfg := seisgen.DefaultConfig(2)
	cfg.SamplesPerFile = 600
	cfg.MeanSegments = 4
	if _, err := seisgen.Generate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(dir, engine.Config{
		Approach: registrar.Lazy, OptDisable: "none",
		Faults: "exec.flight=error:1", FaultSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const chunkQuery = `SELECT COUNT(*) AS n FROM dataview
  WHERE F.station = 'FIAM'
    AND D.sample_time >= '2010-01-01T00:00:00.000'
    AND D.sample_time < '2010-01-02T00:00:00.000'`

func boolPtr(b bool) *bool { return &b }

// TestNegativeTimeoutRejected: timeout_ms < 0 is a client error, not a
// silent fallback to the default.
func TestNegativeTimeoutRejected(t *testing.T) {
	s := New(testDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts.URL, QueryRequest{SQL: "SELECT 1", TimeoutMS: -5})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("timeout_ms=-5: status %d body %s", resp.StatusCode, data)
	}
	var eb errorResponse
	if err := json.Unmarshal(data, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "timeout_ms") {
		t.Fatalf("error %q does not name timeout_ms", eb.Error)
	}
}

// TestEffectiveTimeoutInStats: the response reports the deadline the
// request actually ran under, and flags a capped request.
func TestEffectiveTimeoutInStats(t *testing.T) {
	s := New(testDB(t), Config{Workers: 1, DefaultTimeout: 2 * time.Second, MaxTimeout: 3 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sql := `SELECT station, COUNT(*) AS n FROM F WHERE station = 'FIAM' GROUP BY station`

	resp, data := post(t, ts.URL, QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Stats.TimeoutMS != 2000 || qr.Stats.TimeoutCapped {
		t.Fatalf("default stats = %+v, want timeout_ms 2000 uncapped", qr.Stats)
	}

	resp, data = post(t, ts.URL, QueryRequest{SQL: sql, TimeoutMS: 999999})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Stats.TimeoutMS != 3000 || !qr.Stats.TimeoutCapped {
		t.Fatalf("capped stats = %+v, want timeout_ms 3000 capped", qr.Stats)
	}
}

// TestDegradedRequestJSON: a degraded request over a failing archive
// succeeds with warnings in the JSON body; the same request without
// the flag fails.
func TestDegradedRequestJSON(t *testing.T) {
	s := New(faultyDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Strict (server default): the injected faults fail the query.
	resp, _ := post(t, ts.URL, QueryRequest{SQL: chunkQuery})
	if resp.StatusCode == http.StatusOK {
		t.Fatal("strict query over failing chunks returned 200")
	}

	// Degraded: 200 with warnings.
	resp, data := post(t, ts.URL, QueryRequest{SQL: chunkQuery, Degraded: boolPtr(true)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Warnings) == 0 || !qr.Stats.Degraded || qr.Stats.ChunksSkipped != len(qr.Warnings) {
		t.Fatalf("degraded response missing warnings: stats=%+v warnings=%d", qr.Stats, len(qr.Warnings))
	}
	for _, w := range qr.Warnings {
		if w.Table == "" || w.Reason == "" {
			t.Fatalf("warning %+v incomplete", w)
		}
	}

	// /stats counts the degraded completion.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Degraded < 1 {
		t.Fatalf("stats degraded = %d, want >= 1", st.Degraded)
	}
	if st.Source != nil {
		t.Fatalf("local repository reported source health %+v", st.Source)
	}
}

// TestDegradedNDJSONFooter: the streaming NDJSON footer carries the
// warnings and the effective timeout.
func TestDegradedNDJSONFooter(t *testing.T) {
	s := New(faultyDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{SQL: chunkQuery, Stream: true, Degraded: boolPtr(true)})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lastLine string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			lastLine = sc.Text()
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	var footer ndjsonFooter
	if err := json.Unmarshal([]byte(lastLine), &footer); err != nil {
		t.Fatalf("footer %q: %v", lastLine, err)
	}
	if len(footer.Warnings) == 0 || !footer.Stats.Degraded {
		t.Fatalf("footer = %+v, want degraded with warnings", footer)
	}
	if footer.Stats.TimeoutMS <= 0 {
		t.Fatalf("footer stats = %+v, want effective timeout_ms", footer.Stats)
	}
}

// TestDegradedColumnarFooter: the SOMW wire footer carries the
// warnings too.
func TestDegradedColumnarFooter(t *testing.T) {
	s := New(faultyDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{SQL: chunkQuery, Format: FormatColumnar, Degraded: boolPtr(true)})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	res, err := DecodeColumnar(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != "" {
		t.Fatalf("stream error: %s", res.Err)
	}
	if len(res.Warnings) == 0 || !res.Stats.Degraded {
		t.Fatalf("columnar result = stats %+v warnings %d, want degraded with warnings", res.Stats, len(res.Warnings))
	}
}
