package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
	"sommelier/internal/storage"
)

// testDBGoverned builds a repository and opens it with the global
// memory governor armed. samplesPerFile scales the data volume so
// streaming tests can produce response bodies larger than socket
// buffers.
func testDBGoverned(t testing.TB, samplesPerFile int, governorBytes int64) *engine.DB {
	t.Helper()
	dir := t.TempDir()
	cfg := seisgen.DefaultConfig(2)
	cfg.SamplesPerFile = samplesPerFile
	cfg.MeanSegments = 4
	if _, err := seisgen.Generate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(dir, engine.Config{
		Approach: registrar.Lazy, OptDisable: "none",
		GlobalMemoryBytes: governorBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestReadyz covers the readiness probe's three states: ready,
// not-ready while the admission queue is saturated, and not-ready
// while the memory governor is effectively exhausted — plus recovery
// once pressure drains.
func TestReadyz(t *testing.T) {
	db := testDBGoverned(t, 600, 1<<20)
	s := New(db, Config{Workers: 1, MaxWorkers: 1, QueueDepth: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (int, string) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 256)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	if code, body := get(); code != http.StatusOK {
		t.Fatalf("fresh server /readyz = %d %q, want 200", code, body)
	}

	// Saturate the admission queue: hold the single slot, park one
	// waiter (queue 1 of 2 ≥ half the bound).
	hold, err := s.ctrl.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan struct{})
	go func() {
		defer close(queued)
		if tk, err := s.ctrl.Admit(context.Background()); err == nil {
			tk.Done(false)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.ctrl.Saturated() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "admission queue saturated") {
		t.Fatalf("saturated /readyz = %d %q, want 503 with queue reason", code, body)
	}
	hold.Done(false)
	<-queued
	if code, body := get(); code != http.StatusOK {
		t.Fatalf("drained /readyz = %d %q, want 200", code, body)
	}

	// Exhaust the governor directly: reserve nearly the whole pool.
	g := db.Governor()
	if g == nil {
		t.Fatal("governed DB has no governor")
	}
	if err := g.Reserve(context.Background(), g.Limit()); err != nil {
		t.Fatal(err)
	}
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "memory governor exhausted") {
		t.Fatalf("exhausted /readyz = %d %q, want 503 with governor reason", code, body)
	}
	g.Release(g.Limit())
	if code, body := get(); code != http.StatusOK {
		t.Fatalf("released /readyz = %d %q, want 200", code, body)
	}
}

// TestStreamingDisconnectRefundsGovernor runs a large streaming query,
// kills the client connection after the first response bytes, and
// requires every byte of the query's global memory reservation back:
// the governed quota must unwind to zero on the disconnect path, with
// no pooled batch left outstanding.
func TestStreamingDisconnectRefundsGovernor(t *testing.T) {
	db := testDBGoverned(t, 5000, 256<<20)
	s := New(db, Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A full scan streamed as NDJSON: megabytes of response, so the
	// server is still pushing batches (blocked on the TCP window) when
	// the client vanishes.
	body := `{"sql": "SELECT D.sample_time, D.sample_value FROM dataview WHERE D.sample_time >= '2010-01-01T00:00:00.000'", "stream": true}`

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /query HTTP/1.1\r\nHost: sommelier\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s", len(body), body)
	// Read just the status line and first header bytes, then hang up
	// mid-stream.
	if _, err := bufio.NewReader(conn).ReadString('\n'); err != nil {
		t.Fatalf("reading status line: %v", err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}

	g := db.Governor()
	deadline := time.Now().Add(10 * time.Second)
	for g.InUse() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := g.InUse(); got != 0 {
		t.Fatalf("governor in-use = %d bytes after client disconnect, want 0", got)
	}
	if g.HighWater() == 0 {
		t.Fatal("governor high-water is zero: the streaming query never reserved, test exercised nothing")
	}
	// The handler goroutine may still be unwinding after the refund;
	// wait for the pooled batches to drain back too.
	for storage.Outstanding() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	storage.RequireNoLeaks(t)
}

// TestAdmissionChaosNoLeaks arms the server.admit and exec.morsel
// fault points — synthetic admission sheds, stalled morsel claims —
// and drives a burst of short-deadline queries over both delivery
// paths. Every request must settle as 200, 429 (shed), 499 or 504
// (watchdog kill), and the shed/cancel paths must release every
// pooled batch.
func TestAdmissionChaosNoLeaks(t *testing.T) {
	dir := t.TempDir()
	gen := seisgen.DefaultConfig(2)
	gen.SamplesPerFile = 600
	gen.MeanSegments = 4
	if _, err := seisgen.Generate(dir, gen); err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(dir, engine.Config{
		Approach: registrar.Lazy, OptDisable: "none", MaxParallel: 2,
		GlobalMemoryBytes: 64 << 20,
		Faults:            "server.admit=error:0.2,exec.morsel=stall:0.3",
		FaultSeed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{Workers: 2, MaxWorkers: 2, QueueDepth: 4})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	heavy := `SELECT AVG(D.sample_value) FROM dataview WHERE D.sample_time >= '2010-01-01T00:00:00.000'`
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		counts = map[int]int{}
	)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := QueryRequest{SQL: heavy, TimeoutMS: 100}
			if i%2 == 1 {
				req.Stream = true
			}
			resp, _ := post(t, ts.URL, req)
			mu.Lock()
			counts[resp.StatusCode]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for code := range counts {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, 499, http.StatusGatewayTimeout:
		default:
			t.Fatalf("unexpected status under chaos: %d (all: %v)", code, counts)
		}
	}
	// The schedule makes both shed paths statistically certain over 24
	// requests (admit errors at 20%, 30% of morsel claims stalled past
	// the 100ms deadline).
	if counts[http.StatusTooManyRequests] == 0 && counts[http.StatusGatewayTimeout] == 0 {
		t.Fatalf("chaos schedule never shed or killed a request: %v", counts)
	}
	if got := db.Governor().InUse(); got != 0 {
		t.Fatalf("governor in-use = %d after chaos burst, want 0", got)
	}
	storage.RequireNoLeaks(t)
}

// TestOverloadSmoke is the CI overload leg: 64 clients hammer a
// 4-worker server. Every request must settle as 200 or 429, queue
// waits must stay bounded, and nothing may leak.
func TestOverloadSmoke(t *testing.T) {
	db := testDBGoverned(t, 600, 64<<20)
	s := New(db, Config{Workers: 4, MaxWorkers: 4, QueueDepth: 8, DefaultTimeout: 30 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	heavy := `SELECT AVG(D.sample_value) FROM dataview WHERE D.sample_time >= '2010-01-01T00:00:00.000'`
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		counts = map[int]int{}
	)
	for c := 0; c < 64; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, _ := post(t, ts.URL, QueryRequest{SQL: heavy})
				mu.Lock()
				counts[resp.StatusCode]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for code := range counts {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status under overload: %d (all: %v)", code, counts)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded under overload: %v", counts)
	}
	st := s.ctrl.Snapshot()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("admission state after drain: %+v", st)
	}
	if st.WaitP99US > (2 * time.Second).Microseconds() {
		t.Fatalf("queue wait p99 = %dus, want bounded by 2s", st.WaitP99US)
	}
	if got := db.Governor().InUse(); got != 0 {
		t.Fatalf("governor in-use = %d after overload, want 0", got)
	}
	storage.RequireNoLeaks(t)
}
