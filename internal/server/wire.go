// Binary columnar wire format for streaming query results: the
// compact alternative to NDJSON when the client is a program, not a
// person. The stream is column-major per batch, so a client decoding
// into columnar buffers never transposes, and numeric data is varint-
// packed instead of ASCII.
//
// Layout (all integers little-endian; uvarint/varint per encoding/binary):
//
//	header   "SOMW" magic, 1 version byte,
//	         uvarint ncols, per column: uvarint name length + name bytes,
//	         1 kind byte (wireKind)
//	records  'B'  uvarint nrows, then per column, column-major:
//	              int64/time  zigzag varints
//	              float64     8-byte LE IEEE-754 bits
//	              bool        1 byte each
//	              string      uvarint length + bytes
//	         'F'  uvarint length + JSON footer {"row_count", "stats"};
//	              terminal on success
//	         'E'  uvarint length + error message; terminal on failure
//
// A well-formed stream is header, zero or more 'B' records, then
// exactly one 'F' or 'E'. A truncated stream (no terminal record)
// means the connection died mid-query.

package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/storage"
)

// wireMagic opens every columnar stream.
var wireMagic = [4]byte{'S', 'O', 'M', 'W'}

// wireVersion is bumped on any layout change.
const wireVersion = 1

// wireKind is the on-wire column type byte: an explicit mapping, so the
// format does not shift if the internal storage.Kind enum is reordered.
const (
	wireInt64 byte = iota
	wireFloat64
	wireBool
	wireString
	wireTime
)

func toWireKind(k storage.Kind) (byte, error) {
	switch k {
	case storage.KindInt64:
		return wireInt64, nil
	case storage.KindFloat64:
		return wireFloat64, nil
	case storage.KindBool:
		return wireBool, nil
	case storage.KindString:
		return wireString, nil
	case storage.KindTime:
		return wireTime, nil
	}
	return 0, fmt.Errorf("server: no wire encoding for column kind %v", k)
}

func fromWireKind(b byte) (storage.Kind, error) {
	switch b {
	case wireInt64:
		return storage.KindInt64, nil
	case wireFloat64:
		return storage.KindFloat64, nil
	case wireBool:
		return storage.KindBool, nil
	case wireString:
		return storage.KindString, nil
	case wireTime:
		return storage.KindTime, nil
	}
	return storage.KindInvalid, fmt.Errorf("server: unknown wire kind byte %d", b)
}

// columnarSink encodes a query stream into the binary columnar format.
// It is a physical.SchemaSink: the header is written from SetSchema's
// schema on the first output, so zero-row results still carry their
// column list. Writes are buffered and flushed once per pushed batch —
// the flush is the backpressure point: a slow client blocks the flush,
// which blocks Push, which suspends the morsel cursor upstream.
type columnarSink struct {
	hw      http.ResponseWriter // nil when wrapping a plain io.Writer
	fl      http.Flusher
	bw      *bufio.Writer
	names   []string
	kinds   []storage.Kind
	begun   bool
	rows    int
	scratch [binary.MaxVarintLen64]byte
}

func newColumnarSink(w http.ResponseWriter) *columnarSink {
	s := &columnarSink{hw: w, bw: bufio.NewWriter(w)}
	s.fl, _ = w.(http.Flusher)
	return s
}

// SetSchema implements physical.SchemaSink.
func (s *columnarSink) SetSchema(names []string, kinds []storage.Kind) {
	s.names, s.kinds = names, kinds
}

func (s *columnarSink) started() bool { return s.begun }
func (s *columnarSink) rowCount() int { return s.rows }

// begin writes the HTTP status and the stream header on first output.
func (s *columnarSink) begin() error {
	if s.begun {
		return nil
	}
	s.begun = true
	if s.hw != nil {
		s.hw.Header().Set("Content-Type", "application/x-sommelier-columnar")
		s.hw.WriteHeader(http.StatusOK)
	}
	if _, err := s.bw.Write(wireMagic[:]); err != nil {
		return err
	}
	if err := s.bw.WriteByte(wireVersion); err != nil {
		return err
	}
	s.putUvarint(uint64(len(s.names)))
	for i, n := range s.names {
		s.putUvarint(uint64(len(n)))
		if _, err := s.bw.WriteString(n); err != nil {
			return err
		}
		wk, err := toWireKind(s.kinds[i])
		if err != nil {
			return err
		}
		if err := s.bw.WriteByte(wk); err != nil {
			return err
		}
	}
	return nil
}

func (s *columnarSink) putUvarint(v uint64) {
	n := binary.PutUvarint(s.scratch[:], v)
	s.bw.Write(s.scratch[:n])
}

func (s *columnarSink) putVarint(v int64) {
	n := binary.PutVarint(s.scratch[:], v)
	s.bw.Write(s.scratch[:n])
}

// Push implements engine.StreamSink: encode one 'B' record and flush.
func (s *columnarSink) Push(b *storage.Batch) error {
	flat := b.Materialize()
	defer storage.PutBatch(flat)
	if err := s.begin(); err != nil {
		return err
	}
	n := flat.Len()
	s.rows += n
	s.bw.WriteByte('B')
	s.putUvarint(uint64(n))
	for _, c := range flat.Cols {
		switch tc := c.(type) {
		case *storage.Int64Column:
			for i := 0; i < n; i++ {
				s.putVarint(tc.Value(i))
			}
		case *storage.TimeColumn:
			for i := 0; i < n; i++ {
				s.putVarint(tc.Value(i))
			}
		case *storage.Float64Column:
			var buf [8]byte
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(tc.Value(i)))
				s.bw.Write(buf[:])
			}
		case *storage.BoolColumn:
			for i := 0; i < n; i++ {
				v := byte(0)
				if tc.Value(i) {
					v = 1
				}
				s.bw.WriteByte(v)
			}
		case *storage.StringColumn:
			for i := 0; i < n; i++ {
				v := tc.Value(i)
				s.putUvarint(uint64(len(v)))
				s.bw.WriteString(v)
			}
		default:
			return fmt.Errorf("server: no wire encoding for %T", c)
		}
	}
	return s.flush()
}

func (s *columnarSink) flush() error {
	if err := s.bw.Flush(); err != nil {
		return err
	}
	if s.fl != nil {
		s.fl.Flush()
	}
	return nil
}

// columnarFooter is the 'F' record payload.
type columnarFooter struct {
	RowCount int              `json:"row_count"`
	Stats    QueryStats       `json:"stats"`
	Warnings []engine.Warning `json:"warnings,omitempty"`
}

// finish writes the terminal 'F' record.
func (s *columnarSink) finish(stats QueryStats, warnings []engine.Warning) {
	if err := s.begin(); err != nil {
		return
	}
	payload, err := json.Marshal(columnarFooter{RowCount: s.rows, Stats: stats, Warnings: warnings})
	if err != nil {
		return
	}
	s.bw.WriteByte('F')
	s.putUvarint(uint64(len(payload)))
	s.bw.Write(payload)
	_ = s.flush()
}

// fail writes the terminal 'E' record: the error arrived after the
// header went out, so the failure travels in-band.
func (s *columnarSink) fail(err error) {
	msg := err.Error()
	s.bw.WriteByte('E')
	s.putUvarint(uint64(len(msg)))
	s.bw.WriteString(msg)
	_ = s.flush()
}

// ColumnarResult is a decoded columnar stream; see DecodeColumnar.
type ColumnarResult struct {
	Columns []string
	Kinds   []storage.Kind
	// Rows is the row-major transposition of the decoded batches; time
	// columns decode to their raw int64 epoch-nanosecond values.
	Rows [][]any
	// RowCount and Stats are the 'F' footer; zero when the stream ended
	// in an error record instead.
	RowCount int
	Stats    QueryStats
	// Warnings are the degraded-mode warnings from the 'F' footer, if any.
	Warnings []engine.Warning
	// Err is the 'E' record message, "" on success.
	Err string
}

// DecodeColumnar reads one complete columnar stream: the reference
// decoder, used by the tests and available to Go clients.
func DecodeColumnar(r io.Reader) (*ColumnarResult, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("server: columnar header: %w", err)
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("server: bad columnar magic %q", magic[:])
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("server: columnar version %d, want %d", ver, wireVersion)
	}
	ncols, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	out := &ColumnarResult{}
	for c := uint64(0); c < ncols; c++ {
		name, err := readWireString(br)
		if err != nil {
			return nil, err
		}
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		k, err := fromWireKind(kb)
		if err != nil {
			return nil, err
		}
		out.Columns = append(out.Columns, name)
		out.Kinds = append(out.Kinds, k)
	}
	for {
		rec, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("server: columnar stream truncated: %w", err)
		}
		switch rec {
		case 'B':
			if err := decodeColumnarBatch(br, out); err != nil {
				return nil, err
			}
		case 'F':
			payload, err := readWireString(br)
			if err != nil {
				return nil, err
			}
			var f columnarFooter
			if err := json.Unmarshal([]byte(payload), &f); err != nil {
				return nil, fmt.Errorf("server: columnar footer: %w", err)
			}
			out.RowCount, out.Stats, out.Warnings = f.RowCount, f.Stats, f.Warnings
			return out, nil
		case 'E':
			msg, err := readWireString(br)
			if err != nil {
				return nil, err
			}
			out.Err = msg
			return out, nil
		default:
			return nil, fmt.Errorf("server: unknown columnar record %q", rec)
		}
	}
}

func decodeColumnarBatch(br *bufio.Reader, out *ColumnarResult) error {
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	n := int(n64)
	cols := make([][]any, len(out.Kinds))
	for ci, k := range out.Kinds {
		vals := make([]any, n)
		switch k {
		case storage.KindInt64, storage.KindTime:
			for i := 0; i < n; i++ {
				v, err := binary.ReadVarint(br)
				if err != nil {
					return err
				}
				vals[i] = v
			}
		case storage.KindFloat64:
			var buf [8]byte
			for i := 0; i < n; i++ {
				if _, err := io.ReadFull(br, buf[:]); err != nil {
					return err
				}
				vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
		case storage.KindBool:
			for i := 0; i < n; i++ {
				b, err := br.ReadByte()
				if err != nil {
					return err
				}
				vals[i] = b != 0
			}
		case storage.KindString:
			for i := 0; i < n; i++ {
				s, err := readWireString(br)
				if err != nil {
					return err
				}
				vals[i] = s
			}
		default:
			return fmt.Errorf("server: cannot decode kind %v", k)
		}
		cols[ci] = vals
	}
	for i := 0; i < n; i++ {
		row := make([]any, len(cols))
		for ci := range cols {
			row[ci] = cols[ci][i]
		}
		out.Rows = append(out.Rows, row)
	}
	return nil
}

func readWireString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WireTime formats a columnar time value (epoch nanoseconds) the way
// the JSON responses do, so clients of both formats agree.
func WireTime(ns int64) string {
	return time.Unix(0, ns).UTC().Format(timeLayout)
}
