package server

// Tests for the streaming response path: both wire formats must carry
// exactly the rows the materialized JSON response carries, a client
// that disconnects mid-stream must not leak pooled batches, and the
// per-query memory ceiling must surface as 413.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
	"sommelier/internal/storage"
)

// streamTestQueries covers the result shapes the encoders must carry:
// strings, times, floats, aggregates, topk, empty results, EXPLAIN.
var streamTestQueries = []string{
	`SELECT station, COUNT(*) AS n FROM F GROUP BY station ORDER BY station`,
	`SELECT D.sample_time, D.sample_value FROM dataview
	   WHERE F.station = 'FIAM' AND D.sample_time < '2010-01-02T00:00:00.000' LIMIT 500`,
	`SELECT D.sample_value, D.sample_time FROM dataview
	   WHERE F.station = 'ISK' ORDER BY D.sample_value DESC LIMIT 20`,
	`SELECT station FROM F WHERE station = 'NO_SUCH_STATION'`,
	`EXPLAIN SELECT COUNT(*) AS n FROM F WHERE station = 'FIAM'`,
}

// postRaw posts a request body and returns the raw response without
// decoding, for the streaming formats.
func postRaw(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

// decodeNDJSON parses a streamed NDJSON body back into the
// materialized response shape.
func decodeNDJSON(t *testing.T, data []byte) QueryResponse {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var out QueryResponse
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("line %d: %v: %s", line, err, raw)
		}
		switch {
		case probe["error"] != nil:
			t.Fatalf("mid-stream error: %s", raw)
		case probe["columns"] != nil:
			if err := json.Unmarshal(probe["columns"], &out.Columns); err != nil {
				t.Fatal(err)
			}
		case probe["rows"] != nil:
			var rows [][]any
			if err := json.Unmarshal(probe["rows"], &rows); err != nil {
				t.Fatal(err)
			}
			out.Rows = append(out.Rows, rows...)
		case probe["row_count"] != nil:
			var f ndjsonFooter
			if err := json.Unmarshal(raw, &f); err != nil {
				t.Fatal(err)
			}
			out.RowCount, out.Stats = f.RowCount, f.Stats
		default:
			t.Fatalf("line %d: unrecognized: %s", line, raw)
		}
		line++
	}
	return out
}

// TestStreamingFormatsMatchMaterialized runs every query three ways —
// materialized JSON, streamed NDJSON, streamed columnar — and requires
// identical columns and cell-for-cell identical rows.
func TestStreamingFormatsMatchMaterialized(t *testing.T) {
	s := New(testDB(t), Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for qi, sql := range streamTestQueries {
		resp, data := post(t, ts.URL, QueryRequest{SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d: %s", qi, resp.StatusCode, data)
		}
		var want QueryResponse
		if err := json.Unmarshal(data, &want); err != nil {
			t.Fatal(err)
		}

		resp, data = postRaw(t, ts.URL, QueryRequest{SQL: sql, Stream: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d (ndjson): status %d: %s", qi, resp.StatusCode, data)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("query %d: content type %q", qi, ct)
		}
		nd := decodeNDJSON(t, data)
		sameResponse(t, qi, "ndjson", nd.Columns, nd.Rows, want)
		if nd.RowCount != want.RowCount {
			t.Fatalf("query %d: ndjson footer row_count %d, want %d", qi, nd.RowCount, want.RowCount)
		}

		resp, data = postRaw(t, ts.URL, QueryRequest{SQL: sql, Format: FormatColumnar})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d (columnar): status %d: %s", qi, resp.StatusCode, data)
		}
		col, err := DecodeColumnar(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if col.Err != "" {
			t.Fatalf("query %d: columnar error record: %s", qi, col.Err)
		}
		// Columnar time columns carry raw nanoseconds; format them the
		// way the JSON encoder does before comparing.
		rows := make([][]any, len(col.Rows))
		for ri, r := range col.Rows {
			row := make([]any, len(r))
			for ci := range r {
				if col.Kinds[ci] == storage.KindTime {
					row[ci] = WireTime(r[ci].(int64))
				} else {
					row[ci] = r[ci]
				}
			}
			rows[ri] = row
		}
		sameResponse(t, qi, "columnar", col.Columns, rows, want)
		if col.RowCount != want.RowCount {
			t.Fatalf("query %d: columnar footer row_count %d, want %d", qi, col.RowCount, want.RowCount)
		}
	}
}

// sameResponse compares decoded streaming output against the
// materialized response; numeric cells are normalized through JSON
// round-tripping on the want side already, so compare as rendered text.
func sameResponse(t *testing.T, qi int, format string, cols []string, rows [][]any, want QueryResponse) {
	t.Helper()
	if fmt.Sprint(cols) != fmt.Sprint(want.Columns) {
		t.Fatalf("query %d (%s): columns %v, want %v", qi, format, cols, want.Columns)
	}
	if len(rows) != len(want.Rows) {
		t.Fatalf("query %d (%s): %d rows, want %d", qi, format, len(rows), len(want.Rows))
	}
	for ri := range rows {
		g := fmt.Sprintf("%v", rows[ri])
		w := fmt.Sprintf("%v", want.Rows[ri])
		if g != w {
			t.Fatalf("query %d (%s): row %d = %s, want %s", qi, format, ri, g, w)
		}
	}
}

// TestStreamingDisconnectReleasesMemory opens a streaming response
// over a large result, reads a little, and slams the connection shut;
// the server must abort the query and return every pooled batch.
func TestStreamingDisconnectReleasesMemory(t *testing.T) {
	s := New(testDB(t), Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{
		SQL: `SELECT D.sample_time, D.sample_value FROM dataview
		        WHERE D.sample_time < '2010-01-03T00:00:00.000'`,
		Stream: true,
	})
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		// Read one chunk so the stream is genuinely flowing, then drop
		// the connection without draining.
		buf := make([]byte, 1024)
		if _, err := resp.Body.Read(buf); err != nil {
			t.Fatalf("first read: %v", err)
		}
		resp.Body.Close()
	}
	// The aborted queries unwind asynchronously after the disconnect.
	deadline := time.Now().Add(5 * time.Second)
	for storage.Outstanding() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	storage.RequireNoLeaks(t)
}

// TestQuotaExceededIs413 wires a ceiling-limited DB into the server: a
// materializing query over the ceiling must fail crisply with 413 and
// the typed error message, and a streaming query must still succeed.
func TestQuotaExceededIs413(t *testing.T) {
	if v := os.Getenv(engine.EnvForceStreaming); v != "" && v != "0" {
		// Forced streaming makes every query stream, so the materialized
		// request this test meters never exceeds the ceiling.
		t.Skipf("%s set: no materialized path to meter", engine.EnvForceStreaming)
	}
	dir := t.TempDir()
	cfg := seisgen.DefaultConfig(1)
	cfg.SamplesPerFile = 600
	if _, err := seisgen.Generate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(dir, engine.Config{
		Approach: registrar.Lazy, MaxParallel: 1, MaxQueryBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const sql = `SELECT D.sample_time, D.sample_value FROM dataview
	               WHERE D.sample_time < '2010-01-02T00:00:00.000'`
	resp, data := post(t, ts.URL, QueryRequest{SQL: sql})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, data)
	}
	var eresp errorResponse
	if err := json.Unmarshal(data, &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.Error == "" {
		t.Fatal("empty error body")
	}

	resp, data = postRaw(t, ts.URL, QueryRequest{SQL: sql, Stream: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streaming under ceiling: status %d: %s", resp.StatusCode, data)
	}
	nd := decodeNDJSON(t, data)
	if nd.RowCount == 0 {
		t.Fatal("streaming under ceiling delivered no rows")
	}
}

// TestStreamedCounter pins the stats plumbing for streaming requests.
func TestStreamedCounter(t *testing.T) {
	s := New(testDB(t), Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts.URL, QueryRequest{SQL: `SELECT COUNT(*) AS n FROM F`})
	postRaw(t, ts.URL, QueryRequest{SQL: `SELECT COUNT(*) AS n FROM F`, Stream: true})
	postRaw(t, ts.URL, QueryRequest{SQL: `SELECT COUNT(*) AS n FROM F`, Format: FormatColumnar})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Streamed != 2 {
		t.Fatalf("streamed = %d, want 2", st.Streamed)
	}
	if st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
}

// TestUnknownFormatRejected pins the 400 on a bad format name.
func TestUnknownFormatRejected(t *testing.T) {
	s := New(testDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, data := post(t, ts.URL, QueryRequest{SQL: `SELECT COUNT(*) AS n FROM F`, Format: "msgpack"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
}
