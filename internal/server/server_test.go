package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/seisgen"
)

func testDB(t testing.TB) *engine.DB {
	t.Helper()
	dir := t.TempDir()
	cfg := seisgen.DefaultConfig(2)
	cfg.SamplesPerFile = 600
	cfg.MeanSegments = 4
	if _, err := seisgen.Generate(dir, cfg); err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(dir, engine.Config{Approach: registrar.Lazy, OptDisable: "none"})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func post(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestQueryEndpoint(t *testing.T) {
	s := New(testDB(t), Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts.URL, QueryRequest{
		SQL: `SELECT station, COUNT(*) AS n FROM F WHERE station = 'FIAM' GROUP BY station`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 1 || len(qr.Columns) != 2 {
		t.Fatalf("unexpected result: %+v", qr)
	}
	if qr.Rows[0][0] != "FIAM" {
		t.Fatalf("row = %v", qr.Rows[0])
	}
	if qr.Stats.QueryType != 1 {
		t.Fatalf("query type = %d", qr.Stats.QueryType)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(testDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := post(t, ts.URL, QueryRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty sql: status %d", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL, QueryRequest{SQL: "SELECT FROM nowhere ("}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken sql: status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d", resp.StatusCode)
	}
}

func TestHealthAndStats(t *testing.T) {
	s := New(testDB(t), Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	post(t, ts.URL, QueryRequest{SQL: `SELECT station, COUNT(*) AS n FROM F GROUP BY station`})
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Received < 1 || st.Completed < 1 {
		t.Fatalf("stats did not count the query: %+v", st)
	}
	if st.Workers != 2 {
		t.Fatalf("workers = %d", st.Workers)
	}
	if st.Approach != "lazy" {
		t.Fatalf("approach = %q", st.Approach)
	}
}

// TestSixteenConcurrentClients is the service-level acceptance check:
// 16 clients hammer one sommelierd with lazy-loading queries whose
// chunk sets overlap, and every response must carry the same correct
// answer a lone client gets.
func TestSixteenConcurrentClients(t *testing.T) {
	const clients, rounds = 16, 3
	s := New(testDB(t), Config{Workers: 4, QueueDepth: clients * 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	queries := []string{
		`SELECT AVG(D.sample_value) FROM dataview
		   WHERE F.station = 'FIAM' AND D.sample_time >= '2010-01-01T00:00:00.000'
		     AND D.sample_time < '2010-01-02T00:00:00.000'`,
		`SELECT COUNT(*) AS n FROM dataview
		   WHERE F.station = 'ISK' AND D.sample_time >= '2010-01-01T00:00:00.000'
		     AND D.sample_time < '2010-01-03T00:00:00.000'`,
		`SELECT station, COUNT(*) AS n FROM F WHERE station = 'AQU' GROUP BY station`,
	}
	// Single-client baseline.
	want := make([]string, len(queries))
	for i, sql := range queries {
		resp, data := post(t, ts.URL, QueryRequest{SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("baseline %d: status %d: %s", i, resp.StatusCode, data)
		}
		var qr QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		want[i] = fmt.Sprint(qr.Rows)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(queries)
				resp, data := post(t, ts.URL, QueryRequest{SQL: queries[i], TimeoutMS: 60_000})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("client %d: status %d: %s", c, resp.StatusCode, data)
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(data, &qr); err != nil {
					t.Error(err)
					return
				}
				if got := fmt.Sprint(qr.Rows); got != want[i] {
					t.Errorf("client %d query %d: got %s want %s", c, i, got, want[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if wantN := int64(len(queries) + clients*rounds); st.Completed != wantN {
		t.Fatalf("completed = %d, want %d (%+v)", st.Completed, wantN, st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("work left behind: %+v", st)
	}
}

// TestOverloadRejects saturates the admission controller — the single
// concurrency slot held and the one-deep queue occupied — and checks
// that excess HTTP load sheds with 429 + Retry-After instead of
// queueing without bound (or answering a retryable condition with a
// 5xx), then that capacity is admitted again once the holders drain.
func TestOverloadRejects(t *testing.T) {
	db := testDB(t)
	s := New(db, Config{Workers: 1, MaxWorkers: 1, QueueDepth: 1, DefaultTimeout: 10 * time.Second})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single slot directly, then park a second admit in the
	// queue so the controller is deterministically saturated before the
	// burst fires (real queries on the tiny test corpus finish in
	// single-digit milliseconds — far too fast to hold the queue full).
	hold, err := s.ctrl.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() {
		tk, err := s.ctrl.Admit(context.Background())
		if err == nil {
			tk.Done(false)
		}
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.ctrl.Snapshot().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.ctrl.Snapshot().Queued != 1 {
		t.Fatal("queue slot never filled")
	}

	heavy := `SELECT AVG(D.sample_value) FROM dataview WHERE D.sample_time >= '2010-01-01T00:00:00.000'`
	const burst = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		statuses []int
		retries  []string
	)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := post(t, ts.URL, QueryRequest{SQL: heavy})
			mu.Lock()
			statuses = append(statuses, resp.StatusCode)
			if resp.StatusCode == http.StatusTooManyRequests {
				retries = append(retries, resp.Header.Get("Retry-After"))
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, code := range statuses {
		if code != http.StatusTooManyRequests {
			t.Fatalf("status %d against a saturated server, want 429", code)
		}
	}
	if len(retries) != burst {
		t.Fatalf("shed %d of %d", len(retries), burst)
	}
	for _, ra := range retries {
		if n, err := strconv.Atoi(ra); err != nil || n < 1 {
			t.Fatalf("Retry-After = %q, want integer >= 1", ra)
		}
	}

	// Drain the holders: the parked admit dispatches, and a fresh query
	// is admitted and served.
	hold.Done(false)
	if err := <-queued; err != nil {
		t.Fatalf("queued admit failed: %v", err)
	}
	resp, body := post(t, ts.URL, QueryRequest{SQL: heavy})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-drain status %d: %s", resp.StatusCode, body)
	}
}

func TestQueryWithParams(t *testing.T) {
	s := New(testDB(t), Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts.URL, QueryRequest{
		SQL:    `SELECT COUNT(*) AS n FROM F WHERE station = ? AND file_id >= ?`,
		Params: []any{"FIAM", 0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 1 {
		t.Fatalf("rows = %d", qr.RowCount)
	}
	// Wrong arity is the client's fault: 400.
	resp, data = post(t, ts.URL, QueryRequest{
		SQL:    `SELECT COUNT(*) AS n FROM F WHERE station = ?`,
		Params: []any{},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing params: status %d: %s", resp.StatusCode, data)
	}
}

func TestParseErrorReportsPosition(t *testing.T) {
	s := New(testDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts.URL, QueryRequest{SQL: `SELECT station FRM F`})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var er struct {
		Error    string `json:"error"`
		Position *int   `json:"position"`
	}
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if er.Position == nil {
		t.Fatalf("no position in %s", data)
	}
	if want := len("SELECT station "); *er.Position != want {
		t.Fatalf("position = %d, want %d (%s)", *er.Position, want, data)
	}
}

func TestStatsReportPlanCache(t *testing.T) {
	s := New(testDB(t), Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sql := `SELECT COUNT(*) AS n FROM F WHERE station = 'FIAM'`
	for i := 0; i < 3; i++ {
		resp, data := post(t, ts.URL, QueryRequest{SQL: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var qr QueryResponse
		if err := json.Unmarshal(data, &qr); err != nil {
			t.Fatal(err)
		}
		if i > 0 && !qr.Stats.PlanCacheHit {
			t.Fatalf("request %d missed the plan cache", i)
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PlanCache.Hits < 2 || st.PlanCache.Misses < 1 || st.PlanCache.Size < 1 {
		t.Fatalf("plan cache stats = %+v", st.PlanCache)
	}
}

func TestExplainOverHTTP(t *testing.T) {
	s := New(testDB(t), Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts.URL, QueryRequest{
		SQL: `EXPLAIN SELECT AVG(D.sample_value) FROM dataview WHERE F.station = 'FIAM'
		      AND D.sample_time < '2010-01-02T00:00:00.000'`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Columns) != 1 || qr.Columns[0] != "plan" {
		t.Fatalf("columns = %v", qr.Columns)
	}
	text := fmt.Sprintf("%v", qr.Rows)
	for _, want := range []string{"[Qf]", "rule joinorder"} {
		if !strings.Contains(text, want) {
			t.Fatalf("EXPLAIN output lacks %q:\n%s", want, text)
		}
	}
}
