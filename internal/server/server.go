// Package server implements sommelierd's HTTP front end: a JSON query
// API over one engine.DB, executed by a bounded worker pool so a burst
// of clients cannot fork an unbounded number of concurrent executions.
//
// Endpoints:
//
//	POST /query    {"sql": "...", "params": [...], "timeout_ms": 5000}  →  result JSON
//	GET  /stats    server, cache, plan-cache and engine counters
//	GET  /healthz  liveness probe
//
// Queries are compiled through the engine's plan cache: statements
// differing only in literals share one compiled plan, `?` markers bind
// the "params" array, and `EXPLAIN <query>` returns the optimized plan
// with the applied-rule log as rows.
//
// Setting "stream": true in the request switches to incremental
// delivery: result batches are encoded and flushed as the executor
// produces them (newline-delimited JSON by default, or the binary
// columnar format with "format": "columnar"), so the first row
// reaches the client while the scan is still running and the server
// never holds the full result. See stream.go and wire.go.
//
// The worker pool is the admission controller: requests queue up to
// QueueDepth jobs and are rejected with 503 beyond that, so overload
// degrades crisply instead of collapsing the engine. Each request
// carries a context deadline; cancellation aborts chunk ingestion and
// batch evaluation mid-query.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/engine"
	"sommelier/internal/registrar"
	"sommelier/internal/sqlparse"
	"sommelier/internal/storage"
)

// Config parameterizes the service.
type Config struct {
	// Workers is the size of the query worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued-but-not-running queries; 0 means
	// 4×Workers. Beyond it, POST /query returns 503.
	QueueDepth int
	// DefaultTimeout applies when a request names none; 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms; 0 means 5m.
	MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the HTTP query service. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	db    *engine.DB
	cfg   Config
	mux   *http.ServeMux
	jobs  chan *job
	wg    sync.WaitGroup
	start time.Time

	received  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	rejected  atomic.Int64
	streamed  atomic.Int64
	degraded  atomic.Int64
	inFlight  atomic.Int64
	closed    atomic.Bool
}

type job struct {
	ctx    context.Context
	sql    string
	params []any
	// stream, when set, runs the whole request on the worker (streaming
	// responses write to the client incrementally, so the work cannot be
	// handed back over a channel); sql/params are unused.
	stream func()
	resp   chan jobResult
}

type jobResult struct {
	res *engine.Result
	err error
}

// New starts the worker pool over db and returns the service.
func New(db *engine.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:    db,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		jobs:  make(chan *job, cfg.QueueDepth),
		start: time.Now(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the worker pool. The HTTP server must be shut down
// first (http.Server.Shutdown), so no handler is still submitting.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.jobs)
	}
	s.wg.Wait()
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if err := j.ctx.Err(); err != nil {
			// The client gave up while the job sat in the queue.
			j.resp <- jobResult{err: err}
			continue
		}
		s.inFlight.Add(1)
		if j.stream != nil {
			j.stream()
			s.inFlight.Add(-1)
			j.resp <- jobResult{}
			continue
		}
		res, err := s.db.QueryArgsContext(j.ctx, j.sql, j.params...)
		s.inFlight.Add(-1)
		j.resp <- jobResult{res: res, err: err}
	}
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Params binds the statement's `?` markers, in order (numbers,
	// strings, booleans). Statements without markers take none.
	Params []any `json:"params,omitempty"`
	// TimeoutMS overrides the server's default per-request timeout,
	// capped by the configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream requests incremental delivery: batches are flushed as they
	// are produced instead of one materialized response body. Implied
	// by Format "columnar".
	Stream bool `json:"stream,omitempty"`
	// Format selects the streaming wire format: "json" (the default,
	// newline-delimited JSON) or "columnar" (the binary columnar format
	// of wire.go, which implies Stream).
	Format string `json:"format,omitempty"`
	// Degraded overrides the database's degraded-mode default for this
	// request: true accepts a partial result (with per-chunk warnings)
	// when chunk fetches exhaust their retries, false demands strict
	// fail-fast. Omitted defers to the server's -degraded default.
	Degraded *bool `json:"degraded,omitempty"`
}

// QueryStats mirrors the executor's per-query statistics.
type QueryStats struct {
	QueryType      int     `json:"query_type"`
	ElapsedUS      int64   `json:"elapsed_us"`
	Stage1US       int64   `json:"stage1_us"`
	LoadUS         int64   `json:"load_us"`
	Stage2US       int64   `json:"stage2_us"`
	ChunksSelected int     `json:"chunks_selected"`
	ChunksLoaded   int     `json:"chunks_loaded"`
	CacheHits      int     `json:"cache_hits"`
	RowsLoaded     int64   `json:"rows_loaded"`
	SampleFraction float64 `json:"sample_fraction"`
	DMdComputed    int     `json:"dmd_windows_computed,omitempty"`
	// CompileUS is the parse+plan+optimize time of this request;
	// PlanCacheHit marks that the compiled plan came from the cache.
	CompileUS    int64 `json:"compile_us"`
	PlanCacheHit bool  `json:"plan_cache_hit"`
	// TimeoutMS is the effective deadline this request ran under (the
	// requested timeout_ms, the server default when none was sent, or
	// the server cap); TimeoutCapped marks that the requested value
	// exceeded the cap and was clamped.
	TimeoutMS     int64 `json:"timeout_ms"`
	TimeoutCapped bool  `json:"timeout_capped,omitempty"`
	// Degraded marks a partial result: ChunksSkipped chunks were
	// unavailable and the response carries one warning for each.
	Degraded      bool `json:"degraded,omitempty"`
	ChunksSkipped int  `json:"chunks_skipped,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	Columns  []string   `json:"columns"`
	Rows     [][]any    `json:"rows"`
	RowCount int        `json:"row_count"`
	Stats    QueryStats `json:"stats"`
	// Warnings is present only on degraded results: one entry per
	// chunk the query proceeded without.
	Warnings []engine.Warning `json:"warnings,omitempty"`
}

// errorResponse is every non-2xx body. Position (byte offset into the
// statement) is present for parse errors.
type errorResponse struct {
	Error    string `json:"error"`
	Position *int   `json:"position,omitempty"`
}

// errorBody builds the error response, surfacing the parse position
// when the failure carries one.
func errorBody(err error) errorResponse {
	body := errorResponse{Error: err.Error()}
	var perr *sqlparse.Error
	if errors.As(err, &perr) {
		pos := perr.Pos
		body.Position = &pos
	}
	return body
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"sql\""})
		return
	}
	if req.TimeoutMS < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "timeout_ms must be non-negative"})
		return
	}
	timeout := s.cfg.DefaultTimeout
	capped := false
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
			capped = true
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if req.Degraded != nil {
		ctx = engine.WithDegraded(ctx, *req.Degraded)
	}

	s.received.Add(1)
	// JSON numbers arrive as float64; integral values mean integers
	// (file IDs, timestamps) far more often than floats, and the
	// numeric comparison kernels promote either way.
	for i, p := range req.Params {
		if f, ok := p.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1<<53 {
			req.Params[i] = int64(f)
		}
	}
	switch req.Format {
	case "", FormatNDJSON, FormatColumnar:
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown format %q", req.Format)})
		return
	}
	j := &job{ctx: ctx, sql: req.SQL, params: req.Params, resp: make(chan jobResult, 1)}
	if req.Stream || req.Format == FormatColumnar {
		// Streaming requests run entirely on the worker goroutine; this
		// handler parks until the response is fully written (or until
		// the job dies in the queue).
		s.streamed.Add(1)
		j.stream = func() { s.streamQuery(ctx, w, req, timeout, capped) }
	}
	select {
	case s.jobs <- j:
	default:
		s.rejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "overloaded: worker queue full"})
		return
	}
	t0 := time.Now()
	out := <-j.resp
	if out.err != nil {
		s.failed.Add(1)
		writeJSON(w, errorStatus(out.err), errorBody(out.err))
		return
	}
	if j.stream != nil {
		// streamQuery wrote the response and settled the counters.
		return
	}
	s.completed.Add(1)
	if len(out.res.Warnings) > 0 {
		s.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, toResponse(out.res, time.Since(t0), timeout, capped))
}

// errorStatus classifies a query error: deadline and cancellation get
// their dedicated codes; parse and planning failures are the client's
// query (400); everything else — chunk I/O, executor faults — is a
// server-side failure (500), so retry and alerting logic can tell the
// two apart.
func errorStatus(err error) int {
	var qe *storage.QuotaError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.As(err, &qe):
		// The query tripped the per-query memory ceiling
		// (engine.Config.MaxQueryBytes): the result is too large to
		// materialize, which a streaming request might still manage.
		return http.StatusRequestEntityTooLarge
	}
	msg := err.Error()
	if strings.HasPrefix(msg, "sql:") || strings.HasPrefix(msg, "plan:") ||
		strings.HasPrefix(msg, "engine: statement") ||
		strings.HasPrefix(msg, "engine: unsupported argument") ||
		strings.HasPrefix(msg, "engine: prepared statement") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// toResponse converts an engine result to the wire shape, releasing the
// result's pooled batch memory once the rows are rendered.
func toResponse(res *engine.Result, elapsed, timeout time.Duration, capped bool) QueryResponse {
	flat := res.Rel.Flatten()
	rows := make([][]any, flat.Len())
	for ri := 0; ri < flat.Len(); ri++ {
		row := make([]any, flat.Width())
		for ci := 0; ci < flat.Width(); ci++ {
			row[ci] = jsonValue(flat.Cols[ci], ri)
		}
		rows[ri] = row
	}
	res.Release()
	return QueryResponse{
		Columns:  res.Names,
		Rows:     rows,
		RowCount: flat.Len(),
		Stats:    toStats(res, elapsed, timeout, capped),
		Warnings: res.Warnings,
	}
}

// toStats converts the engine's per-query statistics to the wire
// shape; shared by the materialized response and the streaming footer.
func toStats(res *engine.Result, elapsed, timeout time.Duration, capped bool) QueryStats {
	st := res.Stats
	return QueryStats{
		QueryType:      res.QueryType,
		ElapsedUS:      elapsed.Microseconds(),
		Stage1US:       st.Stage1.Microseconds(),
		LoadUS:         st.Load.Microseconds(),
		Stage2US:       st.Stage2.Microseconds(),
		ChunksSelected: st.ChunksSelected,
		ChunksLoaded:   st.ChunksLoaded,
		CacheHits:      st.CacheHits,
		RowsLoaded:     st.RowsLoaded,
		SampleFraction: st.SampleFraction,
		DMdComputed:    res.DMd.Computed,
		CompileUS:      res.Compile.Microseconds(),
		PlanCacheHit:   res.PlanCacheHit,
		TimeoutMS:      timeout.Milliseconds(),
		TimeoutCapped:  capped,
		Degraded:       len(res.Warnings) > 0,
		ChunksSkipped:  st.ChunksSkipped,
	}
}

// timeLayout renders time columns in both wire formats.
const timeLayout = "2006-01-02T15:04:05.000"

func jsonValue(c storage.Column, r int) any {
	if tc, ok := c.(*storage.TimeColumn); ok {
		return time.Unix(0, tc.Value(r)).UTC().Format(timeLayout)
	}
	v := storage.ValueAt(c, r)
	// JSON has no NaN/Inf (an AVG over zero rows is NaN); encode null
	// instead of failing the response mid-write.
	if f, ok := v.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
		return nil
	}
	return v
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	UptimeS    int64  `json:"uptime_s"`
	Approach   string `json:"approach"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	InFlight   int64  `json:"in_flight"`
	Received   int64  `json:"received"`
	Completed  int64  `json:"completed"`
	Failed     int64  `json:"failed"`
	Rejected   int64  `json:"rejected"`
	Streamed   int64  `json:"streamed"`
	// Degraded counts completed queries that returned partial results.
	Degraded int64 `json:"degraded"`
	// Source is the chunk source's reliability snapshot (circuit
	// breakers, quarantine, retry counters) when the source tracks one
	// (remote HTTP archives do); absent for local repositories.
	Source *registrar.Health `json:"source,omitempty"`
	Cache  struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		BytesUsed int64 `json:"bytes_used"`
		Chunks    int   `json:"chunks"`
	} `json:"cache"`
	// DiskCache is the persistent cache tier's counters; absent when
	// the server runs without -cache-dir (RAM-only cache).
	DiskCache *cache.DiskTierStats `json:"disk_cache,omitempty"`
	PlanCache struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Size     int   `json:"size"`
		Capacity int   `json:"capacity"`
	} `json:"plan_cache"`
	MaterializedWindows int `json:"materialized_windows"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	var resp StatsResponse
	resp.UptimeS = int64(time.Since(s.start).Seconds())
	resp.Approach = string(s.db.Approach())
	resp.Workers = s.cfg.Workers
	resp.QueueDepth = s.cfg.QueueDepth
	resp.Queued = len(s.jobs)
	resp.InFlight = s.inFlight.Load()
	resp.Received = s.received.Load()
	resp.Completed = s.completed.Load()
	resp.Failed = s.failed.Load()
	resp.Rejected = s.rejected.Load()
	resp.Streamed = s.streamed.Load()
	resp.Degraded = s.degraded.Load()
	resp.Source = s.db.SourceHealth()
	cs := s.db.CacheStats()
	resp.Cache.Hits = cs.Hits
	resp.Cache.Misses = cs.Misses
	resp.Cache.Evictions = cs.Evictions
	resp.Cache.BytesUsed = cs.BytesUsed
	resp.Cache.Chunks = cs.Chunks
	if s.db.DiskTierEnabled() {
		ds := s.db.DiskCacheStats()
		resp.DiskCache = &ds
	}
	ps := s.db.PlanCacheStats()
	resp.PlanCache.Hits = ps.Hits
	resp.PlanCache.Misses = ps.Misses
	resp.PlanCache.Size = ps.Size
	resp.PlanCache.Capacity = ps.Capacity
	resp.MaterializedWindows = s.db.MaterializedWindows()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
