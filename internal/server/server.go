// Package server implements sommelierd's HTTP front end: a JSON query
// API over one engine.DB, gated by an adaptive admission controller so
// hostile traffic degrades to fast, honest rejections instead of
// collapsing the engine.
//
// Endpoints:
//
//	POST /query    {"sql": "...", "params": [...], "timeout_ms": 5000}  →  result JSON
//	GET  /stats    admission, governor, cache, plan-cache and engine counters
//	GET  /healthz  liveness probe (process up)
//	GET  /readyz   readiness probe (503 while the queue is saturated
//	               or the memory governor is exhausted)
//
// Queries are compiled through the engine's plan cache: statements
// differing only in literals share one compiled plan, `?` markers bind
// the "params" array, and `EXPLAIN <query>` returns the optimized plan
// with the applied-rule log as rows.
//
// Setting "stream": true in the request switches to incremental
// delivery: result batches are encoded and flushed as the executor
// produces them (newline-delimited JSON by default, or the binary
// columnar format with "format": "columnar"), so the first row
// reaches the client while the scan is still running and the server
// never holds the full result. See stream.go and wire.go.
//
// Admission (internal/admission) replaced the fixed worker pool: the
// dispatch gate is an AIMD concurrency limiter adapting to observed
// query latency between a configured floor and ceiling, and the wait
// queue in front of it is deadline-aware — a request whose remaining
// deadline cannot outlast the expected queue wait is rejected up
// front, and one whose deadline expires while queued is never
// dispatched. Rejections answer 429 with a computed Retry-After.
// Inside the engine the same request's context deadline is enforced
// cooperatively at every morsel boundary (the runaway watchdog,
// surfacing as *exec.DeadlineError → 504), and the optional global
// memory governor sheds queries the process cannot afford
// (*storage.GovernorError → 429).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sommelier/internal/admission"
	"sommelier/internal/cache"
	"sommelier/internal/engine"
	"sommelier/internal/exec"
	"sommelier/internal/fault"
	"sommelier/internal/registrar"
	"sommelier/internal/sqlparse"
	"sommelier/internal/storage"
)

// Config parameterizes the service.
type Config struct {
	// Workers is the admission limiter's initial concurrency; 0 means
	// GOMAXPROCS. The limit then adapts between MinWorkers and
	// MaxWorkers with observed query latency (AIMD).
	Workers int
	// MinWorkers is the limiter's floor; 0 means 1.
	MinWorkers int
	// MaxWorkers is the limiter's ceiling; 0 means 4×Workers.
	MaxWorkers int
	// QueueDepth bounds queued-but-not-running queries; 0 means
	// 4×Workers. Beyond it, POST /query sheds with 429 + Retry-After.
	QueueDepth int
	// DefaultTimeout applies when a request names none; 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout_ms; 0 means 5m.
	MaxTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 4 * c.Workers
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	return c
}

// Server is the HTTP query service. Create with New, expose with
// Handler, stop with Close.
type Server struct {
	db    *engine.DB
	cfg   Config
	mux   *http.ServeMux
	ctrl  *admission.Controller
	start time.Time

	received      atomic.Int64
	completed     atomic.Int64
	failed        atomic.Int64
	rejected      atomic.Int64
	streamed      atomic.Int64
	degraded      atomic.Int64
	deadlineKills atomic.Int64
	governorSheds atomic.Int64
}

// New builds the service over db. Queries now run on their handler
// goroutines, gated by the admission controller — there is no worker
// pool to start or drain.
func New(db *engine.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:  db,
		cfg: cfg,
		mux: http.NewServeMux(),
		ctrl: admission.New(admission.Config{
			Floor:    cfg.MinWorkers,
			Ceiling:  cfg.MaxWorkers,
			Initial:  cfg.Workers,
			MaxQueue: cfg.QueueDepth,
		}),
		start: time.Now(),
	}
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// Close is retained for symmetry with New; in-flight requests are the
// HTTP server's to drain (http.Server.Shutdown), and the admission
// controller holds no goroutines.
func (s *Server) Close() {}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	SQL string `json:"sql"`
	// Params binds the statement's `?` markers, in order (numbers,
	// strings, booleans). Statements without markers take none.
	Params []any `json:"params,omitempty"`
	// TimeoutMS overrides the server's default per-request timeout,
	// capped by the configured maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Stream requests incremental delivery: batches are flushed as they
	// are produced instead of one materialized response body. Implied
	// by Format "columnar".
	Stream bool `json:"stream,omitempty"`
	// Format selects the streaming wire format: "json" (the default,
	// newline-delimited JSON) or "columnar" (the binary columnar format
	// of wire.go, which implies Stream).
	Format string `json:"format,omitempty"`
	// Degraded overrides the database's degraded-mode default for this
	// request: true accepts a partial result (with per-chunk warnings)
	// when chunk fetches exhaust their retries, false demands strict
	// fail-fast. Omitted defers to the server's -degraded default.
	Degraded *bool `json:"degraded,omitempty"`
}

// QueryStats mirrors the executor's per-query statistics.
type QueryStats struct {
	QueryType      int     `json:"query_type"`
	ElapsedUS      int64   `json:"elapsed_us"`
	Stage1US       int64   `json:"stage1_us"`
	LoadUS         int64   `json:"load_us"`
	Stage2US       int64   `json:"stage2_us"`
	ChunksSelected int     `json:"chunks_selected"`
	ChunksLoaded   int     `json:"chunks_loaded"`
	CacheHits      int     `json:"cache_hits"`
	RowsLoaded     int64   `json:"rows_loaded"`
	SampleFraction float64 `json:"sample_fraction"`
	DMdComputed    int     `json:"dmd_windows_computed,omitempty"`
	// CompileUS is the parse+plan+optimize time of this request;
	// PlanCacheHit marks that the compiled plan came from the cache.
	CompileUS    int64 `json:"compile_us"`
	PlanCacheHit bool  `json:"plan_cache_hit"`
	// TimeoutMS is the effective deadline this request ran under (the
	// requested timeout_ms, the server default when none was sent, or
	// the server cap); TimeoutCapped marks that the requested value
	// exceeded the cap and was clamped.
	TimeoutMS     int64 `json:"timeout_ms"`
	TimeoutCapped bool  `json:"timeout_capped,omitempty"`
	// Degraded marks a partial result: ChunksSkipped chunks were
	// unavailable and the response carries one warning for each.
	Degraded      bool `json:"degraded,omitempty"`
	ChunksSkipped int  `json:"chunks_skipped,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	Columns  []string   `json:"columns"`
	Rows     [][]any    `json:"rows"`
	RowCount int        `json:"row_count"`
	Stats    QueryStats `json:"stats"`
	// Warnings is present only on degraded results: one entry per
	// chunk the query proceeded without.
	Warnings []engine.Warning `json:"warnings,omitempty"`
}

// errorResponse is every non-2xx body. Position (byte offset into the
// statement) is present for parse errors.
type errorResponse struct {
	Error    string `json:"error"`
	Position *int   `json:"position,omitempty"`
}

// errorBody builds the error response, surfacing the parse position
// when the failure carries one.
func errorBody(err error) errorResponse {
	body := errorResponse{Error: err.Error()}
	var perr *sqlparse.Error
	if errors.As(err, &perr) {
		pos := perr.Pos
		body.Position = &pos
	}
	return body
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing \"sql\""})
		return
	}
	if req.TimeoutMS < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "timeout_ms must be non-negative"})
		return
	}
	timeout := s.cfg.DefaultTimeout
	capped := false
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
			capped = true
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if req.Degraded != nil {
		ctx = engine.WithDegraded(ctx, *req.Degraded)
	}

	s.received.Add(1)
	// JSON numbers arrive as float64; integral values mean integers
	// (file IDs, timestamps) far more often than floats, and the
	// numeric comparison kernels promote either way.
	for i, p := range req.Params {
		if f, ok := p.(float64); ok && f == math.Trunc(f) && math.Abs(f) < 1<<53 {
			req.Params[i] = int64(f)
		}
	}
	switch req.Format {
	case "", FormatNDJSON, FormatColumnar:
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown format %q", req.Format)})
		return
	}
	// server.admit fault point: a synthetic shed or a stalled gate,
	// before the request touches the queue.
	if act := s.db.FaultInjector().Check(fault.PointAdmit); act.Err != nil || act.Delay > 0 {
		if err := act.Wait(ctx); err != nil {
			s.failed.Add(1)
			s.writeError(w, err)
			return
		}
		if act.Err != nil {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: fmt.Sprintf("admission rejected (injected): %v", act.Err)})
			return
		}
	}
	tk, err := s.ctrl.Admit(ctx)
	if err != nil {
		var rej *admission.RejectError
		if errors.As(err, &rej) {
			s.rejected.Add(1)
		} else {
			// The context died while queued: the deadline-aware queue
			// never dispatched it.
			s.failed.Add(1)
		}
		s.writeError(w, err)
		return
	}
	// The ticket's Done releases the concurrency slot and feeds the
	// AIMD loop — unless the query was dropped (killed, disconnected),
	// whose latency measures the client's patience, not ours.
	dropped := false
	defer func() { tk.Done(dropped) }()
	if err := ctx.Err(); err != nil {
		// Admitted but dead on arrival (the window between dispatch and
		// here): never start executing.
		dropped = true
		s.failed.Add(1)
		s.writeError(w, err)
		return
	}
	t0 := time.Now()
	if req.Stream || req.Format == FormatColumnar {
		s.streamed.Add(1)
		dropped = s.streamQuery(ctx, w, req, timeout, capped) != nil
		return
	}
	res, err := s.db.QueryArgsContext(ctx, req.SQL, req.Params...)
	if err != nil {
		dropped = true
		s.failed.Add(1)
		s.writeError(w, err)
		return
	}
	s.completed.Add(1)
	if len(res.Warnings) > 0 {
		s.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, toResponse(res, time.Since(t0), timeout, capped))
}

// noteError maintains the overload counters for a failed query: a
// watchdog kill or a governor shed is worth distinguishing from a
// generic failure on /stats.
func (s *Server) noteError(err error) {
	var (
		ge *storage.GovernorError
		de *exec.DeadlineError
	)
	switch {
	case errors.As(err, &ge):
		s.governorSheds.Add(1)
	case errors.As(err, &de):
		s.deadlineKills.Add(1)
	}
}

// writeError classifies err, maintains the shed/kill counters, sets
// Retry-After on backpressure rejections, and writes the JSON error
// envelope.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.noteError(err)
	var rej *admission.RejectError
	var ge *storage.GovernorError
	switch {
	case errors.As(err, &rej):
		w.Header().Set("Retry-After", retryAfterSeconds(rej.RetryAfter))
	case errors.As(err, &ge):
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, errorStatus(err), errorBody(err))
}

// retryAfterSeconds renders a Retry-After duration in whole seconds,
// never below 1 (the header has second resolution, and "0" invites an
// immediate retry storm).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// errorStatus classifies a query error: deadline and cancellation get
// their dedicated codes; parse and planning failures are the client's
// query (400); everything else — chunk I/O, executor faults — is a
// server-side failure (500), so retry and alerting logic can tell the
// two apart.
func errorStatus(err error) int {
	var (
		qe  *storage.QuotaError
		ge  *storage.GovernorError
		rej *admission.RejectError
	)
	switch {
	case errors.As(err, &rej), errors.As(err, &ge):
		// Backpressure, not failure: admission or the global memory
		// governor shed the query. Retry against a less loaded moment
		// (the handler attaches Retry-After).
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		// Including *exec.DeadlineError — the runaway watchdog's
		// morsel-boundary kill unwraps to the context deadline.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.As(err, &qe):
		// The query tripped the per-query memory ceiling
		// (engine.Config.MaxQueryBytes): the result is too large to
		// materialize, which a streaming request might still manage.
		return http.StatusRequestEntityTooLarge
	}
	msg := err.Error()
	if strings.HasPrefix(msg, "sql:") || strings.HasPrefix(msg, "plan:") ||
		strings.HasPrefix(msg, "engine: statement") ||
		strings.HasPrefix(msg, "engine: unsupported argument") ||
		strings.HasPrefix(msg, "engine: prepared statement") {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// toResponse converts an engine result to the wire shape, releasing the
// result's pooled batch memory once the rows are rendered.
func toResponse(res *engine.Result, elapsed, timeout time.Duration, capped bool) QueryResponse {
	flat := res.Rel.Flatten()
	rows := make([][]any, flat.Len())
	for ri := 0; ri < flat.Len(); ri++ {
		row := make([]any, flat.Width())
		for ci := 0; ci < flat.Width(); ci++ {
			row[ci] = jsonValue(flat.Cols[ci], ri)
		}
		rows[ri] = row
	}
	res.Release()
	return QueryResponse{
		Columns:  res.Names,
		Rows:     rows,
		RowCount: flat.Len(),
		Stats:    toStats(res, elapsed, timeout, capped),
		Warnings: res.Warnings,
	}
}

// toStats converts the engine's per-query statistics to the wire
// shape; shared by the materialized response and the streaming footer.
func toStats(res *engine.Result, elapsed, timeout time.Duration, capped bool) QueryStats {
	st := res.Stats
	return QueryStats{
		QueryType:      res.QueryType,
		ElapsedUS:      elapsed.Microseconds(),
		Stage1US:       st.Stage1.Microseconds(),
		LoadUS:         st.Load.Microseconds(),
		Stage2US:       st.Stage2.Microseconds(),
		ChunksSelected: st.ChunksSelected,
		ChunksLoaded:   st.ChunksLoaded,
		CacheHits:      st.CacheHits,
		RowsLoaded:     st.RowsLoaded,
		SampleFraction: st.SampleFraction,
		DMdComputed:    res.DMd.Computed,
		CompileUS:      res.Compile.Microseconds(),
		PlanCacheHit:   res.PlanCacheHit,
		TimeoutMS:      timeout.Milliseconds(),
		TimeoutCapped:  capped,
		Degraded:       len(res.Warnings) > 0,
		ChunksSkipped:  st.ChunksSkipped,
	}
}

// timeLayout renders time columns in both wire formats.
const timeLayout = "2006-01-02T15:04:05.000"

func jsonValue(c storage.Column, r int) any {
	if tc, ok := c.(*storage.TimeColumn); ok {
		return time.Unix(0, tc.Value(r)).UTC().Format(timeLayout)
	}
	v := storage.ValueAt(c, r)
	// JSON has no NaN/Inf (an AVG over zero rows is NaN); encode null
	// instead of failing the response mid-write.
	if f, ok := v.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
		return nil
	}
	return v
}

// GovernorStats is the /stats snapshot of the global memory governor.
type GovernorStats struct {
	LimitBytes     int64 `json:"limit_bytes"`
	InUseBytes     int64 `json:"in_use_bytes"`
	HighWaterBytes int64 `json:"high_water_bytes"`
	Sheds          int64 `json:"sheds"`
	Waits          int64 `json:"waits"`
}

// StatsResponse is the GET /stats body.
type StatsResponse struct {
	UptimeS    int64  `json:"uptime_s"`
	Approach   string `json:"approach"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	InFlight   int64  `json:"in_flight"`
	Received   int64  `json:"received"`
	Completed  int64  `json:"completed"`
	Failed     int64  `json:"failed"`
	Rejected   int64  `json:"rejected"`
	Streamed   int64  `json:"streamed"`
	// Degraded counts completed queries that returned partial results.
	Degraded int64 `json:"degraded"`
	// DeadlineKills counts queries the runaway watchdog cancelled at a
	// morsel boundary after their deadline expired mid-execution.
	DeadlineKills int64 `json:"deadline_kills"`
	// GovernorSheds counts queries rejected because the global memory
	// governor could not reserve for them in time.
	GovernorSheds int64 `json:"governor_sheds"`
	// Admission is the adaptive limiter's live state: current limit,
	// queue depth and wait percentiles, shed counters.
	Admission admission.Stats `json:"admission"`
	// Governor is the global memory pool's accounting; absent when the
	// server runs ungoverned (no -global-memory-bytes).
	Governor *GovernorStats `json:"governor,omitempty"`
	// Source is the chunk source's reliability snapshot (circuit
	// breakers, quarantine, retry counters) when the source tracks one
	// (remote HTTP archives do); absent for local repositories.
	Source *registrar.Health `json:"source,omitempty"`
	Cache  struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		BytesUsed int64 `json:"bytes_used"`
		Chunks    int   `json:"chunks"`
	} `json:"cache"`
	// DiskCache is the persistent cache tier's counters; absent when
	// the server runs without -cache-dir (RAM-only cache).
	DiskCache *cache.DiskTierStats `json:"disk_cache,omitempty"`
	PlanCache struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Size     int   `json:"size"`
		Capacity int   `json:"capacity"`
	} `json:"plan_cache"`
	MaterializedWindows int `json:"materialized_windows"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only"})
		return
	}
	var resp StatsResponse
	ad := s.ctrl.Snapshot()
	resp.UptimeS = int64(time.Since(s.start).Seconds())
	resp.Approach = string(s.db.Approach())
	resp.Workers = ad.Limit
	resp.QueueDepth = s.cfg.QueueDepth
	resp.Queued = ad.Queued
	resp.InFlight = int64(ad.InFlight)
	resp.Received = s.received.Load()
	resp.Completed = s.completed.Load()
	resp.Failed = s.failed.Load()
	resp.Rejected = s.rejected.Load()
	resp.Streamed = s.streamed.Load()
	resp.Degraded = s.degraded.Load()
	resp.DeadlineKills = s.deadlineKills.Load()
	resp.GovernorSheds = s.governorSheds.Load()
	resp.Admission = ad
	if g := s.db.Governor(); g != nil {
		resp.Governor = &GovernorStats{
			LimitBytes:     g.Limit(),
			InUseBytes:     g.InUse(),
			HighWaterBytes: g.HighWater(),
			Sheds:          g.Sheds(),
			Waits:          g.Waits(),
		}
	}
	resp.Source = s.db.SourceHealth()
	cs := s.db.CacheStats()
	resp.Cache.Hits = cs.Hits
	resp.Cache.Misses = cs.Misses
	resp.Cache.Evictions = cs.Evictions
	resp.Cache.BytesUsed = cs.BytesUsed
	resp.Cache.Chunks = cs.Chunks
	if s.db.DiskTierEnabled() {
		ds := s.db.DiskCacheStats()
		resp.DiskCache = &ds
	}
	ps := s.db.PlanCacheStats()
	resp.PlanCache.Hits = ps.Hits
	resp.PlanCache.Misses = ps.Misses
	resp.PlanCache.Size = ps.Size
	resp.PlanCache.Capacity = ps.Capacity
	resp.MaterializedWindows = s.db.MaterializedWindows()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is pure liveness: the process is up and serving. It
// deliberately stays 200 under overload — restarting a server for
// being busy makes the overload worse.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 503 while the admission queue is
// saturated (half its bound) or the memory governor is effectively
// exhausted, so load balancers stop routing here *before* requests
// start shedding, and resume when pressure drains.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var reasons []string
	if s.ctrl.Saturated() {
		reasons = append(reasons, "admission queue saturated")
	}
	if s.db.Governor().Exhausted() {
		reasons = append(reasons, "memory governor exhausted")
	}
	if len(reasons) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready: "+strings.Join(reasons, "; "))
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
