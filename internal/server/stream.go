// Streaming request path: instead of materializing the whole result
// and writing one JSON body, a streaming request's batches are encoded
// and flushed to the client as the executor produces them. The flush
// is the backpressure point — the worker goroutine running the query
// blocks inside Push until the client-side TCP window drains, which
// suspends the morsel cursor upstream (physical.streamParts), so a
// slow reader throttles the scan instead of growing a buffer. A
// client that disconnects mid-stream fails the next flush, which
// cancels the query the same way.

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"time"

	"sommelier/internal/engine"
	"sommelier/internal/storage"
)

// Wire formats of a streaming response.
const (
	// FormatNDJSON is the default: one JSON object per line — a
	// {"columns": [...]} header, {"rows": [[...], ...]} per batch, and
	// a {"row_count", "stats"} footer (or {"error"} after a mid-stream
	// failure, since the 200 status is already on the wire).
	FormatNDJSON = "json"
	// FormatColumnar is the compact binary format of wire.go.
	FormatColumnar = "columnar"
)

// streamEncoder is what the streaming path needs from a wire format:
// an engine sink plus the server-side framing calls.
type streamEncoder interface {
	engine.SchemaSink
	// started reports whether response bytes are on the wire; before
	// that, errors can still use the ordinary JSON error envelope.
	started() bool
	rowCount() int
	finish(stats QueryStats, warnings []engine.Warning)
	fail(err error)
}

// streamQuery executes one streaming request on the handler
// goroutine and settles the outcome counters, returning the query
// error (nil on success) so the admission ticket can be released with
// the right dropped/served classification.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, req QueryRequest, timeout time.Duration, capped bool) error {
	var enc streamEncoder
	if req.Format == FormatColumnar {
		enc = newColumnarSink(w)
	} else {
		enc = newNDJSONSink(w)
	}
	t0 := time.Now()
	res, err := s.db.QueryStream(ctx, req.SQL, enc, req.Params...)
	if err != nil {
		s.failed.Add(1)
		if enc.started() {
			// The 200 is already on the wire: note the error's counters
			// and append the in-band error line.
			s.noteError(err)
			enc.fail(err)
		} else {
			s.writeError(w, err)
		}
		return err
	}
	s.completed.Add(1)
	if len(res.Warnings) > 0 {
		s.degraded.Add(1)
	}
	enc.finish(toStats(res, time.Since(t0), timeout, capped), res.Warnings)
	res.Release()
	return nil
}

// ndjsonSink encodes a query stream as newline-delimited JSON; see
// FormatNDJSON for the line shapes.
type ndjsonSink struct {
	hw    http.ResponseWriter
	fl    http.Flusher
	enc   *json.Encoder
	names []string
	begun bool
	rows  int
}

func newNDJSONSink(w http.ResponseWriter) *ndjsonSink {
	s := &ndjsonSink{hw: w}
	s.fl, _ = w.(http.Flusher)
	s.enc = json.NewEncoder(w)
	s.enc.SetEscapeHTML(false)
	return s
}

// SetSchema implements engine.SchemaSink.
func (s *ndjsonSink) SetSchema(names []string, kinds []storage.Kind) { s.names = names }

func (s *ndjsonSink) started() bool { return s.begun }
func (s *ndjsonSink) rowCount() int { return s.rows }

type ndjsonHeader struct {
	Columns []string `json:"columns"`
}

type ndjsonRows struct {
	Rows [][]any `json:"rows"`
}

type ndjsonFooter struct {
	RowCount int              `json:"row_count"`
	Stats    QueryStats       `json:"stats"`
	Warnings []engine.Warning `json:"warnings,omitempty"`
}

// begin commits the 200 status and writes the header line on first
// output, so pre-execution failures keep the plain JSON error path.
func (s *ndjsonSink) begin() error {
	if s.begun {
		return nil
	}
	s.begun = true
	s.hw.Header().Set("Content-Type", "application/x-ndjson")
	s.hw.WriteHeader(http.StatusOK)
	cols := s.names
	if cols == nil {
		cols = []string{}
	}
	return s.enc.Encode(ndjsonHeader{Columns: cols})
}

// Push implements engine.StreamSink: one rows line per batch, flushed.
func (s *ndjsonSink) Push(b *storage.Batch) error {
	flat := b.Materialize()
	defer storage.PutBatch(flat)
	if err := s.begin(); err != nil {
		return err
	}
	rows := make([][]any, flat.Len())
	for ri := 0; ri < flat.Len(); ri++ {
		row := make([]any, flat.Width())
		for ci := 0; ci < flat.Width(); ci++ {
			row[ci] = jsonValue(flat.Cols[ci], ri)
		}
		rows[ri] = row
	}
	s.rows += flat.Len()
	if err := s.enc.Encode(ndjsonRows{Rows: rows}); err != nil {
		return err
	}
	s.flush()
	return nil
}

func (s *ndjsonSink) flush() {
	if s.fl != nil {
		s.fl.Flush()
	}
}

func (s *ndjsonSink) finish(stats QueryStats, warnings []engine.Warning) {
	if err := s.begin(); err != nil {
		return
	}
	_ = s.enc.Encode(ndjsonFooter{RowCount: s.rows, Stats: stats, Warnings: warnings})
	s.flush()
}

func (s *ndjsonSink) fail(err error) {
	_ = s.enc.Encode(errorResponse{Error: err.Error()})
	s.flush()
}
