package plan

import (
	"math/rand"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/seismic"
	"sommelier/internal/table"
)

func TestMetadataOnlyQueryHasNoSecondStage(t *testing.T) {
	cat := seismic.NewCatalog()
	q := &Query{
		Select: []SelectItem{{Agg: AggCount, Alias: "n"}},
		From:   "F",
		Where:  expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("ISK")),
	}
	p, err := Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.TwoStage {
		t.Fatal("metadata-only query should not be two-stage")
	}
	if p.Type() != 1 {
		t.Fatalf("type = T%d, want T1", p.Type())
	}
}

func TestQueryTypeTaxonomy(t *testing.T) {
	cat := seismic.NewCatalog()
	// T2: DMd only.
	q2 := &Query{
		Select: []SelectItem{{Expr: expr.Col("window_max_val")}},
		From:   "H",
		Where:  expr.NewCmp(expr.EQ, expr.Col("window_station"), expr.Str("FIAM")),
	}
	p, err := Build(cat, q2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type() != 2 {
		t.Fatalf("type = T%d, want T2", p.Type())
	}
	if p.TwoStage {
		t.Fatal("T2 should not touch actual data")
	}
	// T3: DMd & GMd — join H with F via a view-less query is not
	// expressible, so use windowdataview restricted to metadata
	// columns... T3 needs its own view; emulate with explicit join in
	// WHERE over a two-table FROM is unsupported, so verify via plan
	// classes directly using a handcrafted query on windowdataview
	// without D references is still T5 (D is in the view). Instead,
	// verify the classifier on a synthetic plan.
	p3 := &Plan{GMdTables: []string{"F"}, DMdTables: []string{"H"}}
	if p3.Type() != 3 {
		t.Fatalf("T3 classifier = %d", p3.Type())
	}
	p0 := &Plan{ADTables: []string{"D"}}
	if p0.Type() != 0 {
		t.Fatalf("AD-only should be outside the taxonomy, got T%d", p0.Type())
	}
}

func TestAggregateValidation(t *testing.T) {
	cat := seismic.NewCatalog()
	// Non-grouped bare column with aggregates.
	q := &Query{
		Select: []SelectItem{
			{Expr: expr.Col("station")},
			{Agg: AggAvg, Expr: expr.Col("file_id")},
		},
		From: "F",
	}
	if _, err := Build(cat, q); err == nil {
		t.Fatal("ungrouped column accepted")
	}
	// GROUP BY without aggregates.
	q = &Query{
		Select:  []SelectItem{{Expr: expr.Col("station")}},
		From:    "F",
		GroupBy: []string{"station"},
	}
	if _, err := Build(cat, q); err == nil {
		t.Fatal("GROUP BY without aggregates accepted")
	}
	// Valid grouped aggregate.
	q = &Query{
		Select: []SelectItem{
			{Expr: expr.Col("station")},
			{Agg: AggCount, Alias: "n"},
		},
		From:    "F",
		GroupBy: []string{"station"},
	}
	p, err := Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	names := p.Root.Names()
	if names[0] != "F.station" || names[1] != "n" {
		t.Fatalf("output names = %v", names)
	}
}

func TestBuildErrors(t *testing.T) {
	cat := seismic.NewCatalog()
	cases := []*Query{
		{Select: []SelectItem{{Expr: expr.Col("x")}}, From: "nosuch"},
		{Select: []SelectItem{{Expr: expr.Col("nosuchcol")}}, From: "F"},
		{Select: []SelectItem{{Expr: expr.Col("Z.station")}}, From: "F"},
		{Select: nil, From: "F"},
		{Select: []SelectItem{{Expr: expr.Col("file_id")}}, From: seismic.ViewData}, // ambiguous: F, S and D all have file_id
	}
	for i, q := range cases {
		if _, err := Build(cat, q); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestOrderByLimit(t *testing.T) {
	cat := seismic.NewCatalog()
	q := &Query{
		Select:  []SelectItem{{Expr: expr.Col("station")}, {Expr: expr.Col("uri")}},
		From:    "F",
		OrderBy: []OrderKey{{Col: "station", Desc: true}},
		Limit:   5,
	}
	p, err := Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	lim, ok := p.Root.(*Limit)
	if !ok {
		t.Fatalf("root = %T, want Limit", p.Root)
	}
	if _, ok := lim.In.(*Sort); !ok {
		t.Fatalf("below limit = %T, want Sort", lim.In)
	}
}

// Property: R1–R4 hold on random colored query graphs.
func TestQuickJoinOrderInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2015))
	for trial := 0; trial < 300; trial++ {
		nv := rng.Intn(7) + 1
		g := &Graph{}
		for i := 0; i < nv; i++ {
			class := table.GivenMetadata
			switch rng.Intn(3) {
			case 1:
				class = table.DerivedMetadata
			case 2:
				class = table.ActualData
			}
			g.Verts = append(g.Verts, Vertex{
				Table:    string(rune('A' + i)),
				Class:    class,
				Filtered: rng.Intn(2) == 0,
			})
		}
		ne := rng.Intn(nv * 2)
		for i := 0; i < ne; i++ {
			a, b := rng.Intn(nv), rng.Intn(nv)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			g.Edges = append(g.Edges, GraphEdge{A: a, B: b, Pred: table.JoinPred{
				Left: g.Verts[a].Table + ".k", Right: g.Verts[b].Table + ".k",
			}})
		}
		ord, err := OrderJoins(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := Validate(g, ord); err != nil {
			t.Fatalf("trial %d: %v\nverts=%+v edges=%+v order=%+v", trial, err, g.Verts, g.Edges, ord)
		}
		// Extra invariant: the red phase covers exactly the red
		// vertices.
		redCount := 0
		for _, v := range g.Verts {
			if v.Color() == Red {
				redCount++
			}
		}
		got := 0
		for _, st := range ord.Steps[:ord.RedSteps] {
			got += len(st.Verts)
		}
		if got != redCount {
			t.Fatalf("trial %d: red phase joined %d of %d red vertices", trial, got, redCount)
		}
	}
}

// The paper's rule-set motivation: R2 prevents access to an AD table
// without exploiting metadata. Verify cross products appear only inside
// the red phase for connected blue subgraphs.
func TestRedCrossProductBeforeBlue(t *testing.T) {
	// m5 connects to a2 only (blue); m1..m4 are a separate red
	// component — Figure 5's shape.
	g := &Graph{
		Verts: []Vertex{
			{Table: "m1", Class: table.GivenMetadata},
			{Table: "m5", Class: table.GivenMetadata},
			{Table: "a2", Class: table.ActualData},
		},
		Edges: []GraphEdge{
			{A: 1, B: 2, Pred: table.JoinPred{Left: "m5.k", Right: "a2.k"}},
		},
	}
	ord, err := OrderJoins(g)
	if err != nil {
		t.Fatal(err)
	}
	if ord.RedSteps != 2 {
		t.Fatalf("red steps = %d, want 2 (m1 × m5 cross)", ord.RedSteps)
	}
	if !ord.Steps[1].Cross {
		t.Fatal("second red step should be a cross product (R2)")
	}
	// a2 joins afterwards via the blue edge.
	last := ord.Steps[2]
	if len(last.Edges) != 1 || g.EdgeColor(last.Edges[0]) != Blue {
		t.Fatalf("a2 should join via its blue edge, got %+v", last)
	}
}

func TestEdgeColors(t *testing.T) {
	g := &Graph{
		Verts: []Vertex{
			{Table: "m", Class: table.GivenMetadata},
			{Table: "h", Class: table.DerivedMetadata},
			{Table: "a", Class: table.ActualData},
			{Table: "b", Class: table.ActualData},
		},
	}
	cases := []struct {
		a, b int
		want Color
	}{
		{0, 1, Red}, {0, 2, Blue}, {1, 2, Blue}, {2, 3, Black},
	}
	for _, c := range cases {
		if got := g.EdgeColor(GraphEdge{A: c.a, B: c.b}); got != c.want {
			t.Errorf("edge %d-%d color = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if Red.String() != "red" || Blue.String() != "blue" || Black.String() != "black" {
		t.Fatal("color names")
	}
}
