package plan

import (
	"strings"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/seismic"
	"sommelier/internal/table"
)

// scanFilterOf returns the pushed-down filter of the named table's scan.
func scanFilterOf(root Node, tab string) expr.Expr {
	var out expr.Expr
	var rec func(Node)
	rec = func(n Node) {
		if s, ok := n.(*Scan); ok && s.Table == tab {
			out = s.Filter
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(root)
	return out
}

func TestRangeInferenceDerivesSegmentPredicates(t *testing.T) {
	cat := seismic.NewCatalog()
	q := query1() // D.sample_time ∈ (t1, t2)
	p, err := Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	sf := scanFilterOf(p.Root, "S")
	if sf == nil {
		t.Fatal("no inferred predicate on S")
	}
	repr := sf.String()
	// ad > c implies Hi > c; ad < c implies Lo <= c.
	if !strings.Contains(repr, "S.end_time >") || !strings.Contains(repr, "S.start_time <=") {
		t.Fatalf("inferred = %s", repr)
	}
	// The S vertex must now count as filtered (join-order heuristic).
	for _, v := range p.Graph.Verts {
		if v.Table == "S" && !v.Filtered {
			t.Fatal("S not marked filtered after inference")
		}
	}
}

func TestEqualityInferenceDerivesBothBounds(t *testing.T) {
	cat := seismic.NewCatalog()
	q := &Query{
		Select: []SelectItem{{Agg: AggCount, Alias: "n"}},
		From:   seismic.ViewData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str("ISK")),
			expr.NewCmp(expr.EQ, expr.Col("D.sample_time"), expr.Time(12345)),
		}),
	}
	p, err := Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	sf := scanFilterOf(p.Root, "S")
	if sf == nil {
		t.Fatal("no inferred predicate on S")
	}
	repr := sf.String()
	if !strings.Contains(repr, "S.end_time >") || !strings.Contains(repr, "S.start_time <=") {
		t.Fatalf("point lookup should bound both sides, got %s", repr)
	}
}

func TestInferenceSoundness(t *testing.T) {
	// The inferred predicate must be implied by the original: any
	// segment [lo, hi) containing a sample t with t > c must satisfy
	// hi > c, and with t < c must satisfy lo <= c. Exercise the
	// algebra directly over a grid of cases.
	m := table.RangeMapping{ADColumn: "D.sample_time", MdLo: "S.start_time", MdHi: "S.end_time"}
	for _, tc := range []struct {
		op   expr.CmpOp
		c    int64
		want string
	}{
		{expr.GT, 100, "S.end_time >"},
		{expr.GE, 100, "S.end_time >"},
		{expr.LT, 100, "S.start_time <="},
		{expr.LE, 100, "S.start_time <="},
	} {
		e := expr.NewCmp(tc.op, expr.Col("D.sample_time"), expr.Time(tc.c))
		got := inferRangePreds(m, e)
		if len(got) != 1 {
			t.Fatalf("%v: %d predicates", tc.op, len(got))
		}
		if !strings.Contains(got[0].String(), tc.want) {
			t.Fatalf("%v inferred %s, want %s", tc.op, got[0], tc.want)
		}
	}
	// Predicates on other columns infer nothing.
	if got := inferRangePreds(m, expr.NewCmp(expr.GT, expr.Col("D.sample_value"), expr.Float(1))); got != nil {
		t.Fatalf("value predicate inferred %v", got)
	}
	// Non-range predicates infer nothing.
	if got := inferRangePreds(m, expr.NewCmp(expr.NE, expr.Col("D.sample_time"), expr.Time(1))); got != nil {
		t.Fatalf("inequality inferred %v", got)
	}
}

func TestInferenceSkippedWhenTablesAbsent(t *testing.T) {
	// A query over D alone (no S in FROM) must not reference S.
	cat := seismic.NewCatalog()
	q := &Query{
		Select: []SelectItem{{Agg: AggCount, Alias: "n"}},
		From:   seismic.TableD,
		Where:  expr.NewCmp(expr.GT, expr.Col("sample_time"), expr.Time(5)),
	}
	p, err := Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range scanTables(p.Root) {
		if tab == "S" {
			t.Fatal("inference dragged S into a D-only query")
		}
	}
}
