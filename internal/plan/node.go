// Package plan defines the logical plan IR and compiles SQL query
// specifications into it: Build performs name resolution and typing
// and materializes a deliberately unoptimized operator tree, while the
// rule-based optimizer (internal/opt) rewrites that tree — predicate
// pushdown, range inference, projection pruning, index-key
// recognition, and the paper's compile-time join ordering. The colored
// query graph (metadata vertices red, actual-data vertices black;
// red/blue/black edges), the join-order rules R1–R4 that force every
// metadata join below any actual-data access, and the decomposition of
// a plan Q into the metadata branch Qf (evaluated in stage one to
// identify the chunks of interest) and the remainder Qs live here; the
// optimizer drives them.
package plan

import (
	"fmt"
	"strings"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// AggFunc is an aggregate function.
type AggFunc uint8

// Aggregate functions. AggNone marks a plain (non-aggregated) select
// item.
const (
	AggNone AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
	AggStddev
)

// String returns the SQL name of the function.
func (a AggFunc) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggStddev:
		return "STDDEV"
	default:
		return ""
	}
}

// Node is a logical plan operator. Every node knows its output schema
// (qualified column names and kinds).
type Node interface {
	// Names returns the qualified output column names.
	Names() []string
	// Kinds returns the output column kinds, aligned with Names.
	Kinds() []storage.Kind
	// Children returns the input nodes.
	Children() []Node
	// String renders the operator (not the subtree).
	String() string
}

// IndexHint is the optimizer's index-key recognition annotation on a
// metadata scan: the filter pins every column of some hash index with
// an equality against a constant or parameter. The executor materializes
// Key into an index lookup at run time (substituting parameters) and
// applies Residual on top; Filter stays intact as the fallback when no
// matching index exists in the execution environment.
type IndexHint struct {
	// Cols are the indexed columns (unqualified, in index key order).
	Cols []string
	// Kinds are the schema kinds of Cols, for run-time validation of
	// parameter values.
	Kinds []storage.Kind
	// Key holds one equality operand per indexed column: an expr.Const
	// or expr.Param.
	Key []expr.Expr
	// Residual is the conjunction of filter conjuncts the key did not
	// consume (nil when the key covers the whole filter).
	Residual expr.Expr
}

// Scan reads one base table; Filter is the pushed-down selection over
// this table only (may be nil). For actual-data tables the executor's
// run-time optimizer replaces the Scan by a union of cache-scans and
// chunk-accesses once stage one has identified the chunks.
type Scan struct {
	Table  string
	Class  table.Class
	Filter expr.Expr
	// Cols, when non-nil, restricts the scan to these schema column
	// indexes (the optimizer's projection pruning); names/kinds are
	// narrowed accordingly. Nil reads the full schema.
	Cols []int
	// Index is the optimizer's index-key recognition annotation (nil
	// when no index applies).
	Index *IndexHint
	names []string
	kinds []storage.Kind
	width int // full schema width, for rendering pruned scans
}

// NewScan builds a scan of the cataloged table.
func NewScan(t *table.Table, filter expr.Expr) *Scan {
	return &Scan{
		Table:  t.Name,
		Class:  t.Class,
		Filter: filter,
		names:  t.Schema.QualifiedNames(t.Name),
		kinds:  t.Schema.Kinds(),
		width:  t.Schema.Width(),
	}
}

// NewScanCols builds a scan reading only the schema columns at idxs (in
// the given order).
func NewScanCols(t *table.Table, filter expr.Expr, idxs []int) *Scan {
	if idxs == nil {
		return NewScan(t, filter)
	}
	full, kinds := t.Schema.QualifiedNames(t.Name), t.Schema.Kinds()
	s := &Scan{Table: t.Name, Class: t.Class, Filter: filter, Cols: idxs, width: t.Schema.Width()}
	for _, i := range idxs {
		s.names = append(s.names, full[i])
		s.kinds = append(s.kinds, kinds[i])
	}
	return s
}

// Names implements Node.
func (s *Scan) Names() []string { return s.names }

// Kinds implements Node.
func (s *Scan) Kinds() []storage.Kind { return s.kinds }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// String implements Node.
func (s *Scan) String() string {
	var sb strings.Builder
	sb.WriteString("scan(")
	sb.WriteString(s.Table)
	if s.Cols != nil {
		fmt.Fprintf(&sb, " cols=%d/%d", len(s.Cols), s.width)
	}
	if s.Index != nil {
		fmt.Fprintf(&sb, " index=%v", s.Index.Cols)
	}
	if s.Filter != nil {
		sb.WriteString(" | ")
		sb.WriteString(s.Filter.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Join is an inner equi-join (cross product when Preds is empty).
type Join struct {
	L, R  Node
	Preds []table.JoinPred
	names []string
	kinds []storage.Kind
}

// NewJoin builds a join node.
func NewJoin(l, r Node, preds []table.JoinPred) *Join {
	return &Join{
		L: l, R: r, Preds: preds,
		names: append(append([]string{}, l.Names()...), r.Names()...),
		kinds: append(append([]storage.Kind{}, l.Kinds()...), r.Kinds()...),
	}
}

// Names implements Node.
func (j *Join) Names() []string { return j.names }

// Kinds implements Node.
func (j *Join) Kinds() []storage.Kind { return j.kinds }

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.L, j.R} }

// String implements Node.
func (j *Join) String() string {
	if len(j.Preds) == 0 {
		return "cross"
	}
	parts := make([]string, len(j.Preds))
	for i, p := range j.Preds {
		parts[i] = p.Left + "=" + p.Right
	}
	return "join(" + strings.Join(parts, ",") + ")"
}

// Select filters rows by a residual predicate that could not be pushed
// into a scan.
type Select struct {
	In   Node
	Pred expr.Expr
}

// NewSelect builds a selection node.
func NewSelect(in Node, pred expr.Expr) *Select { return &Select{In: in, Pred: pred} }

// Names implements Node.
func (s *Select) Names() []string { return s.In.Names() }

// Kinds implements Node.
func (s *Select) Kinds() []storage.Kind { return s.In.Kinds() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.In} }

// String implements Node.
func (s *Select) String() string { return fmt.Sprintf("select(%s)", s.Pred) }

// OutputCol is one projected output column.
type OutputCol struct {
	Name string
	Expr expr.Expr
	Kind storage.Kind
}

// Project evaluates scalar expressions into named output columns.
type Project struct {
	In   Node
	Cols []OutputCol
}

// NewProject builds a projection; expressions are bound against the
// input schema to determine output kinds.
func NewProject(in Node, cols []OutputCol) (*Project, error) {
	for i := range cols {
		k, err := cols[i].Expr.Bind(in.Names(), in.Kinds())
		if err != nil {
			return nil, err
		}
		cols[i].Kind = k
	}
	return &Project{In: in, Cols: cols}, nil
}

// Names implements Node.
func (p *Project) Names() []string {
	out := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = c.Name
	}
	return out
}

// Kinds implements Node.
func (p *Project) Kinds() []storage.Kind {
	out := make([]storage.Kind, len(p.Cols))
	for i, c := range p.Cols {
		out[i] = c.Kind
	}
	return out
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.In} }

// String implements Node.
func (p *Project) String() string { return fmt.Sprintf("project(%d cols)", len(p.Cols)) }

// Fused is the optimizer's pipeline-fusion annotation: a
// Project → (Select →) Scan chain collapsed into one node the executor
// realizes as a single fused physical operator (scan predicate,
// residual filter and projection evaluated in one pass per batch, with
// pooled output memory). Scan keeps the pushed-down filter; Residual is
// the conjunction of any Select predicates that sat between the
// projection and the scan. Only chains whose projection kinds are all
// fixed-width are fused.
type Fused struct {
	Scan     *Scan
	Residual expr.Expr
	Cols     []OutputCol
}

// Names implements Node.
func (f *Fused) Names() []string {
	out := make([]string, len(f.Cols))
	for i, c := range f.Cols {
		out[i] = c.Name
	}
	return out
}

// Kinds implements Node.
func (f *Fused) Kinds() []storage.Kind {
	out := make([]storage.Kind, len(f.Cols))
	for i, c := range f.Cols {
		out[i] = c.Kind
	}
	return out
}

// Children implements Node.
func (f *Fused) Children() []Node { return []Node{f.Scan} }

// String implements Node.
func (f *Fused) String() string {
	if f.Residual != nil {
		return fmt.Sprintf("fuse(project %d cols | %s)", len(f.Cols), f.Residual)
	}
	return fmt.Sprintf("fuse(project %d cols)", len(f.Cols))
}

// AggSpec is one aggregate output.
type AggSpec struct {
	Func AggFunc
	Arg  expr.Expr // nil for COUNT(*)
	Name string
}

// Aggregate groups by columns and computes aggregates per group (or one
// global group when GroupBy is empty).
type Aggregate struct {
	In      Node
	GroupBy []string
	Aggs    []AggSpec
	names   []string
	kinds   []storage.Kind
}

// NewAggregate builds an aggregation node, binding aggregate arguments
// against the input schema.
func NewAggregate(in Node, groupBy []string, aggs []AggSpec) (*Aggregate, error) {
	a := &Aggregate{In: in, GroupBy: groupBy, Aggs: aggs}
	inNames, inKinds := in.Names(), in.Kinds()
	for _, g := range groupBy {
		c := expr.Col(g)
		k, err := c.Bind(inNames, inKinds)
		if err != nil {
			return nil, err
		}
		a.names = append(a.names, g)
		a.kinds = append(a.kinds, k)
	}
	for i := range aggs {
		spec := &aggs[i]
		var argKind storage.Kind
		if spec.Arg != nil {
			k, err := spec.Arg.Bind(inNames, inKinds)
			if err != nil {
				return nil, err
			}
			argKind = k
		} else if spec.Func != AggCount {
			return nil, fmt.Errorf("plan: %s requires an argument", spec.Func)
		}
		a.names = append(a.names, spec.Name)
		a.kinds = append(a.kinds, aggResultKind(spec.Func, argKind))
	}
	a.Aggs = aggs
	return a, nil
}

func aggResultKind(f AggFunc, arg storage.Kind) storage.Kind {
	switch f {
	case AggCount:
		return storage.KindInt64
	case AggAvg, AggStddev:
		return storage.KindFloat64
	case AggSum:
		if arg == storage.KindInt64 {
			return storage.KindInt64
		}
		return storage.KindFloat64
	default: // MIN, MAX keep the argument kind
		return arg
	}
}

// Names implements Node.
func (a *Aggregate) Names() []string { return a.names }

// Kinds implements Node.
func (a *Aggregate) Kinds() []storage.Kind { return a.kinds }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.In} }

// String implements Node.
func (a *Aggregate) String() string {
	return fmt.Sprintf("aggregate(group=%v, aggs=%d)", a.GroupBy, len(a.Aggs))
}

// OrderKey is one sort key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Sort orders rows by the given keys.
type Sort struct {
	In   Node
	Keys []OrderKey
}

// NewSort builds a sort node after validating the keys.
func NewSort(in Node, keys []OrderKey) (*Sort, error) {
	for _, k := range keys {
		if _, err := expr.Col(k.Col).Bind(in.Names(), in.Kinds()); err != nil {
			return nil, err
		}
	}
	return &Sort{In: in, Keys: keys}, nil
}

// Names implements Node.
func (s *Sort) Names() []string { return s.In.Names() }

// Kinds implements Node.
func (s *Sort) Kinds() []storage.Kind { return s.In.Kinds() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.In} }

// String implements Node.
func (s *Sort) String() string { return fmt.Sprintf("sort(%v)", s.Keys) }

// TopK keeps the first N rows of the input ordered by Keys: the fusion
// of Sort+Limit the topk optimizer rule produces, executed as a
// bounded-memory selection so the sort never materializes more than
// O(N) rows.
type TopK struct {
	In   Node
	Keys []OrderKey
	N    int
}

// Names implements Node.
func (t *TopK) Names() []string { return t.In.Names() }

// Kinds implements Node.
func (t *TopK) Kinds() []storage.Kind { return t.In.Kinds() }

// Children implements Node.
func (t *TopK) Children() []Node { return []Node{t.In} }

// String implements Node.
func (t *TopK) String() string { return fmt.Sprintf("topk(%v, %d)", t.Keys, t.N) }

// Limit keeps the first N rows.
type Limit struct {
	In Node
	N  int
}

// Names implements Node.
func (l *Limit) Names() []string { return l.In.Names() }

// Kinds implements Node.
func (l *Limit) Kinds() []storage.Kind { return l.In.Kinds() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.In} }

// String implements Node.
func (l *Limit) String() string { return fmt.Sprintf("limit(%d)", l.N) }

// Render pretty-prints a plan subtree, marking the Qf branch in the
// spirit of the paper's bold-face notation.
func Render(root Node, qf Node) string {
	var sb strings.Builder
	var rec func(n Node, depth int, inQf bool)
	rec = func(n Node, depth int, inQf bool) {
		if n == qf {
			inQf = true
		}
		sb.WriteString(strings.Repeat("  ", depth))
		if inQf {
			sb.WriteString("[Qf] ")
		}
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1, inQf)
		}
	}
	rec(root, 0, false)
	return sb.String()
}

// RenderAnnotated pretty-prints a plan like Render, appending the
// annotation returned by annot (if any) to each operator line. It is
// the backbone of EXPLAIN ANALYZE.
func RenderAnnotated(root Node, qf Node, annot func(Node) string) string {
	var sb strings.Builder
	var rec func(n Node, depth int, inQf bool)
	rec = func(n Node, depth int, inQf bool) {
		if n == qf {
			inQf = true
		}
		sb.WriteString(strings.Repeat("  ", depth))
		if inQf {
			sb.WriteString("[Qf] ")
		}
		sb.WriteString(n.String())
		if a := annot(n); a != "" {
			sb.WriteString("   -- ")
			sb.WriteString(a)
		}
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1, inQf)
		}
	}
	rec(root, 0, false)
	return sb.String()
}
