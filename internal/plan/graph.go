package plan

import (
	"fmt"
	"sort"

	"sommelier/internal/table"
)

// Color classifies query-graph vertices and edges, following the
// paper's scheme: metadata vertices are red, actual-data vertices
// black; an edge is red between two red vertices, black between two
// black vertices, and blue between a red and a black vertex.
type Color uint8

// Colors.
const (
	Red Color = iota
	Blue
	Black
)

// String names the color.
func (c Color) String() string { return [...]string{"red", "blue", "black"}[c] }

// Vertex is one base table occurrence in the query graph.
type Vertex struct {
	Table string
	Class table.Class
	// Filtered records whether a selection predicate was pushed down
	// to this table; the greedy join order prefers filtered tables
	// first.
	Filtered bool
}

// Color returns red for metadata tables, black for actual data.
func (v Vertex) Color() Color {
	if v.Class.IsMetadata() {
		return Red
	}
	return Black
}

// GraphEdge is an equality join predicate connecting two vertices.
type GraphEdge struct {
	A, B int // vertex indexes, A < B
	Pred table.JoinPred
}

// Graph is the query graph the join-order optimizer works on.
type Graph struct {
	Verts []Vertex
	Edges []GraphEdge
}

// EdgeColor derives the color of edge e from its endpoint classes.
func (g *Graph) EdgeColor(e GraphEdge) Color {
	ca, cb := g.Verts[e.A].Color(), g.Verts[e.B].Color()
	switch {
	case ca == Red && cb == Red:
		return Red
	case ca == Black && cb == Black:
		return Black
	default:
		return Blue
	}
}

// JoinStep records one join of the produced order: the right input
// vertex (or vertex set for the red phase) and the edges applied.
type JoinStep struct {
	// Verts are the vertexes joined in this step.
	Verts []int
	// Edges are the graph edges used as join predicates; empty for a
	// cross product (rule R2).
	Edges []GraphEdge
	// Cross records that this step had to use a cross product.
	Cross bool
}

// Order is the result of join ordering: a sequence of steps building a
// left-deep tree, plus the index of the last pure-metadata step. Steps
// [0, RedSteps) join only red vertices — they form the Qf branch.
type Order struct {
	Steps    []JoinStep
	RedSteps int
}

// OrderJoins arranges the joins of g according to the paper's extended
// rule set:
//
//	R1: join on red edges first, before anything else.
//	R2: only if necessary, use cross products to join all red
//	    vertices into one, before using any blue or black edge.
//	R3: no bushy plans containing black vertices (the black phase
//	    below is strictly linear).
//	R4: join on black edges only if all other edges are used.
//
// Within the rules, filtered tables are preferred earlier (the simple
// selectivity heuristic the paper's example assumes).
func OrderJoins(g *Graph) (*Order, error) {
	if len(g.Verts) == 0 {
		return nil, fmt.Errorf("plan: empty query graph")
	}
	for _, e := range g.Edges {
		if e.A >= e.B || e.B >= len(g.Verts) || e.A < 0 {
			return nil, fmt.Errorf("plan: malformed edge %v", e)
		}
	}
	var reds, blacks []int
	for i, v := range g.Verts {
		if v.Color() == Red {
			reds = append(reds, i)
		} else {
			blacks = append(blacks, i)
		}
	}
	ord := &Order{}
	joined := make(map[int]bool)
	edgeUsed := make([]bool, len(g.Edges))

	// pendingEdges returns the unused edges between the joined set and
	// vertex v.
	pendingEdges := func(v int) []GraphEdge {
		var out []GraphEdge
		for i, e := range g.Edges {
			if edgeUsed[i] {
				continue
			}
			if (e.A == v && joined[e.B]) || (e.B == v && joined[e.A]) {
				out = append(out, e)
				edgeUsed[i] = true
			}
		}
		return out
	}

	// candidate order: filtered tables first, then by index for
	// determinism.
	sortByFilter := func(idxs []int) {
		sort.SliceStable(idxs, func(a, b int) bool {
			fa, fb := g.Verts[idxs[a]].Filtered, g.Verts[idxs[b]].Filtered
			if fa != fb {
				return fa
			}
			return idxs[a] < idxs[b]
		})
	}

	// Phase 1 (R1/R2): join all red vertices using red edges, falling
	// back to cross products only when the red subgraph is
	// disconnected.
	remaining := append([]int{}, reds...)
	sortByFilter(remaining)
	for len(remaining) > 0 {
		if len(ord.Steps) == 0 {
			v := remaining[0]
			remaining = remaining[1:]
			joined[v] = true
			ord.Steps = append(ord.Steps, JoinStep{Verts: []int{v}})
			continue
		}
		// R1: prefer a red vertex connected to the joined set by an
		// unused red edge.
		picked := -1
		for pos, v := range remaining {
			connected := false
			for i, e := range g.Edges {
				if edgeUsed[i] || g.EdgeColor(e) != Red {
					continue
				}
				if (e.A == v && joined[e.B]) || (e.B == v && joined[e.A]) {
					connected = true
					break
				}
			}
			if connected {
				picked = pos
				break
			}
		}
		cross := false
		if picked < 0 {
			// R2: cross product to bring in the next red component.
			picked = 0
			cross = true
		}
		v := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		joined[v] = true
		edges := pendingEdges(v)
		ord.Steps = append(ord.Steps, JoinStep{Verts: []int{v}, Edges: edges, Cross: cross && len(edges) == 0})
	}
	ord.RedSteps = len(ord.Steps)

	// Phase 2 (R3/R4): attach black vertices linearly. Prefer blue
	// edges (R4: black edges only when no blue connection remains);
	// cross products only for fully disconnected vertices.
	remaining = append([]int{}, blacks...)
	sortByFilter(remaining)
	for len(remaining) > 0 {
		picked := -1
		// Look for a vertex reachable via an unused blue edge.
		for pos, v := range remaining {
			for i, e := range g.Edges {
				if edgeUsed[i] || g.EdgeColor(e) != Blue {
					continue
				}
				if (e.A == v && joined[e.B]) || (e.B == v && joined[e.A]) {
					picked = pos
					break
				}
			}
			if picked >= 0 {
				break
			}
		}
		if picked < 0 {
			// R4: fall back to black edges.
			for pos, v := range remaining {
				for i, e := range g.Edges {
					if edgeUsed[i] || g.EdgeColor(e) != Black {
						continue
					}
					if (e.A == v && joined[e.B]) || (e.B == v && joined[e.A]) {
						picked = pos
						break
					}
				}
				if picked >= 0 {
					break
				}
			}
		}
		cross := false
		if picked < 0 {
			picked = 0
			cross = true
		}
		v := remaining[picked]
		remaining = append(remaining[:picked], remaining[picked+1:]...)
		if len(ord.Steps) == 0 {
			// A plan with no metadata tables at all: no red phase.
			joined[v] = true
			ord.Steps = append(ord.Steps, JoinStep{Verts: []int{v}})
			continue
		}
		joined[v] = true
		edges := pendingEdges(v)
		ord.Steps = append(ord.Steps, JoinStep{Verts: []int{v}, Edges: edges, Cross: cross && len(edges) == 0})
	}
	return ord, nil
}

// Validate checks the R1–R4 invariants on a produced order; it is used
// by tests and exposed for the ablation harness.
func Validate(g *Graph, ord *Order) error {
	joined := make(map[int]bool)
	for stepIdx, st := range ord.Steps {
		for _, v := range st.Verts {
			if joined[v] {
				return fmt.Errorf("plan: vertex %d joined twice", v)
			}
			joined[v] = true
			color := g.Verts[v].Color()
			if stepIdx < ord.RedSteps && color != Red {
				return fmt.Errorf("plan: black vertex %d inside red phase", v)
			}
			if stepIdx >= ord.RedSteps && color == Red {
				return fmt.Errorf("plan: red vertex %d after red phase (violates R1)", v)
			}
		}
	}
	if len(joined) != len(g.Verts) {
		return fmt.Errorf("plan: order covers %d of %d vertices", len(joined), len(g.Verts))
	}
	// R4: once any black edge is used, no blue edge may follow.
	blackSeen := false
	for _, st := range ord.Steps {
		hasBlue, hasBlack := false, false
		for _, e := range st.Edges {
			switch g.EdgeColor(e) {
			case Blue:
				hasBlue = true
			case Black:
				hasBlack = true
			case Red:
			}
		}
		if hasBlue && blackSeen {
			return fmt.Errorf("plan: blue edge used after a black edge (violates R4)")
		}
		if hasBlack && !hasBlue {
			blackSeen = true
		}
	}
	return nil
}
