package plan

import (
	"fmt"
	"strings"

	"sommelier/internal/expr"
	"sommelier/internal/table"
)

// SelectItem is one item of the SELECT clause: a scalar expression or
// an aggregate over one.
type SelectItem struct {
	Agg   AggFunc
	Expr  expr.Expr // nil only for COUNT(*)
	Alias string
}

// Query is the logical query specification produced by the SQL parser
// or constructed programmatically.
type Query struct {
	Select  []SelectItem
	From    string // view or base table name
	Where   expr.Expr
	GroupBy []string
	OrderBy []OrderKey
	Limit   int // <= 0 means no limit
	// SamplePct, when in (0, 100), asks for approximative answering
	// (the paper's §VIII): the executor evaluates the query over a
	// deterministic sample of that percentage of the selected chunks,
	// trading accuracy for bounded chunk-loading time.
	SamplePct float64
}

// Plan is a compiled query: the operator tree plus the Qf marker that
// tells the executor where stage one ends.
//
// Build produces the unoptimized form: name-resolved, typed, with every
// WHERE conjunct evaluated in a residual selection above the join tree
// and Qf unset. The rule-based optimizer (internal/opt) rewrites Root,
// sets Qf/Graph/Order and records its work in RuleLog. A fully built
// (and optimized) Plan is immutable: executions bind expression clones,
// so one Plan may be shared by any number of concurrent queries — the
// property the engine's compiled-plan cache relies on.
type Plan struct {
	Root Node
	// Qf is the highest sub-plan whose leaves are only metadata
	// tables; nil when the query has no metadata table (or when the
	// Qf/Qs split has not been applied). The executor evaluates it
	// first to identify the chunks of interest.
	Qf Node
	// TwoStage reports whether the plan touches actual data and thus
	// requires the run-time rewrite between the stages.
	TwoStage bool
	// Tables referenced, by class.
	GMdTables, DMdTables, ADTables []string
	// Graph and Order document the join-order decision for
	// inspection and the ablation experiments (set by the optimizer's
	// joinorder rule).
	Graph *Graph
	Order *Order
	// SamplePct carries the query's approximative-answering request
	// (0 = exact).
	SamplePct float64

	// Spec is the name-qualified private copy of the query this plan
	// was compiled from: the optimizer's input, and the source of the
	// per-query derived-metadata preparation (Algorithm 1).
	Spec *Query
	// FromTables lists the resolved FROM tables in resolution order.
	FromTables []string
	// BaseJoins are the equality join predicates: the view definition's
	// joins plus two-table equality conjuncts lifted out of WHERE.
	BaseJoins []table.JoinPred
	// Conjuncts are the remaining WHERE conjuncts (everything that is
	// not a join predicate), in source order.
	Conjuncts []expr.Expr
	// NumParams is the number of parameter placeholders the plan's
	// predicates reference; executions must supply that many arguments.
	NumParams int
	// RuleLog records what each optimizer rule did ("rule: detail"),
	// in pipeline order; empty for an unoptimized plan.
	RuleLog []string
}

// Type returns the paper's query type taxonomy (Table I): which classes
// of data the query refers to.
//
//	T1: GMd            T2: DMd           T3: DMd & GMd
//	T4: GMd & AD       T5: DMd & GMd & AD
//
// Queries outside the taxonomy (e.g. AD only) return 0.
func (p *Plan) Type() int {
	g, d, a := len(p.GMdTables) > 0, len(p.DMdTables) > 0, len(p.ADTables) > 0
	switch {
	case g && !d && !a:
		return 1
	case d && !g && !a:
		return 2
	case d && g && !a:
		return 3
	case g && !d && a:
		return 4
	case g && d && a:
		return 5
	default:
		return 0
	}
}

// Build resolves and types a query against the catalog: view expansion,
// name qualification, join-predicate extraction, aggregation and
// ordering. The produced plan is deliberately unoptimized — all
// non-join WHERE conjuncts sit in one selection above a join tree in
// FROM resolution order, and Qf is unset; internal/opt's rule pipeline
// performs constant folding, predicate pushdown, range-predicate
// inference, R1–R4 join ordering with the Qf/Qs split, projection
// pruning and index-key recognition on top. The query specification is
// not modified — compilation qualifies names on a private copy, so one
// *Query may be Built concurrently by any number of goroutines.
func Build(cat *table.Catalog, q *Query) (*Plan, error) {
	if q.SamplePct < 0 || q.SamplePct > 100 {
		return nil, fmt.Errorf("plan: SAMPLE %v outside [0, 100]", q.SamplePct)
	}
	qc := *q
	qc.Select = append([]SelectItem(nil), q.Select...)
	qc.GroupBy = append([]string(nil), q.GroupBy...)
	qc.OrderBy = append([]OrderKey(nil), q.OrderBy...)
	q = &qc
	tabs, joins, err := resolveFrom(cat, q.From)
	if err != nil {
		return nil, err
	}
	// Qualify every column reference so predicates can be classified
	// by table.
	if q.Where != nil {
		q.Where = expr.Clone(q.Where)
		if err := qualifyExpr(tabs, q.Where); err != nil {
			return nil, err
		}
	}
	for i := range q.Select {
		if q.Select[i].Expr != nil {
			q.Select[i].Expr = expr.Clone(q.Select[i].Expr)
			if err := qualifyExpr(tabs, q.Select[i].Expr); err != nil {
				return nil, err
			}
		}
	}
	for i, g := range q.GroupBy {
		qn, err := qualifyName(tabs, g)
		if err != nil {
			return nil, err
		}
		q.GroupBy[i] = qn
	}
	for i, k := range q.OrderBy {
		qn, err := qualifyName(tabs, k.Col)
		if err != nil {
			return nil, err
		}
		q.OrderBy[i].Col = qn
	}

	// Classify WHERE conjuncts: two-table equality predicates become
	// join edges (part of name resolution — they connect the FROM
	// tables); everything else stays a residual conjunct for the
	// optimizer to place.
	var conjs []expr.Expr
	for _, c := range expr.Conjuncts(q.Where) {
		if refTabs := expr.Tables(c); len(refTabs) == 2 {
			if l, r, ok := expr.JoinEq(c); ok {
				lt, _, err := table.SplitQualified(l)
				if err != nil {
					return nil, err
				}
				rt, _, err := table.SplitQualified(r)
				if err != nil {
					return nil, err
				}
				if lt == rt {
					return nil, fmt.Errorf("plan: self-join predicate %s not supported", c)
				}
				joins = append(joins, table.JoinPred{Left: l, Right: r})
				continue
			}
		}
		conjs = append(conjs, c)
	}

	p := &Plan{Spec: q, BaseJoins: joins, Conjuncts: conjs}
	for _, t := range tabs {
		p.FromTables = append(p.FromTables, t.Name)
		switch t.Class {
		case table.GivenMetadata:
			p.GMdTables = append(p.GMdTables, t.Name)
		case table.DerivedMetadata:
			p.DMdTables = append(p.DMdTables, t.Name)
		case table.ActualData:
			p.ADTables = append(p.ADTables, t.Name)
		}
	}
	p.TwoStage = len(p.ADTables) > 0
	if q.SamplePct > 0 && q.SamplePct < 100 {
		p.SamplePct = q.SamplePct
	}
	p.NumParams = expr.NumParams(q.Where)

	// Materialize the naive tree: scans without filters, joined in FROM
	// resolution order, all residual conjuncts in one selection on top.
	root, err := Assemble(cat, p, nil, nil, nil, p.Conjuncts)
	if err != nil {
		return nil, err
	}
	p.Root = root
	return p, nil
}

// Assemble materializes the operator tree of a resolved plan:
//
//   - scans of p.FromTables, optionally filtered (pushdown[table]) and
//     narrowed to the schema columns in prune[table];
//   - joins following ord (nil joins in FROM resolution order), with
//     every applicable BaseJoins predicate attached; when ord is
//     non-nil, the Qf marker is set after its red phase and
//     metadata-only residual conjuncts are evaluated inside Qf;
//   - the remaining residual conjuncts as one selection;
//   - aggregation / projection / ordering / limit from p.Spec.
//
// Build calls it with everything nil (the unoptimized tree); the
// optimizer calls it again with the outcome of its rules. The returned
// root is stored into p by the caller; p.Qf is set here when ord is
// given.
func Assemble(cat *table.Catalog, p *Plan, pushdown map[string]expr.Expr,
	prune map[string][]int, ord *Order, residual []expr.Expr) (Node, error) {
	scan := func(name string) (Node, error) {
		t, ok := cat.Table(name)
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %q", name)
		}
		return NewScanCols(t, pushdown[name], prune[name]), nil
	}

	var root Node
	var qf Node
	if ord == nil {
		// FROM resolution order; attach every join predicate whose both
		// sides are now in scope.
		inScope := make(map[string]bool, len(p.FromTables))
		used := make([]bool, len(p.BaseJoins))
		for _, tn := range p.FromTables {
			s, err := scan(tn)
			if err != nil {
				return nil, err
			}
			if root == nil {
				root = s
				inScope[tn] = true
				continue
			}
			inScope[tn] = true
			var preds []table.JoinPred
			for ji, j := range p.BaseJoins {
				if used[ji] {
					continue
				}
				lt, _, err := table.SplitQualified(j.Left)
				if err != nil {
					return nil, err
				}
				rt, _, err := table.SplitQualified(j.Right)
				if err != nil {
					return nil, err
				}
				if inScope[lt] && inScope[rt] {
					used[ji] = true
					preds = append(preds, j)
				}
			}
			root = NewJoin(root, s, preds)
		}
	} else {
		graph := p.Graph
		for stepIdx, st := range ord.Steps {
			v := st.Verts[0]
			s, err := scan(graph.Verts[v].Table)
			if err != nil {
				return nil, err
			}
			if root == nil {
				root = s
			} else {
				preds := make([]table.JoinPred, 0, len(st.Edges))
				for _, e := range st.Edges {
					preds = append(preds, e.Pred)
				}
				root = NewJoin(root, s, preds)
			}
			if stepIdx == ord.RedSteps-1 {
				// Metadata-only residual predicates evaluate inside Qf
				// to maximize chunk filtering.
				rest := residual[:0:0]
				for _, r := range residual {
					if onlyMetadata(cat, r) {
						root = NewSelect(root, r)
					} else {
						rest = append(rest, r)
					}
				}
				residual = rest
				qf = root
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("plan: empty FROM")
	}
	if pred := expr.Conjoin(residual); pred != nil {
		root = NewSelect(root, pred)
	}
	if ord != nil {
		p.Qf = qf
	}
	return Finish(root, p.Spec)
}

// Finish places the SELECT-list evaluation (aggregation or projection),
// ordering and limit on top of a join tree.
func Finish(root Node, q *Query) (Node, error) {
	root, err := applySelect(root, q)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		root, err = NewSort(root, q.OrderBy)
		if err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 {
		root = &Limit{In: root, N: q.Limit}
	}
	return root, nil
}

// applySelect adds aggregation or projection on top of the join tree.
func applySelect(root Node, q *Query) (Node, error) {
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	hasAgg := false
	for _, it := range q.Select {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}
	if !hasAgg && len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("plan: GROUP BY without aggregates")
	}
	if !hasAgg {
		cols := make([]OutputCol, len(q.Select))
		for i, it := range q.Select {
			cols[i] = OutputCol{Name: itemName(it), Expr: it.Expr}
		}
		return NewProject(root, cols)
	}
	var aggs []AggSpec
	for _, it := range q.Select {
		if it.Agg == AggNone {
			cr, ok := it.Expr.(*expr.ColRef)
			if !ok {
				return nil, fmt.Errorf("plan: non-aggregated select item %q must be a grouping column", itemName(it))
			}
			found := false
			for _, g := range q.GroupBy {
				if g == cr.Name {
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("plan: column %s not in GROUP BY", cr.Name)
			}
			continue
		}
		aggs = append(aggs, AggSpec{Func: it.Agg, Arg: it.Expr, Name: itemName(it)})
	}
	agg, err := NewAggregate(root, q.GroupBy, aggs)
	if err != nil {
		return nil, err
	}
	// Project into the user's select order and names.
	cols := make([]OutputCol, len(q.Select))
	for i, it := range q.Select {
		cols[i] = OutputCol{Name: itemName(it), Expr: expr.Col(itemName(it))}
		if it.Agg == AggNone {
			cols[i].Expr = expr.Col(it.Expr.(*expr.ColRef).Name)
			cols[i].Name = itemName(it)
		}
	}
	return NewProject(agg, cols)
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != AggNone {
		arg := "*"
		if it.Expr != nil {
			arg = it.Expr.String()
		}
		return fmt.Sprintf("%s(%s)", it.Agg, arg)
	}
	return it.Expr.String()
}

// resolveFrom expands the FROM clause into base tables and join
// predicates.
func resolveFrom(cat *table.Catalog, from string) ([]*table.Table, []table.JoinPred, error) {
	if t, ok := cat.Table(from); ok {
		return []*table.Table{t}, nil, nil
	}
	v, ok := cat.View(from)
	if !ok {
		return nil, nil, fmt.Errorf("plan: unknown table or view %q", from)
	}
	tabs := make([]*table.Table, 0, len(v.Tables))
	for _, tn := range v.Tables {
		t, ok := cat.Table(tn)
		if !ok {
			return nil, nil, fmt.Errorf("plan: view %q references missing table %q", from, tn)
		}
		tabs = append(tabs, t)
	}
	return tabs, append([]table.JoinPred{}, v.Joins...), nil
}

// qualifyExpr rewrites unqualified column references to qualified form,
// resolving each against the FROM tables.
func qualifyExpr(tabs []*table.Table, e expr.Expr) error {
	var firstErr error
	e.Walk(func(x expr.Expr) {
		if firstErr != nil {
			return
		}
		if c, ok := x.(*expr.ColRef); ok {
			qn, err := qualifyName(tabs, c.Name)
			if err != nil {
				firstErr = err
				return
			}
			c.Name = qn
		}
	})
	return firstErr
}

// qualifyName resolves a possibly unqualified column name against the
// FROM tables.
func qualifyName(tabs []*table.Table, name string) (string, error) {
	if strings.Contains(name, ".") {
		tn, cn, err := table.SplitQualified(name)
		if err != nil {
			return "", err
		}
		for _, t := range tabs {
			if t.Name == tn {
				if t.Schema.IndexOf(cn) < 0 {
					return "", fmt.Errorf("plan: table %s has no column %q", tn, cn)
				}
				return name, nil
			}
		}
		return "", fmt.Errorf("plan: table %q not in FROM", tn)
	}
	var found string
	for _, t := range tabs {
		if t.Schema.IndexOf(name) >= 0 {
			if found != "" {
				return "", fmt.Errorf("plan: column %q is ambiguous (%s and %s)", name, found, t.Name)
			}
			found = t.Name + "." + name
		}
	}
	if found == "" {
		return "", fmt.Errorf("plan: unknown column %q", name)
	}
	return found, nil
}

// onlyMetadata reports whether every table referenced by e is a
// metadata table.
func onlyMetadata(cat *table.Catalog, e expr.Expr) bool {
	for _, tn := range expr.Tables(e) {
		t, ok := cat.Table(tn)
		if !ok || !t.Class.IsMetadata() {
			return false
		}
	}
	return true
}
