package plan

import (
	"fmt"
	"strings"

	"sommelier/internal/expr"
	"sommelier/internal/table"
)

// SelectItem is one item of the SELECT clause: a scalar expression or
// an aggregate over one.
type SelectItem struct {
	Agg   AggFunc
	Expr  expr.Expr // nil only for COUNT(*)
	Alias string
}

// Query is the logical query specification produced by the SQL parser
// or constructed programmatically.
type Query struct {
	Select  []SelectItem
	From    string // view or base table name
	Where   expr.Expr
	GroupBy []string
	OrderBy []OrderKey
	Limit   int // <= 0 means no limit
	// SamplePct, when in (0, 100), asks for approximative answering
	// (the paper's §VIII): the executor evaluates the query over a
	// deterministic sample of that percentage of the selected chunks,
	// trading accuracy for bounded chunk-loading time.
	SamplePct float64
}

// Plan is a compiled query: the operator tree plus the Qf marker that
// tells the executor where stage one ends.
type Plan struct {
	Root Node
	// Qf is the highest sub-plan whose leaves are only metadata
	// tables; nil when the query has no metadata table. The executor
	// evaluates it first to identify the chunks of interest.
	Qf Node
	// TwoStage reports whether the plan touches actual data and thus
	// requires the run-time rewrite between the stages.
	TwoStage bool
	// Tables referenced, by class.
	GMdTables, DMdTables, ADTables []string
	// Graph and Order document the join-order decision for
	// inspection and the ablation experiments.
	Graph *Graph
	Order *Order
	// SamplePct carries the query's approximative-answering request
	// (0 = exact).
	SamplePct float64
}

// Type returns the paper's query type taxonomy (Table I): which classes
// of data the query refers to.
//
//	T1: GMd            T2: DMd           T3: DMd & GMd
//	T4: GMd & AD       T5: DMd & GMd & AD
//
// Queries outside the taxonomy (e.g. AD only) return 0.
func (p *Plan) Type() int {
	g, d, a := len(p.GMdTables) > 0, len(p.DMdTables) > 0, len(p.ADTables) > 0
	switch {
	case g && !d && !a:
		return 1
	case d && !g && !a:
		return 2
	case d && g && !a:
		return 3
	case g && !d && a:
		return 4
	case g && d && a:
		return 5
	default:
		return 0
	}
}

// Build compiles a query against the catalog: view expansion, predicate
// pushdown, R1–R4 join ordering, Qf marking, aggregation and ordering.
// The query specification is not modified — compilation qualifies names
// on a private copy, so one *Query may be Built concurrently by any
// number of goroutines (e.g. a query server replaying a prepared spec).
func Build(cat *table.Catalog, q *Query) (*Plan, error) {
	if q.SamplePct < 0 || q.SamplePct > 100 {
		return nil, fmt.Errorf("plan: SAMPLE %v outside [0, 100]", q.SamplePct)
	}
	qc := *q
	qc.Select = append([]SelectItem(nil), q.Select...)
	qc.GroupBy = append([]string(nil), q.GroupBy...)
	qc.OrderBy = append([]OrderKey(nil), q.OrderBy...)
	q = &qc
	tabs, joins, err := resolveFrom(cat, q.From)
	if err != nil {
		return nil, err
	}
	// Qualify every column reference so predicates can be classified
	// by table.
	if q.Where != nil {
		q.Where = expr.Clone(q.Where)
		if err := qualifyExpr(tabs, q.Where); err != nil {
			return nil, err
		}
	}
	for i := range q.Select {
		if q.Select[i].Expr != nil {
			q.Select[i].Expr = expr.Clone(q.Select[i].Expr)
			if err := qualifyExpr(tabs, q.Select[i].Expr); err != nil {
				return nil, err
			}
		}
	}
	for i, g := range q.GroupBy {
		qn, err := qualifyName(tabs, g)
		if err != nil {
			return nil, err
		}
		q.GroupBy[i] = qn
	}
	for i, k := range q.OrderBy {
		qn, err := qualifyName(tabs, k.Col)
		if err != nil {
			return nil, err
		}
		q.OrderBy[i].Col = qn
	}

	// Classify WHERE conjuncts: single-table predicates push down to
	// scans, two-table equalities become join edges, the rest stays
	// residual.
	pushdown := make(map[string][]expr.Expr)
	var residual []expr.Expr
	extraJoins := []table.JoinPred{}
	for _, c := range expr.Conjuncts(q.Where) {
		refTabs := expr.Tables(c)
		switch len(refTabs) {
		case 0:
			residual = append(residual, c)
		case 1:
			pushdown[refTabs[0]] = append(pushdown[refTabs[0]], c)
		case 2:
			if l, r, ok := expr.JoinEq(c); ok {
				extraJoins = append(extraJoins, table.JoinPred{Left: l, Right: r})
			} else {
				residual = append(residual, c)
			}
		default:
			residual = append(residual, c)
		}
	}
	joins = append(joins, extraJoins...)

	// Predicate inference through range mappings: a range predicate on
	// an actual-data column whose values are bounded per chunk by
	// metadata columns implies a metadata predicate, letting the Qf
	// branch prune chunks (e.g. D.sample_time ranges imply bounds on
	// S.start_time / S.end_time).
	inTabs := func(name string) bool {
		for _, t := range tabs {
			if t.Name == name {
				return true
			}
		}
		return false
	}
	for _, m := range cat.RangeMappings() {
		adTab, _, err := table.SplitQualified(m.ADColumn)
		if err != nil {
			return nil, err
		}
		loTab, _, err := table.SplitQualified(m.MdLo)
		if err != nil {
			return nil, err
		}
		hiTab, _, err := table.SplitQualified(m.MdHi)
		if err != nil {
			return nil, err
		}
		if !inTabs(adTab) || !inTabs(loTab) || !inTabs(hiTab) {
			continue
		}
		for _, c := range pushdown[adTab] {
			for _, inferred := range inferRangePreds(m, c) {
				mdTab := expr.Tables(inferred)[0]
				pushdown[mdTab] = append(pushdown[mdTab], inferred)
			}
		}
	}

	// Build the colored query graph.
	graph := &Graph{}
	vertIdx := make(map[string]int, len(tabs))
	for _, t := range tabs {
		vertIdx[t.Name] = len(graph.Verts)
		graph.Verts = append(graph.Verts, Vertex{
			Table:    t.Name,
			Class:    t.Class,
			Filtered: len(pushdown[t.Name]) > 0,
		})
	}
	for _, j := range joins {
		lt, _, err := table.SplitQualified(j.Left)
		if err != nil {
			return nil, err
		}
		rt, _, err := table.SplitQualified(j.Right)
		if err != nil {
			return nil, err
		}
		a, aok := vertIdx[lt]
		b, bok := vertIdx[rt]
		if !aok || !bok {
			return nil, fmt.Errorf("plan: join %v references table outside FROM", j)
		}
		if a == b {
			return nil, fmt.Errorf("plan: self-join predicate %v not supported", j)
		}
		e := GraphEdge{A: min(a, b), B: max(a, b), Pred: j}
		graph.Edges = append(graph.Edges, e)
	}

	ord, err := OrderJoins(graph)
	if err != nil {
		return nil, err
	}

	// Materialize the join tree following the order; track where the
	// red phase ends — that subtree is Qf.
	p := &Plan{Graph: graph, Order: ord}
	var root Node
	var qf Node
	for stepIdx, st := range ord.Steps {
		v := st.Verts[0]
		t, _ := cat.Table(graph.Verts[v].Table)
		scan := NewScan(t, expr.Conjoin(pushdown[t.Name]))
		if root == nil {
			root = scan
		} else {
			preds := make([]table.JoinPred, 0, len(st.Edges))
			for _, e := range st.Edges {
				preds = append(preds, e.Pred)
			}
			root = NewJoin(root, scan, preds)
		}
		if stepIdx == ord.RedSteps-1 {
			// Metadata-only residual predicates evaluate inside Qf
			// to maximize chunk filtering.
			rest := residual[:0:0]
			for _, r := range residual {
				if onlyMetadata(cat, r) {
					root = NewSelect(root, r)
				} else {
					rest = append(rest, r)
				}
			}
			residual = rest
			qf = root
		}
	}
	if pred := expr.Conjoin(residual); pred != nil {
		root = NewSelect(root, pred)
	}

	for _, t := range tabs {
		switch t.Class {
		case table.GivenMetadata:
			p.GMdTables = append(p.GMdTables, t.Name)
		case table.DerivedMetadata:
			p.DMdTables = append(p.DMdTables, t.Name)
		case table.ActualData:
			p.ADTables = append(p.ADTables, t.Name)
		}
	}
	p.TwoStage = len(p.ADTables) > 0

	root, err = applySelect(root, q)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		root, err = NewSort(root, q.OrderBy)
		if err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 {
		root = &Limit{In: root, N: q.Limit}
	}
	if q.SamplePct > 0 && q.SamplePct < 100 {
		p.SamplePct = q.SamplePct
	}
	p.Root = root
	p.Qf = qf
	return p, nil
}

// applySelect adds aggregation or projection on top of the join tree.
func applySelect(root Node, q *Query) (Node, error) {
	if len(q.Select) == 0 {
		return nil, fmt.Errorf("plan: empty select list")
	}
	hasAgg := false
	for _, it := range q.Select {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}
	if !hasAgg && len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("plan: GROUP BY without aggregates")
	}
	if !hasAgg {
		cols := make([]OutputCol, len(q.Select))
		for i, it := range q.Select {
			cols[i] = OutputCol{Name: itemName(it), Expr: it.Expr}
		}
		return NewProject(root, cols)
	}
	var aggs []AggSpec
	for _, it := range q.Select {
		if it.Agg == AggNone {
			cr, ok := it.Expr.(*expr.ColRef)
			if !ok {
				return nil, fmt.Errorf("plan: non-aggregated select item %q must be a grouping column", itemName(it))
			}
			found := false
			for _, g := range q.GroupBy {
				if g == cr.Name {
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("plan: column %s not in GROUP BY", cr.Name)
			}
			continue
		}
		aggs = append(aggs, AggSpec{Func: it.Agg, Arg: it.Expr, Name: itemName(it)})
	}
	agg, err := NewAggregate(root, q.GroupBy, aggs)
	if err != nil {
		return nil, err
	}
	// Project into the user's select order and names.
	cols := make([]OutputCol, len(q.Select))
	for i, it := range q.Select {
		cols[i] = OutputCol{Name: itemName(it), Expr: expr.Col(itemName(it))}
		if it.Agg == AggNone {
			cols[i].Expr = expr.Col(it.Expr.(*expr.ColRef).Name)
			cols[i].Name = itemName(it)
		}
	}
	return NewProject(agg, cols)
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != AggNone {
		arg := "*"
		if it.Expr != nil {
			arg = it.Expr.String()
		}
		return fmt.Sprintf("%s(%s)", it.Agg, arg)
	}
	return it.Expr.String()
}

// inferRangePreds derives metadata predicates from one conjunct over
// the mapped actual-data column. A chunk's values lie within [Lo, Hi),
// so:
//
//	ad >  c  or  ad >= c   implies   Hi >  c
//	ad <  c  or  ad <= c   implies   Lo <= c
//	ad =  c                implies   both
func inferRangePreds(m table.RangeMapping, c expr.Expr) []expr.Expr {
	var out []expr.Expr
	addHi := func(k *expr.Const) {
		kc := *k
		out = append(out, expr.NewCmp(expr.GT, expr.Col(m.MdHi), &kc))
	}
	addLo := func(k *expr.Const) {
		kc := *k
		out = append(out, expr.NewCmp(expr.LE, expr.Col(m.MdLo), &kc))
	}
	if col, k, ok := expr.EqConst(c); ok && col == m.ADColumn {
		addHi(k)
		addLo(k)
		return out
	}
	col, op, k, ok := expr.RangeConst(c)
	if !ok || col != m.ADColumn {
		return nil
	}
	switch op {
	case expr.GT, expr.GE:
		addHi(k)
	case expr.LT, expr.LE:
		addLo(k)
	}
	return out
}

// resolveFrom expands the FROM clause into base tables and join
// predicates.
func resolveFrom(cat *table.Catalog, from string) ([]*table.Table, []table.JoinPred, error) {
	if t, ok := cat.Table(from); ok {
		return []*table.Table{t}, nil, nil
	}
	v, ok := cat.View(from)
	if !ok {
		return nil, nil, fmt.Errorf("plan: unknown table or view %q", from)
	}
	tabs := make([]*table.Table, 0, len(v.Tables))
	for _, tn := range v.Tables {
		t, ok := cat.Table(tn)
		if !ok {
			return nil, nil, fmt.Errorf("plan: view %q references missing table %q", from, tn)
		}
		tabs = append(tabs, t)
	}
	return tabs, append([]table.JoinPred{}, v.Joins...), nil
}

// qualifyExpr rewrites unqualified column references to qualified form,
// resolving each against the FROM tables.
func qualifyExpr(tabs []*table.Table, e expr.Expr) error {
	var firstErr error
	e.Walk(func(x expr.Expr) {
		if firstErr != nil {
			return
		}
		if c, ok := x.(*expr.ColRef); ok {
			qn, err := qualifyName(tabs, c.Name)
			if err != nil {
				firstErr = err
				return
			}
			c.Name = qn
		}
	})
	return firstErr
}

// qualifyName resolves a possibly unqualified column name against the
// FROM tables.
func qualifyName(tabs []*table.Table, name string) (string, error) {
	if strings.Contains(name, ".") {
		tn, cn, err := table.SplitQualified(name)
		if err != nil {
			return "", err
		}
		for _, t := range tabs {
			if t.Name == tn {
				if t.Schema.IndexOf(cn) < 0 {
					return "", fmt.Errorf("plan: table %s has no column %q", tn, cn)
				}
				return name, nil
			}
		}
		return "", fmt.Errorf("plan: table %q not in FROM", tn)
	}
	var found string
	for _, t := range tabs {
		if t.Schema.IndexOf(name) >= 0 {
			if found != "" {
				return "", fmt.Errorf("plan: column %q is ambiguous (%s and %s)", name, found, t.Name)
			}
			found = t.Name + "." + name
		}
	}
	if found == "" {
		return "", fmt.Errorf("plan: unknown column %q", name)
	}
	return found, nil
}

// onlyMetadata reports whether every table referenced by e is a
// metadata table.
func onlyMetadata(cat *table.Catalog, e expr.Expr) bool {
	for _, tn := range expr.Tables(e) {
		t, ok := cat.Table(tn)
		if !ok || !t.Class.IsMetadata() {
			return false
		}
	}
	return true
}
