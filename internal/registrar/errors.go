package registrar

import (
	"fmt"
	"time"
)

// ChunkError reports that one chunk could not be made available: the
// fetch exhausted its retries, the payload failed to decode, or the
// chunk sits in quarantine from an earlier failure. It is Degradable —
// a degraded-mode query skips the chunk and carries a warning instead
// of failing — while strict queries surface it as the query error.
type ChunkError struct {
	Table string
	Chunk int64
	// Attempts is how many fetch attempts were made (0 when the chunk
	// never reached the transport, e.g. quarantined or breaker-open).
	Attempts int
	// Quarantined marks that the error was answered from quarantine
	// without touching the archive.
	Quarantined bool
	Err         error
}

func (e *ChunkError) Error() string {
	from := ""
	if e.Quarantined {
		from = " (quarantined)"
	}
	attempts := ""
	if e.Attempts > 1 {
		attempts = fmt.Sprintf(" after %d attempts", e.Attempts)
	}
	return fmt.Sprintf("registrar: chunk %d of %s unavailable%s%s: %v",
		e.Chunk, e.Table, from, attempts, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// Degradable marks chunk unavailability as a partial-result condition,
// not a query-correctness failure.
func (e *ChunkError) Degradable() bool { return true }

// CircuitOpenError reports that the per-host circuit breaker refused a
// fetch without a network attempt: the host failed enough consecutive
// requests that hammering it further would only add latency. It is
// Degradable for the same reason ChunkError is.
type CircuitOpenError struct {
	Host    string
	RetryIn time.Duration
}

func (e *CircuitOpenError) Error() string {
	return fmt.Sprintf("registrar: circuit open for host %s (retry in %v)", e.Host, e.RetryIn)
}

// Degradable marks breaker rejections as availability failures.
func (e *CircuitOpenError) Degradable() bool { return true }
