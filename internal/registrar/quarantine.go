package registrar

import (
	"sync"
	"time"
)

// quarantine is a TTL blocklist of chunk IDs whose fetch or decode
// failed: repeated queries selecting the same bad chunk are answered
// from here instead of re-hammering the archive through the whole
// retry ladder. Entries expire after the TTL so a healed chunk comes
// back without intervention.
type quarantine struct {
	mu  sync.Mutex
	ttl time.Duration
	m   map[int64]quarEntry
}

type quarEntry struct {
	until  time.Time
	reason string
}

func newQuarantine(ttl time.Duration) *quarantine {
	return &quarantine{ttl: ttl, m: make(map[int64]quarEntry)}
}

// check reports whether the chunk is quarantined now, returning the
// recorded failure reason. Expired entries are removed on the spot.
func (q *quarantine) check(id int64, now time.Time) (string, bool) {
	if q == nil {
		return "", false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	e, ok := q.m[id]
	if !ok {
		return "", false
	}
	if now.After(e.until) {
		delete(q.m, id)
		return "", false
	}
	return e.reason, true
}

// add quarantines a chunk until now+TTL.
func (q *quarantine) add(id int64, reason string, now time.Time) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.m[id] = quarEntry{until: now.Add(q.ttl), reason: reason}
}

// size counts live (unexpired) entries, purging dead ones as it goes.
func (q *quarantine) size(now time.Time) int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for id, e := range q.m {
		if now.After(e.until) {
			delete(q.m, id)
		}
	}
	return len(q.m)
}
