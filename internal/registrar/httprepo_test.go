package registrar

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"sommelier/internal/seismic"
)

// serveRepo exposes a generated repository over HTTP.
func serveRepo(t *testing.T) (*httptest.Server, *Repository) {
	t.Helper()
	dir, _ := genRepo(t, 2)
	if err := WriteIndexFile(dir); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.FileServer(http.Dir(dir)))
	t.Cleanup(srv.Close)
	local, err := DiscoverRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	return srv, local
}

func TestDiscoverHTTPRepository(t *testing.T) {
	srv, local := serveRepo(t)
	repo, err := DiscoverHTTPRepository(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.URIs()) != len(local.Uris) {
		t.Fatalf("chunks = %d, want %d", len(repo.URIs()), len(local.Uris))
	}
	if got := repo.AllChunkIDs(seismic.TableD); len(got) != len(local.Uris) {
		t.Fatalf("ids = %v", got)
	}
}

func TestHTTPMetadataRegistration(t *testing.T) {
	srv, local := serveRepo(t)
	repo, err := DiscoverHTTPRepository(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	catHTTP := seismic.NewCatalog()
	nHTTP, _, err := RegisterMetadata(catHTTP, repo)
	if err != nil {
		t.Fatal(err)
	}
	catLocal := seismic.NewCatalog()
	nLocal, _, err := RegisterMetadata(catLocal, local)
	if err != nil {
		t.Fatal(err)
	}
	if nHTTP != nLocal {
		t.Fatalf("segments over HTTP = %d, local = %d", nHTTP, nLocal)
	}
	fH, _ := catHTTP.Table(seismic.TableF)
	fL, _ := catLocal.Table(seismic.TableF)
	if fH.Rows() != fL.Rows() {
		t.Fatalf("F rows: %d vs %d", fH.Rows(), fL.Rows())
	}
}

func TestHTTPChunkAccess(t *testing.T) {
	srv, local := serveRepo(t)
	repo, err := DiscoverHTTPRepository(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	relH, err := repo.LoadChunk(seismic.TableD, 0)
	if err != nil {
		t.Fatal(err)
	}
	relL, err := local.LoadChunk(seismic.TableD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if relH.Rows() != relL.Rows() {
		t.Fatalf("rows over HTTP = %d, local = %d", relH.Rows(), relL.Rows())
	}
	if _, err := repo.LoadChunk(seismic.TableD, 9999); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
}

func TestHTTPErrors(t *testing.T) {
	// Missing index.
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	if _, err := DiscoverHTTPRepository(srv.URL, srv.Client()); err == nil {
		t.Fatal("missing index accepted")
	}
	// Empty index.
	srv2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("# only a comment\n"))
	}))
	defer srv2.Close()
	if _, err := DiscoverHTTPRepository(srv2.URL, srv2.Client()); err == nil {
		t.Fatal("empty index accepted")
	}
	// Chunk vanishes after discovery.
	srv3 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/"+IndexFileName {
			w.Write([]byte("gone.msl\n"))
			return
		}
		http.NotFound(w, r)
	}))
	defer srv3.Close()
	repo, err := DiscoverHTTPRepository(srv3.URL, srv3.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.LoadChunk(seismic.TableD, 0); err == nil {
		t.Fatal("vanished chunk loaded")
	}
}
