package registrar

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sommelier/internal/storage"
)

// IndexFileName is the well-known name of the chunk listing an HTTP
// archive serves at its root.
const IndexFileName = "index.txt"

// HTTPRepository is a chunk repository behind an HTTP interface: the
// paper's §VIII "Other Sources" future work. The archive serves a plain
// chunk listing at <base>/index.txt (one relative path per line) and
// the chunk files themselves underneath. Metadata registration and
// chunk-access both stream over HTTP; the rest of the system is
// oblivious to the transport.
type HTTPRepository struct {
	// BaseURL of the archive, without trailing slash.
	BaseURL string
	// Client used for all requests; http.DefaultClient when nil.
	Client *http.Client
	// Timeout per request; 0 means no extra deadline.
	Timeout time.Duration

	paths []string // relative chunk paths, position = chunk ID
}

// DiscoverHTTPRepository fetches the archive's chunk listing.
func DiscoverHTTPRepository(baseURL string, client *http.Client) (*HTTPRepository, error) {
	r := &HTTPRepository{BaseURL: strings.TrimRight(baseURL, "/"), Client: client}
	resp, err := r.client().Get(r.BaseURL + "/" + IndexFileName)
	if err != nil {
		return nil, fmt.Errorf("registrar: fetching chunk index: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("registrar: chunk index: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r.paths = append(r.paths, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(r.paths) == 0 {
		return nil, fmt.Errorf("registrar: empty chunk index at %s", baseURL)
	}
	sort.Strings(r.paths)
	return r, nil
}

func (r *HTTPRepository) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

// URIs implements Source; chunk URIs are the full URLs.
func (r *HTTPRepository) URIs() []string {
	out := make([]string, len(r.paths))
	for i, p := range r.paths {
		out[i] = r.BaseURL + "/" + p
	}
	return out
}

// Open implements Source: it GETs one chunk.
func (r *HTTPRepository) Open(chunkID int64) (io.ReadCloser, error) {
	if chunkID < 0 || chunkID >= int64(len(r.paths)) {
		return nil, fmt.Errorf("registrar: chunk %d out of range", chunkID)
	}
	u := r.BaseURL + "/" + escapePath(r.paths[chunkID])
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	cl := r.client()
	if r.Timeout > 0 {
		c := *cl
		c.Timeout = r.Timeout
		cl = &c
	}
	resp, err := cl.Do(req)
	if err != nil {
		return nil, fmt.Errorf("registrar: chunk-access %s: %w", u, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("registrar: chunk-access %s: %s", u, resp.Status)
	}
	return resp.Body, nil
}

func escapePath(p string) string {
	parts := strings.Split(p, "/")
	for i, s := range parts {
		parts[i] = url.PathEscape(s)
	}
	return strings.Join(parts, "/")
}

// AllChunkIDs implements exec.ChunkLoader.
func (r *HTTPRepository) AllChunkIDs(tableName string) []int64 { return allChunkIDs(r) }

// LoadChunk implements exec.ChunkLoader: chunk-access over HTTP.
func (r *HTTPRepository) LoadChunk(tableName string, chunkID int64) (*storage.Relation, error) {
	return LoadChunkFromSource(r, tableName, chunkID)
}

// WriteIndexFile writes the index.txt listing for a local repository
// directory so it can be served by any static HTTP server (or
// httptest.Server in tests).
func WriteIndexFile(dir string) error {
	repo, err := DiscoverRepository(dir)
	if err != nil {
		return err
	}
	var sb strings.Builder
	for _, uri := range repo.Uris {
		rel, err := filepath.Rel(dir, uri)
		if err != nil {
			return err
		}
		sb.WriteString(filepath.ToSlash(rel))
		sb.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, IndexFileName), []byte(sb.String()), 0o644)
}
