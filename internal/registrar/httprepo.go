package registrar

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sommelier/internal/fault"
	"sommelier/internal/storage"
)

// IndexFileName is the well-known name of the chunk listing an HTTP
// archive serves at its root.
const IndexFileName = "index.txt"

// Bounds on the discovery index: a hostile or broken archive cannot
// feed us an unbounded listing or an unbounded line.
const (
	// MaxIndexBytes caps the total size of index.txt.
	MaxIndexBytes = 8 << 20
	// MaxIndexLine caps one chunk path in the listing.
	MaxIndexLine = 4096
)

// RetryPolicy tunes the bounded exponential backoff of the HTTP fetch
// path. Each chunk request makes up to MaxAttempts attempts; attempt n
// is preceded by a jittered sleep of roughly BaseBackoff·2ⁿ, capped at
// MaxBackoff, raised to the server's Retry-After when one was sent.
type RetryPolicy struct {
	// MaxAttempts per request; <= 0 selects the default (3).
	MaxAttempts int
	// BaseBackoff before the first retry; <= 0 selects 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; <= 0 selects 2s.
	MaxBackoff time.Duration
}

const (
	defaultMaxAttempts = 3
	defaultBaseBackoff = 50 * time.Millisecond
	defaultMaxBackoff  = 2 * time.Second
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultMaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = defaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = defaultMaxBackoff
	}
	return p
}

// backoff is the sleep before retry number attempt (0-based), half
// fixed and half jittered so synchronized clients spread out.
func (p RetryPolicy) backoff(attempt int, jitter float64) time.Duration {
	d := p.BaseBackoff << uint(attempt)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	return d/2 + time.Duration(jitter*float64(d/2))
}

// DefaultQuarantineTTL is how long a failed or corrupt chunk stays
// quarantined when QuarantineTTL is left zero.
const DefaultQuarantineTTL = 30 * time.Second

// HTTPRepository is a chunk repository behind an HTTP interface: the
// paper's §VIII "Other Sources" future work. The archive serves a plain
// chunk listing at <base>/index.txt (one relative path per line) and
// the chunk files themselves underneath. Metadata registration and
// chunk-access both stream over HTTP; the rest of the system is
// oblivious to the transport.
//
// The fetch path is hardened for archives we do not control: every
// request gets a per-attempt deadline (Timeout), transient failures
// retry with bounded jittered exponential backoff (Retry) that honors
// both Retry-After and context cancellation mid-sleep, a per-host
// circuit breaker stops hammering a down host (Breaker), and chunks
// that exhaust their retries or fail to decode enter a TTL quarantine
// (QuarantineTTL) so the next query fails them fast. All failures
// surface as Degradable errors — see ChunkError — which degraded-mode
// queries turn into partial results instead of query failures.
type HTTPRepository struct {
	// BaseURL of the archive, without trailing slash.
	BaseURL string
	// Client used for all requests; http.DefaultClient when nil.
	Client *http.Client
	// Timeout per request attempt; 0 means no extra deadline.
	Timeout time.Duration
	// Retry tunes backoff; the zero value selects the defaults.
	Retry RetryPolicy
	// Breaker tunes the per-host circuit breakers.
	Breaker BreakerConfig
	// QuarantineTTL is how long a failed chunk is blocked from
	// re-fetching; 0 selects DefaultQuarantineTTL, negative disables
	// quarantine entirely.
	QuarantineTTL time.Duration
	// Faults is the fault-injection schedule for this repository; nil
	// falls back to the process environment (fault.Default).
	Faults *fault.Injector

	paths []string // relative chunk paths, position = chunk ID

	initOnce sync.Once
	breakers *breakerSet
	quar     *quarantine
	host     string

	jseq                                   atomic.Uint64 // jitter sequence
	fetches, retries, fetchErrors, rejects atomic.Int64
}

func (r *HTTPRepository) init() {
	r.initOnce.Do(func() {
		r.breakers = newBreakerSet(r.Breaker)
		ttl := r.QuarantineTTL
		if ttl == 0 {
			ttl = DefaultQuarantineTTL
		}
		if ttl > 0 {
			r.quar = newQuarantine(ttl)
		}
		if u, err := url.Parse(r.BaseURL); err == nil && u.Host != "" {
			r.host = u.Host
		} else {
			r.host = r.BaseURL
		}
	})
}

func (r *HTTPRepository) inj() *fault.Injector {
	if r.Faults != nil {
		return r.Faults
	}
	return fault.Default()
}

// SetFaults overrides the repository's fault-injection schedule (the
// engine wires Config.Faults through here).
func (r *HTTPRepository) SetFaults(in *fault.Injector) { r.Faults = in }

// faultInjector lets LoadChunkFromSource find the schedule.
func (r *HTTPRepository) faultInjector() *fault.Injector { return r.inj() }

// DiscoverHTTPRepository fetches the archive's chunk listing with the
// default policies. To tune timeouts, retries or the breaker first,
// construct an HTTPRepository and call Discover.
func DiscoverHTTPRepository(baseURL string, client *http.Client) (*HTTPRepository, error) {
	r := &HTTPRepository{BaseURL: strings.TrimRight(baseURL, "/"), Client: client}
	if err := r.Discover(context.Background()); err != nil {
		return nil, err
	}
	return r, nil
}

// Discover fetches the archive's chunk listing into a pre-configured
// repository: the per-attempt Timeout, retry policy and breaker all
// apply, and the index is bounded (MaxIndexBytes total, MaxIndexLine
// per line) with a clear error on oversize.
func (r *HTTPRepository) Discover(ctx context.Context) error {
	r.init()
	r.BaseURL = strings.TrimRight(r.BaseURL, "/")
	resp, _, err := r.fetch(ctx, r.BaseURL+"/"+IndexFileName)
	if err != nil {
		return fmt.Errorf("registrar: fetching chunk index: %w", err)
	}
	defer resp.Body.Close()
	cr := &countingReader{r: io.LimitReader(resp.Body, MaxIndexBytes+1)}
	sc := bufio.NewScanner(cr)
	sc.Buffer(make([]byte, 0, 4096), MaxIndexLine)
	var paths []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		paths = append(paths, line)
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("registrar: chunk index at %s: line exceeds %d bytes", r.BaseURL, MaxIndexLine)
		}
		return fmt.Errorf("registrar: reading chunk index: %w", err)
	}
	if cr.n > MaxIndexBytes {
		return fmt.Errorf("registrar: chunk index at %s exceeds %d bytes", r.BaseURL, int64(MaxIndexBytes))
	}
	if len(paths) == 0 {
		return fmt.Errorf("registrar: empty chunk index at %s", r.BaseURL)
	}
	sort.Strings(paths)
	r.paths = paths
	return nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// URIs implements Source; chunk URIs are the full URLs.
func (r *HTTPRepository) URIs() []string {
	out := make([]string, len(r.paths))
	for i, p := range r.paths {
		out[i] = r.BaseURL + "/" + p
	}
	return out
}

// Open implements Source: it GETs one chunk (see OpenContext).
func (r *HTTPRepository) Open(chunkID int64) (io.ReadCloser, error) {
	return r.OpenContext(context.Background(), chunkID)
}

// OpenContext streams one chunk's bytes through the hardened fetch
// path: per-attempt deadline, retry with backoff, circuit breaker.
func (r *HTTPRepository) OpenContext(ctx context.Context, chunkID int64) (io.ReadCloser, error) {
	if chunkID < 0 || chunkID >= int64(len(r.paths)) {
		return nil, fmt.Errorf("registrar: chunk %d out of range", chunkID)
	}
	r.init()
	u := r.BaseURL + "/" + escapePath(r.paths[chunkID])
	resp, attempts, err := r.fetch(ctx, u)
	if err != nil {
		return nil, &fetchFailure{attempts: attempts, err: err}
	}
	return resp.Body, nil
}

// fetchFailure carries the attempt count of an exhausted fetch up to
// LoadChunkContext, which folds it into the ChunkError it reports.
type fetchFailure struct {
	attempts int
	err      error
}

func (f *fetchFailure) Error() string { return f.err.Error() }
func (f *fetchFailure) Unwrap() error { return f.err }

// statusError is a non-2xx archive answer.
type statusError struct {
	url    string
	code   int
	status string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("registrar: chunk-access %s: %s", e.url, e.status)
}

// retryableStatus reports whether a status is worth another attempt: a
// permanent answer (404, 403, ...) proves the host is up and the
// resource is bad, so retrying only adds load.
func retryableStatus(code int) bool {
	return code == http.StatusRequestTimeout || code == http.StatusTooManyRequests || code >= 500
}

// fetch GETs u with retries, backoff, Retry-After, per-attempt
// deadlines and the circuit breaker. It returns the number of attempts
// actually made; the response body carries the per-attempt deadline
// with it (the deadline is released when the body is closed).
func (r *HTTPRepository) fetch(ctx context.Context, u string) (*http.Response, int, error) {
	pol := r.Retry.withDefaults()
	br := r.breakers.get(r.host)
	attempts := 0
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, attempts, err
		}
		if ok, wait := br.allow(time.Now()); !ok {
			r.rejects.Add(1)
			return nil, attempts, &CircuitOpenError{Host: r.host, RetryIn: wait}
		}
		attempts++
		r.fetches.Add(1)
		resp, retryAfter, err := r.attempt(ctx, u)
		if err == nil {
			br.success()
			return resp, attempts, nil
		}
		lastErr = err
		r.fetchErrors.Add(1)
		if ctx.Err() != nil {
			// Caller cancellation: not the host's fault, and not worth
			// another attempt. Leave the breaker untouched.
			return nil, attempts, ctx.Err()
		}
		var se *statusError
		if errors.As(err, &se) && !retryableStatus(se.code) {
			// A permanent status is a live host answering: reset the
			// breaker's failure streak, fail the request for good.
			br.success()
			return nil, attempts, err
		}
		br.failure(time.Now())
		if attempt == pol.MaxAttempts-1 {
			break
		}
		delay := pol.backoff(attempt, r.jitter())
		if retryAfter > delay {
			delay = retryAfter
		}
		r.retries.Add(1)
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, attempts, err
		}
	}
	return nil, attempts, lastErr
}

// attempt performs one GET with the per-attempt deadline and the
// registrar.http fault point. On a retryable status the server's
// Retry-After (when parseable) is returned alongside the error.
func (r *HTTPRepository) attempt(ctx context.Context, u string) (*http.Response, time.Duration, error) {
	act := r.inj().Check(fault.PointHTTP)
	if err := act.Wait(ctx); err != nil {
		return nil, 0, err
	}
	if act.Err != nil {
		return nil, 0, act.Err
	}
	actx, cancel := ctx, context.CancelFunc(func() {})
	if r.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, r.Timeout)
	}
	req, err := http.NewRequestWithContext(actx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		cancel()
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		ra := parseRetryAfter(resp.Header.Get("Retry-After"))
		resp.Body.Close()
		cancel()
		return nil, ra, &statusError{url: u, code: resp.StatusCode, status: resp.Status}
	}
	// The attempt deadline stays armed while the body streams and is
	// released when the caller closes it.
	var body io.ReadCloser = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
	if act.Corrupt {
		body = readCloser{Reader: fault.CorruptReader(body, act.CorruptSeed), Closer: body}
	}
	resp.Body = body
	return resp, 0, nil
}

// cancelOnClose releases an attempt's deadline when its body closes.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

type readCloser struct {
	io.Reader
	io.Closer
}

// parseRetryAfter understands both forms of the header: delta-seconds
// and an HTTP date. Unparseable values yield 0 (use our own backoff).
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// sleepCtx waits out a backoff, returning early on cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter draws the next deterministic jitter fraction in [0,1). The
// sequence is fixed per repository so retry schedules are replayable.
func (r *HTTPRepository) jitter() float64 {
	x := r.jseq.Add(1) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return float64(x>>11) / (1 << 53)
}

func (r *HTTPRepository) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

func escapePath(p string) string {
	parts := strings.Split(p, "/")
	for i, s := range parts {
		parts[i] = url.PathEscape(s)
	}
	return strings.Join(parts, "/")
}

// AllChunkIDs implements exec.ChunkLoader.
func (r *HTTPRepository) AllChunkIDs(tableName string) []int64 { return allChunkIDs(r) }

// LoadChunk implements exec.ChunkLoader: chunk-access over HTTP (see
// LoadChunkContext).
func (r *HTTPRepository) LoadChunk(tableName string, chunkID int64) (*storage.Relation, error) {
	return r.LoadChunkContext(context.Background(), tableName, chunkID)
}

// LoadChunkContext is the chunk-access operator over the hardened
// fetch path. A chunk whose fetch exhausts its retries — or whose
// payload fails to decode — is quarantined for QuarantineTTL; while
// quarantined, requests for it fail immediately without touching the
// archive. All failures except caller cancellation are reported as a
// *ChunkError, which is Degradable.
func (r *HTTPRepository) LoadChunkContext(ctx context.Context, tableName string, chunkID int64) (*storage.Relation, error) {
	r.init()
	if reason, ok := r.quar.check(chunkID, time.Now()); ok {
		return nil, &ChunkError{Table: tableName, Chunk: chunkID, Quarantined: true, Err: errors.New(reason)}
	}
	rel, err := LoadChunkFromSourceContext(ctx, r, tableName, chunkID)
	if err == nil {
		return rel, nil
	}
	if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		return nil, err
	}
	ce := &ChunkError{Table: tableName, Chunk: chunkID, Err: err}
	var ff *fetchFailure
	if errors.As(err, &ff) {
		ce.Attempts = ff.attempts
		ce.Err = ff.err
	}
	var open *CircuitOpenError
	if !errors.As(err, &open) {
		// The chunk itself is proven bad (exhausted retries, permanent
		// status, undecodable payload): quarantine it. A breaker
		// rejection proves nothing about this chunk, so it is not
		// quarantined.
		r.quar.add(chunkID, ce.Err.Error(), time.Now())
	}
	return nil, ce
}

// Health is the reliability snapshot surfaced on sommelierd's /stats.
type Health struct {
	Hosts       []HostHealth `json:"hosts,omitempty"`
	Quarantined int          `json:"quarantined_chunks"`
	// Fetches counts request attempts; Retries the attempts beyond a
	// request's first; FetchErrors the failed attempts; Rejects the
	// requests refused by an open circuit breaker.
	Fetches     int64 `json:"fetches"`
	Retries     int64 `json:"retries"`
	FetchErrors int64 `json:"fetch_errors"`
	Rejects     int64 `json:"breaker_rejects"`
}

// Health reports the repository's breaker, quarantine and retry state.
func (r *HTTPRepository) Health() Health {
	r.init()
	return Health{
		Hosts:       r.breakers.snapshot(),
		Quarantined: r.quar.size(time.Now()),
		Fetches:     r.fetches.Load(),
		Retries:     r.retries.Load(),
		FetchErrors: r.fetchErrors.Load(),
		Rejects:     r.rejects.Load(),
	}
}

// FetchCount reports how many archive request attempts were made, the
// same counter Health exposes; the warm-restart tests assert it stays
// zero when the disk tier and metadata snapshot serve everything.
func (r *HTTPRepository) FetchCount() int64 { return r.fetches.Load() }

// WriteIndexFile writes the index.txt listing for a local repository
// directory so it can be served by any static HTTP server (or
// httptest.Server in tests).
func WriteIndexFile(dir string) error {
	repo, err := DiscoverRepository(dir)
	if err != nil {
		return err
	}
	var sb strings.Builder
	for _, uri := range repo.Uris {
		rel, err := filepath.Rel(dir, uri)
		if err != nil {
			return err
		}
		sb.WriteString(filepath.ToSlash(rel))
		sb.WriteByte('\n')
	}
	return os.WriteFile(filepath.Join(dir, IndexFileName), []byte(sb.String()), 0o644)
}
