// Package registrar implements repository registration and the five
// loading approaches of the paper's evaluation:
//
//	eager_csv    mSEED → CSV → parse → monolithic table
//	eager_plain  mSEED → monolithic table directly
//	eager_index  eager_plain + clustering by chunk + key indexes
//	eager_dmd    eager_index + eager derivation of all DMd (driven by
//	             the engine, which owns the derivation machinery)
//	lazy         metadata extraction only; actual data is ingested
//	             during query evaluation
//
// The Registrar proper — eager loading of given metadata — iterates
// over all files of a repository and bulk-loads their control headers
// into the metadata tables, handling multiple files in parallel.
package registrar

import (
	"context"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sommelier/internal/csvio"
	"sommelier/internal/fault"
	"sommelier/internal/index"
	"sommelier/internal/mseed"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// Approach names a loading strategy.
type Approach string

// The five loading approaches.
const (
	EagerCSV   Approach = "eager_csv"
	EagerPlain Approach = "eager_plain"
	EagerIndex Approach = "eager_index"
	EagerDMd   Approach = "eager_dmd"
	Lazy       Approach = "lazy"
)

// Approaches lists all strategies in the paper's presentation order.
func Approaches() []Approach {
	return []Approach{EagerCSV, EagerPlain, EagerIndex, EagerDMd, Lazy}
}

// MonolithChunkID is the pseudo chunk ID under which eager_csv and
// eager_plain store all actual data as one contiguous relation.
const MonolithChunkID int64 = -1

// CostBreakdown itemizes preparation cost, matching the stacked bars of
// the paper's Figure 6.
type CostBreakdown struct {
	MseedToCSV    time.Duration // serialize chunks to CSV text
	CSVToDB       time.Duration // parse CSV into the database
	MseedToDB     time.Duration // direct binary ingestion
	Indexing      time.Duration // clustering + key index construction
	DMdDerivation time.Duration // filled in by the engine for eager_dmd
}

// Total sums all components.
func (c CostBreakdown) Total() time.Duration {
	return c.MseedToCSV + c.CSVToDB + c.MseedToDB + c.Indexing + c.DMdDerivation
}

// Report summarizes one registration run.
type Report struct {
	Approach  Approach
	Files     int
	Segments  int
	Rows      int64
	Breakdown CostBreakdown
	// MetadataTime is the cost of extracting and loading the given
	// metadata (all approaches pay it; for lazy it is the whole
	// investment).
	MetadataTime time.Duration
	// Sizes for Table III.
	MseedBytes    int64 // repository size on disk
	CSVBytes      int64 // textual representation (eager_csv only)
	DataBytes     int64 // resident actual data
	MetadataBytes int64 // resident metadata (GMd)
	IndexBytes    int64 // key / join index footprint
}

// TotalTime is the complete data-to-queryable investment.
func (r Report) TotalTime() time.Duration { return r.MetadataTime + r.Breakdown.Total() }

// Indexes holds the access-path accelerators built by eager_index (and
// inherited by eager_dmd): hash indexes on the metadata primary keys, a
// secondary index on the station/channel selection columns, the FK join
// index from segments to files, and per-chunk zone maps. FMeta and
// SMeta are the flattened snapshots the hash indexes refer into.
type Indexes struct {
	FMeta    *storage.Batch
	SMeta    *storage.Batch
	FByID    *index.HashIndex        // F.file_id → row
	FByStaCh *index.HashIndex        // (F.station, F.channel) → rows
	SByKey   *index.HashIndex        // (S.file_id, S.segment_id) → row
	SToF     *index.JoinIndex        // S.file_id → F row
	ZoneMaps map[int64]index.ZoneMap // chunk → sample_time bounds
}

// MemSize estimates the index footprint.
func (ix *Indexes) MemSize() int64 {
	if ix == nil {
		return 0
	}
	var n int64
	if ix.FByID != nil {
		n += ix.FByID.MemSize()
	}
	if ix.FByStaCh != nil {
		n += ix.FByStaCh.MemSize()
	}
	if ix.SByKey != nil {
		n += ix.SByKey.MemSize()
	}
	if ix.SToF != nil {
		n += ix.SToF.MemSize()
	}
	n += int64(len(ix.ZoneMaps)) * 24
	return n
}

// Source abstracts where a chunk repository lives: a local directory,
// an HTTP archive (see HTTPRepository), or anything else that can
// enumerate chunks and stream their bytes. The paper's future-work
// section (§VIII, "Other Sources") motivates exactly this seam.
type Source interface {
	// URIs lists the chunk identifiers; position = chunk ID.
	URIs() []string
	// Open streams the raw bytes of one chunk.
	Open(chunkID int64) (io.ReadCloser, error)
}

// ContextSource is the optional context-aware extension of Source:
// sources that can honor deadlines and cancellation mid-fetch (the
// HTTP repository's retry/backoff ladder) implement it, and
// LoadChunkFromSourceContext prefers it over plain Open.
type ContextSource interface {
	OpenContext(ctx context.Context, chunkID int64) (io.ReadCloser, error)
}

// FaultConfigurable is implemented by sources that accept a
// fault-injection schedule (the engine wires Config.Faults through
// it).
type FaultConfigurable interface {
	SetFaults(*fault.Injector)
}

// faultSource exposes a source's effective injector to the shared
// chunk-decode path.
type faultSource interface {
	faultInjector() *fault.Injector
}

func injectorFor(src Source) *fault.Injector {
	if fs, ok := src.(faultSource); ok {
		return fs.faultInjector()
	}
	return fault.Default()
}

// ChunkSource is the full contract the engine needs from a repository:
// enumeration and streaming (Source) plus the chunk-access operator of
// the executor (exec.ChunkLoader's method set).
type ChunkSource interface {
	Source
	LoadChunk(tableName string, chunkID int64) (*storage.Relation, error)
	AllChunkIDs(tableName string) []int64
}

// Repository is a registered local chunk repository: the file list with
// assigned chunk IDs. It implements ChunkSource.
type Repository struct {
	Dir  string
	Uris []string // position = chunk ID
	// Faults is the fault-injection schedule for this repository; nil
	// falls back to the process environment (fault.Default). Local
	// repositories only honor the mseed.decode point.
	Faults *fault.Injector

	// fetches counts raw archive opens (metadata registration and
	// chunk loads alike); the warm-restart tests assert it stays zero
	// when the disk tier and metadata snapshot serve everything.
	fetches atomic.Int64
}

// FetchCount reports how many times the raw archive was opened.
func (r *Repository) FetchCount() int64 { return r.fetches.Load() }

// SetFaults overrides the repository's fault-injection schedule.
func (r *Repository) SetFaults(in *fault.Injector) { r.Faults = in }

func (r *Repository) faultInjector() *fault.Injector {
	if r.Faults != nil {
		return r.Faults
	}
	return fault.Default()
}

// DiscoverRepository lists the chunk files under dir in deterministic
// order (sorted by path), assigning chunk IDs by position.
func DiscoverRepository(dir string) (*Repository, error) {
	var uris []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".msl") {
			uris = append(uris, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(uris) == 0 {
		return nil, fmt.Errorf("registrar: no chunk files under %s", dir)
	}
	sort.Strings(uris)
	return &Repository{Dir: dir, Uris: uris}, nil
}

// URIs implements Source.
func (r *Repository) URIs() []string { return r.Uris }

// URI returns the path of a chunk.
func (r *Repository) URI(chunkID int64) (string, error) {
	if chunkID < 0 || chunkID >= int64(len(r.Uris)) {
		return "", fmt.Errorf("registrar: chunk %d out of range", chunkID)
	}
	return r.Uris[chunkID], nil
}

// Open implements Source.
func (r *Repository) Open(chunkID int64) (io.ReadCloser, error) {
	uri, err := r.URI(chunkID)
	if err != nil {
		return nil, err
	}
	r.fetches.Add(1)
	return os.Open(uri)
}

// TotalBytes reports the on-disk repository size (for Table III).
func (r *Repository) TotalBytes() int64 {
	var n int64
	for _, uri := range r.Uris {
		if fi, err := os.Stat(uri); err == nil {
			n += fi.Size()
		}
	}
	return n
}

// AllChunkIDs implements exec.ChunkLoader.
func (r *Repository) AllChunkIDs(tableName string) []int64 {
	return allChunkIDs(r)
}

// LoadChunk implements exec.ChunkLoader: the chunk-access operator.
func (r *Repository) LoadChunk(tableName string, chunkID int64) (*storage.Relation, error) {
	return LoadChunkFromSource(r, tableName, chunkID)
}

func allChunkIDs(src Source) []int64 {
	ids := make([]int64, len(src.URIs()))
	for i := range ids {
		ids[i] = int64(i)
	}
	return ids
}

// LoadChunkFromSource is the chunk-access operator over any source: it
// fully decodes one chunk through the domain codec and transforms it
// into the D schema, materializing per-sample timestamps.
func LoadChunkFromSource(src Source, tableName string, chunkID int64) (*storage.Relation, error) {
	return LoadChunkFromSourceContext(context.Background(), src, tableName, chunkID)
}

// LoadChunkFromSourceContext is LoadChunkFromSource honoring a
// context: sources implementing ContextSource get it for the byte
// fetch, and the mseed.decode fault point can corrupt or fail the
// payload before decoding.
func LoadChunkFromSourceContext(ctx context.Context, src Source, tableName string, chunkID int64) (*storage.Relation, error) {
	if tableName != seismic.TableD {
		return nil, fmt.Errorf("registrar: unknown actual-data table %q", tableName)
	}
	var rc io.ReadCloser
	var err error
	if cs, ok := src.(ContextSource); ok {
		rc, err = cs.OpenContext(ctx, chunkID)
	} else {
		rc, err = src.Open(chunkID)
	}
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	var body io.Reader = rc
	if act := injectorFor(src).Check(fault.PointDecode); act.Err != nil || act.Delay > 0 || act.Corrupt {
		if err := act.Wait(ctx); err != nil {
			return nil, err
		}
		if act.Err != nil {
			return nil, fmt.Errorf("registrar: chunk-access %d: %w", chunkID, act.Err)
		}
		if act.Corrupt {
			body = fault.CorruptReader(body, act.CorruptSeed)
		}
	}
	f, err := mseed.Read(body)
	if err != nil {
		return nil, fmt.Errorf("registrar: chunk-access %d: %w", chunkID, err)
	}
	return ChunkToRelation(chunkID, f), nil
}

// ChunkToRelation converts a decoded chunk into the D table layout.
func ChunkToRelation(chunkID int64, f *mseed.File) *storage.Relation {
	rel := storage.NewRelation()
	for _, seg := range f.Segments {
		n := len(seg.Samples)
		ids := make([]int64, n)
		segs := make([]int64, n)
		ts := make([]int64, n)
		vals := make([]float64, n)
		wins := make([]int64, n)
		period := float64(time.Second) / seg.Header.SampleRate
		for i, v := range seg.Samples {
			ids[i] = chunkID
			segs[i] = int64(seg.Header.ID)
			ts[i] = seg.Header.StartTime + int64(float64(i)*period)
			vals[i] = float64(v)
			wins[i] = seismic.WindowStart(ts[i])
		}
		for lo := 0; lo < n; lo += storage.BatchSize {
			hi := min(lo+storage.BatchSize, n)
			rel.Append(storage.NewBatch(
				storage.NewInt64Column(ids[lo:hi]),
				storage.NewInt64Column(segs[lo:hi]),
				storage.NewTimeColumn(ts[lo:hi]),
				storage.NewFloat64Column(vals[lo:hi]),
				storage.NewTimeColumn(wins[lo:hi]),
			))
		}
	}
	return rel
}

// RegisterMetadata is the Registrar module: it extracts the given
// metadata of every chunk in parallel and bulk-loads tables F and S.
func RegisterMetadata(cat *table.Catalog, src Source) (int, time.Duration, error) {
	start := time.Now()
	uris := src.URIs()
	type meta struct {
		hdr  mseed.FileHeader
		segs []mseed.SegmentHeader
		err  error
	}
	metas := make([]meta, len(uris))
	par := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := range uris {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rc, err := src.Open(int64(i))
			if err != nil {
				metas[i] = meta{err: err}
				return
			}
			hdr, segs, err := mseed.ReadMetadata(rc)
			rc.Close()
			metas[i] = meta{hdr: hdr, segs: segs, err: err}
		}(i)
	}
	wg.Wait()

	fT, _ := cat.Table(seismic.TableF)
	sT, _ := cat.Table(seismic.TableS)
	nSegs := 0
	fb := newFBatch(len(metas))
	sb := newSBatch(0)
	for i, m := range metas {
		if m.err != nil {
			return 0, 0, fmt.Errorf("registrar: %s: %w", uris[i], m.err)
		}
		fb.add(int64(i), uris[i], m.hdr)
		for _, sh := range m.segs {
			sb.add(int64(i), sh)
			nSegs++
		}
	}
	if err := fT.Append(fb.batch()); err != nil {
		return 0, 0, err
	}
	if err := sT.Append(sb.batch()); err != nil {
		return 0, 0, err
	}
	return nSegs, time.Since(start), nil
}

// fBatch accumulates F rows.
type fBatch struct {
	ids                                       *storage.Int64Builder
	uris, nets, stas, locs, chans, quals, bos *storage.StringBuilder
	encs                                      *storage.Int64Builder
}

func newFBatch(capacity int) *fBatch {
	return &fBatch{
		ids:   storage.NewInt64Builder(capacity),
		uris:  storage.NewStringBuilder(capacity),
		nets:  storage.NewStringBuilder(capacity),
		stas:  storage.NewStringBuilder(capacity),
		locs:  storage.NewStringBuilder(capacity),
		chans: storage.NewStringBuilder(capacity),
		quals: storage.NewStringBuilder(capacity),
		encs:  storage.NewInt64Builder(capacity),
		bos:   storage.NewStringBuilder(capacity),
	}
}

func (b *fBatch) add(id int64, uri string, h mseed.FileHeader) {
	b.ids.Append(id)
	b.uris.Append(uri)
	b.nets.Append(h.Network)
	b.stas.Append(h.Station)
	b.locs.Append(h.Location)
	b.chans.Append(h.Channel)
	b.quals.Append(h.Quality)
	b.encs.Append(int64(h.Encoding))
	b.bos.Append(h.ByteOrder)
}

func (b *fBatch) batch() *storage.Batch {
	return storage.NewBatch(
		b.ids.Finish(), b.uris.Finish(), b.nets.Finish(), b.stas.Finish(),
		b.locs.Finish(), b.chans.Finish(), b.quals.Finish(), b.encs.Finish(), b.bos.Finish(),
	)
}

// sBatch accumulates S rows.
type sBatch struct {
	ids, segs, counts *storage.Int64Builder
	starts, ends      *storage.TimeBuilder
	freqs             *storage.Float64Builder
}

func newSBatch(capacity int) *sBatch {
	return &sBatch{
		ids:    storage.NewInt64Builder(capacity),
		segs:   storage.NewInt64Builder(capacity),
		starts: storage.NewTimeBuilder(capacity),
		ends:   storage.NewTimeBuilder(capacity),
		freqs:  storage.NewFloat64Builder(capacity),
		counts: storage.NewInt64Builder(capacity),
	}
}

func (b *sBatch) add(fileID int64, sh mseed.SegmentHeader) {
	b.ids.Append(fileID)
	b.segs.Append(int64(sh.ID))
	b.starts.Append(sh.StartTime)
	b.ends.Append(sh.EndTime())
	b.freqs.Append(sh.SampleRate)
	b.counts.Append(int64(sh.SampleCount))
}

func (b *sBatch) batch() *storage.Batch {
	return storage.NewBatch(
		b.ids.Finish(), b.segs.Finish(), b.starts.Finish(),
		b.ends.Finish(), b.freqs.Finish(), b.counts.Finish(),
	)
}

// LoadAllPlain ingests every chunk into the monolithic pseudo-chunk:
// the eager_plain (and post-parse eager_csv) data layout.
func LoadAllPlain(cat *table.Catalog, repo Source) (int64, time.Duration, error) {
	start := time.Now()
	rels, err := loadAll(repo)
	if err != nil {
		return 0, 0, err
	}
	mono := storage.NewRelation()
	var rows int64
	for _, rel := range rels {
		for _, b := range rel.Batches() {
			mono.Append(b)
		}
		rows += int64(rel.Rows())
	}
	d, _ := cat.Table(seismic.TableD)
	if err := d.AppendChunk(MonolithChunkID, mono); err != nil {
		return 0, 0, err
	}
	return rows, time.Since(start), nil
}

// LoadAllClustered ingests every chunk as its own per-chunk relation:
// the physically clustered layout that eager_index pays for.
func LoadAllClustered(cat *table.Catalog, repo Source) (int64, time.Duration, error) {
	start := time.Now()
	rels, err := loadAll(repo)
	if err != nil {
		return 0, 0, err
	}
	d, _ := cat.Table(seismic.TableD)
	var rows int64
	for id, rel := range rels {
		if err := d.AppendChunk(int64(id), rel); err != nil {
			return 0, 0, err
		}
		rows += int64(rel.Rows())
	}
	return rows, time.Since(start), nil
}

func loadAll(repo Source) ([]*storage.Relation, error) {
	n := len(repo.URIs())
	rels := make([]*storage.Relation, n)
	errs := make([]error, n)
	par := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rels[i], errs[i] = LoadChunkFromSource(repo, seismic.TableD, int64(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("registrar: loading chunk %d: %w", i, err)
		}
	}
	return rels, nil
}

// LoadAllCSV performs the eager_csv detour: serialize every chunk to a
// CSV file under csvDir, then parse the CSV files into the monolithic
// layout. It returns rows, total CSV bytes and the two cost components.
func LoadAllCSV(cat *table.Catalog, repo Source, csvDir string) (rows, csvBytes int64, toCSV, toDB time.Duration, err error) {
	if err = os.MkdirAll(csvDir, 0o755); err != nil {
		return
	}
	t0 := time.Now()
	paths := make([]string, len(repo.URIs()))
	for i := range paths {
		var rc io.ReadCloser
		rc, err = repo.Open(int64(i))
		if err != nil {
			return
		}
		var f *mseed.File
		f, err = mseed.Read(rc)
		rc.Close()
		if err != nil {
			return
		}
		paths[i] = filepath.Join(csvDir, fmt.Sprintf("chunk-%06d.csv", i))
		var out *os.File
		out, err = os.Create(paths[i])
		if err != nil {
			return
		}
		if _, err = csvio.ExportChunk(out, int64(i), f); err != nil {
			out.Close()
			return
		}
		if err = out.Close(); err != nil {
			return
		}
		var fi os.FileInfo
		if fi, err = os.Stat(paths[i]); err == nil {
			csvBytes += fi.Size()
		} else {
			return
		}
	}
	toCSV = time.Since(t0)

	t1 := time.Now()
	mono := storage.NewRelation()
	for _, p := range paths {
		var in *os.File
		in, err = os.Open(p)
		if err != nil {
			return
		}
		var rel *storage.Relation
		rel, err = csvio.LoadCSV(in)
		in.Close()
		if err != nil {
			return
		}
		for _, b := range rel.Batches() {
			mono.Append(b)
		}
		rows += int64(rel.Rows())
	}
	d, _ := cat.Table(seismic.TableD)
	if err = d.AppendChunk(MonolithChunkID, mono); err != nil {
		return
	}
	toDB = time.Since(t1)
	return
}

// BuildIndexes constructs the eager_index investment: hash indexes on
// the metadata primary keys, the S→F join index and per-chunk zone maps
// on sample_time.
func BuildIndexes(cat *table.Catalog) (*Indexes, time.Duration, error) {
	start := time.Now()
	fT, _ := cat.Table(seismic.TableF)
	sT, _ := cat.Table(seismic.TableS)
	dT, _ := cat.Table(seismic.TableD)
	fFlat := fT.Data().Flatten()
	sFlat := sT.Data().Flatten()
	ix := &Indexes{ZoneMaps: make(map[int64]index.ZoneMap), FMeta: fFlat, SMeta: sFlat}
	var err error
	if fFlat.Len() > 0 {
		ix.FByID, err = index.BuildHash(fFlat, []int{fT.Schema.IndexOf("file_id")})
		if err != nil {
			return nil, 0, err
		}
		ix.FByStaCh, err = index.BuildHash(fFlat, []int{
			fT.Schema.IndexOf("station"), fT.Schema.IndexOf("channel"),
		})
		if err != nil {
			return nil, 0, err
		}
	}
	if sFlat.Len() > 0 {
		ix.SByKey, err = index.BuildHash(sFlat, []int{
			sT.Schema.IndexOf("file_id"), sT.Schema.IndexOf("segment_id"),
		})
		if err != nil {
			return nil, 0, err
		}
		if fFlat.Len() > 0 {
			ix.SToF, err = index.BuildJoin(
				sFlat.Cols[sT.Schema.IndexOf("file_id")],
				fFlat.Cols[fT.Schema.IndexOf("file_id")],
			)
			if err != nil {
				return nil, 0, err
			}
		}
	}
	tsCol := dT.Schema.IndexOf("sample_time")
	for _, id := range dT.ChunkIDs() {
		rel, _ := dT.Chunk(id)
		flat := rel.Flatten()
		if flat.Len() > 0 {
			ix.ZoneMaps[id] = index.BuildZoneMap(flat.Cols[tsCol])
		}
	}
	return ix, time.Since(start), nil
}
