package registrar

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState uint8

// The classic three states: closed passes requests and counts
// consecutive failures; open rejects without a network attempt until
// the cooldown elapses; half-open admits a single probe whose outcome
// decides between re-closing and re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes the per-host circuit breakers.
type BreakerConfig struct {
	// Threshold is the number of consecutive request failures that
	// opens the breaker. <= 0 selects the default (5).
	Threshold int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe. <= 0 selects the default (2s).
	Cooldown time.Duration
}

const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 2 * time.Second
)

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = defaultBreakerThreshold
	}
	if c.Cooldown <= 0 {
		c.Cooldown = defaultBreakerCooldown
	}
	return c
}

// breaker is one host's circuit breaker. The half-open state admits
// exactly one in-flight probe; other callers are rejected as if open,
// so a recovering host sees one request, not a thundering herd.
type breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    BreakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool  // a half-open probe is in flight
	opens    int64 // lifetime count of closed→open transitions
}

// allow reports whether a request may proceed; when it may not, the
// remaining cooldown is returned for Retry-After-style surfacing.
func (b *breaker) allow(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		if wait := b.cfg.Cooldown - now.Sub(b.openedAt); wait > 0 {
			return false, wait
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // half-open
		if b.probing {
			return false, b.cfg.Cooldown
		}
		b.probing = true
		return true, 0
	}
}

// success records a completed request, re-closing a half-open breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// failure records a failed request: it trips a closed breaker past the
// threshold and re-opens a half-open one immediately.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = now
		b.probing = false
		b.opens++
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.opens++
		}
	default: // already open (late failure from an admitted request)
		b.openedAt = now
	}
}

// HostHealth is one host's breaker snapshot, surfaced on /stats.
type HostHealth struct {
	Host                string `json:"host"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               int64  `json:"opens"`
}

func (b *breaker) snapshot(host string) HostHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	return HostHealth{
		Host:                host,
		State:               b.state.String(),
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
	}
}

// breakerSet lazily allocates one breaker per host.
type breakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*breaker
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.withDefaults(), m: make(map[string]*breaker)}
}

func (s *breakerSet) get(host string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[host]
	if b == nil {
		b = &breaker{cfg: s.cfg}
		s.m[host] = b
	}
	return b
}

func (s *breakerSet) snapshot() []HostHealth {
	s.mu.Lock()
	hosts := make([]string, 0, len(s.m))
	for h := range s.m {
		hosts = append(hosts, h)
	}
	s.mu.Unlock()
	out := make([]HostHealth, 0, len(hosts))
	for _, h := range hosts {
		out = append(out, s.get(h).snapshot(h))
	}
	return out
}
