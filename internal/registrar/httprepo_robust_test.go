package registrar

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sommelier/internal/fault"
	"sommelier/internal/seismic"
)

// archiveServer fronts a generated repository with controllable
// failure behaviour: fail the next N requests, fail everything, stall
// before answering, and count every request that arrives.
type archiveServer struct {
	mu      sync.Mutex
	failN   int           // fail this many upcoming requests, then serve
	failAll bool          // fail every request
	status  int           // failure status code
	header  http.Header   // extra headers on failures
	sleep   time.Duration // pre-answer stall
	reqs    int
	fs      http.Handler
}

func newArchiveServer(t *testing.T) (*httptest.Server, *archiveServer) {
	t.Helper()
	dir, _ := genRepo(t, 2)
	if err := WriteIndexFile(dir); err != nil {
		t.Fatal(err)
	}
	a := &archiveServer{status: http.StatusInternalServerError, fs: http.FileServer(http.Dir(dir))}
	srv := httptest.NewServer(a)
	t.Cleanup(srv.Close)
	return srv, a
}

func (a *archiveServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	a.reqs++
	fail := a.failAll
	if !fail && a.failN > 0 {
		a.failN--
		fail = true
	}
	status := a.status
	sleep := a.sleep
	hdr := a.header
	a.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(status)
		return
	}
	a.fs.ServeHTTP(w, r)
}

func (a *archiveServer) requests() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reqs
}

func (a *archiveServer) set(fn func(*archiveServer)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	fn(a)
}

// fastRetry keeps test retry sleeps in the microsecond range.
var fastRetry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}

// newTestRepo discovers against the archive with fault injection off
// (ambient SOMMELIER_FAULTS must not leak into these tests).
func newTestRepo(t *testing.T, srv *httptest.Server, mut func(*HTTPRepository)) *HTTPRepository {
	t.Helper()
	r := &HTTPRepository{
		BaseURL: srv.URL,
		Client:  srv.Client(),
		Retry:   fastRetry,
		Faults:  fault.Disabled(),
	}
	if mut != nil {
		mut(r)
	}
	if err := r.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFetchRetriesTransientFailures: a chunk fetch survives transient
// 500s within its attempt budget, and Health counts the retries.
func TestFetchRetriesTransientFailures(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, nil)
	a.set(func(a *archiveServer) { a.failN = 2 })
	rel, err := repo.LoadChunk(seismic.TableD, 0)
	if err != nil {
		t.Fatalf("fetch did not survive 2 transient failures: %v", err)
	}
	if rel.Rows() == 0 {
		t.Fatal("no rows decoded")
	}
	h := repo.Health()
	if h.Retries < 2 || h.FetchErrors < 2 {
		t.Fatalf("health = %+v, want >= 2 retries and fetch errors", h)
	}
}

// TestFetchExhaustsRetries: a persistently failing chunk exhausts its
// attempts, reports them in the Degradable ChunkError, and enters
// quarantine so the next request does not touch the archive.
func TestFetchExhaustsRetries(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, nil)
	a.set(func(a *archiveServer) { a.failAll = true })

	_, err := repo.LoadChunk(seismic.TableD, 0)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChunkError", err)
	}
	if ce.Attempts != fastRetry.MaxAttempts || ce.Quarantined {
		t.Fatalf("ChunkError = %+v, want %d attempts, not yet quarantined", ce, fastRetry.MaxAttempts)
	}
	if !ce.Degradable() {
		t.Fatal("ChunkError must be Degradable")
	}

	before := a.requests()
	_, err = repo.LoadChunk(seismic.TableD, 0)
	if !errors.As(err, &ce) || !ce.Quarantined {
		t.Fatalf("second load err = %v, want quarantined ChunkError", err)
	}
	if a.requests() != before {
		t.Fatalf("quarantined chunk still hit the archive (%d -> %d requests)", before, a.requests())
	}
	if h := repo.Health(); h.Quarantined != 1 {
		t.Fatalf("health = %+v, want 1 quarantined chunk", h)
	}
}

// TestPermanentStatusFailsFast: a 404 proves the host is up and the
// chunk is gone — one attempt, no retries, breaker stays closed.
func TestPermanentStatusFailsFast(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, nil)
	a.set(func(a *archiveServer) { a.failAll = true; a.status = http.StatusNotFound })

	before := a.requests()
	_, err := repo.LoadChunk(seismic.TableD, 0)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChunkError", err)
	}
	if got := a.requests() - before; got != 1 {
		t.Fatalf("404 cost %d requests, want 1 (no retries on permanent status)", got)
	}
	h := repo.Health()
	if len(h.Hosts) != 1 || h.Hosts[0].State != BreakerClosed.String() {
		t.Fatalf("health = %+v, want closed breaker (host answered)", h)
	}
}

// TestQuarantineExpires: after the TTL a quarantined chunk is retried
// against the archive and can recover.
func TestQuarantineExpires(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, func(r *HTTPRepository) {
		r.QuarantineTTL = 30 * time.Millisecond
	})
	a.set(func(a *archiveServer) { a.failAll = true })
	if _, err := repo.LoadChunk(seismic.TableD, 0); err == nil {
		t.Fatal("load succeeded against a failing archive")
	}
	if h := repo.Health(); h.Quarantined != 1 {
		t.Fatalf("health = %+v, want 1 quarantined", h)
	}

	// Archive heals; once the TTL lapses the chunk loads again.
	a.set(func(a *archiveServer) { a.failAll = false })
	time.Sleep(40 * time.Millisecond)
	rel, err := repo.LoadChunk(seismic.TableD, 0)
	if err != nil {
		t.Fatalf("chunk did not recover after quarantine expiry: %v", err)
	}
	if rel.Rows() == 0 {
		t.Fatal("no rows decoded after recovery")
	}
	if h := repo.Health(); h.Quarantined != 0 {
		t.Fatalf("health = %+v, want empty quarantine", h)
	}
}

// TestBreakerOpensAndRecovers: consecutive failures open the per-host
// circuit; while open, requests are rejected without touching the
// archive; after the cooldown a half-open probe against a healed
// archive closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, func(r *HTTPRepository) {
		r.Retry = RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
		r.Breaker = BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond}
		r.QuarantineTTL = -1 // keep every load hitting the fetch path
	})
	a.set(func(a *archiveServer) { a.failAll = true })

	// Three distinct chunks fail once each: the host's streak trips the
	// breaker.
	for id := int64(0); id < 3; id++ {
		if _, err := repo.LoadChunk(seismic.TableD, id); err == nil {
			t.Fatal("load succeeded against a failing archive")
		}
	}
	h := repo.Health()
	if len(h.Hosts) != 1 || h.Hosts[0].State != BreakerOpen.String() {
		t.Fatalf("health = %+v, want open breaker after 3 failures", h)
	}

	// While open: rejected without a request on the wire.
	before := a.requests()
	_, err := repo.LoadChunk(seismic.TableD, 3)
	var ce *ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChunkError", err)
	}
	var open *CircuitOpenError
	if !errors.As(ce.Err, &open) {
		t.Fatalf("cause = %v, want *CircuitOpenError", ce.Err)
	}
	if a.requests() != before {
		t.Fatal("open breaker let a request through")
	}
	if h := repo.Health(); h.Rejects == 0 {
		t.Fatalf("health = %+v, want breaker rejects counted", h)
	}
	if h := repo.Health(); h.Quarantined != 0 {
		t.Fatalf("health = %+v: breaker rejections must not quarantine chunks", h)
	}

	// Heal, wait out the cooldown: the half-open probe closes the
	// breaker and chunks load again.
	a.set(func(a *archiveServer) { a.failAll = false })
	time.Sleep(60 * time.Millisecond)
	if _, err := repo.LoadChunk(seismic.TableD, 0); err != nil {
		t.Fatalf("load after heal+cooldown failed: %v", err)
	}
	if h := repo.Health(); h.Hosts[0].State != BreakerClosed.String() {
		t.Fatalf("health = %+v, want breaker closed after successful probe", h)
	}
}

// TestBackoffSleepHonorsCancellation: a caller cancelling mid-backoff
// gets its context error promptly instead of waiting out the sleep.
func TestBackoffSleepHonorsCancellation(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, func(r *HTTPRepository) {
		r.Retry = RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Second, MaxBackoff: 10 * time.Second}
	})
	a.set(func(a *archiveServer) { a.failAll = true })

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := repo.LoadChunkContext(ctx, seismic.TableD, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt fail and the backoff start
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// TestPerAttemptTimeout: a stalled archive is cut off by the
// per-attempt deadline rather than hanging the fetch.
func TestPerAttemptTimeout(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, nil)
	repo.Timeout = 20 * time.Millisecond
	repo.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	a.set(func(a *archiveServer) { a.sleep = 300 * time.Millisecond; a.failAll = true })

	t0 := time.Now()
	_, err := repo.LoadChunk(seismic.TableD, 0)
	if err == nil {
		t.Fatal("stalled fetch succeeded")
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("stalled fetch took %v, per-attempt timeout not applied", el)
	}
}

// TestDiscoverTimeout: discovery flows through the same hardened fetch
// path, so a stalled index request is bounded too (the old code path
// bypassed Timeout entirely).
func TestDiscoverTimeout(t *testing.T) {
	srv, a := newArchiveServer(t)
	a.set(func(a *archiveServer) { a.sleep = 300 * time.Millisecond })
	r := &HTTPRepository{
		BaseURL: srv.URL,
		Client:  srv.Client(),
		Timeout: 20 * time.Millisecond,
		Retry:   RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
		Faults:  fault.Disabled(),
	}
	t0 := time.Now()
	if err := r.Discover(context.Background()); err == nil {
		t.Fatal("stalled discovery succeeded")
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("stalled discovery took %v", el)
	}
}

// TestDiscoverIndexBounds: an oversized index or an oversized line is
// rejected with a clear error instead of being slurped unbounded.
func TestDiscoverIndexBounds(t *testing.T) {
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		line := strings.Repeat("a", 64) + ".msl\n"
		for written := 0; written <= MaxIndexBytes; written += len(line) {
			if _, err := fmt.Fprint(w, line); err != nil {
				return
			}
		}
	}))
	defer huge.Close()
	r := &HTTPRepository{BaseURL: huge.URL, Client: huge.Client(), Retry: fastRetry, Faults: fault.Disabled()}
	err := r.Discover(context.Background())
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized index: err = %v, want size-cap error", err)
	}

	long := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("b", MaxIndexLine+1)+"\n")
	}))
	defer long.Close()
	r2 := &HTTPRepository{BaseURL: long.URL, Client: long.Client(), Retry: fastRetry, Faults: fault.Disabled()}
	err = r2.Discover(context.Background())
	if err == nil || !strings.Contains(err.Error(), "line exceeds") {
		t.Fatalf("oversized line: err = %v, want line-cap error", err)
	}
}

// TestDecodeFaultQuarantines: a payload that fails to decode (here via
// the mseed.decode fault point) quarantines its chunk like a fetch
// failure would.
func TestDecodeFaultQuarantines(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, nil)
	repo.SetFaults(fault.MustNew("mseed.decode=error:1", 7))

	_, err := repo.LoadChunk(seismic.TableD, 0)
	var ce *ChunkError
	if !errors.As(err, &ce) || ce.Quarantined {
		t.Fatalf("err = %v, want fresh (not-yet-quarantined) ChunkError", err)
	}
	before := a.requests()
	repo.SetFaults(fault.Disabled())
	_, err = repo.LoadChunk(seismic.TableD, 0)
	if !errors.As(err, &ce) || !ce.Quarantined {
		t.Fatalf("second load err = %v, want quarantined ChunkError", err)
	}
	if a.requests() != before {
		t.Fatal("quarantined chunk touched the archive")
	}
}

// TestCorruptFaultDetected: the registrar.http corrupt fault flips a
// byte in the payload header region; the decoder rejects it and the
// chunk is quarantined as corrupt.
func TestCorruptFaultDetected(t *testing.T) {
	srv, _ := newArchiveServer(t)
	repo := newTestRepo(t, srv, nil)
	repo.SetFaults(fault.MustNew("registrar.http=corrupt:1", 3))

	rel, err := repo.LoadChunk(seismic.TableD, 0)
	repo.SetFaults(fault.Disabled())
	clean, cleanErr := func() (int, error) {
		r2 := newTestRepo(t, srv, nil)
		rel2, err := r2.LoadChunk(seismic.TableD, 0)
		if err != nil {
			return 0, err
		}
		return rel2.Rows(), nil
	}()
	if cleanErr != nil {
		t.Fatalf("clean load failed: %v", cleanErr)
	}
	// A single flipped byte either breaks the decode (the common case —
	// the flip lands in the header region) or alters the decoded data;
	// silently identical results would mean the corruption never
	// happened.
	if err == nil && rel.Rows() == clean {
		t.Fatal("corrupt payload decoded identically to the clean one")
	}
	if err != nil {
		var ce *ChunkError
		if !errors.As(err, &ce) {
			t.Fatalf("err = %v, want *ChunkError", err)
		}
	}
}

// TestRetryAfterParsing covers both header forms and garbage.
func TestRetryAfterParsing(t *testing.T) {
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Fatalf("delta-seconds: %v", d)
	}
	if d := parseRetryAfter("-1"); d != 0 {
		t.Fatalf("negative: %v", d)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 80*time.Second || d > 90*time.Second {
		t.Fatalf("http-date: %v", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past date: %v", d)
	}
	if d := parseRetryAfter("soon"); d != 0 {
		t.Fatalf("garbage: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty: %v", d)
	}
}

// TestRetryAfterRaisesDelay: a 429 carrying Retry-After larger than
// the policy backoff stretches the inter-attempt delay.
func TestRetryAfterRaisesDelay(t *testing.T) {
	srv, a := newArchiveServer(t)
	repo := newTestRepo(t, srv, func(r *HTTPRepository) {
		r.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	})
	hdr := http.Header{}
	hdr.Set("Retry-After", "1")
	a.set(func(a *archiveServer) {
		a.failN = 1
		a.status = http.StatusTooManyRequests
		a.header = hdr
	})
	t0 := time.Now()
	if _, err := repo.LoadChunk(seismic.TableD, 0); err != nil {
		t.Fatalf("load failed: %v", err)
	}
	if el := time.Since(t0); el < 900*time.Millisecond {
		t.Fatalf("retry came after %v, want >= ~1s (Retry-After honored)", el)
	}
}

// TestBackoffBounds: the computed backoff never exceeds MaxBackoff and
// grows from a BaseBackoff floor.
func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 50 * time.Millisecond, MaxBackoff: 2 * time.Second}.withDefaults()
	for attempt := 0; attempt < 40; attempt++ {
		for _, j := range []float64{0, 0.5, 0.999} {
			d := p.backoff(attempt, j)
			if d < p.BaseBackoff/2 || d > p.MaxBackoff {
				t.Fatalf("backoff(%d, %v) = %v out of [%v/2, %v]", attempt, j, d, p.BaseBackoff, p.MaxBackoff)
			}
		}
	}
}
