package registrar

import (
	"os"
	"path/filepath"
	"testing"

	"sommelier/internal/seisgen"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
)

func genRepo(t *testing.T, days int) (string, *seisgen.Manifest) {
	t.Helper()
	dir := t.TempDir()
	cfg := seisgen.DefaultConfig(days)
	cfg.SamplesPerFile = 240
	cfg.MeanSegments = 3
	man, err := seisgen.Generate(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dir, man
}

func TestDiscoverRepository(t *testing.T) {
	dir, man := genRepo(t, 2)
	repo, err := DiscoverRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repo.Uris) != len(man.Files) {
		t.Fatalf("files = %d, want %d", len(repo.Uris), len(man.Files))
	}
	// Deterministic (sorted) order.
	for i := 1; i < len(repo.Uris); i++ {
		if repo.Uris[i-1] >= repo.Uris[i] {
			t.Fatal("URIs not sorted")
		}
	}
	if _, err := DiscoverRepository(t.TempDir()); err == nil {
		t.Fatal("empty repository accepted")
	}
	if _, err := repo.URI(int64(len(repo.Uris))); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if got := repo.AllChunkIDs(seismic.TableD); len(got) != len(repo.Uris) || got[0] != 0 {
		t.Fatalf("chunk ids = %v", got)
	}
}

func TestRegisterMetadata(t *testing.T) {
	dir, man := genRepo(t, 2)
	repo, _ := DiscoverRepository(dir)
	cat := seismic.NewCatalog()
	nSegs, dur, err := RegisterMetadata(cat, repo)
	if err != nil {
		t.Fatal(err)
	}
	if nSegs != man.TotalSegments() {
		t.Fatalf("segments = %d, want %d", nSegs, man.TotalSegments())
	}
	if dur <= 0 {
		t.Fatal("no time recorded")
	}
	f, _ := cat.Table(seismic.TableF)
	s, _ := cat.Table(seismic.TableS)
	d, _ := cat.Table(seismic.TableD)
	if f.Rows() != len(man.Files) {
		t.Fatalf("F rows = %d", f.Rows())
	}
	if s.Rows() != man.TotalSegments() {
		t.Fatalf("S rows = %d", s.Rows())
	}
	if d.Rows() != 0 {
		t.Fatal("registration must not load actual data")
	}
	// Sample counts in S must sum to the manifest total.
	flat := s.Data().Flatten()
	var sum int64
	for _, c := range storage.Int64s(flat.Cols[s.Schema.IndexOf("sample_count")]) {
		sum += c
	}
	if sum != man.TotalSamples() {
		t.Fatalf("sample_count sum = %d, want %d", sum, man.TotalSamples())
	}
}

func TestLoadChunk(t *testing.T) {
	dir, man := genRepo(t, 1)
	repo, _ := DiscoverRepository(dir)
	rel, err := repo.LoadChunk(seismic.TableD, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find the manifest entry of chunk 0 (URIs sorted).
	var want int
	for _, fi := range man.Files {
		if fi.URI == repo.Uris[0] {
			want = fi.Samples
		}
	}
	if rel.Rows() != want {
		t.Fatalf("rows = %d, want %d", rel.Rows(), want)
	}
	if _, err := repo.LoadChunk("nosuch", 0); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, err := repo.LoadChunk(seismic.TableD, 9999); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
}

func TestLoadAllPlainVsClustered(t *testing.T) {
	dir, man := genRepo(t, 1)
	repo, _ := DiscoverRepository(dir)

	catP := seismic.NewCatalog()
	rowsP, _, err := LoadAllPlain(catP, repo)
	if err != nil {
		t.Fatal(err)
	}
	dP, _ := catP.Table(seismic.TableD)
	if ids := dP.ChunkIDs(); len(ids) != 1 || ids[0] != MonolithChunkID {
		t.Fatalf("plain layout chunks = %v", ids)
	}

	catC := seismic.NewCatalog()
	rowsC, _, err := LoadAllClustered(catC, repo)
	if err != nil {
		t.Fatal(err)
	}
	dC, _ := catC.Table(seismic.TableD)
	if got := len(dC.ChunkIDs()); got != len(repo.Uris) {
		t.Fatalf("clustered layout chunks = %d", got)
	}
	if rowsP != rowsC || rowsP != man.TotalSamples() {
		t.Fatalf("rows: plain=%d clustered=%d manifest=%d", rowsP, rowsC, man.TotalSamples())
	}
}

func TestLoadAllCSV(t *testing.T) {
	dir, man := genRepo(t, 1)
	repo, _ := DiscoverRepository(dir)
	cat := seismic.NewCatalog()
	rows, csvBytes, toCSV, toDB, err := LoadAllCSV(cat, repo, filepath.Join(t.TempDir(), "csv"))
	if err != nil {
		t.Fatal(err)
	}
	if rows != man.TotalSamples() {
		t.Fatalf("rows = %d, want %d", rows, man.TotalSamples())
	}
	if csvBytes <= man.TotalBytes() {
		t.Fatalf("CSV (%d B) should exceed binary (%d B)", csvBytes, man.TotalBytes())
	}
	if toCSV <= 0 || toDB <= 0 {
		t.Fatal("cost components missing")
	}
}

func TestBuildIndexes(t *testing.T) {
	dir, _ := genRepo(t, 1)
	repo, _ := DiscoverRepository(dir)
	cat := seismic.NewCatalog()
	if _, _, err := RegisterMetadata(cat, repo); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadAllClustered(cat, repo); err != nil {
		t.Fatal(err)
	}
	ix, dur, err := BuildIndexes(cat)
	if err != nil {
		t.Fatal(err)
	}
	if dur <= 0 {
		t.Fatal("no indexing time")
	}
	if ix.FByID == nil || ix.SByKey == nil || ix.SToF == nil {
		t.Fatal("indexes missing")
	}
	if len(ix.ZoneMaps) != len(repo.Uris) {
		t.Fatalf("zone maps = %d", len(ix.ZoneMaps))
	}
	if ix.MemSize() <= 0 {
		t.Fatal("index memsize")
	}
	var nilIx *Indexes
	if nilIx.MemSize() != 0 {
		t.Fatal("nil index memsize")
	}
}

func TestCorruptChunkSurfacesOnLoad(t *testing.T) {
	dir, _ := genRepo(t, 1)
	repo, _ := DiscoverRepository(dir)
	// Corrupt the first chunk's payload tail.
	raw, err := os.ReadFile(repo.Uris[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(repo.Uris[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Metadata extraction skips payloads and still succeeds.
	cat := seismic.NewCatalog()
	if _, _, err := RegisterMetadata(cat, repo); err != nil {
		t.Fatal(err)
	}
	// Chunk access must detect the corruption.
	if _, err := repo.LoadChunk(seismic.TableD, 0); err == nil {
		t.Fatal("corrupt chunk loaded")
	}
	// Eager loading surfaces it too.
	if _, _, err := LoadAllPlain(seismic.NewCatalog(), repo); err == nil {
		t.Fatal("corrupt chunk loaded eagerly")
	}
}

func TestApproachesAndBreakdown(t *testing.T) {
	if len(Approaches()) != 5 {
		t.Fatal("expected 5 approaches")
	}
	b := CostBreakdown{MseedToCSV: 1, CSVToDB: 2, MseedToDB: 3, Indexing: 4, DMdDerivation: 5}
	if b.Total() != 15 {
		t.Fatalf("total = %d", b.Total())
	}
	r := Report{MetadataTime: 10, Breakdown: b}
	if r.TotalTime() != 25 {
		t.Fatalf("total time = %d", r.TotalTime())
	}
}
