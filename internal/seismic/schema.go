// Package seismic defines the paper's seismology warehouse schema: the
// given-metadata tables F (per file) and S (per segment), the
// actual-data table D (sample points), the derived-metadata table H
// (hourly summary windows), and the dataview / windowdataview universal
// views. It is shared by the planner, the engine, the loaders and the
// experiments.
package seismic

import (
	"time"

	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// Table and view names.
const (
	TableF = "F" // file metadata (GMd)
	TableS = "S" // segment metadata (GMd)
	TableD = "D" // actual data points (AD)
	TableH = "H" // hourly summary windows (DMd)

	ViewData       = "dataview"       // F ⋈ S ⋈ D
	ViewWindowData = "windowdataview" // F ⋈ S ⋈ D ⋈ H
)

// WindowDuration is the derived-metadata window size (hourly windows,
// as in the paper's running example).
const WindowDuration = time.Hour

// NewCatalog builds the full warehouse catalog with empty tables.
func NewCatalog() *table.Catalog {
	cat := table.NewCatalog()

	f := table.MustNew(TableF, table.GivenMetadata, table.MustSchema(
		table.ColumnDef{Name: "file_id", Kind: storage.KindInt64},
		table.ColumnDef{Name: "uri", Kind: storage.KindString},
		table.ColumnDef{Name: "network", Kind: storage.KindString},
		table.ColumnDef{Name: "station", Kind: storage.KindString},
		table.ColumnDef{Name: "location", Kind: storage.KindString},
		table.ColumnDef{Name: "channel", Kind: storage.KindString},
		table.ColumnDef{Name: "data_quality", Kind: storage.KindString},
		table.ColumnDef{Name: "encoding", Kind: storage.KindInt64},
		table.ColumnDef{Name: "byte_order", Kind: storage.KindString},
	), []string{"file_id"}, "")

	s := table.MustNew(TableS, table.GivenMetadata, table.MustSchema(
		table.ColumnDef{Name: "file_id", Kind: storage.KindInt64},
		table.ColumnDef{Name: "segment_id", Kind: storage.KindInt64},
		table.ColumnDef{Name: "start_time", Kind: storage.KindTime},
		table.ColumnDef{Name: "end_time", Kind: storage.KindTime},
		table.ColumnDef{Name: "frequency", Kind: storage.KindFloat64},
		table.ColumnDef{Name: "sample_count", Kind: storage.KindInt64},
	), []string{"file_id", "segment_id"}, "")

	// window_ts materializes WindowStart(sample_time): the join key
	// between samples and their hourly summary window. Computed during
	// chunk ingestion (it is not stored in the files).
	d := table.MustNew(TableD, table.ActualData, table.MustSchema(
		table.ColumnDef{Name: "file_id", Kind: storage.KindInt64},
		table.ColumnDef{Name: "segment_id", Kind: storage.KindInt64},
		table.ColumnDef{Name: "sample_time", Kind: storage.KindTime},
		table.ColumnDef{Name: "sample_value", Kind: storage.KindFloat64},
		table.ColumnDef{Name: "window_ts", Kind: storage.KindTime},
	), nil, "file_id")

	h := table.MustNew(TableH, table.DerivedMetadata, table.MustSchema(
		table.ColumnDef{Name: "window_station", Kind: storage.KindString},
		table.ColumnDef{Name: "window_channel", Kind: storage.KindString},
		table.ColumnDef{Name: "window_start_ts", Kind: storage.KindTime},
		table.ColumnDef{Name: "window_max_val", Kind: storage.KindFloat64},
		table.ColumnDef{Name: "window_min_val", Kind: storage.KindFloat64},
		table.ColumnDef{Name: "window_mean_val", Kind: storage.KindFloat64},
		table.ColumnDef{Name: "window_std_dev", Kind: storage.KindFloat64},
	), []string{"window_station", "window_channel", "window_start_ts"}, "")

	for _, t := range []*table.Table{f, s, d, h} {
		if err := cat.AddTable(t); err != nil {
			panic(err)
		}
	}

	if err := cat.AddView(&table.View{
		Name:   ViewData,
		Tables: []string{TableF, TableS, TableD},
		Joins: []table.JoinPred{
			{Left: "F.file_id", Right: "S.file_id"},
			{Left: "S.file_id", Right: "D.file_id"},
			{Left: "S.segment_id", Right: "D.segment_id"},
		},
	}); err != nil {
		panic(err)
	}
	if err := cat.AddView(&table.View{
		Name:   ViewWindowData,
		Tables: []string{TableF, TableS, TableD, TableH},
		Joins: []table.JoinPred{
			{Left: "F.file_id", Right: "S.file_id"},
			{Left: "S.file_id", Right: "D.file_id"},
			{Left: "S.segment_id", Right: "D.segment_id"},
			{Left: "F.station", Right: "H.window_station"},
			{Left: "F.channel", Right: "H.window_channel"},
			{Left: "D.window_ts", Right: "H.window_start_ts"},
		},
	}); err != nil {
		panic(err)
	}

	for _, fk := range []table.ForeignKey{
		{Table: TableS, Column: "file_id", RefTable: TableF, RefColumn: "file_id"},
		{Table: TableD, Column: "file_id", RefTable: TableF, RefColumn: "file_id"},
	} {
		if err := cat.AddForeignKey(fk); err != nil {
			panic(err)
		}
	}

	// Sample timestamps are bounded per segment by the given metadata:
	// the planner infers S predicates from D.sample_time ranges, which
	// is what lets a 2-day query select only the 2 covering files.
	if err := cat.AddRangeMapping(table.RangeMapping{
		ADColumn: "D.sample_time", MdLo: "S.start_time", MdHi: "S.end_time",
	}); err != nil {
		panic(err)
	}
	return cat
}

// WindowStart truncates a timestamp (ns) to its containing window.
func WindowStart(ns int64) int64 {
	w := int64(WindowDuration)
	return ns - ((ns%w)+w)%w
}
