// Package csvio implements the eager_csv loading path of the paper's
// evaluation: waveform chunks are first serialized to a textual CSV
// representation and then bulk-parsed into the database. The detour
// through text is deliberately expensive — explicit timestamp
// materialization and decimal formatting — because that is exactly the
// cost the paper measures against direct binary loading.
package csvio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"sommelier/internal/mseed"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
)

// TimeLayout is the textual timestamp format, millisecond precision as
// in the paper's queries.
const TimeLayout = "2006-01-02T15:04:05.000000000"

// ExportChunk writes the actual data of a decoded chunk as CSV rows
// (file_id, segment_id, sample_time, sample_value) and returns the
// number of rows written.
func ExportChunk(w io.Writer, fileID int64, f *mseed.File) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var rows int64
	for _, seg := range f.Segments {
		period := float64(time.Second) / seg.Header.SampleRate
		for i, v := range seg.Samples {
			ts := seg.Header.StartTime + int64(float64(i)*period)
			_, err := fmt.Fprintf(bw, "%d,%d,%s,%d\n",
				fileID, seg.Header.ID, time.Unix(0, ts).UTC().Format(TimeLayout), v)
			if err != nil {
				return rows, err
			}
			rows++
		}
	}
	return rows, bw.Flush()
}

// LoadCSV parses CSV rows written by ExportChunk into a relation in the
// D table schema (file_id, segment_id, sample_time, sample_value,
// window_ts). The window key is computed during parsing, exactly as the
// binary ingestion path computes it during decoding.
func LoadCSV(r io.Reader) (*storage.Relation, error) {
	rel := storage.NewRelation()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	ids := storage.NewInt64Builder(storage.BatchSize)
	segs := storage.NewInt64Builder(storage.BatchSize)
	times := storage.NewTimeBuilder(storage.BatchSize)
	vals := storage.NewFloat64Builder(storage.BatchSize)
	wins := storage.NewTimeBuilder(storage.BatchSize)
	flush := func() {
		if ids.Len() == 0 {
			return
		}
		rel.Append(storage.NewBatch(ids.Finish(), segs.Finish(), times.Finish(), vals.Finish(), wins.Finish()))
		ids = storage.NewInt64Builder(storage.BatchSize)
		segs = storage.NewInt64Builder(storage.BatchSize)
		times = storage.NewTimeBuilder(storage.BatchSize)
		vals = storage.NewFloat64Builder(storage.BatchSize)
		wins = storage.NewTimeBuilder(storage.BatchSize)
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ",", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("csvio: line %d: %d fields", lineNo, len(parts))
		}
		id, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad file_id: %w", lineNo, err)
		}
		seg, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad segment_id: %w", lineNo, err)
		}
		ts, err := time.Parse(TimeLayout, parts[2])
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad timestamp: %w", lineNo, err)
		}
		v, err := strconv.ParseFloat(parts[3], 64)
		if err != nil {
			return nil, fmt.Errorf("csvio: line %d: bad value: %w", lineNo, err)
		}
		ids.Append(id)
		segs.Append(seg)
		times.Append(ts.UnixNano())
		vals.Append(v)
		wins.Append(seismic.WindowStart(ts.UnixNano()))
		if ids.Len() >= storage.BatchSize {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return rel, nil
}
