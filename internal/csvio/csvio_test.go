package csvio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sommelier/internal/mseed"
	"sommelier/internal/storage"
)

func chunk() *mseed.File {
	return &mseed.File{
		Header: mseed.FileHeader{
			Network: "IV", Station: "FIAM", Location: "00", Channel: "HHZ",
			Quality: "D", Encoding: mseed.EncodingDeltaVarint, ByteOrder: "LE",
		},
		Segments: []mseed.Segment{
			{
				Header: mseed.SegmentHeader{
					ID: 0, StartTime: time.Date(2010, 4, 20, 23, 0, 0, 0, time.UTC).UnixNano(),
					SampleRate: 20, SampleCount: 4,
				},
				Samples: []int32{1, -2, 3, -4},
			},
		},
	}
}

func TestExportLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rows, err := ExportChunk(&buf, 7, chunk())
	if err != nil {
		t.Fatal(err)
	}
	if rows != 4 {
		t.Fatalf("rows = %d", rows)
	}
	rel, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows() != 4 {
		t.Fatalf("loaded rows = %d", rel.Rows())
	}
	flat := rel.Flatten()
	if got := storage.Int64s(flat.Cols[0])[0]; got != 7 {
		t.Fatalf("file_id = %d", got)
	}
	vals := storage.Float64s(flat.Cols[3])
	want := []float64{1, -2, 3, -4}
	for i, w := range want {
		if vals[i] != w {
			t.Fatalf("value %d = %v", i, vals[i])
		}
	}
	// Timestamps spaced by 50ms at 20 Hz.
	ts := storage.Int64s(flat.Cols[2])
	if ts[1]-ts[0] != int64(50*time.Millisecond) {
		t.Fatalf("spacing = %d", ts[1]-ts[0])
	}
}

func TestCSVIsTextAndLarge(t *testing.T) {
	var buf bytes.Buffer
	if _, err := ExportChunk(&buf, 1, chunk()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "2010-04-20T23:00:00.0") {
		t.Fatalf("timestamps not materialized: %q", text)
	}
	// The textual form must be far larger than the compressed binary
	// (Table III's CSV blow-up).
	var bin bytes.Buffer
	if err := mseed.Write(&bin, chunk()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < bin.Len() {
		t.Fatalf("CSV (%d B) smaller than binary (%d B)", buf.Len(), bin.Len())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	cases := []string{
		"1,2\n",
		"x,0,2010-04-20T23:00:00.000000000,1\n",
		"1,x,2010-04-20T23:00:00.000000000,1\n",
		"1,0,notatime,1\n",
		"1,0,2010-04-20T23:00:00.000000000,notanumber\n",
	}
	for i, c := range cases {
		if _, err := LoadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Blank lines are tolerated.
	rel, err := LoadCSV(strings.NewReader("\n1,0,2010-04-20T23:00:00.000000000,5\n\n"))
	if err != nil || rel.Rows() != 1 {
		t.Fatalf("blank lines: %v, rows=%d", err, rel.Rows())
	}
}
