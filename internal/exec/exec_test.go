package exec

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/expr"
	"sommelier/internal/opt"
	"sommelier/internal/plan"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// compile is the test shorthand for the engine's compile pipeline:
// name resolution (plan.Build) followed by the full rule-based
// optimizer, without index access paths.
func compile(cat *table.Catalog, q *plan.Query) (*plan.Plan, error) {
	p, err := plan.Build(cat, q)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(&opt.Context{Catalog: cat}, p, opt.Default())
}

// fakeLoader serves synthetic chunks: chunk id n holds rows with
// sample values n*100 .. n*100+9 and records every load.
type fakeLoader struct {
	mu     sync.Mutex
	loads  []int64
	chunks []int64
	fail   map[int64]bool
	delay  time.Duration
}

func (l *fakeLoader) LoadChunk(tableName string, chunkID int64) (*storage.Relation, error) {
	l.mu.Lock()
	l.loads = append(l.loads, chunkID)
	fail := l.fail[chunkID]
	l.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("fake: chunk %d unavailable", chunkID)
	}
	if l.delay > 0 {
		time.Sleep(l.delay)
	}
	const n = 10
	ids := make([]int64, n)
	segs := make([]int64, n)
	ts := make([]int64, n)
	vs := make([]float64, n)
	wins := make([]int64, n)
	for i := 0; i < n; i++ {
		ids[i] = chunkID
		segs[i] = 0
		ts[i] = chunkID*1_000_000 + int64(i)
		vs[i] = float64(chunkID*100 + int64(i))
		wins[i] = seismic.WindowStart(ts[i])
	}
	rel := storage.NewRelation()
	rel.Append(storage.NewBatch(
		storage.NewInt64Column(ids),
		storage.NewInt64Column(segs),
		storage.NewTimeColumn(ts),
		storage.NewFloat64Column(vs),
		storage.NewTimeColumn(wins),
	))
	return rel, nil
}

func (l *fakeLoader) AllChunkIDs(tableName string) []int64 {
	return append([]int64{}, l.chunks...)
}

func (l *fakeLoader) loadCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.loads)
}

// setupCatalog fills the seismic metadata tables for nFiles chunks, one
// segment each, alternating stations ISK/FIAM.
func setupCatalog(t *testing.T, nFiles int) (*table.Catalog, *fakeLoader) {
	t.Helper()
	cat := seismic.NewCatalog()
	f, _ := cat.Table(seismic.TableF)
	s, _ := cat.Table(seismic.TableS)
	loader := &fakeLoader{fail: make(map[int64]bool)}
	for i := 0; i < nFiles; i++ {
		id := int64(i)
		station := "ISK"
		if i%2 == 1 {
			station = "FIAM"
		}
		err := f.Append(storage.NewBatch(
			storage.NewInt64Column([]int64{id}),
			storage.NewStringColumn([]string{fmt.Sprintf("repo/chunk-%d.msl", id)}),
			storage.NewStringColumn([]string{"IV"}),
			storage.NewStringColumn([]string{station}),
			storage.NewStringColumn([]string{"00"}),
			storage.NewStringColumn([]string{"HHZ"}),
			storage.NewStringColumn([]string{"D"}),
			storage.NewInt64Column([]int64{10}),
			storage.NewStringColumn([]string{"LE"}),
		))
		if err != nil {
			t.Fatal(err)
		}
		err = s.Append(storage.NewBatch(
			storage.NewInt64Column([]int64{id}),
			storage.NewInt64Column([]int64{0}),
			storage.NewTimeColumn([]int64{id * 1_000_000}),
			storage.NewTimeColumn([]int64{id*1_000_000 + 10}),
			storage.NewFloat64Column([]float64{20}),
			storage.NewInt64Column([]int64{10}),
		))
		if err != nil {
			t.Fatal(err)
		}
		loader.chunks = append(loader.chunks, id)
	}
	return cat, loader
}

// t4Query selects data of one station through the dataview.
func t4Query(station string) *plan.Query {
	return &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggSum, Expr: expr.Col("D.sample_value"), Alias: "sum_val"}},
		From:   seismic.ViewData,
		Where:  expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str(station)),
	}
}

func lazyEnv(cat *table.Catalog, loader ChunkLoader, rec *cache.Recycler) *Env {
	recs := map[string]*cache.Recycler{}
	if rec != nil {
		recs[seismic.TableD] = rec
	}
	return &Env{Catalog: cat, Mode: ModeLazy, Loader: loader, Recyclers: recs}
}

func TestLazyLoadsOnlySelectedChunks(t *testing.T) {
	cat, loader := setupCatalog(t, 10)
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	// ISK owns the 5 even chunks; only those may be loaded.
	if res.Stats.ChunksSelected != 5 || res.Stats.ChunksLoaded != 5 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	for _, id := range loader.loads {
		if id%2 != 0 {
			t.Fatalf("chunk %d loaded for ISK", id)
		}
	}
	// sum over chunks 0,2,4,6,8 of (100c .. 100c+9).
	want := 0.0
	for _, c := range []int64{0, 2, 4, 6, 8} {
		for i := 0; i < 10; i++ {
			want += float64(c*100 + int64(i))
		}
	}
	got := storage.Float64s(res.Rel.Flatten().Cols[0])[0]
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Without a recycler the chunks are transient: nothing resident.
	d, _ := cat.Table(seismic.TableD)
	if d.Rows() != 0 {
		t.Fatalf("transient chunks left resident: %d rows", d.Rows())
	}
}

func TestLazyCacheHitsOnSecondRun(t *testing.T) {
	cat, loader := setupCatalog(t, 10)
	d, _ := cat.Table(seismic.TableD)
	rec := cache.New(1<<30, cache.LRU, func(id int64) { d.DropChunk(id) })
	env := lazyEnv(cat, loader, rec)
	p, _ := compile(cat, t4Query("ISK"))
	res1, err := Execute(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.CacheHits != 0 || res1.Stats.ChunksLoaded != 5 {
		t.Fatalf("first run stats = %+v", res1.Stats)
	}
	p2, _ := compile(cat, t4Query("ISK"))
	res2, err := Execute(env, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.CacheHits != 5 || res2.Stats.ChunksLoaded != 0 {
		t.Fatalf("second run stats = %+v", res2.Stats)
	}
	if loader.loadCount() != 5 {
		t.Fatalf("loader called %d times", loader.loadCount())
	}
	// Same answer both times.
	a := storage.Float64s(res1.Rel.Flatten().Cols[0])[0]
	b := storage.Float64s(res2.Rel.Flatten().Cols[0])[0]
	if a != b {
		t.Fatalf("hot run changed the answer: %v vs %v", a, b)
	}
}

func TestCacheEvictionReloads(t *testing.T) {
	cat, loader := setupCatalog(t, 10)
	d, _ := cat.Table(seismic.TableD)
	// Capacity for roughly two chunks only.
	var chunkSize int64
	{
		rel, _ := loader.LoadChunk(seismic.TableD, 0)
		chunkSize = rel.MemSize()
		loader.loads = nil
	}
	rec := cache.New(chunkSize*2+1, cache.LRU, func(id int64) { d.DropChunk(id) })
	env := lazyEnv(cat, loader, rec)
	p, _ := compile(cat, t4Query("ISK"))
	if _, err := Execute(env, p); err != nil {
		t.Fatal(err)
	}
	// Only 2 of 5 chunks fit; a second run must reload the evicted 3.
	p2, _ := compile(cat, t4Query("ISK"))
	res, err := Execute(env, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 2 || res.Stats.ChunksLoaded != 3 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestEagerFullScansEverything(t *testing.T) {
	cat, loader := setupCatalog(t, 6)
	d, _ := cat.Table(seismic.TableD)
	// Eager plain: one monolithic chunk holding all data.
	all := storage.NewRelation()
	for _, id := range loader.chunks {
		rel, _ := loader.LoadChunk(seismic.TableD, id)
		for _, b := range rel.Batches() {
			all.Append(b)
		}
	}
	if err := d.AppendChunk(-1, all); err != nil {
		t.Fatal(err)
	}
	loader.loads = nil
	env := &Env{Catalog: cat, Mode: ModeEagerFull}
	p, _ := compile(cat, t4Query("FIAM"))
	res, err := Execute(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if loader.loadCount() != 0 {
		t.Fatal("eager mode called the loader")
	}
	want := 0.0
	for _, c := range []int64{1, 3, 5} {
		for i := 0; i < 10; i++ {
			want += float64(c*100 + int64(i))
		}
	}
	if got := storage.Float64s(res.Rel.Flatten().Cols[0])[0]; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestEagerIndexedPrunesChunks(t *testing.T) {
	cat, loader := setupCatalog(t, 6)
	d, _ := cat.Table(seismic.TableD)
	for _, id := range loader.chunks {
		rel, _ := loader.LoadChunk(seismic.TableD, id)
		if err := d.AppendChunk(id, rel); err != nil {
			t.Fatal(err)
		}
	}
	env := &Env{Catalog: cat, Mode: ModeEagerIndexed}
	p, _ := compile(cat, t4Query("FIAM"))
	res, err := Execute(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunksSelected != 3 {
		t.Fatalf("selected = %d, want 3", res.Stats.ChunksSelected)
	}
	want := 0.0
	for _, c := range []int64{1, 3, 5} {
		for i := 0; i < 10; i++ {
			want += float64(c*100 + int64(i))
		}
	}
	if got := storage.Float64s(res.Rel.Flatten().Cols[0])[0]; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestLazyEagerEquivalence(t *testing.T) {
	// The crucial end-to-end invariant: lazy and eager produce the
	// same answers.
	for _, station := range []string{"ISK", "FIAM"} {
		catL, loaderL := setupCatalog(t, 8)
		pL, _ := compile(catL, t4Query(station))
		resL, err := Execute(lazyEnv(catL, loaderL, nil), pL)
		if err != nil {
			t.Fatal(err)
		}
		catE, loaderE := setupCatalog(t, 8)
		dE, _ := catE.Table(seismic.TableD)
		all := storage.NewRelation()
		for _, id := range loaderE.chunks {
			rel, _ := loaderE.LoadChunk(seismic.TableD, id)
			for _, b := range rel.Batches() {
				all.Append(b)
			}
		}
		dE.AppendChunk(-1, all)
		pE, _ := compile(catE, t4Query(station))
		resE, err := Execute(&Env{Catalog: catE, Mode: ModeEagerFull}, pE)
		if err != nil {
			t.Fatal(err)
		}
		l := storage.Float64s(resL.Rel.Flatten().Cols[0])[0]
		e := storage.Float64s(resE.Rel.Flatten().Cols[0])[0]
		if l != e {
			t.Fatalf("station %s: lazy %v != eager %v", station, l, e)
		}
	}
}

func TestMetadataOnlyQueryLoadsNothing(t *testing.T) {
	cat, loader := setupCatalog(t, 10)
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.TableF,
		Where:  expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("ISK")),
	}
	p, err := compile(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if loader.loadCount() != 0 {
		t.Fatal("metadata-only query ingested chunks")
	}
	if got := storage.Int64s(res.Rel.Flatten().Cols[0])[0]; got != 5 {
		t.Fatalf("count = %d", got)
	}
}

func TestChunkLoadFailureSurfaces(t *testing.T) {
	cat, loader := setupCatalog(t, 4)
	loader.fail[2] = true
	p, _ := compile(cat, t4Query("ISK"))
	if _, err := Execute(lazyEnv(cat, loader, nil), p); err == nil {
		t.Fatal("failed chunk load not surfaced")
	}
}

func TestSerialVsParallelLoadSameResult(t *testing.T) {
	catP, loaderP := setupCatalog(t, 12)
	loaderP.delay = time.Millisecond
	envP := lazyEnv(catP, loaderP, nil)
	pP, _ := compile(catP, t4Query("ISK"))
	resP, err := Execute(envP, pP)
	if err != nil {
		t.Fatal(err)
	}
	catS, loaderS := setupCatalog(t, 12)
	loaderS.delay = time.Millisecond
	envS := lazyEnv(catS, loaderS, nil)
	envS.MaxParallel = 1
	pS, _ := compile(catS, t4Query("ISK"))
	resS, err := Execute(envS, pS)
	if err != nil {
		t.Fatal(err)
	}
	a := storage.Float64s(resP.Rel.Flatten().Cols[0])[0]
	b := storage.Float64s(resS.Rel.Flatten().Cols[0])[0]
	if a != b {
		t.Fatalf("parallel %v != serial %v", a, b)
	}
	// Serial loading must preserve the loader call count.
	if loaderS.loadCount() != loaderP.loadCount() {
		t.Fatal("different number of loads")
	}
}

func TestSelectedChunksAreSorted(t *testing.T) {
	cat, loader := setupCatalog(t, 9)
	p, _ := compile(cat, t4Query("ISK"))
	ex := &executor{env: lazyEnv(cat, loader, nil), plan: p}
	res, err := ex.run()
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	ids := ex.selected[seismic.TableD]
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatalf("chunk ids not sorted: %v", ids)
	}
}

func TestStatsTiming(t *testing.T) {
	cat, loader := setupCatalog(t, 4)
	loader.delay = 2 * time.Millisecond
	p, _ := compile(cat, t4Query("ISK"))
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Load <= 0 {
		t.Fatalf("load time not recorded: %+v", res.Stats)
	}
	if res.Stats.Total() < res.Stats.Load {
		t.Fatal("total < load")
	}
}

func TestContextCancellation(t *testing.T) {
	cat, loader := setupCatalog(t, 12)
	loader.delay = 5 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before execution
	p, _ := compile(cat, t4Query("ISK"))
	if _, err := ExecuteContext(ctx, lazyEnv(cat, loader, nil), p); err == nil {
		t.Fatal("cancelled context not honoured")
	}
	// A timeout mid-load aborts ingestion.
	cat2, loader2 := setupCatalog(t, 12)
	loader2.delay = 20 * time.Millisecond
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	env := lazyEnv(cat2, loader2, nil)
	env.MaxParallel = 1
	p2, _ := compile(cat2, t4Query("ISK"))
	if _, err := ExecuteContext(ctx2, env, p2); err == nil {
		t.Fatal("timeout not honoured during chunk ingestion")
	}
}
