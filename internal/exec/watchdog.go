package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sommelier/internal/fault"
)

// The runaway-query watchdog. Context deadlines have always been
// enforced at the HTTP handler; what was missing is enforcement
// *inside* execution — a query that blew its budget kept burning CPU
// and pooled memory until its drains finished. The executor now
// threads a cooperative check into every stage-2 drain (materialized
// and streaming), every morsel-range claim, and every pipeline
// breaker's internal drain (hash-join build, aggregation fold, sort
// input, top-k feed), so an expired query stops within one morsel of
// the expiry, releases every pooled batch on the way out (the drain
// error paths already guarantee that), and surfaces a typed
// *DeadlineError the server can count as a watchdog kill.

// DeadlineError reports that a query's deadline expired and the
// watchdog cancelled it at a morsel or drain boundary. It unwraps to
// context.DeadlineExceeded, so existing errors.Is dispatch (HTTP 504)
// keeps working.
type DeadlineError struct {
	// Elapsed is how long the query had been executing when the
	// expiry was noticed.
	Elapsed time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("exec: deadline exceeded, query cancelled at morsel boundary after %v", e.Elapsed.Round(time.Microsecond))
}

// Unwrap makes errors.Is(err, context.DeadlineExceeded) true.
func (e *DeadlineError) Unwrap() error { return context.DeadlineExceeded }

// deadlineErr normalizes a query-fatal error: any error caused by the
// context deadline — however deep it surfaced from — becomes a
// *DeadlineError stamped with the query's elapsed time. Other errors
// (including plain cancellation) pass through.
func (ex *executor) deadlineErr(err error) error {
	var de *DeadlineError
	if errors.As(err, &de) {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &DeadlineError{Elapsed: time.Since(ex.t0)}
	}
	return err
}

// morselHook builds the Morsel hook for the top-level stage-2 drains:
// the exec.morsel fault point (injected stalls and errors land here,
// once per claimed morsel range, never inside a batch) followed by
// the watchdog's deadline check. Breakers' internal drains get the
// bare context check instead, so fault counts stay proportional to
// top-level morsels.
func (ex *executor) morselHook() func() error {
	inj := ex.env.Faults
	ctx := ex.ctx
	return func() error {
		if act := inj.Check(fault.PointMorsel); act.Err != nil || act.Delay > 0 {
			if err := act.Wait(ctx); err != nil {
				return err
			}
			if act.Err != nil {
				return act.Err
			}
		}
		return ctx.Err()
	}
}
