package exec

import (
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/index"
	"sommelier/internal/opt"
	"sommelier/internal/plan"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// compileIx compiles with the environment's index access paths exposed
// to the optimizer's index-key recognition rule.
func compileIx(env *Env, cat *table.Catalog, q *plan.Query) (*plan.Plan, error) {
	p, err := plan.Build(cat, q)
	if err != nil {
		return nil, err
	}
	ctx := &opt.Context{Catalog: cat, MetaIndexes: map[string][][]string{}}
	for tn, mis := range env.MetaIndexes {
		for _, mi := range mis {
			ctx.MetaIndexes[tn] = append(ctx.MetaIndexes[tn], mi.Cols)
		}
	}
	return opt.Optimize(ctx, p, opt.Default())
}

// indexedEnv clusters all chunks and builds a (station, channel) index
// on F, mirroring the eager_index investment.
func indexedEnv(t *testing.T, nFiles int) (*Env, *table.Catalog) {
	t.Helper()
	cat, loader := setupCatalog(t, nFiles)
	d, _ := cat.Table(seismic.TableD)
	for _, id := range loader.chunks {
		rel, err := loader.LoadChunk(seismic.TableD, id)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AppendChunk(id, rel); err != nil {
			t.Fatal(err)
		}
	}
	f, _ := cat.Table(seismic.TableF)
	fFlat := f.Data().Flatten()
	ix, err := index.BuildHash(fFlat, []int{
		f.Schema.IndexOf("station"), f.Schema.IndexOf("channel"),
	})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{
		Catalog: cat,
		Mode:    ModeEagerIndexed,
		MetaIndexes: map[string][]MetaIndex{
			seismic.TableF: {{Cols: []string{"station", "channel"}, Ix: ix, Data: fFlat}},
		},
	}
	return env, cat
}

func TestIndexScanUsedForPinnedColumns(t *testing.T) {
	env, cat := indexedEnv(t, 8)
	// Station AND channel pinned: the index applies.
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggSum, Expr: expr.Col("D.sample_value"), Alias: "s"}},
		From:   seismic.ViewData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str("ISK")),
			expr.NewCmp(expr.EQ, expr.Col("F.channel"), expr.Str("HHZ")),
		}),
	}
	p, err := compileIx(env, cat, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexScans == 0 {
		t.Fatal("index-scan access path not used")
	}
	// Compare against a full-scan execution.
	envNoIx := &Env{Catalog: cat, Mode: ModeEagerIndexed}
	p2, _ := plan.Build(cat, q)
	res2, err := Execute(envNoIx, p2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.IndexScans != 0 {
		t.Fatal("phantom index scan")
	}
	a := storage.Float64s(res.Rel.Flatten().Cols[0])[0]
	b := storage.Float64s(res2.Rel.Flatten().Cols[0])[0]
	if a != b {
		t.Fatalf("index scan changed the answer: %v vs %v", a, b)
	}
}

func TestIndexScanResidualPredicate(t *testing.T) {
	env, cat := indexedEnv(t, 8)
	// Index columns pinned plus an extra predicate on uri: the extra
	// conjunct must be applied as a residual filter.
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.TableF,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("ISK")),
			expr.NewCmp(expr.EQ, expr.Col("channel"), expr.Str("HHZ")),
			expr.NewCmp(expr.EQ, expr.Col("uri"), expr.Str("repo/chunk-0.msl")),
		}),
	}
	p, err := compileIx(env, cat, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexScans != 1 {
		t.Fatalf("index scans = %d", res.Stats.IndexScans)
	}
	if got := storage.Int64s(res.Rel.Flatten().Cols[0])[0]; got != 1 {
		t.Fatalf("count = %d", got)
	}
}

func TestIndexScanNotUsedForPartialKey(t *testing.T) {
	env, cat := indexedEnv(t, 8)
	// Only station pinned: the two-column index must not fire.
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.TableF,
		Where:  expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("ISK")),
	}
	p, _ := compileIx(env, cat, q)
	res, err := Execute(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.IndexScans != 0 {
		t.Fatal("index used with partial key")
	}
	if got := storage.Int64s(res.Rel.Flatten().Cols[0])[0]; got != 4 {
		t.Fatalf("count = %d", got)
	}
}

func TestIndexScanAbsentKeyReturnsEmpty(t *testing.T) {
	env, cat := indexedEnv(t, 4)
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.TableF,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("NOPE")),
			expr.NewCmp(expr.EQ, expr.Col("channel"), expr.Str("HHZ")),
		}),
	}
	p, _ := compileIx(env, cat, q)
	res, err := Execute(env, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := storage.Int64s(res.Rel.Flatten().Cols[0])[0]; got != 0 {
		t.Fatalf("count = %d", got)
	}
}
