package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightSharesLeaderResult: waiters joining an open flight get the
// leader's result without running fn themselves.
func TestFlightSharesLeaderResult(t *testing.T) {
	var g flightGroup
	key := flightKey{table: "D", id: 7}
	var calls atomic.Int32
	release := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, leader, err := g.do(context.Background(), key, func() (flightResult, error) {
			calls.Add(1)
			close(entered)
			<-release
			return flightResult{rows: 42, bytes: 4096}, nil
		})
		if err != nil || !leader {
			t.Errorf("leader: res=%+v leader=%v err=%v", res, leader, err)
		}
	}()
	<-entered

	const waiters = 4
	results := make([]flightResult, waiters)
	leaders := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, leader, err := g.do(context.Background(), key, func() (flightResult, error) {
				calls.Add(1)
				return flightResult{}, errors.New("waiter must not run fn")
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], leaders[i] = res, leader
		}(i)
	}
	// Give the waiters a moment to join the open flight, then land it.
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i := range results {
		if leaders[i] {
			t.Errorf("waiter %d claims leadership", i)
		}
		if results[i].rows != 42 || results[i].bytes != 4096 {
			t.Errorf("waiter %d result %+v, want leader's", i, results[i])
		}
	}
}

// TestFlightWaiterCancelled: a waiter whose context expires mid-flight
// returns its context error immediately, and the shared flight result
// is not poisoned — the leader and later callers still succeed.
func TestFlightWaiterCancelled(t *testing.T) {
	var g flightGroup
	key := flightKey{table: "D", id: 3}
	release := make(chan struct{})
	entered := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), key, func() (flightResult, error) {
			close(entered)
			<-release
			return flightResult{rows: 7}, nil
		})
		leaderDone <- err
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, key, func() (flightResult, error) {
			t.Error("cancelled waiter ran fn")
			return flightResult{}, nil
		})
		waiterDone <- err
	}()
	// Let the waiter park on the flight, then cancel only the waiter.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}

	// The leader is unaffected by the waiter's cancellation.
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after waiter cancellation: %v", err)
	}
	// And the key is clear: a fresh caller becomes a fresh leader.
	res, leader, err := g.do(context.Background(), key, func() (flightResult, error) {
		return flightResult{rows: 9}, nil
	})
	if err != nil || !leader || res.rows != 9 {
		t.Fatalf("fresh flight after cancellation: res=%+v leader=%v err=%v", res, leader, err)
	}
}

// TestFlightErrorNotCached: a failed flight's error is shared with its
// waiters but not cached — the next caller retries with a fresh fn
// run. This is what lets the registrar's quarantine/retry policy own
// failure memory instead of the flight table.
func TestFlightErrorNotCached(t *testing.T) {
	var g flightGroup
	key := flightKey{table: "D", id: 11}
	injected := errors.New("injected: chunk fetch failed")
	var calls atomic.Int32

	_, leader, err := g.do(context.Background(), key, func() (flightResult, error) {
		calls.Add(1)
		return flightResult{}, injected
	})
	if !leader || !errors.Is(err, injected) {
		t.Fatalf("first call: leader=%v err=%v", leader, err)
	}

	// The failure must not be remembered: the next caller runs fn again
	// and can succeed.
	res, leader, err := g.do(context.Background(), key, func() (flightResult, error) {
		calls.Add(1)
		return flightResult{rows: 5}, nil
	})
	if err != nil || !leader || res.rows != 5 {
		t.Fatalf("retry after failure: res=%+v leader=%v err=%v", res, leader, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn ran %d times, want 2 (errors are not cached)", n)
	}
}

// TestFlightErrorSharedWithWaiters: waiters of a failing flight all see
// the leader's error.
func TestFlightErrorSharedWithWaiters(t *testing.T) {
	var g flightGroup
	key := flightKey{table: "D", id: 13}
	injected := errors.New("injected")
	release := make(chan struct{})
	entered := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.do(context.Background(), key, func() (flightResult, error) {
			close(entered)
			<-release
			return flightResult{}, injected
		})
		if !errors.Is(err, injected) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-entered

	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.do(context.Background(), key, func() (flightResult, error) {
				t.Error("waiter ran fn")
				return flightResult{}, nil
			})
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, injected) {
			t.Errorf("waiter %d err = %v, want the leader's injected error", i, err)
		}
	}
}
