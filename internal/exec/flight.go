package exec

import (
	"context"
	"sync"
	"time"
)

// flightKey identifies one chunk ingestion: the unit of deduplication
// for concurrent queries selecting the same non-resident chunk.
type flightKey struct {
	table string
	id    int64
}

// flightResult carries what the flight's leader learned while loading.
// hit marks that the leader found the chunk already resident (and
// pinned it) instead of loading: the TOCTOU window between a failed
// pin and opening the flight, closed inside the flight.
type flightResult struct {
	rows  int64
	bytes int64
	cost  time.Duration
	hit   bool
	// promoted marks a load served by the disk tier (a block decode)
	// instead of the archive loader.
	promoted bool
}

// flightCall is one in-flight chunk load shared by its waiters.
type flightCall struct {
	done chan struct{}
	res  flightResult
	err  error
}

// flightGroup deduplicates concurrent loads of the same chunk, in the
// manner of golang.org/x/sync/singleflight (reimplemented here: the
// module has no external dependencies). The first caller for a key
// becomes the leader and runs fn; callers arriving while the flight is
// open wait and share the leader's outcome. Errors are not cached: a
// caller arriving after a failed flight completes starts a fresh one.
type flightGroup struct {
	mu sync.Mutex
	m  map[flightKey]*flightCall
}

// do runs fn once per open flight of key, returning the shared result
// and whether this caller was the leader that actually ran fn. A
// waiter whose context expires stops waiting and returns the context
// error; the leader's load itself is not cancelled (other queries may
// still want the chunk).
func (g *flightGroup) do(ctx context.Context, key flightKey, fn func() (flightResult, error)) (flightResult, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[flightKey]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, false, c.err
		case <-ctx.Done():
			return flightResult{}, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, true, c.err
}
