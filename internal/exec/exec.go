// Package exec implements the two-stage query executor. Stage one
// evaluates the metadata branch Qf of a plan to identify the chunks of
// actual data the query needs; the run-time optimizer then rewrites
// every actual-data scan into a union of cache-scans (for resident
// chunks) and chunk-accesses (ingesting missing chunks through the
// chunk loader, in parallel); stage two evaluates the remainder Qs.
//
// The same executor also serves the eager loading variants, which skip
// lazy ingestion: ModeEagerFull scans the monolithically loaded data,
// ModeEagerIndexed exploits the per-chunk clustering built by the
// indexing investment to prune chunks with the stage-one result.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/expr"
	"sommelier/internal/fault"
	"sommelier/internal/index"
	"sommelier/internal/physical"
	"sommelier/internal/plan"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// Mode selects how actual-data scans are evaluated.
type Mode uint8

// Execution modes.
const (
	// ModeLazy ingests missing chunks during query evaluation (the
	// paper's contribution).
	ModeLazy Mode = iota
	// ModeEagerFull scans all resident actual data; the eager_plain
	// and eager_csv variants, whose data is one monolithic chunk.
	ModeEagerFull
	// ModeEagerIndexed prunes resident chunks with the stage-one
	// result; the eager_index / eager_dmd variants, whose indexing
	// investment clustered the data by chunk.
	ModeEagerIndexed
)

// ChunkLoader ingests one chunk of an actual-data table from the
// external repository.
type ChunkLoader interface {
	// LoadChunk extracts, transforms and returns the chunk's rows in
	// the table's schema.
	LoadChunk(tableName string, chunkID int64) (*storage.Relation, error)
	// AllChunkIDs enumerates every chunk known for the table; the
	// fallback when no metadata constrains an actual-data scan.
	AllChunkIDs(tableName string) []int64
}

// MetaIndex is a hash index over some columns of a metadata table,
// together with the flattened snapshot it indexes. The executor uses it
// as the index-scan access path when a scan's filter pins every indexed
// column with an equality constant.
type MetaIndex struct {
	Cols []string // unqualified column names, in index key order
	Ix   *index.HashIndex
	Data *storage.Batch
}

// Env is the execution environment of one database instance. One Env
// may serve any number of concurrent ExecuteContext calls: the chunk
// residency protocol (pin before scan, reference-counted release) and
// the flight group (one load per missing chunk, however many queries
// select it) make the lazy ingestion path race-free. An Env must not be
// copied after first use.
type Env struct {
	Catalog *table.Catalog
	Mode    Mode
	// Loader is required in ModeLazy.
	Loader ChunkLoader
	// Recyclers holds the chunk cache per actual-data table; nil (or
	// a missing entry) disables caching for that table, making every
	// lazily loaded chunk transient.
	Recyclers map[string]*cache.Recycler
	// DiskTiers holds the persistent second cache tier per actual-data
	// table; nil (or a missing entry) makes every cache miss go to the
	// archive loader. A present tier is consulted inside the chunk
	// flight, so promotes share the singleflight dedup and the
	// cache.fill fault point with archive loads.
	DiskTiers map[string]*cache.DiskTier
	// MetaIndexes holds the index-scan accelerators per metadata
	// table, built by the eager_index investment.
	MetaIndexes map[string][]MetaIndex
	// MaxParallel bounds per-query parallelism: concurrent chunk
	// ingestion AND the degree of parallelism of stage-2 execution
	// (morsel-parallel scans, probes and partial aggregation). 0 means
	// adaptive: GOMAXPROCS shared evenly across the queries in flight,
	// so a lone query uses every core while a 16-client burst degrades
	// to one core per query instead of thrashing 16×GOMAXPROCS
	// goroutines. 1 gives fully serial execution (the parallelization
	// ablation); any other value is taken literally per query.
	MaxParallel int
	// MaxQueryBytes caps the bytes a single query may materialize into
	// its own buffers (drained results, sort input, join build side,
	// streaming run-ahead); 0 means unlimited. Exceeding it aborts the
	// query with a *storage.QuotaError.
	MaxQueryBytes int64
	// Governor, when non-nil, is the process-wide memory pool every
	// per-query quota reserves from: the bound on the *sum* of
	// concurrent queries' materialized bytes, which per-query ceilings
	// alone cannot provide. A query that cannot reserve within the
	// governor's wait fails with a *storage.GovernorError (backpressure,
	// not data loss — the server answers 429 retry-later).
	Governor *storage.Governor
	// Degraded is the environment's default degraded-mode setting:
	// when true, a query whose chunk ingestion fails with a Degradable
	// error proceeds over the available chunks and records a Warning
	// per skipped chunk, instead of failing outright. Per-query
	// override: WithDegraded.
	Degraded bool
	// Faults is the fault-injection schedule for the ingestion path
	// (points exec.flight and cache.fill); nil injects nothing unless
	// the process environment (SOMMELIER_FAULTS) arms a schedule via
	// the engine.
	Faults *fault.Injector

	// flights deduplicates concurrent ingestions of the same missing
	// chunk across every query executing in this environment, keyed by
	// (table, chunkID).
	flights flightGroup
	// inflight counts queries currently executing, for the adaptive
	// degree-of-parallelism split.
	inflight atomic.Int32
}

// dop resolves the effective per-query degree of parallelism given the
// current in-flight query count.
func (env *Env) dop() int {
	if env.MaxParallel == 1 {
		return 1
	}
	limit := env.MaxParallel
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
		inflight := int(env.inflight.Load())
		if inflight > 1 {
			limit /= inflight
		}
	}
	if limit < 1 {
		return 1
	}
	return limit
}

// Stats reports what one query execution did.
type Stats struct {
	Stage1 time.Duration // metadata branch evaluation
	Load   time.Duration // chunk ingestion (lazy only)
	Stage2 time.Duration // remainder evaluation
	// ChunksSelected is the number of chunks stage one identified;
	// ChunksLoaded of those were ingested, CacheHits were resident.
	ChunksSelected, ChunksLoaded, CacheHits int
	// ChunksPromoted counts the ChunksLoaded subset served by decoding
	// a disk-tier block instead of fetching from the archive.
	ChunksPromoted int
	RowsLoaded     int64
	// SampleFraction is 1 for exact answers; under approximative
	// answering it is the fraction of selected chunks actually
	// evaluated (COUNT/SUM-style aggregates scale by its inverse).
	SampleFraction float64
	// IndexScans counts metadata accesses served through the
	// index-scan access path instead of a full scan.
	IndexScans int
	// ChunksSkipped counts selected chunks a degraded-mode query
	// proceeded without (one Result.Warnings entry each).
	ChunksSkipped int
}

// Total is the end-to-end execution time.
func (s Stats) Total() time.Duration { return s.Stage1 + s.Load + s.Stage2 }

// Result is a completed query.
type Result struct {
	Names []string
	Kinds []storage.Kind
	Rel   *storage.Relation
	Stats Stats
	// Warnings is non-empty only for degraded results: one entry per
	// chunk the query proceeded without. Aggregates and row sets are
	// correct over the surviving chunk set.
	Warnings []Warning
}

// Warning records one chunk a degraded-mode query skipped.
type Warning struct {
	Table  string `json:"table"`
	Chunk  int64  `json:"chunk"`
	Rows   int64  `json:"rows,omitempty"`  // rows lost, when known (0 = unknown)
	Bytes  int64  `json:"bytes,omitempty"` // bytes lost, when known
	Reason string `json:"reason"`
}

// degradedKey carries the per-query degraded-mode override.
type degradedKey struct{}

// WithDegraded overrides the environment's degraded-mode default for
// queries run under the returned context: true lets chunk-ingestion
// failures degrade to partial results with warnings, false restores
// strict fail-fast behavior.
func WithDegraded(ctx context.Context, degraded bool) context.Context {
	return context.WithValue(ctx, degradedKey{}, degraded)
}

// degradedFrom reads the per-query override.
func degradedFrom(ctx context.Context) (bool, bool) {
	v, ok := ctx.Value(degradedKey{}).(bool)
	return v, ok
}

// degradable reports whether an error self-identifies as an
// availability (not correctness) failure: registrar.ChunkError,
// registrar.CircuitOpenError and fault.Error all do, via the
// Degradable marker method. The interface is structural so exec does
// not import registrar.
func degradable(err error) bool {
	var d interface{ Degradable() bool }
	return errors.As(err, &d) && d.Degradable()
}

// Rows is shorthand for the result cardinality.
func (r *Result) Rows() int { return r.Rel.Rows() }

// Release recycles the result's pooled batch memory back into the
// storage pools. Call it when the rows are no longer referenced (after
// rendering, copying out, or comparing); the hot-query steady state
// then reuses the same memory every execution. Releasing is optional —
// an unreleased result is simply garbage collected — and a no-op on
// results whose batches are shared (unpooled) storage.
func (r *Result) Release() {
	if r != nil && r.Rel != nil {
		r.Rel.Release()
	}
}

// Trace records, per logical plan node, the number of rows its
// physical realization emitted in each stage: the substance of
// EXPLAIN ANALYZE. Qf nodes execute in stage one and reappear as a
// result-scan in stage two.
type Trace struct {
	rows map[plan.Node]*[2]int64
}

// Rows reports the rows node emitted in the given stage (1 or 2).
func (t *Trace) Rows(n plan.Node, stage int) int64 {
	if t == nil || t.rows == nil {
		return 0
	}
	if c, ok := t.rows[n]; ok {
		return c[stage-1]
	}
	return 0
}

func (t *Trace) counter(n plan.Node, inStage1 bool) *int64 {
	if t.rows == nil {
		t.rows = make(map[plan.Node]*[2]int64)
	}
	c, ok := t.rows[n]
	if !ok {
		c = &[2]int64{}
		t.rows[n] = c
	}
	if inStage1 {
		return &c[0]
	}
	return &c[1]
}

// Execute runs a compiled plan in the environment.
func Execute(env *Env, p *plan.Plan) (*Result, error) {
	return ExecuteContext(context.Background(), env, p)
}

// ExecuteTraced runs a compiled plan and additionally returns the
// per-operator row counts.
func ExecuteTraced(ctx context.Context, env *Env, p *plan.Plan) (*Result, *Trace, error) {
	return ExecuteTracedParams(ctx, env, p, nil)
}

// ExecuteTracedParams is ExecuteTraced with statement arguments.
func ExecuteTracedParams(ctx context.Context, env *Env, p *plan.Plan, params []*expr.Const) (*Result, *Trace, error) {
	ex := &executor{ctx: ctx, env: env, plan: p, params: params, trace: &Trace{}}
	res, err := ex.run()
	return res, ex.trace, err
}

// ExecuteContext runs a compiled plan, honouring cancellation: the
// executor checks the context between batches and before every chunk
// ingestion, so long-running lazy loads abort promptly.
func ExecuteContext(ctx context.Context, env *Env, p *plan.Plan) (*Result, error) {
	return ExecuteParams(ctx, env, p, nil)
}

// ExecuteParams runs a compiled plan with statement arguments bound to
// its parameter placeholders. The plan is not modified: parameters are
// substituted into per-execution expression clones, so one cached plan
// serves any number of concurrent executions with different arguments.
func ExecuteParams(ctx context.Context, env *Env, p *plan.Plan, params []*expr.Const) (*Result, error) {
	ex := &executor{ctx: ctx, env: env, plan: p, params: params}
	return ex.run()
}

// ExecuteStream runs a compiled plan, delivering the result rows
// incrementally to sink instead of materializing them: only pipeline
// breakers (sort, aggregation, the join build side) buffer rows, so
// the query's memory footprint is independent of its result size and
// the first batch reaches the sink as soon as it is produced. The
// returned Result carries the schema and stats with an empty relation.
//
// Ownership and lifetime follow physical.StreamSink: each pushed batch
// is the sink's to recycle, and the chunk data a batch may alias is
// pinned only until ExecuteStream returns — sinks that keep rows
// longer must copy or serialize them inside Push. A sink returning
// physical.ErrStopStream ends the query early without error; the
// cancellation propagates down to the morsel cursor, so LIMIT-style
// consumers stop the scan instead of discarding it.
func ExecuteStream(ctx context.Context, env *Env, p *plan.Plan, sink physical.StreamSink) (*Result, error) {
	return ExecuteStreamParams(ctx, env, p, nil, sink)
}

// ExecuteStreamParams is ExecuteStream with statement arguments.
func ExecuteStreamParams(ctx context.Context, env *Env, p *plan.Plan, params []*expr.Const, sink physical.StreamSink) (*Result, error) {
	ex := &executor{ctx: ctx, env: env, plan: p, params: params, sink: sink}
	return ex.run()
}

type executor struct {
	ctx    context.Context
	env    *Env
	plan   *plan.Plan
	params []*expr.Const
	trace  *Trace
	// sink, when set, switches the stage-two drain to streaming
	// delivery (ExecuteStream).
	sink physical.StreamSink
	// quota is the per-query memory ceiling (nil = unlimited unless
	// the Env carries a global Governor), instantiated from
	// Env.MaxQueryBytes at the start of run and Closed — returning any
	// outstanding global reservation — however the query ends.
	quota *storage.Quota
	// t0 stamps execution start, for the watchdog's DeadlineError.
	t0 time.Time

	qfRel   *storage.Relation
	qfNames []string
	qfKinds []storage.Kind

	// selected chunk IDs per actual-data table, from stage one.
	selected map[string][]int64
	// pinned holds every chunk this query holds a table pin on — cache
	// hits and fresh loads alike — released after stage two.
	pinned []pinnedChunk
	// loaded chunks were ingested by this query (it led their flight)
	// and are offered to the recycler only after stage two, so that an
	// admission cannot evict a chunk the in-flight query still needs.
	loaded []loadedChunk

	// par is the query's effective degree of parallelism, fixed at the
	// start of run from the environment's adaptive split.
	par int

	// stats and trace are confined to the query's own goroutine: the
	// ingestion workers communicate through the per-chunk results slice
	// joined before any counter is updated, so accumulation is
	// race-free even with many concurrent queries per Env.
	stats Stats

	// degraded is the query's effective degraded-mode setting (the Env
	// default, overridable per query via WithDegraded); warnings
	// accumulates one entry per chunk skipped under it.
	degraded bool
	warnings []Warning
}

type loadedChunk struct {
	tableName string
	id        int64
	bytes     int64
	cost      time.Duration
}

type pinnedChunk struct {
	tableName string
	id        int64
}

// run executes the compiled plan, normalizing any deadline-caused
// failure — wherever it surfaced: a morsel claim, a drain pull, a
// breaker build, chunk ingestion — to a typed *DeadlineError.
func (ex *executor) run() (*Result, error) {
	ex.t0 = time.Now()
	res, err := ex.exec()
	if err != nil {
		return nil, ex.deadlineErr(err)
	}
	return res, nil
}

func (ex *executor) exec() (*Result, error) {
	if ex.ctx == nil {
		ex.ctx = context.Background()
	}
	if n := ex.plan.NumParams; n > len(ex.params) {
		return nil, fmt.Errorf("exec: plan needs %d argument(s), got %d", n, len(ex.params))
	}
	ex.env.inflight.Add(1)
	defer ex.env.inflight.Add(-1)
	ex.par = ex.env.dop()
	ex.quota = storage.NewGovernedQuota(ex.ctx, ex.env.MaxQueryBytes, ex.env.Governor)
	// However the query ends — success, error, watchdog kill, or a
	// streaming client gone mid-result — its global memory reservation
	// goes back to the governor here.
	defer ex.quota.Close()
	ex.degraded = ex.env.Degraded
	if v, ok := degradedFrom(ex.ctx); ok {
		ex.degraded = v
	}
	if ex.trace != nil {
		// Traced execution stays serial so per-operator row counts are
		// exact without atomics on the hot path. The Counted wrappers
		// also make every input non-splittable, so aggregates whole-fold
		// here: EXPLAIN ANALYZE float results may differ from untraced
		// runs in final rounding.
		ex.par = 1
	}
	// However the query ends, offer its loads to the recyclers and
	// release every pin (the deferred release also covers error paths,
	// which must not leak pins).
	defer ex.release()
	ex.stats.SampleFraction = 1
	needStage1 := ex.plan.Qf != nil && ex.plan.TwoStage && ex.env.Mode != ModeEagerFull
	if needStage1 {
		t0 := time.Now()
		op, err := ex.build(ex.plan.Qf, true)
		if err != nil {
			return nil, err
		}
		// The stage-one result is drained unpooled, and any pooled
		// batches its operators emitted (join probe output) are disowned
		// rather than recycled: qfRel's batches may pass through the
		// stage-two result-scan into the final result, which outlives
		// the query.
		rel, err := ex.drain(op)
		if err != nil {
			return nil, fmt.Errorf("exec: stage one: %w", err)
		}
		rel.Disown()
		ex.qfRel = rel
		ex.qfNames = ex.plan.Qf.Names()
		ex.qfKinds = ex.plan.Qf.Kinds()
		ex.stats.Stage1 = time.Since(t0)
		if err := ex.selectChunks(); err != nil {
			return nil, err
		}
		ex.applySampling()
		if ex.env.Mode == ModeLazy {
			t1 := time.Now()
			if err := ex.ingestSelected(); err != nil {
				return nil, err
			}
			ex.stats.Load = time.Since(t1)
		}
	}
	if ex.plan.TwoStage && ex.env.Mode == ModeLazy && ex.selected == nil {
		// A query on actual data with no metadata branch at all: the
		// worst case the rule set tries to avoid — every chunk is
		// required (the paper's "no alternative to loading all AD").
		if ex.env.Loader == nil {
			return nil, fmt.Errorf("exec: lazy mode requires a chunk loader")
		}
		ex.selected = make(map[string][]int64)
		for _, tn := range ex.plan.ADTables {
			ex.selected[tn] = ex.env.Loader.AllChunkIDs(tn)
			ex.stats.ChunksSelected += len(ex.selected[tn])
		}
		t1 := time.Now()
		if err := ex.ingestSelected(); err != nil {
			return nil, err
		}
		ex.stats.Load = time.Since(t1)
	}
	t2 := time.Now()
	op, err := ex.build(ex.plan.Root, false)
	if err != nil {
		return nil, err
	}
	if ex.sink != nil {
		// Streaming delivery: batches flow to the sink as they are
		// produced; nothing is materialized here. The chunk pins drop
		// when this function returns (ex.release), which is why sinks
		// must consume pushed rows before Push returns.
		if ss, ok := ex.sink.(physical.SchemaSink); ok {
			ss.SetSchema(ex.plan.Root.Names(), ex.plan.Root.Kinds())
		}
		err := physical.StreamWith(op, ex.sink, physical.StreamOpts{
			DOP: ex.par, Check: ex.ctx.Err, Pooled: true, Quota: ex.quota,
			Morsel: ex.morselHook(),
		})
		if err != nil {
			return nil, fmt.Errorf("exec: stage two: %w", err)
		}
		ex.stats.Stage2 = time.Since(t2)
		return &Result{
			Names:    ex.plan.Root.Names(),
			Kinds:    ex.plan.Root.Kinds(),
			Rel:      storage.NewRelation(),
			Stats:    ex.stats,
			Warnings: ex.warnings,
		}, nil
	}
	rel, err := ex.drainPooled(op)
	if err != nil {
		return nil, fmt.Errorf("exec: stage two: %w", err)
	}
	ex.stats.Stage2 = time.Since(t2)
	return &Result{
		Names:    ex.plan.Root.Names(),
		Kinds:    ex.plan.Root.Kinds(),
		Rel:      rel,
		Stats:    ex.stats,
		Warnings: ex.warnings,
	}, nil
}

// drain pulls an operator to completion through the shared coalescing
// drain, checking for cancellation between batches. With a degree of
// parallelism above one the drain splits the operator's morsels across
// a worker pool (physical.ParallelDrain), each worker coalescing into
// its own output relation; the reassembled result holds the serial
// result's rows in the serial order.
func (ex *executor) drain(op physical.Operator) (*storage.Relation, error) {
	return physical.DrainWith(op, physical.DrainOpts{DOP: ex.par, Check: ex.ctx.Err, Quota: ex.quota, Morsel: ex.morselHook()})
}

// drainPooled is drain through the pooled coalescer: the stage-two
// (root) drain, whose relation the result owner Releases.
func (ex *executor) drainPooled(op physical.Operator) (*storage.Relation, error) {
	return physical.DrainWith(op, physical.DrainOpts{DOP: ex.par, Check: ex.ctx.Err, Pooled: true, Quota: ex.quota, Morsel: ex.morselHook()})
}

// selectChunks extracts, per actual-data table, the distinct chunk IDs
// from the stage-one result: result-scan(Qf) as a set of files.
func (ex *executor) selectChunks() error {
	ex.selected = make(map[string][]int64)
	flat := ex.qfRel.Flatten()
	for _, tn := range ex.plan.ADTables {
		t, ok := ex.env.Catalog.Table(tn)
		if !ok {
			return fmt.Errorf("exec: unknown actual-data table %q", tn)
		}
		col := -1
		suffix := "." + t.ChunkKey
		for i, n := range ex.qfNames {
			if strings.HasSuffix(n, suffix) {
				col = i
				break
			}
		}
		if col < 0 {
			// No metadata column constrains this table: worst case,
			// all chunks are required.
			if ex.env.Loader != nil {
				ex.selected[tn] = ex.env.Loader.AllChunkIDs(tn)
			} else {
				ex.selected[tn] = t.ChunkIDs()
			}
			ex.stats.ChunksSelected += len(ex.selected[tn])
			continue
		}
		seen := make(map[int64]bool)
		var ids []int64
		if flat.Len() > 0 {
			for _, v := range storage.Int64s(flat.Cols[col]) {
				if !seen[v] {
					seen[v] = true
					ids = append(ids, v)
				}
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ex.selected[tn] = ids
		ex.stats.ChunksSelected += len(ids)
	}
	return nil
}

// applySampling implements the paper's §VIII approximative query
// answering: when the plan asks for a p% sample, only ⌈p%⌉ of each
// table's selected chunks are evaluated. The subset is chosen by a
// deterministic per-chunk hash so repeated runs of the same query see
// the same sample (and so the sample is uncorrelated with chunk order).
func (ex *executor) applySampling() {
	pct := ex.plan.SamplePct
	if pct <= 0 || pct >= 100 || ex.selected == nil {
		return
	}
	var total, kept int
	for tn, ids := range ex.selected {
		if len(ids) == 0 {
			continue
		}
		n := (len(ids)*int(pct*100) + 9999) / 10000 // ceil(len × pct/100)
		if n < 1 {
			n = 1
		}
		sorted := append([]int64{}, ids...)
		sort.Slice(sorted, func(i, j int) bool {
			return chunkHash(sorted[i]) < chunkHash(sorted[j])
		})
		sample := sorted[:n]
		sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
		total += len(ids)
		kept += n
		ex.selected[tn] = sample
	}
	if total > 0 {
		ex.stats.SampleFraction = float64(kept) / float64(total)
		ex.stats.ChunksSelected = kept
	}
}

// chunkHash is a fixed 64-bit mix for deterministic sampling.
func chunkHash(id int64) uint64 {
	x := uint64(id) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

// ingestSelected makes every selected chunk resident and pinned for
// this query. Resident chunks are pinned on the spot; missing chunks
// are loaded in parallel (the paper's static parallelization: the
// degree of parallelism is the number of selected chunks, bounded by
// the query's effective DOP), with concurrent queries selecting the
// same chunk sharing one load through the environment's flight group.
func (ex *executor) ingestSelected() error {
	if ex.env.Loader == nil {
		return fmt.Errorf("exec: lazy mode requires a chunk loader")
	}
	for _, tn := range ex.plan.ADTables {
		t, _ := ex.env.Catalog.Table(tn)
		rec := ex.env.Recyclers[tn]
		var missing []int64
		for _, id := range ex.selected[tn] {
			// The pin is the authoritative residency test: a recycler
			// Contains answer can go stale before stage two, a pin
			// holds the chunk down. The recycler is still consulted for
			// its hit/miss accounting and LRU recency.
			resident := t.Pin(id)
			if rec != nil {
				rec.Contains(id)
			}
			if resident {
				ex.pinned = append(ex.pinned, pinnedChunk{tableName: tn, id: id})
				ex.stats.CacheHits++
			} else {
				missing = append(missing, id)
			}
		}
		if len(missing) == 0 {
			continue
		}
		// The ingestion fan-out is the query's effective DOP — the same
		// adaptive split as stage-2 execution, so a 16-client cold burst
		// does not spawn 16×GOMAXPROCS decode goroutines.
		par := ex.par
		if par < 1 {
			par = 1
		}
		if par > len(missing) {
			par = len(missing)
		}
		results := make([]chunkResult, len(missing))
		var wg sync.WaitGroup
		sem := make(chan struct{}, par)
		for i, id := range missing {
			wg.Add(1)
			go func(i int, id int64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i] = ex.acquireChunk(t, tn, id)
			}(i, id)
		}
		wg.Wait()
		// Record every pin the workers took before failing the query,
		// so the deferred release sees them all. In degraded mode an
		// unavailable chunk (a Degradable error: exhausted retries,
		// quarantine, open breaker, injected fault) is skipped with a
		// warning instead of failing the query; non-degradable errors
		// and caller cancellation stay fatal either way.
		var firstErr error
		var skipped map[int64]bool
		for _, r := range results {
			if r.err != nil {
				if ex.degraded && ex.ctx.Err() == nil && degradable(r.err) {
					if skipped == nil {
						skipped = make(map[int64]bool)
					}
					skipped[r.id] = true
					ex.stats.ChunksSkipped++
					ex.warnings = append(ex.warnings, Warning{
						Table: tn, Chunk: r.id, Rows: r.rows, Bytes: r.bytes,
						Reason: r.err.Error(),
					})
					continue
				}
				if firstErr == nil {
					firstErr = fmt.Errorf("exec: chunk-access(%s, %d): %w", tn, r.id, r.err)
				}
				continue
			}
			ex.pinned = append(ex.pinned, pinnedChunk{tableName: tn, id: r.id})
			if r.loadedByMe {
				ex.stats.ChunksLoaded++
				if r.promoted {
					ex.stats.ChunksPromoted++
				}
				ex.stats.RowsLoaded += r.rows
				ex.loaded = append(ex.loaded, loadedChunk{
					tableName: tn, id: r.id, bytes: r.bytes, cost: r.cost,
				})
			} else {
				// Another query's flight delivered the chunk: count a
				// cache hit here so that, across concurrent queries,
				// ChunksLoaded/RowsLoaded sum to the true ingestion
				// volume — each chunk is loaded and counted exactly
				// once, by its flight leader.
				ex.stats.CacheHits++
			}
		}
		if firstErr != nil {
			return firstErr
		}
		if len(skipped) > 0 {
			// Stage two must scan only the surviving chunks: drop the
			// skipped IDs from the selection (adScanRels walks it).
			kept := make([]int64, 0, len(ex.selected[tn])-len(skipped))
			for _, id := range ex.selected[tn] {
				if !skipped[id] {
					kept = append(kept, id)
				}
			}
			ex.selected[tn] = kept
		}
	}
	return nil
}

// chunkResult is the outcome of acquireChunk for one missing chunk. On
// success the chunk is resident and pinned for this query; loadedByMe
// marks that this query led the flight that ingested it.
type chunkResult struct {
	id         int64
	loadedByMe bool
	promoted   bool
	rows       int64
	bytes      int64
	cost       time.Duration
	err        error
}

// acquireChunk makes one chunk resident and pinned, deduplicating the
// load with concurrent queries. The flight leader pins inside the
// flight (atomically with the append, before any other query can
// admit-and-evict it); waiters re-try the pin when they wake, falling
// back to a fresh flight in the rare case the leader's query already
// released a transient (refused-by-the-recycler) chunk.
func (ex *executor) acquireChunk(t *table.Table, tn string, id int64) chunkResult {
	for {
		if err := ex.ctx.Err(); err != nil {
			return chunkResult{id: id, err: err}
		}
		if t.Pin(id) {
			return chunkResult{id: id}
		}
		res, leader, err := ex.env.flights.do(ex.ctx, flightKey{table: tn, id: id}, func() (flightResult, error) {
			// The chunk may have become resident between our failed
			// pin and this flight opening (another query's flight just
			// closed): re-check under the flight so we never re-load —
			// and never AppendChunk-replace — a live chunk.
			if t.Pin(id) {
				return flightResult{hit: true}, nil
			}
			// exec.flight fault point: covers the whole ingestion of
			// one chunk. An injected error fails this flight only —
			// flight errors are never cached, so a later query retries.
			if act := ex.env.Faults.Check(fault.PointFlight); act.Err != nil || act.Delay > 0 {
				if err := act.Wait(ex.ctx); err != nil {
					return flightResult{}, err
				}
				if act.Err != nil {
					return flightResult{}, act.Err
				}
			}
			t0 := time.Now()
			// Disk tier first: a spilled block decodes straight into
			// pooled batches, far cheaper than re-fetching and
			// re-decoding raw miniSEED from the archive. A miss (or a
			// corrupt block, dropped by the tier) falls through to the
			// archive loader.
			var rel *storage.Relation
			promoted := false
			if dt := ex.env.DiskTiers[tn]; dt != nil {
				if pr := dt.Promote(id); pr != nil {
					rel, promoted = pr, true
				}
			}
			if rel == nil {
				var err error
				rel, err = ex.env.Loader.LoadChunk(tn, id)
				if err != nil {
					return flightResult{}, err
				}
			}
			// cache.fill fault point: the chunk arrived and decoded —
			// from either tier — but fails to become resident. An
			// archive-loaded relation is unpooled (loader-owned)
			// storage, so dropping it leaks nothing; a promoted one is
			// pooled and must go back to the pools on every error
			// branch.
			if act := ex.env.Faults.Check(fault.PointCacheFill); act.Err != nil || act.Delay > 0 {
				if err := act.Wait(ex.ctx); err != nil {
					if promoted {
						rel.Release()
					}
					return flightResult{}, err
				}
				if act.Err != nil {
					rows, bytes := int64(rel.Rows()), rel.MemSize()
					if promoted {
						rel.Release()
					}
					return flightResult{rows: rows, bytes: bytes}, act.Err
				}
			}
			if promoted {
				// The relation becomes long-lived table data whose
				// lifetime the pool cannot track: dissolve ownership
				// before installing it.
				rel.Disown()
			}
			if err := t.AppendChunk(id, rel); err != nil {
				return flightResult{}, err
			}
			if !t.Pin(id) {
				return flightResult{}, fmt.Errorf("exec: chunk %d of %s vanished after load", id, tn)
			}
			return flightResult{rows: int64(rel.Rows()), bytes: rel.MemSize(), cost: time.Since(t0), promoted: promoted}, nil
		})
		if err != nil {
			return chunkResult{id: id, err: err, rows: res.rows, bytes: res.bytes}
		}
		if leader {
			if res.hit {
				return chunkResult{id: id}
			}
			return chunkResult{id: id, loadedByMe: true, promoted: res.promoted, rows: res.rows, bytes: res.bytes, cost: res.cost}
		}
		// Waiter: loop back to take our own pin on the now-resident
		// chunk (or reload if it vanished in the meantime).
	}
}

// release offers the chunks this query ingested to the recyclers and
// drops every pin. A chunk the recycler refuses (transient load) is
// dropped through the table's reference-counted DropChunk: if another
// in-flight query still pins it, the data survives until that query's
// own release. Admission may evict other chunks via the recycler's
// callback — those drops are reference counted the same way.
func (ex *executor) release() {
	for _, lc := range ex.loaded {
		t, _ := ex.env.Catalog.Table(lc.tableName)
		rec := ex.env.Recyclers[lc.tableName]
		if rec == nil || !rec.Admit(lc.id, lc.bytes, lc.cost) {
			t.DropChunk(lc.id)
		}
	}
	ex.loaded = nil
	for _, pc := range ex.pinned {
		t, _ := ex.env.Catalog.Table(pc.tableName)
		t.Unpin(pc.id)
	}
	ex.pinned = nil
}

// rexpr prepares a plan expression for this execution: an expression
// carrying parameter placeholders is substituted with the execution's
// argument values on a fresh clone, leaving the (possibly cached and
// shared) plan untouched. Parameter-free expressions pass through —
// the physical operator constructors clone before binding anyway.
func (ex *executor) rexpr(e expr.Expr) (expr.Expr, error) {
	if e == nil || len(ex.params) == 0 || !expr.HasParams(e) {
		return e, nil
	}
	return expr.SubstParams(e, ex.params)
}

// build constructs the physical operator tree for a plan subtree.
// inStage1 marks that we are compiling Qf itself; otherwise an
// encountered Qf node is replaced by a result-scan over the
// materialized stage-one result.
func (ex *executor) build(n plan.Node, inStage1 bool) (physical.Operator, error) {
	op, err := ex.buildInner(n, inStage1)
	if err != nil {
		return op, err
	}
	// Grant the query's degree of parallelism to operators that
	// materialize an input internally (join build, aggregation, sort).
	if ph, ok := op.(physical.ParallelHinter); ok {
		ph.SetParallel(ex.par)
	}
	// Their internal materializations charge the per-query ceiling.
	if qh, ok := op.(physical.QuotaHinter); ok {
		qh.SetQuota(ex.quota)
	}
	// And their internal drains — pipeline breakers that would
	// otherwise materialize to completion — learn the watchdog's
	// cancellation check.
	if ch, ok := op.(physical.CheckHinter); ok {
		ch.SetCheck(ex.ctx.Err)
	}
	if ex.trace == nil {
		return op, nil
	}
	return physical.NewCounted(op, ex.trace.counter(n, inStage1)), nil
}

func (ex *executor) buildInner(n plan.Node, inStage1 bool) (physical.Operator, error) {
	if !inStage1 && n == ex.plan.Qf && ex.qfRel != nil {
		return physical.NewRelScan(ex.qfRel, ex.qfNames, ex.qfKinds, nil)
	}
	switch n := n.(type) {
	case *plan.Scan:
		return ex.buildScan(n)
	case *plan.Fused:
		return ex.buildFused(n)
	case *plan.Join:
		l, err := ex.build(n.L, inStage1)
		if err != nil {
			return nil, err
		}
		r, err := ex.build(n.R, inStage1)
		if err != nil {
			return nil, err
		}
		if len(n.Preds) == 0 {
			return physical.NewCrossJoin(l, r), nil
		}
		var lk, rk []int
		for _, p := range n.Preds {
			li, ri := indexOf(l.Names(), p.Left), indexOf(r.Names(), p.Right)
			if li < 0 || ri < 0 {
				// The predicate may be written in the other
				// direction.
				li, ri = indexOf(l.Names(), p.Right), indexOf(r.Names(), p.Left)
			}
			if li < 0 || ri < 0 {
				return nil, fmt.Errorf("exec: join predicate %v unresolvable", p)
			}
			lk = append(lk, li)
			rk = append(rk, ri)
		}
		return physical.NewHashJoin(l, r, lk, rk)
	case *plan.Select:
		in, err := ex.build(n.In, inStage1)
		if err != nil {
			return nil, err
		}
		pred, err := ex.rexpr(n.Pred)
		if err != nil {
			return nil, err
		}
		return physical.NewFilter(in, pred)
	case *plan.Project:
		in, err := ex.build(n.In, inStage1)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(n.Cols))
		exprs := make([]expr.Expr, len(n.Cols))
		for i, c := range n.Cols {
			e, err := ex.rexpr(c.Expr)
			if err != nil {
				return nil, err
			}
			names[i], exprs[i] = c.Name, e
		}
		return physical.NewProject(in, names, exprs)
	case *plan.Aggregate:
		in, err := ex.build(n.In, inStage1)
		if err != nil {
			return nil, err
		}
		var groupCols []int
		for _, g := range n.GroupBy {
			gi := indexOf(in.Names(), g)
			if gi < 0 {
				return nil, fmt.Errorf("exec: group column %q unresolvable", g)
			}
			groupCols = append(groupCols, gi)
		}
		aggs := make([]physical.AggColumn, len(n.Aggs))
		for i, a := range n.Aggs {
			arg, err := ex.rexpr(a.Arg)
			if err != nil {
				return nil, err
			}
			aggs[i] = physical.AggColumn{Func: aggFuncID(a.Func), Arg: arg, Name: a.Name}
		}
		return physical.NewHashAggregate(in, groupCols, aggs)
	case *plan.Sort:
		in, err := ex.build(n.In, inStage1)
		if err != nil {
			return nil, err
		}
		keys := make([]physical.SortKey, len(n.Keys))
		for i, k := range n.Keys {
			ki := indexOf(in.Names(), k.Col)
			if ki < 0 {
				return nil, fmt.Errorf("exec: sort column %q unresolvable", k.Col)
			}
			keys[i] = physical.SortKey{Col: ki, Desc: k.Desc}
		}
		return physical.NewSort(in, keys)
	case *plan.TopK:
		in, err := ex.build(n.In, inStage1)
		if err != nil {
			return nil, err
		}
		keys := make([]physical.SortKey, len(n.Keys))
		for i, k := range n.Keys {
			ki := indexOf(in.Names(), k.Col)
			if ki < 0 {
				return nil, fmt.Errorf("exec: top-k column %q unresolvable", k.Col)
			}
			keys[i] = physical.SortKey{Col: ki, Desc: k.Desc}
		}
		return physical.NewTopK(in, keys, n.N)
	case *plan.Limit:
		in, err := ex.build(n.In, inStage1)
		if err != nil {
			return nil, err
		}
		return physical.NewLimit(in, n.N), nil
	default:
		return nil, fmt.Errorf("exec: unknown plan node %T", n)
	}
}

// buildScan realizes the access paths. Metadata tables use a plain
// scan — or the index-scan access path when the optimizer annotated the
// node with a recognized index key; actual-data tables are rewritten
// according to the mode and the stage-one chunk selection (rewrite rule
// (1) of the paper, with the scan predicate pushed into every branch).
// A pruned scan (n.Cols) reads only the referenced columns.
func (ex *executor) buildScan(n *plan.Scan) (physical.Operator, error) {
	t, ok := ex.env.Catalog.Table(n.Table)
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", n.Table)
	}
	names, kinds := n.Names(), n.Kinds()
	filter, err := ex.rexpr(n.Filter)
	if err != nil {
		return nil, err
	}
	if t.Class != table.ActualData {
		if op, err := ex.tryIndexScan(n, t, names, kinds); err != nil {
			return nil, err
		} else if op != nil {
			return op, nil
		}
		return physical.NewMultiRelScanCols([]*storage.Relation{t.Data()}, names, kinds, filter, n.Cols)
	}
	rels, err := ex.adScanRels(n.Table, t)
	if err != nil {
		return nil, err
	}
	if rels == nil {
		return physical.NewEmpty(names, kinds), nil
	}
	// The union of cache-scans and chunk-accesses over the selected
	// chunks, collapsed into one scan whose batch list doubles as the
	// morsel list of parallel execution; the selection is pushed down
	// (NewMultiRelScanCols clones and binds the predicate).
	return physical.NewMultiRelScanCols(rels, names, kinds, filter, n.Cols)
}

// adScanRels resolves the chunk relations an actual-data scan covers
// under the current mode; nil (without error) means zero chunks.
func (ex *executor) adScanRels(tableName string, t *table.Table) ([]*storage.Relation, error) {
	var ids []int64
	switch ex.env.Mode {
	case ModeEagerFull:
		ids = t.ChunkIDs()
	case ModeEagerIndexed:
		if ex.selected != nil {
			// Intersect selection with residency: the clustered
			// index prunes chunks, but eager data is fully resident.
			for _, id := range ex.selected[tableName] {
				if _, resident := t.Chunk(id); resident {
					ids = append(ids, id)
				}
			}
		} else {
			ids = t.ChunkIDs()
		}
	default: // ModeLazy: everything selected was ingested above.
		if ex.selected != nil {
			ids = ex.selected[tableName]
		} else {
			ids = t.ChunkIDs()
		}
	}
	if len(ids) == 0 {
		return nil, nil
	}
	rels := make([]*storage.Relation, 0, len(ids))
	for _, id := range ids {
		rel, resident := t.Chunk(id)
		if !resident {
			return nil, fmt.Errorf("exec: chunk %d of %s not resident at stage two", id, tableName)
		}
		rels = append(rels, rel)
	}
	return rels, nil
}

// buildFused realizes a fused Project → Filter → Scan chain as one
// physical pipeline over the scan's resolved relations, with the scan
// predicate and residual filter conjoined and every expression prepared
// for this execution (parameter substitution on clones).
func (ex *executor) buildFused(n *plan.Fused) (physical.Operator, error) {
	sc := n.Scan
	t, ok := ex.env.Catalog.Table(sc.Table)
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", sc.Table)
	}
	filter, err := ex.rexpr(sc.Filter)
	if err != nil {
		return nil, err
	}
	residual, err := ex.rexpr(n.Residual)
	if err != nil {
		return nil, err
	}
	pred := expr.Conjoin([]expr.Expr{filter, residual})
	outNames := n.Names()
	outExprs := make([]expr.Expr, len(n.Cols))
	for i, c := range n.Cols {
		e, err := ex.rexpr(c.Expr)
		if err != nil {
			return nil, err
		}
		outExprs[i] = e
	}
	var rels []*storage.Relation
	if t.Class != table.ActualData {
		rels = []*storage.Relation{t.Data()}
	} else {
		rels, err = ex.adScanRels(sc.Table, t)
		if err != nil {
			return nil, err
		}
		if rels == nil {
			return physical.NewEmpty(outNames, n.Kinds()), nil
		}
	}
	return physical.NewFusedPipeline(rels, sc.Names(), sc.Kinds(), pred, sc.Cols, outNames, outExprs)
}

// tryIndexScan serves a metadata scan through a hash index when the
// optimizer annotated the node with a recognized key (plan.IndexHint)
// and the environment has a matching index. The hint's key operands
// (constants or parameters) are materialized into an index.Key here;
// any mismatch — no such index, a parameter value of the wrong kind —
// falls back to the plain scan path by returning (nil, nil).
func (ex *executor) tryIndexScan(n *plan.Scan, t *table.Table, names []string, kinds []storage.Kind) (physical.Operator, error) {
	hint := n.Index
	if hint == nil || ex.env.MetaIndexes == nil {
		return nil, nil
	}
	var mi *MetaIndex
	for i := range ex.env.MetaIndexes[n.Table] {
		if slices.Equal(ex.env.MetaIndexes[n.Table][i].Cols, hint.Cols) {
			mi = &ex.env.MetaIndexes[n.Table][i]
			break
		}
	}
	if mi == nil {
		return nil, nil
	}
	key, ok, err := ex.materializeKey(hint)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	ex.stats.IndexScans++
	fullNames, fullKinds := t.Schema.QualifiedNames(t.Name), t.Schema.Kinds()
	var op physical.Operator = physical.NewIndexScan(mi.Ix, mi.Data, fullNames, fullKinds, key)
	if hint.Residual != nil {
		pred, err := ex.rexpr(hint.Residual)
		if err != nil {
			return nil, err
		}
		f, err := physical.NewFilter(op, pred)
		if err != nil {
			return nil, err
		}
		op = f
	}
	if n.Cols != nil {
		// Narrow the full-width index rows to the pruned scan schema.
		exprs := make([]expr.Expr, len(names))
		for i, nm := range names {
			exprs[i] = expr.Col(nm)
		}
		p, err := physical.NewProject(op, names, exprs)
		if err != nil {
			return nil, err
		}
		op = p
	}
	return op, nil
}

// materializeKey turns an IndexHint's key operands into an index.Key,
// substituting parameter values. ok=false (without error) means the
// run-time values do not fit the index (fall back to a filtered scan).
func (ex *executor) materializeKey(hint *plan.IndexHint) (index.Key, bool, error) {
	var key index.Key
	iSlot, sSlot := 0, 0
	for i, e := range hint.Key {
		k, isConst := e.(*expr.Const)
		if !isConst {
			p, isParam := e.(*expr.Param)
			if !isParam {
				return key, false, fmt.Errorf("exec: index key operand %T", e)
			}
			if p.Ord < 0 || p.Ord >= len(ex.params) {
				return key, false, fmt.Errorf("exec: index key parameter ?%d has no argument", p.Ord+1)
			}
			k = ex.params[p.Ord]
		}
		switch hint.Kinds[i] {
		case storage.KindInt64, storage.KindTime:
			if k.K != storage.KindInt64 && k.K != storage.KindTime {
				return key, false, nil
			}
			if err := setKeyInt(&key, &iSlot, k.I); err != nil {
				return key, false, nil
			}
		case storage.KindString:
			if k.K != storage.KindString {
				return key, false, nil
			}
			if err := setKeyStr(&key, &sSlot, k.S); err != nil {
				return key, false, nil
			}
		default:
			return key, false, nil
		}
	}
	return key, true, nil
}

func setKeyInt(k *index.Key, slot *int, v int64) error {
	switch *slot {
	case 0:
		k.I0 = v
	case 1:
		k.I1 = v
	case 2:
		k.I2 = v
	default:
		return fmt.Errorf("exec: index key too wide")
	}
	*slot++
	return nil
}

func setKeyStr(k *index.Key, slot *int, v string) error {
	switch *slot {
	case 0:
		k.S0 = v
	case 1:
		k.S1 = v
	default:
		return fmt.Errorf("exec: index key too wide")
	}
	*slot++
	return nil
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

func aggFuncID(f plan.AggFunc) physical.AggFuncID {
	switch f {
	case plan.AggCount:
		return physical.AggCount
	case plan.AggSum:
		return physical.AggSum
	case plan.AggAvg:
		return physical.AggAvg
	case plan.AggMin:
		return physical.AggMin
	case plan.AggMax:
		return physical.AggMax
	default:
		return physical.AggStddev
	}
}
