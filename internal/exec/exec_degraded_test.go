package exec

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"sommelier/internal/fault"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
)

// degradableChunkErr is the test stand-in for a registrar failure that
// degraded mode may proceed past: exhausted retries, quarantine, an
// open circuit breaker.
type degradableChunkErr struct{ id int64 }

func (e *degradableChunkErr) Error() string    { return fmt.Sprintf("test: chunk %d unreachable", e.id) }
func (e *degradableChunkErr) Degradable() bool { return true }

// flakyLoader wraps fakeLoader, failing chosen chunks with a
// Degradable error (fakeLoader.fail stays the non-degradable failure).
type flakyLoader struct {
	*fakeLoader
	unavailable map[int64]bool
}

func (l *flakyLoader) LoadChunk(tableName string, chunkID int64) (*storage.Relation, error) {
	if l.unavailable[chunkID] {
		return nil, &degradableChunkErr{id: chunkID}
	}
	return l.fakeLoader.LoadChunk(tableName, chunkID)
}

// countSink recycles every pushed batch, counting rows.
type countSink struct{ rows int }

func (s *countSink) Push(b *storage.Batch) error {
	s.rows += b.Len()
	storage.PutBatch(b)
	return nil
}

// sumFor is the expected sum_val over the given chunks: chunk c holds
// values c*100 .. c*100+9.
func sumFor(chunks ...int64) float64 {
	var s float64
	for _, c := range chunks {
		s += float64(1000*c + 45)
	}
	return s
}

// TestDegradedSkipsUnavailableChunk: with Env.Degraded set, a chunk
// whose load fails with a Degradable error is skipped with a warning
// and the query answers over the surviving chunks.
func TestDegradedSkipsUnavailableChunk(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cat, base := setupCatalog(t, 10)
	loader := &flakyLoader{fakeLoader: base, unavailable: map[int64]bool{4: true}}
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}
	env := lazyEnv(cat, loader, nil)
	env.Degraded = true
	res, err := Execute(env, p)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	defer res.Release()
	// ISK owns the even chunks {0,2,4,6,8}; 4 is unavailable.
	if res.Stats.ChunksSelected != 5 || res.Stats.ChunksSkipped != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if len(res.Warnings) != 1 {
		t.Fatalf("warnings = %+v, want exactly one", res.Warnings)
	}
	w := res.Warnings[0]
	if w.Table != seismic.TableD || w.Chunk != 4 {
		t.Fatalf("warning = %+v, want table D chunk 4", w)
	}
	if !strings.Contains(w.Reason, "unreachable") {
		t.Fatalf("warning reason %q does not carry the cause", w.Reason)
	}
	if got := storage.Float64s(res.Rel.Flatten().Cols[0])[0]; got != sumFor(0, 2, 6, 8) {
		t.Fatalf("sum = %v, want %v (chunks 0,2,6,8)", got, sumFor(0, 2, 6, 8))
	}
}

// TestStrictModeFailsOnUnavailableChunk: without degraded mode the
// same failure is fatal.
func TestStrictModeFailsOnUnavailableChunk(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cat, base := setupCatalog(t, 10)
	loader := &flakyLoader{fakeLoader: base, unavailable: map[int64]bool{4: true}}
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err == nil {
		res.Release()
		t.Fatal("strict query over an unavailable chunk succeeded")
	}
	if !strings.Contains(err.Error(), "chunk-access") {
		t.Fatalf("err = %v, want chunk-access wrapping", err)
	}
}

// TestDegradedPerRequestOverride: the context override wins over the
// env default, in both directions.
func TestDegradedPerRequestOverride(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cat, base := setupCatalog(t, 10)
	loader := &flakyLoader{fakeLoader: base, unavailable: map[int64]bool{4: true}}
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}

	// Strict env, degraded request: proceeds.
	env := lazyEnv(cat, loader, nil)
	res, err := ExecuteContext(WithDegraded(context.Background(), true), env, p)
	if err != nil {
		t.Fatalf("degraded request on strict env failed: %v", err)
	}
	if res.Stats.ChunksSkipped != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	res.Release()

	// Degraded env, strict request: fails.
	env2 := lazyEnv(cat, loader, nil)
	env2.Degraded = true
	res, err = ExecuteContext(WithDegraded(context.Background(), false), env2, p)
	if err == nil {
		res.Release()
		t.Fatal("strict request on degraded env succeeded over an unavailable chunk")
	}
}

// TestDegradedNonDegradableStillFatal: degraded mode only forgives
// errors that declare themselves Degradable; anything else (a decode
// bug, a corrupt catalog) still fails the query.
func TestDegradedNonDegradableStillFatal(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cat, loader := setupCatalog(t, 10)
	loader.fail[4] = true // plain error, not Degradable
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}
	env := lazyEnv(cat, loader, nil)
	env.Degraded = true
	res, err := Execute(env, p)
	if err == nil {
		res.Release()
		t.Fatal("degraded mode forgave a non-degradable error")
	}
}

// TestDegradedFaultInjectedFlight: a fault injector armed on the
// exec.flight point fails every chunk ingestion; in degraded mode the
// query still completes, reporting every selected chunk skipped.
func TestDegradedFaultInjectedFlight(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cat, loader := setupCatalog(t, 10)
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}
	env := lazyEnv(cat, loader, nil)
	env.Degraded = true
	env.Faults = fault.MustNew("exec.flight=error:1", 1)
	res, err := Execute(env, p)
	if err != nil {
		t.Fatalf("degraded query under total fault injection failed: %v", err)
	}
	defer res.Release()
	if res.Stats.ChunksSkipped != 5 || len(res.Warnings) != 5 {
		t.Fatalf("stats = %+v warnings = %d, want all 5 ISK chunks skipped", res.Stats, len(res.Warnings))
	}
	if loader.loadCount() != 0 {
		t.Fatalf("flight-point faults fired after the load: %d loads", loader.loadCount())
	}
	// Strict mode under the same schedule fails.
	env2 := lazyEnv(cat, loader, nil)
	env2.Faults = fault.MustNew("exec.flight=error:1", 1)
	if res, err := Execute(env2, p); err == nil {
		res.Release()
		t.Fatal("strict query under total fault injection succeeded")
	}
}

// TestDegradedCacheFillFaultCarriesVolume: a cache.fill fault fires
// after the chunk is decoded, so the warning reports how many rows and
// bytes the query proceeded without.
func TestDegradedCacheFillFaultCarriesVolume(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cat, loader := setupCatalog(t, 10)
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}
	env := lazyEnv(cat, loader, nil)
	env.Degraded = true
	env.Faults = fault.MustNew("cache.fill=error:1", 1)
	res, err := Execute(env, p)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	defer res.Release()
	if len(res.Warnings) != 5 {
		t.Fatalf("warnings = %d, want 5", len(res.Warnings))
	}
	for _, w := range res.Warnings {
		if w.Rows != 10 || w.Bytes <= 0 {
			t.Fatalf("warning %+v should carry the decoded chunk's volume", w)
		}
	}
}

// TestDegradedStreaming: warnings flow through the streaming path too.
func TestDegradedStreaming(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	cat, base := setupCatalog(t, 10)
	loader := &flakyLoader{fakeLoader: base, unavailable: map[int64]bool{2: true, 6: true}}
	p, err := compile(cat, t4Query("ISK"))
	if err != nil {
		t.Fatal(err)
	}
	env := lazyEnv(cat, loader, nil)
	env.Degraded = true
	sink := &countSink{}
	res, err := ExecuteStream(context.Background(), env, p, sink)
	if err != nil {
		t.Fatalf("degraded stream failed: %v", err)
	}
	defer res.Release()
	if res.Stats.ChunksSkipped != 2 || len(res.Warnings) != 2 {
		t.Fatalf("stats = %+v warnings = %d", res.Stats, len(res.Warnings))
	}
}
