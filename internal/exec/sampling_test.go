package exec

import (
	"testing"

	"sommelier/internal/plan"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
)

func sampledT4(station string, pct float64) *plan.Query {
	q := t4Query(station)
	q.SamplePct = pct
	return q
}

func TestSamplingReducesChunks(t *testing.T) {
	cat, loader := setupCatalog(t, 20) // 10 ISK chunks
	q := sampledT4("ISK", 40)
	p, err := compile(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.SamplePct != 40 {
		t.Fatalf("plan sample pct = %v", p.SamplePct)
	}
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(10 × 0.4) = 4 chunks.
	if res.Stats.ChunksSelected != 4 || res.Stats.ChunksLoaded != 4 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if res.Stats.SampleFraction != 0.4 {
		t.Fatalf("fraction = %v", res.Stats.SampleFraction)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	catA, loaderA := setupCatalog(t, 20)
	pA, _ := compile(catA, sampledT4("ISK", 30))
	resA, err := Execute(lazyEnv(catA, loaderA, nil), pA)
	if err != nil {
		t.Fatal(err)
	}
	catB, loaderB := setupCatalog(t, 20)
	pB, _ := compile(catB, sampledT4("ISK", 30))
	resB, err := Execute(lazyEnv(catB, loaderB, nil), pB)
	if err != nil {
		t.Fatal(err)
	}
	a := storage.Float64s(resA.Rel.Flatten().Cols[0])[0]
	b := storage.Float64s(resB.Rel.Flatten().Cols[0])[0]
	if a != b {
		t.Fatalf("sampling not deterministic: %v vs %v", a, b)
	}
}

func TestSamplingExactAnswerWithoutSample(t *testing.T) {
	cat, loader := setupCatalog(t, 10)
	p, _ := compile(cat, t4Query("ISK"))
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SampleFraction != 1 {
		t.Fatalf("exact query fraction = %v", res.Stats.SampleFraction)
	}
}

func TestSamplingAtLeastOneChunk(t *testing.T) {
	cat, loader := setupCatalog(t, 4) // 2 ISK chunks
	p, _ := compile(cat, sampledT4("ISK", 1))
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChunksSelected != 1 {
		t.Fatalf("selected = %d, want the 1-chunk floor", res.Stats.ChunksSelected)
	}
	if res.Rows() != 1 {
		t.Fatalf("rows = %d", res.Rows())
	}
}

func TestSamplingSkipsMetadataOnlyQueries(t *testing.T) {
	cat, loader := setupCatalog(t, 6)
	q := &plan.Query{
		Select:    []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:      seismic.TableF,
		SamplePct: 10,
	}
	p, err := compile(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(lazyEnv(cat, loader, nil), p)
	if err != nil {
		t.Fatal(err)
	}
	// Metadata queries are exact regardless of SAMPLE.
	if got := storage.Int64s(res.Rel.Flatten().Cols[0])[0]; got != 6 {
		t.Fatalf("count = %d", got)
	}
}

func TestSamplePctValidation(t *testing.T) {
	cat, _ := setupCatalog(t, 2)
	for _, pct := range []float64{-1, 101} {
		q := t4Query("ISK")
		q.SamplePct = pct
		if _, err := compile(cat, q); err == nil {
			t.Errorf("SamplePct %v accepted", pct)
		}
	}
	// 100 behaves as exact.
	q := t4Query("ISK")
	q.SamplePct = 100
	p, err := compile(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if p.SamplePct != 0 {
		t.Fatalf("SAMPLE 100 should compile to exact, got %v", p.SamplePct)
	}
}
