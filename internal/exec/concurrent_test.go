package exec

import (
	"sync"
	"testing"
	"time"

	"sommelier/internal/cache"
	"sommelier/internal/plan"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
)

// sumISK is the expected SUM(D.sample_value) of the ISK station over a
// setupCatalog(t, nFiles) repository: chunks are the even IDs, chunk c
// holds values 100c .. 100c+9.
func sumISK(nFiles int) float64 {
	want := 0.0
	for c := int64(0); c < int64(nFiles); c += 2 {
		for i := int64(0); i < 10; i++ {
			want += float64(c*100 + i)
		}
	}
	return want
}

// runConcurrent fires n goroutines each executing a fresh plan of the
// same query against env, collecting results and stats.
func runConcurrent(t *testing.T, env *Env, q *plan.Query, n int) []Stats {
	t.Helper()
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		stats []Stats
	)
	cat := env.Catalog
	errs := make(chan error, n)
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := compile(cat, q)
			if err != nil {
				errs <- err
				return
			}
			res, err := Execute(env, p)
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			stats = append(stats, res.Stats)
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return stats
}

// TestConcurrentQueriesLoadEachChunkOnce is the singleflight contract:
// however many queries select the same missing chunks at once, each
// chunk is loaded exactly once and ChunksLoaded/RowsLoaded sum to the
// true ingestion volume across all of them.
func TestConcurrentQueriesLoadEachChunkOnce(t *testing.T) {
	const nFiles, nQueries = 8, 6
	cat, loader := setupCatalog(t, nFiles)
	loader.delay = 2 * time.Millisecond // widen the overlap window
	d, _ := cat.Table(seismic.TableD)
	rec := cache.New(1<<30, cache.LRU, func(id int64) { d.DropChunk(id) })
	env := lazyEnv(cat, loader, rec)

	stats := runConcurrent(t, env, t4Query("ISK"), nQueries)

	nChunks := nFiles / 2 // ISK owns the even chunks
	if got := loader.loadCount(); got != nChunks {
		t.Fatalf("loader called %d times, want %d (one per chunk)", got, nChunks)
	}
	var loaded, rows, hits int
	for _, st := range stats {
		if st.ChunksSelected != nChunks {
			t.Fatalf("ChunksSelected = %d, want %d", st.ChunksSelected, nChunks)
		}
		loaded += st.ChunksLoaded
		rows += int(st.RowsLoaded)
		hits += st.CacheHits
	}
	if loaded != nChunks {
		t.Fatalf("sum ChunksLoaded = %d, want exactly %d across %d queries", loaded, nChunks, nQueries)
	}
	if rows != nChunks*10 {
		t.Fatalf("sum RowsLoaded = %d, want %d", rows, nChunks*10)
	}
	// Every selected chunk was either the one load or a (shared) hit.
	if loaded+hits != nQueries*nChunks {
		t.Fatalf("loaded+hits = %d, want %d", loaded+hits, nQueries*nChunks)
	}
}

// TestConcurrentTransientQueriesAgree runs uncached (recycler-less)
// concurrent queries: loads are shared in flight, every query gets the
// right answer, and reference-counted release leaves nothing resident.
func TestConcurrentTransientQueriesAgree(t *testing.T) {
	const nFiles, nQueries = 10, 8
	cat, loader := setupCatalog(t, nFiles)
	loader.delay = time.Millisecond
	env := lazyEnv(cat, loader, nil)
	want := sumISK(nFiles)

	var wg sync.WaitGroup
	errs := make(chan error, nQueries)
	for g := 0; g < nQueries; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := compile(cat, t4Query("ISK"))
			if err != nil {
				errs <- err
				return
			}
			res, err := Execute(env, p)
			if err != nil {
				errs <- err
				return
			}
			if got := storage.Float64s(res.Rel.Flatten().Cols[0])[0]; got != want {
				t.Errorf("sum = %v, want %v", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	d, _ := cat.Table(seismic.TableD)
	if d.Rows() != 0 {
		t.Fatalf("transient chunks left resident after all queries: %d rows", d.Rows())
	}
}

// TestConcurrentQueriesUnderEvictionChurn hammers a recycler that holds
// only two chunks with concurrent five-chunk queries: admissions evict
// chunks other queries are scanning, which the pin protocol must make
// harmless. Every query must still see the exact serial answer.
func TestConcurrentQueriesUnderEvictionChurn(t *testing.T) {
	const nFiles, nQueries, rounds = 10, 4, 5
	cat, loader := setupCatalog(t, nFiles)
	d, _ := cat.Table(seismic.TableD)
	var chunkSize int64
	{
		rel, _ := loader.LoadChunk(seismic.TableD, 0)
		chunkSize = rel.MemSize()
		loader.mu.Lock()
		loader.loads = nil
		loader.mu.Unlock()
	}
	rec := cache.New(chunkSize*2+1, cache.LRU, func(id int64) { d.DropChunk(id) })
	env := lazyEnv(cat, loader, rec)
	want := sumISK(nFiles)

	var wg sync.WaitGroup
	for g := 0; g < nQueries; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p, err := compile(cat, t4Query("ISK"))
				if err != nil {
					t.Error(err)
					return
				}
				res, err := Execute(env, p)
				if err != nil {
					t.Error(err)
					return
				}
				if got := storage.Float64s(res.Rel.Flatten().Cols[0])[0]; got != want {
					t.Errorf("sum = %v, want %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	// After the dust settles no chunk may stay pinned and the cache may
	// hold at most its two-chunk capacity.
	for id := int64(0); id < nFiles; id += 2 {
		if n := d.Pinned(id); n != 0 {
			t.Fatalf("chunk %d still pinned %d times", id, n)
		}
	}
	if st := rec.Stats(); st.BytesUsed > chunkSize*2+1 {
		t.Fatalf("recycler over capacity: %d bytes", st.BytesUsed)
	}
}
