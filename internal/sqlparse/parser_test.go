package sqlparse

import (
	"strings"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/seismic"
)

// The paper's Query 1 (Figure 2).
const query1SQL = `
SELECT AVG(D.sample_value)
FROM dataview
WHERE F.station = 'ISK' AND F.channel = 'BHE'
  AND D.sample_time > '2010-01-12T22:15:00.000'
  AND D.sample_time < '2010-01-12T22:15:02.000';`

// The paper's Query 2 (Figure 3).
const query2SQL = `
SELECT D.sample_time, D.sample_value
FROM windowdataview
WHERE F.station = 'FIAM'
  AND F.channel = 'HHZ'
  AND H.window_start_ts >= '2010-04-20T23:00:00.000'
  AND H.window_start_ts < '2010-04-21T02:00:00.000'
  AND H.window_max_val > 10000
  AND H.window_std_dev > 10`

func TestParseQuery1(t *testing.T) {
	q, err := Parse(query1SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0].Agg != plan.AggAvg {
		t.Fatalf("select = %+v", q.Select)
	}
	if q.From != "dataview" {
		t.Fatalf("from = %q", q.From)
	}
	if got := len(expr.Conjuncts(q.Where)); got != 4 {
		t.Fatalf("conjuncts = %d", got)
	}
	// The plan must compile against the real catalog.
	p, err := plan.Build(seismic.NewCatalog(), q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type() != 4 {
		t.Fatalf("query 1 type = T%d", p.Type())
	}
}

func TestParseQuery2(t *testing.T) {
	q, err := Parse(query2SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0].Agg != plan.AggNone {
		t.Fatalf("select = %+v", q.Select)
	}
	if got := len(expr.Conjuncts(q.Where)); got != 6 {
		t.Fatalf("conjuncts = %d", got)
	}
	p, err := plan.Build(seismic.NewCatalog(), q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type() != 5 {
		t.Fatalf("query 2 type = T%d", p.Type())
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(`SELECT station, COUNT(*) AS n, MAX(sample_count) FROM S GROUP BY station`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[1].Agg != plan.AggCount || q.Select[1].Expr != nil || q.Select[1].Alias != "n" {
		t.Fatalf("count item = %+v", q.Select[1])
	}
	if q.Select[2].Agg != plan.AggMax {
		t.Fatalf("max item = %+v", q.Select[2])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "station" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestParseOrderLimit(t *testing.T) {
	q, err := Parse(`SELECT uri FROM F ORDER BY station DESC, uri ASC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Fatalf("order = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	q, err := Parse(`SELECT x FROM T WHERE (a = 1 OR b = 2) AND NOT c = 3`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(*expr.And)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if _, ok := and.L.(*expr.Or); !ok {
		t.Fatalf("left = %T, want Or", and.L)
	}
	if _, ok := and.R.(*expr.Not); !ok {
		t.Fatalf("right = %T, want Not", and.R)
	}
}

func TestParseArithmetic(t *testing.T) {
	q, err := Parse(`SELECT a + b * 2 AS v FROM T WHERE (a + b) * 2 > 10`)
	if err != nil {
		t.Fatal(err)
	}
	// a + (b*2) by precedence.
	ar, ok := q.Select[0].Expr.(*expr.Arith)
	if !ok || ar.Op != expr.Add {
		t.Fatalf("select expr = %v", q.Select[0].Expr)
	}
	if _, ok := ar.R.(*expr.Arith); !ok {
		t.Fatal("precedence wrong")
	}
	cmp, ok := q.Where.(*expr.Cmp)
	if !ok || cmp.Op != expr.GT {
		t.Fatalf("where = %v", q.Where)
	}
	if q.Select[0].Alias != "v" {
		t.Fatal("alias lost")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q, err := Parse(`SELECT v FROM T WHERE a > -5 AND b < -2.5`)
	if err != nil {
		t.Fatal(err)
	}
	cj := expr.Conjuncts(q.Where)
	c0 := cj[0].(*expr.Cmp).R.(*expr.Const)
	if c0.I != -5 {
		t.Fatalf("int literal = %+v", c0)
	}
	c1 := cj[1].(*expr.Cmp).R.(*expr.Const)
	if c1.F != -2.5 {
		t.Fatalf("float literal = %+v", c1)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select uri from F where station = 'ISK' order by uri limit 1`); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM F",
		"SELECT x F",
		"SELECT x FROM",
		"SELECT x FROM F WHERE",
		"SELECT x FROM F WHERE a >",
		"SELECT x FROM F WHERE a",
		"SELECT x FROM F LIMIT x",
		"SELECT x FROM F GROUP BY",
		"SELECT x FROM F ORDER BY",
		"SELECT x FROM F WHERE a = 'unterminated",
		"SELECT x FROM F trailing",
		"SELECT x FROM F WHERE a = 1 ??",
		"SELECT COUNT( FROM F",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}

func TestParseAllCmpOps(t *testing.T) {
	ops := map[string]expr.CmpOp{
		"=": expr.EQ, "<>": expr.NE, "!=": expr.NE,
		"<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
	}
	for sym, want := range ops {
		q, err := Parse("SELECT x FROM T WHERE a " + sym + " 1")
		if err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		if got := q.Where.(*expr.Cmp).Op; got != want {
			t.Errorf("%s parsed as %v", sym, got)
		}
	}
}

func TestParseSemicolonAndWhitespace(t *testing.T) {
	q, err := Parse("  SELECT   x\n\tFROM\nT ;  ")
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "T" {
		t.Fatalf("from = %q", q.From)
	}
}

func TestCountStarVsCountColumn(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*), COUNT(station) FROM F`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Expr != nil {
		t.Fatal("COUNT(*) should have nil expr")
	}
	if q.Select[1].Expr == nil {
		t.Fatal("COUNT(col) lost its argument")
	}
}

func TestAggregateNameNotFunctionCall(t *testing.T) {
	// A column merely named like an aggregate must not be treated as
	// a call.
	q, err := Parse(`SELECT min FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Agg != plan.AggNone {
		t.Fatal("bare column 'min' parsed as aggregate")
	}
	if !strings.EqualFold(q.Select[0].Expr.(*expr.ColRef).Name, "min") {
		t.Fatal("wrong column")
	}
}

func TestParseSample(t *testing.T) {
	q, err := Parse(`SELECT AVG(sample_value) FROM dataview WHERE station = 'FIAM' LIMIT 10 SAMPLE 25`)
	if err != nil {
		t.Fatal(err)
	}
	if q.SamplePct != 25 || q.Limit != 10 {
		t.Fatalf("sample=%v limit=%d", q.SamplePct, q.Limit)
	}
	q2, err := Parse(`SELECT v FROM T SAMPLE 2.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.SamplePct != 2.5 {
		t.Fatalf("sample = %v", q2.SamplePct)
	}
	for _, bad := range []string{
		"SELECT v FROM T SAMPLE",
		"SELECT v FROM T SAMPLE x",
		"SELECT v FROM T SAMPLE 0",
		"SELECT v FROM T SAMPLE 101",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}
