// Package sqlparse parses the SQL subset the system accepts: single
// SELECT statements over one table or view, with WHERE conjunctions and
// disjunctions, aggregates, GROUP BY, ORDER BY and LIMIT — enough to
// express the paper's Query 1, Query 2 and the whole T1–T5 workload
// verbatim.
package sqlparse

import (
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // uppercased for idents' keyword checks? no: raw text
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9':
			sawDot := false
			for l.pos < len(l.src) {
				ch := l.src[l.pos]
				if ch == '.' && !sawDot {
					sawDot = true
					l.pos++
					continue
				}
				if ch < '0' || ch > '9' {
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, errAt(start, "unterminated string literal")
			}
			l.toks = append(l.toks, token{kind: tokString, text: l.src[start+1 : l.pos], pos: start})
			l.pos++
		default:
			// Multi-character operators first.
			for _, op := range []string{"<>", "<=", ">=", "!="} {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.toks = append(l.toks, token{kind: tokSymbol, text: op, pos: start})
					l.pos += 2
					goto next
				}
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', ';', '?':
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
				l.pos++
			default:
				return nil, errAt(start, "unexpected character %q", c)
			}
		next:
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
