package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/storage"
)

// Parse turns a SELECT statement into a logical query specification.
func Parse(sql string) (*plan.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sql: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return nil
	}
	return fmt.Errorf("sql: expected %q, got %q", sym, t.text)
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

var aggNames = map[string]plan.AggFunc{
	"COUNT":  plan.AggCount,
	"SUM":    plan.AggSum,
	"AVG":    plan.AggAvg,
	"MIN":    plan.AggMin,
	"MAX":    plan.AggMax,
	"STDDEV": plan.AggStddev,
}

// reserved words that terminate expressions / select lists.
var reserved = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "ORDER": true,
	"LIMIT": true, "AND": true, "OR": true, "NOT": true, "AS": true,
	"BY": true, "ASC": true, "DESC": true, "SELECT": true,
}

func (p *parser) parseSelect() (*plan.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &plan.Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected table name, got %q", t.text)
	}
	q.From = t.text
	if p.keyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected column in GROUP BY, got %q", t.text)
			}
			q.GroupBy = append(q.GroupBy, t.text)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected column in ORDER BY, got %q", t.text)
			}
			key := plan.OrderKey{Col: t.text}
			if p.keyword("DESC") {
				key.Desc = true
			} else {
				p.keyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	if p.keyword("SAMPLE") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected percentage after SAMPLE, got %q", t.text)
		}
		pct, err := strconv.ParseFloat(t.text, 64)
		if err != nil || pct <= 0 || pct > 100 {
			return nil, fmt.Errorf("sql: bad SAMPLE percentage %q", t.text)
		}
		q.SamplePct = pct
	}
	return q, nil
}

func (p *parser) parseSelectItem() (plan.SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToUpper(t.text)]; ok {
			// Lookahead for '(' to distinguish an aggregate call from
			// a column that happens to share the name.
			if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
				p.next()
				p.next() // '('
				item := plan.SelectItem{Agg: agg}
				if agg == plan.AggCount && p.symbol("*") {
					// COUNT(*)
				} else {
					e, err := p.parseAdd()
					if err != nil {
						return plan.SelectItem{}, err
					}
					item.Expr = e
				}
				if err := p.expectSymbol(")"); err != nil {
					return plan.SelectItem{}, err
				}
				item.Alias = p.parseAlias()
				return item, nil
			}
		}
	}
	e, err := p.parseAdd()
	if err != nil {
		return plan.SelectItem{}, err
	}
	return plan.SelectItem{Expr: e, Alias: p.parseAlias()}, nil
}

func (p *parser) parseAlias() string {
	if p.keyword("AS") {
		t := p.next()
		return t.text
	}
	return ""
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.NewOr(l, r)
	}
	return l, nil
}

// parseAnd := parseNot (AND parseNot)*
func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.NewAnd(l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.keyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "!=": expr.NE,
	"<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	// A parenthesized boolean expression: lookahead by attempting a
	// boolean parse when '(' starts a NOT/nested predicate. We detect
	// it structurally: '(' followed by NOT, or a comparison that
	// consumes an operator inside before ')'. The simple approach:
	// try arithmetic first; if the next token is a comparison
	// operator we finish the comparison, otherwise, if the expression
	// was parenthesized and boolean-shaped, it came from parseOr.
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		// Could be a boolean group or an arithmetic group. Scan ahead
		// to the matching ')' looking for AND/OR/NOT at depth 1.
		if p.parenIsBoolean() {
			p.next() // '('
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return expr.NewCmp(op, l, r), nil
		}
	}
	return nil, fmt.Errorf("sql: expected comparison operator, got %q", t.text)
}

// parenIsBoolean reports whether the parenthesized group starting at
// the current '(' contains a boolean connective at depth 1, meaning it
// must be parsed as a predicate rather than an arithmetic group.
func (p *parser) parenIsBoolean() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind == tokSymbol {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
				if depth == 0 {
					return false
				}
			}
			if op := t.text; depth >= 1 {
				if _, ok := cmpOps[op]; ok {
					return true
				}
			}
		}
		if t.kind == tokIdent && depth >= 1 {
			up := strings.ToUpper(t.text)
			if up == "AND" || up == "OR" || up == "NOT" {
				return true
			}
		}
		if t.kind == tokEOF {
			return false
		}
	}
	return false
}

// parseAdd := parseMul ((+|-) parseMul)*
func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			op := expr.Add
			if t.text == "-" {
				op = expr.Sub
			}
			l = expr.NewArith(op, l, r)
			continue
		}
		return l, nil
	}
}

// parseMul := parseAtom ((*|/) parseAtom)*
func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			op := expr.Mul
			if t.text == "/" {
				op = expr.Div
			}
			l = expr.NewArith(op, l, r)
			continue
		}
		return l, nil
	}
}

func (p *parser) parseAtom() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return expr.Float(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return expr.Int(n), nil
	case tokString:
		p.next()
		return expr.Str(t.text), nil
	case tokIdent:
		up := strings.ToUpper(t.text)
		if up == "TRUE" || up == "FALSE" {
			p.next()
			return expr.Bool(up == "TRUE"), nil
		}
		if reserved[up] {
			return nil, fmt.Errorf("sql: unexpected keyword %q", t.text)
		}
		p.next()
		return expr.Col(t.text), nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.next()
			e, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			if c, ok := e.(*expr.Const); ok {
				switch c.K {
				case storage.KindInt64:
					return expr.Int(-c.I), nil
				case storage.KindFloat64:
					return expr.Float(-c.F), nil
				}
			}
			return expr.NewArith(expr.Sub, expr.Int(0), e), nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q", t.text)
}
