package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/storage"
)

// Error is a parse error with the byte offset it occurred at, so
// clients (the CLI, sommelierd's 400 responses) can point into the
// statement text.
type Error struct {
	Pos int
	Msg string
}

// Error implements error; the "sql:" prefix classifies the failure as
// the client's statement for HTTP status mapping.
func (e *Error) Error() string { return fmt.Sprintf("sql: %s (at byte %d)", e.Msg, e.Pos) }

// errAt builds a positioned parse error.
func errAt(pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Statement is one parsed SQL statement: the query specification plus
// the statement-level attributes the engine's compile pipeline needs.
type Statement struct {
	Query *plan.Query
	// Explain marks an `EXPLAIN <query>` statement: compile only, and
	// return the optimized plan rendering instead of executing.
	Explain bool
	// Normalized is the canonical statement text — keywords uppercased,
	// whitespace collapsed, every parameterized literal replaced by `?`
	// (the EXPLAIN prefix is stripped, so EXPLAIN shares the compiled
	// plan of its query). It is the engine's plan-cache key.
	Normalized string
	// NumParams is the number of `?` parameters the query references.
	NumParams int
	// Args holds the literal values the parser auto-parameterized, in
	// ordinal order; nil when the statement used explicit `?` markers
	// (the caller supplies the values) or references no parameters.
	Args []*expr.Const
}

// Parse turns a SELECT statement into a logical query specification.
// Literals stay in place (no parameterization); use ParseStatement for
// the engine's compile pipeline.
func Parse(sql string) (*plan.Query, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	return q, nil
}

// ParseStatement parses a statement for compilation: it handles the
// EXPLAIN prefix and `?` parameter markers, produces the normalized
// statement text, and — when the statement has no explicit markers —
// auto-parameterizes the literals of WHERE comparisons so that queries
// differing only in constants share one normalized text (and therefore
// one compiled plan).
func ParseStatement(sql string) (*Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, constSpan: make(map[*expr.Const][2]int)}
	st := &Statement{}
	skipTok := -1
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "EXPLAIN") {
		st.Explain = true
		skipTok = p.pos
		p.next()
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if err := p.finish(); err != nil {
		return nil, err
	}
	st.Query = q
	paramSpans := make(map[int]int) // start token index → end (inclusive)
	if p.nParams > 0 {
		// Explicit markers: the caller owns the arguments; literals are
		// left alone so the marker ordinals match the statement text.
		st.NumParams = p.nParams
	} else {
		st.Args = p.autoParameterize(q, paramSpans)
		st.NumParams = len(st.Args)
	}
	st.Normalized = p.normalize(skipTok, paramSpans)
	return st, nil
}

type parser struct {
	toks []token
	pos  int
	// nParams counts explicit `?` markers, which double as ordinals.
	nParams int
	// constSpan records the token-index span of each literal constant
	// ([start, end] inclusive — two tokens for a folded unary minus),
	// for auto-parameterization and normalization. Nil outside
	// ParseStatement.
	constSpan map[*expr.Const][2]int
}

// finish verifies the statement is fully consumed.
func (p *parser) finish() error {
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if t := p.peek(); t.kind != tokEOF {
		return errAt(t.pos, "trailing input at %q", t.text)
	}
	return nil
}

// autoParameterize replaces every literal that is a direct operand of a
// WHERE comparison (the other operand not itself a literal) with a
// parameter placeholder, returning the extracted values in ordinal
// (source) order and recording the replaced token spans.
func (p *parser) autoParameterize(q *plan.Query, spans map[int]int) []*expr.Const {
	if q.Where == nil {
		return nil
	}
	type candidate struct {
		cmp  *expr.Cmp
		left bool
		k    *expr.Const
		span [2]int
	}
	var cands []candidate
	q.Where.Walk(func(e expr.Expr) {
		cmp, ok := e.(*expr.Cmp)
		if !ok {
			return
		}
		_, lConst := cmp.L.(*expr.Const)
		_, rConst := cmp.R.(*expr.Const)
		if lConst == rConst { // both or neither: constfold's business
			return
		}
		if k, ok := cmp.L.(*expr.Const); ok {
			if span, tracked := p.constSpan[k]; tracked {
				cands = append(cands, candidate{cmp: cmp, left: true, k: k, span: span})
			}
		}
		if k, ok := cmp.R.(*expr.Const); ok {
			if span, tracked := p.constSpan[k]; tracked {
				cands = append(cands, candidate{cmp: cmp, left: false, k: k, span: span})
			}
		}
	})
	// Ordinals follow source order.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j-1].span[0] > cands[j].span[0]; j-- {
			cands[j-1], cands[j] = cands[j], cands[j-1]
		}
	}
	args := make([]*expr.Const, 0, len(cands))
	for ord, c := range cands {
		if c.left {
			c.cmp.L = expr.NewParam(ord)
		} else {
			c.cmp.R = expr.NewParam(ord)
		}
		spans[c.span[0]] = c.span[1]
		args = append(args, c.k)
	}
	return args
}

// normalize renders the canonical statement text from the token stream:
// single spaces, parameterized literal spans as `?`, the trailing
// semicolon and the token at skipTok (the EXPLAIN keyword) dropped.
// Identifiers keep their case — name resolution is case-sensitive, and
// keyword-spelled words (MIN, SAMPLE, ...) can be column names, so
// case-folding here could collide two different statements onto one
// cache key. Two spellings of the same keywords merely cost an extra
// cache entry.
func (p *parser) normalize(skipTok int, paramSpans map[int]int) string {
	var sb strings.Builder
	for i := 0; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind == tokEOF {
			break
		}
		if i == skipTok {
			continue
		}
		if end, ok := paramSpans[i]; ok {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteByte('?')
			i = end
			continue
		}
		if t.kind == tokSymbol && t.text == ";" && p.toks[i+1].kind == tokEOF {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		if t.kind == tokString {
			sb.WriteByte('\'')
			sb.WriteString(t.text)
			sb.WriteByte('\'')
		} else {
			sb.WriteString(t.text)
		}
	}
	return sb.String()
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// keyword consumes the next token if it is the given keyword
// (case-insensitive) and reports whether it did.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		t := p.peek()
		return errAt(t.pos, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return nil
	}
	return errAt(t.pos, "expected %q, got %q", sym, t.text)
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.next()
		return true
	}
	return false
}

var aggNames = map[string]plan.AggFunc{
	"COUNT":  plan.AggCount,
	"SUM":    plan.AggSum,
	"AVG":    plan.AggAvg,
	"MIN":    plan.AggMin,
	"MAX":    plan.AggMax,
	"STDDEV": plan.AggStddev,
}

// reserved words that terminate expressions / select lists.
var reserved = map[string]bool{
	"FROM": true, "WHERE": true, "GROUP": true, "ORDER": true,
	"LIMIT": true, "AND": true, "OR": true, "NOT": true, "AS": true,
	"BY": true, "ASC": true, "DESC": true, "SELECT": true,
}

// trackConst records the token span a literal came from (only under
// ParseStatement).
func (p *parser) trackConst(k *expr.Const, start, end int) *expr.Const {
	if p.constSpan != nil {
		p.constSpan[k] = [2]int{start, end}
	}
	return k
}

func (p *parser) parseSelect() (*plan.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &plan.Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tokIdent {
		return nil, errAt(t.pos, "expected table name, got %q", t.text)
	}
	q.From = t.text
	if p.keyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, errAt(t.pos, "expected column in GROUP BY, got %q", t.text)
			}
			q.GroupBy = append(q.GroupBy, t.text)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, errAt(t.pos, "expected column in ORDER BY, got %q", t.text)
			}
			key := plan.OrderKey{Col: t.text}
			if p.keyword("DESC") {
				key.Desc = true
			} else {
				p.keyword("ASC")
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "expected number after LIMIT, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, errAt(t.pos, "bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	if p.keyword("SAMPLE") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "expected percentage after SAMPLE, got %q", t.text)
		}
		pct, err := strconv.ParseFloat(t.text, 64)
		if err != nil || pct <= 0 || pct > 100 {
			return nil, errAt(t.pos, "bad SAMPLE percentage %q", t.text)
		}
		q.SamplePct = pct
	}
	return q, nil
}

func (p *parser) parseSelectItem() (plan.SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToUpper(t.text)]; ok {
			// Lookahead for '(' to distinguish an aggregate call from
			// a column that happens to share the name.
			if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
				p.next()
				p.next() // '('
				item := plan.SelectItem{Agg: agg}
				if agg == plan.AggCount && p.symbol("*") {
					// COUNT(*)
				} else {
					e, err := p.parseAdd()
					if err != nil {
						return plan.SelectItem{}, err
					}
					item.Expr = e
				}
				if err := p.expectSymbol(")"); err != nil {
					return plan.SelectItem{}, err
				}
				item.Alias = p.parseAlias()
				return item, nil
			}
		}
	}
	e, err := p.parseAdd()
	if err != nil {
		return plan.SelectItem{}, err
	}
	return plan.SelectItem{Expr: e, Alias: p.parseAlias()}, nil
}

func (p *parser) parseAlias() string {
	if p.keyword("AS") {
		t := p.next()
		return t.text
	}
	return ""
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.NewOr(l, r)
	}
	return l, nil
}

// parseAnd := parseNot (AND parseNot)*
func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.NewAnd(l, r)
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.keyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.EQ, "<>": expr.NE, "!=": expr.NE,
	"<": expr.LT, "<=": expr.LE, ">": expr.GT, ">=": expr.GE,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	// A parenthesized boolean expression: lookahead by attempting a
	// boolean parse when '(' starts a NOT/nested predicate. We detect
	// it structurally: '(' followed by NOT, or a comparison that
	// consumes an operator inside before ')'. The simple approach:
	// try arithmetic first; if the next token is a comparison
	// operator we finish the comparison, otherwise, if the expression
	// was parenthesized and boolean-shaped, it came from parseOr.
	if t := p.peek(); t.kind == tokSymbol && t.text == "(" {
		// Could be a boolean group or an arithmetic group. Scan ahead
		// to the matching ')' looking for AND/OR/NOT at depth 1.
		if p.parenIsBoolean() {
			p.next() // '('
			e, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return expr.NewCmp(op, l, r), nil
		}
	}
	return nil, errAt(t.pos, "expected comparison operator, got %q", t.text)
}

// parenIsBoolean reports whether the parenthesized group starting at
// the current '(' contains a boolean connective at depth 1, meaning it
// must be parsed as a predicate rather than an arithmetic group.
func (p *parser) parenIsBoolean() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		t := p.toks[i]
		if t.kind == tokSymbol {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
				if depth == 0 {
					return false
				}
			}
			if op := t.text; depth >= 1 {
				if _, ok := cmpOps[op]; ok {
					return true
				}
			}
		}
		if t.kind == tokIdent && depth >= 1 {
			up := strings.ToUpper(t.text)
			if up == "AND" || up == "OR" || up == "NOT" {
				return true
			}
		}
		if t.kind == tokEOF {
			return false
		}
	}
	return false
}

// parseAdd := parseMul ((+|-) parseMul)*
func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.next()
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			op := expr.Add
			if t.text == "-" {
				op = expr.Sub
			}
			l = expr.NewArith(op, l, r)
			continue
		}
		return l, nil
	}
}

// parseMul := parseAtom ((*|/) parseAtom)*
func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.next()
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			op := expr.Mul
			if t.text == "/" {
				op = expr.Div
			}
			l = expr.NewArith(op, l, r)
			continue
		}
		return l, nil
	}
}

func (p *parser) parseAtom() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		tokIdx := p.pos
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, errAt(t.pos, "bad number %q", t.text)
			}
			return p.trackConst(expr.Float(f), tokIdx, tokIdx), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, errAt(t.pos, "bad number %q", t.text)
		}
		return p.trackConst(expr.Int(n), tokIdx, tokIdx), nil
	case tokString:
		tokIdx := p.pos
		p.next()
		return p.trackConst(expr.Str(t.text), tokIdx, tokIdx), nil
	case tokIdent:
		up := strings.ToUpper(t.text)
		if up == "TRUE" || up == "FALSE" {
			p.next()
			return expr.Bool(up == "TRUE"), nil
		}
		if reserved[up] {
			return nil, errAt(t.pos, "unexpected keyword %q", t.text)
		}
		p.next()
		return expr.Col(t.text), nil
	case tokSymbol:
		if t.text == "?" {
			p.next()
			p.nParams++
			return expr.NewParam(p.nParams - 1), nil
		}
		if t.text == "(" {
			p.next()
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			minusIdx := p.pos
			p.next()
			e, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			if c, ok := e.(*expr.Const); ok {
				switch c.K {
				case storage.KindInt64:
					return p.trackConst(expr.Int(-c.I), minusIdx, p.pos-1), nil
				case storage.KindFloat64:
					return p.trackConst(expr.Float(-c.F), minusIdx, p.pos-1), nil
				}
			}
			return expr.NewArith(expr.Sub, expr.Int(0), e), nil
		}
	}
	return nil, errAt(t.pos, "unexpected token %q", t.text)
}
