package sqlparse

import (
	"errors"
	"strings"
	"testing"

	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

func TestParseErrorsCarryPosition(t *testing.T) {
	cases := []struct {
		sql    string
		substr string
	}{
		{"SELECT FROM F", "unexpected keyword"},
		{"SELECT x FRM F", "expected FROM"},
		{"SELECT x FROM F WHERE x 5", "expected comparison"},
		{"SELECT x FROM F WHERE x = 'unterminated", "unterminated string"},
		{"SELECT x FROM F LIMIT banana", "expected number"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.sql)
		if err == nil {
			t.Fatalf("%q accepted", tc.sql)
		}
		var perr *Error
		if !errors.As(err, &perr) {
			t.Fatalf("%q: error %T lacks a position: %v", tc.sql, err, err)
		}
		if perr.Pos < 0 || perr.Pos > len(tc.sql) {
			t.Fatalf("%q: position %d out of range", tc.sql, perr.Pos)
		}
		if !strings.Contains(err.Error(), tc.substr) || !strings.Contains(err.Error(), "at byte") {
			t.Fatalf("%q: message %q", tc.sql, err)
		}
	}
}

func TestExplicitParameterMarkers(t *testing.T) {
	st, err := ParseStatement(`SELECT station FROM F WHERE station = ? AND file_id > ?`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams != 2 {
		t.Fatalf("NumParams = %d", st.NumParams)
	}
	if st.Args != nil {
		t.Fatalf("explicit markers must not extract args: %v", st.Args)
	}
	if n := expr.NumParams(st.Query.Where); n != 2 {
		t.Fatalf("query references %d params", n)
	}
	if want := "SELECT station FROM F WHERE station = ? AND file_id > ?"; st.Normalized != want {
		t.Fatalf("normalized = %q", st.Normalized)
	}
}

func TestAutoParameterizationNormalizes(t *testing.T) {
	a, err := ParseStatement(`SELECT AVG(sample_value) FROM D WHERE sample_time >= '2010-01-01' AND sample_value > 5 LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseStatement(`SELECT AVG(sample_value) FROM D
		WHERE sample_time >= '2011-06-15' AND sample_value > 99 LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Normalized != b.Normalized {
		t.Fatalf("normalized texts differ:\n%q\n%q", a.Normalized, b.Normalized)
	}
	if !strings.Contains(a.Normalized, "?") {
		t.Fatalf("no parameters in %q", a.Normalized)
	}
	// LIMIT stays literal (part of the plan shape).
	if !strings.Contains(a.Normalized, "LIMIT 3") {
		t.Fatalf("LIMIT parameterized: %q", a.Normalized)
	}
	if len(a.Args) != 2 || len(b.Args) != 2 {
		t.Fatalf("args = %v / %v", a.Args, b.Args)
	}
	if a.Args[0].S != "2010-01-01" || a.Args[1].I != 5 {
		t.Fatalf("args a = %v %v", a.Args[0], a.Args[1])
	}
	if b.Args[0].S != "2011-06-15" || b.Args[1].I != 99 {
		t.Fatalf("args b = %v %v", b.Args[0], b.Args[1])
	}
}

func TestAutoParameterizationNegativeLiteral(t *testing.T) {
	st, err := ParseStatement(`SELECT station FROM F WHERE file_id > -5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Args) != 1 || st.Args[0].K != storage.KindInt64 || st.Args[0].I != -5 {
		t.Fatalf("args = %+v", st.Args)
	}
	if !strings.HasSuffix(st.Normalized, "file_id > ?") {
		t.Fatalf("normalized = %q", st.Normalized)
	}
}

// Constant-vs-constant comparisons stay literal: they are constant
// folding's input, not cache-key noise.
func TestAutoParameterizationSkipsConstConst(t *testing.T) {
	st, err := ParseStatement(`SELECT station FROM F WHERE 1 = 1 AND station = 'ISK'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Args) != 1 {
		t.Fatalf("args = %v", st.Args)
	}
	if !strings.Contains(st.Normalized, "1 = 1") {
		t.Fatalf("const-const parameterized: %q", st.Normalized)
	}
}

// Name resolution is case-sensitive, so two statements differing only
// in identifier case must not share one cache key — `min` and `MIN`
// may be different columns (keyword-spelled identifiers are legal).
func TestNormalizationKeepsIdentifierCase(t *testing.T) {
	a, err := ParseStatement(`SELECT min FROM t WHERE min > 5`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseStatement(`SELECT MIN FROM t WHERE MIN > 5`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Normalized == b.Normalized {
		t.Fatalf("case-distinct identifiers collide on %q", a.Normalized)
	}
}

func TestExplainPrefix(t *testing.T) {
	st, err := ParseStatement(`EXPLAIN SELECT station FROM F WHERE station = 'ISK'`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain {
		t.Fatal("EXPLAIN not recognized")
	}
	if strings.Contains(st.Normalized, "EXPLAIN") {
		t.Fatalf("EXPLAIN leaked into the cache key: %q", st.Normalized)
	}
	// The same query without EXPLAIN normalizes identically, sharing
	// the compiled plan.
	plain, err := ParseStatement(`SELECT station FROM F WHERE station = 'ISK'`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Normalized != plain.Normalized {
		t.Fatalf("EXPLAIN changes the cache key: %q vs %q", st.Normalized, plain.Normalized)
	}
}

func TestExplicitMarkersDisableAutoParameterization(t *testing.T) {
	st, err := ParseStatement(`SELECT station FROM F WHERE station = ? AND file_id > 7`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams != 1 || st.Args != nil {
		t.Fatalf("NumParams = %d, args = %v", st.NumParams, st.Args)
	}
	if !strings.Contains(st.Normalized, "file_id > 7") {
		t.Fatalf("literal parameterized alongside explicit marker: %q", st.Normalized)
	}
}
