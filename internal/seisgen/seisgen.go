// Package seisgen generates synthetic seismic waveform repositories in
// the chunked mseed format. It stands in for the paper's INGV Mini-SEED
// repository: one file per station, channel and day, each holding a
// handful of segments (gaps split segments) of autocorrelated sensor
// counts with occasional event bursts.
//
// Generation is fully deterministic in the seed, so experiments are
// reproducible and lazy/eager loaders can be compared on identical
// inputs.
package seisgen

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"sommelier/internal/mseed"
)

// StationConfig describes one sensor station.
type StationConfig struct {
	Network  string
	Name     string
	Location string
	Channels []string
}

// Config parameterizes repository generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Stations to generate; one file per station, channel and day.
	Stations []StationConfig
	// Start is the first day (UTC midnight is used).
	Start time.Time
	// Days is the time span of the repository.
	Days int
	// SampleRate in Hz.
	SampleRate float64
	// SamplesPerFile is the target number of samples per chunk,
	// spread evenly over the day and split into segments.
	SamplesPerFile int
	// MeanSegments is the average number of segments (gap-separated
	// runs) per file; at least 1.
	MeanSegments int
	// Quality is the data-quality flag written to headers.
	Quality string
	// EventRate is the per-segment probability of a seismic event
	// burst, which drives the high-amplitude / high-volatility
	// windows that T5 queries hunt for.
	EventRate float64
}

// DefaultStations returns four INGV-like stations, mirroring the
// paper's "3 years of data from 4 stations".
func DefaultStations() []StationConfig {
	return []StationConfig{
		{Network: "IV", Name: "FIAM", Location: "00", Channels: []string{"HHZ"}},
		{Network: "IV", Name: "ISK", Location: "00", Channels: []string{"BHE"}},
		{Network: "IV", Name: "AQU", Location: "00", Channels: []string{"HHZ"}},
		{Network: "IV", Name: "CERA", Location: "00", Channels: []string{"BHN"}},
	}
}

// DefaultConfig returns a laptop-scale configuration with the paper's
// shape: 4 stations, 1 channel each, 40 days at sf-1.
func DefaultConfig(days int) Config {
	return Config{
		Seed:           1,
		Stations:       DefaultStations(),
		Start:          time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:           days,
		SampleRate:     20,
		SamplesPerFile: 4000,
		MeanSegments:   12,
		Quality:        "D",
		EventRate:      0.08,
	}
}

// FileInfo records one generated chunk for the manifest.
type FileInfo struct {
	URI       string
	Header    mseed.FileHeader
	Segments  []mseed.SegmentHeader
	Samples   int
	SizeBytes int64
}

// Manifest summarizes a generated repository.
type Manifest struct {
	Dir   string
	Files []FileInfo
}

// TotalSamples sums the sample counts of all files.
func (m *Manifest) TotalSamples() int64 {
	var n int64
	for _, f := range m.Files {
		n += int64(f.Samples)
	}
	return n
}

// TotalSegments sums the segment counts of all files.
func (m *Manifest) TotalSegments() int {
	n := 0
	for _, f := range m.Files {
		n += len(f.Segments)
	}
	return n
}

// TotalBytes sums the on-disk sizes of all files.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, f := range m.Files {
		n += f.SizeBytes
	}
	return n
}

// Generate writes the repository under dir and returns its manifest.
func Generate(dir string, cfg Config) (*Manifest, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	man := &Manifest{Dir: dir}
	for _, st := range cfg.Stations {
		for _, ch := range st.Channels {
			subdir := filepath.Join(dir, st.Name, ch)
			if err := os.MkdirAll(subdir, 0o755); err != nil {
				return nil, err
			}
			for day := 0; day < cfg.Days; day++ {
				date := cfg.Start.AddDate(0, 0, day)
				f := Synthesize(cfg, st, ch, date)
				name := fmt.Sprintf("%s.%s.%s.%s.msl", st.Network, st.Name, ch, date.Format("2006.002"))
				path := filepath.Join(subdir, name)
				if err := mseed.WriteFile(path, f); err != nil {
					return nil, err
				}
				fi, err := os.Stat(path)
				if err != nil {
					return nil, err
				}
				hdrs := make([]mseed.SegmentHeader, len(f.Segments))
				for i, s := range f.Segments {
					hdrs[i] = s.Header
				}
				man.Files = append(man.Files, FileInfo{
					URI:       path,
					Header:    f.Header,
					Segments:  hdrs,
					Samples:   f.SampleCount(),
					SizeBytes: fi.Size(),
				})
			}
		}
	}
	return man, nil
}

func validate(cfg Config) error {
	if cfg.Days <= 0 {
		return fmt.Errorf("seisgen: Days must be positive, got %d", cfg.Days)
	}
	if len(cfg.Stations) == 0 {
		return fmt.Errorf("seisgen: no stations configured")
	}
	if cfg.SampleRate <= 0 {
		return fmt.Errorf("seisgen: SampleRate must be positive, got %v", cfg.SampleRate)
	}
	if cfg.SamplesPerFile <= 0 {
		return fmt.Errorf("seisgen: SamplesPerFile must be positive, got %d", cfg.SamplesPerFile)
	}
	return nil
}

// Synthesize deterministically generates the chunk for one station,
// channel and day. The same (cfg.Seed, station, channel, date) always
// yields the same file.
func Synthesize(cfg Config, st StationConfig, channel string, date time.Time) *mseed.File {
	rng := rand.New(rand.NewSource(fileSeed(cfg.Seed, st.Name, channel, date)))
	meanSegs := cfg.MeanSegments
	if meanSegs < 1 {
		meanSegs = 1
	}
	nseg := 1 + rng.Intn(2*meanSegs-1) // uniform with the requested mean
	f := &mseed.File{
		Header: mseed.FileHeader{
			Network:   st.Network,
			Station:   st.Name,
			Location:  st.Location,
			Channel:   channel,
			Quality:   cfg.Quality,
			Encoding:  mseed.EncodingDeltaVarint,
			ByteOrder: "LE",
		},
	}
	dayStart := time.Date(date.Year(), date.Month(), date.Day(), 0, 0, 0, 0, time.UTC).UnixNano()
	perSeg := cfg.SamplesPerFile / nseg
	if perSeg < 1 {
		perSeg = 1
	}
	// Segments cover the day with random gaps between them.
	dayNs := int64(24 * time.Hour)
	segSpanNs := int64(float64(perSeg) / cfg.SampleRate * float64(time.Second))
	slack := dayNs - int64(nseg)*segSpanNs
	if slack < 0 {
		slack = 0
	}
	cursor := dayStart
	state := synthState{rng: rng}
	for i := 0; i < nseg; i++ {
		gap := int64(0)
		if nseg > 1 {
			gap = int64(rng.Float64() * float64(slack) / float64(nseg))
		}
		cursor += gap
		count := perSeg
		if i == nseg-1 {
			count = cfg.SamplesPerFile - perSeg*(nseg-1)
		}
		samples := state.run(count, cfg.EventRate)
		f.Segments = append(f.Segments, mseed.Segment{
			Header: mseed.SegmentHeader{
				ID:          int32(i),
				StartTime:   cursor,
				SampleRate:  cfg.SampleRate,
				SampleCount: int32(count),
			},
			Samples: samples,
		})
		cursor += int64(float64(count) / cfg.SampleRate * float64(time.Second))
	}
	return f
}

// fileSeed derives a per-file seed from the global seed and identity.
func fileSeed(seed int64, station, channel string, date time.Time) int64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	for _, s := range []string{station, channel, date.Format("2006-002")} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 0x100000001b3
		}
	}
	return int64(h)
}

// synthState carries the waveform state across segments of a file so
// segment boundaries do not reset the signal.
type synthState struct {
	rng   *rand.Rand
	level float64
}

// run produces count samples of AR(1) background noise, with an event
// burst (decaying high-amplitude oscillation) injected with probability
// eventRate.
func (s *synthState) run(count int, eventRate float64) []int32 {
	out := make([]int32, count)
	eventAt := -1
	var eventAmp, eventFreq float64
	if s.rng.Float64() < eventRate && count > 8 {
		eventAt = s.rng.Intn(count / 2)
		eventAmp = 8000 + s.rng.Float64()*24000
		eventFreq = 0.05 + s.rng.Float64()*0.2
	}
	for i := 0; i < count; i++ {
		s.level = s.level*0.97 + s.rng.NormFloat64()*40
		v := s.level
		if eventAt >= 0 && i >= eventAt {
			dt := float64(i - eventAt)
			v += eventAmp * math.Exp(-dt/float64(count/4+1)) * math.Sin(dt*eventFreq*2*math.Pi)
		}
		if v > math.MaxInt32 {
			v = math.MaxInt32
		}
		if v < math.MinInt32 {
			v = math.MinInt32
		}
		out[i] = int32(v)
	}
	return out
}
