package seisgen

import (
	"reflect"
	"testing"
	"time"

	"sommelier/internal/mseed"
)

func tinyConfig() Config {
	cfg := DefaultConfig(3)
	cfg.SamplesPerFile = 200
	cfg.MeanSegments = 3
	return cfg
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{},
		{Days: 1},
		{Days: 1, Stations: DefaultStations()},
		{Days: 1, Stations: DefaultStations(), SampleRate: 20},
	}
	for i, cfg := range bad {
		if _, err := Generate(t.TempDir(), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := tinyConfig()
	st := cfg.Stations[0]
	date := time.Date(2010, 1, 2, 0, 0, 0, 0, time.UTC)
	a := Synthesize(cfg, st, "HHZ", date)
	b := Synthesize(cfg, st, "HHZ", date)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generation is not deterministic")
	}
	// A different seed must change the data.
	cfg2 := cfg
	cfg2.Seed = 999
	c := Synthesize(cfg2, st, "HHZ", date)
	if reflect.DeepEqual(a.Segments[0].Samples, c.Segments[0].Samples) {
		t.Fatal("different seeds produced identical samples")
	}
	// A different day must change the data.
	d := Synthesize(cfg, st, "HHZ", date.AddDate(0, 0, 1))
	if reflect.DeepEqual(a.Segments[0].Samples, d.Segments[0].Samples) {
		t.Fatal("different days produced identical samples")
	}
}

func TestSynthesizeShape(t *testing.T) {
	cfg := tinyConfig()
	st := cfg.Stations[0]
	f := Synthesize(cfg, st, "HHZ", cfg.Start)
	if f.Header.Station != st.Name || f.Header.Channel != "HHZ" {
		t.Fatalf("header = %+v", f.Header)
	}
	if f.SampleCount() != cfg.SamplesPerFile {
		t.Fatalf("samples = %d, want %d", f.SampleCount(), cfg.SamplesPerFile)
	}
	dayStart := cfg.Start.UnixNano()
	dayEnd := cfg.Start.Add(24 * time.Hour).UnixNano()
	var prevEnd int64
	for i, seg := range f.Segments {
		if seg.Header.StartTime < dayStart || seg.Header.EndTime() > dayEnd {
			t.Fatalf("segment %d outside its day", i)
		}
		if seg.Header.StartTime < prevEnd {
			t.Fatalf("segment %d overlaps predecessor", i)
		}
		prevEnd = seg.Header.EndTime()
		if int(seg.Header.SampleCount) != len(seg.Samples) {
			t.Fatalf("segment %d count mismatch", i)
		}
	}
}

func TestGenerateRepository(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig()
	man, err := Generate(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantFiles := 0
	for _, st := range cfg.Stations {
		wantFiles += len(st.Channels) * cfg.Days
	}
	if len(man.Files) != wantFiles {
		t.Fatalf("files = %d, want %d", len(man.Files), wantFiles)
	}
	if man.TotalSamples() != int64(wantFiles*cfg.SamplesPerFile) {
		t.Fatalf("samples = %d", man.TotalSamples())
	}
	if man.TotalSegments() < wantFiles {
		t.Fatalf("segments = %d", man.TotalSegments())
	}
	if man.TotalBytes() <= 0 {
		t.Fatal("no bytes on disk")
	}
	// Every manifest entry must be readable and agree with the
	// manifest's own metadata.
	for _, fi := range man.Files[:3] {
		hdr, segs, err := mseed.ReadMetadataFile(fi.URI)
		if err != nil {
			t.Fatal(err)
		}
		if hdr != fi.Header {
			t.Fatalf("manifest header mismatch for %s", fi.URI)
		}
		if len(segs) != len(fi.Segments) {
			t.Fatalf("manifest segment count mismatch for %s", fi.URI)
		}
		full, err := mseed.ReadChunkFile(fi.URI)
		if err != nil {
			t.Fatal(err)
		}
		if full.SampleCount() != fi.Samples {
			t.Fatalf("manifest sample count mismatch for %s", fi.URI)
		}
	}
}

func TestEventBurstsProduceHighAmplitude(t *testing.T) {
	// With EventRate 1 every segment carries a burst, so the maximum
	// amplitude must clearly exceed the noise floor.
	cfg := tinyConfig()
	cfg.EventRate = 1
	cfg.SamplesPerFile = 2000
	cfg.MeanSegments = 1
	f := Synthesize(cfg, cfg.Stations[0], "HHZ", cfg.Start)
	maxAbs := int32(0)
	for _, s := range f.Segments {
		for _, v := range s.Samples {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs < 4000 {
		t.Fatalf("max amplitude %d, expected an event burst", maxAbs)
	}
}
