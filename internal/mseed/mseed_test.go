package mseed

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleFile() *File {
	return &File{
		Header: FileHeader{
			Network: "IV", Station: "FIAM", Location: "00", Channel: "HHZ",
			Quality: "D", Encoding: EncodingDeltaVarint, ByteOrder: "LE",
		},
		Segments: []Segment{
			{
				Header: SegmentHeader{
					ID: 0, StartTime: time.Date(2010, 4, 20, 23, 0, 0, 0, time.UTC).UnixNano(),
					SampleRate: 20, SampleCount: 5,
				},
				Samples: []int32{100, 105, 95, 120, -30},
			},
			{
				Header: SegmentHeader{
					ID: 1, StartTime: time.Date(2010, 4, 21, 1, 0, 0, 0, time.UTC).UnixNano(),
					SampleRate: 20, SampleCount: 3,
				},
				Samples: []int32{0, -1, 2},
			},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != f.Header {
		t.Fatalf("header = %+v, want %+v", got.Header, f.Header)
	}
	if len(got.Segments) != 2 {
		t.Fatalf("segments = %d", len(got.Segments))
	}
	for i := range f.Segments {
		if !reflect.DeepEqual(got.Segments[i].Samples, f.Segments[i].Samples) {
			t.Fatalf("segment %d samples = %v", i, got.Segments[i].Samples)
		}
		if got.Segments[i].Header.StartTime != f.Segments[i].Header.StartTime {
			t.Fatalf("segment %d start time mismatch", i)
		}
		if got.Segments[i].Header.SampleRate != 20 {
			t.Fatalf("segment %d rate = %v", i, got.Segments[i].Header.SampleRate)
		}
	}
	if got.SampleCount() != 8 {
		t.Fatalf("sample count = %d", got.SampleCount())
	}
}

func TestMetadataOnlyRead(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	hdr, segs, err := ReadMetadata(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Station != "FIAM" || hdr.Channel != "HHZ" {
		t.Fatalf("hdr = %+v", hdr)
	}
	if len(segs) != 2 || segs[0].SampleCount != 5 || segs[1].SampleCount != 3 {
		t.Fatalf("segs = %+v", segs)
	}
	if segs[0].EndTime() <= segs[0].StartTime {
		t.Fatal("EndTime not after StartTime")
	}
	if segs[0].Period() != 50*time.Millisecond {
		t.Fatalf("period = %v", segs[0].Period())
	}
}

func TestRawEncoding(t *testing.T) {
	f := sampleFile()
	f.Header.Encoding = EncodingRaw
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Segments[0].Samples, f.Segments[0].Samples) {
		t.Fatal("raw round trip failed")
	}
}

func TestCompressionIsCompact(t *testing.T) {
	// A smooth series must compress far below 4 bytes/sample.
	n := 10000
	samples := make([]int32, n)
	v := int32(0)
	rng := rand.New(rand.NewSource(1))
	for i := range samples {
		v += int32(rng.Intn(21) - 10)
		samples[i] = v
	}
	enc, err := EncodeSamples(EncodingDeltaVarint, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > n*2 {
		t.Fatalf("smooth series encoded to %d bytes for %d samples", len(enc), n)
	}
	dec, err := DecodeSamples(EncodingDeltaVarint, enc, n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, samples) {
		t.Fatal("decode mismatch")
	}
}

func TestCorruptionDetection(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip a byte in the last payload: checksum must catch it.
	corrupted := append([]byte(nil), raw...)
	corrupted[len(corrupted)-1] ^= 0xFF
	if _, err := Read(bytes.NewReader(corrupted)); err == nil {
		t.Fatal("corrupt payload not detected")
	}
	// Truncated file.
	if _, err := Read(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated file not detected")
	}
	if _, _, err := ReadMetadata(bytes.NewReader(raw[:9])); err == nil {
		t.Fatal("truncated metadata not detected")
	}
	// Bad magic.
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic not detected")
	}
	// Bad version.
	badv := append([]byte(nil), raw...)
	badv[4] = 99
	if _, err := Read(bytes.NewReader(badv)); err == nil {
		t.Fatal("bad version not detected")
	}
}

func TestWriterValidation(t *testing.T) {
	f := sampleFile()
	f.Segments[0].Header.SampleCount = 99 // lies about the count
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("count mismatch not detected")
	}
	f = sampleFile()
	f.Segments[0].Header.SampleRate = 0
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("zero rate not detected")
	}
	f = sampleFile()
	f.Header.Encoding = Encoding(77)
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("unknown encoding not detected")
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.msl")
	f := sampleFile()
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChunkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != f.Header {
		t.Fatal("disk round trip header mismatch")
	}
	hdr, segs, err := ReadMetadataFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr != f.Header || len(segs) != 2 {
		t.Fatal("disk metadata mismatch")
	}
	if _, err := ReadChunkFile(filepath.Join(dir, "missing.msl")); !os.IsNotExist(err) {
		t.Fatalf("missing file error = %v", err)
	}
}

// Property: encode/decode round-trips arbitrary int32 series under both
// encodings.
func TestQuickCodecRoundTrip(t *testing.T) {
	for _, enc := range []Encoding{EncodingDeltaVarint, EncodingRaw} {
		enc := enc
		f := func(samples []int32) bool {
			payload, err := EncodeSamples(enc, samples)
			if err != nil {
				return false
			}
			got, err := DecodeSamples(enc, payload, len(samples))
			if err != nil {
				return false
			}
			return reflect.DeepEqual(got, samples) || (len(got) == 0 && len(samples) == 0)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("encoding %d: %v", enc, err)
		}
	}
}

// Property: whole-file write/read round-trips random files.
func TestQuickFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		f := &File{
			Header: FileHeader{
				Network: "N", Station: "STA", Location: "00", Channel: "CHN",
				Quality: "D", Encoding: EncodingDeltaVarint, ByteOrder: "LE",
			},
		}
		nseg := rng.Intn(5) + 1
		for s := 0; s < nseg; s++ {
			n := rng.Intn(200)
			samples := make([]int32, n)
			for i := range samples {
				samples[i] = int32(rng.Uint32())
			}
			f.Segments = append(f.Segments, Segment{
				Header: SegmentHeader{
					ID: int32(s), StartTime: rng.Int63(), SampleRate: 20, SampleCount: int32(n),
				},
				Samples: samples,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, f); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for s := range f.Segments {
			if !reflect.DeepEqual(got.Segments[s].Samples, f.Segments[s].Samples) {
				t.Fatalf("trial %d segment %d mismatch", trial, s)
			}
		}
	}
}
