// Package mseed implements the chunked waveform file format used as the
// repository substrate. It plays the role of Mini-SEED and libmseed in
// the paper: each file is one semantic chunk holding a small block of
// given metadata (control headers) followed by one or more segments of
// highly compressed time-series samples.
//
// The format preserves the properties the paper's experiments depend on:
//
//   - metadata lives in fixed-size headers that can be extracted without
//     touching the sample payload (orders of magnitude cheaper),
//   - sample data is delta + zigzag-varint compressed ("Steim-like"), so
//     a loaded database is much larger than the files,
//   - decoding cost is proportional to the data volume of the chunk.
package mseed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// Magic identifies a waveform chunk file.
const Magic = "MSEL"

// Version is the current format version.
const Version = 1

// Encoding identifies the sample payload encoding.
type Encoding uint8

// Supported encodings. EncodingDeltaVarint is the "Steim-like"
// compressed default; EncodingRaw stores int32 samples verbatim and
// exists to measure the value of compression.
const (
	EncodingDeltaVarint Encoding = 10
	EncodingRaw         Encoding = 0
)

// FileHeader is the file-level given metadata: the "control header" of
// the chunk. It matches the F table of the warehouse schema.
type FileHeader struct {
	Network   string // e.g. "IV"
	Station   string // e.g. "FIAM"
	Location  string // e.g. "00"
	Channel   string // e.g. "HHZ"
	Quality   string // e.g. "D" (data of undetermined quality)
	Encoding  Encoding
	ByteOrder string // "BE" or "LE"; informational, payload is LE
}

// SegmentHeader is the segment-level given metadata, matching the S
// table: a contiguous run of equally spaced samples.
type SegmentHeader struct {
	ID          int32 // unique within the file
	StartTime   int64 // ns since epoch of the first sample
	SampleRate  float64
	SampleCount int32
	// payloadLen is the byte length of the encoded sample block;
	// it lets metadata readers skip payloads without decoding.
	payloadLen int32
	// crc is the Castagnoli CRC of the encoded payload.
	crc uint32
}

// Period returns the sample spacing.
func (h SegmentHeader) Period() time.Duration {
	return time.Duration(float64(time.Second) / h.SampleRate)
}

// EndTime returns the timestamp just after the last sample.
func (h SegmentHeader) EndTime() int64 {
	return h.StartTime + int64(float64(h.SampleCount)*float64(time.Second)/h.SampleRate)
}

// Segment is a segment header plus its decoded samples (sensor counts).
type Segment struct {
	Header  SegmentHeader
	Samples []int32
}

// File is a fully decoded chunk.
type File struct {
	Header   FileHeader
	Segments []Segment
}

// SampleCount returns the total number of samples across segments.
func (f *File) SampleCount() int {
	n := 0
	for _, s := range f.Segments {
		n += len(s.Samples)
	}
	return n
}

const (
	maxStringLen = 255
)

func writeString(w *bufio.Writer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("mseed: string %q too long", s)
	}
	if err := w.WriteByte(byte(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func writeU32(w *bufio.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU64(w *bufio.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// EncodeSamples compresses samples with the given encoding.
func EncodeSamples(enc Encoding, samples []int32) ([]byte, error) {
	switch enc {
	case EncodingDeltaVarint:
		buf := make([]byte, 0, len(samples)*2)
		var prev int32
		var tmp [binary.MaxVarintLen64]byte
		for _, s := range samples {
			d := int64(s) - int64(prev)
			n := binary.PutUvarint(tmp[:], zigzag(d))
			buf = append(buf, tmp[:n]...)
			prev = s
		}
		return buf, nil
	case EncodingRaw:
		buf := make([]byte, len(samples)*4)
		for i, s := range samples {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(s))
		}
		return buf, nil
	default:
		return nil, fmt.Errorf("mseed: unknown encoding %d", enc)
	}
}

// DecodeSamples decompresses a sample payload.
func DecodeSamples(enc Encoding, payload []byte, count int) ([]int32, error) {
	out := make([]int32, count)
	if err := DecodeSamplesInto(enc, payload, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeSamplesInto decompresses a sample payload into out, which must
// hold exactly the segment header's sample count. It lets a chunk
// reader decode every segment into slices of one pre-sized arena
// instead of allocating per segment.
func DecodeSamplesInto(enc Encoding, payload []byte, out []int32) error {
	count := len(out)
	switch enc {
	case EncodingDeltaVarint:
		var prev int64
		pos := 0
		for i := 0; i < count; i++ {
			u, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return fmt.Errorf("mseed: truncated sample payload at sample %d", i)
			}
			pos += n
			prev += unzigzag(u)
			if prev > math.MaxInt32 || prev < math.MinInt32 {
				return fmt.Errorf("mseed: sample %d out of int32 range", i)
			}
			out[i] = int32(prev)
		}
		if pos != len(payload) {
			return fmt.Errorf("mseed: %d trailing bytes in sample payload", len(payload)-pos)
		}
		return nil
	case EncodingRaw:
		if len(payload) != count*4 {
			return fmt.Errorf("mseed: raw payload length %d, want %d", len(payload), count*4)
		}
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
		}
		return nil
	default:
		return fmt.Errorf("mseed: unknown encoding %d", enc)
	}
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

var crcTable = crc32.MakeTable(crc32.Castagnoli)
