package mseed

import (
	"bytes"
	"testing"
)

// TestReadBytesCorruptionSafety flips every byte of a valid chunk, one
// at a time, and requires ReadBytes to either fail with an error or
// succeed — never panic and never balloon allocations from corrupt
// header counts. Chunk loads run inside server query goroutines, so a
// decoding panic on one rotten file would take down the whole process.
func TestReadBytesCorruptionSafety(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, benchFile(500)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBytes(append([]byte(nil), data...)); err != nil {
		t.Fatalf("clean chunk must parse: %v", err)
	}
	for off := 0; off < len(data); off++ {
		c := append([]byte(nil), data...)
		c[off] ^= 0x80
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with byte %d corrupted: %v", off, r)
				}
			}()
			ReadBytes(c)
		}()
	}
}
