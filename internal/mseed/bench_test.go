package mseed

import (
	"bytes"
	"math/rand"
	"testing"
)

func benchFile(nSamples int) *File {
	rng := rand.New(rand.NewSource(7))
	samples := make([]int32, nSamples)
	v := int32(0)
	for i := range samples {
		v += int32(rng.Intn(81) - 40)
		samples[i] = v
	}
	return &File{
		Header: FileHeader{
			Network: "IV", Station: "FIAM", Location: "00", Channel: "HHZ",
			Quality: "D", Encoding: EncodingDeltaVarint, ByteOrder: "LE",
		},
		Segments: []Segment{{
			Header:  SegmentHeader{ID: 0, StartTime: 0, SampleRate: 20, SampleCount: int32(nSamples)},
			Samples: samples,
		}},
	}
}

// BenchmarkChunkDecode measures the chunk-access cost: full decode of a
// compressed waveform file.
func BenchmarkChunkDecode(b *testing.B) {
	var buf bytes.Buffer
	if err := Write(&buf, benchFile(8000)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMetadataExtract measures the Registrar's per-chunk cost:
// header-only extraction, which must be orders of magnitude cheaper
// than a full decode.
func BenchmarkMetadataExtract(b *testing.B) {
	var buf bytes.Buffer
	if err := Write(&buf, benchFile(8000)); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadMetadata(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDeltaVarint(b *testing.B) {
	f := benchFile(8000)
	b.SetBytes(int64(len(f.Segments[0].Samples)) * 4)
	for i := 0; i < b.N; i++ {
		if _, err := EncodeSamples(EncodingDeltaVarint, f.Segments[0].Samples); err != nil {
			b.Fatal(err)
		}
	}
}
