package mseed

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Write serializes a chunk file.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := bw.WriteByte(Version); err != nil {
		return err
	}
	h := f.Header
	for _, s := range []string{h.Network, h.Station, h.Location, h.Channel, h.Quality, h.ByteOrder} {
		if err := writeString(bw, s); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(byte(h.Encoding)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(f.Segments))); err != nil {
		return err
	}
	for i := range f.Segments {
		if err := writeSegment(bw, h.Encoding, &f.Segments[i]); err != nil {
			return fmt.Errorf("mseed: segment %d: %w", i, err)
		}
	}
	return bw.Flush()
}

func writeSegment(bw *bufio.Writer, enc Encoding, s *Segment) error {
	if int(s.Header.SampleCount) != len(s.Samples) {
		return fmt.Errorf("sample count %d, got %d samples", s.Header.SampleCount, len(s.Samples))
	}
	if s.Header.SampleRate <= 0 {
		return fmt.Errorf("non-positive sample rate %v", s.Header.SampleRate)
	}
	payload, err := EncodeSamples(enc, s.Samples)
	if err != nil {
		return err
	}
	if err := writeU32(bw, uint32(s.Header.ID)); err != nil {
		return err
	}
	if err := writeU64(bw, uint64(s.Header.StartTime)); err != nil {
		return err
	}
	// Sample rate is stored in micro-hertz to stay integral.
	if err := writeU64(bw, uint64(s.Header.SampleRate*1e6)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(s.Header.SampleCount)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(payload))); err != nil {
		return err
	}
	if err := writeU32(bw, checksum(payload)); err != nil {
		return err
	}
	_, err = bw.Write(payload)
	return err
}

func checksum(payload []byte) uint32 {
	return crc32.Checksum(payload, crcTable)
}

// WriteFile writes a chunk file to path, creating parent-less paths as
// regular files.
func WriteFile(path string, f *File) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(out, f); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
