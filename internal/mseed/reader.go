package mseed

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReadMetadata extracts the given metadata of a chunk — file header and
// segment headers — without decoding any sample payload. Payload blocks
// are skipped using the recorded lengths, so the cost is independent of
// the sample volume. This is the operation the Registrar runs over a
// whole repository.
func ReadMetadata(r io.Reader) (FileHeader, []SegmentHeader, error) {
	br := bufio.NewReader(r)
	hdr, nseg, err := readFileHeader(br)
	if err != nil {
		return FileHeader{}, nil, err
	}
	segs := make([]SegmentHeader, 0, nseg)
	for i := 0; i < nseg; i++ {
		sh, err := readSegmentHeader(br)
		if err != nil {
			return FileHeader{}, nil, fmt.Errorf("mseed: segment %d: %w", i, err)
		}
		if _, err := br.Discard(int(sh.payloadLen)); err != nil {
			return FileHeader{}, nil, fmt.Errorf("mseed: segment %d: truncated payload: %w", i, err)
		}
		segs = append(segs, sh)
	}
	return hdr, segs, nil
}

// Read fully decodes a chunk file: the chunk-access operation. Payload
// checksums are verified.
func Read(r io.Reader) (*File, error) {
	br := bufio.NewReader(r)
	hdr, nseg, err := readFileHeader(br)
	if err != nil {
		return nil, err
	}
	f := &File{Header: hdr, Segments: make([]Segment, 0, nseg)}
	for i := 0; i < nseg; i++ {
		sh, err := readSegmentHeader(br)
		if err != nil {
			return nil, fmt.Errorf("mseed: segment %d: %w", i, err)
		}
		payload := make([]byte, sh.payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("mseed: segment %d: truncated payload: %w", i, err)
		}
		if got := crc32.Checksum(payload, crcTable); got != sh.crc {
			return nil, fmt.Errorf("mseed: segment %d: checksum mismatch (corrupt chunk)", i)
		}
		samples, err := DecodeSamples(hdr.Encoding, payload, int(sh.SampleCount))
		if err != nil {
			return nil, fmt.Errorf("mseed: segment %d: %w", i, err)
		}
		f.Segments = append(f.Segments, Segment{Header: sh, Samples: samples})
	}
	return f, nil
}

func readFileHeader(br *bufio.Reader) (FileHeader, int, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return FileHeader{}, 0, fmt.Errorf("mseed: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return FileHeader{}, 0, fmt.Errorf("mseed: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return FileHeader{}, 0, err
	}
	if ver != Version {
		return FileHeader{}, 0, fmt.Errorf("mseed: unsupported version %d", ver)
	}
	var hdr FileHeader
	for _, dst := range []*string{&hdr.Network, &hdr.Station, &hdr.Location, &hdr.Channel, &hdr.Quality, &hdr.ByteOrder} {
		s, err := readString(br)
		if err != nil {
			return FileHeader{}, 0, fmt.Errorf("mseed: reading header strings: %w", err)
		}
		*dst = s
	}
	encB, err := br.ReadByte()
	if err != nil {
		return FileHeader{}, 0, err
	}
	hdr.Encoding = Encoding(encB)
	nseg, err := readU32(br)
	if err != nil {
		return FileHeader{}, 0, err
	}
	return hdr, int(nseg), nil
}

func readSegmentHeader(br *bufio.Reader) (SegmentHeader, error) {
	var sh SegmentHeader
	id, err := readU32(br)
	if err != nil {
		return sh, err
	}
	sh.ID = int32(id)
	st, err := readU64(br)
	if err != nil {
		return sh, err
	}
	sh.StartTime = int64(st)
	rate, err := readU64(br)
	if err != nil {
		return sh, err
	}
	sh.SampleRate = float64(rate) / 1e6
	cnt, err := readU32(br)
	if err != nil {
		return sh, err
	}
	sh.SampleCount = int32(cnt)
	plen, err := readU32(br)
	if err != nil {
		return sh, err
	}
	sh.payloadLen = int32(plen)
	crc, err := readU32(br)
	if err != nil {
		return sh, err
	}
	sh.crc = crc
	return sh, nil
}

// ReadMetadataFile extracts metadata from the chunk at path.
func ReadMetadataFile(path string) (FileHeader, []SegmentHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileHeader{}, nil, err
	}
	defer f.Close()
	return ReadMetadata(f)
}

// ReadChunkFile fully decodes the chunk at path.
func ReadChunkFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
