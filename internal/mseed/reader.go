package mseed

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ReadMetadata extracts the given metadata of a chunk — file header and
// segment headers — without decoding any sample payload. Payload blocks
// are skipped using the recorded lengths, so the cost is independent of
// the sample volume. This is the operation the Registrar runs over a
// whole repository.
func ReadMetadata(r io.Reader) (FileHeader, []SegmentHeader, error) {
	br := bufio.NewReader(r)
	hdr, nseg, err := readFileHeader(br)
	if err != nil {
		return FileHeader{}, nil, err
	}
	segs := make([]SegmentHeader, 0, min(nseg, 4096)) // capacity hint; corrupt counts must not pre-allocate
	for i := 0; i < nseg; i++ {
		sh, err := readSegmentHeader(br)
		if err != nil {
			return FileHeader{}, nil, fmt.Errorf("mseed: segment %d: %w", i, err)
		}
		if _, err := br.Discard(int(sh.payloadLen)); err != nil {
			return FileHeader{}, nil, fmt.Errorf("mseed: segment %d: truncated payload: %w", i, err)
		}
		segs = append(segs, sh)
	}
	return hdr, segs, nil
}

// Read fully decodes a chunk file: the chunk-access operation. Payload
// checksums are verified.
//
// The stream is buffered whole and decoded in two passes: the first
// walks only the segment headers (skipping payloads by their recorded
// lengths) to sum the chunk's sample count, the second decodes each
// payload into a slice of one pre-sized sample arena. Cold loads thus
// perform a constant number of allocations — the file buffer, the
// arena, the segment slice — instead of two per segment, and payloads
// are checksummed in place without ever being copied.
func Read(r io.Reader) (*File, error) {
	var data []byte
	if l, ok := r.(interface{ Len() int }); ok {
		// In-memory readers (bytes.Reader, bytes.Buffer) report their
		// remaining length: buffer in one exactly-sized allocation.
		data = make([]byte, l.Len())
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, err
		}
	} else {
		var err error
		data, err = io.ReadAll(r)
		if err != nil {
			return nil, err
		}
	}
	return ReadBytes(data)
}

// ReadBytes decodes a chunk already resident in memory. The returned
// segments' sample slices share one backing arena sized from the
// segment headers; retaining any one of them retains the whole chunk's
// samples (callers transform them into columns anyway).
func ReadBytes(data []byte) (*File, error) {
	// The variable-width file header has exactly one decoder, the
	// streaming one; the consumed prefix length is recovered from the
	// readers' positions.
	under := bytes.NewReader(data)
	br := bufio.NewReader(under)
	hdr, nseg, err := readFileHeader(br)
	if err != nil {
		return nil, err
	}
	pos := len(data) - under.Len() - br.Buffered()
	// Every segment occupies at least a header's worth of bytes, so a
	// corrupt count cannot demand more header slots than the file holds.
	if nseg < 0 || nseg > (len(data)-pos)/segmentHeaderLen {
		return nil, fmt.Errorf("mseed: %d segments in %d bytes (corrupt chunk)", nseg, len(data))
	}
	// Pass one: segment headers only, to size the sample arena.
	heads := make([]SegmentHeader, nseg)
	total := 0
	p := pos
	for i := 0; i < nseg; i++ {
		sh, n, err := parseSegmentHeader(data[p:])
		if err != nil {
			return nil, fmt.Errorf("mseed: segment %d: %w", i, err)
		}
		p += n
		if sh.payloadLen < 0 || sh.SampleCount < 0 {
			return nil, fmt.Errorf("mseed: segment %d: negative length (corrupt chunk)", i)
		}
		// Both encodings spend at least one payload byte per sample, so
		// a corrupt header cannot demand an arena larger than the file.
		if sh.SampleCount > sh.payloadLen {
			return nil, fmt.Errorf("mseed: segment %d: %d samples in %d payload bytes (corrupt chunk)",
				i, sh.SampleCount, sh.payloadLen)
		}
		if int(sh.payloadLen) > len(data)-p {
			return nil, fmt.Errorf("mseed: segment %d: truncated payload: %w", i, io.ErrUnexpectedEOF)
		}
		p += int(sh.payloadLen)
		heads[i] = sh
		total += int(sh.SampleCount)
	}
	// Pass two: verify and decode each payload into its arena slice.
	arena := make([]int32, total)
	f := &File{Header: hdr, Segments: make([]Segment, nseg)}
	p, off := pos, 0
	for i, sh := range heads {
		p += segmentHeaderLen
		payload := data[p : p+int(sh.payloadLen)]
		p += int(sh.payloadLen)
		if got := crc32.Checksum(payload, crcTable); got != sh.crc {
			return nil, fmt.Errorf("mseed: segment %d: checksum mismatch (corrupt chunk)", i)
		}
		samples := arena[off : off+int(sh.SampleCount) : off+int(sh.SampleCount)]
		off += int(sh.SampleCount)
		if err := DecodeSamplesInto(hdr.Encoding, payload, samples); err != nil {
			return nil, fmt.Errorf("mseed: segment %d: %w", i, err)
		}
		f.Segments[i] = Segment{Header: sh, Samples: samples}
	}
	return f, nil
}

// segmentHeaderLen is the fixed on-disk size of a segment header.
const segmentHeaderLen = 4 + 8 + 8 + 4 + 4 + 4

// parseSegmentHeader decodes one segment header, returning its encoded
// length. It is the single decoder of the segment wire format: the
// streaming readSegmentHeader feeds it too.
func parseSegmentHeader(data []byte) (SegmentHeader, int, error) {
	if len(data) < segmentHeaderLen {
		return SegmentHeader{}, 0, io.ErrUnexpectedEOF
	}
	var sh SegmentHeader
	sh.ID = int32(binary.LittleEndian.Uint32(data))
	sh.StartTime = int64(binary.LittleEndian.Uint64(data[4:]))
	sh.SampleRate = float64(binary.LittleEndian.Uint64(data[12:])) / 1e6
	sh.SampleCount = int32(binary.LittleEndian.Uint32(data[20:]))
	sh.payloadLen = int32(binary.LittleEndian.Uint32(data[24:]))
	sh.crc = binary.LittleEndian.Uint32(data[28:])
	return sh, segmentHeaderLen, nil
}

func readFileHeader(br *bufio.Reader) (FileHeader, int, error) {
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return FileHeader{}, 0, fmt.Errorf("mseed: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return FileHeader{}, 0, fmt.Errorf("mseed: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return FileHeader{}, 0, err
	}
	if ver != Version {
		return FileHeader{}, 0, fmt.Errorf("mseed: unsupported version %d", ver)
	}
	var hdr FileHeader
	for _, dst := range []*string{&hdr.Network, &hdr.Station, &hdr.Location, &hdr.Channel, &hdr.Quality, &hdr.ByteOrder} {
		s, err := readString(br)
		if err != nil {
			return FileHeader{}, 0, fmt.Errorf("mseed: reading header strings: %w", err)
		}
		*dst = s
	}
	encB, err := br.ReadByte()
	if err != nil {
		return FileHeader{}, 0, err
	}
	hdr.Encoding = Encoding(encB)
	nseg, err := readU32(br)
	if err != nil {
		return FileHeader{}, 0, err
	}
	return hdr, int(nseg), nil
}

func readSegmentHeader(br *bufio.Reader) (SegmentHeader, error) {
	var buf [segmentHeaderLen]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return SegmentHeader{}, err
	}
	sh, _, err := parseSegmentHeader(buf[:])
	return sh, err
}

// ReadMetadataFile extracts metadata from the chunk at path.
func ReadMetadataFile(path string) (FileHeader, []SegmentHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileHeader{}, nil, err
	}
	defer f.Close()
	return ReadMetadata(f)
}

// ReadChunkFile fully decodes the chunk at path. The file is read in
// one exactly-sized allocation and decoded in place (ReadBytes).
func ReadChunkFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadBytes(data)
}
