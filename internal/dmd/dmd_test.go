package dmd

import (
	"fmt"
	"math"
	"testing"
	"time"

	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// hour is one window in nanoseconds.
const hour = int64(time.Hour)

var day0 = time.Date(2010, 4, 20, 0, 0, 0, 0, time.UTC).UnixNano()

// fixtureCatalog registers two stations with data spanning one day.
func fixtureCatalog(t *testing.T) *table.Catalog {
	t.Helper()
	cat := seismic.NewCatalog()
	f, _ := cat.Table(seismic.TableF)
	s, _ := cat.Table(seismic.TableS)
	stations := []string{"FIAM", "ISK"}
	for i, st := range stations {
		err := f.Append(storage.NewBatch(
			storage.NewInt64Column([]int64{int64(i)}),
			storage.NewStringColumn([]string{fmt.Sprintf("repo/%s.msl", st)}),
			storage.NewStringColumn([]string{"IV"}),
			storage.NewStringColumn([]string{st}),
			storage.NewStringColumn([]string{"00"}),
			storage.NewStringColumn([]string{"HHZ"}),
			storage.NewStringColumn([]string{"D"}),
			storage.NewInt64Column([]int64{10}),
			storage.NewStringColumn([]string{"LE"}),
		))
		if err != nil {
			t.Fatal(err)
		}
		err = s.Append(storage.NewBatch(
			storage.NewInt64Column([]int64{int64(i)}),
			storage.NewInt64Column([]int64{0}),
			storage.NewTimeColumn([]int64{day0}),
			storage.NewTimeColumn([]int64{day0 + 24*hour}),
			storage.NewFloat64Column([]float64{20}),
			storage.NewInt64Column([]int64{100}),
		))
		if err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// rampFetcher serves a deterministic series: value = hour-index within
// the day, 4 samples per hour.
type rampFetcher struct{ calls int }

func (rf *rampFetcher) FetchSeries(station, channel string, from, to int64) ([]int64, []float64, error) {
	rf.calls++
	var ts []int64
	var vs []float64
	step := hour / 4
	for x := from; x < to; x += step {
		ts = append(ts, x)
		vs = append(vs, float64((x-day0)/hour))
	}
	return ts, vs, nil
}

func t5Query(loHour, hiHour int) *plan.Query {
	return &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggAvg, Expr: expr.Col("D.sample_value"), Alias: "v"}},
		From:   seismic.ViewWindowData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str("FIAM")),
			expr.NewCmp(expr.EQ, expr.Col("F.channel"), expr.Str("HHZ")),
			expr.NewCmp(expr.GE, expr.Col("H.window_start_ts"), expr.Time(day0+int64(loHour)*hour)),
			expr.NewCmp(expr.LT, expr.Col("H.window_start_ts"), expr.Time(day0+int64(hiHour)*hour)),
		}),
	}
}

func prepare(t *testing.T, m *Manager, cat *table.Catalog, q *plan.Query) Stats {
	t.Helper()
	p, err := plan.Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Prepare(p, q)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestAlgorithm1StepsOnT5(t *testing.T) {
	cat := fixtureCatalog(t)
	rf := &rampFetcher{}
	m := NewManager(cat, rf)
	// Like the paper's worked example: assume a previous query already
	// materialized hour 23 of 2010-04-20... here hours 2-3.
	st1 := prepare(t, m, cat, t5Query(2, 4))
	if st1.QueryType != 5 {
		t.Fatalf("type = %d", st1.QueryType)
	}
	if st1.Requested != 2 || st1.Covered != 0 || st1.Computed != 2 {
		t.Fatalf("first stats = %+v", st1)
	}
	// Overlapping request: hours 2-6 → PSm covers 2, PSu = {4, 5}.
	st2 := prepare(t, m, cat, t5Query(2, 6))
	if st2.Requested != 4 || st2.Covered != 2 || st2.Computed != 2 {
		t.Fatalf("second stats = %+v", st2)
	}
	// Fully covered request computes nothing.
	st3 := prepare(t, m, cat, t5Query(3, 5))
	if st3.Computed != 0 || st3.Covered != 2 {
		t.Fatalf("third stats = %+v", st3)
	}
	if m.MaterializedCount() != 4 {
		t.Fatalf("materialized = %d", m.MaterializedCount())
	}
	// One fetch per derivation round (grouped per station/channel).
	if rf.calls != 2 {
		t.Fatalf("fetch calls = %d", rf.calls)
	}
}

func TestDerivedValuesAreCorrect(t *testing.T) {
	cat := fixtureCatalog(t)
	m := NewManager(cat, &rampFetcher{})
	prepare(t, m, cat, t5Query(3, 4)) // hour 3: constant value 3
	h, _ := cat.Table(seismic.TableH)
	flat := h.Data().Flatten()
	if flat.Len() != 1 {
		t.Fatalf("H rows = %d", flat.Len())
	}
	get := func(col string) float64 {
		return storage.Float64s(flat.Cols[h.Schema.IndexOf(col)])[0]
	}
	if get("window_max_val") != 3 || get("window_min_val") != 3 || get("window_mean_val") != 3 {
		t.Fatalf("summary wrong: max=%v min=%v mean=%v", get("window_max_val"), get("window_min_val"), get("window_mean_val"))
	}
	if get("window_std_dev") != 0 {
		t.Fatalf("stddev = %v", get("window_std_dev"))
	}
	sta := flat.Cols[h.Schema.IndexOf("window_station")].(*storage.StringColumn).Value(0)
	if sta != "FIAM" {
		t.Fatalf("station = %s", sta)
	}
}

func TestT1QueriesSkipDerivation(t *testing.T) {
	cat := fixtureCatalog(t)
	rf := &rampFetcher{}
	m := NewManager(cat, rf)
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.TableF,
	}
	st := prepare(t, m, cat, q)
	if st.QueryType != 1 || st.Requested != 0 || rf.calls != 0 {
		t.Fatalf("stats = %+v calls = %d", st, rf.calls)
	}
}

func TestT2DirectOnH(t *testing.T) {
	cat := fixtureCatalog(t)
	m := NewManager(cat, &rampFetcher{})
	q := &plan.Query{
		Select: []plan.SelectItem{{Expr: expr.Col("window_max_val")}},
		From:   seismic.TableH,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("window_station"), expr.Str("ISK")),
			expr.NewCmp(expr.EQ, expr.Col("window_channel"), expr.Str("HHZ")),
			expr.NewCmp(expr.GE, expr.Col("window_start_ts"), expr.Time(day0)),
			expr.NewCmp(expr.LT, expr.Col("window_start_ts"), expr.Time(day0+2*hour)),
		}),
	}
	st := prepare(t, m, cat, q)
	if st.QueryType != 2 {
		t.Fatalf("type = %d", st.QueryType)
	}
	if st.Requested != 2 || st.Computed != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnboundedPredicatesFallBackToDomain(t *testing.T) {
	cat := fixtureCatalog(t)
	m := NewManager(cat, &rampFetcher{})
	// No station/channel/time predicates: PSq = all pairs × all
	// windows in span = 2 × 24.
	q := &plan.Query{
		Select: []plan.SelectItem{{Expr: expr.Col("window_max_val")}},
		From:   seismic.TableH,
	}
	st := prepare(t, m, cat, q)
	if st.Requested != 48 {
		t.Fatalf("requested = %d, want 48", st.Requested)
	}
	if m.MaterializedCount() != 48 {
		t.Fatalf("materialized = %d", m.MaterializedCount())
	}
}

func TestWindowStartTruncation(t *testing.T) {
	ts := day0 + 3*hour + 1234
	if got := seismic.WindowStart(ts); got != day0+3*hour {
		t.Fatalf("window start = %d", got)
	}
	if got := seismic.WindowStart(day0); got != day0 {
		t.Fatal("aligned timestamp moved")
	}
	// Negative timestamps truncate toward -inf.
	if got := seismic.WindowStart(-1); got != -hour {
		t.Fatalf("negative window start = %d", got)
	}
}

func TestEmptyWindowsMaterializeAsKnowledge(t *testing.T) {
	cat := fixtureCatalog(t)
	// A fetcher that returns nothing: gaps in the data.
	empty := fetcherFunc(func(string, string, int64, int64) ([]int64, []float64, error) {
		return nil, nil, nil
	})
	m := NewManager(cat, empty)
	st := prepare(t, m, cat, t5Query(1, 3))
	if st.Computed != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// The second query over the same windows must not re-derive.
	st2 := prepare(t, m, cat, t5Query(1, 3))
	if st2.Computed != 0 || st2.Covered != 2 {
		t.Fatalf("reuse stats = %+v", st2)
	}
}

type fetcherFunc func(station, channel string, from, to int64) ([]int64, []float64, error)

func (f fetcherFunc) FetchSeries(station, channel string, from, to int64) ([]int64, []float64, error) {
	return f(station, channel, from, to)
}

func TestFetcherErrorPropagates(t *testing.T) {
	cat := fixtureCatalog(t)
	failing := fetcherFunc(func(string, string, int64, int64) ([]int64, []float64, error) {
		return nil, nil, fmt.Errorf("repository unreachable")
	})
	m := NewManager(cat, failing)
	p, err := plan.Build(cat, t5Query(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Prepare(p, t5Query(0, 1)); err == nil {
		t.Fatal("fetcher error swallowed")
	}
}

func TestDeriveAll(t *testing.T) {
	cat := fixtureCatalog(t)
	rf := &rampFetcher{}
	m := NewManager(cat, rf)
	n, dur, err := m.DeriveAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 48 { // 2 pairs × 24 windows
		t.Fatalf("derived = %d", n)
	}
	if dur <= 0 {
		t.Fatal("no duration")
	}
	// Idempotent: everything is covered now.
	n2, _, err := m.DeriveAll()
	if err != nil || n2 != 0 {
		t.Fatalf("re-derive = %d, %v", n2, err)
	}
	h, _ := cat.Table(seismic.TableH)
	if h.Rows() != 48 {
		t.Fatalf("H rows = %d", h.Rows())
	}
	m.Reset()
	if m.MaterializedCount() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSummarizeStddev(t *testing.T) {
	// Hand-checked: values 1..5 in one window.
	times := make([]int64, 5)
	vals := []float64{1, 2, 3, 4, 5}
	for i := range times {
		times[i] = day0 + int64(i)
	}
	rows := summarize(times, vals, map[int64]bool{day0: true})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.max != 5 || r.min != 1 || r.mean != 3 {
		t.Fatalf("row = %+v", r)
	}
	if math.Abs(r.sdev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("sdev = %v", r.sdev)
	}
}
