// Package dmd implements incremental metadata derivation: derived-
// metadata (DMd) tables as partially materialized views, maintained by
// the paper's Algorithm 1. When a query refers to a DMd table, the
// manager enumerates the primary-key space the query touches (PSq),
// subtracts the already materialized set (PSm), and computes the
// uncovered remainder (PSu) through an internal T2-style fetch — which
// itself exploits two-stage execution and lazy loading — before the
// user's query proceeds.
package dmd

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/seismic"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// Fetcher retrieves the actual data needed to derive metadata. The
// engine implements it with a two-stage T4 query, so derivation
// piggybacks on lazy loading exactly as the paper describes (Step 6
// "might require to employ lazy loading as well").
type Fetcher interface {
	// FetchSeries returns (time, value) pairs of one station/channel
	// within [from, to) nanoseconds.
	FetchSeries(station, channel string, from, to int64) ([]int64, []float64, error)
}

// PK is one primary-key tuple of the hourly-window DMd table.
type PK struct {
	Station, Channel string
	WindowStart      int64
}

// Stats reports what one Prepare invocation did (Algorithm 1's work).
type Stats struct {
	// QueryType per Table I; 0 when outside the taxonomy.
	QueryType int
	// PSq, PSm∩PSq and PSu cardinalities.
	Requested, Covered, Computed int
	// Derivation time spent in Step 6.
	Derivation time.Duration
}

// Manager owns one DMd table (the hourly summary view H) and tracks its
// materialized primary-key set. Derivation is serialized: concurrent
// queries needing overlapping windows must not both insert them.
type Manager struct {
	mu      sync.Mutex
	cat     *table.Catalog
	fetcher Fetcher
	// materialized is PSm: the PK set already present in H.
	materialized map[PK]bool
}

// NewManager creates the manager for the catalog's H table.
func NewManager(cat *table.Catalog, fetcher Fetcher) *Manager {
	return &Manager{cat: cat, fetcher: fetcher, materialized: make(map[PK]bool)}
}

// MaterializedCount reports |PSm|.
func (m *Manager) MaterializedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.materialized)
}

// Reset forgets all materialized state (used between experiments; the
// caller must also truncate H).
func (m *Manager) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.materialized = make(map[PK]bool)
}

// Prepare runs Algorithm 1 for a compiled query before execution.
func (m *Manager) Prepare(p *plan.Plan, q *plan.Query) (Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var st Stats
	// Step 1: find out the type of q; only types 2, 3, 5 refer to DMd.
	st.QueryType = p.Type()
	switch st.QueryType {
	case 2, 3, 5:
	default:
		return st, nil // Step 7: proceed directly.
	}
	// Step 2: predicates over the DMd table's primary key attributes.
	// Step 3: enumerate PSq.
	psq, err := m.enumeratePSq(q)
	if err != nil {
		return st, err
	}
	st.Requested = len(psq)
	// Step 4: PSm is already materialized; check coverage.
	var psu []PK
	for _, k := range psq {
		if m.materialized[k] {
			st.Covered++
		} else {
			// Step 5: PSu ← PSq − PSm.
			psu = append(psu, k)
		}
	}
	if len(psu) == 0 {
		return st, nil // covered: proceed (Step 7).
	}
	// Step 6: compute the unavailable required DMd and insert it.
	t0 := time.Now()
	if err := m.derive(psu); err != nil {
		return st, err
	}
	st.Computed = len(psu)
	st.Derivation = time.Since(t0)
	return st, nil
}

// enumeratePSq implements Steps 2 and 3: collect the PK-attribute
// predicates of q and enumerate every PK tuple they admit. Predicates
// on columns join-equal to a PK attribute count too — the paper's
// Query 2 filters F.station, which the windowdataview join makes
// equivalent to H.window_station. Unbounded attributes fall back to the
// domains known from the given metadata (distinct station/channel pairs
// of F; the time span of S), and the window range is clamped to the
// data's span.
func (m *Manager) enumeratePSq(q *plan.Query) ([]PK, error) {
	alias := m.pkAliases(q.From)
	var stations, channels []string
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	for _, c := range expr.Conjuncts(q.Where) {
		if col, k, ok := expr.EqConst(c); ok {
			switch alias[base(col)] {
			case "window_station":
				stations = append(stations, k.S)
			case "window_channel":
				channels = append(channels, k.S)
			case "window_start_ts":
				if ts, err := constTime(k); err == nil {
					lo, hi = ts, ts+1
				}
			}
			continue
		}
		if col, op, k, ok := expr.RangeConst(c); ok && alias[base(col)] == "window_start_ts" {
			ts, err := constTime(k)
			if err != nil {
				return nil, err
			}
			switch op {
			case expr.GE:
				lo = maxI(lo, ts)
			case expr.GT:
				lo = maxI(lo, ts+1)
			case expr.LT:
				hi = minI(hi, ts)
			case expr.LE:
				hi = minI(hi, ts+1)
			}
		}
	}
	pairs, span, err := m.domains()
	if err != nil {
		return nil, err
	}
	// Clamp to the data's span: windows outside it hold no data, so
	// there is nothing to derive (or cover) there.
	w := int64(seismic.WindowDuration)
	lo = maxI(lo, seismic.WindowStart(span[0]))
	hi = minI(hi, seismic.WindowStart(span[1]-1)+w)
	if hi <= lo {
		return nil, nil
	}
	var psq []PK
	for _, pr := range pairs {
		if len(stations) > 0 && !containsStr(stations, pr[0]) {
			continue
		}
		if len(channels) > 0 && !containsStr(channels, pr[1]) {
			continue
		}
		for ws := seismic.WindowStart(lo); ws < hi; ws += w {
			psq = append(psq, PK{Station: pr[0], Channel: pr[1], WindowStart: ws})
		}
	}
	return psq, nil
}

// pkAliases maps column base names to the DMd PK attribute they are
// join-equal to, per the view definition of the query's FROM clause.
// The PK attributes always map to themselves.
func (m *Manager) pkAliases(from string) map[string]string {
	alias := map[string]string{
		"window_station":  "window_station",
		"window_channel":  "window_channel",
		"window_start_ts": "window_start_ts",
	}
	v, ok := m.cat.View(from)
	if !ok {
		return alias
	}
	for _, j := range v.Joins {
		lb, rb := base(j.Left), base(j.Right)
		if pk, ok := alias[lb]; ok && alias[rb] == "" {
			alias[rb] = pk
		}
		if pk, ok := alias[rb]; ok && alias[lb] == "" {
			alias[lb] = pk
		}
	}
	return alias
}

// domains returns the distinct (station, channel) pairs of F and the
// overall [min, max) time span of S.
func (m *Manager) domains() ([][2]string, [2]int64, error) {
	fT, _ := m.cat.Table(seismic.TableF)
	sT, _ := m.cat.Table(seismic.TableS)
	fFlat := fT.Data().Flatten()
	var pairs [][2]string
	seen := make(map[[2]string]bool)
	if fFlat.Len() > 0 {
		stCol := fFlat.Cols[fT.Schema.IndexOf("station")].(*storage.StringColumn)
		chCol := fFlat.Cols[fT.Schema.IndexOf("channel")].(*storage.StringColumn)
		for i := 0; i < fFlat.Len(); i++ {
			p := [2]string{stCol.Value(i), chCol.Value(i)}
			if !seen[p] {
				seen[p] = true
				pairs = append(pairs, p)
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	span := [2]int64{0, 0}
	sFlat := sT.Data().Flatten()
	if sFlat.Len() > 0 {
		starts := storage.Int64s(sFlat.Cols[sT.Schema.IndexOf("start_time")])
		ends := storage.Int64s(sFlat.Cols[sT.Schema.IndexOf("end_time")])
		span[0], span[1] = starts[0], ends[0]
		for i := range starts {
			span[0] = minI(span[0], starts[i])
			span[1] = maxI(span[1], ends[i])
		}
	}
	return pairs, span, nil
}

// derive computes and inserts the DMd rows for PSu. Following the
// paper's amortization rule, all DMd attributes of a touched window are
// derived together. Windows are grouped per (station, channel) and
// fetched as one contiguous range to bound the number of internal
// queries.
func (m *Manager) derive(psu []PK) error {
	type group struct {
		station, channel string
		lo, hi           int64
		want             map[int64]bool
	}
	groups := make(map[[2]string]*group)
	var order [][2]string
	w := int64(seismic.WindowDuration)
	for _, k := range psu {
		gk := [2]string{k.Station, k.Channel}
		g, ok := groups[gk]
		if !ok {
			g = &group{station: k.Station, channel: k.Channel, lo: k.WindowStart, hi: k.WindowStart + w, want: make(map[int64]bool)}
			groups[gk] = g
			order = append(order, gk)
		}
		g.lo = minI(g.lo, k.WindowStart)
		g.hi = maxI(g.hi, k.WindowStart+w)
		g.want[k.WindowStart] = true
	}
	hT, _ := m.cat.Table(seismic.TableH)
	for _, gk := range order {
		g := groups[gk]
		times, vals, err := m.fetcher.FetchSeries(g.station, g.channel, g.lo, g.hi)
		if err != nil {
			return fmt.Errorf("dmd: deriving %s/%s: %w", g.station, g.channel, err)
		}
		rows := summarize(times, vals, g.want)
		if err := m.insert(hT, g.station, g.channel, rows); err != nil {
			return err
		}
		for ws := range g.want {
			m.materialized[PK{Station: g.station, Channel: g.channel, WindowStart: ws}] = true
		}
	}
	return nil
}

// windowRow is one derived summary row.
type windowRow struct {
	start                int64
	max, min, mean, sdev float64
	n                    int64
}

// summarize computes the window summaries for the wanted window starts.
// Windows with no data still materialize (with zero counts), so the
// coverage check will not re-derive them — deriving "no data here" is
// itself knowledge.
func summarize(times []int64, vals []float64, want map[int64]bool) []windowRow {
	acc := make(map[int64]*windowRow)
	for i, ts := range times {
		ws := seismic.WindowStart(ts)
		if !want[ws] {
			continue
		}
		r, ok := acc[ws]
		if !ok {
			r = &windowRow{start: ws, max: math.Inf(-1), min: math.Inf(1)}
			acc[ws] = r
		}
		v := vals[i]
		r.n++
		r.mean += v
		r.max = math.Max(r.max, v)
		r.min = math.Min(r.min, v)
	}
	// Second pass for the standard deviation (two-pass is exact).
	means := make(map[int64]float64, len(acc))
	for ws, r := range acc {
		r.mean /= float64(r.n)
		means[ws] = r.mean
	}
	ss := make(map[int64]float64, len(acc))
	for i, ts := range times {
		ws := seismic.WindowStart(ts)
		if r, ok := acc[ws]; ok {
			d := vals[i] - r.mean
			ss[ws] += d * d
		}
	}
	var out []windowRow
	for ws := range want {
		if r, ok := acc[ws]; ok {
			if r.n > 1 {
				r.sdev = math.Sqrt(ss[ws] / float64(r.n-1))
			}
			out = append(out, *r)
		} else {
			out = append(out, windowRow{start: ws, max: 0, min: 0, mean: 0, sdev: 0})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

func (m *Manager) insert(hT *table.Table, station, channel string, rows []windowRow) error {
	if len(rows) == 0 {
		return nil
	}
	n := len(rows)
	stas := make([]string, n)
	chans := make([]string, n)
	starts := make([]int64, n)
	maxs := make([]float64, n)
	mins := make([]float64, n)
	means := make([]float64, n)
	sdevs := make([]float64, n)
	for i, r := range rows {
		stas[i], chans[i], starts[i] = station, channel, r.start
		maxs[i], mins[i], means[i], sdevs[i] = r.max, r.min, r.mean, r.sdev
		if r.n == 0 {
			maxs[i], mins[i] = 0, 0
		}
	}
	return hT.Append(storage.NewBatch(
		storage.NewStringColumn(stas),
		storage.NewStringColumn(chans),
		storage.NewTimeColumn(starts),
		storage.NewFloat64Column(maxs),
		storage.NewFloat64Column(mins),
		storage.NewFloat64Column(means),
		storage.NewFloat64Column(sdevs),
	))
}

// DeriveAll eagerly materializes the whole DMd space: the eager_dmd
// investment ("computing and saving all DMd as a materialized view").
func (m *Manager) DeriveAll() (int, time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	pairs, span, err := m.domains()
	if err != nil {
		return 0, 0, err
	}
	if span[1] <= span[0] {
		return 0, time.Since(start), nil
	}
	var psu []PK
	w := int64(seismic.WindowDuration)
	for _, pr := range pairs {
		for ws := seismic.WindowStart(span[0]); ws < span[1]; ws += w {
			k := PK{Station: pr[0], Channel: pr[1], WindowStart: ws}
			if !m.materialized[k] {
				psu = append(psu, k)
			}
		}
	}
	if err := m.derive(psu); err != nil {
		return 0, 0, err
	}
	return len(psu), time.Since(start), nil
}

func base(qualified string) string {
	for i := len(qualified) - 1; i >= 0; i-- {
		if qualified[i] == '.' {
			return qualified[i+1:]
		}
	}
	return qualified
}

func constTime(k *expr.Const) (int64, error) {
	switch k.K {
	case storage.KindTime, storage.KindInt64:
		return k.I, nil
	case storage.KindString:
		// Reuse the expression layer's coercion by binding a
		// comparison against a synthetic time column.
		cp := *k
		e := expr.NewCmp(expr.EQ, expr.Col("t"), &cp)
		if _, err := e.Bind([]string{"t"}, []storage.Kind{storage.KindTime}); err != nil {
			return 0, err
		}
		return cp.I, nil
	default:
		return 0, fmt.Errorf("dmd: %v is not a timestamp", k.K)
	}
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func minI(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MarkMaterialized records externally restored DMd rows (e.g. from a
// persisted snapshot) in the coverage set, so Algorithm 1 treats them
// as already derived.
func (m *Manager) MarkMaterialized(station, channel string, windowStart int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.materialized[PK{Station: station, Channel: channel, WindowStart: windowStart}] = true
}
