package cache

import (
	"os"
	"path/filepath"
	"testing"

	"sommelier/internal/storage"
)

// tierRel builds a small chunk-shaped relation (time, value columns).
func tierRel(rows int, seed int64) *storage.Relation {
	times := make([]int64, rows)
	vals := make([]float64, rows)
	for i := 0; i < rows; i++ {
		times[i] = seed + int64(i)*20_000_000
		vals[i] = float64(i) + float64(seed)
	}
	rel := storage.NewRelation()
	rel.Append(storage.NewBatch(storage.NewTimeColumn(times), storage.NewFloat64Column(vals)))
	return rel
}

func requireSameRows(t *testing.T, want, got *storage.Relation) {
	t.Helper()
	if want.Rows() != got.Rows() {
		t.Fatalf("rows = %d, want %d", got.Rows(), want.Rows())
	}
	wb, gb := want.Batches(), got.Batches()
	if len(wb) != len(gb) {
		t.Fatalf("batches = %d, want %d", len(gb), len(wb))
	}
	for bi := range wb {
		for ci := range wb[bi].Cols {
			for i := 0; i < wb[bi].Len(); i++ {
				if storage.ValueAt(wb[bi].Cols[ci], i) != storage.ValueAt(gb[bi].Cols[ci], i) {
					t.Fatalf("batch %d col %d row %d differs", bi, ci, i)
				}
			}
		}
	}
}

func TestDiskTierSpillPromoteRoundtrip(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	dt, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	rels := map[int64]*storage.Relation{}
	for id := int64(1); id <= 5; id++ {
		rels[id] = tierRel(200, id*1000)
		dt.Spill(id, rels[id])
	}
	dt.WaitIdle()
	for id, want := range rels {
		if !dt.Contains(id) {
			t.Fatalf("chunk %d not on disk after spill", id)
		}
		got := dt.Promote(id)
		if got == nil {
			t.Fatalf("promote %d missed", id)
		}
		requireSameRows(t, want, got)
		got.Release()
	}
	s := dt.Stats()
	if s.Spills != 5 || s.Promotes != 5 || s.Hits != 5 || s.CorruptBlocks != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if dt.Promote(99) != nil {
		t.Fatal("promote of unknown chunk succeeded")
	}
}

func TestDiskTierWarmReopen(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	dt, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := tierRel(300, 7)
	dt.SpillSync(42, want)
	dt.WaitIdle()
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	// A clean Close writes the footer; the next Open must serve the
	// block without help from any other tier.
	dt2, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dt2.Close()
	got := dt2.Promote(42)
	if got == nil {
		t.Fatal("block lost across reopen")
	}
	requireSameRows(t, want, got)
	got.Release()
	// And the reopened segment accepts new appends after the footer.
	more := tierRel(100, 9)
	dt2.SpillSync(43, more)
	dt2.WaitIdle()
	if !dt2.Contains(43) {
		t.Fatal("append after reopen failed")
	}
}

func TestDiskTierCapacityRefusal(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	dt, err := OpenDiskTier(dir, "D", 600)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	dt.SpillSync(1, tierRel(4, 1))
	dt.WaitIdle()
	if !dt.Contains(1) {
		t.Fatal("small block refused under capacity")
	}
	// A block that would exceed the cap is refused, not admitted by
	// evicting residents: the tier is append-only.
	dt.SpillSync(2, tierRel(100_000, 2))
	dt.WaitIdle()
	if dt.Contains(2) {
		t.Fatal("oversized block admitted past capacity")
	}
	s := dt.Stats()
	if s.SpillRefused == 0 {
		t.Fatalf("stats = %+v, want a refused spill", s)
	}
	if !dt.Contains(1) {
		t.Fatal("resident block lost to a refused spill")
	}
}

// corruptTier builds a cleanly closed one-block segment and returns
// the segment path.
func corruptTier(t *testing.T, dir string) string {
	t.Helper()
	dt, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatal(err)
	}
	dt.SpillSync(1, tierRel(500, 3))
	dt.WaitIdle()
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "D.seg")
}

// requireQuarantined opens the tier over a damaged segment and
// asserts detect-and-quarantine: the file is renamed to .corrupt, the
// tier starts fresh and serves nothing wrong.
func requireQuarantined(t *testing.T, dir, path, kind string) {
	t.Helper()
	dt, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatalf("%s: open over damaged segment: %v", kind, err)
	}
	defer dt.Close()
	if dt.Promote(1) != nil {
		t.Fatalf("%s: promote served data from a damaged segment", kind)
	}
	if s := dt.Stats(); s.CorruptSegments != 1 || s.Blocks != 0 {
		t.Fatalf("%s: stats = %+v, want 1 corrupt segment, 0 blocks", kind, s)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("%s: quarantine file missing: %v", kind, err)
	}
}

func TestDiskTierTruncatedSegmentQuarantined(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	path := corruptTier(t, dir)
	// A kill during spill leaves a segment without its footer: chop the
	// tail off.
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	requireQuarantined(t, dir, path, "truncated")
}

func TestDiskTierFlippedByteQuarantined(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	path := corruptTier(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// One flipped bit in the middle of a block body must fail the
	// open-time CRC sweep.
	data[len(data)/3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	requireQuarantined(t, dir, path, "flipped byte")
}

func TestDiskTierMissingFooterQuarantined(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	path := corruptTier(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the trailer magic: the segment looks whole but was
	// never cleanly closed.
	copy(data[len(data)-4:], "XXXX")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	requireQuarantined(t, dir, path, "missing footer")
}

func TestDiskTierBitRotAfterOpenDegradesToMiss(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	dt, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	dt.SpillSync(1, tierRel(500, 3))
	dt.WaitIdle()
	// Flip a byte in the block body behind the tier's back (bit rot
	// after the open-time verification).
	path := filepath.Join(dir, "D.seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+blockHdrLen+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if dt.Promote(1) != nil {
		t.Fatal("promote served a rotten block")
	}
	s := dt.Stats()
	if s.CorruptBlocks != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt block", s)
	}
	if dt.Contains(1) {
		t.Fatal("rotten block still indexed")
	}
}

func TestDiskTierDuplicateSpillIgnored(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	dt, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	rel := tierRel(50, 1)
	dt.SpillSync(1, rel)
	dt.WaitIdle()
	dt.Spill(1, rel)
	dt.SpillSync(1, rel)
	dt.WaitIdle()
	if s := dt.Stats(); s.Spills != 1 {
		t.Fatalf("spills = %d, want 1 (chunks are immutable per ID)", s.Spills)
	}
}

func TestDiskTierSpillAfterCloseRefused(t *testing.T) {
	defer storage.RequireNoLeaks(t)
	dir := t.TempDir()
	dt, err := OpenDiskTier(dir, "D", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	dt.Spill(1, tierRel(10, 1)) // must not panic or enqueue
	if dt.Contains(1) {
		t.Fatal("spill accepted after close")
	}
}
