package cache

// DiskTier is the second level of the cache hierarchy: decoded chunks
// evicted from the RAM recycler spill to a single-writer segment file
// per table, and cache misses promote blocks back to RAM instead of
// re-reading raw miniSEED from the archive.
//
// Segment file layout (<dir>/<table>.seg):
//
//	header   "SOMS" + version byte
//	blocks   [8B chunkID][4B bodyLen][4B CRC32(body)][body]...
//	footer   "SOMF" + uvarint nBlocks
//	         + per block: varint chunkID, uvarint off, uvarint len, 4B CRC
//	         + 4B CRC32(footer payload)
//	trailer  [8B footer offset]["SOME"]
//
// Bodies are storage.EncodeRelation block bodies (zigzag-varint
// ints/times, raw little-endian float64, embedded per-batch zone
// maps). All fixed-width integers are little-endian.
//
// Crash safety is detect-and-quarantine: the footer is written only by
// a clean Close, and Open re-verifies the trailer magic, the footer
// CRC and every block CRC before trusting a byte. Any failure — a
// truncated tail from a kill during spill, a flipped bit in a block
// body, a missing footer — renames the whole file to <name>.corrupt
// and starts fresh; the data is simply refetched from the archive
// tier, so corruption can cost performance but never correctness. A
// block whose CRC fails at promote time (bit rot after open) is
// dropped from the index the same way, at block granularity.
//
// Spills are asynchronous: the recycler's eviction callback runs under
// the recycler lock, so Spill only enqueues (relation references stay
// valid — chunk relations are immutable) and a single background
// writer goroutine encodes and appends. The queue is bounded and
// lossy: a full queue refuses the spill rather than stalling eviction,
// which is always safe — a refused block just stays archive-only.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"sommelier/internal/storage"
)

const (
	segMagic       = "SOMS"
	segFooterMagic = "SOMF"
	segTrailMagic  = "SOME"
	segVersion     = 1

	segHeaderLen  = 5  // magic + version
	blockHdrLen   = 16 // chunkID + bodyLen + CRC
	segTrailerLen = 12 // footer offset + trailer magic

	// spillQueueLen bounds the eviction→writer queue; overflow refuses
	// the spill (counted) instead of blocking the recycler lock.
	spillQueueLen = 256
)

// DiskTierStats is a point-in-time snapshot of the tier counters,
// surfaced on GET /stats as "disk_cache".
type DiskTierStats struct {
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Spills          int64 `json:"spills"`
	SpillRefused    int64 `json:"spill_refused"`
	Promotes        int64 `json:"promotes"`
	CorruptBlocks   int64 `json:"corrupt_blocks"`
	CorruptSegments int64 `json:"corrupt_segments"`
	BytesUsed       int64 `json:"bytes_used"`
	Blocks          int64 `json:"blocks"`
}

type blockMeta struct {
	off    int64
	length int64
	crc    uint32
}

type spillReq struct {
	id  int64
	rel *storage.Relation
}

// DiskTier is one table's segment file plus its in-memory block index.
// Safe for concurrent use: promotes read via ReadAt under an RLock'd
// index while the writer goroutine appends.
type DiskTier struct {
	path     string
	capacity int64 // ≤0: unbounded

	mu        sync.Mutex // guards index, writeOff, f (writes), flags
	index     map[int64]blockMeta
	inflight  map[int64]bool // queued but not yet written
	writeOff  int64
	f         *os.File
	accepting bool // false once Close begins: new spills are refused
	closed    bool

	queue   chan spillReq
	pending sync.WaitGroup

	hits, misses, spills, spillRefused   atomic.Int64
	promotes, corruptBlocks, corruptSegs atomic.Int64
}

// OpenDiskTier opens (or creates) the segment file for table in dir.
// An existing file is fully verified — header, trailer, footer CRC and
// every block CRC — and quarantined to <file>.corrupt on any failure,
// so a hostile or half-written segment can never serve data. capBytes
// bounds the file size (≤0 = unbounded); blocks that would exceed it
// are refused.
func OpenDiskTier(dir, table string, capBytes int64) (*DiskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dt := &DiskTier{
		path:      filepath.Join(dir, table+".seg"),
		capacity:  capBytes,
		index:     map[int64]blockMeta{},
		inflight:  map[int64]bool{},
		queue:     make(chan spillReq, spillQueueLen),
		accepting: true,
	}
	if err := dt.openFile(); err != nil {
		return nil, err
	}
	go dt.writer()
	return dt, nil
}

// openFile validates any existing segment and leaves dt.f positioned
// for appends (the footer region, if any, will be overwritten and
// rewritten at Close).
func (dt *DiskTier) openFile() error {
	if st, err := os.Stat(dt.path); err == nil && st.Size() > 0 {
		index, dataEnd, verr := verifySegment(dt.path)
		if verr != nil {
			dt.corruptSegs.Add(1)
			if err := os.Rename(dt.path, dt.path+".corrupt"); err != nil {
				return fmt.Errorf("cache: quarantining %s: %w", dt.path, err)
			}
		} else {
			f, err := os.OpenFile(dt.path, os.O_RDWR, 0o644)
			if err != nil {
				return err
			}
			if err := f.Truncate(dataEnd); err != nil {
				f.Close()
				return err
			}
			dt.f, dt.index, dt.writeOff = f, index, dataEnd
			return nil
		}
	}
	f, err := os.OpenFile(dt.path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	hdr := append([]byte(segMagic), segVersion)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		f.Close()
		return err
	}
	dt.f, dt.writeOff = f, segHeaderLen
	return nil
}

// verifySegment reads a segment end to end: trailer magic, footer CRC,
// then every block body against its indexed CRC. It returns the block
// index and the end of the block region (= footer offset).
func verifySegment(path string) (map[int64]blockMeta, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := st.Size()
	if size < segHeaderLen+segTrailerLen {
		return nil, 0, fmt.Errorf("segment too short (%d bytes)", size)
	}
	hdr := make([]byte, segHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, 0, err
	}
	if string(hdr[:4]) != segMagic || hdr[4] != segVersion {
		return nil, 0, fmt.Errorf("bad segment header")
	}
	trail := make([]byte, segTrailerLen)
	if _, err := f.ReadAt(trail, size-segTrailerLen); err != nil {
		return nil, 0, err
	}
	if string(trail[8:]) != segTrailMagic {
		return nil, 0, fmt.Errorf("missing footer (no trailer magic)")
	}
	footOff := int64(binary.LittleEndian.Uint64(trail[:8]))
	if footOff < segHeaderLen || footOff > size-segTrailerLen {
		return nil, 0, fmt.Errorf("footer offset out of range")
	}
	foot := make([]byte, size-segTrailerLen-footOff)
	if _, err := f.ReadAt(foot, footOff); err != nil {
		return nil, 0, err
	}
	if len(foot) < len(segFooterMagic)+4 || string(foot[:4]) != segFooterMagic {
		return nil, 0, fmt.Errorf("bad footer magic")
	}
	payload, crcBytes := foot[:len(foot)-4], foot[len(foot)-4:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, 0, fmt.Errorf("footer CRC mismatch")
	}
	// Parse footer entries.
	rd := payload[4:]
	n, sz := binary.Uvarint(rd)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("bad footer count")
	}
	rd = rd[sz:]
	index := make(map[int64]blockMeta, n)
	for i := uint64(0); i < n; i++ {
		id, s1 := binary.Varint(rd)
		if s1 <= 0 {
			return nil, 0, fmt.Errorf("bad footer entry")
		}
		rd = rd[s1:]
		off, s2 := binary.Uvarint(rd)
		if s2 <= 0 {
			return nil, 0, fmt.Errorf("bad footer entry")
		}
		rd = rd[s2:]
		length, s3 := binary.Uvarint(rd)
		if s3 <= 0 {
			return nil, 0, fmt.Errorf("bad footer entry")
		}
		rd = rd[s3:]
		if len(rd) < 4 {
			return nil, 0, fmt.Errorf("bad footer entry")
		}
		crc := binary.LittleEndian.Uint32(rd)
		rd = rd[4:]
		if int64(off)+int64(length) > footOff {
			return nil, 0, fmt.Errorf("block beyond footer")
		}
		index[id] = blockMeta{off: int64(off), length: int64(length), crc: crc}
	}
	if len(rd) != 0 {
		return nil, 0, fmt.Errorf("trailing bytes in footer")
	}
	// Verify every block body: a flipped byte anywhere is caught here,
	// before the tier serves a single promote.
	body := make([]byte, 0)
	for id, bm := range index {
		if int64(cap(body)) < bm.length {
			body = make([]byte, bm.length)
		}
		body = body[:bm.length]
		if _, err := f.ReadAt(body, bm.off); err != nil {
			return nil, 0, fmt.Errorf("block %d: %w", id, err)
		}
		if crc32.ChecksumIEEE(body) != bm.crc {
			return nil, 0, fmt.Errorf("block %d: body CRC mismatch", id)
		}
	}
	return index, footOff, nil
}

// Contains reports whether a block for chunkID is on disk (or queued).
func (dt *DiskTier) Contains(chunkID int64) bool {
	if dt == nil {
		return false
	}
	dt.mu.Lock()
	defer dt.mu.Unlock()
	_, ok := dt.index[chunkID]
	return ok || dt.inflight[chunkID]
}

// Spill enqueues a chunk relation for the background writer. It never
// blocks and never does I/O: it is safe to call from the recycler's
// eviction callback, which runs under the recycler's write lock. The
// relation must be immutable (table chunk relations are); the tier
// holds a reference until the write completes.
func (dt *DiskTier) Spill(chunkID int64, rel *storage.Relation) {
	if dt == nil || rel == nil {
		return
	}
	dt.mu.Lock()
	if !dt.accepting || dt.inflight[chunkID] {
		dt.mu.Unlock()
		return
	}
	if _, ok := dt.index[chunkID]; ok {
		dt.mu.Unlock()
		return // chunks are immutable per ID: already spilled
	}
	dt.inflight[chunkID] = true
	dt.pending.Add(1)
	dt.mu.Unlock()
	select {
	case dt.queue <- spillReq{id: chunkID, rel: rel}:
	default:
		dt.unqueue(chunkID)
		dt.spillRefused.Add(1)
	}
}

// SpillSync is the lossless variant of Spill: it blocks until the
// block is queued (never dropping it on a full queue) and is meant for
// the Close-time flush of the RAM-resident working set, where losing a
// block means the next start pays the archive for hot data. It must
// not be called from the recycler's eviction callback.
func (dt *DiskTier) SpillSync(chunkID int64, rel *storage.Relation) {
	if dt == nil || rel == nil {
		return
	}
	dt.mu.Lock()
	if !dt.accepting || dt.inflight[chunkID] {
		dt.mu.Unlock()
		return
	}
	if _, ok := dt.index[chunkID]; ok {
		dt.mu.Unlock()
		return
	}
	dt.inflight[chunkID] = true
	dt.pending.Add(1)
	dt.mu.Unlock()
	dt.queue <- spillReq{id: chunkID, rel: rel}
}

func (dt *DiskTier) unqueue(chunkID int64) {
	dt.mu.Lock()
	delete(dt.inflight, chunkID)
	dt.mu.Unlock()
	dt.pending.Done()
}

// writer is the single goroutine that encodes and appends blocks.
func (dt *DiskTier) writer() {
	for req := range dt.queue {
		dt.writeBlock(req)
		dt.unqueue(req.id)
	}
}

func (dt *DiskTier) writeBlock(req spillReq) {
	body, err := storage.EncodeRelation(nil, req.rel)
	if err != nil {
		dt.spillRefused.Add(1)
		return
	}
	blk := make([]byte, blockHdrLen+len(body))
	binary.LittleEndian.PutUint64(blk[0:], uint64(req.id))
	binary.LittleEndian.PutUint32(blk[8:], uint32(len(body)))
	binary.LittleEndian.PutUint32(blk[12:], crc32.ChecksumIEEE(body))
	copy(blk[blockHdrLen:], body)

	dt.mu.Lock()
	defer dt.mu.Unlock()
	if dt.closed {
		return
	}
	if dt.capacity > 0 && dt.writeOff+int64(len(blk))+segTrailerLen > dt.capacity {
		dt.spillRefused.Add(1)
		return
	}
	if _, err := dt.f.WriteAt(blk, dt.writeOff); err != nil {
		dt.spillRefused.Add(1)
		return
	}
	dt.index[req.id] = blockMeta{
		off:    dt.writeOff + blockHdrLen,
		length: int64(len(body)),
		crc:    crc32.ChecksumIEEE(body),
	}
	dt.writeOff += int64(len(blk))
	dt.spills.Add(1)
}

// Promote reads, verifies and decodes one block back into a pooled
// relation owned by the caller (nil on miss). A CRC or decode failure
// drops the block from the index and reports a miss — the caller falls
// through to the archive loader, so a rotten block degrades to a cache
// miss, never to wrong data.
func (dt *DiskTier) Promote(chunkID int64) *storage.Relation {
	if dt == nil {
		return nil
	}
	dt.mu.Lock()
	bm, ok := dt.index[chunkID]
	f, closed := dt.f, dt.closed
	dt.mu.Unlock()
	if !ok || closed {
		dt.misses.Add(1)
		return nil
	}
	body := make([]byte, bm.length)
	if _, err := f.ReadAt(body, bm.off); err != nil {
		// A read error (e.g. file closed under a racing shutdown) is a
		// plain miss; only checksum/decode failures mark corruption.
		dt.misses.Add(1)
		return nil
	}
	if crc32.ChecksumIEEE(body) != bm.crc {
		dt.dropBlock(chunkID)
		return nil
	}
	rel, err := storage.DecodeRelation(body)
	if err != nil {
		dt.dropBlock(chunkID)
		return nil
	}
	dt.hits.Add(1)
	dt.promotes.Add(1)
	return rel
}

func (dt *DiskTier) dropBlock(chunkID int64) {
	dt.corruptBlocks.Add(1)
	dt.misses.Add(1)
	dt.mu.Lock()
	delete(dt.index, chunkID)
	dt.mu.Unlock()
}

// WaitIdle blocks until every queued spill has been written (or
// refused). Tests use it to make the asynchronous spill deterministic.
func (dt *DiskTier) WaitIdle() {
	if dt == nil {
		return
	}
	dt.pending.Wait()
}

// Stats snapshots the tier counters.
func (dt *DiskTier) Stats() DiskTierStats {
	if dt == nil {
		return DiskTierStats{}
	}
	dt.mu.Lock()
	bytesUsed, blocks := dt.writeOff, int64(len(dt.index))
	dt.mu.Unlock()
	return DiskTierStats{
		Hits:            dt.hits.Load(),
		Misses:          dt.misses.Load(),
		Spills:          dt.spills.Load(),
		SpillRefused:    dt.spillRefused.Load(),
		Promotes:        dt.promotes.Load(),
		CorruptBlocks:   dt.corruptBlocks.Load(),
		CorruptSegments: dt.corruptSegs.Load(),
		BytesUsed:       bytesUsed,
		Blocks:          blocks,
	}
}

// Close drains the spill queue, writes the footer index and trailer,
// syncs and closes the file. Only a segment closed this way survives
// the next Open's verification — an unclean shutdown falls back to a
// cold start, never to corrupt reads.
func (dt *DiskTier) Close() error {
	if dt == nil {
		return nil
	}
	dt.mu.Lock()
	if dt.closed {
		dt.mu.Unlock()
		return nil
	}
	// Stop accepting first, then drain: every spill enqueued before
	// this point still lands in the footer.
	dt.accepting = false
	dt.mu.Unlock()
	dt.pending.Wait()
	dt.mu.Lock()
	dt.closed = true
	close(dt.queue)

	var scratch [binary.MaxVarintLen64]byte
	foot := []byte(segFooterMagic)
	n := binary.PutUvarint(scratch[:], uint64(len(dt.index)))
	foot = append(foot, scratch[:n]...)
	for id, bm := range dt.index {
		n = binary.PutVarint(scratch[:], id)
		foot = append(foot, scratch[:n]...)
		n = binary.PutUvarint(scratch[:], uint64(bm.off))
		foot = append(foot, scratch[:n]...)
		n = binary.PutUvarint(scratch[:], uint64(bm.length))
		foot = append(foot, scratch[:n]...)
		var crcb [4]byte
		binary.LittleEndian.PutUint32(crcb[:], bm.crc)
		foot = append(foot, crcb[:]...)
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc32.ChecksumIEEE(foot))
	foot = append(foot, crcb[:]...)
	var trail [segTrailerLen]byte
	binary.LittleEndian.PutUint64(trail[:8], uint64(dt.writeOff))
	copy(trail[8:], segTrailMagic)
	foot = append(foot, trail[:]...)

	f, off := dt.f, dt.writeOff
	dt.mu.Unlock()
	if _, err := f.WriteAt(foot, off); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
