package cache

import (
	"sync"
	"testing"
	"time"
)

func TestAdmitContains(t *testing.T) {
	r := New(100, LRU, nil)
	if r.Contains(1) {
		t.Fatal("empty cache contains chunk")
	}
	if !r.Admit(1, 40, time.Millisecond) {
		t.Fatal("admit refused")
	}
	if !r.Contains(1) {
		t.Fatal("admitted chunk missing")
	}
	s := r.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Chunks != 1 || s.BytesUsed != 40 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []int64
	r := New(100, LRU, func(id int64) { evicted = append(evicted, id) })
	r.Admit(1, 40, time.Millisecond)
	r.Admit(2, 40, time.Millisecond)
	r.Contains(1) // 1 is now more recent than 2
	r.Admit(3, 40, time.Millisecond)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v", evicted)
	}
	if !r.Peek(1) || !r.Peek(3) || r.Peek(2) {
		t.Fatal("wrong residency after eviction")
	}
	if r.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", r.Stats().Evictions)
	}
}

func TestOversizedChunkRefused(t *testing.T) {
	var evicted []int64
	r := New(50, LRU, func(id int64) { evicted = append(evicted, id) })
	r.Admit(1, 30, time.Millisecond)
	if r.Admit(2, 60, time.Millisecond) {
		t.Fatal("oversized chunk admitted")
	}
	if len(evicted) != 0 {
		t.Fatal("oversized admit evicted residents")
	}
	if !r.Peek(1) {
		t.Fatal("resident lost")
	}
}

func TestZeroCapacityDisablesCache(t *testing.T) {
	r := New(0, LRU, nil)
	if r.Admit(1, 1, 0) {
		t.Fatal("zero-capacity cache admitted a chunk")
	}
}

func TestReAdmitUpdatesSize(t *testing.T) {
	r := New(100, LRU, nil)
	r.Admit(1, 40, time.Millisecond)
	r.Admit(1, 70, time.Millisecond)
	if got := r.Stats().BytesUsed; got != 70 {
		t.Fatalf("bytes = %d", got)
	}
	if got := r.Stats().Chunks; got != 1 {
		t.Fatalf("chunks = %d", got)
	}
}

func TestCostAwareKeepsExpensiveChunks(t *testing.T) {
	var evicted []int64
	r := New(100, CostAware, func(id int64) { evicted = append(evicted, id) })
	r.Admit(1, 40, time.Second)      // expensive to reload
	r.Admit(2, 40, time.Microsecond) // cheap to reload
	// Under LRU, chunk 1 (older) would be the victim; cost-aware must
	// instead evict the cheap chunk 2.
	r.Admit(3, 40, time.Millisecond)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	if !r.Peek(1) {
		t.Fatal("expensive chunk evicted")
	}
}

func TestDropAndClear(t *testing.T) {
	var evicted []int64
	r := New(100, LRU, func(id int64) { evicted = append(evicted, id) })
	r.Admit(1, 10, 0)
	r.Admit(2, 10, 0)
	if !r.Drop(1) {
		t.Fatal("drop failed")
	}
	if r.Drop(1) {
		t.Fatal("double drop succeeded")
	}
	if len(evicted) != 0 {
		t.Fatal("drop fired eviction callback")
	}
	r.Clear()
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("clear evictions = %v", evicted)
	}
	s := r.Stats()
	if s.Chunks != 0 || s.BytesUsed != 0 {
		t.Fatalf("stats after clear = %+v", s)
	}
}

func TestResetStats(t *testing.T) {
	r := New(100, LRU, nil)
	r.Admit(1, 10, 0)
	r.Contains(1)
	r.Contains(99)
	r.ResetStats()
	s := r.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
	if s.Chunks != 1 {
		t.Fatal("reset dropped residency")
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := New(1000, LRU, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int64((g*200 + i) % 50)
				if !r.Contains(id) {
					r.Admit(id, 10, time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Stats()
	if s.BytesUsed > 1000 {
		t.Fatalf("capacity exceeded: %+v", s)
	}
}
