// Package cache implements the recycler: the chunk cache that keeps
// lazily loaded actual data resident between queries. It mirrors the
// role of MonetDB's Recycler in the paper — plain LRU by default — and
// additionally offers the cost-aware replacement policy the paper lists
// as future work ("Smarter Caching"), where eviction weighs loading
// cost against recency.
package cache

import (
	"container/list"
	"sync"
	"time"
)

// Policy selects the replacement strategy.
type Policy uint8

// Replacement policies.
const (
	// LRU evicts the least recently used chunk (the paper's default).
	LRU Policy = iota
	// CostAware evicts the chunk with the lowest
	// loadCost × frequency / size score, so expensive-to-reload
	// chunks survive longer.
	CostAware
)

// Stats aggregates cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	BytesUsed int64
	Chunks    int
}

type entry struct {
	id       int64
	bytes    int64
	loadCost time.Duration
	hits     int64
	lastUsed int64 // logical clock
	elem     *list.Element
}

// Recycler is a byte-capacity bounded cache of chunk IDs. The chunk
// payloads themselves live in the actual-data tables; the recycler
// decides residency and invokes the eviction callback so the owner can
// drop the column data.
type Recycler struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	policy   Policy
	clock    int64
	entries  map[int64]*entry
	lru      *list.List // front = most recent
	onEvict  func(chunkID int64)
	stats    Stats
}

// New creates a recycler with the given byte capacity and policy.
// onEvict (may be nil) is called with the chunk ID after eviction.
// A capacity of zero disables caching entirely: every Admit is refused.
func New(capacity int64, policy Policy, onEvict func(int64)) *Recycler {
	return &Recycler{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[int64]*entry),
		lru:      list.New(),
		onEvict:  onEvict,
	}
}

// Contains reports residency and counts a hit or miss, refreshing
// recency on hit. It is the cache-scan vs chunk-access decision point.
func (r *Recycler) Contains(chunkID int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[chunkID]
	if !ok {
		r.stats.Misses++
		return false
	}
	r.stats.Hits++
	r.touch(e)
	return true
}

// Peek reports residency without touching statistics or recency.
func (r *Recycler) Peek(chunkID int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.entries[chunkID]
	return ok
}

func (r *Recycler) touch(e *entry) {
	r.clock++
	e.lastUsed = r.clock
	e.hits++
	r.lru.MoveToFront(e.elem)
}

// Admit registers a freshly loaded chunk, evicting as needed. It
// returns false — and evicts nothing — if the chunk can never fit
// (larger than capacity); the caller then treats the chunk as
// uncacheable and drops it after the query.
func (r *Recycler) Admit(chunkID int64, bytes int64, loadCost time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bytes > r.capacity {
		return false
	}
	if e, ok := r.entries[chunkID]; ok {
		// Re-admission updates size accounting.
		r.used += bytes - e.bytes
		e.bytes = bytes
		e.loadCost = loadCost
		r.touch(e)
		r.evictOverflowLocked(chunkID)
		return true
	}
	e := &entry{id: chunkID, bytes: bytes, loadCost: loadCost}
	r.clock++
	e.lastUsed = r.clock
	e.elem = r.lru.PushFront(e)
	r.entries[chunkID] = e
	r.used += bytes
	r.evictOverflowLocked(chunkID)
	_, stillThere := r.entries[chunkID]
	return stillThere
}

// evictOverflowLocked evicts until used ≤ capacity, never evicting the
// pinned chunk (the one just admitted).
func (r *Recycler) evictOverflowLocked(pinned int64) {
	for r.used > r.capacity {
		victim := r.victimLocked(pinned)
		if victim == nil {
			return
		}
		r.removeLocked(victim)
		r.stats.Evictions++
		if r.onEvict != nil {
			r.onEvict(victim.id)
		}
	}
}

func (r *Recycler) victimLocked(pinned int64) *entry {
	switch r.policy {
	case CostAware:
		var worst *entry
		var worstScore float64
		for _, e := range r.entries {
			if e.id == pinned {
				continue
			}
			// Benefit of keeping: reload cost × observed reuse,
			// per byte of capacity it occupies.
			score := float64(e.loadCost) * float64(e.hits+1) / float64(e.bytes+1)
			if worst == nil || score < worstScore {
				worst, worstScore = e, score
			}
		}
		return worst
	default: // LRU
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e.id != pinned {
				return e
			}
		}
		return nil
	}
}

func (r *Recycler) removeLocked(e *entry) {
	r.lru.Remove(e.elem)
	delete(r.entries, e.id)
	r.used -= e.bytes
}

// Drop removes a chunk without counting an eviction (used when the
// owner invalidates data). Reports whether it was resident.
func (r *Recycler) Drop(chunkID int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[chunkID]
	if !ok {
		return false
	}
	r.removeLocked(e)
	return true
}

// Clear empties the cache, invoking the eviction callback for every
// resident chunk. It models a server restart for "cold" runs.
func (r *Recycler) Clear() {
	r.mu.Lock()
	ids := make([]int64, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	for _, id := range ids {
		r.removeLocked(r.entries[id])
	}
	cb := r.onEvict
	r.mu.Unlock()
	if cb != nil {
		for _, id := range ids {
			cb(id)
		}
	}
}

// Stats returns a snapshot of the counters.
func (r *Recycler) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.BytesUsed = r.used
	s.Chunks = len(r.entries)
	return s
}

// ResetStats zeroes the hit/miss/eviction counters.
func (r *Recycler) ResetStats() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats = Stats{}
}
