// Package cache implements the recycler: the chunk cache that keeps
// lazily loaded actual data resident between queries. It mirrors the
// role of MonetDB's Recycler in the paper — plain LRU by default — and
// additionally offers the cost-aware replacement policy the paper lists
// as future work ("Smarter Caching"), where eviction weighs loading
// cost against recency.
package cache

import (
	"sync"
	"sync/atomic"
	"time"
)

// Policy selects the replacement strategy.
type Policy uint8

// Replacement policies.
const (
	// LRU evicts the least recently used chunk (the paper's default).
	LRU Policy = iota
	// CostAware evicts the chunk with the lowest
	// loadCost × frequency / size score, so expensive-to-reload
	// chunks survive longer.
	CostAware
)

// Stats aggregates cache activity.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	BytesUsed int64
	Chunks    int
}

type entry struct {
	id       int64
	bytes    int64
	loadCost time.Duration
	hits     atomic.Int64
	lastUsed atomic.Int64 // logical clock

	// Intrusive LRU list linkage, guarded by the recycler write lock.
	// stamp records lastUsed as of the entry's most recent reposition:
	// lastUsed > stamp means the entry was touched (lock-free, by
	// Contains) since it was placed, and deserves a second chance
	// before eviction.
	prev, next *entry
	stamp      int64
}

// Recycler is a byte-capacity bounded cache of chunk IDs. The chunk
// payloads themselves live in the actual-data tables; the recycler
// decides residency and invokes the eviction callback so the owner can
// drop the column data.
//
// The residency check (Contains) is the per-chunk hot path of every
// lazy query, so it never takes the exclusive lock: the entry map is
// read under an RWMutex read lock, and hit/miss counters plus recency
// (a logical clock stamped onto the entry) are plain atomics. Only
// structural changes — admission, eviction, drops — serialize on the
// write lock.
//
// Recency is two-level: Contains stamps a logical clock onto the entry
// with plain atomics (an exclusive-locked move-to-front would
// serialize the hot path), while an intrusive doubly-linked list —
// maintained only under the write lock, where structural changes
// already serialize — keeps entries in approximate recency order. LRU
// victim selection pops the list tail and lazily repositions entries
// whose atomic stamp outran their list position (a second chance),
// giving amortized O(1) eviction; before the list, every eviction
// scanned all entries for the minimum timestamp, a cost that grew with
// cache size exactly when the disk tier raises eviction churn.
type Recycler struct {
	mu       sync.RWMutex
	capacity int64
	used     int64 // guarded by mu (write lock)
	policy   Policy
	entries  map[int64]*entry
	onEvict  func(chunkID int64)

	// LRU list: head is most recently positioned, tail the eviction
	// candidate. Guarded by mu (write lock).
	lruHead, lruTail *entry

	clock     atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New creates a recycler with the given byte capacity and policy.
// onEvict (may be nil) is called with the chunk ID after eviction.
// A capacity of zero disables caching entirely: every Admit is refused.
func New(capacity int64, policy Policy, onEvict func(int64)) *Recycler {
	return &Recycler{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[int64]*entry),
		onEvict:  onEvict,
	}
}

// Contains reports residency and counts a hit or miss, refreshing
// recency on hit. It is the cache-scan vs chunk-access decision point.
func (r *Recycler) Contains(chunkID int64) bool {
	r.mu.RLock()
	e, ok := r.entries[chunkID]
	r.mu.RUnlock()
	if !ok {
		r.misses.Add(1)
		return false
	}
	r.hits.Add(1)
	r.touch(e)
	return true
}

// Peek reports residency without touching statistics or recency.
func (r *Recycler) Peek(chunkID int64) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[chunkID]
	return ok
}

func (r *Recycler) touch(e *entry) {
	e.lastUsed.Store(r.clock.Add(1))
	e.hits.Add(1)
}

// Admit registers a freshly loaded chunk, evicting as needed. It
// returns false — and evicts nothing — if the chunk can never fit
// (larger than capacity); the caller then treats the chunk as
// uncacheable and drops it after the query.
func (r *Recycler) Admit(chunkID int64, bytes int64, loadCost time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if bytes > r.capacity {
		return false
	}
	if e, ok := r.entries[chunkID]; ok {
		// Re-admission updates size accounting.
		r.used += bytes - e.bytes
		e.bytes = bytes
		e.loadCost = loadCost
		r.touch(e)
		r.unlinkLocked(e)
		r.pushFrontLocked(e)
		r.evictOverflowLocked(chunkID)
		return true
	}
	e := &entry{id: chunkID, bytes: bytes, loadCost: loadCost}
	e.lastUsed.Store(r.clock.Add(1))
	r.entries[chunkID] = e
	r.pushFrontLocked(e)
	r.used += bytes
	r.evictOverflowLocked(chunkID)
	_, stillThere := r.entries[chunkID]
	return stillThere
}

// evictOverflowLocked evicts until used ≤ capacity, never evicting the
// pinned chunk (the one just admitted).
func (r *Recycler) evictOverflowLocked(pinned int64) {
	for r.used > r.capacity {
		victim := r.victimLocked(pinned)
		if victim == nil {
			return
		}
		r.removeLocked(victim)
		r.evictions.Add(1)
		if r.onEvict != nil {
			r.onEvict(victim.id)
		}
	}
}

func (r *Recycler) victimLocked(pinned int64) *entry {
	switch r.policy {
	case CostAware:
		var worst *entry
		var worstScore float64
		for _, e := range r.entries {
			if e.id == pinned {
				continue
			}
			// Benefit of keeping: reload cost × observed reuse,
			// per byte of capacity it occupies.
			score := float64(e.loadCost) * float64(e.hits.Load()+1) / float64(e.bytes+1)
			if worst == nil || score < worstScore {
				worst, worstScore = e, score
			}
		}
		// CostAware scores every entry, so it keeps the O(resident
		// chunks) scan; only the default LRU policy gets the list-tail
		// fast path below.
		return worst
	default:
		// LRU: pop the list tail, giving a second chance (reposition at
		// the front) to entries whose lock-free recency stamp outran
		// their list position. Amortized O(1): each reposition pays for
		// itself by recording the stamp it honored. The iteration bound
		// only guards against the pathological case of every entry being
		// touched continuously while we hold the write lock.
		for i, limit := 0, 2*len(r.entries)+2; i < limit; i++ {
			e := r.lruTail
			if e == nil {
				return nil
			}
			if e.id == pinned || e.lastUsed.Load() > e.stamp {
				r.unlinkLocked(e)
				r.pushFrontLocked(e)
				continue
			}
			return e
		}
		for e := r.lruTail; e != nil; e = e.prev {
			if e.id != pinned {
				return e
			}
		}
		return nil
	}
}

// pushFrontLocked links e at the list head and records the recency
// stamp the position reflects. Caller holds the write lock; e must not
// be linked.
func (r *Recycler) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = r.lruHead
	if r.lruHead != nil {
		r.lruHead.prev = e
	} else {
		r.lruTail = e
	}
	r.lruHead = e
	e.stamp = e.lastUsed.Load()
}

// unlinkLocked removes e from the list. Caller holds the write lock;
// e must be linked.
func (r *Recycler) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		r.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		r.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (r *Recycler) removeLocked(e *entry) {
	r.unlinkLocked(e)
	delete(r.entries, e.id)
	r.used -= e.bytes
}

// Drop removes a chunk without counting an eviction (used when the
// owner invalidates data). Reports whether it was resident.
func (r *Recycler) Drop(chunkID int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[chunkID]
	if !ok {
		return false
	}
	r.removeLocked(e)
	return true
}

// Clear empties the cache, invoking the eviction callback for every
// resident chunk. It models a server restart for "cold" runs.
func (r *Recycler) Clear() {
	r.mu.Lock()
	ids := make([]int64, 0, len(r.entries))
	for id := range r.entries {
		ids = append(ids, id)
	}
	for _, id := range ids {
		r.removeLocked(r.entries[id])
	}
	cb := r.onEvict
	r.mu.Unlock()
	if cb != nil {
		for _, id := range ids {
			cb(id)
		}
	}
}

// Stats returns a snapshot of the counters.
func (r *Recycler) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Hits:      r.hits.Load(),
		Misses:    r.misses.Load(),
		Evictions: r.evictions.Load(),
		BytesUsed: r.used,
		Chunks:    len(r.entries),
	}
}

// ResetStats zeroes the hit/miss/eviction counters.
func (r *Recycler) ResetStats() {
	r.hits.Store(0)
	r.misses.Store(0)
	r.evictions.Store(0)
}
