package opt_test

import (
	"strings"
	"testing"
	"time"

	"sommelier/internal/expr"
	"sommelier/internal/opt"
	"sommelier/internal/plan"
	"sommelier/internal/seismic"
)

func ts(s string) int64 {
	t, err := time.Parse("2006-01-02T15:04:05.000", s)
	if err != nil {
		panic(err)
	}
	return t.UnixNano()
}

// query1 is the paper's Query 1 (Figure 2): short-term average.
func query1() *plan.Query {
	return &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggAvg, Expr: expr.Col("D.sample_value"), Alias: "avg_val"}},
		From:   seismic.ViewData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str("ISK")),
			expr.NewCmp(expr.EQ, expr.Col("F.channel"), expr.Str("BHE")),
			expr.NewCmp(expr.GT, expr.Col("D.sample_time"), expr.Time(ts("2010-01-12T22:15:00.000"))),
			expr.NewCmp(expr.LT, expr.Col("D.sample_time"), expr.Time(ts("2010-01-12T22:15:02.000"))),
		}),
	}
}

// query2 is the paper's Query 2 (Figure 3): DMd-filtered retrieval.
func query2() *plan.Query {
	return &plan.Query{
		Select: []plan.SelectItem{
			{Expr: expr.Col("D.sample_time")},
			{Expr: expr.Col("D.sample_value")},
		},
		From: seismic.ViewWindowData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str("FIAM")),
			expr.NewCmp(expr.EQ, expr.Col("F.channel"), expr.Str("HHZ")),
			expr.NewCmp(expr.GE, expr.Col("H.window_start_ts"), expr.Time(ts("2010-04-20T23:00:00.000"))),
			expr.NewCmp(expr.LT, expr.Col("H.window_start_ts"), expr.Time(ts("2010-04-21T02:00:00.000"))),
			expr.NewCmp(expr.GT, expr.Col("H.window_max_val"), expr.Float(10000)),
			expr.NewCmp(expr.GT, expr.Col("H.window_std_dev"), expr.Float(10)),
		}),
	}
}

func compile(t *testing.T, q *plan.Query, opts opt.Options) *plan.Plan {
	t.Helper()
	cat := seismic.NewCatalog()
	p, err := plan.Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	p, err = opt.Optimize(&opt.Context{Catalog: cat}, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// scanTables collects the leaf tables of a subtree in order.
func scanTables(n plan.Node) []string {
	var out []string
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok {
			out = append(out, s.Table)
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(n)
	return out
}

func scanOf(root plan.Node, tab string) *plan.Scan {
	var out *plan.Scan
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok && s.Table == tab {
			out = s
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(root)
	return out
}

func contains(n, target plan.Node) bool {
	if n == target {
		return true
	}
	for _, c := range n.Children() {
		if contains(c, target) {
			return true
		}
	}
	return false
}

func TestOptimizeQuery1(t *testing.T) {
	p := compile(t, query1(), opt.Default())
	if !p.TwoStage {
		t.Fatal("query 1 must be two-stage")
	}
	if p.Type() != 4 {
		t.Fatalf("query 1 type = T%d, want T4", p.Type())
	}
	if p.Qf == nil {
		t.Fatal("no Qf branch")
	}
	cat := seismic.NewCatalog()
	for _, tn := range scanTables(p.Qf) {
		tab, _ := cat.Table(tn)
		if !tab.Class.IsMetadata() {
			t.Fatalf("actual-data table %s inside Qf", tn)
		}
	}
	qfTabs := strings.Join(scanTables(p.Qf), ",")
	if !strings.Contains(qfTabs, "F") || !strings.Contains(qfTabs, "S") {
		t.Fatalf("Qf tables = %s", qfTabs)
	}
	if all := scanTables(p.Root); len(all) != 3 {
		t.Fatalf("plan tables = %v", all)
	}
	if !contains(p.Root, p.Qf) {
		t.Fatal("Qf not part of the plan")
	}
	if err := plan.Validate(p.Graph, p.Order); err != nil {
		t.Fatal(err)
	}
	if d := scanOf(p.Root, "D"); d == nil || d.Filter == nil {
		t.Fatal("selection on D not pushed down")
	}
	if got := plan.Render(p.Root, p.Qf); !strings.Contains(got, "[Qf]") {
		t.Fatalf("render lacks Qf marker:\n%s", got)
	}
	if len(p.RuleLog) == 0 {
		t.Fatal("empty rule log after optimization")
	}
}

func TestOptimizeQuery2(t *testing.T) {
	p := compile(t, query2(), opt.Default())
	if p.Type() != 5 {
		t.Fatalf("query 2 type = T%d, want T5", p.Type())
	}
	qf := scanTables(p.Qf)
	if len(qf) != 3 {
		t.Fatalf("Qf tables = %v", qf)
	}
	for _, tn := range qf {
		if tn == "D" {
			t.Fatal("D inside Qf")
		}
	}
	if err := plan.Validate(p.Graph, p.Order); err != nil {
		t.Fatal(err)
	}
}

// Golden snapshots: the optimized tree of Query 1 under the full
// pipeline and with each rule individually disabled. The snapshots pin
// the shape every rule contributes, so an accidental regression in one
// rule changes exactly its snapshot.
func TestGoldenPlansPerRule(t *testing.T) {
	cases := []struct {
		name    string
		opts    opt.Options
		want    []string // substrings that must appear in the rendering
		wantNot []string // substrings that must not
	}{
		{
			name: "all-rules",
			opts: opt.Default(),
			want: []string{
				"[Qf] join(",                        // Qf marked on the metadata join
				"scan(F cols=3/9",                   // prunecols narrowed F (station, channel, file_id)
				"scan(S cols=4/6",                   // prunecols narrowed S
				"S.end_time > '2010-01-12T22:15:00", // rangeinfer derived the segment bound
				"scan(D cols=4/5",                   // prunecols dropped D.window_ts
			},
		},
		{
			name:    "no-joinorder",
			opts:    opt.Disable(opt.RuleJoinOrder),
			want:    []string{"scan(S cols=4/6"},
			wantNot: []string{"[Qf]"},
		},
		{
			name: "no-pushdown",
			opts: opt.Disable(opt.RulePushdown),
			// The original conjuncts stay residual, but rangeinfer is an
			// independent toggle: its (new, inferred) predicates still
			// land on the S scan.
			want:    []string{"select(", "scan(S cols=4/6 | (S.end_time >"},
			wantNot: []string{"scan(F cols=3/9 | ", "scan(D cols=4/5 | "},
		},
		{
			name:    "no-rangeinfer",
			opts:    opt.Disable(opt.RuleRangeInfer),
			want:    []string{"[Qf]"},
			wantNot: []string{"S.end_time >"},
		},
		{
			name:    "no-prunecols",
			opts:    opt.Disable(opt.RulePruneCols),
			want:    []string{"[Qf]", "S.end_time >"},
			wantNot: []string{"cols="},
		},
		{
			name: "all-disabled",
			opts: opt.Disable("all"),
			want: []string{"select(", "join("},
			wantNot: []string{
				"[Qf]", "cols=", "S.end_time >",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := compile(t, query1(), tc.opts)
			got := plan.Render(p.Root, p.Qf)
			for _, w := range tc.want {
				if !strings.Contains(got, w) {
					t.Errorf("rendering lacks %q:\n%s", w, got)
				}
			}
			for _, w := range tc.wantNot {
				if strings.Contains(got, w) {
					t.Errorf("rendering unexpectedly contains %q:\n%s", w, got)
				}
			}
		})
	}
}

func TestRuleLogReflectsDisabledRules(t *testing.T) {
	p := compile(t, query1(), opt.Disable(opt.RuleRangeInfer, opt.RulePruneCols))
	log := strings.Join(p.RuleLog, "\n")
	if strings.Contains(log, opt.RuleRangeInfer) || strings.Contains(log, opt.RulePruneCols) {
		t.Fatalf("disabled rules present in log:\n%s", log)
	}
	for _, want := range []string{opt.RuleConstFold, opt.RulePushdown, opt.RuleJoinOrder} {
		if !strings.Contains(log, want) {
			t.Fatalf("rule %s missing from log:\n%s", want, log)
		}
	}
}

func TestRangeInferenceDerivesSegmentPredicates(t *testing.T) {
	p := compile(t, query1(), opt.Default())
	s := scanOf(p.Root, "S")
	if s == nil || s.Filter == nil {
		t.Fatal("no inferred predicate on S")
	}
	repr := s.Filter.String()
	if !strings.Contains(repr, "S.end_time >") || !strings.Contains(repr, "S.start_time <=") {
		t.Fatalf("inferred = %s", repr)
	}
	for _, v := range p.Graph.Verts {
		if v.Table == "S" && !v.Filtered {
			t.Fatal("S not marked filtered after inference")
		}
	}
}

func TestEqualityInferenceDerivesBothBounds(t *testing.T) {
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.ViewData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.Str("ISK")),
			expr.NewCmp(expr.EQ, expr.Col("D.sample_time"), expr.Time(12345)),
		}),
	}
	p := compile(t, q, opt.Default())
	s := scanOf(p.Root, "S")
	if s == nil || s.Filter == nil {
		t.Fatal("no inferred predicate on S")
	}
	repr := s.Filter.String()
	if !strings.Contains(repr, "S.end_time >") || !strings.Contains(repr, "S.start_time <=") {
		t.Fatalf("point lookup should bound both sides, got %s", repr)
	}
}

// Parameterized predicates infer parameterized metadata bounds: the
// inferred conjunct references the same ordinal.
func TestRangeInferenceThroughParameters(t *testing.T) {
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.ViewData,
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("F.station"), expr.NewParam(0)),
			expr.NewCmp(expr.GE, expr.Col("D.sample_time"), expr.NewParam(1)),
		}),
	}
	p := compile(t, q, opt.Default())
	s := scanOf(p.Root, "S")
	if s == nil || s.Filter == nil {
		t.Fatal("no inferred predicate on S")
	}
	if got := s.Filter.String(); !strings.Contains(got, "S.end_time > ?2") {
		t.Fatalf("inferred = %s", got)
	}
	if p.NumParams != 2 {
		t.Fatalf("NumParams = %d", p.NumParams)
	}
}

func TestInferenceSkippedWhenTablesAbsent(t *testing.T) {
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.TableD,
		Where:  expr.NewCmp(expr.GT, expr.Col("sample_time"), expr.Time(5)),
	}
	p := compile(t, q, opt.Default())
	for _, tab := range scanTables(p.Root) {
		if tab == "S" {
			t.Fatal("inference dragged S into a D-only query")
		}
	}
}

func TestConstFoldSimplifiesConjuncts(t *testing.T) {
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   "F",
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.GT, expr.Int(2), expr.Int(1)), // folds to TRUE and disappears
			expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("ISK")),
			expr.NewCmp(expr.GT, expr.Col("file_id"), expr.NewArith(expr.Add, expr.Int(1), expr.Int(2))),
		}),
	}
	p := compile(t, q, opt.Default())
	got := plan.Render(p.Root, p.Qf)
	if strings.Contains(got, "2 > 1") {
		t.Fatalf("tautology survived:\n%s", got)
	}
	if !strings.Contains(got, "F.file_id > 3") {
		t.Fatalf("arithmetic not folded:\n%s", got)
	}
}

func TestIndexKeyRecognition(t *testing.T) {
	cat := seismic.NewCatalog()
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   "F",
		Where: expr.Conjoin([]expr.Expr{
			expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("ISK")),
			expr.NewCmp(expr.EQ, expr.Col("channel"), expr.Str("HHZ")),
			expr.NewCmp(expr.EQ, expr.Col("uri"), expr.Str("x")),
		}),
	}
	p, err := plan.Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &opt.Context{
		Catalog:     cat,
		MetaIndexes: map[string][][]string{"F": {{"station", "channel"}}},
	}
	p, err = opt.Optimize(ctx, p, opt.Default())
	if err != nil {
		t.Fatal(err)
	}
	s := scanOf(p.Root, "F")
	if s == nil || s.Index == nil {
		t.Fatal("index key not recognized")
	}
	if len(s.Index.Key) != 2 || s.Index.Residual == nil {
		t.Fatalf("hint = %+v", s.Index)
	}
	// The filter survives as the fallback access path.
	if s.Filter == nil {
		t.Fatal("filter dropped alongside the hint")
	}
	// Partial key: no recognition.
	q2 := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   "F",
		Where:  expr.NewCmp(expr.EQ, expr.Col("station"), expr.Str("ISK")),
	}
	p2, err := plan.Build(cat, q2)
	if err != nil {
		t.Fatal(err)
	}
	if p2, err = opt.Optimize(ctx, p2, opt.Default()); err != nil {
		t.Fatal(err)
	}
	if s2 := scanOf(p2.Root, "F"); s2 == nil || s2.Index != nil {
		t.Fatal("partial key must not be recognized")
	}
}

func TestPruneKeepsChunkKeyColumns(t *testing.T) {
	// Query 1 references no S columns directly, yet the Qf chunk
	// selection needs S.file_id: pruning must keep it.
	p := compile(t, query1(), opt.Default())
	s := scanOf(p.Root, "S")
	if s == nil {
		t.Fatal("no S scan")
	}
	found := false
	for _, n := range s.Names() {
		if n == "S.file_id" {
			found = true
		}
	}
	if !found {
		t.Fatalf("S scan lost the chunk key: %v", s.Names())
	}
}

func TestOptionsParsing(t *testing.T) {
	o := opt.ParseDisable("joinorder, PRUNECOLS")
	if !o.Disabled(opt.RuleJoinOrder) || !o.Disabled(opt.RulePruneCols) {
		t.Fatal("csv parsing")
	}
	if o.Disabled(opt.RulePushdown) {
		t.Fatal("pushdown should stay enabled")
	}
	all := opt.ParseDisable("all")
	for _, r := range opt.Rules() {
		if !all.Disabled(r) {
			t.Fatalf("all did not disable %s", r)
		}
	}
	if opt.ParseDisable("").Disabled(opt.RulePushdown) {
		t.Fatal("empty disables nothing")
	}
}

// The soundness grid of the old plan-package inference test, against
// the rule's current home.
func TestInferenceSoundness(t *testing.T) {
	cat := seismic.NewCatalog()
	for _, tc := range []struct {
		op   expr.CmpOp
		want string
	}{
		{expr.GT, "S.end_time >"},
		{expr.GE, "S.end_time >"},
		{expr.LT, "S.start_time <="},
		{expr.LE, "S.start_time <="},
	} {
		q := &plan.Query{
			Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
			From:   seismic.ViewData,
			Where:  expr.NewCmp(tc.op, expr.Col("D.sample_time"), expr.Time(100)),
		}
		p, err := plan.Build(cat, q)
		if err != nil {
			t.Fatal(err)
		}
		if p, err = opt.Optimize(&opt.Context{Catalog: cat}, p, opt.Default()); err != nil {
			t.Fatal(err)
		}
		s := scanOf(p.Root, "S")
		if s == nil || s.Filter == nil {
			t.Fatalf("%v inferred nothing", tc.op)
		}
		if got := s.Filter.String(); !strings.Contains(got, tc.want) {
			t.Fatalf("%v inferred %s, want %s", tc.op, got, tc.want)
		}
	}
	// A predicate on a non-mapped column infers nothing.
	q := &plan.Query{
		Select: []plan.SelectItem{{Agg: plan.AggCount, Alias: "n"}},
		From:   seismic.ViewData,
		Where:  expr.NewCmp(expr.GT, expr.Col("D.sample_value"), expr.Float(1)),
	}
	p, err := plan.Build(cat, q)
	if err != nil {
		t.Fatal(err)
	}
	if p, err = opt.Optimize(&opt.Context{Catalog: cat}, p, opt.Default()); err != nil {
		t.Fatal(err)
	}
	if s := scanOf(p.Root, "S"); s != nil && s.Filter != nil {
		t.Fatalf("value predicate inferred %s", s.Filter)
	}
}

// topkQuery is query2 with an ORDER BY + LIMIT tail: the shape the
// topk rule folds into a bounded-heap operator.
func topkQuery(limit int) *plan.Query {
	q := query2()
	q.OrderBy = []plan.OrderKey{{Col: "D.sample_value", Desc: true}, {Col: "D.sample_time"}}
	q.Limit = limit
	return q
}

func TestTopKFoldsSortLimit(t *testing.T) {
	p := compile(t, topkQuery(10), opt.Options{})
	tk, ok := p.Root.(*plan.TopK)
	if !ok {
		t.Fatalf("root = %T (%s), want *plan.TopK", p.Root, p.Root.String())
	}
	if tk.N != 10 || len(tk.Keys) != 2 || !tk.Keys[0].Desc || tk.Keys[1].Desc {
		t.Fatalf("topk node keeps keys/limit wrong: %+v", tk)
	}
	if _, under := tk.In.(*plan.Sort); under {
		t.Fatal("sort survived under the topk node")
	}
	log := strings.Join(p.RuleLog, "\n")
	if !strings.Contains(log, opt.RuleTopK) {
		t.Fatalf("topk rule missing from log:\n%s", log)
	}
}

func TestTopKDisabledKeepsSortLimit(t *testing.T) {
	p := compile(t, topkQuery(10), opt.Disable(opt.RuleTopK))
	lim, ok := p.Root.(*plan.Limit)
	if !ok {
		t.Fatalf("root = %T, want *plan.Limit with topk disabled", p.Root)
	}
	if _, ok := lim.In.(*plan.Sort); !ok {
		t.Fatalf("limit input = %T, want *plan.Sort", lim.In)
	}
	if strings.Contains(strings.Join(p.RuleLog, "\n"), opt.RuleTopK) {
		t.Fatal("disabled topk rule present in rule log")
	}
}

func TestTopKSkipsHugeLimits(t *testing.T) {
	// Beyond the eligibility bound the bounded heap would cost more
	// than the sort it replaces; the pair must survive untouched.
	p := compile(t, topkQuery(1<<20), opt.Options{})
	if _, ok := p.Root.(*plan.Limit); !ok {
		t.Fatalf("root = %T, want *plan.Limit for a %d-row limit", p.Root, 1<<20)
	}
}
