package opt

import (
	"sommelier/internal/expr"
	"sommelier/internal/storage"
)

// fold returns e with constant sub-expressions evaluated at compile
// time, and whether anything changed. Unchanged subtrees are shared,
// never copied; folding never alters run-time semantics (anything with
// mixed or unexpected kinds is left for the executor to evaluate or
// reject).
func fold(e expr.Expr) (expr.Expr, bool) {
	switch e := e.(type) {
	case *expr.Arith:
		l, lc := fold(e.L)
		r, rc := fold(e.R)
		if lk, lok := l.(*expr.Const); lok {
			if rk, rok := r.(*expr.Const); rok {
				if k, ok := foldArith(e.Op, lk, rk); ok {
					return k, true
				}
			}
		}
		if lc || rc {
			return expr.NewArith(e.Op, l, r), true
		}
		return e, false
	case *expr.Cmp:
		l, lc := fold(e.L)
		r, rc := fold(e.R)
		if lk, lok := l.(*expr.Const); lok {
			if rk, rok := r.(*expr.Const); rok {
				if b, ok := foldCmp(e.Op, lk, rk); ok {
					return expr.Bool(b), true
				}
			}
		}
		if lc || rc {
			return expr.NewCmp(e.Op, l, r), true
		}
		return e, false
	case *expr.And:
		l, lc := fold(e.L)
		r, rc := fold(e.R)
		if b, ok := boolConst(l); ok {
			if !b {
				return expr.Bool(false), true
			}
			return r, true
		}
		if b, ok := boolConst(r); ok {
			if !b {
				return expr.Bool(false), true
			}
			return l, true
		}
		if lc || rc {
			return expr.NewAnd(l, r), true
		}
		return e, false
	case *expr.Or:
		l, lc := fold(e.L)
		r, rc := fold(e.R)
		if b, ok := boolConst(l); ok {
			if b {
				return expr.Bool(true), true
			}
			return r, true
		}
		if b, ok := boolConst(r); ok {
			if b {
				return expr.Bool(true), true
			}
			return l, true
		}
		if lc || rc {
			return expr.NewOr(l, r), true
		}
		return e, false
	case *expr.Not:
		in, c := fold(e.E)
		if b, ok := boolConst(in); ok {
			return expr.Bool(!b), true
		}
		if c {
			return expr.NewNot(in), true
		}
		return e, false
	default:
		return e, false
	}
}

func boolConst(e expr.Expr) (bool, bool) {
	if k, ok := e.(*expr.Const); ok && k.K == storage.KindBool {
		return k.B, true
	}
	return false, false
}

// foldArith evaluates a constant arithmetic node over int64/float64
// operands, mirroring the executor's promotion rules: division is
// always float, so a constant division by zero folds to the same
// ±Inf/NaN the run-time float kernel would produce.
func foldArith(op expr.ArithOp, l, r *expr.Const) (*expr.Const, bool) {
	num := func(k *expr.Const) (float64, bool, bool) { // value, isFloat, ok
		switch k.K {
		case storage.KindInt64:
			return float64(k.I), false, true
		case storage.KindFloat64:
			return k.F, true, true
		}
		return 0, false, false
	}
	lv, lf, lok := num(l)
	rv, rf, rok := num(r)
	if !lok || !rok {
		return nil, false
	}
	if op == expr.Div || lf || rf {
		var out float64
		switch op {
		case expr.Add:
			out = lv + rv
		case expr.Sub:
			out = lv - rv
		case expr.Mul:
			out = lv * rv
		case expr.Div:
			out = lv / rv
		}
		return expr.Float(out), true
	}
	switch op {
	case expr.Add:
		return expr.Int(l.I + r.I), true
	case expr.Sub:
		return expr.Int(l.I - r.I), true
	case expr.Mul:
		return expr.Int(l.I * r.I), true
	}
	return nil, false
}

// foldCmp evaluates a constant comparison when both operands share a
// comparable kind class; mixed classes (e.g. a string that would
// coerce to a timestamp against a column) are left alone.
func foldCmp(op expr.CmpOp, l, r *expr.Const) (bool, bool) {
	isNum := func(k storage.Kind) bool { return k == storage.KindInt64 || k == storage.KindFloat64 }
	switch {
	case isNum(l.K) && isNum(r.K):
		lv, rv := constFloat(l), constFloat(r)
		return cmpOrd(op, lv, rv), true
	case l.K == storage.KindString && r.K == storage.KindString:
		return cmpOrd(op, l.S, r.S), true
	case (l.K == storage.KindTime || l.K == storage.KindInt64) && (r.K == storage.KindTime || r.K == storage.KindInt64):
		return cmpOrd(op, l.I, r.I), true
	case l.K == storage.KindBool && r.K == storage.KindBool:
		switch op {
		case expr.EQ:
			return l.B == r.B, true
		case expr.NE:
			return l.B != r.B, true
		}
	}
	return false, false
}

func constFloat(k *expr.Const) float64 {
	if k.K == storage.KindFloat64 {
		return k.F
	}
	return float64(k.I)
}

func cmpOrd[T int64 | float64 | string](op expr.CmpOp, l, r T) bool {
	switch op {
	case expr.EQ:
		return l == r
	case expr.NE:
		return l != r
	case expr.LT:
		return l < r
	case expr.LE:
		return l <= r
	case expr.GT:
		return l > r
	case expr.GE:
		return l >= r
	}
	return false
}
