// Package opt is the rule-based logical optimizer: an ordered pipeline
// of rewrite rules over the plan.Node IR produced by plan.Build. Each
// rule is individually toggleable (Options) and records what it did in
// the plan's rule log, so EXPLAIN can show exactly which rewrites fired
// and the ablation experiments can measure each rule's effect.
//
// The pipeline, in order:
//
//	constfold   fold constant sub-expressions in WHERE conjuncts
//	pushdown    move single-table conjuncts into their scans
//	rangeinfer  infer metadata range predicates from actual-data
//	            predicates through the catalog's range mappings
//	joinorder   the paper's R1–R4 colored-graph join ordering, plus
//	            the Qf/Qs split (marking the metadata branch stage
//	            one evaluates to select chunks)
//	prunecols   narrow every scan to the columns the query references
//	            (chunk scans then only carry referenced columns)
//	indexkey    recognize filters that pin all columns of a hash
//	            index and annotate the scan with the key
//
// Optimize never changes what a query returns — only how it executes;
// the engine's differential tests assert this per rule across every
// loading approach. A fully optimized plan is immutable and safe to
// share: the compiled-plan cache hands one *plan.Plan to any number of
// concurrent executions.
package opt

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/storage"
	"sommelier/internal/table"
)

// Rule names, in pipeline order.
const (
	RuleConstFold  = "constfold"
	RulePushdown   = "pushdown"
	RuleRangeInfer = "rangeinfer"
	RuleJoinOrder  = "joinorder"
	RulePruneCols  = "prunecols"
	RuleIndexKey   = "indexkey"
	RuleFuse       = "fuse"
	RuleTopK       = "topk"
)

// Rules lists every rule in pipeline order.
func Rules() []string {
	return []string{RuleConstFold, RulePushdown, RuleRangeInfer, RuleJoinOrder, RulePruneCols, RuleIndexKey, RuleFuse, RuleTopK}
}

// EnvDisable is the environment variable listing rules to disable
// (comma-separated rule names, or "all").
const EnvDisable = "SOMMELIER_OPT_DISABLE"

// Options selects which rules run.
type Options struct {
	disabled map[string]bool
}

// Default enables every rule.
func Default() Options { return Options{} }

// Disable returns options with the named rules off; the name "all"
// disables every rule.
func Disable(names ...string) Options {
	o := Options{disabled: make(map[string]bool, len(names))}
	for _, n := range names {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if strings.EqualFold(n, "all") {
			for _, r := range Rules() {
				o.disabled[r] = true
			}
			continue
		}
		o.disabled[strings.ToLower(n)] = true
	}
	return o
}

// ParseDisable parses a comma-separated disable list ("", "all", or
// rule names) into Options.
func ParseDisable(s string) Options {
	if strings.TrimSpace(s) == "" {
		return Default()
	}
	return Disable(strings.Split(s, ",")...)
}

// FromEnv reads the SOMMELIER_OPT_DISABLE environment variable.
func FromEnv() Options { return ParseDisable(os.Getenv(EnvDisable)) }

// Disabled reports whether the named rule is off.
func (o Options) Disabled(name string) bool { return o.disabled[name] }

// Context carries what the rules need to know about the execution
// environment beyond the catalog.
type Context struct {
	Catalog *table.Catalog
	// MetaIndexes describes the hash indexes available per metadata
	// table: each entry is one index's key columns (unqualified, in key
	// order). Nil when the environment has no index access paths.
	MetaIndexes map[string][][]string
}

// Optimize runs the rule pipeline over a freshly Built plan, rewriting
// its operator tree in place and recording the applied rules in
// p.RuleLog. The same plan must not be executed concurrently with its
// optimization; afterwards it is immutable and freely shareable.
func Optimize(ctx *Context, p *plan.Plan, opts Options) (*plan.Plan, error) {
	if ctx == nil || ctx.Catalog == nil {
		return nil, fmt.Errorf("opt: nil context or catalog")
	}
	cat := ctx.Catalog
	var log []string
	residual := append([]expr.Expr(nil), p.Conjuncts...)

	// constfold: fold constant sub-expressions conjunct by conjunct;
	// conjuncts that fold to TRUE disappear entirely.
	if !opts.Disabled(RuleConstFold) {
		folded, kept := 0, residual[:0:0]
		for _, c := range residual {
			fc, changed := fold(c)
			if changed {
				folded++
			}
			if k, ok := fc.(*expr.Const); ok && k.K == storage.KindBool && k.B {
				continue
			}
			kept = append(kept, fc)
		}
		residual = kept
		log = append(log, fmt.Sprintf("%s: folded %d conjunct(s)", RuleConstFold, folded))
	}

	// pushdown: single-table conjuncts move into their scans.
	pushdown := make(map[string][]expr.Expr)
	if !opts.Disabled(RulePushdown) {
		moved, kept := 0, residual[:0:0]
		for _, c := range residual {
			if tabs := expr.Tables(c); len(tabs) == 1 {
				pushdown[tabs[0]] = append(pushdown[tabs[0]], c)
				moved++
			} else {
				kept = append(kept, c)
			}
		}
		residual = kept
		log = append(log, fmt.Sprintf("%s: pushed %d predicate(s) into scans", RulePushdown, moved))
	}

	// rangeinfer: predicate inference through range mappings — a range
	// predicate on an actual-data column whose per-chunk values are
	// bounded by metadata columns implies a metadata predicate, letting
	// the Qf branch prune chunks. Candidate conjuncts come from the
	// pushdown map and from the residual list, so the rule works with
	// pushdown disabled too (the rules are independent toggles); the
	// inferred predicates are new, and land directly on their metadata
	// scan.
	if !opts.Disabled(RuleRangeInfer) {
		inferred := 0
		inTabs := func(name string) bool {
			for _, tn := range p.FromTables {
				if tn == name {
					return true
				}
			}
			return false
		}
		candidates := func(adTab string) []expr.Expr {
			out := append([]expr.Expr(nil), pushdown[adTab]...)
			for _, c := range residual {
				if tabs := expr.Tables(c); len(tabs) == 1 && tabs[0] == adTab {
					out = append(out, c)
				}
			}
			return out
		}
		for _, m := range cat.RangeMappings() {
			adTab, _, err := table.SplitQualified(m.ADColumn)
			if err != nil {
				return nil, err
			}
			loTab, _, err := table.SplitQualified(m.MdLo)
			if err != nil {
				return nil, err
			}
			hiTab, _, err := table.SplitQualified(m.MdHi)
			if err != nil {
				return nil, err
			}
			if !inTabs(adTab) || !inTabs(loTab) || !inTabs(hiTab) {
				continue
			}
			for _, c := range candidates(adTab) {
				for _, inf := range inferRangePreds(m, c) {
					mdTab := expr.Tables(inf)[0]
					pushdown[mdTab] = append(pushdown[mdTab], inf)
					inferred++
				}
			}
		}
		log = append(log, fmt.Sprintf("%s: inferred %d metadata predicate(s)", RuleRangeInfer, inferred))
	}

	// joinorder: the colored query graph and the R1–R4 order, which
	// also determines the Qf/Qs split point.
	var ord *plan.Order
	if !opts.Disabled(RuleJoinOrder) {
		graph, err := buildGraph(cat, p, pushdown)
		if err != nil {
			return nil, err
		}
		o, err := plan.OrderJoins(graph)
		if err != nil {
			return nil, err
		}
		p.Graph, p.Order = graph, o
		ord = o
		var reds []string
		for _, st := range o.Steps[:o.RedSteps] {
			reds = append(reds, graph.Verts[st.Verts[0]].Table)
		}
		if o.RedSteps > 0 {
			log = append(log, fmt.Sprintf("%s: %d step(s), Qf over [%s]", RuleJoinOrder, len(o.Steps), strings.Join(reds, " ")))
		} else {
			log = append(log, fmt.Sprintf("%s: %d step(s), no metadata branch", RuleJoinOrder, len(o.Steps)))
		}
	} else {
		p.Graph, p.Order = nil, nil
	}

	// prunecols: narrow every scan to the referenced columns.
	var prune map[string][]int
	if !opts.Disabled(RulePruneCols) {
		prune = pruneColumns(cat, p, pushdown, residual)
		var notes []string
		for _, tn := range p.FromTables {
			if idxs, ok := prune[tn]; ok {
				t, _ := cat.Table(tn)
				notes = append(notes, fmt.Sprintf("%s %d→%d", tn, t.Schema.Width(), len(idxs)))
			}
		}
		if len(notes) == 0 {
			notes = append(notes, "nothing to prune")
		}
		log = append(log, fmt.Sprintf("%s: %s", RulePruneCols, strings.Join(notes, ", ")))
	}

	pd := make(map[string]expr.Expr, len(pushdown))
	for tn, cs := range pushdown {
		pd[tn] = expr.Conjoin(cs)
	}
	p.Qf = nil
	root, err := plan.Assemble(cat, p, pd, prune, ord, residual)
	if err != nil {
		return nil, err
	}
	p.Root = root

	// indexkey: annotate metadata scans whose filter pins all columns
	// of an available hash index.
	if !opts.Disabled(RuleIndexKey) {
		hits := annotateIndexKeys(ctx, p.Root)
		log = append(log, fmt.Sprintf("%s: %d scan(s) annotated", RuleIndexKey, hits))
	}

	// fuse: collapse Project → (Select →) Scan chains into single fused
	// pipeline nodes (after indexkey, so annotated scans keep their
	// access path).
	if !opts.Disabled(RuleFuse) {
		newRoot, fused := fusePipelines(p, p.Root)
		p.Root = newRoot
		log = append(log, fmt.Sprintf("%s: %d chain(s) fused", RuleFuse, fused))
	}

	// topk: fold ORDER BY + LIMIT (a Limit directly over a Sort) into a
	// bounded top-k selection, so the sort never materializes more than
	// k rows — the pushdown that keeps streamed LIMIT queries at O(k)
	// memory.
	if !opts.Disabled(RuleTopK) {
		if lim, ok := p.Root.(*plan.Limit); ok && lim.N > 0 && lim.N <= topKMaxN {
			if srt, ok := lim.In.(*plan.Sort); ok {
				p.Root = &plan.TopK{In: srt.In, Keys: srt.Keys, N: lim.N}
				log = append(log, fmt.Sprintf("%s: fused sort+limit into top-%d", RuleTopK, lim.N))
			}
		}
	}

	p.RuleLog = log
	return p, nil
}

// topKMaxN bounds the limits eligible for top-k pushdown: beyond it
// the O(k) candidate buffers stop being "bounded" in any useful sense
// and a full sort is no worse.
const topKMaxN = 1 << 16

// buildGraph constructs the colored query graph from the resolved plan
// and the pushdown outcome (filtered vertices are preferred earlier by
// the greedy order).
func buildGraph(cat *table.Catalog, p *plan.Plan, pushdown map[string][]expr.Expr) (*plan.Graph, error) {
	graph := &plan.Graph{}
	vertIdx := make(map[string]int, len(p.FromTables))
	for _, tn := range p.FromTables {
		t, ok := cat.Table(tn)
		if !ok {
			return nil, fmt.Errorf("opt: unknown table %q", tn)
		}
		vertIdx[tn] = len(graph.Verts)
		graph.Verts = append(graph.Verts, plan.Vertex{
			Table:    tn,
			Class:    t.Class,
			Filtered: len(pushdown[tn]) > 0,
		})
	}
	for _, j := range p.BaseJoins {
		lt, _, err := table.SplitQualified(j.Left)
		if err != nil {
			return nil, err
		}
		rt, _, err := table.SplitQualified(j.Right)
		if err != nil {
			return nil, err
		}
		a, aok := vertIdx[lt]
		b, bok := vertIdx[rt]
		if !aok || !bok {
			return nil, fmt.Errorf("opt: join %v references table outside FROM", j)
		}
		if a == b {
			return nil, fmt.Errorf("opt: self-join predicate %v not supported", j)
		}
		graph.Edges = append(graph.Edges, plan.GraphEdge{A: min(a, b), B: max(a, b), Pred: j})
	}
	return graph, nil
}

// pruneColumns computes, per FROM table, the schema column indexes the
// query actually references: output expressions, grouping and ordering
// keys, join predicates, pushed-down and residual filters — plus, when
// the plan touches actual data, every metadata column named like an
// actual-data table's chunk key (the stage-one chunk selection reads it
// from the Qf result). Tables where everything is referenced are absent
// from the map (no pruning).
func pruneColumns(cat *table.Catalog, p *plan.Plan, pushdown map[string][]expr.Expr, residual []expr.Expr) map[string][]int {
	needed := make(map[string]map[string]bool, len(p.FromTables))
	for _, tn := range p.FromTables {
		needed[tn] = make(map[string]bool)
	}
	addName := func(qn string) {
		tn, cn, err := table.SplitQualified(qn)
		if err != nil {
			return
		}
		if cols, ok := needed[tn]; ok {
			cols[cn] = true
		}
	}
	addExpr := func(e expr.Expr) {
		if e == nil {
			return
		}
		for _, c := range expr.Columns(e) {
			addName(c)
		}
	}
	for _, cs := range pushdown {
		for _, c := range cs {
			addExpr(c)
		}
	}
	for _, c := range residual {
		addExpr(c)
	}
	for _, j := range p.BaseJoins {
		addName(j.Left)
		addName(j.Right)
	}
	q := p.Spec
	for _, it := range q.Select {
		addExpr(it.Expr)
	}
	for _, g := range q.GroupBy {
		addName(g)
	}
	for _, k := range q.OrderBy {
		addName(k.Col)
	}
	// Chunk selection reads the chunk-key column of the metadata branch.
	if len(p.ADTables) > 0 {
		keys := make(map[string]bool)
		for _, tn := range p.ADTables {
			if t, ok := cat.Table(tn); ok && t.ChunkKey != "" {
				keys[t.ChunkKey] = true
			}
		}
		for _, tn := range p.FromTables {
			t, ok := cat.Table(tn)
			if !ok || !t.Class.IsMetadata() {
				continue
			}
			for k := range keys {
				if t.Schema.IndexOf(k) >= 0 {
					needed[tn][k] = true
				}
			}
		}
	}
	prune := make(map[string][]int)
	for _, tn := range p.FromTables {
		t, ok := cat.Table(tn)
		if !ok {
			continue
		}
		var kept []int
		for i, n := range t.Schema.Names() {
			if needed[tn][n] {
				kept = append(kept, i)
			}
		}
		if len(kept) == 0 {
			// A scan must emit at least one column (COUNT(*) needs the
			// cardinality); keep the narrowest-footprint first column.
			kept = []int{0}
		}
		if len(kept) == t.Schema.Width() {
			continue
		}
		sort.Ints(kept)
		prune[tn] = kept
	}
	return prune
}

// annotateIndexKeys walks the assembled tree and attaches an IndexHint
// to every metadata scan whose filter pins all columns of an available
// index with equality constants or parameters.
func annotateIndexKeys(ctx *Context, root plan.Node) int {
	if len(ctx.MetaIndexes) == 0 {
		return 0
	}
	hits := 0
	walkScans(root, func(sc *plan.Scan) {
		if sc.Filter == nil || sc.Index != nil {
			return
		}
		t, ok := ctx.Catalog.Table(sc.Table)
		if !ok || !t.Class.IsMetadata() {
			return
		}
		conjuncts := expr.Conjuncts(sc.Filter)
		for _, cols := range ctx.MetaIndexes[sc.Table] {
			if hint, ok := matchIndexKey(t, cols, conjuncts); ok {
				sc.Index = hint
				hits++
				return
			}
		}
	})
	return hits
}

// matchIndexKey extracts an index key from equality conjuncts covering
// all of cols, leaving the unused conjuncts as the residual filter.
func matchIndexKey(t *table.Table, cols []string, conjuncts []expr.Expr) (*plan.IndexHint, bool) {
	hint := &plan.IndexHint{Cols: cols}
	used := make([]bool, len(conjuncts))
	for _, col := range cols {
		colKind := t.Schema.KindOf(col)
		found := false
		for ci, c := range conjuncts {
			if used[ci] {
				continue
			}
			name, val, ok := eqOperand(c)
			if !ok || (name != col && name != t.Name+"."+col) {
				continue
			}
			if k, isConst := val.(*expr.Const); isConst {
				// The constant must be usable as this key part.
				switch colKind {
				case storage.KindInt64, storage.KindTime:
					if k.K != storage.KindInt64 && k.K != storage.KindTime {
						continue
					}
				case storage.KindString:
					if k.K != storage.KindString {
						continue
					}
				default:
					continue
				}
			}
			hint.Key = append(hint.Key, val)
			hint.Kinds = append(hint.Kinds, colKind)
			used[ci] = true
			found = true
			break
		}
		if !found {
			return nil, false
		}
	}
	var residual []expr.Expr
	for ci, c := range conjuncts {
		if !used[ci] {
			residual = append(residual, c)
		}
	}
	hint.Residual = expr.Conjoin(residual)
	return hint, true
}

// walkScans visits every Scan in the subtree.
func walkScans(n plan.Node, fn func(*plan.Scan)) {
	if s, ok := n.(*plan.Scan); ok {
		fn(s)
	}
	for _, c := range n.Children() {
		walkScans(c, fn)
	}
}

// eqOperand matches `col = v` (either direction) where v is a constant
// or a parameter.
func eqOperand(e expr.Expr) (col string, val expr.Expr, ok bool) {
	cmp, isCmp := e.(*expr.Cmp)
	if !isCmp || cmp.Op != expr.EQ {
		return "", nil, false
	}
	if cr, isCol := cmp.L.(*expr.ColRef); isCol && isValue(cmp.R) {
		return cr.Name, cmp.R, true
	}
	if cr, isCol := cmp.R.(*expr.ColRef); isCol && isValue(cmp.L) {
		return cr.Name, cmp.L, true
	}
	return "", nil, false
}

// rangeOperand matches an inequality between a column and a constant or
// parameter, with the operator normalized so the column is on the left.
func rangeOperand(e expr.Expr) (col string, op expr.CmpOp, val expr.Expr, ok bool) {
	cmp, isCmp := e.(*expr.Cmp)
	if !isCmp {
		return "", 0, nil, false
	}
	switch cmp.Op {
	case expr.LT, expr.LE, expr.GT, expr.GE:
	default:
		return "", 0, nil, false
	}
	if cr, isCol := cmp.L.(*expr.ColRef); isCol && isValue(cmp.R) {
		return cr.Name, cmp.Op, cmp.R, true
	}
	if cr, isCol := cmp.R.(*expr.ColRef); isCol && isValue(cmp.L) {
		return cr.Name, expr.FlipCmp(cmp.Op), cmp.L, true
	}
	return "", 0, nil, false
}

func isValue(e expr.Expr) bool {
	switch e.(type) {
	case *expr.Const, *expr.Param:
		return true
	}
	return false
}

// inferRangePreds derives metadata predicates from one conjunct over
// the mapped actual-data column. A chunk's values lie within [Lo, Hi),
// so:
//
//	ad >  v  or  ad >= v   implies   Hi >  v
//	ad <  v  or  ad <= v   implies   Lo <= v
//	ad =  v                implies   both
//
// v may be a constant or a parameter; an inferred predicate over a
// parameter references the same ordinal, so it resolves against the
// same argument at execution.
func inferRangePreds(m table.RangeMapping, c expr.Expr) []expr.Expr {
	var out []expr.Expr
	addHi := func(v expr.Expr) {
		out = append(out, expr.NewCmp(expr.GT, expr.Col(m.MdHi), expr.Clone(v)))
	}
	addLo := func(v expr.Expr) {
		out = append(out, expr.NewCmp(expr.LE, expr.Col(m.MdLo), expr.Clone(v)))
	}
	if col, v, ok := eqOperand(c); ok && col == m.ADColumn {
		addHi(v)
		addLo(v)
		return out
	}
	col, op, v, ok := rangeOperand(c)
	if !ok || col != m.ADColumn {
		return nil
	}
	switch op {
	case expr.GT, expr.GE:
		addHi(v)
	case expr.LT, expr.LE:
		addLo(v)
	}
	return out
}
