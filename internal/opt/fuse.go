package opt

// The fuse rule: collapse Project → (Select →) Scan chains into one
// plan.Fused node, realized by the executor as a single fused physical
// pipeline (physical.FusedPipeline) that evaluates the scan predicate,
// residual filters and projection expressions in one pass per batch —
// no intermediate batch exchange between the three operators, and
// pooled output memory. Fusion never changes the rows a query returns;
// the engine's differential suite runs with the rule disabled to prove
// it.

import (
	"sommelier/internal/expr"
	"sommelier/internal/plan"
	"sommelier/internal/storage"
)

// fusePipelines rewrites every fusable chain in the tree, returning the
// (possibly new) root and the number of chains fused. The Qf node and
// index-annotated scans are never fused: the Qf subtree is replayed as
// a result-scan in stage two, and index scans use a different access
// path entirely.
func fusePipelines(p *plan.Plan, n plan.Node) (plan.Node, int) {
	switch n := n.(type) {
	case *plan.Project:
		if f, ok := tryFuse(p, n); ok {
			return f, 1
		}
		in, c := fusePipelines(p, n.In)
		n.In = in
		return n, c
	case *plan.Sort:
		in, c := fusePipelines(p, n.In)
		n.In = in
		return n, c
	case *plan.Limit:
		in, c := fusePipelines(p, n.In)
		n.In = in
		return n, c
	case *plan.Select:
		in, c := fusePipelines(p, n.In)
		n.In = in
		return n, c
	case *plan.Aggregate:
		in, c := fusePipelines(p, n.In)
		n.In = in
		return n, c
	case *plan.Join:
		l, cl := fusePipelines(p, n.L)
		r, cr := fusePipelines(p, n.R)
		n.L, n.R = l, r
		return n, cl + cr
	}
	return n, 0
}

// tryFuse matches Project → (Select →)* Scan with a fixed-width output
// schema, off the materialized Qf branch and without an index
// annotation. The Qf guard applies only to two-stage plans: those
// replay the Qf node as a result-scan in stage two, so the node must
// survive as-is. Single-stage (metadata-only) plans mark a Qf for
// rendering but never materialize it, and fuse freely.
func tryFuse(p *plan.Plan, pr *plan.Project) (plan.Node, bool) {
	isQf := func(n plan.Node) bool { return p.TwoStage && n == p.Qf }
	if isQf(pr) {
		return nil, false
	}
	var residual []expr.Expr
	cur := pr.In
	for {
		sel, ok := cur.(*plan.Select)
		if !ok {
			break
		}
		if isQf(sel) {
			return nil, false
		}
		residual = append(residual, sel.Pred)
		cur = sel.In
	}
	sc, ok := cur.(*plan.Scan)
	if !ok || isQf(sc) || sc.Index != nil {
		return nil, false
	}
	for _, c := range pr.Cols {
		switch c.Kind {
		case storage.KindInt64, storage.KindFloat64, storage.KindBool, storage.KindTime:
		default:
			return nil, false // dictionary strings don't coalesce well
		}
	}
	return &plan.Fused{Scan: sc, Residual: expr.Conjoin(residual), Cols: pr.Cols}, true
}
