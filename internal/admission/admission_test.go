package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmitReleaseBasic(t *testing.T) {
	c := New(Config{Floor: 2, Ceiling: 2, Initial: 2})
	tk1, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tk2, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := c.Snapshot()
	if st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("snapshot = %+v", st)
	}
	tk1.Done(false)
	tk2.Done(false)
	tk2.Done(false) // idempotent
	if st := c.Snapshot(); st.InFlight != 0 {
		t.Fatalf("in-flight after done = %d", st.InFlight)
	}
}

func TestQueueFIFOAndDispatch(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 1, Initial: 1, MaxQueue: 8})
	tk, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Stagger enqueue so FIFO order is deterministic.
			time.Sleep(time.Duration(i) * 30 * time.Millisecond)
			tki, err := c.Admit(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			tki.Done(false)
		}(i)
	}
	close(start)
	time.Sleep(150 * time.Millisecond)
	tk.Done(false)
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("dispatch order = %v, want [0 1 2]", order)
	}
}

func TestQueueFullSheds(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 1, Initial: 1, MaxQueue: 1})
	tk, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Done(false)
	queued := make(chan error, 1)
	go func() {
		tkq, err := c.Admit(context.Background())
		if err == nil {
			tkq.Done(false)
		}
		queued <- err
	}()
	// Wait for the goroutine above to occupy the single queue slot.
	deadline := time.Now().Add(time.Second)
	for c.Snapshot().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, err = c.Admit(context.Background())
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	if rej.Reason != ReasonQueueFull {
		t.Fatalf("reason = %q", rej.Reason)
	}
	if rej.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", rej.RetryAfter)
	}
	if c.Snapshot().ShedQueueFull != 1 {
		t.Fatalf("ShedQueueFull = %d", c.Snapshot().ShedQueueFull)
	}
	tk.Done(false)
	if err := <-queued; err != nil {
		t.Fatalf("queued request failed: %v", err)
	}
}

func TestDeadlineUnmeetableShedsUpFront(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 1, Initial: 1, MaxQueue: 100})
	// Seed the service-time estimate: one slow completion.
	tk, _ := c.Admit(context.Background())
	time.Sleep(50 * time.Millisecond)
	tk.Done(false)
	// Occupy the slot and some queue.
	hold, _ := c.Admit(context.Background())
	defer hold.Done(false)
	for i := 0; i < 4; i++ {
		go func() {
			if tkq, err := c.Admit(context.Background()); err == nil {
				tkq.Done(false)
			}
		}()
	}
	deadline := time.Now().Add(time.Second)
	for c.Snapshot().Queued < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// Expected wait is now ≥ 5 × ~50ms; a 1ms deadline cannot make it.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := c.Admit(ctx)
	var rej *RejectError
	if !errors.As(err, &rej) {
		t.Fatalf("err = %v, want *RejectError", err)
	}
	if rej.Reason != ReasonDeadline {
		t.Fatalf("reason = %q", rej.Reason)
	}
	if c.Snapshot().ShedDeadline != 1 {
		t.Fatalf("ShedDeadline = %d", c.Snapshot().ShedDeadline)
	}
}

func TestExpiredInQueueNeverDispatched(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 1, Initial: 1, MaxQueue: 8})
	tk, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx)
		errCh <- err
	}()
	deadline := time.Now().Add(time.Second)
	for c.Snapshot().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	tk.Done(false)
	st := c.Snapshot()
	if st.ExpiredInQueue != 1 {
		t.Fatalf("ExpiredInQueue = %d", st.ExpiredInQueue)
	}
	// The dead waiter must not have consumed the freed slot.
	if st.InFlight != 0 {
		t.Fatalf("InFlight = %d, want 0", st.InFlight)
	}
}

func TestAIMDDecreasesUnderSlowness(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 16, Initial: 8})
	// Seed a fast baseline.
	for i := 0; i < 20; i++ {
		c.mu.Lock()
		c.recordLatencyLocked(time.Millisecond)
		c.mu.Unlock()
	}
	before := c.Snapshot().Limit
	// Sustained overload latency: far above 2× baseline.
	for i := 0; i < 50; i++ {
		c.mu.Lock()
		c.lastCut = time.Time{} // bypass the decrease rate limit in-test
		c.recordLatencyLocked(100 * time.Millisecond)
		c.mu.Unlock()
	}
	after := c.Snapshot().Limit
	if after >= before {
		t.Fatalf("limit did not decrease under overload: %d -> %d", before, after)
	}
	if after < 1 {
		t.Fatalf("limit fell below floor: %d", after)
	}
}

func TestAIMDIncreasesWhenHealthy(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 16, Initial: 2})
	for i := 0; i < 200; i++ {
		c.mu.Lock()
		c.recordLatencyLocked(time.Millisecond)
		c.mu.Unlock()
	}
	st := c.Snapshot()
	if st.Limit <= 2 {
		t.Fatalf("limit did not grow under healthy latency: %d", st.Limit)
	}
	if st.Limit > 16 {
		t.Fatalf("limit exceeded ceiling: %d", st.Limit)
	}
}

func TestBaselineResistsUpwardDrift(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 16, Initial: 4})
	c.mu.Lock()
	for i := 0; i < 50; i++ {
		c.recordLatencyLocked(time.Millisecond)
	}
	seeded := c.baseline
	for i := 0; i < 50; i++ {
		c.recordLatencyLocked(20 * time.Millisecond)
	}
	drifted := c.baseline
	c.mu.Unlock()
	// 50 slow samples at 20× the baseline must not drag it anywhere
	// near the overload latency.
	if drifted > seeded*15 {
		t.Fatalf("baseline drifted to overload: %v -> %v", seeded, drifted)
	}
}

func TestDroppedSamplesDoNotFeedAIMD(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 16, Initial: 4})
	tk, _ := c.Admit(context.Background())
	time.Sleep(5 * time.Millisecond)
	tk.Done(true) // dropped: deadline kill
	if st := c.Snapshot(); st.BaselineUS != 0 {
		t.Fatalf("dropped completion seeded the baseline: %+v", st)
	}
}

func TestConcurrentStress(t *testing.T) {
	c := New(Config{Floor: 2, Ceiling: 8, Initial: 4, MaxQueue: 16})
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				tk, err := c.Admit(ctx)
				if err != nil {
					shed.Add(1)
				} else {
					admitted.Add(1)
					time.Sleep(100 * time.Microsecond)
					tk.Done(false)
				}
				cancel()
			}
		}()
	}
	wg.Wait()
	st := c.Snapshot()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	if got := st.Admitted; got != admitted.Load() {
		t.Fatalf("admitted count %d != observed %d", got, admitted.Load())
	}
}

func TestSaturated(t *testing.T) {
	c := New(Config{Floor: 1, Ceiling: 1, Initial: 1, MaxQueue: 2})
	if c.Saturated() {
		t.Fatal("fresh controller saturated")
	}
	tk, _ := c.Admit(context.Background())
	go func() {
		if tkq, err := c.Admit(context.Background()); err == nil {
			tkq.Done(false)
		}
	}()
	deadline := time.Now().Add(time.Second)
	for !c.Saturated() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !c.Saturated() {
		t.Fatal("half-full queue not reported saturated")
	}
	tk.Done(false)
}
