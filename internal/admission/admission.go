// Package admission is the server's front door under overload: a
// deadline-aware FIFO queue in front of an adaptive concurrency
// limiter. The fixed worker pool it replaces had two failure modes
// under hostile traffic — it dispatched queries whose clients had
// already given up, and its fixed width was wrong in both directions
// (idle cores under a light mix, latency collapse under a heavy one).
//
// The limiter is AIMD on admitted-query latency against a moving
// baseline: every completion below the threshold nudges the limit up
// additively (+1 after ~limit completions), a completion above it cuts
// the limit multiplicatively, clamped to [floor, ceiling]. The
// baseline is an asymmetric EWMA — it follows improvements quickly and
// drifts upward slowly — so sustained overload cannot talk the
// baseline into accepting overload latency as the new normal.
//
// The queue is deadline-aware on both ends: a request whose expected
// wait (queue length × average service time ÷ limit) already exceeds
// its remaining deadline is rejected up front with a *RejectError
// carrying a computed Retry-After, and a request whose deadline
// expires while queued is never dispatched — the next dispatch skips
// it and it returns its context error. Excess load therefore sheds as
// fast 429s instead of queueing into timeouts.
package admission

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Rejection reasons, surfaced in RejectError and counted separately
// in Stats: a full queue wants a longer Retry-After than a tight
// deadline does.
const (
	ReasonQueueFull = "queue full"
	ReasonDeadline  = "deadline shorter than expected queue wait"
)

// Tuning constants. These are deliberately not configuration: they
// encode the shape of the control loop, not its operating range (the
// range — floor, ceiling, queue bound — is Config's).
const (
	// latencyFactor: a completion slower than latencyFactor × baseline
	// is an overload signal.
	latencyFactor = 2.0
	// backoff is the multiplicative decrease applied to the limit on
	// an overload signal.
	backoff = 0.85
	// baselineDown / baselineUp are the asymmetric EWMA gains of the
	// latency baseline: fast toward improvements, slow toward drift.
	baselineDown = 0.3
	baselineUp   = 0.02
	// svcGain smooths the average service time used for expected-wait
	// and Retry-After computation.
	svcGain = 0.1
	// waitRingSize is how many queue-wait samples the p50/p99 window
	// holds.
	waitRingSize = 1024
	// decreaseEvery rate-limits multiplicative decreases to one per
	// in-flight window: a single slow burst maps to one cut, not
	// limit-many.
	decreaseEvery = 10 * time.Millisecond
)

// Config bounds the controller. The zero value is usable: see New.
type Config struct {
	// Floor and Ceiling clamp the adaptive limit. Floor <= 1 means 1;
	// Ceiling <= 0 means 8 × Initial.
	Floor   int
	Ceiling int
	// Initial is the starting concurrency limit (<= 0 = Floor, or 1).
	Initial int
	// MaxQueue bounds the wait queue; a full queue sheds with
	// ReasonQueueFull. <= 0 means 4 × Ceiling.
	MaxQueue int
}

// Controller is the admission gate. One per server; all methods are
// safe for concurrent use.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	limit    float64 // adaptive concurrency limit, clamped to [floor, ceiling]
	inflight int
	queue    []*waiter // FIFO; canceled entries are skipped at dispatch

	baseline float64 // AIMD latency baseline, seconds (0 = unseeded)
	svc      float64 // EWMA of service time, seconds, for expected wait
	lastCut  time.Time

	waitRing [waitRingSize]time.Duration
	waitN    int // total samples ever; ring index = waitN % size

	admitted       int64
	shedQueueFull  int64
	shedDeadline   int64
	expiredInQueue int64
}

type waiter struct {
	ctx      context.Context
	ch       chan struct{} // closed exactly once: on dispatch or expiry
	err      error         // set before close when not dispatched
	enqueued time.Time
	done     bool // dispatched or expired (under mu)
}

// New builds a controller from cfg, applying the documented defaults.
func New(cfg Config) *Controller {
	if cfg.Floor < 1 {
		cfg.Floor = 1
	}
	if cfg.Initial <= 0 {
		cfg.Initial = cfg.Floor
	}
	if cfg.Ceiling <= 0 {
		cfg.Ceiling = 8 * cfg.Initial
	}
	if cfg.Ceiling < cfg.Floor {
		cfg.Ceiling = cfg.Floor
	}
	if cfg.Initial < cfg.Floor {
		cfg.Initial = cfg.Floor
	}
	if cfg.Initial > cfg.Ceiling {
		cfg.Initial = cfg.Ceiling
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.Ceiling
	}
	return &Controller{cfg: cfg, limit: float64(cfg.Initial)}
}

// Admit blocks until the request may run, returning a Ticket the
// caller must Done exactly once, or rejects it: a *RejectError when
// the queue is full or the deadline cannot outlast the expected wait,
// the context's own error when it expires while queued.
func (c *Controller) Admit(ctx context.Context) (*Ticket, error) {
	c.mu.Lock()
	if c.inflight < c.limitInt() && len(c.queue) == 0 {
		c.inflight++
		c.admitted++
		c.recordWaitLocked(0)
		c.mu.Unlock()
		return &Ticket{c: c, started: time.Now()}, nil
	}
	// Up-front deadline check: don't queue what cannot be served in
	// time. Skipped until the service-time estimate is seeded — with
	// no history there is nothing principled to reject on.
	wait := c.expectedWaitLocked()
	if dl, ok := ctx.Deadline(); ok && wait > 0 && wait > time.Until(dl) {
		c.shedDeadline++
		err := &RejectError{Reason: ReasonDeadline, RetryAfter: c.retryAfterLocked(), QueueDepth: len(c.queue)}
		c.mu.Unlock()
		return nil, err
	}
	if len(c.queue) >= c.cfg.MaxQueue {
		c.shedQueueFull++
		err := &RejectError{Reason: ReasonQueueFull, RetryAfter: c.retryAfterLocked(), QueueDepth: len(c.queue)}
		c.mu.Unlock()
		return nil, err
	}
	w := &waiter{ctx: ctx, ch: make(chan struct{}), enqueued: time.Now()}
	c.queue = append(c.queue, w)
	c.mu.Unlock()

	select {
	case <-w.ch:
		if w.err != nil {
			return nil, w.err
		}
		return &Ticket{c: c, started: time.Now()}, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.done {
			// Raced with dispatch: the slot is ours, the caller sees the
			// dead context on its own next check.
			c.mu.Unlock()
			<-w.ch
			if w.err != nil {
				return nil, w.err
			}
			return &Ticket{c: c, started: time.Now()}, nil
		}
		w.done = true
		w.err = ctx.Err()
		c.expiredInQueue++
		close(w.ch)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// dispatchLocked hands freed slots to queued waiters in FIFO order,
// skipping — never dispatching — the already-dead.
func (c *Controller) dispatchLocked() {
	for c.inflight < c.limitInt() && len(c.queue) > 0 {
		w := c.queue[0]
		c.queue = c.queue[1:]
		if w.done {
			continue // expired while queued; already notified
		}
		if w.ctx.Err() != nil {
			w.done = true
			w.err = w.ctx.Err()
			c.expiredInQueue++
			close(w.ch)
			continue
		}
		w.done = true
		c.inflight++
		c.admitted++
		c.recordWaitLocked(time.Since(w.enqueued))
		close(w.ch)
	}
	if len(c.queue) == 0 {
		// Don't let a drained queue pin its backing array.
		c.queue = nil
	}
}

// Ticket is one admitted request's claim on a concurrency slot.
type Ticket struct {
	c       *Controller
	started time.Time
	done    bool
}

// Done releases the slot and, unless dropped is set, feeds the
// request's service latency to the AIMD loop. Set dropped for
// requests that did not run to a normal completion (deadline kills,
// client disconnects): their latency measures the client's patience,
// not the server's speed.
func (t *Ticket) Done(dropped bool) {
	if t == nil || t.done {
		return
	}
	t.done = true
	d := time.Since(t.started)
	c := t.c
	c.mu.Lock()
	c.inflight--
	if !dropped {
		c.recordLatencyLocked(d)
	}
	c.dispatchLocked()
	c.mu.Unlock()
}

// recordLatencyLocked is the AIMD control step for one completion.
func (c *Controller) recordLatencyLocked(d time.Duration) {
	s := d.Seconds()
	if c.svc == 0 {
		c.svc = s
	} else {
		c.svc += (s - c.svc) * svcGain
	}
	if c.baseline == 0 {
		c.baseline = s
		return
	}
	if s < c.baseline {
		c.baseline += (s - c.baseline) * baselineDown
	} else {
		c.baseline += (s - c.baseline) * baselineUp
	}
	if s > c.baseline*latencyFactor {
		if now := time.Now(); now.Sub(c.lastCut) >= decreaseEvery {
			c.lastCut = now
			c.limit = math.Max(float64(c.cfg.Floor), c.limit*backoff)
		}
		return
	}
	c.limit = math.Min(float64(c.cfg.Ceiling), c.limit+1/math.Max(c.limit, 1))
}

func (c *Controller) limitInt() int {
	l := int(c.limit)
	if l < c.cfg.Floor {
		l = c.cfg.Floor
	}
	return l
}

// expectedWaitLocked estimates how long a request joining the queue
// now would wait: everyone ahead of it served at the average service
// time over limit-wide concurrency. Zero until latency history seeds
// the estimate.
func (c *Controller) expectedWaitLocked() time.Duration {
	if c.svc == 0 {
		return 0
	}
	perSlot := c.svc / float64(c.limitInt())
	return time.Duration(float64(len(c.queue)+1) * perSlot * float64(time.Second))
}

// retryAfterLocked computes the Retry-After hint: the time for the
// current queue to drain, floored at one second (the header's
// resolution).
func (c *Controller) retryAfterLocked() time.Duration {
	ra := c.expectedWaitLocked()
	if ra < time.Second {
		ra = time.Second
	}
	return ra
}

func (c *Controller) recordWaitLocked(d time.Duration) {
	c.waitRing[c.waitN%waitRingSize] = d
	c.waitN++
}

// Saturated reports whether the queue has reached half its bound —
// the /readyz signal to stop routing here before sheds start.
func (c *Controller) Saturated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)*2 >= c.cfg.MaxQueue
}

// Stats is a snapshot of the controller for /stats.
type Stats struct {
	Limit          int   `json:"limit"`
	Floor          int   `json:"floor"`
	Ceiling        int   `json:"ceiling"`
	InFlight       int   `json:"in_flight"`
	Queued         int   `json:"queued"`
	QueueCap       int   `json:"queue_cap"`
	Admitted       int64 `json:"admitted"`
	ShedQueueFull  int64 `json:"shed_queue_full"`
	ShedDeadline   int64 `json:"shed_deadline"`
	ExpiredInQueue int64 `json:"expired_in_queue"`
	WaitP50US      int64 `json:"wait_p50_us"`
	WaitP99US      int64 `json:"wait_p99_us"`
	BaselineUS     int64 `json:"baseline_us"`
}

// Snapshot returns current counters and queue-wait percentiles over
// the last waitRingSize admissions.
func (c *Controller) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Limit:          c.limitInt(),
		Floor:          c.cfg.Floor,
		Ceiling:        c.cfg.Ceiling,
		InFlight:       c.inflight,
		Queued:         len(c.queue),
		QueueCap:       c.cfg.MaxQueue,
		Admitted:       c.admitted,
		ShedQueueFull:  c.shedQueueFull,
		ShedDeadline:   c.shedDeadline,
		ExpiredInQueue: c.expiredInQueue,
		BaselineUS:     int64(c.baseline * 1e6),
	}
	n := c.waitN
	if n > waitRingSize {
		n = waitRingSize
	}
	if n > 0 {
		waits := make([]time.Duration, n)
		copy(waits, c.waitRing[:n])
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		st.WaitP50US = waits[n/2].Microseconds()
		st.WaitP99US = waits[(n*99)/100].Microseconds()
	}
	return st
}

// RejectError is an up-front admission rejection: the request never
// ran and should be retried after RetryAfter (HTTP 429).
type RejectError struct {
	Reason     string
	RetryAfter time.Duration
	QueueDepth int
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("admission rejected: %s (queue depth %d, retry after %v)", e.Reason, e.QueueDepth, e.RetryAfter.Round(time.Millisecond))
}
