package analysis

// poolown proves the linear ownership protocol of the batch-memory
// pool: every pooled value obtained from a producer reaches exactly
// one consumer on every control-flow path.

const sp = storagePath + "."

// PoolOwn flags leaked, double-released, discarded and
// used-after-release pooled values.
var PoolOwn = &Analyzer{
	Name: "poolown",
	Doc: "check that every pooled batch/column/relation from the storage pool " +
		"reaches exactly one PutBatch/Release/Disown on every path",
	Run: func(p *Pass) error { return runOwnership(p, poolOwnSpec) },
}

var poolOwnSpec = &ownSpec{
	directive: "ownership-transferred",
	noun:      "pooled value",
	producers: map[string]int{
		sp + "NewPooledBatch":    0,
		sp + "ViewWithSel":       0,
		sp + "GatherPooled":      0,
		sp + "GetRelation":       0,
		sp + "Batch.DetachSel":   0,
		sp + "Batch.Materialize": 0,
		// The segment-codec decoder hands back a relation of pooled
		// batches (the disk tier's promote path); the caller owns it.
		sp + "DecodeRelation": 0,
	},
	recvConsumed: map[string]bool{
		sp + "Batch.DetachSel":   true,
		sp + "Batch.Materialize": true,
	},
	consumers: map[string]consumeKind{
		sp + "PutBatch":         consumeRelease,
		sp + "PutBatchExcept":   consumeRelease,
		sp + "PutColumn":        consumeRelease,
		sp + "PutRelation":      consumeRelease,
		sp + "Relation.Release": consumeRelease,
		sp + "DisownBatch":      consumeDisown,
		sp + "Relation.Disown":  consumeDisown,
	},
	argConsumers: map[string]consumeKind{
		// Sink transfer: handing a batch to a StreamSink moves ownership
		// to the sink (the StreamSink contract — Push recycles or retains
		// the batch, even on error), so the push is the one consumer.
		// Matches by bare method name, as .Eval does in poolBorrows.
		".Push": consumeRelease,
	},
	borrows: poolBorrows,
	recvBorrows: map[string]bool{
		// The relation stays owned; the appended batch is handed off.
		sp + "Relation.Append": true,
	},
	skipPkgs: map[string]bool{storagePath: true},
}

// poolBorrows lists calls that read pooled values without taking
// ownership. Shared by poolown, selalias and releasecheck.
var poolBorrows = map[string]bool{
	// Batch reads.
	sp + "Batch.Len":     true,
	sp + "Batch.Width":   true,
	sp + "Batch.Sel":     true,
	sp + "Batch.MemSize": true,
	sp + "Batch.Slice":   true,
	sp + "Batch.Gather":  true,
	sp + "Batch.WithSel": true,
	// Relation reads. Flatten's result aliases the relation's batches
	// but does not move ownership.
	sp + "Relation.Batches": true,
	sp + "Relation.Rows":    true,
	sp + "Relation.MemSize": true,
	sp + "Relation.Zone":    true,
	sp + "Relation.Flatten": true,
	// Column accessors.
	sp + "Int64s":     true,
	sp + "Float64s":   true,
	sp + "Bools":      true,
	sp + "ColumnZone": true,
	// Selection-vector recycling reads nothing from the batch.
	sp + "PutSel": true,
	// Row/key readers over batches.
	sp + "ValueAt":                    true,
	"sommelier/internal/index.KeyAt":  true,
	"sommelier/internal/expr.EvalSel": true,
	// Interface-method reads (funcKey cannot name the dynamic type, so
	// these match by bare method name): expression evaluation borrows
	// the batch it reads.
	".Eval":    true,
	".EvalSel": true,
}
