// Package releasecheck is the golden fixture for the releasecheck
// analyzer: callers of the exec/engine/physical query entry points
// must release the result they are handed.
package releasecheck

import (
	"sommelier/internal/engine"
	"sommelier/internal/exec"
	"sommelier/internal/physical"
	"sommelier/internal/plan"
)

// leakOnStats reads the result but never releases it.
func leakOnStats(env *exec.Env, p *plan.Plan) (int, error) {
	res, err := exec.Execute(env, p) // want "query result \"res\" from Execute is not released on every path"
	if err != nil {
		return 0, err
	}
	return res.Rows(), nil
}

// discardedRun throws the result away entirely.
func discardedRun(env *exec.Env, p *plan.Plan) {
	exec.Execute(env, p) // want "result of Execute is discarded"
}

// doubleRelease releases twice.
func doubleRelease(env *exec.Env, p *plan.Plan) error {
	res, err := exec.Execute(env, p)
	if err != nil {
		return err
	}
	res.Release()
	res.Release() // want "query result \"res\" may already be released here"
	return nil
}

// drainLeak forgets the empty-relation early return.
func drainLeak(op physical.Operator) error {
	rel, err := physical.DrainPooled(op, nil) // want "query result \"rel\" from DrainPooled is not released on every path"
	if err != nil {
		return err
	}
	if rel.Rows() == 0 {
		return nil
	}
	rel.Release()
	return nil
}

// engineLeak leaks through the engine facade.
func engineLeak(db *engine.DB) (int, error) {
	res, err := db.Query("SELECT 1") // want "query result \"res\" from Query is not released on every path"
	if err != nil {
		return 0, err
	}
	return res.Rows(), nil
}

// clean releases after the last read.
func clean(env *exec.Env, p *plan.Plan) (int, error) {
	res, err := exec.Execute(env, p)
	if err != nil {
		return 0, err
	}
	n := res.Rows()
	res.Release()
	return n, nil
}

// cleanDefer releases via defer, the idiomatic shape.
func cleanDefer(env *exec.Env, p *plan.Plan) (int, error) {
	res, err := exec.Execute(env, p)
	if err != nil {
		return 0, err
	}
	defer res.Release()
	return res.Rows(), nil
}

// cleanHandoff returns the result; the caller owns it now.
func cleanHandoff(env *exec.Env, p *plan.Plan) (*exec.Result, error) {
	return exec.Execute(env, p)
}

// suppressedLeak documents a result another component releases.
func suppressedLeak(env *exec.Env, p *plan.Plan) {
	//sommelier:ownership-transferred the response writer releases after rendering
	res, _ := exec.Execute(env, p)
	_ = res
}
