// Package atomicguard is the golden fixture for the atomicguard
// analyzer: a location touched by sync/atomic anywhere in the package
// must never also be accessed plainly.
package atomicguard

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	frozen int64
}

func (c *counters) hit() {
	atomic.AddInt64(&c.hits, 1)
}

// report mixes a plain read in with the atomic increments.
func (c *counters) report() int64 {
	return c.hits // want "\"hits\" is accessed with sync/atomic elsewhere in this package"
}

// reset mixes a plain write in.
func (c *counters) reset() {
	c.misses = 0 // want "\"misses\" is accessed with sync/atomic elsewhere in this package"
}

func (c *counters) miss() {
	atomic.AddInt64(&c.misses, 1)
}

var total int64

func bump() {
	atomic.AddInt64(&total, 1)
}

// read races with bump.
func read() int64 {
	return total // want "\"total\" is accessed with sync/atomic elsewhere in this package"
}

// readAtomic is the sanctioned access.
func readAtomic(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

// wrapped uses the modern typed API: plain access is a type error
// already, so the analyzer stays out of the way.
var wrapped atomic.Int64

func wrappedUse() int64 {
	wrapped.Store(1)
	return wrapped.Load()
}

// freeze documents a single-goroutine window where plain access is
// deliberate.
func (c *counters) freeze() int64 {
	atomic.AddInt64(&c.frozen, 0)
	return c.frozen //sommelier:atomic-guarded called only after the worker pool has drained
}
