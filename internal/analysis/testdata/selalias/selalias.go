// Package selalias is the golden fixture for the selalias analyzer:
// retained or stale aliases of a pooled batch's selection vector and
// column backings.
package selalias

import "sommelier/internal/storage"

var globalSel []int32

type holder struct{ sel []int32 }

// storeGlobal parks the selection vector where it outlives the batch.
func storeGlobal(b *storage.Batch) {
	globalSel = b.Sel() // want "Batch.Sel aliases pooled backing"
}

// returnSel hands the selection vector to a caller the analysis cannot
// see.
func returnSel(b *storage.Batch) []int32 {
	return b.Sel() // want "Batch.Sel aliases pooled backing"
}

// storeField retains the selection vector in a struct.
func storeField(h *holder, b *storage.Batch) {
	h.sel = b.Sel() // want "Batch.Sel aliases pooled backing"
}

// staleSel reads a selection alias after its batch was recycled.
func staleSel() int32 {
	b := storage.NewPooledBatch(storage.NewInt64Column([]int64{1}))
	s := b.Sel()
	storage.PutBatch(b)
	return s[0] // want "\"s\" aliases pooled backing of \"b\""
}

// staleCol reads a column alias after its batch was recycled.
func staleCol() storage.Column {
	b := storage.NewPooledBatch(storage.NewInt64Column([]int64{1}))
	c := b.Cols[0]
	storage.PutBatch(b)
	return c // want "\"c\" aliases pooled backing of \"b\""
}

// cleanDetach uses the sanctioned escape hatch: DetachSel severs the
// selection vector from the batch's lifetime.
func cleanDetach(b *storage.Batch) []int32 {
	base, sel := b.DetachSel()
	storage.PutBatch(base)
	return sel
}

// cleanUseBeforeRelease reads the alias strictly before the release.
func cleanUseBeforeRelease() int {
	b := storage.NewPooledBatch(storage.NewInt64Column([]int64{7}))
	s := b.Sel()
	n := len(s)
	storage.PutBatch(b)
	return n
}

// suppressedRetention documents a batch that outlives the program.
func suppressedRetention(b *storage.Batch) []int32 {
	//sommelier:sel-retained the batch is never pooled in this configuration
	return b.Sel()
}
