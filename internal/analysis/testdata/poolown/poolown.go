// Package poolown is the golden fixture for the poolown analyzer.
// Every // want comment marks a deliberate ownership-protocol
// violation; the functions without one are the protocol followed
// correctly and must stay diagnostic-free — removing a PutBatch from
// any of them fails the suite.
package poolown

import (
	"errors"

	"sommelier/internal/storage"
)

var errBoom = errors.New("boom")

func ints() storage.Column { return storage.NewInt64Column([]int64{1, 2, 3}) }

// leakOnError releases only on the happy path.
func leakOnError(fail bool) error {
	b := storage.NewPooledBatch(ints()) // want "pooled value \"b\" from NewPooledBatch is not released on every path"
	if fail {
		return errBoom
	}
	storage.PutBatch(b)
	return nil
}

// discarded drops the fresh batch on the floor.
func discarded() {
	storage.NewPooledBatch(ints()) // want "result of NewPooledBatch is discarded"
}

// doubleRelease returns the same batch to the pool twice.
func doubleRelease() {
	b := storage.NewPooledBatch(ints())
	storage.PutBatch(b)
	storage.PutBatch(b) // want "pooled value \"b\" may already be released here"
}

// useAfterRelease reads a batch whose memory may already be recycled.
func useAfterRelease() int {
	b := storage.NewPooledBatch(ints())
	storage.PutBatch(b)
	return b.Len() // want "use of pooled value \"b\" after it may have been released"
}

// overwritten loses the only handle that could release the first batch.
func overwritten() {
	b := storage.NewPooledBatch(ints())
	b = storage.NewPooledBatch(ints()) // want "pooled value \"b\" is overwritten before it is released"
	storage.PutBatch(b)
}

// detachLeak keeps the detached base without ever returning it.
func detachLeak(b *storage.Batch) int {
	base, sel := b.DetachSel() // want "pooled value \"base\" from DetachSel is not released on every path"
	storage.PutSel(sel)
	return base.Len()
}

// cleanPaired releases on every path.
func cleanPaired(wide bool) {
	b := storage.NewPooledBatch(ints())
	if wide {
		storage.PutBatch(b)
		return
	}
	storage.PutBatch(b)
}

// cleanEscape moves ownership to the caller.
func cleanEscape() *storage.Batch {
	b := storage.NewPooledBatch(ints())
	return b
}

// cleanDisown dissolves pool ownership; the value stays usable.
func cleanDisown() int {
	b := storage.NewPooledBatch(ints())
	storage.DisownBatch(b)
	return b.Len()
}

// cleanLoop recycles every batch a loop produces.
func cleanLoop(n int) {
	for i := 0; i < n; i++ {
		b := storage.NewPooledBatch(ints())
		storage.PutBatch(b)
	}
}

// suppressed documents a deliberate protocol escape.
func suppressed() {
	//sommelier:ownership-transferred a finalizer registered elsewhere recycles this batch
	b := storage.NewPooledBatch(ints())
	_ = b
}

// faultLeak mirrors the fault-injection idiom: an injected error
// branch (inject stands in for fault.Injector.Check) returns early and
// drops the pooled batch.
func faultLeak(inject func() error) error {
	b := storage.NewPooledBatch(ints()) // want "pooled value \"b\" from NewPooledBatch is not released on every path"
	if err := inject(); err != nil {
		return err
	}
	storage.PutBatch(b)
	return nil
}

// cleanFaultPath releases the batch on the injected-error branch too.
func cleanFaultPath(inject func() error) error {
	b := storage.NewPooledBatch(ints())
	if err := inject(); err != nil {
		storage.PutBatch(b)
		return err
	}
	storage.PutBatch(b)
	return nil
}

// sink mimics physical.StreamSink: Push takes ownership of the batch.
type sink interface {
	Push(b *storage.Batch) error
}

// cleanSinkTransfer hands the batch to a sink; the push is the one
// consumer, even on error.
func cleanSinkTransfer(s sink) error {
	b := storage.NewPooledBatch(ints())
	return s.Push(b)
}

// sinkDoubleRelease recycles a batch the sink already owns.
func sinkDoubleRelease(s sink) {
	b := storage.NewPooledBatch(ints())
	_ = s.Push(b)
	storage.PutBatch(b) // want "pooled value \"b\" may already be released here"
}

// sinkUseAfterPush reads rows the sink may have recycled.
func sinkUseAfterPush(s sink) int {
	b := storage.NewPooledBatch(ints())
	_ = s.Push(b)
	return b.Len() // want "use of pooled value \"b\" after it may have been released"
}

// decodeLeak mirrors the disk tier's promote path gone wrong: the
// decoded relation of pooled batches is dropped on an error branch.
func decodeLeak(body []byte, fail bool) error {
	rel, err := storage.DecodeRelation(body) // want "pooled value \"rel\" from DecodeRelation is not released on every path"
	if err != nil {
		return err
	}
	if fail {
		return errBoom
	}
	rel.Release()
	return nil
}

// cleanDecode releases the decoded relation on every live path; the
// decoder itself guarantees nothing is checked out on the error path.
func cleanDecode(body []byte) (int, error) {
	rel, err := storage.DecodeRelation(body)
	if err != nil {
		return 0, err
	}
	n := rel.Rows()
	rel.Release()
	return n, nil
}

// cleanDecodeDisown installs the decoded relation somewhere long-lived
// by dissolving pool ownership first.
func cleanDecodeDisown(body []byte) *storage.Relation {
	rel, err := storage.DecodeRelation(body)
	if err != nil {
		return nil
	}
	rel.Disown()
	return rel
}
