package analysis

// The `go vet -vettool` driver: cmd/go invokes the tool once per
// package with a *.cfg file describing the unit (source files, import
// map, export data locations), after probing it with -V=full (tool
// identity for the build cache) and -flags (supported flags). This is
// a dependency-free reimplementation of the x/tools unitchecker
// protocol; diagnostics go to stderr as file:line:col lines and the
// process exits 2 when any were reported, which is how vet detects
// findings.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON unit description cmd/go hands to vet
// tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main implements the vettool entry point. With -V=full or -flags it
// answers cmd/go's probes; with a single *.cfg argument it checks that
// unit; with package patterns it falls back to the standalone loader.
func Main(analyzers []*Analyzer) {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(checkUnit(args[0], analyzers))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: sommelierlint package...")
		os.Exit(1)
	}
	diags, err := RunPatterns("", analyzers, args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sommelierlint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// printVersion answers `-V=full`: a single "name version id" line
// that changes whenever the tool binary changes, so vet's result
// cache invalidates with it.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("sommelierlint version devel buildID=%s\n", id)
}

func checkUnit(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sommelierlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "sommelierlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// Always produce the facts file vet expects, even empty: the suite
	// is purely intra-package.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "sommelierlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	lp, err := typeCheckDir(cfg.ImportPath, cfg.Dir, cfg.GoFiles, lookup, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "sommelierlint:", err)
		return 1
	}
	diags, err := runPackage(lp.NewPass(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sommelierlint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", lp.Fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
