package analysis

// releasecheck enforces the caller half of the protocol: whoever runs
// a query owns the result and must call Release (or Disown) on it on
// every path. Test files are exempt — tests may lean on the garbage
// collector, and the pool-focused ones assert with
// storage.RequireNoLeaks instead.

const (
	execPath     = "sommelier/internal/exec."
	enginePath   = "sommelier/internal/engine."
	physicalPath = "sommelier/internal/physical."
)

// ReleaseCheck flags query results that are never released.
var ReleaseCheck = &Analyzer{
	Name: "releasecheck",
	Doc: "check that callers of exec/engine query entry points release the " +
		"Result (or the drained Relation) on every path",
	Run: func(p *Pass) error { return runOwnership(p, releaseSpec) },
}

var releaseSpec = &ownSpec{
	directive: "ownership-transferred",
	noun:      "query result",
	producers: map[string]int{
		execPath + "Execute":             0,
		execPath + "ExecuteContext":      0,
		execPath + "ExecuteParams":       0,
		execPath + "ExecuteTraced":       0,
		execPath + "ExecuteTracedParams": 0,

		enginePath + "DB.Query":            0,
		enginePath + "DB.QueryContext":     0,
		enginePath + "DB.QueryArgs":        0,
		enginePath + "DB.QueryArgsContext": 0,
		enginePath + "DB.Run":              0,
		enginePath + "DB.RunContext":       0,
		enginePath + "Stmt.Query":          0,
		enginePath + "Stmt.QueryContext":   0,

		physicalPath + "Run":                 0,
		physicalPath + "RunPooled":           0,
		physicalPath + "Drain":               0,
		physicalPath + "DrainPooled":         0,
		physicalPath + "ParallelDrain":       0,
		physicalPath + "ParallelDrainPooled": 0,
	},
	consumers: map[string]consumeKind{
		// res.Release() resolves here for engine.Result too (it embeds
		// *exec.Result).
		execPath + "Result.Release": consumeRelease,
		// Drained relations (and res.Rel selector chains) release
		// through the storage protocol.
		sp + "Relation.Release": consumeRelease,
		sp + "Relation.Disown":  consumeDisown,
		sp + "PutRelation":      consumeRelease,
	},
	borrows: mergeKeys(poolBorrows, map[string]bool{
		execPath + "Result.Rows": true,
	}),
	skipTests: true,
}

func mergeKeys(ms ...map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for _, m := range ms {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}
