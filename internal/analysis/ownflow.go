package analysis

// Statement interpretation for the ownership engine: the structured
// walk over blocks, branches, loops (iterated to fixpoint), switches,
// defers and returns that drives the per-path environments defined in
// ownership.go.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

func (w *walker) walkBlock(b *ast.BlockStmt) {
	w.pushFrame(b)
	w.walkStmts(b.List)
	w.popFrame()
}

func (w *walker) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		if w.terminated {
			return
		}
		w.walkStmt(s)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		w.assign(x)
	case *ast.DeclStmt:
		w.declStmt(x)
	case *ast.ExprStmt:
		w.exprStmt(x)
	case *ast.ReturnStmt:
		w.returnStmt(x)
	case *ast.IfStmt:
		w.ifStmt(x)
	case *ast.ForStmt:
		w.forStmt(x, "")
	case *ast.RangeStmt:
		w.rangeStmt(x, "")
	case *ast.SwitchStmt:
		w.switchStmt(x, "")
	case *ast.TypeSwitchStmt:
		w.typeSwitchStmt(x, "")
	case *ast.SelectStmt:
		w.selectStmt(x)
	case *ast.BlockStmt:
		w.walkBlock(x)
	case *ast.DeferStmt:
		w.deferStmt(x)
	case *ast.GoStmt:
		w.opaqueCall(x.Call)
	case *ast.SendStmt:
		w.use(x.Chan)
		w.use(x.Value)
		w.escapeAlias(x.Value)
	case *ast.BranchStmt:
		w.branchStmt(x)
	case *ast.LabeledStmt:
		w.labeledStmt(x)
	case *ast.IncDecStmt:
		w.use(x.X)
	}
}

func (w *walker) labeledStmt(s *ast.LabeledStmt) {
	label := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		w.forStmt(inner, label)
	case *ast.RangeStmt:
		w.rangeStmt(inner, label)
	case *ast.SwitchStmt:
		w.switchStmt(inner, label)
	case *ast.TypeSwitchStmt:
		w.typeSwitchStmt(inner, label)
	default:
		w.walkStmt(s.Stmt)
	}
}

// ---- simple statements -----------------------------------------------------

func (w *walker) exprStmt(s *ast.ExprStmt) {
	c, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		w.use(s.X)
		return
	}
	if _, short, recvConsumed, ok := w.producerInfo(c); ok {
		// Producer called for effect: the value it returns is dropped on
		// the floor and can never be released.
		w.a.reportOnce(c.Pos(), "discard",
			"result of %s is discarded; the %s it returns is never released",
			short, w.spec().noun)
		for _, arg := range c.Args {
			w.use(arg)
			w.escapeAlias(arg)
		}
		if recvConsumed {
			w.consumeTarget(c, consumeRelease)
		}
		return
	}
	w.call(c)
	if w.isTerminalCall(c) {
		w.terminated = true
	}
}

// isTerminalCall recognizes calls that never return. Terminating a
// path suppresses its leak checks, which is the conservative (quiet)
// direction.
func (w *walker) isTerminalCall(c *ast.CallExpr) bool {
	if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok {
		if b, ok := w.info().Uses[id].(*types.Builtin); ok {
			return b.Name() == "panic"
		}
	}
	f := calleeFunc(w.info(), c)
	if f == nil {
		return false
	}
	switch funcKey(f) {
	case "os.Exit", "runtime.Goexit":
		return true
	}
	if f.Pkg() != nil && f.Pkg().Path() == "log" && strings.HasPrefix(f.Name(), "Fatal") {
		return true
	}
	switch f.Name() {
	case "Fatal", "Fatalf", "FailNow", "SkipNow", "Skip", "Skipf":
		// testing.TB-style terminal helpers (methods only).
		sig, _ := f.Type().(*types.Signature)
		return sig != nil && sig.Recv() != nil
	}
	return false
}

func (w *walker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.DEFINE, token.ASSIGN:
		w.assignCore(s.Lhs, s.Rhs)
	default: // compound: x += y etc.
		for _, r := range s.Rhs {
			w.use(r)
		}
		for _, l := range s.Lhs {
			w.use(l)
		}
	}
}

func (w *walker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, sp := range gd.Specs {
		vs, ok := sp.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		lhs := make([]ast.Expr, len(vs.Names))
		for i, n := range vs.Names {
			lhs[i] = n
		}
		w.assignCore(lhs, vs.Values)
	}
}

func (w *walker) assignCore(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 {
		if c, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if idx, short, recvConsumed, ok := w.producerInfo(c); ok {
				// Arguments move into the produced value.
				for _, arg := range c.Args {
					w.use(arg)
					w.escapeAlias(arg)
				}
				if recvConsumed {
					w.consumeTarget(c, consumeRelease)
				} else if recv := w.receiver(c); recv != nil {
					w.use(recv)
				}
				w.bindProduced(lhs, idx, c, short)
				return
			}
			if w.spec().derives[funcKey(calleeFunc(w.info(), c))] && len(lhs) == 1 {
				if recv := w.receiver(c); recv != nil {
					w.use(recv)
					w.bindDerived(lhs[0], recv)
					return
				}
			}
			w.call(c)
			w.clearLHS(lhs)
			return
		}
		if len(lhs) == 1 && w.spec().deriveFields != nil {
			if base := deriveFieldBase(w.info(), rhs[0], w.spec().deriveFields); base != nil {
				w.use(rhs[0])
				w.bindDerived(lhs[0], base)
				return
			}
		}
	}
	for i, r := range rhs {
		w.use(r)
		// Binding a tracked value (or part of one) to another name is
		// aliasing the analysis cannot follow: ownership moves out of
		// sight. `_ = v` is exempt — it reads nothing and moves nothing.
		if id := rootIdent(r); id != nil {
			if i < len(lhs) {
				if lid, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok && lid.Name == "_" {
					continue
				}
			}
			w.escapeAlias(r)
		}
	}
	w.clearLHS(lhs)
}

// clearLHS invalidates assignment targets: overwriting a still-owned
// value loses the only handle that could release it.
func (w *walker) clearLHS(lhs []ast.Expr) {
	for _, l := range lhs {
		le := ast.Unparen(l)
		if id, ok := le.(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			v := localVar(w.info(), id)
			if v == nil {
				continue
			}
			if st, ok := w.env[v]; ok {
				if st.owner == nil && st.mask&maskOwned != 0 {
					w.a.reportOnce(id.Pos(), "overwrite",
						"%s %q is overwritten before it is released", w.spec().noun, id.Name)
				}
				delete(w.env, v)
			}
			continue
		}
		// Store into a field/index/deref target: reads the target chain.
		w.use(le)
	}
}

// bindProduced binds the tracked result of a producer call to its
// assignment target and records an error-companion for `v, err :=`.
func (w *walker) bindProduced(lhs []ast.Expr, idx int, c *ast.CallExpr, short string) {
	if idx >= len(lhs) {
		w.clearLHS(lhs)
		return
	}
	var tracked *types.Var
	for i, l := range lhs {
		le := ast.Unparen(l)
		id, isIdent := le.(*ast.Ident)
		if i != idx {
			if isIdent && id.Name != "_" {
				w.clearLHS([]ast.Expr{le})
			} else if !isIdent {
				w.use(le)
			}
			continue
		}
		if !isIdent {
			// Produced straight into a field or element: immediate
			// handoff, untracked.
			w.use(le)
			continue
		}
		if id.Name == "_" {
			w.a.reportOnce(c.Pos(), "discard",
				"result of %s is discarded; the %s it returns is never released",
				short, w.spec().noun)
			continue
		}
		v := localVar(w.info(), id)
		if v == nil {
			continue
		}
		if st, ok := w.env[v]; ok && st.owner == nil && st.mask&maskOwned != 0 {
			w.a.reportOnce(id.Pos(), "overwrite",
				"%s %q is overwritten before it is released", w.spec().noun, id.Name)
		}
		w.track(v, c.Pos(), short)
		tracked = v
	}
	if tracked == nil {
		return
	}
	errType := types.Universe.Lookup("error").Type()
	for i, l := range lhs {
		if i == idx {
			continue
		}
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
			if ev := localVar(w.info(), id); ev != nil && types.Identical(ev.Type(), errType) {
				w.companions[ev] = tracked
			}
		}
	}
}

// bindDerived binds an alias of a tracked value's pooled backing
// (b.Sel(), b.Cols[i]) so later use past the owner's release is
// caught.
func (w *walker) bindDerived(l ast.Expr, recv ast.Expr, _ ...any) {
	rid := rootIdent(recv)
	if rid == nil {
		w.clearLHS([]ast.Expr{l})
		return
	}
	rv := localVar(w.info(), rid)
	if rv == nil {
		w.clearLHS([]ast.Expr{l})
		return
	}
	if st, ok := w.env[rv]; !ok || st.owner != nil {
		w.clearLHS([]ast.Expr{l})
		return
	}
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok || id.Name == "_" {
		w.use(l)
		return
	}
	v := localVar(w.info(), id)
	if v == nil {
		return
	}
	w.clearLHS([]ast.Expr{l})
	w.env[v] = varState{owner: rv}
	w.fileVar(v)
}

// fileVar records v in the frame of its declaring scope.
func (w *walker) fileVar(v *types.Var) {
	scope := v.Parent()
	for i := len(w.frames) - 1; i >= 0; i-- {
		if w.frames[i].scope == scope || i == 0 {
			for _, have := range w.frames[i].vars {
				if have == v {
					return
				}
			}
			w.frames[i].vars = append(w.frames[i].vars, v)
			return
		}
	}
}

// deriveFieldBase recognizes reads of aliasing fields (b.Cols,
// b.Cols[i]) and returns the root identifier of the owner.
func deriveFieldBase(info *types.Info, e ast.Expr, fields map[string]bool) *ast.Ident {
	x := ast.Unparen(e)
	if ix, ok := x.(*ast.IndexExpr); ok {
		x = ast.Unparen(ix.X)
	}
	sel, ok := x.(*ast.SelectorExpr)
	if !ok || !fields[sel.Sel.Name] {
		return nil
	}
	if s, ok := info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return rootIdent(sel.X)
}

func (w *walker) returnStmt(s *ast.ReturnStmt) {
	for _, r := range s.Results {
		w.use(r)
		if rootIdent(r) != nil {
			// Returned to the caller: ownership transfers up.
			w.escapeAlias(r)
		}
	}
	if len(s.Results) == 0 {
		// Naked return hands the named results to the caller.
		for _, v := range w.namedResults {
			delete(w.env, v)
		}
	}
	if !w.terminated {
		w.leakCheckAll()
	}
	w.terminated = true
}

func (w *walker) deferStmt(s *ast.DeferStmt) {
	c := s.Call
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		w.escapeCaptured(lit)
		return
	}
	f := calleeFunc(w.info(), c)
	if _, ok := w.spec().consumers[funcKey(f)]; ok {
		target := w.receiver(c)
		args := c.Args
		if target == nil && len(args) > 0 {
			target = args[0]
			args = args[1:]
		}
		for _, arg := range args {
			w.use(arg)
		}
		if target != nil {
			w.use(target)
			// A deferred release runs on every exit path: handled.
			w.escapeRoot(target)
		}
		return
	}
	if _, short, _, ok := w.producerInfo(c); ok {
		w.a.reportOnce(c.Pos(), "discard",
			"result of %s is discarded; the %s it returns is never released",
			short, w.spec().noun)
	}
	w.opaqueCall(c)
}

// opaqueCall evaluates a call whose execution the analysis cannot
// order (go statement, deferred unknown call): every tracked value it
// touches escapes.
func (w *walker) opaqueCall(c *ast.CallExpr) {
	if lit, ok := ast.Unparen(c.Fun).(*ast.FuncLit); ok {
		w.escapeCaptured(lit)
	}
	if recv := w.receiver(c); recv != nil {
		w.use(recv)
		w.escapeRoot(recv)
	}
	for _, arg := range c.Args {
		w.use(arg)
		w.escapeAlias(arg)
	}
}

// ---- branching -------------------------------------------------------------

func (w *walker) ifStmt(s *ast.IfStmt) {
	w.pushFrame(s)
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	w.use(s.Cond)
	then := w.branch()
	then.refine(s.Cond, false)
	then.walkBlock(s.Body)
	els := w.branch()
	els.refine(s.Cond, true)
	if s.Else != nil {
		els.walkStmt(s.Else)
	}
	w.merge(nil, then, els)
	w.popFrame()
}

// refine narrows the environment for one side of a condition:
// negate=false means the condition holds on this path. Two shapes
// matter to the protocol: `v == nil` (a nil pooled value owns
// nothing, see the NewPooledBatch fallback) and `err != nil` after
// `v, err := producer(...)` (the producer failed, so v was never
// acquired).
func (w *walker) refine(cond ast.Expr, negate bool) {
	switch x := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			w.refine(x.X, !negate)
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			if !negate {
				w.refine(x.X, false)
				w.refine(x.Y, false)
			}
		case token.LOR:
			if negate {
				w.refine(x.X, true)
				w.refine(x.Y, true)
			}
		case token.EQL, token.NEQ:
			v := nilComparand(w.info(), x)
			if v == nil {
				return
			}
			valueIsNil := (x.Op == token.EQL) != negate
			if valueIsNil {
				// v is nil here: nothing is owned through it.
				delete(w.env, v)
			} else if cv := w.companions[v]; cv != nil {
				// err is non-nil here: the companion value was never
				// produced.
				delete(w.env, cv)
			}
		}
	}
}

// nilComparand returns the variable compared against nil in x, if any.
func nilComparand(info *types.Info, x *ast.BinaryExpr) *types.Var {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		_, ok = info.Uses[id].(*types.Nil)
		return ok
	}
	var other ast.Expr
	switch {
	case isNil(x.X):
		other = x.Y
	case isNil(x.Y):
		other = x.X
	default:
		return nil
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return nil
	}
	return localVar(info, id)
}

func (w *walker) branchStmt(s *ast.BranchStmt) {
	switch s.Tok {
	case token.FALLTHROUGH:
		return // modeled by switchStmt's clause carry
	case token.GOTO:
		w.terminated = true // unreachable: goto functions are skipped
		return
	}
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	for i := len(w.targets) - 1; i >= 0; i-- {
		t := w.targets[i]
		if s.Tok == token.CONTINUE && !t.isLoop {
			continue
		}
		if name != "" && t.label != name {
			continue
		}
		if s.Tok == token.CONTINUE {
			t.conts = append(t.conts, w.env.clone())
		} else {
			t.brks = append(t.brks, w.env.clone())
		}
		break
	}
	w.terminated = true
}

// withTarget clones w for a body governed by bt.
func (w *walker) withTarget(e env, bt *breakTarget) *walker {
	b := w.branch()
	b.env = e.clone()
	b.targets = append(append([]*breakTarget(nil), w.targets...), bt)
	return b
}

// ---- loops -----------------------------------------------------------------

const maxLoopIters = 4

func (w *walker) forStmt(s *ast.ForStmt, label string) {
	w.pushFrame(s)
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	bt := &breakTarget{label: label, isLoop: true}
	entry := w.env.clone()
	for iter := 0; iter < maxLoopIters; iter++ {
		body := w.withTarget(entry, bt)
		if s.Cond != nil {
			body.use(s.Cond)
			body.refine(s.Cond, false)
		}
		body.walkBlock(s.Body)
		var back []env
		if !body.terminated {
			back = append(back, body.env)
		}
		back = append(back, bt.conts...)
		bt.conts = nil
		next := entry.clone()
		for _, e := range back {
			pw := w.withTarget(e, bt)
			if s.Post != nil {
				pw.walkStmt(s.Post)
			}
			next = next.join(pw.env)
		}
		if next.equal(entry) {
			break
		}
		entry = next
	}
	outs := bt.brks
	if s.Cond != nil {
		outs = append(outs, entry) // the condition can fail on entry
	}
	if len(outs) == 0 {
		w.terminated = true
		w.popFrame()
		return
	}
	j := outs[0]
	for _, e := range outs[1:] {
		j = j.join(e)
	}
	w.env = j
	w.popFrame()
}

func (w *walker) rangeStmt(s *ast.RangeStmt, label string) {
	w.pushFrame(s)
	w.use(s.X)
	bt := &breakTarget{label: label, isLoop: true}
	entry := w.env.clone()
	for iter := 0; iter < maxLoopIters; iter++ {
		body := w.withTarget(entry, bt)
		if s.Tok == token.ASSIGN {
			// `for k, v = range …` re-binds existing variables.
			if s.Key != nil {
				body.clearLHS([]ast.Expr{s.Key})
			}
			if s.Value != nil {
				body.clearLHS([]ast.Expr{s.Value})
			}
		}
		body.walkBlock(s.Body)
		var back []env
		if !body.terminated {
			back = append(back, body.env)
		}
		back = append(back, bt.conts...)
		bt.conts = nil
		next := entry.clone()
		for _, e := range back {
			next = next.join(e)
		}
		if next.equal(entry) {
			break
		}
		entry = next
	}
	outs := append([]env{entry}, bt.brks...) // zero iterations possible
	j := outs[0]
	for _, e := range outs[1:] {
		j = j.join(e)
	}
	w.env = j
	w.popFrame()
}

// ---- switches and select ---------------------------------------------------

func (w *walker) switchStmt(s *ast.SwitchStmt, label string) {
	w.pushFrame(s)
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	if s.Tag != nil {
		w.use(s.Tag)
	}
	bt := &breakTarget{label: label}
	hasDefault := false
	var branches []*walker
	var carry env // fall-through from the previous clause
	for _, cc := range s.Body.List {
		c, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		bw := w.withTarget(w.env, bt)
		if carry != nil {
			bw.env = bw.env.join(carry)
			carry = nil
		}
		bw.pushFrame(c)
		for _, e := range c.List {
			bw.use(e)
		}
		if s.Tag == nil && len(c.List) == 1 {
			bw.refine(c.List[0], false)
		}
		bw.walkStmts(c.Body)
		bw.popFrame()
		if fallsThrough(c.Body) {
			if !bw.terminated {
				carry = bw.env
			}
			continue
		}
		branches = append(branches, bw)
	}
	var base env
	if !hasDefault {
		base = w.env.clone()
	}
	for _, be := range bt.brks {
		branches = append(branches, &walker{env: be})
	}
	w.merge(base, branches...)
	w.popFrame()
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	b, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && b.Tok == token.FALLTHROUGH
}

func (w *walker) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	w.pushFrame(s)
	if s.Init != nil {
		w.walkStmt(s.Init)
	}
	// Evaluate the scrutinee of `y := x.(type)` / `x.(type)`.
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		for _, r := range a.Rhs {
			w.use(r)
		}
	case *ast.ExprStmt:
		w.use(a.X)
	}
	bt := &breakTarget{label: label}
	hasDefault := false
	var branches []*walker
	for _, cc := range s.Body.List {
		c, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		bw := w.withTarget(w.env, bt)
		bw.pushFrame(c)
		bw.walkStmts(c.Body)
		bw.popFrame()
		branches = append(branches, bw)
	}
	var base env
	if !hasDefault {
		base = w.env.clone()
	}
	for _, be := range bt.brks {
		branches = append(branches, &walker{env: be})
	}
	w.merge(base, branches...)
	w.popFrame()
}

func (w *walker) selectStmt(s *ast.SelectStmt) {
	bt := &breakTarget{}
	var branches []*walker
	for _, cc := range s.Body.List {
		c, ok := cc.(*ast.CommClause)
		if !ok {
			continue
		}
		bw := w.withTarget(w.env, bt)
		bw.pushFrame(c)
		if c.Comm != nil {
			bw.walkStmt(c.Comm)
		}
		bw.walkStmts(c.Body)
		bw.popFrame()
		branches = append(branches, bw)
	}
	for _, be := range bt.brks {
		branches = append(branches, &walker{env: be})
	}
	// Select blocks until one case proceeds: no straight-through path.
	w.merge(nil, branches...)
}
