package analysis

// atomicguard protects the lock-free paths (the Recycler's hit
// counters, the morsel cursor): a variable or field whose address is
// passed to a sync/atomic function anywhere in the package must never
// be read or written plainly — a single plain access next to atomic
// ones is a data race the race detector only catches if a test
// happens to hit the interleaving.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicGuard flags plain accesses to atomically-accessed locations.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc: "check that fields accessed via sync/atomic are never also " +
		"accessed plainly",
	Run: runAtomicGuard,
}

func runAtomicGuard(pass *Pass) error {
	info := pass.TypesInfo
	// Phase 1: collect guarded objects — targets of &x passed to a
	// sync/atomic package function — and the exact AST nodes of those
	// sanctioned accesses.
	guarded := map[types.Object]token.Pos{} // object → first atomic site
	sanctioned := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, c)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, _ := fn.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
				// Methods on atomic.Int64-style wrapper types make plain
				// access a type error already; only the old-style
				// functions need guarding.
				return true
			}
			for _, arg := range c.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				if obj := addressedObject(info, u.X); obj != nil {
					if _, seen := guarded[obj]; !seen {
						guarded[obj] = u.Pos()
					}
					sanctioned[ast.Unparen(u.X)] = true
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}
	// Phase 2: flag every other access to a guarded object.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var obj types.Object
			var at token.Pos
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if sanctioned[x] {
					return false
				}
				obj = info.ObjectOf(x.Sel)
				at = x.Sel.Pos()
			case *ast.Ident:
				if sanctioned[x] {
					return false
				}
				// Uses only: the declaration of a guarded variable or field
				// is not an access.
				obj = info.Uses[x]
				at = x.Pos()
			default:
				return true
			}
			if obj == nil {
				return true
			}
			if _, ok := guarded[obj]; !ok {
				return true
			}
			if suppressedBy(pass, at, "atomic-guarded") {
				return true
			}
			pass.Reportf(at,
				"%q is accessed with sync/atomic elsewhere in this package; "+
					"plain access here is a data race (use sync/atomic or annotate //sommelier:atomic-guarded)",
				obj.Name())
			return false
		})
	}
	return nil
}

// addressedObject resolves &x to the variable or field being
// addressed: a plain identifier or a field selection.
func addressedObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		return addressedObject(info, x.X)
	}
	return nil
}
