package analysis

import "testing"

func TestAtomicGuardGolden(t *testing.T) {
	RunGolden(t, AtomicGuard, "testdata/atomicguard")
}
