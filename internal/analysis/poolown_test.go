package analysis

import "testing"

func TestPoolOwnGolden(t *testing.T) {
	RunGolden(t, PoolOwn, "testdata/poolown")
}
