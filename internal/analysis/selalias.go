package analysis

// selalias guards against the quietest failure mode the pool has:
// slice recycling turns a retained alias of a released batch's
// backing (its selection vector or a column) into silent data
// corruption once the pool hands the memory to someone else. Two
// checks:
//
//  1. dataflow: an alias derived from a tracked batch (s := b.Sel(),
//     c := b.Cols[i]) must not be used after the batch is released;
//  2. retention: the result of Batch.Sel() must not be stored into a
//     field, global or composite, or returned — those outlive the
//     statement and the analysis cannot tie them to the batch's
//     lifetime. DetachSel is the sanctioned way to keep a selection
//     vector alive.

import (
	"go/ast"
	"go/types"
)

// SelAlias flags retained aliases of pooled batch backing.
var SelAlias = &Analyzer{
	Name: "selalias",
	Doc: "check that Batch.Sel and pooled column backings are not retained " +
		"past the owning batch's release",
	Run: runSelAlias,
}

var selAliasSpec = &ownSpec{
	directive:    "sel-retained",
	noun:         "pooled value",
	producers:    poolOwnSpec.producers,
	recvConsumed: poolOwnSpec.recvConsumed,
	consumers:    poolOwnSpec.consumers,
	borrows:      poolBorrows,
	recvBorrows:  poolOwnSpec.recvBorrows,
	derives: map[string]bool{
		sp + "Batch.Sel": true,
	},
	deriveFields: map[string]bool{"Cols": true},
	aliasOnly:    true,
	skipPkgs:     map[string]bool{storagePath: true},
}

func runSelAlias(pass *Pass) error {
	if err := runOwnership(pass, selAliasSpec); err != nil {
		return err
	}
	if selAliasSpec.skipPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, r := range x.Rhs {
					if !isSelCall(pass.TypesInfo, r) || i >= len(x.Lhs) {
						continue
					}
					if retains(pass.TypesInfo, x.Lhs[i]) {
						reportSelRetention(pass, r)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if isSelCall(pass.TypesInfo, r) {
						reportSelRetention(pass, r)
					}
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if isSelCall(pass.TypesInfo, el) {
						reportSelRetention(pass, el)
					}
				}
			}
			return true
		})
	}
	return nil
}

func reportSelRetention(pass *Pass, e ast.Expr) {
	if suppressedBy(pass, e.Pos(), selAliasSpec.directive) {
		return
	}
	pass.Reportf(e.Pos(),
		"Batch.Sel aliases pooled backing; storing or returning it outlives the batch "+
			"(use DetachSel, or annotate //sommelier:sel-retained)")
}

// isSelCall reports whether e is a direct Batch.Sel() call.
func isSelCall(info *types.Info, e ast.Expr) bool {
	c, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	return funcKey(calleeFunc(info, c)) == sp+"Batch.Sel"
}

// retains reports whether an assignment target outlives the statement
// in a way the dataflow cannot follow: a field, an element of a
// container, a dereference, or a package-level variable.
func retains(info *types.Info, l ast.Expr) bool {
	switch x := ast.Unparen(l).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return false
		}
		return localVar(info, x) == nil && info.ObjectOf(x) != nil
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}
