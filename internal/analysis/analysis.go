// Package analysis is sommelier's static-analysis suite: a small,
// dependency-free re-implementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus four custom
// analyzers that prove the pooled-memory ownership protocol of
// internal/storage at compile time:
//
//   - poolown: every pooled value obtained from a producer
//     (NewPooledBatch, ViewWithSel, GatherPooled, GetRelation,
//     DetachSel, Materialize) reaches exactly one consumer
//     (PutBatch/PutBatchExcept/PutColumn/PutRelation/Release) or a
//     deliberate escape (Disown, return, handoff) on every control-flow
//     path — leaks, double releases and uses after release are flagged.
//   - selalias: no retention of Batch.Sel (or other pooled backing
//     aliases) past the owning batch's release.
//   - releasecheck: callers of the executor and engine query entry
//     points release their Result.
//   - atomicguard: a struct field accessed through sync/atomic anywhere
//     must never be accessed plainly.
//
// The suite runs as a `go vet -vettool` binary (cmd/sommelierlint,
// speaking the vet.cfg unitchecker protocol) and standalone over
// package patterns (the analysistest-style golden suites use the
// standalone loader). Unlike the x/tools analyzers this container
// cannot fetch, the dataflow runs over an AST-level CFG rather than
// go/ssa — the ownership protocol is purely intra-procedural and
// first-order, so the AST CFG models it faithfully; anything the
// analysis cannot see (a handoff through a helper, storage into a
// long-lived structure) is treated as a deliberate ownership transfer
// and never reported.
//
// Deliberate protocol escapes the analyzers cannot prove are annotated
// in source:
//
//	//sommelier:ownership-transferred  (poolown, releasecheck)
//	//sommelier:sel-retained           (selalias)
//	//sommelier:atomic-guarded         (atomicguard)
//
// placed on (or immediately above) the flagged line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the one-paragraph description.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer, mirroring
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// report collects diagnostics (set by the driver).
	report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All is the sommelierlint suite, in reporting order.
var All = []*Analyzer{PoolOwn, SelAlias, ReleaseCheck, AtomicGuard}

// storagePath is the package whose ownership protocol the suite
// enforces. The pool implementation itself manipulates ownership
// internals legitimately and is skipped by the ownership analyzers.
const storagePath = "sommelier/internal/storage"

// runPackage applies the analyzers to one loaded package and returns
// the diagnostics sorted by position.
func runPackage(pass *Pass, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		cur := a
		pass.report = func(d Diagnostic) {
			d.Analyzer = cur.Name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pass.Pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// suppressedBy reports whether the line holding pos (or the line just
// above it) carries the given //sommelier: directive. Every analyzer
// offers one, so deliberate protocol escapes are visible and greppable
// in source instead of silenced in a config file.
func suppressedBy(pass *Pass, pos token.Pos, directive string) bool {
	pf := pass.Fset.File(pos)
	if pf == nil {
		return false
	}
	line := pf.Line(pos)
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) != pf {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cl := pf.Line(c.Pos())
				if cl != line && cl != line-1 {
					continue
				}
				// The directive must lead the comment (a trailing rationale
				// is encouraged); merely mentioning it in prose or in a test
				// expectation does not suppress.
				if strings.HasPrefix(c.Text, "//sommelier:"+directive) {
					return true
				}
			}
		}
	}
	return false
}

// calleeFunc resolves the *types.Func a call expression invokes, nil
// for calls through function-typed values, conversions and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fn.Sel] // package-qualified call
		}
	}
	f, _ := obj.(*types.Func)
	return f
}

// funcKey renders a *types.Func as "pkgpath.Name" for package
// functions and "pkgpath.Recv.Name" for methods (pointer receivers
// stripped), the key format the analyzer tables use.
func funcKey(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
			}
		}
		// Interface-method call (named or anonymous interface): key by
		// package-less method name; the tables list those explicitly
		// (.Eval, .Push), since the dynamic type is unknowable here.
		return "." + f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// rootIdent walks a selector/index chain (res.Rel, b.Cols[i]) down to
// the variable at its base, nil when the base is not a plain
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// localVar resolves an identifier to the local variable it names, nil
// for globals, fields, and non-variables. The ownership analyses track
// function-local variables only.
func localVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || v.Parent() == v.Pkg().Scope() {
		return nil // package-level
	}
	return v
}
