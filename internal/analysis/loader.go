package analysis

// Standalone package loading: resolve patterns with
// `go list -export -deps` and type-check the targets' source against
// their dependencies' gc export data. Everything needed is in the
// build cache after a `go build`, so this works fully offline — no
// golang.org/x/tools/go/packages required. Test files are not loaded
// here; the `go vet -vettool` path covers them with the compiler's
// own package graph.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewPass wraps a loaded package for the analyzers.
func (lp *LoadedPackage) NewPass() *Pass {
	return &Pass{Fset: lp.Fset, Files: lp.Files, Pkg: lp.Pkg, TypesInfo: lp.Info}
}

type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// LoadPackages loads and type-checks the packages matching patterns,
// resolved relative to dir (empty = current directory).
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	exports := map[string]string{}
	var targets []*listedPkg
	for dec.More() {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	pkgs := make([]*LoadedPackage, 0, len(targets))
	for _, t := range targets {
		lp, err := typeCheckDir(t.ImportPath, t.Dir, t.GoFiles, exportLookup(exports), "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// exportLookup opens gc export data by import path.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	}
}

// typeCheckDir parses and type-checks one package's files. File names
// are joined to dir unless already absolute.
func typeCheckDir(importPath, dir string, fileNames []string, lookup func(string) (io.ReadCloser, error), goVersion string) (*LoadedPackage, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(fileNames))
	for _, name := range fileNames {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: goVersion,
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &LoadedPackage{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// RunPatterns loads patterns and runs the suite, returning rendered
// diagnostics ("file:line:col: analyzer: message").
func RunPatterns(dir string, analyzers []*Analyzer, patterns ...string) ([]string, error) {
	pkgs, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, lp := range pkgs {
		diags, err := runPackage(lp.NewPass(), analyzers)
		if err != nil {
			return nil, err
		}
		for _, d := range diags {
			out = append(out, fmt.Sprintf("%s: %s: %s",
				lp.Fset.Position(d.Pos), d.Analyzer, d.Message))
		}
	}
	return out, nil
}
