package analysis

// A golden-test runner in the style of x/tools' analysistest: fixture
// packages under testdata/ carry `// want "regexp"` comments on the
// lines where diagnostics are expected, and the suite fails on any
// missing or unexpected diagnostic. Fixtures live under testdata so
// `./...` wildcards (build, test, vet) never see their deliberately
// broken code, but they are real packages of this module and may
// import the real internal/storage.

import (
	"fmt"
	"regexp"
	"strings"
)

// TB is the subset of *testing.T the runner needs; keeping it local
// means non-test code never imports the testing package.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

var wantRe = regexp.MustCompile(`// want (.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// RunGolden analyzes the package in dir (a path relative to the
// caller, e.g. "testdata/poolown") and matches diagnostics against
// the fixture's want comments.
func RunGolden(t TB, a *Analyzer, dir string) {
	t.Helper()
	pkgs, err := LoadPackages("", "./"+dir)
	if err != nil {
		t.Errorf("loading %s: %v", dir, err)
		return
	}
	for _, lp := range pkgs {
		diags, err := runPackage(lp.NewPass(), []*Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, dir, err)
			return
		}
		// Collect wants: file:line → list of regexps.
		type want struct {
			re      *regexp.Regexp
			matched bool
			line    int
			file    string
		}
		wants := map[string][]*want{}
		for _, f := range lp.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := lp.Fset.Position(c.Pos())
					for _, qm := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
						pat, err := regexp.Compile(unescapeWant(qm[1]))
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, qm[1], err)
							continue
						}
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						wants[key] = append(wants[key], &want{re: pat, line: pos.Line, file: pos.Filename})
					}
				}
			}
		}
		for _, d := range diags {
			pos := lp.Fset.Position(d.Pos)
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			found := false
			for _, wt := range wants[key] {
				if !wt.matched && wt.re.MatchString(d.Message) {
					wt.matched = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
		for _, ws := range wants {
			for _, wt := range ws {
				if !wt.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none",
						wt.file, wt.line, wt.re)
				}
			}
		}
	}
}

func unescapeWant(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return s
}
