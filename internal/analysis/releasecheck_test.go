package analysis

import "testing"

func TestReleaseCheckGolden(t *testing.T) {
	RunGolden(t, ReleaseCheck, "testdata/releasecheck")
}
