package analysis

import "testing"

func TestSelAliasGolden(t *testing.T) {
	RunGolden(t, SelAlias, "testdata/selalias")
}
